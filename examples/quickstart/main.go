// Quickstart: parse a query and a view, find the equivalent rewriting,
// and evaluate both the original query and the rewriting to confirm they
// return the same answers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	aqv "repro"
)

func main() {
	// The classic example: the query joins r and s; the view has
	// materialised exactly that join.
	q := aqv.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	view := aqv.MustParseQuery("v(A,B) :- r(A,C), s(C,B)")
	vs := aqv.MustNewViewSet(view)

	// 1. Find an equivalent rewriting.
	rw := aqv.NewRewriter(vs).RewriteOne(q)
	if rw == nil {
		log.Fatal("no rewriting found")
	}
	fmt.Println("query:    ", q)
	fmt.Println("view:     ", view)
	fmt.Println("rewriting:", rw.Query)
	fmt.Println("unfolds to:", rw.Expansion)

	// 2. Confirm on data: build a base database, materialise the view,
	// and compare answers.
	base := aqv.NewDatabase()
	for _, fact := range []string{
		"r(ana,proj1). r(bob,proj2). s(proj1,budget9). s(proj2,budget3).",
	} {
		prog, err := aqv.ParseProgram(fact)
		if err != nil {
			log.Fatal(err)
		}
		if err := base.LoadFacts(prog.Facts); err != nil {
			log.Fatal(err)
		}
	}

	direct := aqv.EvalQuery(base, q)

	viewDB, err := aqv.MaterializeViews(base, []*aqv.Query{view})
	if err != nil {
		log.Fatal(err)
	}
	viaView := aqv.EvalQuery(viewDB, rw.Query)

	fmt.Println("\ndirect answers:   ", direct)
	fmt.Println("via view answers: ", viaView)
	fmt.Println("equal:            ", aqv.TuplesEqual(direct, viaView))
}
