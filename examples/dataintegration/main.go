// Data integration: the Information Manifold scenario that motivated the
// paper. A mediator exposes a global schema (flight/train connections and
// operators); autonomous sources are described as views over it. Queries
// against the global schema can only be answered from the sources — i.e.
// by a maximally-contained rewriting — because the global relations are
// virtual.
//
// The example runs all three view-based answering algorithms (Bucket,
// MiniCon, inverse rules) and shows they extract the same certain answers
// from the sources.
//
// Run with: go run ./examples/dataintegration
package main

import (
	"fmt"
	"log"

	aqv "repro"
)

func main() {
	// Global (mediated) schema:
	//   conn(From, To, Carrier) — a direct connection
	//   euCarrier(Carrier)      — carriers certified in the EU
	// Sources (views over the global schema):
	//   src_routes: a route aggregator that hides carriers
	//   src_eu:     pairs of cities connected by an EU carrier
	//   src_ops:    the carrier registry
	views, err := aqv.ParseViews(`
		src_routes(F,T)  :- conn(F,T,C).
		src_eu(F,T,C)    :- conn(F,T,C), euCarrier(C).
		src_ops(C)       :- euCarrier(C).
	`)
	if err != nil {
		log.Fatal(err)
	}
	vs, err := aqv.NewViewSet(views...)
	if err != nil {
		log.Fatal(err)
	}

	// Mediator query: city pairs connected by an EU-certified carrier.
	q := aqv.MustParseQuery("q(F,T) :- conn(F,T,C), euCarrier(C)")

	// The sources' actual contents come from some unknown base database;
	// for the demo we *simulate* it and materialise the views, but the
	// answering algorithms only ever see the view extents.
	hidden := aqv.NewDatabase()
	prog, err := aqv.ParseProgram(`
		conn(paris,rome,airA).   conn(rome,wien,airB).
		conn(paris,oslo,airC).   conn(oslo,kiev,airD).
		euCarrier(airA). euCarrier(airB). euCarrier(airD).
	`)
	if err != nil {
		log.Fatal(err)
	}
	if err := hidden.LoadFacts(prog.Facts); err != nil {
		log.Fatal(err)
	}
	sources, err := aqv.MaterializeViews(hidden, views)
	if err != nil {
		log.Fatal(err)
	}

	// 1. MiniCon: produce the maximally-contained rewriting, then run it.
	mcr, st, err := aqv.MiniConRewrite(q, vs, aqv.MiniConOptions{VerifyCandidates: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MiniCon rewriting (union of CQs over the sources):")
	fmt.Println(mcr)
	fmt.Printf("(%d MCDs, %d members kept)\n\n", st.MCDs, mcr.Len())
	viaMiniCon := aqv.EvalUnion(sources, mcr)

	// 2. Bucket: same answers, different search.
	bcr, _, err := aqv.BucketRewrite(q, vs, aqv.BucketOptions{})
	if err != nil {
		log.Fatal(err)
	}
	viaBucket := aqv.EvalUnion(sources, bcr)

	// 3. Inverse rules: no rewriting search; Skolem reconstruction.
	program, err := aqv.InverseRulesProgram(q, views)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Inverse-rules program:")
	fmt.Println(program)
	viaInvRules, err := aqv.InverseRulesAnswer(q, views, sources)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncertain answers via MiniCon:      ", viaMiniCon)
	fmt.Println("certain answers via Bucket:       ", viaBucket)
	fmt.Println("certain answers via inverse rules:", viaInvRules)
	fmt.Println("all agree:", aqv.TuplesEqual(viaMiniCon, viaBucket) && aqv.TuplesEqual(viaMiniCon, viaInvRules))

	// Note what is and is not certain: (paris,rome) is certain because
	// src_eu records it with an EU carrier. (paris,oslo) is NOT certain:
	// src_routes shows the connection but its carrier (airC) is not EU
	// certified, and the sources cannot prove otherwise.
	direct := aqv.EvalQuery(hidden, q)
	fmt.Println("\nfor reference, answers over the hidden base data:", direct)
}
