// Comparison predicates: the paper's Section on queries with arithmetic
// comparisons shows rewriting gets harder — and subtler — once queries and
// views carry range conditions. This example walks through the three
// regimes:
//
//  1. the view's filter matches the query's: a clean rewriting exists;
//  2. the view's filter is weaker: the rewriting must re-assert the
//     query's comparison on the view's output;
//  3. the view's filter is stronger: no equivalent rewriting exists (and
//     the engine proves it).
//
// It also demonstrates the containment machinery the decisions rest on,
// including the classical example where the fast sound test is incomplete
// and the exponential complete test is required.
//
// Run with: go run ./examples/comparisons
package main

import (
	"fmt"
	"log"

	aqv "repro"
)

func main() {
	q := aqv.MustParseQuery("q(P) :- listing(P,Price), Price < 500")
	fmt.Println("query:", q)

	// Regime 1: exact filter match.
	exact := aqv.MustParseQuery("cheap(P) :- listing(P,Price), Price < 500")
	demo("view with matching filter", q, exact, false)

	// Regime 2: weaker view; rewriting must keep the comparison. The view
	// must expose the price column for that to be possible.
	weaker := aqv.MustParseQuery("all(P,Price) :- listing(P,Price)")
	demo("view without filter (re-assert comparison)", q, weaker, true)

	// Regime 3: stronger view filter — provably no equivalent rewriting.
	stronger := aqv.MustParseQuery("veryCheap(P) :- listing(P,Price), Price < 100")
	demo("view with stronger filter", q, stronger, true)

	// The containment subtlety: a sound single-mapping test is not enough
	// once comparisons interact with self-joins.
	fmt.Println("\n--- containment with comparisons ---")
	q1 := aqv.MustParseQuery("c() :- r(U,V), U <= V")
	q2 := aqv.MustParseQuery("c() :- r(X,Y), r(Y,X)")
	fmt.Println("q1:", q1)
	fmt.Println("q2:", q2)
	fmt.Println("sound single-mapping test says q2 ⊑ q1:", aqv.ContainedSound(q2, q1))
	fmt.Println("complete linearisation test says q2 ⊑ q1:", aqv.Contained(q2, q1))
	fmt.Println("(the complete test is exponential — the paper shows that is unavoidable)")
}

func demo(title string, q, view *aqv.Query, keepComparisons bool) {
	fmt.Println("\n---", title, "---")
	fmt.Println("view:", view)
	vs, err := aqv.NewViewSet(view)
	if err != nil {
		log.Fatal(err)
	}
	r := aqv.NewRewriter(vs)
	r.Opt.KeepComparisons = keepComparisons
	rw := r.RewriteOne(q)
	if rw == nil {
		fmt.Println("=> no equivalent rewriting exists")
		return
	}
	fmt.Println("=> rewriting:", rw.Query)
	fmt.Println("   unfolds to:", rw.Expansion)

	// Sanity check on data.
	base := aqv.NewDatabase()
	prog, err := aqv.ParseProgram(`
		listing(flat1,450). listing(flat2,900). listing(flat3,80).
	`)
	if err != nil {
		log.Fatal(err)
	}
	if err := base.LoadFacts(prog.Facts); err != nil {
		log.Fatal(err)
	}
	viewDB, err := aqv.MaterializeViews(base, []*aqv.Query{view})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("   direct:  ", aqv.EvalQuery(base, q))
	fmt.Println("   via view:", aqv.EvalQuery(viewDB, rw.Query))
}
