// Query caching / materialised views: the query-optimisation scenario from
// the paper's introduction, served through the library's engine layer. A
// warehouse has materialised two join views; a single Engine answers the
// incoming query stream, rewriting each query shape once, caching the plan
// under its canonical fingerprint, and evaluating over the (much smaller)
// materialised views instead of re-joining base tables.
//
// Run with: go run ./examples/querycache
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	aqv "repro"
)

const (
	nOrders    = 30000
	nCustomers = 2000
	nRegions   = 25
)

func main() {
	// Base schema:
	//   order(OrderId, CustId)      customer(CustId, RegionId)
	//   region(RegionId, Name)      bigOrder(OrderId)
	// Materialised views:
	//   custRegion: customer joined to region name
	//   orderCust:  order joined to customer
	views, err := aqv.ParseViews(`
		custRegion(C,N)  :- customer(C,R), region(R,N).
		orderCust(O,C,R) :- order(O,C), customer(C,R).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Build synthetic base data.
	rng := rand.New(rand.NewSource(2026))
	base := aqv.NewDatabase()
	for c := 0; c < nCustomers; c++ {
		base.Insert("customer", aqv.Tuple{id("c", c), id("r", rng.Intn(nRegions))})
	}
	for rgn := 0; rgn < nRegions; rgn++ {
		base.Insert("region", aqv.Tuple{id("r", rgn), "name" + id("", rgn)})
	}
	for o := 0; o < nOrders; o++ {
		base.Insert("order", aqv.Tuple{id("o", o), id("c", rng.Intn(nCustomers))})
		if rng.Intn(100) < 3 {
			base.Insert("bigOrder", aqv.Tuple{id("o", o)})
		}
	}

	// Stand up the serving engine: one call materialises the views (the
	// warehouse maintenance step), keeps the base tables for partial
	// rewritings, freezes the database for concurrent reads, and wires up
	// the plan cache.
	matStart := time.Now()
	eng, err := aqv.NewEngineFromBase(base, views, aqv.EngineOptions{
		AllowPartial:    true,
		KeepComparisons: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	matTime := time.Since(matStart)

	// The hot-path query: every order with its customer's region name.
	// Both joins are pre-computed by the views, so the plan replaces a
	// three-way join by one join of two materialised relations.
	q := aqv.MustParseQuery(
		"q(O,N) :- order(O,C), customer(C,R), region(R,N)")
	plan, err := eng.Plan(q)
	if err != nil {
		log.Fatal(err)
	}
	if plan.Rewriting == nil {
		log.Fatal("no equivalent rewriting found for the hot-path query")
	}
	fmt.Println("query:    ", q)
	fmt.Println("plan:     ", plan.Rewriting.Query, " (fingerprint", plan.Fingerprint[:8]+"…)")

	// A query touching a relation no view covers (bigOrder) still
	// benefits — the engine mixes views and base tables.
	qBig := aqv.MustParseQuery(
		"qb(O,N) :- bigOrder(O), order(O,C), customer(C,R), region(R,N)")
	if p, err := eng.Plan(qBig); err == nil && p.Rewriting != nil {
		fmt.Println("\npartial plan for the bigOrder query:")
		fmt.Printf("  %s   (complete=%v)\n", p.Rewriting.Query, p.Rewriting.Complete)
	}

	// Sanity: the engine's answers match direct evaluation of the query
	// over the base tables.
	dStart := time.Now()
	direct := aqv.EvalQuery(base, q)
	dTime := time.Since(dStart)
	answers, err := eng.Answer(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nengine setup (materialise+index, once): %v\n", matTime)
	fmt.Printf("direct evaluation: %v   (%d answers, equal=%v)\n",
		dTime, len(direct), aqv.TuplesEqual(direct, answers))

	// The serving scenario: one selective query arrives over and over,
	// spelled differently by every client — renamed variables, reordered
	// joins. Canonical fingerprints give all spellings one cache entry,
	// so the rewriting search runs once for the whole stream.
	point := aqv.MustParseQuery(
		"pt(N) :- customer('c17',R), region(R,N)")
	const streamLen = 2000
	stream := make([]*aqv.Query, streamLen)
	for i := range stream {
		stream[i] = alphaVariant(rng, point, i)
	}

	vs, err := aqv.NewViewSet(views...)
	if err != nil {
		log.Fatal(err)
	}
	naiveStart := time.Now()
	for _, sq := range stream {
		r := aqv.NewRewriter(vs)
		r.Opt.AllowPartial = true
		rw := r.RewriteOne(sq)
		if rw == nil {
			log.Fatalf("no rewriting for %s", sq)
		}
		aqv.EvalQuery(eng.Database(), rw.Query)
	}
	naiveTime := time.Since(naiveStart)

	servedStart := time.Now()
	if _, err := eng.AnswerBatch(stream); err != nil {
		log.Fatal(err)
	}
	servedTime := time.Since(servedStart)

	st := eng.Stats()
	fmt.Printf("\nserving %d spellings of one point query:\n", streamLen)
	fmt.Printf("re-planning every request: %v   (%v/query)\n", naiveTime, naiveTime/streamLen)
	fmt.Printf("engine (cached plans):     %v   (%v/query)\n", servedTime, servedTime/streamLen)
	fmt.Printf("engine stats:              hits=%d misses=%d coalesced=%d cached=%d\n",
		st.Hits, st.Misses, st.Coalesced, st.CacheLen)
	if servedTime > 0 {
		fmt.Printf("serving speedup:           %.1fx\n", float64(naiveTime)/float64(servedTime))
	}

	// Prepared queries: the same lookup for *different* customers. The
	// constant is abstracted into the plan template, so one Prepare call
	// plans and compiles for the whole stream and each request is just a
	// bound execution — no canonicalisation, no cache probe, one index
	// probe into the materialised view per call.
	pq, err := eng.Prepare(point)
	if err != nil {
		log.Fatal(err)
	}
	prepStart := time.Now()
	for i := 0; i < streamLen; i++ {
		if _, err := pq.Exec(id("c", i%nCustomers)); err != nil {
			log.Fatal(err)
		}
	}
	prepTime := time.Since(prepStart)
	fmt.Printf("\nprepared exec, %d distinct customers through one plan: %v   (%v/query)\n",
		streamLen, prepTime, prepTime/streamLen)
}

// alphaVariant returns q with consistently renamed variables and shuffled
// subgoals — the same query as a different client would write it.
func alphaVariant(rng *rand.Rand, q *aqv.Query, salt int) *aqv.Query {
	v := q.Clone()
	sub := aqv.Subst{}
	for i, t := range q.Vars() {
		sub.Bind(t.Lex, aqv.Var(fmt.Sprintf("X%c%d_%d", 'A'+rng.Intn(26), salt, i)))
	}
	v = sub.ApplyQuery(v)
	rng.Shuffle(len(v.Body), func(i, j int) { v.Body[i], v.Body[j] = v.Body[j], v.Body[i] })
	return v
}

func id(prefix string, n int) string { return fmt.Sprintf("%s%d", prefix, n) }
