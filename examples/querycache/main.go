// Query caching / materialised views: the query-optimisation scenario from
// the paper's introduction. A warehouse has materialised two join views.
// Incoming queries are rewritten to scan the (much smaller) materialised
// views instead of re-joining base tables, and the example measures the
// speedup on synthetic data.
//
// Run with: go run ./examples/querycache
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	aqv "repro"
)

const (
	nOrders    = 30000
	nCustomers = 2000
	nRegions   = 25
)

func main() {
	// Base schema:
	//   order(OrderId, CustId)      customer(CustId, RegionId)
	//   region(RegionId, Name)      bigOrder(OrderId)
	// Materialised views:
	//   custRegion: customer joined to region name
	//   orderCust:  order joined to customer
	views, err := aqv.ParseViews(`
		custRegion(C,N)  :- customer(C,R), region(R,N).
		orderCust(O,C,R) :- order(O,C), customer(C,R).
	`)
	if err != nil {
		log.Fatal(err)
	}
	vs, err := aqv.NewViewSet(views...)
	if err != nil {
		log.Fatal(err)
	}

	// The hot-path query: every order with its customer's region name.
	// Both joins are pre-computed by the views, so the rewriting replaces
	// a three-way join by one join of two materialised relations.
	q := aqv.MustParseQuery(
		"q(O,N) :- order(O,C), customer(C,R), region(R,N)")

	r := aqv.NewRewriter(vs)
	rw := r.RewriteOne(q)
	if rw == nil {
		log.Fatal("no rewriting found")
	}
	fmt.Println("query:    ", q)
	fmt.Println("rewriting:", rw.Query)
	best := rw

	// Partial rewritings: a query touching a relation no view covers
	// (bigOrder) still benefits — the engine mixes views and base tables.
	qBig := aqv.MustParseQuery(
		"qb(O,N) :- bigOrder(O), order(O,C), customer(C,R), region(R,N)")
	rp := aqv.NewRewriter(vs)
	rp.Opt.AllowPartial = true
	if prw := rp.RewriteOne(qBig); prw != nil {
		fmt.Println("\npartial rewriting for the bigOrder query:")
		fmt.Printf("  %s   (complete=%v)\n", prw.Query, prw.Complete)
	}

	// Build synthetic base data.
	rng := rand.New(rand.NewSource(2026))
	base := aqv.NewDatabase()
	for c := 0; c < nCustomers; c++ {
		base.Insert("customer", aqv.Tuple{id("c", c), id("r", rng.Intn(nRegions))})
	}
	for rgn := 0; rgn < nRegions; rgn++ {
		base.Insert("region", aqv.Tuple{id("r", rgn), "name" + id("", rgn)})
	}
	for o := 0; o < nOrders; o++ {
		base.Insert("order", aqv.Tuple{id("o", o), id("c", rng.Intn(nCustomers))})
		if rng.Intn(100) < 3 {
			base.Insert("bigOrder", aqv.Tuple{id("o", o)})
		}
	}

	// Materialise the views once (the warehouse maintenance step), and
	// give the rewriting access to views + the base table it still needs.
	matStart := time.Now()
	cache, err := aqv.MaterializeViews(base, views)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range base.Relation("bigOrder").Tuples() {
		if err := cache.Insert("bigOrder", t); err != nil {
			log.Fatal(err)
		}
	}
	matTime := time.Since(matStart)

	// Race: direct evaluation vs the rewriting over the cache.
	dStart := time.Now()
	direct := aqv.EvalQuery(base, q)
	dTime := time.Since(dStart)

	cStart := time.Now()
	cached := aqv.EvalQuery(cache, best.Query)
	cTime := time.Since(cStart)

	fmt.Printf("\nmaterialisation (once): %v\n", matTime)
	fmt.Printf("direct evaluation:      %v   (%d answers)\n", dTime, len(direct))
	fmt.Printf("rewriting evaluation:   %v   (%d answers)\n", cTime, len(cached))
	fmt.Println("answers equal:         ", aqv.TuplesEqual(direct, cached))
	if cTime > 0 {
		fmt.Printf("speedup:                %.1fx\n", float64(dTime)/float64(cTime))
	}
}

func id(prefix string, n int) string { return fmt.Sprintf("%s%d", prefix, n) }
