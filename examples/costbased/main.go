// Cost-based plan selection: the optimiser's view of the paper. A query
// usually has several equivalent rewritings (and the original plan); which
// one to run depends on the data. This example enumerates all rewritings,
// costs each against catalog statistics, picks the cheapest, and then
// verifies the prediction by racing the actual evaluations.
//
// Run with: go run ./examples/costbased
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	aqv "repro"
)

func main() {
	// Schema: follows(A,B), posts(A,P). Views materialise the expensive
	// self-join and the post lookup.
	views, err := aqv.ParseViews(`
		mutual(A,B)     :- follows(A,B), follows(B,A).
		followPost(A,P) :- follows(A,B), posts(B,P).
	`)
	if err != nil {
		log.Fatal(err)
	}
	vs, err := aqv.NewViewSet(views...)
	if err != nil {
		log.Fatal(err)
	}

	// Query: posts of accounts that the user mutually follows.
	q := aqv.MustParseQuery(
		"q(A,P) :- follows(A,B), follows(B,A), posts(B,P)")

	r := aqv.NewRewriter(vs)
	r.Opt.AllowPartial = true
	r.Opt.MaxResults = aqv.AllRewritings
	rewritings, _ := r.Rewrite(q)
	if len(rewritings) == 0 {
		log.Fatal("no rewritings")
	}

	// Candidate plans: the original query plus every rewriting.
	candidates := []*aqv.Query{q}
	for _, rw := range rewritings {
		candidates = append(candidates, rw.Query)
	}
	fmt.Println("candidate plans:")
	for i, c := range candidates {
		fmt.Printf("  [%d] %s\n", i, c)
	}

	// Data: a follower graph with some reciprocation.
	rng := rand.New(rand.NewSource(99))
	base := aqv.NewDatabase()
	const users, followsN, postsN = 1500, 20000, 8000
	for i := 0; i < followsN; i++ {
		a, b := rng.Intn(users), rng.Intn(users)
		base.Insert("follows", aqv.Tuple{user(a), user(b)})
		if rng.Intn(4) == 0 {
			base.Insert("follows", aqv.Tuple{user(b), user(a)})
		}
	}
	for i := 0; i < postsN; i++ {
		base.Insert("posts", aqv.Tuple{user(rng.Intn(users)), fmt.Sprintf("p%d", i)})
	}

	// The executable database: base relations plus materialised views
	// (plans may mix both).
	db := base.Clone()
	for _, v := range views {
		viewDB, err := aqv.MaterializeViews(base, []*aqv.Query{v})
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range viewDB.Relation(v.Name()).Tuples() {
			if err := db.Insert(v.Name(), t); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Cost each candidate and pick the winner.
	catalog := aqv.NewCatalog(db)
	best, estimates := aqv.ChoosePlan(catalog, candidates)
	fmt.Println("\ncost estimates (intermediate tuples):")
	for i, e := range estimates {
		marker := " "
		if i == best {
			marker = "*"
		}
		fmt.Printf("  %s[%d] cost=%.0f card=%.0f\n", marker, i, e.Cost, e.Cardinality)
	}

	// Race the actual evaluations to check the prediction.
	fmt.Println("\nmeasured evaluation:")
	var winner int
	var winnerTime time.Duration
	for i, c := range candidates {
		start := time.Now()
		answers := aqv.EvalQuery(db, c)
		d := time.Since(start)
		fmt.Printf("  [%d] %v (%d answers)\n", i, d, len(answers))
		if i == 0 || d < winnerTime {
			winner, winnerTime = i, d
		}
	}
	fmt.Printf("\ncost model chose plan %d; fastest measured plan was %d\n", best, winner)
	ref := aqv.EvalQuery(db, candidates[0])
	chosen := aqv.EvalQuery(db, candidates[best])
	fmt.Println("chosen plan returns identical answers:", aqv.TuplesEqual(ref, chosen))
}

func user(i int) string { return fmt.Sprintf("u%d", i) }
