package main

import (
	"os"
	"testing"
)

// TestDurabilityBenchSmoke runs the durability section alone (gated: it is
// a benchmark, not a test).
func TestDurabilityBenchSmoke(t *testing.T) {
	if os.Getenv("DURBENCH") != "1" {
		t.Skip("set DURBENCH=1 to run the durability benchmark standalone")
	}
	var report EvalBenchReport
	if err := runDurabilityBench(&report); err != nil {
		t.Fatal(err)
	}
}
