package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "Z9"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	if err := run([]string{"-exp", "T3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
