package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "Z9"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	if err := run([]string{"-exp", "T3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestParseConcLevels(t *testing.T) {
	got, err := parseConcLevels("4, 16")
	if err != nil || len(got) != 2 || got[0] != 4 || got[1] != 16 {
		t.Fatalf("parseConcLevels = %v, %v", got, err)
	}
	for _, bad := range []string{"", "4", "4,x", "4,0", "-1,2"} {
		if _, err := parseConcLevels(bad); err == nil {
			t.Fatalf("parseConcLevels(%q) accepted", bad)
		}
	}
}

// TestRunServeBenchSmoke drives the serving-layer load generator end to end
// with short points and checks the report shape: both regimes present, every
// point accounted (requests = ok+shed+errors, no errors), percentiles
// ordered.
func TestRunServeBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the serving stack and drives load")
	}
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := run([]string{"-serve", path, "-serve-dur", "150ms", "-serve-conc", "2,8"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report ServeBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Closed) != 2 || len(report.Open) != 2 {
		t.Fatalf("points: closed=%d open=%d", len(report.Closed), len(report.Open))
	}
	if report.SaturationRPS <= 0 {
		t.Fatal("no saturation rate measured")
	}
	for _, p := range append(append([]ServeBenchPoint{}, report.Closed...), report.Open...) {
		if p.Errors != 0 {
			t.Fatalf("%s point had %d errors", p.Mode, p.Errors)
		}
		if p.Requests != p.OK+p.Shed {
			t.Fatalf("%s point: requests %d != ok %d + shed %d", p.Mode, p.Requests, p.OK, p.Shed)
		}
		if p.OK == 0 || p.P50Ms <= 0 || p.P50Ms > p.P95Ms || p.P95Ms > p.P99Ms {
			t.Fatalf("%s point: bad latency summary %+v", p.Mode, p)
		}
		if int(p.Admitted) != p.OK {
			t.Fatalf("%s point: server admitted %d != client ok %d", p.Mode, p.Admitted, p.OK)
		}
		if int(p.ShedSrv) != p.Shed {
			t.Fatalf("%s point: server shed %d != client 429s %d", p.Mode, p.ShedSrv, p.Shed)
		}
	}
	if report.Batch == nil {
		t.Fatal("no mixed-batch churn phase in report")
	}
	b := report.Batch
	if b.Batches < 1 || b.Inserted != b.Batches || b.Deleted != b.Batches-1 {
		t.Fatalf("batch churn accounting: %+v", b)
	}
	if b.Errors != 0 {
		t.Fatalf("batch churn had %d reader errors", b.Errors)
	}
	if b.ReadsOK == 0 || b.P50Ms <= 0 {
		t.Fatalf("batch churn ran without concurrent reads: %+v", b)
	}
}
