package main

// Durability benchmark: what the snapshot + WAL subsystem buys at boot.
// For each scale it measures (a) the cost of writing a checkpoint, (b) the
// cost of a cold start from that checkpoint — segment decode, index build,
// serving-side clones — against full re-materialization of the same state
// from base facts, and (c) WAL replay throughput when the engine died
// without a shutdown checkpoint.

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/cq"
	"repro/internal/engine"
	"repro/internal/storage"
)

// DurabilityBenchResult is one scale's measurements.
type DurabilityBenchResult struct {
	Name string `json:"name"`
	// BaseTuples is the base-fact count; ExtentTuples the materialized view
	// tuples the snapshot carries on top of it.
	BaseTuples   int `json:"base_tuples"`
	ExtentTuples int `json:"extent_tuples"`
	// SnapshotWriteNs is the cost of one checkpoint of the full state;
	// SnapshotBytes its on-disk size.
	SnapshotWriteNs float64 `json:"snapshot_write_ns"`
	SnapshotBytes   int64   `json:"snapshot_bytes"`
	// ColdStartNs boots a serving engine from the snapshot alone (no WAL);
	// RematerializeNs builds the identical engine from base facts, paying
	// the view-materialization fixpoint. SpeedupVsRematerialize is their
	// ratio — the dividend durability pays at every restart.
	ColdStartNs            float64 `json:"cold_start_ns"`
	RematerializeNs        float64 `json:"rematerialize_ns"`
	SpeedupVsRematerialize float64 `json:"speedup_vs_rematerialize"`
	// WALReplayBatches batches were recovered through the maintainer in
	// WALReplayNs when the engine restarted after dying checkpoint-less;
	// WALReplayBatchesPerSec is the recovery throughput, and
	// ColdStartReplayNs the total boot time of that crash restart
	// (snapshot load + replay).
	WALReplayBatches       int     `json:"wal_replay_batches"`
	WALReplayNs            float64 `json:"wal_replay_ns"`
	WALReplayBatchesPerSec float64 `json:"wal_replay_batches_per_sec"`
	ColdStartReplayNs      float64 `json:"cold_start_replay_ns"`
}

// durabilityWorkload builds the serving-shaped base: a fan-in aggregation
// join — small head domains, moderate join-key domain — so each extent
// tuple has many derivations (n/cdom per join key). That is the state
// worth persisting: materializing it walks every derivation, loading it
// from a snapshot pays one decode per distinct tuple. Tuples are distinct
// by construction (injective index→pair enumeration; requires
// hdom*cdom >= scale/2), so the base holds exactly `scale` facts.
func durabilityWorkload(scale, hdom, cdom int) (*storage.Database, []*cq.Query) {
	db := storage.NewDatabase()
	n := scale / 2
	for i := 0; i < n; i++ {
		db.Insert("p1", storage.Tuple{"a" + fmt.Sprint(i%hdom), "c" + fmt.Sprint(i/hdom)})
		db.Insert("p2", storage.Tuple{"c" + fmt.Sprint(i%cdom), "b" + fmt.Sprint(i/cdom)})
	}
	views := []*cq.Query{
		cq.MustParseQuery("v1(A,B) :- p1(A,C), p2(C,B)"),
	}
	return db, views
}

func runDurabilityBench(report *EvalBenchReport) error {
	const reps = 3
	for _, scale := range []struct {
		name       string
		base       int
		hdom, cdom int
		rematReps  int
	}{
		// Re-materialization at 400k walks ~8M derivations per rep — one
		// rep keeps the bench runnable; its runtime dwarfs the variance.
		{"serve_60k", 60000, 150, 250, 3},
		{"serve_400k", 400000, 400, 5000, 1},
	} {
		rng := rand.New(rand.NewSource(101))
		base, views := durabilityWorkload(scale.base, scale.hdom, scale.cdom)
		dir, err := os.MkdirTemp("", "aqvbench-durable")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		durOpt := engine.Options{
			LiveUpdates:      true,
			DataDir:          dir,
			WALNoSync:        true,
			SnapshotWALBytes: -1, // checkpoints only where the harness asks
		}

		// Fresh durable boot: materializes the views once and writes the
		// boot checkpoint.
		e, err := engine.NewFromBase(base.Clone(), views, durOpt)
		if err != nil {
			return err
		}
		res := DurabilityBenchResult{Name: scale.name, BaseTuples: base.TotalTuples()}
		res.ExtentTuples = e.Database().TotalTuples() - res.BaseTuples

		// WAL: stream update batches, then die without a checkpoint.
		const replayBatches = 100
		const batchTuples = 20
		var walTuples []storage.Tuple
		for b := 0; b < replayBatches; b++ {
			ins := make([]storage.Tuple, batchTuples)
			for i := range ins {
				// Fresh head values: every tuple is novel, so each batch has
				// effect and is logged (a no-op batch writes no WAL record).
				ins[i] = storage.Tuple{"n" + fmt.Sprint(b*batchTuples+i), "c" + fmt.Sprint(rng.Intn(scale.cdom))}
			}
			walTuples = append(walTuples, ins...)
			if err := e.ApplyUpdate(map[string][]storage.Tuple{"p1": ins}, nil); err != nil {
				return err
			}
		}
		// Crash: e is dropped, the batches live only in the WAL.

		// Cold start + WAL replay, best of reps (the WAL stays dirty since
		// nothing checkpoints).
		var replayStats engine.DurableStats
		coldReplayNs, _, err := minNs(reps, func(int) error {
			re, err := engine.NewFromBase(nil, views, durOpt)
			if err != nil {
				return err
			}
			replayStats = re.Stats().Durable
			return nil
		})
		if err != nil {
			return err
		}
		if replayStats.RecoveredBatches != replayBatches {
			return fmt.Errorf("%s: replay recovered %d batches, want %d", scale.name, replayStats.RecoveredBatches, replayBatches)
		}
		res.ColdStartReplayNs = coldReplayNs
		res.WALReplayBatches = replayStats.RecoveredBatches
		res.WALReplayNs = float64(replayStats.ReplayTime.Nanoseconds())
		if replayStats.ReplayTime > 0 {
			res.WALReplayBatchesPerSec = float64(replayBatches) / replayStats.ReplayTime.Seconds()
		}

		// Checkpoint the recovered state: snapshot write cost and size.
		re, err := engine.NewFromBase(nil, views, durOpt)
		if err != nil {
			return err
		}
		ckStart := time.Now()
		if err := re.Checkpoint(); err != nil {
			return err
		}
		res.SnapshotWriteNs = float64(time.Since(ckStart).Nanoseconds())
		res.SnapshotBytes = re.Stats().Durable.SnapshotBytes
		if err := re.Close(); err != nil {
			return err
		}

		// Pure cold start from the snapshot (no WAL) vs re-materializing
		// the identical state from base facts.
		res.ColdStartNs, _, err = minNs(reps, func(int) error {
			ce, err := engine.NewFromBase(nil, views, durOpt)
			if err != nil {
				return err
			}
			if st := ce.Stats().Durable; st.RecoveredBatches != 0 || st.StaleRebuild {
				return fmt.Errorf("%s: cold start not from snapshot alone: %+v", scale.name, st)
			}
			return nil
		})
		if err != nil {
			return err
		}

		full := base.Clone()
		for _, t := range walTuples {
			if err := full.Insert("p1", t); err != nil {
				return err
			}
		}
		res.RematerializeNs, _, err = minNs(scale.rematReps, func(int) error {
			_, err := engine.NewFromBase(full.Clone(), views, engine.Options{LiveUpdates: true})
			return err
		})
		if err != nil {
			return err
		}
		res.SpeedupVsRematerialize = res.RematerializeNs / res.ColdStartNs

		fmt.Printf("%-12s base=%-7d extents=%-7d snap=%.0fms/%.1fMB cold=%.0fms remat=%.0fms (%.1fx) replay=%.0f batches/s\n",
			res.Name, res.BaseTuples, res.ExtentTuples,
			res.SnapshotWriteNs/1e6, float64(res.SnapshotBytes)/(1<<20),
			res.ColdStartNs/1e6, res.RematerializeNs/1e6, res.SpeedupVsRematerialize,
			res.WALReplayBatchesPerSec)
		report.Durability = append(report.Durability, res)
		os.RemoveAll(dir)
	}
	return nil
}
