// Command aqvbench regenerates the experiment tables and figure series
// defined in DESIGN.md Section 5 (the 1995 paper is theory-only; these
// experiments validate its theorems and reproduce the canonical evaluation
// of the algorithms it founded).
//
// Usage:
//
//	aqvbench                          # run every experiment
//	aqvbench -exp F1                  # run one experiment
//	aqvbench -list                    # list experiment ids
//	aqvbench -evalbench BENCH_eval.json  # measure the evaluator, write JSON
//	aqvbench -scaling BENCH_eval.json    # sweep shard counts, merge the
//	                                     # "partitioned" section into the report
//	aqvbench -governance BENCH_eval.json # measure cancellation-guard overhead,
//	                                     # merge the "governance" section
//	aqvbench -serve BENCH_serve.json     # drive the HTTP serving layer with
//	                                     # closed- and open-loop load plus a
//	                                     # mixed insert/delete batch churn phase
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aqvbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aqvbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (T1..T5, F1..F6) or 'all'")
	list := fs.Bool("list", false, "list experiment ids and exit")
	evalBench := fs.String("evalbench", "", "measure the evaluator (interp vs compiled cold/warm/parallel) and write machine-readable JSON to this path ('-' = stdout)")
	scaling := fs.String("scaling", "", "sweep the sharded executor across shard counts (1..max(GOMAXPROCS,8)) and merge the 'partitioned' section into the JSON report at this path ('-' = stdout)")
	governance := fs.String("governance", "", "measure the cancellation-guard overhead (context-aware vs legacy evaluation) and merge the 'governance' section into the JSON report at this path ('-' = stdout)")
	serve := fs.String("serve", "", "drive the HTTP serving layer (closed- and open-loop load, mixed-batch churn) and write BENCH_serve.json to this path ('-' = stdout)")
	serveDur := fs.Duration("serve-dur", 2*time.Second, "wall time per -serve load point")
	serveConc := fs.String("serve-conc", "4,16", "closed-loop worker counts for -serve (comma-separated, at least two)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(experiments.IDs(), " "))
		return nil
	}
	if *evalBench != "" {
		return runEvalBench(*evalBench)
	}
	if *scaling != "" {
		return runScalingBench(*scaling)
	}
	if *governance != "" {
		return runGovernanceBench(*governance)
	}
	if *serve != "" {
		return runServeBench(*serve, *serveDur, *serveConc)
	}
	if strings.EqualFold(*exp, "all") {
		for _, id := range experiments.IDs() {
			run, _ := experiments.ByID(id)
			fmt.Println(run().Render())
		}
		return nil
	}
	run, ok := experiments.ByID(*exp)
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", *exp)
	}
	fmt.Println(run().Render())
	return nil
}
