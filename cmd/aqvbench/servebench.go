package main

// Serving-layer load generator: boots an in-process aqvd-equivalent HTTP
// server (a server.Server on a real TCP listener) over a point-lookup
// workload with admission control enabled, then drives it in two regimes
// and writes BENCH_serve.json:
//
//   - closed loop: N workers issue prepared-exec requests back to back, at
//     two or more concurrency levels. Throughput at the highest level is
//     the measured saturation rate.
//   - open loop: requests arrive on a fixed timer regardless of
//     completions, at rates below and above saturation. Above saturation
//     the admission queue fills and the server sheds with 429; the report
//     records both the client-observed 429s and the server-side admission
//     counter deltas.
//
//   - batch churn: one writer streams mixed insert/delete batches through
//     /v1/batch (each batch retracts the previous churn fact and inserts
//     its replacement) while prepared-exec readers run concurrently, so
//     the left-right publish path is exercised under read load; the phase
//     ends with a consistency probe of the final churn fact.
//
// Latency percentiles are reported per point (p50/p95/p99, milliseconds,
// queueing included — in an open loop the queue wait is the story).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cq"
	"repro/internal/server"
	"repro/internal/storage"
)

// ServeBenchPoint is one load point: a (mode, level) pair with its
// client-side latency distribution and the server-side admission deltas.
type ServeBenchPoint struct {
	// Mode is "closed" (fixed worker count) or "open" (fixed arrival rate).
	Mode string `json:"mode"`
	// Concurrency is the closed-loop worker count (0 for open loop).
	Concurrency int `json:"concurrency,omitempty"`
	// TargetRPS is the open-loop arrival rate (0 for closed loop).
	TargetRPS float64 `json:"target_rps,omitempty"`
	// DurationS is the measured wall time of the point.
	DurationS float64 `json:"duration_s"`
	// Requests = OK + Shed + Errors (client view).
	Requests int `json:"requests"`
	OK       int `json:"ok"`
	// Shed counts client-observed 429 responses; every one carried a
	// Retry-After header (asserted, not assumed).
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
	// ThroughputRPS is OK responses per second of wall time.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency percentiles over all non-error responses, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Server-side admission counter deltas over the point (from /v1/stats).
	Admitted uint64 `json:"admitted"`
	Queued   uint64 `json:"queued"`
	ShedSrv  uint64 `json:"shed_server"`
	TimedOut uint64 `json:"timed_out,omitempty"`
	Canceled uint64 `json:"canceled,omitempty"`
}

// ServeBatchPoint summarizes the mixed-batch churn phase: back-to-back
// /v1/batch requests (each deleting the previous churn fact and inserting
// its successor) with concurrent prepared-exec readers.
type ServeBatchPoint struct {
	DurationS float64 `json:"duration_s"`
	// Batches is the number of mixed batches applied; Inserted/Deleted the
	// base-tuple insert and retraction requests they carried.
	Batches  int `json:"batches"`
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// ReadsOK counts prepared-exec responses served while batches flowed.
	ReadsOK int `json:"reads_ok"`
	Errors  int `json:"errors"`
	// BatchesPerS is applied batches per second of wall time; the latency
	// percentiles are over the batch requests (milliseconds).
	BatchesPerS float64 `json:"batches_per_s"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// ServeBenchReport is the top-level BENCH_serve.json document.
type ServeBenchReport struct {
	Command    string `json:"command"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Tuples is the serving database size; MaxConcurrent/MaxQueue the
	// admission configuration the server ran with.
	Tuples        int `json:"tuples"`
	MaxConcurrent int `json:"max_concurrent"`
	MaxQueue      int `json:"max_queue"`
	// SaturationRPS is the closed-loop throughput at the highest worker
	// count — the rate the open-loop points are derived from.
	SaturationRPS float64           `json:"saturation_rps"`
	Closed        []ServeBenchPoint `json:"closed"`
	Open          []ServeBenchPoint `json:"open"`
	// Batch is the mixed-batch churn phase (live namespace required).
	Batch *ServeBatchPoint `json:"batch,omitempty"`
}

// The admission configuration is fixed, not host-derived: a small
// execution cap and a short queue make the engine — not the HTTP client —
// the bottleneck, so the open-loop overload point actually sheds. The
// served query is a projection of the full join: heavy to evaluate
// (admission capacity is held for the whole evaluation) but only a
// handful of rows to encode, so per-request work is dominated by the
// governed section rather than by HTTP or JSON overhead — otherwise
// "saturation" measures the load generator, not the server.
const (
	serveBenchMaxConcurrent = 4
	serveBenchMaxQueue      = 8
)

// serveBenchBase is the serving workload: n r-tuples fanning into 40
// s-tuples, served through the materialized join view. Only the join view
// is defined — the served query rewrites to a scan of its n-row extent, so
// per-request evaluation time scales with n. n is chosen so that scan runs
// well past the Go scheduler's ~10ms preemption quantum: on a single-core
// host, shorter CPU-bound admission windows effectively serialize (a
// goroutine is almost never preempted inside one), concurrency inside the
// governed section never reaches the cap, and the queue/shed path — the
// thing this benchmark exists to exercise — never fires.
func serveBenchBase(n int) (*storage.Database, []*cq.Query, error) {
	db := storage.NewDatabase()
	for i := 0; i < n; i++ {
		db.Insert("r", storage.Tuple{fmt.Sprintf("k%d", i), fmt.Sprintf("m%d", i%40)})
	}
	for j := 0; j < 40; j++ {
		db.Insert("s", storage.Tuple{fmt.Sprintf("m%d", j), fmt.Sprintf("x%d", j%7)})
	}
	views, err := cq.ParseViews("v(A,B) :- r(A,C), s(C,B).")
	return db, views, err
}

// admissionDeltas reads the default namespace's admission counters from
// /v1/stats.
func admissionDeltas(client *http.Client, base string) (st struct {
	Admitted, Queued, Shed, TimedOut, Canceled uint64
}, err error) {
	resp, err := client.Get(base + "/v1/stats?ns=" + server.DefaultNamespace)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats: %d %s", resp.StatusCode, raw)
	}
	var doc struct {
		Engine struct {
			Admission struct {
				Admitted, Queued, Shed, TimedOut, Canceled uint64
			} `json:"admission"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return st, err
	}
	st.Admitted = doc.Engine.Admission.Admitted
	st.Queued = doc.Engine.Admission.Queued
	st.Shed = doc.Engine.Admission.Shed
	st.TimedOut = doc.Engine.Admission.TimedOut
	st.Canceled = doc.Engine.Admission.Canceled
	return st, nil
}

// percentileMs returns the q-th percentile of the sorted latency sample in
// milliseconds (nearest-rank).
func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Nanoseconds()) / 1e6
}

// serveLoadResult accumulates one load point's client-side observations.
type serveLoadResult struct {
	mu        sync.Mutex
	latencies []time.Duration
	ok        int
	shed      int
	errs      int
	firstErr  error
}

func (r *serveLoadResult) record(d time.Duration, status int, hasRetryAfter bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case err != nil:
		r.errs++
		if r.firstErr == nil {
			r.firstErr = err
		}
	case status == http.StatusOK:
		r.ok++
		r.latencies = append(r.latencies, d)
	case status == http.StatusTooManyRequests:
		if !hasRetryAfter {
			r.errs++
			if r.firstErr == nil {
				r.firstErr = fmt.Errorf("429 without Retry-After header")
			}
			return
		}
		r.shed++
		r.latencies = append(r.latencies, d)
	default:
		r.errs++
		if r.firstErr == nil {
			r.firstErr = fmt.Errorf("unexpected status %d", status)
		}
	}
}

func (r *serveLoadResult) point(mode string, wall time.Duration) (ServeBenchPoint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.firstErr != nil {
		return ServeBenchPoint{}, r.firstErr
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	secs := wall.Seconds()
	p := ServeBenchPoint{
		Mode:      mode,
		DurationS: secs,
		Requests:  r.ok + r.shed + r.errs,
		OK:        r.ok,
		Shed:      r.shed,
		Errors:    r.errs,
		P50Ms:     percentileMs(r.latencies, 0.50),
		P95Ms:     percentileMs(r.latencies, 0.95),
		P99Ms:     percentileMs(r.latencies, 0.99),
	}
	if secs > 0 {
		p.ThroughputRPS = float64(r.ok) / secs
	}
	return p, nil
}

// fireExec issues one prepared-exec request and records it.
func fireExec(client *http.Client, url string, body []byte, res *serveLoadResult) {
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	d := time.Since(start)
	if err != nil {
		res.record(d, 0, false, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	res.record(d, resp.StatusCode, resp.Header.Get("Retry-After") != "", nil)
}

// runServeBench boots the serving stack, runs the closed- and open-loop
// sweeps and writes the report to path ("-" = stdout).
func runServeBench(path string, dur time.Duration, concSpec string) error {
	concLevels, err := parseConcLevels(concSpec)
	if err != nil {
		return err
	}

	const tuples = 400000
	base, views, err := serveBenchBase(tuples)
	if err != nil {
		return err
	}
	cfg := server.Config{MaxConcurrent: serveBenchMaxConcurrent, MaxQueue: serveBenchMaxQueue, LiveUpdates: true}
	ns, err := server.NewNamespace(server.DefaultNamespace, base, views, cfg)
	if err != nil {
		return err
	}
	reg := server.NewRegistry()
	if err := reg.Add(ns); err != nil {
		return err
	}
	srv := server.New(reg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	baseURL := "http://" + ln.Addr().String()

	// A pooled client with a hard connection cap: client and server share
	// one process, so every connection costs two file descriptors, and an
	// uncapped transport dialing into a burst can exhaust the fd limit.
	// Past the cap, requests wait for a free connection — queueing that an
	// open loop should count, and does.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
		MaxConnsPerHost:     512,
	}}

	// One prepared handle — the join projection — executed the whole run.
	prepBody, _ := json.Marshal(map[string]any{"query": "q(Y) :- r(X,Z), s(Z,Y)."})
	resp, err := client.Post(baseURL+"/v1/prepare", "application/json", bytes.NewReader(prepBody))
	if err != nil {
		return err
	}
	praw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("prepare: %d %s", resp.StatusCode, praw)
	}
	var prep struct {
		Handle string `json:"handle"`
	}
	if err := json.Unmarshal(praw, &prep); err != nil {
		return err
	}

	// Pre-encoded request body: no JSON encoding inside the timed loops.
	execBody, _ := json.Marshal(map[string]any{"handle": prep.Handle, "args": []string{}})

	report := ServeBenchReport{
		Command:       fmt.Sprintf("aqvbench -serve %s -serve-dur %s -serve-conc %s", path, dur, concSpec),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Tuples:        ns.Engine.Database().TotalTuples(),
		MaxConcurrent: serveBenchMaxConcurrent,
		MaxQueue:      serveBenchMaxQueue,
	}

	// runPoint measures one load point: snapshot admission counters, drive
	// the load, snapshot again, diff.
	runPoint := func(mode string, drive func(res *serveLoadResult) time.Duration) (ServeBenchPoint, error) {
		before, err := admissionDeltas(client, baseURL)
		if err != nil {
			return ServeBenchPoint{}, err
		}
		var res serveLoadResult
		wall := drive(&res)
		after, err := admissionDeltas(client, baseURL)
		if err != nil {
			return ServeBenchPoint{}, err
		}
		p, err := res.point(mode, wall)
		if err != nil {
			return ServeBenchPoint{}, err
		}
		p.Admitted = after.Admitted - before.Admitted
		p.Queued = after.Queued - before.Queued
		p.ShedSrv = after.Shed - before.Shed
		p.TimedOut = after.TimedOut - before.TimedOut
		p.Canceled = after.Canceled - before.Canceled
		return p, nil
	}

	// Closed loop: conc workers, back-to-back requests until the deadline.
	closedLoop := func(conc int) func(*serveLoadResult) time.Duration {
		return func(res *serveLoadResult) time.Duration {
			start := time.Now()
			deadline := start.Add(dur)
			var wg sync.WaitGroup
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for time.Now().Before(deadline) {
						fireExec(client, baseURL+"/v1/exec", execBody, res)
					}
				}()
			}
			wg.Wait()
			return time.Since(start)
		}
	}
	for _, conc := range concLevels {
		p, err := runPoint("closed", closedLoop(conc))
		if err != nil {
			return fmt.Errorf("closed conc=%d: %w", conc, err)
		}
		p.Concurrency = conc
		fmt.Printf("closed conc=%-3d ok=%-7d shed=%-5d %.0f req/s p50=%.2fms p95=%.2fms p99=%.2fms\n",
			conc, p.OK, p.Shed, p.ThroughputRPS, p.P50Ms, p.P95Ms, p.P99Ms)
		report.Closed = append(report.Closed, p)
		if p.ThroughputRPS > report.SaturationRPS {
			report.SaturationRPS = p.ThroughputRPS
		}
	}

	// Open loop: fixed arrival schedule, one goroutine per arrival —
	// completions never gate arrivals, so queueing (and, past saturation,
	// shedding) is visible instead of hidden in a closed loop's back
	// pressure. Rates bracket the measured saturation point.
	openLoop := func(rate float64) func(*serveLoadResult) time.Duration {
		return func(res *serveLoadResult) time.Duration {
			interval := time.Duration(float64(time.Second) / rate)
			start := time.Now()
			var wg sync.WaitGroup
			// In-flight backstop: 2048 outstanding requests is far past any
			// stable operating point for this workload, so the cap only
			// engages in a death spiral — where it keeps the generator from
			// exhausting file descriptors instead of crashing the run.
			slots := make(chan struct{}, 2048)
			for i := 0; ; i++ {
				next := start.Add(time.Duration(i) * interval)
				if next.Sub(start) >= dur {
					break
				}
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				slots <- struct{}{}
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-slots }()
					fireExec(client, baseURL+"/v1/exec", execBody, res)
				}()
			}
			wg.Wait()
			return time.Since(start)
		}
	}
	for _, frac := range []float64{0.7, 1.3} {
		rate := report.SaturationRPS * frac
		if rate < 1 {
			rate = 1
		}
		p, err := runPoint("open", openLoop(rate))
		if err != nil {
			return fmt.Errorf("open rate=%.0f: %w", rate, err)
		}
		p.TargetRPS = rate
		fmt.Printf("open  rate=%-7.0f ok=%-7d shed=%-5d (server shed=%d) p50=%.2fms p95=%.2fms p99=%.2fms\n",
			rate, p.OK, p.Shed, p.ShedSrv, p.P50Ms, p.P95Ms, p.P99Ms)
		report.Open = append(report.Open, p)
	}

	batch, err := runBatchChurn(client, baseURL, execBody, dur)
	if err != nil {
		return fmt.Errorf("batch churn: %w", err)
	}
	report.Batch = batch
	fmt.Printf("batch churn     batches=%-5d deleted=%-5d reads=%-6d %.0f batch/s p50=%.2fms p95=%.2fms p99=%.2fms\n",
		batch.Batches, batch.Deleted, batch.ReadsOK, batch.BatchesPerS, batch.P50Ms, batch.P95Ms, batch.P99Ms)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runBatchChurn drives the mixed-batch phase: one writer streams /v1/batch
// requests back to back for dur — batch i inserts r(churn<i>, m0) and
// retracts r(churn<i-1>, m0), so exactly one churn fact is live at any
// moment — while two prepared-exec readers run concurrently against the
// left-right snapshots the publishes flip. The phase ends with a point
// query proving the final churn fact answers and its predecessor does not.
func runBatchChurn(client *http.Client, baseURL string, execBody []byte, dur time.Duration) (*ServeBatchPoint, error) {
	p := &ServeBatchPoint{}
	var latencies []time.Duration

	stop := make(chan struct{})
	var readOK, readErrs int
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var res serveLoadResult
			for {
				select {
				case <-stop:
					res.mu.Lock()
					readOK += res.ok + res.shed
					readErrs += res.errs
					res.mu.Unlock()
					return
				default:
					fireExec(client, baseURL+"/v1/exec", execBody, &res)
				}
			}
		}()
	}

	postBatch := func(i int) error {
		body := map[string]any{
			"updates": map[string][][]string{"r": {{fmt.Sprintf("churn%d", i), "m0"}}},
		}
		wantDeleted := 0
		if i > 0 {
			body["deletes"] = map[string][][]string{"r": {{fmt.Sprintf("churn%d", i-1), "m0"}}}
			wantDeleted = 1
		}
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		start := time.Now()
		resp, err := client.Post(baseURL+"/v1/batch", "application/json", bytes.NewReader(data))
		d := time.Since(start)
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("batch %d: %d %s", i, resp.StatusCode, raw)
		}
		var br struct {
			Deleted int `json:"deleted"`
		}
		if err := json.Unmarshal(raw, &br); err != nil {
			return err
		}
		if br.Deleted != wantDeleted {
			return fmt.Errorf("batch %d: deleted = %d, want %d", i, br.Deleted, wantDeleted)
		}
		latencies = append(latencies, d)
		p.Batches++
		p.Inserted++
		p.Deleted += wantDeleted
		return nil
	}

	start := time.Now()
	deadline := start.Add(dur)
	var churnErr error
	for i := 0; time.Now().Before(deadline) || i == 0; i++ {
		if churnErr = postBatch(i); churnErr != nil {
			break
		}
	}
	wall := time.Since(start)
	close(stop)
	wg.Wait()
	if churnErr != nil {
		return nil, churnErr
	}
	p.DurationS = wall.Seconds()
	p.ReadsOK = readOK
	p.Errors = readErrs
	if secs := wall.Seconds(); secs > 0 {
		p.BatchesPerS = float64(p.Batches) / secs
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p.P50Ms = percentileMs(latencies, 0.50)
	p.P95Ms = percentileMs(latencies, 0.95)
	p.P99Ms = percentileMs(latencies, 0.99)

	// Consistency probe: the final churn fact answers through the view,
	// its retracted predecessor does not.
	probe := func(key string) (int, error) {
		body, _ := json.Marshal(map[string]any{
			"query": fmt.Sprintf("q(Y) :- r(%s,Z), s(Z,Y).", key),
		})
		resp, err := client.Post(baseURL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("probe %s: %d %s", key, resp.StatusCode, raw)
		}
		var ans struct {
			Count int `json:"count"`
		}
		if err := json.Unmarshal(raw, &ans); err != nil {
			return 0, err
		}
		return ans.Count, nil
	}
	last := fmt.Sprintf("churn%d", p.Batches-1)
	if n, err := probe(last); err != nil {
		return nil, err
	} else if n != 1 {
		return nil, fmt.Errorf("final churn fact %s: %d answers, want 1", last, n)
	}
	if p.Batches > 1 {
		prev := fmt.Sprintf("churn%d", p.Batches-2)
		if n, err := probe(prev); err != nil {
			return nil, err
		} else if n != 0 {
			return nil, fmt.Errorf("retracted churn fact %s still answers (%d)", prev, n)
		}
	}
	return p, nil
}

// parseConcLevels parses the -serve-conc list ("4,16"). At least two levels
// are required — a single point cannot show how latency moves with load.
func parseConcLevels(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -serve-conc %q: want comma-separated positive ints", spec)
		}
		out = append(out, n)
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("-serve-conc needs at least two levels, got %q", spec)
	}
	return out, nil
}
