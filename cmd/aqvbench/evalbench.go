package main

// Evaluator benchmark harness: measures the warm, cold and parallel paths
// of the compiled slot-based executor against the retained tuple-at-a-time
// interpreter on the serving-shaped workloads, and writes the results as
// machine-readable JSON (BENCH_eval.json) so successive PRs can track the
// evaluator's performance trajectory.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/inverserules"
	"repro/internal/ivm"
	"repro/internal/minicon"
	"repro/internal/storage"
	"repro/internal/workload"
)

// BenchPoint is one measured route.
type BenchPoint struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// EvalBenchResult is one workload's measurements.
type EvalBenchResult struct {
	Name    string `json:"name"`
	Query   string `json:"query"`
	Tuples  int    `json:"tuples"`
	Answers int    `json:"answers"`
	// Interp is the tuple-at-a-time interpreter (the pre-compilation
	// evaluator): map bindings, per-call greedy ordering.
	Interp BenchPoint `json:"interp"`
	// Cold compiles the plan and runs it once per op.
	Cold BenchPoint `json:"cold"`
	// Warm runs a precompiled plan per op — the engine's steady state.
	Warm BenchPoint `json:"warm"`
	// Parallel runs the precompiled plan with EvalParallel(GOMAXPROCS).
	Parallel BenchPoint `json:"parallel"`
	// WarmSpeedupVsInterp is Interp.NsPerOp / Warm.NsPerOp.
	WarmSpeedupVsInterp float64 `json:"warm_speedup_vs_interp"`
	// WarmAllocReductionVsInterp is Interp.Allocs / Warm.Allocs.
	WarmAllocReductionVsInterp float64 `json:"warm_alloc_reduction_vs_interp"`
}

// ProgramBenchResult is one recursive-program workload's measurements:
// interpretive fixpoint vs the compiled semi-naive executor.
type ProgramBenchResult struct {
	Name string `json:"name"`
	// Rules is the number of rules in the program.
	Rules int `json:"rules"`
	// Tuples is the EDB size; Derived the IDB tuples the fixpoint adds;
	// Iterations the semi-naive rounds.
	Tuples     int `json:"tuples"`
	Derived    int `json:"derived"`
	Iterations int `json:"iterations"`
	// Interp is Program.EvalInterp, the tuple-at-a-time baseline.
	Interp BenchPoint `json:"interp"`
	// Cold compiles the program and evaluates once per op.
	Cold BenchPoint `json:"cold"`
	// Warm evaluates a precompiled program per op (Eval: returns the full
	// EDB+IDB database, clone included — the like-for-like comparison).
	Warm BenchPoint `json:"warm"`
	// WarmServing is EvalRelation on the precompiled program: the engine's
	// steady state, answer relation only, no database clone.
	WarmServing BenchPoint `json:"warm_serving"`
	// WarmSpeedupVsInterp is Interp.NsPerOp / Warm.NsPerOp.
	WarmSpeedupVsInterp float64 `json:"warm_speedup_vs_interp"`
}

// IVMBenchResult compares incremental maintenance of materialized extents
// against full re-materialization for one workload and delta size.
type IVMBenchResult struct {
	Name string `json:"name"`
	// BaseTuples is the base database size; ExtentTuples the total
	// materialized (derived) tuples before the delta.
	BaseTuples   int `json:"base_tuples"`
	ExtentTuples int `json:"extent_tuples"`
	// DeltaTuples is the batch size; DeltaDerived the extent tuples one
	// batch derived.
	DeltaTuples  int `json:"delta_tuples"`
	DeltaDerived int `json:"delta_derived"`
	// DeltaDeleted is the batch's base-retraction count and DeltaRetracted
	// the extent tuples those retractions removed — non-monotone points
	// (delete-heavy, mixed churn, DRed) only.
	DeltaDeleted   int `json:"delta_deleted,omitempty"`
	DeltaRetracted int `json:"delta_retracted,omitempty"`
	// FullNs re-materializes every extent from the updated base; DeltaNs
	// runs the compiled delta propagation for the same batch.
	FullNs  float64 `json:"full_ns_per_op"`
	DeltaNs float64 `json:"delta_ns_per_op"`
	// Speedup is FullNs / DeltaNs.
	Speedup float64 `json:"speedup_delta_vs_full"`
}

// PreparedBenchResult measures one varying-constant query stream through
// the serving engine: per-query cost of planning from scratch (what every
// distinct constant paid before template caching), of Answer (template
// canonicalisation + cache hit + bound execution) and of prepared Exec
// (bound execution only).
type PreparedBenchResult struct {
	Name     string `json:"name"`
	Strategy string `json:"strategy"`
	// Queries is the stream length; Tuples the serving database size.
	Queries int `json:"queries"`
	Tuples  int `json:"tuples"`
	// ColdNsPerQuery plans, compiles and executes each query from scratch
	// (rewriting search included) — the per-query cost of a cache miss.
	ColdNsPerQuery float64 `json:"cold_ns_per_query"`
	// AnswerNsPerQuery streams the queries through Engine.Answer: the
	// whole stream shares one template plan.
	AnswerNsPerQuery float64 `json:"answer_ns_per_query"`
	// PreparedNsPerQuery streams the bindings through PreparedQuery.Exec.
	PreparedNsPerQuery float64 `json:"prepared_ns_per_query"`
	// CacheMisses/CacheHits witness the template sharing over one Answer
	// pass of the stream (one miss, len-1 hits).
	CacheMisses uint64 `json:"cache_misses"`
	CacheHits   uint64 `json:"cache_hits"`
	// SpeedupPreparedVsCold is ColdNsPerQuery / PreparedNsPerQuery;
	// SpeedupAnswerVsCold the same for the Answer route.
	SpeedupPreparedVsCold float64 `json:"speedup_prepared_vs_cold"`
	SpeedupAnswerVsCold   float64 `json:"speedup_answer_vs_cold"`
}

// ShardPoint is one shard count's measurement in a partitioned scaling
// sweep.
type ShardPoint struct {
	Shards int `json:"shards"`
	// Workers is the goroutine fan-out used at this point:
	// min(shards, GOMAXPROCS) — on a single-core host every point runs
	// sequentially and the curve isolates the data-layout effect.
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	// FlatNs is the flat baseline measured interleaved with this point
	// (flat and sharded runs alternate in the same process), which keeps
	// the ratio honest on hosts with drifting clock speed or noisy
	// neighbours. SpeedupVsFlat is FlatNs / NsPerOp.
	FlatNs        float64 `json:"flat_ns,omitempty"`
	SpeedupVsFlat float64 `json:"speedup_vs_flat"`
}

// PartitionedBenchResult is one workload's shard-count scaling sweep: the
// flat evaluator against the sharded executor at 1..max shards. On
// multi-core hosts the curve mixes parallelism with locality; on a
// single-core host it isolates the physical-layout effect (shard-local
// index maps a fraction of the monolithic size, exchange operators turning
// scattered probes into shard-major sweeps).
type PartitionedBenchResult struct {
	Name    string `json:"name"`
	Query   string `json:"query,omitempty"`
	Tuples  int    `json:"tuples"`
	Answers int    `json:"answers,omitempty"`
	// FlatNs is the unpartitioned baseline: EvalParallel (or the flat
	// fixpoint / maintenance path) at GOMAXPROCS workers.
	FlatNs float64 `json:"flat_ns_per_op"`
	// Sweep holds one point per shard count, ascending.
	Sweep []ShardPoint `json:"sweep"`
	// MaxShardSpeedup is the speedup at the largest shard count.
	MaxShardSpeedup float64 `json:"max_shard_speedup"`
}

// EvalBenchReport is the top-level BENCH_eval.json document.
type EvalBenchReport struct {
	Command    string            `json:"command"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Workloads  []EvalBenchResult `json:"workloads"`
	// Programs are the recursive fixpoint workloads (compiled semi-naive
	// executor vs interpretive baseline).
	Programs []ProgramBenchResult `json:"programs"`
	// IVM compares delta maintenance against full re-materialization at
	// varying delta sizes (the live-engine update path).
	IVM []IVMBenchResult `json:"ivm"`
	// Prepared compares cold per-query planning, template-cached Answer
	// and prepared Exec on varying-constant point-lookup streams.
	Prepared []PreparedBenchResult `json:"prepared"`
	// Partitioned holds the hash-partitioned scaling sweeps (-scaling):
	// sharded execution at 1..max shards against the flat evaluator.
	Partitioned []PartitionedBenchResult `json:"partitioned,omitempty"`
	// Governance measures the cost of the context-aware execution paths
	// (-governance): legacy evaluation against the same evaluation with a
	// live cancellation guard (cancelable context, amortized polling).
	Governance []GovernanceBenchResult `json:"governance,omitempty"`
	// Durability measures the snapshot + WAL subsystem: cold start from a
	// checkpoint against full re-materialization, snapshot write cost, and
	// WAL replay throughput after an uncheckpointed crash.
	Durability []DurabilityBenchResult `json:"durability,omitempty"`
}

// GovernanceBenchResult is one workload's cancellation-guard overhead
// measurement: the legacy (guard-free) path against the context-aware path
// carrying a live guard, interleaved in one process. OverheadPct is the
// governed slowdown in percent; the CI gate requires it under 3%.
type GovernanceBenchResult struct {
	Name       string  `json:"name"`
	Tuples     int     `json:"tuples"`
	Answers    int     `json:"answers,omitempty"`
	BaselineNs float64 `json:"baseline_ns_per_op"`
	GovernedNs float64 `json:"governed_ns_per_op"`
	// OverheadPct = (GovernedNs/BaselineNs - 1) * 100.
	OverheadPct float64 `json:"overhead_pct"`
}

type evalWorkload struct {
	name string
	db   *storage.Database
	q    *cq.Query
}

// evalWorkloads mirrors the Benchmark* workloads in internal/datalog:
// serving-shaped queries where the join loop, not answer materialisation,
// carries the cost — plus the projection/decomposition shapes for coverage.
func evalWorkloads() []evalWorkload {
	var ws []evalWorkload

	rng := rand.New(rand.NewSource(51))
	ws = append(ws, evalWorkload{"chain5", workload.ChainDatabase(rng, 5, true, 2000, 2000), workload.ChainQuery(5, true)})

	rng = rand.New(rand.NewSource(55))
	point := workload.ChainQuery(6, true)
	point.Body[0].Args[0] = cq.Const("c0")
	point.Head.Args = point.Head.Args[1:]
	ws = append(ws, evalWorkload{"point_lookup", workload.ChainDatabase(rng, 6, true, 5000, 4000), point})

	rng = rand.New(rand.NewSource(57))
	ws = append(ws, evalWorkload{"needle", workload.ChainDatabase(rng, 5, true, 2000, 4000), workload.ChainQuery(5, true)})

	rng = rand.New(rand.NewSource(56))
	comp := workload.ChainQuery(4, true)
	comp.AddComparison(cq.NewComparison(cq.Var("X0"), cq.Lt, cq.Var("X1")))
	ws = append(ws, evalWorkload{"comparison", workload.ChainDatabase(rng, 4, true, 1500, 1500), comp})

	rng = rand.New(rand.NewSource(52))
	starDB := workload.RandomDatabase(rng, []string{"p1", "p2", "p3", "p4"}, 2, 1200, 1500)
	ws = append(ws, evalWorkload{"star4", starDB, workload.StarQuery(4, true)})

	rng = rand.New(rand.NewSource(53))
	dcDB := storage.NewDatabase()
	for i := 0; i < 1500; i++ {
		dcDB.Insert("v", storage.Tuple{
			fmt.Sprint(rng.Intn(6)), fmt.Sprint(rng.Intn(7)),
			fmt.Sprint(rng.Intn(5)), fmt.Sprint(i),
		})
	}
	ws = append(ws, evalWorkload{"dont_care", dcDB,
		cq.MustParseQuery("q(X0,X3) :- v(X0,X1,F0,F1), v(F2,X1,X2,F3), v(F4,F5,X2,X3)")})

	rng = rand.New(rand.NewSource(54))
	disDB := storage.NewDatabase()
	for i := 0; i < 600; i++ {
		disDB.Insert("v1", storage.Tuple{fmt.Sprint(rng.Intn(600))})
		disDB.Insert("v2", storage.Tuple{fmt.Sprint(rng.Intn(600))})
		disDB.Insert("v3", storage.Tuple{fmt.Sprint(rng.Intn(600))})
	}
	ws = append(ws, evalWorkload{"disconnected", disDB, cq.MustParseQuery("q(X) :- v1(X), v2(A), v3(B)")})

	return ws
}

type programWorkload struct {
	name       string
	db         *storage.Database
	prog       *datalog.Program
	answerPred string
}

// programWorkloads mirrors the BenchmarkProgram* workloads in
// internal/datalog: recursive transitive closures (acyclic and cyclic) and
// the inverse-rules serving program, the shapes the ISSUE acceptance
// criteria track.
func programWorkloads() []programWorkload {
	var ws []programWorkload
	tc := func() *datalog.Program {
		return datalog.NewProgram(
			datalog.RuleFromQuery(cq.MustParseQuery("tc(X,Y) :- e(X,Y)")),
			datalog.RuleFromQuery(cq.MustParseQuery("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
		)
	}

	rng := rand.New(rand.NewSource(61))
	chain := storage.NewDatabase()
	for i := 0; i < 120; i++ {
		chain.Insert("e", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i + 1)})
	}
	for i := 0; i < 40; i++ {
		from := rng.Intn(120)
		chain.Insert("e", storage.Tuple{fmt.Sprint(from), fmt.Sprint(from + 1 + rng.Intn(5))})
	}
	ws = append(ws, programWorkload{"tc_chain", chain, tc(), "tc"})

	rng = rand.New(rand.NewSource(62))
	cyc := storage.NewDatabase()
	const n = 60
	for i := 0; i < n; i++ {
		cyc.Insert("e", storage.Tuple{fmt.Sprint(i), fmt.Sprint((i + 1) % n)})
	}
	for i := 0; i < 2*n; i++ {
		cyc.Insert("e", storage.Tuple{fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n))})
	}
	ws = append(ws, programWorkload{"tc_cycle", cyc, tc(), "tc"})

	// Inverse-rules serving: invert v1(A,B) :- r(A,C), s(C,B) and
	// v2(A,B) :- r(A,B) over materialised extents, then answer
	// q(X,Y) :- r(X,Z), s(Z,Y) — built through the real inverter.
	rng = rand.New(rand.NewSource(63))
	viewDB := storage.NewDatabase()
	for i := 0; i < 2000; i++ {
		viewDB.Insert("v1", storage.Tuple{fmt.Sprint(rng.Intn(800)), fmt.Sprint(rng.Intn(800))})
		viewDB.Insert("v2", storage.Tuple{fmt.Sprint(rng.Intn(800)), fmt.Sprint(rng.Intn(800))})
	}
	views := []*cq.Query{
		cq.MustParseQuery("v1(A,B) :- r(A,C), s(C,B)"),
		cq.MustParseQuery("v2(A,B) :- r(A,B)"),
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	prog, err := inverserules.Program(q, views)
	if err != nil {
		panic(err)
	}
	ws = append(ws, programWorkload{"inverse_serving", viewDB, prog, "q"})
	return ws
}

func toPoint(r testing.BenchmarkResult) BenchPoint {
	return BenchPoint{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runEvalBench measures every workload and writes the JSON report to path
// ("-" prints to stdout only). The workloads/programs/ivm/prepared sections
// are replaced; sections owned by other modes (partitioned, governance)
// are preserved when the file already exists.
func runEvalBench(path string) error {
	var report EvalBenchReport
	if path != "-" {
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &report); err != nil {
				return fmt.Errorf("parse existing %s: %w", path, err)
			}
		}
	}
	report.Command = "aqvbench -evalbench " + path
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.Workloads = nil
	report.Programs = nil
	report.IVM = nil
	report.Prepared = nil
	report.Durability = nil
	for _, w := range evalWorkloads() {
		w.db.BuildIndexes()
		cat := cost.NewCatalog(w.db)
		rowCat := cost.NewRowCatalog(w.db)
		plan := datalog.Compile(w.q, cat)
		res := EvalBenchResult{
			Name:    w.name,
			Query:   w.q.String(),
			Tuples:  w.db.TotalTuples(),
			Answers: len(plan.Eval(w.db)),
		}
		db, q := w.db, w.q
		res.Interp = toPoint(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				datalog.EvalQueryInterp(db, q)
			}
		}))
		res.Cold = toPoint(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				datalog.Compile(q, rowCat).Eval(db)
			}
		}))
		res.Warm = toPoint(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan.Eval(db)
			}
		}))
		workers := runtime.GOMAXPROCS(0)
		res.Parallel = toPoint(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan.EvalParallel(db, workers)
			}
		}))
		if res.Warm.NsPerOp > 0 {
			res.WarmSpeedupVsInterp = res.Interp.NsPerOp / res.Warm.NsPerOp
		}
		if res.Warm.AllocsPerOp > 0 {
			res.WarmAllocReductionVsInterp = float64(res.Interp.AllocsPerOp) / float64(res.Warm.AllocsPerOp)
		}
		fmt.Printf("%-14s answers=%-6d interp=%.0fns warm=%.0fns (%.2fx) parallel=%.0fns allocs %d->%d (%.1fx)\n",
			res.Name, res.Answers, res.Interp.NsPerOp, res.Warm.NsPerOp, res.WarmSpeedupVsInterp,
			res.Parallel.NsPerOp, res.Interp.AllocsPerOp, res.Warm.AllocsPerOp, res.WarmAllocReductionVsInterp)
		report.Workloads = append(report.Workloads, res)
	}
	for _, w := range programWorkloads() {
		w.db.BuildIndexes()
		cat := cost.NewCatalog(w.db)
		rowCat := cost.NewRowCatalog(w.db)
		cp, err := datalog.CompileProgram(w.prog, cat)
		if err != nil {
			return err
		}
		_, fst, err := cp.EvalRelation(w.db, w.answerPred, 1)
		if err != nil {
			return err
		}
		res := ProgramBenchResult{
			Name:       w.name,
			Rules:      len(w.prog.Rules),
			Tuples:     w.db.TotalTuples(),
			Derived:    fst.Derived,
			Iterations: fst.Iterations,
		}
		db, prog, pred := w.db, w.prog, w.answerPred
		res.Interp = toPoint(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := prog.EvalInterp(db); err != nil {
					b.Fatal(err)
				}
			}
		}))
		res.Cold = toPoint(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cp2, err := datalog.CompileProgram(prog, rowCat)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cp2.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		}))
		res.Warm = toPoint(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cp.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		}))
		res.WarmServing = toPoint(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := cp.EvalRelation(db, pred, 1); err != nil {
					b.Fatal(err)
				}
			}
		}))
		if res.Warm.NsPerOp > 0 {
			res.WarmSpeedupVsInterp = res.Interp.NsPerOp / res.Warm.NsPerOp
		}
		fmt.Printf("%-16s derived=%-6d rounds=%-3d interp=%.0fns warm=%.0fns (%.2fx) serving=%.0fns allocs %d->%d\n",
			res.Name, res.Derived, res.Iterations, res.Interp.NsPerOp, res.Warm.NsPerOp,
			res.WarmSpeedupVsInterp, res.WarmServing.NsPerOp, res.Interp.AllocsPerOp, res.Warm.AllocsPerOp)
		report.Programs = append(report.Programs, res)
	}

	if err := runIVMBench(&report); err != nil {
		return err
	}
	if err := runPreparedBench(&report); err != nil {
		return err
	}
	if err := runDurabilityBench(&report); err != nil {
		return err
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runPreparedBench measures the prepared-query serving path on streams of
// point lookups differing only in their constants: every query shares one
// template, so the whole stream compiles exactly one plan. The cold column
// re-runs the rewriting search and physical compilation per query — what
// each distinct constant cost when plans were cached per fingerprint.
func runPreparedBench(report *EvalBenchReport) error {
	const streamLen = 1000
	const reps = 3

	rng := rand.New(rand.NewSource(81))
	base := storage.NewDatabase()
	for i := 0; i < 4000; i++ {
		base.Insert("r", storage.Tuple{fmt.Sprintf("k%d", i), fmt.Sprintf("m%d", rng.Intn(200))})
	}
	for j := 0; j < 200; j++ {
		base.Insert("s", storage.Tuple{fmt.Sprintf("m%d", j), fmt.Sprintf("x%d", j%17)})
	}
	joinViews, err := cq.ParseViews(`
		v(A,B)  :- r(A,C), s(C,B).
		vr(A,B) :- r(A,B).
		vs(A,B) :- s(A,B).
	`)
	if err != nil {
		return err
	}
	restricted, err := cq.ParseViews("v(A,B) :- r(A,C), s(C,B).")
	if err != nil {
		return err
	}

	cases := []struct {
		name     string
		strategy engine.Strategy
		views    []*cq.Query
	}{
		// Full coverage: the point lookup rewrites to an equivalent view probe.
		{"point_equivalent", engine.EquivalentFirst, joinViews},
		// Join view only, MiniCon: the plan is a one-member MCR union.
		{"point_minicon", engine.MiniCon, restricted},
	}
	for _, bench := range cases {
		queries := make([]*cq.Query, streamLen)
		args := make([]string, streamLen)
		for i := range queries {
			args[i] = fmt.Sprintf("k%d", i)
			queries[i] = cq.MustParseQuery(fmt.Sprintf("q(Y) :- r(%s,Z), s(Z,Y)", args[i]))
		}
		eng, err := engine.NewFromBase(base, bench.views, engine.Options{Strategy: bench.strategy, KeepComparisons: true})
		if err != nil {
			return err
		}
		// One untimed Answer pass witnesses the template sharing.
		for _, q := range queries {
			if _, err := eng.Answer(q); err != nil {
				return err
			}
		}
		st := eng.Stats()
		res := PreparedBenchResult{
			Name:        bench.name,
			Strategy:    string(bench.strategy),
			Queries:     streamLen,
			Tuples:      eng.Database().TotalTuples(),
			CacheMisses: st.Misses,
			CacheHits:   st.Hits,
		}

		answerNs, _, err := minNs(reps, func(int) error {
			for _, q := range queries {
				if _, err := eng.Answer(q); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		res.AnswerNsPerQuery = answerNs / streamLen

		pq, err := eng.Prepare(queries[0])
		if err != nil {
			return err
		}
		preparedNs, _, err := minNs(reps, func(int) error {
			for _, a := range args {
				if _, err := pq.Exec(a); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		res.PreparedNsPerQuery = preparedNs / streamLen

		// Cold: rewriting search + physical compilation + execution per
		// query, over a sample (the search dominates; no need for all
		// 1000). Planning runs on the engine's own serving database.
		vs, err := core.NewViewSet(bench.views...)
		if err != nil {
			return err
		}
		db := eng.Database()
		cat := cost.NewCatalog(db)
		const coldSample = 100
		coldNs, _, err := minNs(2, func(int) error {
			for i := 0; i < coldSample; i++ {
				q := queries[i]
				switch bench.strategy {
				case engine.EquivalentFirst:
					rw := core.NewRewriter(vs).RewriteOne(cq.Canonicalize(q))
					if rw == nil {
						return fmt.Errorf("%s: no rewriting for %s", bench.name, q)
					}
					datalog.Compile(rw.Query, cat).Eval(db)
				case engine.MiniCon:
					u, _, err := minicon.Rewrite(cq.Canonicalize(q), vs, minicon.Options{VerifyCandidates: true, KeepComparisons: true})
					if err != nil {
						return err
					}
					for _, m := range u.Queries {
						datalog.Compile(m, cat).Eval(db)
					}
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		res.ColdNsPerQuery = coldNs / coldSample
		if res.PreparedNsPerQuery > 0 {
			res.SpeedupPreparedVsCold = res.ColdNsPerQuery / res.PreparedNsPerQuery
		}
		if res.AnswerNsPerQuery > 0 {
			res.SpeedupAnswerVsCold = res.ColdNsPerQuery / res.AnswerNsPerQuery
		}
		fmt.Printf("%-18s misses=%d hits=%d cold=%.0fns answer=%.0fns prepared=%.0fns (%.1fx vs cold)\n",
			res.Name, res.CacheMisses, res.CacheHits, res.ColdNsPerQuery,
			res.AnswerNsPerQuery, res.PreparedNsPerQuery, res.SpeedupPreparedVsCold)
		report.Prepared = append(report.Prepared, res)
	}
	return nil
}

// shardCounts is the scaling sweep's x-axis: powers of two from 1 up to
// max(GOMAXPROCS, 8). Sweeping past the core count is deliberate — shard
// count is a physical-design axis (index-map size, exchange batching), not
// just a parallelism axis, and on small hosts the layout effect is the
// whole curve.
func shardCounts() []int {
	limit := runtime.GOMAXPROCS(0)
	if limit < 8 {
		limit = 8
	}
	var out []int
	for s := 1; s <= limit; s *= 2 {
		out = append(out, s)
	}
	if out[len(out)-1] != limit {
		out = append(out, limit)
	}
	return out
}

// localityShardCounts is the x-axis for the large serving workload: powers
// of four up to max(256, GOMAXPROCS). The cache-locality payoff of shards
// grows until a shard's probe working set fits the fast cache levels, which
// on multi-megabyte relations takes shard counts far past any core count.
func localityShardCounts() []int {
	limit := 256
	if p := runtime.GOMAXPROCS(0); p > limit {
		limit = p
	}
	var out []int
	for s := 1; s <= limit; s *= 4 {
		out = append(out, s)
	}
	if out[len(out)-1] != limit {
		out = append(out, limit)
	}
	return out
}

// sweepWorkers caps the fan-out at one goroutine per shard and per core.
func sweepWorkers(shards int) int {
	w := runtime.GOMAXPROCS(0)
	if shards < w {
		w = shards
	}
	return w
}

// runScalingBench measures the sharded executor against the flat evaluator
// across shard counts and merges the "partitioned" section into the JSON
// report at path (preserving the other sections when the file exists;
// "-" prints the whole report to stdout).
func runScalingBench(path string) error {
	var report EvalBenchReport
	if path != "-" {
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &report); err != nil {
				return fmt.Errorf("parse existing %s: %w", path, err)
			}
		}
	}
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	if report.Command == "" {
		report.Command = "aqvbench -scaling " + path
	}
	report.Partitioned = nil

	// sweep measures one workload across shard counts. Per point it builds
	// the partitioned database (one at a time, so retained shards never
	// inflate the GC heap for later points), then alternates flat and
	// sharded runs for `rounds` rounds and keeps the best of each side:
	// interleaving in one process is what makes the ratio trustworthy on a
	// host where cross-process runs of the same binary vary by ±30%.
	sweep := func(res PartitionedBenchResult, counts []int, rounds int,
		flat func(rep int) error, mkpdb func(s int) (*storage.PartitionedDatabase, error),
		shard func(pdb *storage.PartitionedDatabase, w, rep int) error) error {
		for _, s := range counts {
			pdb, err := mkpdb(s)
			if err != nil {
				return err
			}
			w := sweepWorkers(s)
			var flatBest, shardBest float64 = -1, -1
			for r := 0; r < rounds; r++ {
				start := time.Now()
				if err := flat(r); err != nil {
					return err
				}
				if d := float64(time.Since(start).Nanoseconds()); flatBest < 0 || d < flatBest {
					flatBest = d
				}
				start = time.Now()
				if err := shard(pdb, w, r); err != nil {
					return err
				}
				if d := float64(time.Since(start).Nanoseconds()); shardBest < 0 || d < shardBest {
					shardBest = d
				}
			}
			if flatBest < 1 {
				flatBest = 1
			}
			if shardBest < 1 {
				shardBest = 1
			}
			res.Sweep = append(res.Sweep, ShardPoint{
				Shards: s, Workers: w, NsPerOp: shardBest,
				FlatNs: flatBest, SpeedupVsFlat: flatBest / shardBest,
			})
			if res.FlatNs == 0 || flatBest < res.FlatNs {
				res.FlatNs = flatBest
			}
		}
		res.MaxShardSpeedup = res.Sweep[len(res.Sweep)-1].SpeedupVsFlat
		fmt.Printf("%-14s tuples=%-7d flat=%.1fms", res.Name, res.Tuples, res.FlatNs/1e6)
		for _, p := range res.Sweep {
			fmt.Printf("  s%d=%.2fx", p.Shards, p.SpeedupVsFlat)
		}
		fmt.Println()
		report.Partitioned = append(report.Partitioned, res)
		return nil
	}

	// serve_join: the join-heavy serving workload — a guarded fan-out join
	//   q(Y,Z) :- p1(W,X), p2(X,Y), p3(Y,Z)
	// over a small root (p2), an existential guard (p1) and a large fan-out
	// relation (p3, ~20 tuples per key). Most of the flat evaluator's time
	// goes to walking p3's candidate lists — positions slice, tuple headers,
	// key bytes scattered across a multi-hundred-MB heap. Partitioning on
	// the plan's probe columns (PartitionHints) keeps the probes shard-local
	// and the per-shard arenas (interned at Partition time) make each task's
	// walk working set contiguous; the head carries the routing slot, so
	// per-task answers are disjoint and merge without a dedup pass.
	{
		rng := rand.New(rand.NewSource(91))
		db := storage.NewDatabase()
		for i := 0; i < 400000; i++ {
			db.Insert("p1", storage.Tuple{"w" + fmt.Sprint(rng.Intn(1000000)), "x" + fmt.Sprint(rng.Intn(300000))})
		}
		for i := 0; i < 150000; i++ {
			db.Insert("p2", storage.Tuple{"x" + fmt.Sprint(rng.Intn(300000)), "k" + fmt.Sprint(rng.Intn(100000))})
		}
		for i := 0; i < 2000000; i++ {
			db.Insert("p3", storage.Tuple{"k" + fmt.Sprint(rng.Intn(100000)), "z" + fmt.Sprint(rng.Intn(5000000))})
		}
		q := cq.MustParseQuery("q(Y,Z) :- p1(W,X), p2(X,Y), p3(Y,Z)")
		db.BuildIndexes()
		cat := cost.NewCatalog(db)
		plan := datalog.Compile(q, cat)
		partCols := cat.PartitionColumns(plan.PartitionHints())
		flatWorkers := runtime.GOMAXPROCS(0)
		res := PartitionedBenchResult{
			Name:    "serve_join",
			Query:   q.String(),
			Tuples:  db.TotalTuples(),
			Answers: len(plan.EvalParallel(db, flatWorkers)),
		}
		if err := sweep(res, localityShardCounts(), 3,
			func(int) error { plan.EvalParallel(db, flatWorkers); return nil },
			func(s int) (*storage.PartitionedDatabase, error) {
				pdb := storage.Partition(db, s, partCols)
				pdb.BuildIndexes()
				return pdb, nil
			},
			func(pdb *storage.PartitionedDatabase, w, _ int) error {
				plan.EvalSharded(pdb, w)
				return nil
			}); err != nil {
			return err
		}
	}

	// fixpoint_tc: per-shard semi-naive fixpoint (transitive closure) —
	// every delta round fans out one task per delta shard, derivations
	// routed to owner shards at the round barrier.
	{
		rng := rand.New(rand.NewSource(93))
		edges := storage.NewDatabase()
		const chain = 400
		for i := 0; i < chain; i++ {
			edges.Insert("e", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i + 1)})
		}
		for i := 0; i < 200; i++ {
			from := rng.Intn(chain)
			edges.Insert("e", storage.Tuple{fmt.Sprint(from), fmt.Sprint(from + 1 + rng.Intn(6))})
		}
		prog := datalog.NewProgram(
			datalog.RuleFromQuery(cq.MustParseQuery("tc(X,Y) :- e(X,Y)")),
			datalog.RuleFromQuery(cq.MustParseQuery("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
		)
		edges.BuildIndexes()
		cat := cost.NewCatalog(edges)
		cp, err := datalog.CompileProgram(prog, cat)
		if err != nil {
			return err
		}
		partCols := cat.PartitionColumns(cp.PartitionHints())
		flatWorkers := runtime.GOMAXPROCS(0)
		res := PartitionedBenchResult{Name: "fixpoint_tc", Tuples: edges.TotalTuples()}
		if err := sweep(res, shardCounts(), 3,
			func(int) error {
				_, err := cp.EvalParallel(edges, flatWorkers)
				return err
			},
			func(s int) (*storage.PartitionedDatabase, error) {
				pdb := storage.Partition(edges, s, partCols)
				pdb.BuildIndexes()
				return pdb, nil
			},
			func(pdb *storage.PartitionedDatabase, w, _ int) error {
				_, err := cp.EvalSharded(pdb, w)
				return err
			}); err != nil {
			return err
		}
	}

	// ivm_batch: sharded delta maintenance — one batch propagated through
	// the delta plans per-shard against the flat maintenance path. Each
	// measurement applies a disjoint batch to a fresh copy of the
	// materialized state (the state drifts by well under 1% across reps).
	{
		rng := rand.New(rand.NewSource(95))
		base := workload.ChainDatabase(rng, 3, true, 40000, 8000)
		views := []*cq.Query{
			cq.MustParseQuery("v1(A,B) :- p1(A,C), p2(C,B)"),
			cq.MustParseQuery("v2(A,B) :- p2(A,C), p3(C,B)"),
		}
		prog := &datalog.Program{}
		for _, v := range views {
			prog.Rules = append(prog.Rules, datalog.RuleFromQuery(v))
		}
		cat := cost.NewCatalog(base)
		cp, err := datalog.CompileProgramIVM(prog, cat)
		if err != nil {
			return err
		}
		master, err := cp.Eval(base)
		if err != nil {
			return err
		}
		master.BuildIndexes()
		masterCat := cost.NewCatalog(master)
		partCols := masterCat.PartitionColumns(cp.PartitionHints())
		const batchN = 400
		// Successive disjoint batches against one maintained state per side:
		// the state drifts by well under 1% across rounds, so every round
		// still measures one batch's propagation against effectively the
		// same extents.
		batches := make([]map[string][]storage.Tuple, 3)
		for i := range batches {
			upd := make(map[string][]storage.Tuple)
			for j := 0; j < batchN; j++ {
				pred := fmt.Sprintf("p%d", 1+rng.Intn(3))
				upd[pred] = append(upd[pred], storage.Tuple{
					fmt.Sprintf("c%d", rng.Intn(8000)), fmt.Sprintf("c%d", rng.Intn(8000)),
				})
			}
			batches[i] = upd
		}
		res := PartitionedBenchResult{Name: "ivm_batch", Tuples: master.TotalTuples()}
		var flatState *storage.Database
		if err := sweep(res, shardCounts(), len(batches),
			func(rep int) error {
				if rep == 0 {
					flatState = master.Clone()
				}
				_, _, _, err := cp.ApplyInserts(flatState, batches[rep], runtime.GOMAXPROCS(0))
				return err
			},
			func(s int) (*storage.PartitionedDatabase, error) {
				pdb := storage.Partition(master, s, partCols)
				pdb.BuildIndexes()
				return pdb, nil
			},
			func(pdb *storage.PartitionedDatabase, w, rep int) error {
				_, _, _, err := cp.ApplyInsertsSharded(pdb, batches[rep], w)
				return err
			}); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runGovernanceBench measures the cancellation-check overhead of the
// context-aware execution paths and merges the "governance" section into
// the JSON report at path. Each workload alternates the legacy entry point
// and its Ctx variant under a live guard (cancelable context that never
// fires, no budgets) in one process and keeps the best of each side, so
// the ratio isolates the per-row `tick` and the round-barrier polls from
// host noise.
func runGovernanceBench(path string) error {
	var report EvalBenchReport
	if path != "-" {
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &report); err != nil {
				return fmt.Errorf("parse existing %s: %w", path, err)
			}
		}
	}
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	if report.Command == "" {
		report.Command = "aqvbench -governance " + path
	}
	report.Governance = nil

	// ctx is cancelable but never canceled: newGuardState sees ctx.Done()
	// non-nil and arms the guard, so every row pays the real amortized
	// check — the honest serving-path cost of a request with a deadline.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// measure runs legacy and governed back-to-back `rounds` times (the
	// side that goes first alternates per round) and reports the median of
	// the per-round governed/legacy ratios: the two runs of a round share
	// the host's clock speed, cache and GC state, so slow drift — which on
	// this workload swings single runs by ±20% — cancels out of each ratio,
	// and the median discards the rounds where a GC cycle landed on one
	// side. Best-of on each side independently does not have this property:
	// it compares a lucky run of one side against a lucky run of the other,
	// taken under different host states.
	measure := func(res GovernanceBenchResult, rounds int, legacy, governed func() error) error {
		// One sample = two consecutive runs from a freshly collected heap:
		// the forced GC equalizes the allocator state both sides start
		// from, and summing two runs averages over where the in-run GC
		// cycles land.
		time1 := func(f func() error) (float64, error) {
			runtime.GC()
			start := time.Now()
			for i := 0; i < 2; i++ {
				if err := f(); err != nil {
					return 0, err
				}
			}
			d := float64(time.Since(start).Nanoseconds()) / 2
			if d < 1 {
				d = 1
			}
			return d, nil
		}
		var ratios, bases, govs []float64
		for r := 0; r < rounds; r++ {
			var legNs, govNs float64
			var err error
			if r%2 == 0 {
				if legNs, err = time1(legacy); err == nil {
					govNs, err = time1(governed)
				}
			} else {
				if govNs, err = time1(governed); err == nil {
					legNs, err = time1(legacy)
				}
			}
			if err != nil {
				return err
			}
			ratios = append(ratios, govNs/legNs)
			bases = append(bases, legNs)
			govs = append(govs, govNs)
		}
		median := func(xs []float64) float64 {
			s := append([]float64(nil), xs...)
			sort.Float64s(s)
			return s[len(s)/2]
		}
		res.BaselineNs, res.GovernedNs = median(bases), median(govs)
		res.OverheadPct = (median(ratios) - 1) * 100
		fmt.Printf("%-12s tuples=%-8d base=%.2fms governed=%.2fms overhead=%+.2f%%\n",
			res.Name, res.Tuples, res.BaselineNs/1e6, res.GovernedNs/1e6, res.OverheadPct)
		report.Governance = append(report.Governance, res)
		return nil
	}

	// serve_join: the join-heavy serving workload — the guard cost lands on
	// the per-candidate-row tick in the innermost probe loop.
	{
		rng := rand.New(rand.NewSource(91))
		db := storage.NewDatabase()
		for i := 0; i < 100000; i++ {
			db.Insert("p1", storage.Tuple{"w" + fmt.Sprint(rng.Intn(250000)), "x" + fmt.Sprint(rng.Intn(75000))})
		}
		for i := 0; i < 40000; i++ {
			db.Insert("p2", storage.Tuple{"x" + fmt.Sprint(rng.Intn(75000)), "k" + fmt.Sprint(rng.Intn(25000))})
		}
		for i := 0; i < 500000; i++ {
			db.Insert("p3", storage.Tuple{"k" + fmt.Sprint(rng.Intn(25000)), "z" + fmt.Sprint(rng.Intn(1250000))})
		}
		q := cq.MustParseQuery("q(Y,Z) :- p1(W,X), p2(X,Y), p3(Y,Z)")
		db.BuildIndexes()
		plan := datalog.Compile(q, cost.NewCatalog(db))
		workers := runtime.GOMAXPROCS(0)
		res := GovernanceBenchResult{
			Name:    "serve_join",
			Tuples:  db.TotalTuples(),
			Answers: len(plan.EvalParallel(db, workers)),
		}
		if err := measure(res, 13,
			func() error { plan.EvalParallel(db, workers); return nil },
			func() error {
				_, err := plan.EvalParallelCtx(ctx, db, nil, workers, datalog.Limits{})
				return err
			}); err != nil {
			return err
		}
	}

	// tc_chain: the recursive fixpoint workload — the guard cost lands on
	// the per-derivation tick plus one poll per round barrier.
	{
		rng := rand.New(rand.NewSource(93))
		edges := storage.NewDatabase()
		const chain = 400
		for i := 0; i < chain; i++ {
			edges.Insert("e", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i + 1)})
		}
		for i := 0; i < 200; i++ {
			from := rng.Intn(chain)
			edges.Insert("e", storage.Tuple{fmt.Sprint(from), fmt.Sprint(from + 1 + rng.Intn(6))})
		}
		prog := datalog.NewProgram(
			datalog.RuleFromQuery(cq.MustParseQuery("tc(X,Y) :- e(X,Y)")),
			datalog.RuleFromQuery(cq.MustParseQuery("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
		)
		edges.BuildIndexes()
		cp, err := datalog.CompileProgram(prog, cost.NewCatalog(edges))
		if err != nil {
			return err
		}
		workers := runtime.GOMAXPROCS(0)
		res := GovernanceBenchResult{Name: "tc_chain", Tuples: edges.TotalTuples()}
		if err := measure(res, 13,
			func() error {
				_, err := cp.EvalParallel(edges, workers)
				return err
			},
			func() error {
				_, err := cp.EvalCtx(ctx, edges, workers, datalog.Limits{})
				return err
			}); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// minNs times f reps times and returns the fastest run in nanoseconds
// (floored at 1ns so downstream ratios stay finite on coarse clocks) plus
// the index of the rep that achieved it. Each call receives its rep index
// so mutation-heavy work can use disjoint inputs per rep.
func minNs(reps int, f func(rep int) error) (float64, int, error) {
	best, bestRep := -1.0, 0
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(i); err != nil {
			return 0, 0, err
		}
		if d := float64(time.Since(start).Nanoseconds()); best < 0 || d < best {
			best, bestRep = d, i
		}
	}
	if best < 1 {
		best = 1
	}
	return best, bestRep, nil
}

// runIVMBench measures the live-update path: delta-maintaining the
// materialized extents for one insert batch versus re-materializing every
// extent from the updated base, at delta sizes from a handful of tuples up
// to 1% of the base. The engine's pre-IVM behaviour was the "full" column
// on every update.
func runIVMBench(report *EvalBenchReport) error {
	const reps = 4

	// Conjunctive views over a 60k-tuple chain base.
	rng := rand.New(rand.NewSource(71))
	base := workload.ChainDatabase(rng, 3, true, 20000, 8000)
	views := []*cq.Query{
		cq.MustParseQuery("v1(A,B) :- p1(A,C), p2(C,B)"),
		cq.MustParseQuery("v2(A,B) :- p2(A,C), p3(C,B)"),
		cq.MustParseQuery("v3(A,B) :- p1(A,B)"),
	}
	baseN := base.TotalTuples()
	randomBatch := func(n int) map[string][]storage.Tuple {
		upd := make(map[string][]storage.Tuple)
		for i := 0; i < n; i++ {
			pred := fmt.Sprintf("p%d", 1+rng.Intn(3))
			upd[pred] = append(upd[pred], storage.Tuple{
				fmt.Sprintf("c%d", rng.Intn(8000)), fmt.Sprintf("c%d", rng.Intn(8000)),
			})
		}
		return upd
	}
	for _, frac := range []float64{0.0001, 0.001, 0.01} {
		deltaN := int(float64(baseN) * frac)
		if deltaN < 1 {
			deltaN = 1
		}
		m, err := ivm.New(base, views, ivm.Options{})
		if err != nil {
			return err
		}
		extentN := m.Database().TotalTuples() - baseN
		// Delta: successive disjoint batches against one maintainer (its
		// state drifts by well under 1% across reps).
		batches := make([]map[string][]storage.Tuple, reps)
		for i := range batches {
			batches[i] = randomBatch(deltaN)
		}
		derivedPerRep := make([]int, reps)
		deltaNs, bestRep, err := minNs(reps, func(rep int) error {
			res, err := m.ApplyBatch(batches[rep])
			if err != nil {
				return err
			}
			derivedPerRep[rep] = res.Stats.Derived
			return nil
		})
		if err != nil {
			return err
		}
		// Full: re-materialize every extent over the updated base — what
		// every update cost before the IVM path existed.
		shadow := base.Clone()
		for pred, tuples := range batches[0] {
			for _, t := range tuples {
				if err := shadow.Insert(pred, t); err != nil {
					return err
				}
			}
		}
		fullNs, _, err := minNs(reps, func(int) error {
			_, err := datalog.MaterializeViews(shadow, views)
			return err
		})
		if err != nil {
			return err
		}
		res := IVMBenchResult{
			Name:         fmt.Sprintf("views_chain_%gpct", frac*100),
			BaseTuples:   baseN,
			ExtentTuples: extentN,
			DeltaTuples:  deltaN,
			DeltaDerived: derivedPerRep[bestRep],
			FullNs:       fullNs,
			DeltaNs:      deltaNs,
			Speedup:      fullNs / deltaNs,
		}
		fmt.Printf("%-22s base=%-6d extents=%-6d delta=%-4d full=%.0fns delta=%.0fns (%.1fx)\n",
			res.Name, res.BaseTuples, res.ExtentTuples, res.DeltaTuples, res.FullNs, res.DeltaNs, res.Speedup)
		report.IVM = append(report.IVM, res)
	}

	countTuples := func(m map[string][]storage.Tuple) int {
		n := 0
		for _, ts := range m {
			n += len(ts)
		}
		return n
	}

	// Non-monotone maintenance over the same flat views: delete-heavy and
	// mixed-churn batches through counting maintenance (ApplyUpdate) against
	// re-materializing every extent from the post-batch base — the engine's
	// only option before deletions existed. An untimed priming batch (delete
	// plus re-insert of one tuple) builds the lazy derivation counts so the
	// one-off initialization stays out of the measured delta.
	for _, kind := range []struct {
		name    string
		insFrac float64
	}{
		{"views_chain_delete_heavy", 0},
		{"views_chain_mixed_churn", 0.5},
	} {
		m, err := ivm.New(base, views, ivm.Options{})
		if err != nil {
			return err
		}
		prime := base.Relation("p1").Tuples()[0]
		one := map[string][]storage.Tuple{"p1": {prime}}
		if _, err := m.ApplyUpdate(one, one); err != nil {
			return err
		}
		extentN := m.Database().TotalTuples() - baseN

		const deltaN = 120
		delPer := int(float64(deltaN) * (1 - kind.insFrac))
		insPer := deltaN - delPer
		// Retraction pools: disjoint slices of a shuffled snapshot of the
		// live base, so every rep deletes tuples that are actually present.
		type fact struct {
			pred string
			t    storage.Tuple
		}
		var pool []fact
		for _, pred := range []string{"p1", "p2", "p3"} {
			for _, t := range m.Database().Relation(pred).Tuples() {
				pool = append(pool, fact{pred, t})
			}
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		delBatches := make([]map[string][]storage.Tuple, reps)
		insBatches := make([]map[string][]storage.Tuple, reps)
		for i := range delBatches {
			del := make(map[string][]storage.Tuple)
			for _, f := range pool[i*delPer : (i+1)*delPer] {
				del[f.pred] = append(del[f.pred], f.t)
			}
			delBatches[i] = del
			if insPer > 0 {
				insBatches[i] = randomBatch(insPer)
			}
		}
		derivedPerRep := make([]int, reps)
		retractedPerRep := make([]int, reps)
		deltaNs, bestRep, err := minNs(reps, func(rep int) error {
			res, err := m.ApplyUpdate(insBatches[rep], delBatches[rep])
			if err != nil {
				return err
			}
			derivedPerRep[rep] = countTuples(res.ExtentDelta)
			retractedPerRep[rep] = countTuples(res.ExtentRetracted)
			return nil
		})
		if err != nil {
			return err
		}
		shadow := base.Clone()
		for pred, tuples := range delBatches[0] {
			for _, t := range tuples {
				shadow.Relation(pred).Remove(t)
			}
		}
		for pred, tuples := range insBatches[0] {
			for _, t := range tuples {
				if err := shadow.Insert(pred, t); err != nil {
					return err
				}
			}
		}
		fullNs, _, err := minNs(reps, func(int) error {
			_, err := datalog.MaterializeViews(shadow, views)
			return err
		})
		if err != nil {
			return err
		}
		res := IVMBenchResult{
			Name:           kind.name,
			BaseTuples:     baseN,
			ExtentTuples:   extentN,
			DeltaTuples:    deltaN,
			DeltaDeleted:   delPer,
			DeltaDerived:   derivedPerRep[bestRep],
			DeltaRetracted: retractedPerRep[bestRep],
			FullNs:         fullNs,
			DeltaNs:        deltaNs,
			Speedup:        fullNs / deltaNs,
		}
		fmt.Printf("%-22s base=%-6d extents=%-6d delta=%-4d (-%d) full=%.0fns delta=%.0fns (%.1fx)\n",
			res.Name, res.BaseTuples, res.ExtentTuples, res.DeltaTuples, res.DeltaDeleted, res.FullNs, res.DeltaNs, res.Speedup)
		report.IVM = append(report.IVM, res)
	}

	// Recursive: transitive closure of a long chain, extended edge by edge.
	rng = rand.New(rand.NewSource(73))
	edges := storage.NewDatabase()
	const chain = 300
	for i := 0; i < chain; i++ {
		edges.Insert("e", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i + 1)})
	}
	for i := 0; i < 100; i++ {
		from := rng.Intn(chain)
		edges.Insert("e", storage.Tuple{fmt.Sprint(from), fmt.Sprint(from + 1 + rng.Intn(8))})
	}
	prog := datalog.NewProgram(
		datalog.RuleFromQuery(cq.MustParseQuery("tc(X,Y) :- e(X,Y)")),
		datalog.RuleFromQuery(cq.MustParseQuery("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	cp, err := datalog.CompileProgramIVM(prog, cost.NewCatalog(edges))
	if err != nil {
		return err
	}
	for _, deltaN := range []int{1, 3} {
		maintained, err := cp.Eval(edges)
		if err != nil {
			return err
		}
		maintained.BuildIndexes()
		baseN := edges.TotalTuples()
		extentN := maintained.TotalTuples() - baseN
		batches := make([]map[string][]storage.Tuple, reps)
		for i := range batches {
			upd := make(map[string][]storage.Tuple)
			for j := 0; j < deltaN; j++ {
				from := rng.Intn(chain)
				upd["e"] = append(upd["e"], storage.Tuple{
					fmt.Sprint(from), fmt.Sprint(rng.Intn(chain + 1)),
				})
			}
			batches[i] = upd
		}
		derivedPerRep := make([]int, reps)
		deltaNs, bestRep, err := minNs(reps, func(rep int) error {
			_, _, stats, err := cp.ApplyInserts(maintained, batches[rep], 1)
			derivedPerRep[rep] = stats.Derived
			return err
		})
		if err != nil {
			return err
		}
		shadow := edges.Clone()
		for _, t := range batches[0]["e"] {
			shadow.Insert("e", t)
		}
		fullNs, _, err := minNs(reps, func(int) error {
			_, err := cp.Eval(shadow)
			return err
		})
		if err != nil {
			return err
		}
		res := IVMBenchResult{
			Name:         fmt.Sprintf("tc_chain_%dedge", deltaN),
			BaseTuples:   baseN,
			ExtentTuples: extentN,
			DeltaTuples:  deltaN,
			DeltaDerived: derivedPerRep[bestRep],
			FullNs:       fullNs,
			DeltaNs:      deltaNs,
			Speedup:      fullNs / deltaNs,
		}
		fmt.Printf("%-22s base=%-6d extents=%-6d delta=%-4d full=%.0fns delta=%.0fns (%.1fx)\n",
			res.Name, res.BaseTuples, res.ExtentTuples, res.DeltaTuples, res.FullNs, res.DeltaNs, res.Speedup)
		report.IVM = append(report.IVM, res)
	}

	// DRed: retract edges from the maintained transitive closure —
	// over-delete plus re-derive against re-running the fixpoint on the
	// shrunken base. Deltas stay small because a single chain edge can
	// support a quadratic slab of closure tuples; that blast radius is the
	// point of measuring the recursive deletion path separately.
	{
		st := cp.NewMaintState(edges)
		maintained, err := cp.Eval(edges)
		if err != nil {
			return err
		}
		maintained.BuildIndexes()
		baseN := edges.TotalTuples()
		extentN := maintained.TotalTuples() - baseN
		pool := append([]storage.Tuple(nil), maintained.Relation("e").Tuples()...)
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		const delN = 2
		batches := make([]map[string][]storage.Tuple, reps)
		for i := range batches {
			batches[i] = map[string][]storage.Tuple{"e": pool[i*delN : (i+1)*delN]}
		}
		derivedPerRep := make([]int, reps)
		retractedPerRep := make([]int, reps)
		deltaNs, bestRep, err := minNs(reps, func(rep int) error {
			res, err := cp.ApplyUpdates(maintained, st, nil, batches[rep], 1)
			if err != nil {
				return err
			}
			derivedPerRep[rep] = countTuples(res.Derived)
			retractedPerRep[rep] = countTuples(res.Retracted)
			return nil
		})
		if err != nil {
			return err
		}
		shadow := edges.Clone()
		for _, t := range batches[0]["e"] {
			shadow.Relation("e").Remove(t)
		}
		fullNs, _, err := minNs(reps, func(int) error {
			_, err := cp.Eval(shadow)
			return err
		})
		if err != nil {
			return err
		}
		res := IVMBenchResult{
			Name:           fmt.Sprintf("tc_chain_dred_%dedge", delN),
			BaseTuples:     baseN,
			ExtentTuples:   extentN,
			DeltaTuples:    delN,
			DeltaDeleted:   delN,
			DeltaDerived:   derivedPerRep[bestRep],
			DeltaRetracted: retractedPerRep[bestRep],
			FullNs:         fullNs,
			DeltaNs:        deltaNs,
			Speedup:        fullNs / deltaNs,
		}
		fmt.Printf("%-22s base=%-6d extents=%-6d delta=%-4d (-%d) full=%.0fns delta=%.0fns (%.1fx)\n",
			res.Name, res.BaseTuples, res.ExtentTuples, res.DeltaTuples, res.DeltaDeleted, res.FullNs, res.DeltaNs, res.Speedup)
		report.IVM = append(report.IVM, res)
	}
	return nil
}
