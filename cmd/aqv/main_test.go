package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func capture(t *testing.T, args []string) string {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := run(args, tmp); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunEquivalent(t *testing.T) {
	dir := t.TempDir()
	qf := writeFile(t, dir, "q.dl", "q(X,Y) :- r(X,Z), s(Z,Y).")
	vf := writeFile(t, dir, "v.dl", "v(A,B) :- r(A,C), s(C,B).")
	out := capture(t, []string{"-query", qf, "-views", vf, "-stats"})
	if !strings.Contains(out, "q(X,Y) :- v(X,Y).") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "applications=") {
		t.Fatalf("stats missing:\n%s", out)
	}
}

func TestRunEquivalentWithData(t *testing.T) {
	dir := t.TempDir()
	qf := writeFile(t, dir, "q.dl", "q(X,Y) :- r(X,Z), s(Z,Y).")
	vf := writeFile(t, dir, "v.dl", "v(A,B) :- r(A,C), s(C,B).")
	df := writeFile(t, dir, "d.dl", "r(a,m). s(m,x).")
	out := capture(t, []string{"-query", qf, "-views", vf, "-data", df})
	if !strings.Contains(out, "q(a,x).") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunExplain(t *testing.T) {
	dir := t.TempDir()
	qf := writeFile(t, dir, "q.dl", "q(X,Y) :- r(X,Z), s(Z,Y).")
	vf := writeFile(t, dir, "v.dl", "v(A,B) :- r(A,C), s(C,B).")
	df := writeFile(t, dir, "d.dl", "r(a,m). s(m,x).")
	out := capture(t, []string{"-query", qf, "-views", vf, "-data", df, "-explain"})
	if !strings.Contains(out, "plan:") || !strings.Contains(out, "component 0") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunNoRewriting(t *testing.T) {
	dir := t.TempDir()
	qf := writeFile(t, dir, "q.dl", "q(X,Y) :- r(X,Z), s(Z,Y).")
	vf := writeFile(t, dir, "v.dl", "v(A) :- r(A,C).")
	out := capture(t, []string{"-query", qf, "-views", vf})
	if !strings.Contains(out, "no equivalent rewriting") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunMiniConAndBucket(t *testing.T) {
	dir := t.TempDir()
	qf := writeFile(t, dir, "q.dl", "q(X) :- r(X,Z), s(Z).")
	vf := writeFile(t, dir, "v.dl", "v1(A,B) :- r(A,B). v2(A) :- s(A).")
	df := writeFile(t, dir, "d.dl", "r(a,m). s(m).")
	for _, algo := range []string{"minicon", "bucket"} {
		out := capture(t, []string{"-query", qf, "-views", vf, "-data", df, "-algo", algo, "-stats"})
		if !strings.Contains(out, "q(a).") {
			t.Fatalf("%s output:\n%s", algo, out)
		}
	}
}

func TestRunInverse(t *testing.T) {
	dir := t.TempDir()
	qf := writeFile(t, dir, "q.dl", "q(X) :- r(X,Z).")
	vf := writeFile(t, dir, "v.dl", "v(A,B) :- r(A,B).")
	df := writeFile(t, dir, "d.dl", "r(a,m).")
	out := capture(t, []string{"-query", qf, "-views", vf, "-data", df, "-algo", "inverse"})
	if !strings.Contains(out, "r(A,B) :- v(A,B).") || !strings.Contains(out, "q(a).") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunPartial(t *testing.T) {
	dir := t.TempDir()
	qf := writeFile(t, dir, "q.dl", "q(X,Y) :- r(X,Z), s(Z,Y).")
	vf := writeFile(t, dir, "v.dl", "v(A,B) :- r(A,B).")
	out := capture(t, []string{"-query", qf, "-views", vf, "-partial"})
	if !strings.Contains(out, "partial") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunBatch(t *testing.T) {
	dir := t.TempDir()
	vf := writeFile(t, dir, "v.dl", "v(A,B) :- r(A,C), s(C,B).")
	df := writeFile(t, dir, "d.dl", "r(a,m). s(m,x).")
	// Three queries: the second is an α-variant of the first and must be
	// served from the plan cache.
	qf := writeFile(t, dir, "qs.dl", `
		q(X,Y) :- r(X,Z), s(Z,Y).
		q(A,B) :- s(C,B), r(A,C).
		q2(X) :- r(X,Y).
	`)
	out := capture(t, []string{"-queries", qf, "-views", vf, "-data", df, "-stats"})
	if !strings.Contains(out, "q(a,x).") {
		t.Fatalf("missing answers:\n%s", out)
	}
	if !strings.Contains(out, "hits=1") || !strings.Contains(out, "misses=2") {
		t.Fatalf("engine stats wrong (want hits=1 misses=2):\n%s", out)
	}
	if !strings.Contains(out, "plan (equivalent): q(V0,V1) :- v(V0,V1).") {
		t.Fatalf("missing cached plan line:\n%s", out)
	}
}

// TestRunBatchPreparedTemplates: a stream of point lookups differing only
// in constants is planned once; -prepare reports the shared template.
func TestRunBatchPreparedTemplates(t *testing.T) {
	dir := t.TempDir()
	vf := writeFile(t, dir, "v.dl", "v(A,B) :- r(A,C), s(C,B).")
	df := writeFile(t, dir, "d.dl", "r(a,m). r(b,n). s(m,x). s(n,y).")
	qf := writeFile(t, dir, "qs.dl", `
		q(Y) :- r(a,Z), s(Z,Y).
		q(Y) :- r(b,Z), s(Z,Y).
		q(Y) :- r(c,Z), s(Z,Y).
	`)
	out := capture(t, []string{"-queries", qf, "-views", vf, "-data", df, "-prepare", "-stats"})
	if !strings.Contains(out, "q(x).") || !strings.Contains(out, "q(y).") {
		t.Fatalf("answers missing:\n%s", out)
	}
	if !strings.Contains(out, "params=1 args=[a]") || !strings.Contains(out, "params=1 args=[c]") {
		t.Fatalf("prepared report missing:\n%s", out)
	}
	// One template, three queries: 1 miss, 2 hits.
	if !strings.Contains(out, "hits=2") || !strings.Contains(out, "misses=1") {
		t.Fatalf("template cache stats wrong (want hits=2 misses=1):\n%s", out)
	}
}

func TestRunAuto(t *testing.T) {
	dir := t.TempDir()
	qf := writeFile(t, dir, "q.dl", "q(X,Y) :- r(X,Z), s(Z,Y).")
	vf := writeFile(t, dir, "v.dl", "v(A,B) :- r(A,C), s(C,B).")
	df := writeFile(t, dir, "d.dl", "r(a,m). s(m,x).")
	out := capture(t, []string{"-query", qf, "-views", vf, "-data", df, "-algo", "auto"})
	if !strings.Contains(out, "auto chose equivalent-first") {
		t.Fatalf("auto choice not reported:\n%s", out)
	}
	if !strings.Contains(out, "q(a,x).") {
		t.Fatalf("answers missing:\n%s", out)
	}
	// Batch mode accepts the strategy too.
	qs := writeFile(t, dir, "qs.dl", "q(X,Y) :- r(X,Z), s(Z,Y).")
	out = capture(t, []string{"-queries", qs, "-views", vf, "-data", df, "-algo", "auto", "-stats"})
	if !strings.Contains(out, "strategy=equivalent-first plans=1") {
		t.Fatalf("auto per-strategy attribution missing:\n%s", out)
	}
}

func TestRunBatchPlansOnlyWithoutData(t *testing.T) {
	dir := t.TempDir()
	vf := writeFile(t, dir, "v.dl", "v1(A,B) :- r(A,B). v2(A) :- s(A).")
	qf := writeFile(t, dir, "qs.dl", "q(X) :- r(X,Z), s(Z).")
	out := capture(t, []string{"-queries", qf, "-views", vf, "-algo", "minicon"})
	if !strings.Contains(out, "plan (max-contained)") {
		t.Fatalf("missing plan:\n%s", out)
	}
	if strings.Contains(out, "answer(s)") {
		t.Fatalf("answers printed without data:\n%s", out)
	}
}

func TestRunBatchFlagErrors(t *testing.T) {
	dir := t.TempDir()
	vf := writeFile(t, dir, "v.dl", "v(A) :- r(A).")
	qf := writeFile(t, dir, "q.dl", "q(X) :- r(X).")
	if err := run([]string{"-query", qf, "-queries", qf, "-views", vf}, os.Stdout); err == nil {
		t.Fatal("mutually exclusive flags accepted")
	}
	empty := writeFile(t, dir, "empty.dl", "% nothing here\n")
	if err := run([]string{"-queries", empty, "-views", vf}, os.Stdout); err == nil {
		t.Fatal("empty query stream accepted")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	qf := writeFile(t, dir, "q.dl", "q(X) :- r(X).")
	vf := writeFile(t, dir, "v.dl", "v(A) :- r(A).")
	bad := writeFile(t, dir, "bad.dl", "not valid ((")
	rules := writeFile(t, dir, "rules.dl", "p(X) :- r(X).")
	cases := [][]string{
		{},
		{"-query", qf},
		{"-query", filepath.Join(dir, "missing.dl"), "-views", vf},
		{"-query", bad, "-views", vf},
		{"-query", qf, "-views", bad},
		{"-query", qf, "-views", vf, "-algo", "nope"},
		{"-query", qf, "-views", vf, "-data", rules},
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	for _, args := range cases {
		if err := run(args, devnull); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunInverseExplainAndStats(t *testing.T) {
	dir := t.TempDir()
	qf := writeFile(t, dir, "q.dl", "q(X,Y) :- r(X,Z), s(Z,Y).")
	vf := writeFile(t, dir, "v.dl", "vr(A,B) :- r(A,B).\nvs(A,B) :- s(A,B).")
	df := writeFile(t, dir, "d.dl", "r(a,m). s(m,x).")
	out := capture(t, []string{"-query", qf, "-views", vf, "-data", df, "-algo", "inverse", "-explain", "-stats"})
	if !strings.Contains(out, "compiled program:") || !strings.Contains(out, "full") {
		t.Fatalf("compiled program plan missing:\n%s", out)
	}
	if !strings.Contains(out, "fixpoint: iterations=") {
		t.Fatalf("fixpoint stats missing:\n%s", out)
	}
	if !strings.Contains(out, "q(a,x).") {
		t.Fatalf("answers missing:\n%s", out)
	}
	// Without data, -explain still describes the compiled program.
	out = capture(t, []string{"-query", qf, "-views", vf, "-algo", "inverse", "-explain"})
	if !strings.Contains(out, "compiled program:") {
		t.Fatalf("planless explain missing:\n%s", out)
	}
}

func TestRunBatchInverseFixpointStats(t *testing.T) {
	dir := t.TempDir()
	qs := writeFile(t, dir, "qs.dl", "q(X,Y) :- r(X,Z), s(Z,Y).\nq(A,B) :- r(A,C), s(C,B).")
	vf := writeFile(t, dir, "v.dl", "vr(A,B) :- r(A,B).\nvs(A,B) :- s(A,B).")
	df := writeFile(t, dir, "d.dl", "r(a,m). s(m,x).")
	out := capture(t, []string{"-queries", qs, "-views", vf, "-data", df, "-algo", "inverse", "-stats"})
	if !strings.Contains(out, "fixpoints=2") {
		t.Fatalf("engine fixpoint counters missing:\n%s", out)
	}
	if !strings.Contains(out, "hits=1") {
		t.Fatalf("second query should hit the plan cache:\n%s", out)
	}
}

// TestRunStream drives the live update-stream mode: inserts interleaved
// with queries, each query seeing all updates that precede it.
func TestRunStream(t *testing.T) {
	dir := t.TempDir()
	vf := writeFile(t, dir, "v.dl", "v(A,B) :- r(A,C), s(C,B).")
	df := writeFile(t, dir, "d.dl", "r(a,m). s(m,x).")
	sf := writeFile(t, dir, "stream.dl", `
		q(X,Y) :- r(X,Z), s(Z,Y).
		% a batch of inserts, then the same query again
		r(b,n).
		s(n,y).
		q(X,Y) :- r(X,Z), s(Z,Y).
		r(c,m).
	`)
	out := capture(t, []string{"-stream", sf, "-views", vf, "-data", df, "-stats"})
	// First query: one answer; second query: two (the batch joined b→y).
	if !strings.Contains(out, "% 1 answer(s):") || !strings.Contains(out, "% 2 answer(s):") {
		t.Fatalf("answer counts wrong:\n%s", out)
	}
	if !strings.Contains(out, "q(b,y).") {
		t.Fatalf("maintained answer missing:\n%s", out)
	}
	// The batch line reports inserts and derived extent tuples.
	if !strings.Contains(out, "2 insert(s) (2 new), 0 delete(s) (0 present), +1/-0 extent tuple(s)") {
		t.Fatalf("batch report missing:\n%s", out)
	}
	// The trailing fact is applied after the last query (batch 2 derives
	// v(c,x)), and the repeated query hit the plan cache.
	if !strings.Contains(out, "update_batches=2") {
		t.Fatalf("update counters missing:\n%s", out)
	}
	if !strings.Contains(out, "hits=1") || !strings.Contains(out, "misses=1") {
		t.Fatalf("plan cache stats wrong (want hits=1 misses=1):\n%s", out)
	}
	if !strings.Contains(out, "delta_derived=2") {
		t.Fatalf("delta_derived wrong (want 2: v(b,y) and v(c,x)):\n%s", out)
	}
}

// TestRunStreamDeletes drives delete and update lines through the live
// stream: a "-" line retracts facts, and a "-" line plus a plain line in
// one batch is an update — all applied atomically before the next query.
func TestRunStreamDeletes(t *testing.T) {
	dir := t.TempDir()
	vf := writeFile(t, dir, "v.dl", "v(A,B) :- r(A,C), s(C,B).")
	df := writeFile(t, dir, "d.dl", "r(a,m). s(m,x). r(b,n). s(n,y).")
	sf := writeFile(t, dir, "stream.dl", `
		q(X,Y) :- r(X,Z), s(Z,Y).
		% retract one derivation...
		- r(a,m).
		q(X,Y) :- r(X,Z), s(Z,Y).
		% ...and an update: move b from n to m
		- r(b,n).
		r(b,m).
		q(X,Y) :- r(X,Z), s(Z,Y).
	`)
	out := capture(t, []string{"-stream", sf, "-views", vf, "-data", df, "-stats"})
	if !strings.Contains(out, "% 2 answer(s):") || !strings.Contains(out, "% 1 answer(s):") {
		t.Fatalf("answer counts wrong:\n%s", out)
	}
	if !strings.Contains(out, "q(b,x).") {
		t.Fatalf("updated answer missing:\n%s", out)
	}
	if strings.Contains(out, "q(a,x).\n% [4]") || !strings.Contains(out, "1 delete(s) (1 present)") {
		t.Fatalf("delete batch report missing:\n%s", out)
	}
	if !strings.Contains(out, "update_deleted=2") || !strings.Contains(out, "delta_retracted=2") {
		t.Fatalf("delete counters missing:\n%s", out)
	}

	// Deleting a query is rejected.
	bad := writeFile(t, dir, "bad.dl", "- q(X) :- r(X,Y).")
	if err := run([]string{"-stream", bad, "-views", vf}, os.Stdout); err == nil {
		t.Fatal("negated query accepted")
	}
}

// TestRunStreamErrors: inserting into a view extent fails, as does a
// malformed statement, and -stream excludes the other modes.
func TestRunStreamErrors(t *testing.T) {
	dir := t.TempDir()
	vf := writeFile(t, dir, "v.dl", "v(A,B) :- r(A,B).")
	qf := writeFile(t, dir, "q.dl", "q(X) :- r(X,Y).")
	bad := writeFile(t, dir, "bad.dl", "v(a,b).\nq(X) :- r(X,Y).")
	if err := run([]string{"-stream", bad, "-views", vf}, os.Stdout); err == nil {
		t.Fatal("insert into view extent accepted")
	}
	malformed := writeFile(t, dir, "mal.dl", "not a statement ((")
	if err := run([]string{"-stream", malformed, "-views", vf}, os.Stdout); err == nil {
		t.Fatal("malformed stream accepted")
	}
	if err := run([]string{"-stream", bad, "-query", qf, "-views", vf}, os.Stdout); err == nil {
		t.Fatal("-stream with -query accepted")
	}
}

func TestRunStreamRejectsMixedLine(t *testing.T) {
	dir := t.TempDir()
	vf := writeFile(t, dir, "v.dl", "v(A,B) :- r(A,B).")
	mixed := writeFile(t, dir, "mixed.dl", "q(X) :- r(X,Y). r(a,b).")
	if err := run([]string{"-stream", mixed, "-views", vf}, os.Stdout); err == nil ||
		!strings.Contains(err.Error(), "own line") {
		t.Fatalf("mixed fact/query line: err = %v, want rejection", err)
	}
}
