// Command aqv rewrites conjunctive queries using views and optionally
// evaluates the result over data, from datalog-syntax text files.
//
// Usage:
//
//	aqv -query query.dl -views views.dl [-algo equivalent|bucket|minicon|inverse]
//	    [-data facts.dl] [-all] [-partial] [-stats]
//
// The query file holds one rule; the views file holds one rule per view.
// The optional data file holds ground facts for the *base* relations; view
// extents are materialised from it before evaluation.
//
// Example:
//
//	$ cat query.dl
//	q(X,Y) :- r(X,Z), s(Z,Y).
//	$ cat views.dl
//	v(A,B) :- r(A,C), s(C,B).
//	$ aqv -query query.dl -views views.dl
//	q(X,Y) :- v(X,Y).
package main

import (
	"flag"
	"fmt"
	"os"

	aqv "repro"
	"repro/internal/cq"
	"repro/internal/datalog"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aqv:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("aqv", flag.ContinueOnError)
	queryPath := fs.String("query", "", "file containing the query rule")
	viewsPath := fs.String("views", "", "file containing view definitions")
	dataPath := fs.String("data", "", "optional file of ground base facts; evaluates the rewriting")
	algo := fs.String("algo", "equivalent", "algorithm: equivalent, bucket, minicon, inverse")
	all := fs.Bool("all", false, "enumerate all equivalent rewritings (equivalent only)")
	partial := fs.Bool("partial", false, "allow partial rewritings mixing views and base atoms (equivalent only)")
	stats := fs.Bool("stats", false, "print search statistics")
	explain := fs.Bool("explain", false, "print the execution plan of the chosen rewriting (needs -data)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queryPath == "" || *viewsPath == "" {
		fs.Usage()
		return fmt.Errorf("-query and -views are required")
	}

	q, err := loadQuery(*queryPath)
	if err != nil {
		return err
	}
	views, err := loadViews(*viewsPath)
	if err != nil {
		return err
	}
	vs, err := aqv.NewViewSet(views...)
	if err != nil {
		return err
	}

	var base *aqv.Database
	if *dataPath != "" {
		base, err = loadData(*dataPath)
		if err != nil {
			return err
		}
	}

	switch *algo {
	case "equivalent":
		return runEquivalent(out, q, views, vs, base, *all, *partial, *stats, *explain)
	case "bucket":
		u, st, err := aqv.BucketRewrite(q, vs, aqv.BucketOptions{KeepComparisons: true})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, u.String())
		if *stats {
			fmt.Fprintf(out, "%% buckets=%v combinations=%d kept=%d\n", st.BucketSizes, st.Combinations, st.Kept)
		}
		return evalUnionIfData(out, u, views, base)
	case "minicon":
		u, st, err := aqv.MiniConRewrite(q, vs, aqv.MiniConOptions{VerifyCandidates: true, KeepComparisons: true})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, u.String())
		if *stats {
			fmt.Fprintf(out, "%% mcds=%d combinations=%d kept=%d\n", st.MCDs, st.Combinations, st.Kept)
		}
		return evalUnionIfData(out, u, views, base)
	case "inverse":
		prog, err := aqv.InverseRulesProgram(q, views)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, prog.String())
		if base != nil {
			viewDB, err := aqv.MaterializeViews(base, views)
			if err != nil {
				return err
			}
			answers, err := aqv.InverseRulesAnswer(q, views, viewDB)
			if err != nil {
				return err
			}
			printAnswers(out, q.Name(), answers)
		}
		return nil
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
}

func runEquivalent(out *os.File, q *aqv.Query, views []*aqv.Query, vs *aqv.ViewSet, base *aqv.Database, all, partial, stats, explain bool) error {
	r := aqv.NewRewriter(vs)
	r.Opt.AllowPartial = partial
	r.Opt.KeepComparisons = true
	if all {
		r.Opt.MaxResults = aqv.AllRewritings
	}
	results, st := r.Rewrite(q)
	if len(results) == 0 {
		fmt.Fprintln(out, "% no equivalent rewriting exists for the given views")
	}
	for _, rw := range results {
		kind := "complete"
		if !rw.Complete {
			kind = "partial"
		}
		fmt.Fprintf(out, "%s  %% %s\n", rw.Query.String(), kind)
	}
	if stats {
		fmt.Fprintf(out, "%% applications=%d valid=%d candidates=%d equivalence_checks=%d\n",
			st.Applications, st.ValidApplications, st.CandidatesTried, st.EquivalenceChecks)
	}
	if base != nil && len(results) > 0 {
		// Build the execution database: view extents plus base relations
		// (partial rewritings read both).
		merged := base.Clone()
		for _, v := range views {
			if err := datalog.MaterializeView(base, v, merged); err != nil {
				return err
			}
		}
		// Choose the cheapest rewriting under the catalog statistics.
		candidates := make([]*aqv.Query, len(results))
		for i, rw := range results {
			candidates[i] = rw.Query
		}
		best, estimates := aqv.ChoosePlan(aqv.NewCatalog(merged), candidates)
		if stats && len(candidates) > 1 {
			fmt.Fprintf(out, "%% cost model chose plan %d (cost %.0f)\n", best, estimates[best].Cost)
		}
		if explain {
			fmt.Fprintf(out, "%% plan:\n%s", aqv.Explain(merged, candidates[best]))
		}
		answers := aqv.EvalQuery(merged, candidates[best])
		printAnswers(out, q.Name(), answers)
	}
	return nil
}

func evalUnionIfData(out *os.File, u *aqv.Union, views []*aqv.Query, base *aqv.Database) error {
	if base == nil || u.Len() == 0 {
		return nil
	}
	viewDB, err := aqv.MaterializeViews(base, views)
	if err != nil {
		return err
	}
	printAnswers(out, u.Queries[0].Name(), aqv.EvalUnion(viewDB, u))
	return nil
}

func printAnswers(out *os.File, name string, answers []aqv.Tuple) {
	fmt.Fprintf(out, "%% %d answer(s):\n", len(answers))
	for _, t := range answers {
		fmt.Fprintf(out, "%s(", name)
		for i, v := range t {
			if i > 0 {
				fmt.Fprint(out, ",")
			}
			fmt.Fprint(out, v)
		}
		fmt.Fprintln(out, ").")
	}
}

func loadQuery(path string) (*aqv.Query, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	q, err := aqv.ParseQuery(string(data))
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

func loadViews(path string) ([]*cq.Query, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	views, err := aqv.ParseViews(string(data))
	if err != nil {
		return nil, err
	}
	for _, v := range views {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	return views, nil
}

func loadData(path string) (*aqv.Database, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := aqv.ParseProgram(string(data))
	if err != nil {
		return nil, err
	}
	if len(prog.Queries) > 0 {
		return nil, fmt.Errorf("data file %s contains rules; only ground facts are allowed", path)
	}
	db := aqv.NewDatabase()
	if err := db.LoadFacts(prog.Facts); err != nil {
		return nil, err
	}
	return db, nil
}
