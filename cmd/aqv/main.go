// Command aqv rewrites conjunctive queries using views and optionally
// evaluates the result over data, from datalog-syntax text files.
//
// Usage:
//
//	aqv -query query.dl -views views.dl [-algo equivalent|bucket|minicon|inverse|auto]
//	    [-data facts.dl] [-all] [-partial] [-stats]
//	aqv -queries stream.dl -views views.dl [-data facts.dl] [-datadir DIR] [-algo ...]
//	    [-cache N] [-prepare] [-stats] [-timeout D] [-max-derived N] [-max-concurrent N]
//	aqv -stream mixed.dl -views views.dl [-data facts.dl] [-datadir DIR] [-algo ...] [-stats]
//	    [-timeout D] [-max-derived N] [-max-concurrent N]
//
// The query file holds one rule; the views file holds one rule per view.
// The optional data file holds ground facts for the *base* relations; view
// extents are materialised from it before evaluation.
//
// -datadir (batch and stream modes) makes the engine durable: state
// persists as a checksummed snapshot plus write-ahead log under DIR, a
// restart recovers from disk instead of re-materializing, and exit
// checkpoints. The flag is named -datadir because -data already names the
// base-facts file.
//
// -algo auto plans through the serving engine's cost-driven strategy: per
// query it searches for the cheapest equivalent rewriting and otherwise
// picks MiniCon or inverse rules by cost estimate over the data's catalog,
// reporting which algorithm was chosen.
//
// Batch/serve mode (-queries) answers a stream of query rules — one rule
// per query, "-" reads stdin — through a single plan-caching engine. Plans
// are cached per query *template* (constants abstracted to placeholders),
// so not only repeated or α-equivalent queries but whole point-lookup
// streams differing only in their constants are planned once and served
// from the cache. With -prepare each query additionally reports its
// prepared form: parameter count, chosen strategy and cost estimate. With
// -stats the engine's hit/miss/coalescing counters are printed after the
// stream.
//
// Update-stream mode (-stream) serves a live workload that interleaves
// base-fact inserts, deletions and queries, one statement per line ("-"
// reads stdin): ground facts accumulate into a batch, a line prefixed with
// "-" retracts its facts (so an update is a "-" line plus a plain line in
// the same batch), and each query rule first applies the pending batch
// atomically — deletions before insertions, every view extent maintained
// through the engine's incremental counting/delete-rederive path, no
// re-materialization — then answers over the updated extents. With -stats
// the engine's update counters (batches, inserted and deleted tuples,
// derived and retracted extent tuples, maintenance time) are printed too.
//
// Example:
//
//	$ cat query.dl
//	q(X,Y) :- r(X,Z), s(Z,Y).
//	$ cat views.dl
//	v(A,B) :- r(A,C), s(C,B).
//	$ aqv -query query.dl -views views.dl
//	q(X,Y) :- v(X,Y).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	aqv "repro"
	"repro/internal/cq"
	"repro/internal/datalog"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aqv:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("aqv", flag.ContinueOnError)
	queryPath := fs.String("query", "", "file containing the query rule")
	queriesPath := fs.String("queries", "", "batch mode: file with a stream of query rules ('-' = stdin), answered through one plan-caching engine")
	streamPath := fs.String("stream", "", "live mode: file interleaving ground facts (inserts), \"-\"-prefixed facts (deletes) and query rules ('-' = stdin), served by one live engine that incrementally maintains the view extents")
	viewsPath := fs.String("views", "", "file containing view definitions")
	dataPath := fs.String("data", "", "optional file of ground base facts; evaluates the rewriting")
	dataDir := fs.String("datadir", "", "batch/stream mode: durable storage directory (snapshot + WAL); the engine recovers from it at startup and checkpoints on exit (-data names the facts file, hence the separate flag)")
	algo := fs.String("algo", "equivalent", "algorithm: equivalent, bucket, minicon, inverse, auto (cost-driven per query)")
	all := fs.Bool("all", false, "enumerate all equivalent rewritings (equivalent only)")
	partial := fs.Bool("partial", false, "allow partial rewritings mixing views and base atoms")
	prepare := fs.Bool("prepare", false, "batch mode: report each query's prepared form (template parameters, chosen strategy, cost estimate)")
	stats := fs.Bool("stats", false, "print search statistics (engine cache counters in batch mode)")
	explain := fs.Bool("explain", false, "print the compiled execution plan (equivalent: the chosen rewriting, needs -data; inverse: the compiled program)")
	cacheSize := fs.Int("cache", 128, "plan-cache capacity in batch mode")
	workers := fs.Int("workers", 1, "batch mode: goroutines each evaluation fans its outer join loop across (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "batch/stream mode: hash-partition the serving database into this many shards and evaluate shard-locally (0 or 1 = flat)")
	timeout := fs.Duration("timeout", 0, "batch/stream mode: per-request deadline; a query or update batch exceeding it fails with a canceled error (0 = none)")
	maxDerived := fs.Int("max-derived", 0, "batch/stream mode: cap on derived tuples per fixpoint or update propagation (0 = unlimited)")
	maxConcurrent := fs.Int("max-concurrent", 0, "batch/stream mode: admission-control cap on concurrently executing requests; excess requests queue and overflow is shed (0 = no admission control)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	gov := govOpts{timeout: *timeout, maxDerived: *maxDerived, maxConcurrent: *maxConcurrent}
	modes := 0
	for _, p := range []string{*queryPath, *queriesPath, *streamPath} {
		if p != "" {
			modes++
		}
	}
	if modes == 0 || *viewsPath == "" {
		fs.Usage()
		return fmt.Errorf("-query (or -queries, or -stream) and -views are required")
	}
	if modes > 1 {
		return fmt.Errorf("-query, -queries and -stream are mutually exclusive")
	}

	views, err := loadViews(*viewsPath)
	if err != nil {
		return err
	}
	vs, err := aqv.NewViewSet(views...)
	if err != nil {
		return err
	}

	var base *aqv.Database
	if *dataPath != "" {
		base, err = loadData(*dataPath)
		if err != nil {
			return err
		}
	}

	if *queriesPath != "" || *streamPath != "" {
		if *workers <= 0 {
			*workers = runtime.GOMAXPROCS(0)
		}
	}
	if *queriesPath != "" {
		return runBatch(out, *queriesPath, views, base, *algo, *dataDir, *cacheSize, *workers, *shards, gov, *partial, *prepare, *stats)
	}
	if *streamPath != "" {
		return runStream(out, *streamPath, views, base, *algo, *dataDir, *cacheSize, *workers, *shards, gov, *partial, *stats)
	}
	if *dataDir != "" {
		return fmt.Errorf("-datadir applies to -queries and -stream modes only")
	}

	q, err := loadQuery(*queryPath)
	if err != nil {
		return err
	}

	switch *algo {
	case "equivalent":
		return runEquivalent(out, q, views, vs, base, *all, *partial, *stats, *explain)
	case "auto":
		return runAuto(out, q, views, base, *partial, *stats, *explain)
	case "bucket":
		u, st, err := aqv.BucketRewrite(q, vs, aqv.BucketOptions{KeepComparisons: true})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, u.String())
		if *stats {
			fmt.Fprintf(out, "%% buckets=%v combinations=%d kept=%d\n", st.BucketSizes, st.Combinations, st.Kept)
		}
		return evalUnionIfData(out, u, views, base)
	case "minicon":
		u, st, err := aqv.MiniConRewrite(q, vs, aqv.MiniConOptions{VerifyCandidates: true, KeepComparisons: true})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, u.String())
		if *stats {
			fmt.Fprintf(out, "%% mcds=%d combinations=%d kept=%d\n", st.MCDs, st.Combinations, st.Kept)
		}
		return evalUnionIfData(out, u, views, base)
	case "inverse":
		prog, err := aqv.InverseRulesProgram(q, views)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, prog.String())
		if *explain || base != nil {
			var viewDB *aqv.Database
			if base != nil {
				viewDB, err = aqv.MaterializeViews(base, views)
				if err != nil {
					return err
				}
				viewDB.BuildIndexes()
			} else {
				viewDB = aqv.NewDatabase()
			}
			// Compile once: -explain describes exactly the plan that runs.
			cp, err := aqv.CompileProgram(prog, aqv.NewCatalog(viewDB))
			if err != nil {
				return err
			}
			if *explain {
				fmt.Fprintf(out, "%% compiled program:\n%s", cp.Describe())
			}
			if base != nil {
				derived, fst, err := cp.EvalRelation(viewDB, q.Name(), 1)
				if err != nil {
					return err
				}
				if *stats {
					fmt.Fprintf(out, "%% fixpoint: iterations=%d derived=%d\n", fst.Iterations, fst.Derived)
				}
				printAnswers(out, q.Name(), aqv.CertainAnswers(derived))
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
}

func runEquivalent(out *os.File, q *aqv.Query, views []*aqv.Query, vs *aqv.ViewSet, base *aqv.Database, all, partial, stats, explain bool) error {
	r := aqv.NewRewriter(vs)
	r.Opt.AllowPartial = partial
	r.Opt.KeepComparisons = true
	if all {
		r.Opt.MaxResults = aqv.AllRewritings
	}
	results, st := r.Rewrite(q)
	if len(results) == 0 {
		fmt.Fprintln(out, "% no equivalent rewriting exists for the given views")
	}
	for _, rw := range results {
		kind := "complete"
		if !rw.Complete {
			kind = "partial"
		}
		fmt.Fprintf(out, "%s  %% %s\n", rw.Query.String(), kind)
	}
	if stats {
		fmt.Fprintf(out, "%% applications=%d valid=%d candidates=%d equivalence_checks=%d\n",
			st.Applications, st.ValidApplications, st.CandidatesTried, st.EquivalenceChecks)
	}
	if base != nil && len(results) > 0 {
		// Build the execution database: view extents plus base relations
		// (partial rewritings read both).
		merged := base.Clone()
		for _, v := range views {
			if err := datalog.MaterializeView(base, v, merged); err != nil {
				return err
			}
		}
		// Choose the cheapest rewriting under the catalog statistics, then
		// compile it once: Describe and Eval see the same physical plan.
		merged.BuildIndexes()
		catalog := aqv.NewCatalog(merged)
		candidates := make([]*aqv.Query, len(results))
		for i, rw := range results {
			candidates[i] = rw.Query
		}
		best, estimates := aqv.ChoosePlan(catalog, candidates)
		if stats && len(candidates) > 1 {
			fmt.Fprintf(out, "%% cost model chose plan %d (cost %.0f)\n", best, estimates[best].Cost)
		}
		plan := aqv.CompileQuery(candidates[best], catalog)
		if explain {
			fmt.Fprintf(out, "%% plan:\n%s", plan.Describe())
		}
		printAnswers(out, q.Name(), plan.Eval(merged))
	}
	return nil
}

// runAuto answers one query through the engine's cost-driven strategy,
// reporting which algorithm the cost model chose.
func runAuto(out *os.File, q *aqv.Query, views []*aqv.Query, base *aqv.Database, partial, stats, explain bool) error {
	hasData := base != nil
	if base == nil {
		base = aqv.NewDatabase()
	}
	eng, err := aqv.NewEngineFromBase(base, views, aqv.EngineOptions{
		Strategy:        aqv.StrategyAuto,
		AllowPartial:    partial,
		KeepComparisons: true,
	})
	if err != nil {
		return err
	}
	pq, err := eng.Prepare(q)
	if err != nil {
		return err
	}
	p := pq.Plan()
	fmt.Fprintf(out, "%% auto chose %s (estimated cost %.0f)\n", p.Chosen, p.Estimate.Cost)
	printPlan(out, p)
	if explain {
		switch {
		case p.Compiled != nil:
			fmt.Fprintf(out, "%% plan:\n%s", p.Compiled.Describe())
		case p.CompiledUnion != nil:
			for i, cp := range p.CompiledUnion {
				fmt.Fprintf(out, "%% plan (member %d):\n%s", i+1, cp.Describe())
			}
		case p.CompiledProgram != nil:
			fmt.Fprintf(out, "%% compiled program:\n%s", p.CompiledProgram.Describe())
		}
	}
	if hasData {
		answers, err := pq.Exec(pq.Args()...)
		if err != nil {
			return err
		}
		printAnswers(out, q.Name(), answers)
	}
	if stats {
		st := eng.Stats()
		fmt.Fprintf(out, "%% engine: compile_time=%v execs=%d exec_time=%v\n",
			st.CompileTime, st.ExecCount, st.ExecTime)
	}
	return nil
}

// printPlan renders the payload of a cached plan, one line. Parameterized
// plans are in planning form — the head carries the template placeholders
// as trailing columns — so the placeholder set is spelled out alongside.
func printPlan(out *os.File, p *aqv.EnginePlan) {
	note := ""
	if len(p.Params) > 0 {
		note = fmt.Sprintf(", head carries params %v", p.Params)
	}
	switch {
	case p.Rewriting != nil:
		fmt.Fprintf(out, "%% plan (%s%s): %s\n", p.Kind, note, p.Rewriting.Query)
	case p.Union != nil:
		fmt.Fprintf(out, "%% plan (%s%s): %d member(s)\n", p.Kind, note, p.Union.Len())
	case p.Program != nil:
		fmt.Fprintf(out, "%% plan (%s%s): %d rule(s)\n", p.Kind, note, len(p.Program.Rules))
	}
}

// govOpts carries the resource-governance flags: a per-request deadline, a
// derived-tuple cap and the admission-control concurrency cap.
type govOpts struct {
	timeout       time.Duration
	maxDerived    int
	maxConcurrent int
}

// budget translates the flags to an engine-wide default budget.
func (g govOpts) budget() aqv.EngineBudget {
	return aqv.EngineBudget{Deadline: g.timeout, MaxDerivedTuples: g.maxDerived}
}

// printGovStats reports admission and panic-isolation outcomes under
// -stats, when governance is active or anything was actually shed.
func printGovStats(out *os.File, g govOpts, st aqv.EngineStats) {
	ad := st.Admission
	if g.maxConcurrent > 0 || ad.Shed > 0 || ad.TimedOut > 0 || st.Panics > 0 {
		fmt.Fprintf(out, "%% engine: admitted=%d queued=%d shed=%d timed_out=%d canceled=%d panics=%d\n",
			ad.Admitted, ad.Queued, ad.Shed, ad.TimedOut, ad.Canceled, st.Panics)
	}
}

// runBatch answers a stream of query rules through one plan-caching engine,
// preparing each query against the template cache and executing it under
// its own constants. Without -data only the plans are printed; with -data
// each query's answers follow its plan.
func runBatch(out *os.File, path string, views []*aqv.Query, base *aqv.Database, algo, dataDir string, cacheSize, workers, shards int, gov govOpts, partial, prepare, stats bool) error {
	queries, err := loadQueries(path)
	if err != nil {
		return err
	}
	strategy, err := aqv.ParseStrategy(algo)
	if err != nil {
		return err
	}
	hasData := base != nil || dataDir != ""
	if base == nil {
		base = aqv.NewDatabase()
	}
	eng, err := aqv.NewEngineFromBase(base, views, aqv.EngineOptions{
		Strategy:        strategy,
		CacheSize:       cacheSize,
		AllowPartial:    partial,
		KeepComparisons: true,
		EvalWorkers:     workers,
		Shards:          shards,
		Budget:          gov.budget(),
		MaxConcurrent:   gov.maxConcurrent,
		DataDir:         dataDir,
		Logf:            func(format string, a ...any) { fmt.Fprintf(out, "%% "+format+"\n", a...) },
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	for i, q := range queries {
		pq, err := eng.Prepare(q)
		if err != nil {
			return fmt.Errorf("query %d (%s): %w", i+1, q.Name(), err)
		}
		p := pq.Plan()
		fmt.Fprintf(out, "%% [%d] %s\n", i+1, q)
		printPlan(out, p)
		if prepare {
			fmt.Fprintf(out, "%% prepared: params=%d args=%v chosen=%s est=%.0f template=%s\n",
				pq.NumParams(), pq.Args(), p.Chosen, p.Estimate.Cost, p.Fingerprint)
		}
		if hasData {
			answers, err := pq.Exec(pq.Args()...)
			if err != nil {
				return err
			}
			printAnswers(out, q.Name(), answers)
		}
	}
	if stats {
		st := eng.Stats()
		fmt.Fprintf(out, "%% engine: hits=%d misses=%d coalesced=%d evictions=%d cached=%d\n",
			st.Hits, st.Misses, st.Coalesced, st.Evictions, st.CacheLen)
		fmt.Fprintf(out, "%% engine: compile_time=%v execs=%d exec_time=%v\n",
			st.CompileTime, st.ExecCount, st.ExecTime)
		if st.FixpointRuns > 0 {
			fmt.Fprintf(out, "%% engine: fixpoints=%d iterations=%d derived=%d\n",
				st.FixpointRuns, st.FixpointIterations, st.FixpointDerived)
		}
		for _, s := range aqv.EngineStrategies() {
			if agg, ok := st.PerStrategy[s]; ok {
				fmt.Fprintf(out, "%% engine: strategy=%s plans=%d plan_time=%v hits=%d\n", s, agg.Plans, agg.PlanTime, agg.Hits)
			}
		}
		printGovStats(out, gov, st)
	}
	return nil
}

// runStream serves an interleaved update/query stream through one live
// engine: ground facts accumulate into a pending batch — lines prefixed
// with "-" as retractions, plain lines as inserts — and each query rule
// applies the batch atomically (deletions first, every extent maintained
// incrementally) and then answers over the updated snapshot. One statement
// per line; trailing facts are applied at end of stream.
func runStream(out *os.File, path string, views []*aqv.Query, base *aqv.Database, algo, dataDir string, cacheSize, workers, shards int, gov govOpts, partial, stats bool) error {
	strategy, err := aqv.ParseStrategy(algo)
	if err != nil {
		return err
	}
	if base == nil {
		base = aqv.NewDatabase()
	}
	eng, err := aqv.NewEngineFromBase(base, views, aqv.EngineOptions{
		Strategy:        strategy,
		CacheSize:       cacheSize,
		AllowPartial:    partial,
		KeepComparisons: true,
		EvalWorkers:     workers,
		Shards:          shards,
		LiveUpdates:     true,
		Budget:          gov.budget(),
		MaxConcurrent:   gov.maxConcurrent,
		DataDir:         dataDir,
		Logf:            func(format string, a ...any) { fmt.Fprintf(out, "%% "+format+"\n", a...) },
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	var data []byte
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}

	step := 0
	pendingIns := make(map[string][]aqv.Tuple)
	pendingDel := make(map[string][]aqv.Tuple)
	nins, ndel := 0, 0
	flush := func() error {
		if nins == 0 && ndel == 0 {
			return nil
		}
		before := eng.Stats()
		if err := eng.ApplyUpdate(pendingIns, pendingDel); err != nil {
			return err
		}
		after := eng.Stats()
		step++
		fmt.Fprintf(out, "%% [%d] batch: %d insert(s) (%d new), %d delete(s) (%d present), +%d/-%d extent tuple(s), maintain=%v\n",
			step, nins, after.UpdateTuples-before.UpdateTuples,
			ndel, after.UpdateDeleted-before.UpdateDeleted,
			after.DeltaDerived-before.DeltaDerived,
			after.DeltaRetracted-before.DeltaRetracted,
			after.MaintainTime-before.MaintainTime)
		pendingIns = make(map[string][]aqv.Tuple)
		pendingDel = make(map[string][]aqv.Tuple)
		nins, ndel = 0, 0
		return nil
	}
	for lineno, line := range strings.Split(string(data), "\n") {
		stmt := strings.TrimSpace(line)
		if stmt == "" || strings.HasPrefix(stmt, "%") {
			continue
		}
		// A "-" prefix marks the line's facts as retractions.
		deleting := false
		if strings.HasPrefix(stmt, "-") {
			deleting = true
			stmt = strings.TrimSpace(strings.TrimPrefix(stmt, "-"))
		}
		prog, err := aqv.ParseProgram(stmt)
		if err != nil {
			return fmt.Errorf("stream line %d: %w", lineno+1, err)
		}
		if len(prog.Queries) > 0 && deleting {
			return fmt.Errorf("stream line %d: a \"-\" line retracts facts; queries cannot be negated", lineno+1)
		}
		if len(prog.Facts) > 0 && len(prog.Queries) > 0 {
			// Mixing both on one line would silently reorder: facts batch
			// up, so a query would see inserts written after it.
			return fmt.Errorf("stream line %d: facts and queries on one line; put each statement on its own line", lineno+1)
		}
		for _, f := range prog.Facts {
			t := make(aqv.Tuple, len(f.Args))
			for i, arg := range f.Args {
				t[i] = arg.Lex
			}
			if deleting {
				pendingDel[f.Pred] = append(pendingDel[f.Pred], t)
				ndel++
			} else {
				pendingIns[f.Pred] = append(pendingIns[f.Pred], t)
				nins++
			}
		}
		for _, q := range prog.Queries {
			if err := q.Validate(); err != nil {
				return fmt.Errorf("stream line %d: %w", lineno+1, err)
			}
			if err := flush(); err != nil {
				return err
			}
			step++
			pq, err := eng.Prepare(q)
			if err != nil {
				return fmt.Errorf("stream line %d (%s): %w", lineno+1, q.Name(), err)
			}
			fmt.Fprintf(out, "%% [%d] %s\n", step, q)
			answers, err := pq.Exec(pq.Args()...)
			if err != nil {
				return err
			}
			printAnswers(out, q.Name(), answers)
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if stats {
		st := eng.Stats()
		fmt.Fprintf(out, "%% engine: hits=%d misses=%d cached=%d execs=%d exec_time=%v\n",
			st.Hits, st.Misses, st.CacheLen, st.ExecCount, st.ExecTime)
		fmt.Fprintf(out, "%% engine: update_batches=%d update_tuples=%d update_deleted=%d delta_derived=%d delta_retracted=%d maintain_time=%v\n",
			st.UpdateBatches, st.UpdateTuples, st.UpdateDeleted, st.DeltaDerived, st.DeltaRetracted, st.MaintainTime)
		printGovStats(out, gov, st)
	}
	return nil
}

// loadQueries reads a stream of query rules; "-" reads stdin.
func loadQueries(path string) ([]*aqv.Query, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	queries, err := aqv.ParseViews(string(data))
	if err != nil {
		return nil, err
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("no query rules in %s", path)
	}
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, err
		}
	}
	return queries, nil
}

func evalUnionIfData(out *os.File, u *aqv.Union, views []*aqv.Query, base *aqv.Database) error {
	if base == nil || u.Len() == 0 {
		return nil
	}
	viewDB, err := aqv.MaterializeViews(base, views)
	if err != nil {
		return err
	}
	printAnswers(out, u.Queries[0].Name(), aqv.EvalUnion(viewDB, u))
	return nil
}

func printAnswers(out *os.File, name string, answers []aqv.Tuple) {
	fmt.Fprintf(out, "%% %d answer(s):\n", len(answers))
	for _, t := range answers {
		fmt.Fprintf(out, "%s(", name)
		for i, v := range t {
			if i > 0 {
				fmt.Fprint(out, ",")
			}
			fmt.Fprint(out, v)
		}
		fmt.Fprintln(out, ").")
	}
}

func loadQuery(path string) (*aqv.Query, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	q, err := aqv.ParseQuery(string(data))
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

func loadViews(path string) ([]*cq.Query, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	views, err := aqv.ParseViews(string(data))
	if err != nil {
		return nil, err
	}
	for _, v := range views {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	return views, nil
}

func loadData(path string) (*aqv.Database, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := aqv.ParseProgram(string(data))
	if err != nil {
		return nil, err
	}
	if len(prog.Queries) > 0 {
		return nil, fmt.Errorf("data file %s contains rules; only ground facts are allowed", path)
	}
	db := aqv.NewDatabase()
	if err := db.LoadFacts(prog.Facts); err != nil {
		return nil, err
	}
	return db, nil
}
