package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

const testViews = `
	v(A,B)  :- r(A,C), s(C,B).
	vr(A,B) :- r(A,B).
`

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// inlineDir writes a views.dl + base.dl pair into a temp dir.
func inlineDir(t *testing.T) (views, base string) {
	t.Helper()
	dir := t.TempDir()
	views = filepath.Join(dir, "views.dl")
	base = filepath.Join(dir, "base.dl")
	writeFile(t, views, testViews)
	var b strings.Builder
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "r(k%d, m%d).\n", i, i%4)
	}
	for j := 0; j < 4; j++ {
		fmt.Fprintf(&b, "s(m%d, x%d).\n", j, j)
	}
	writeFile(t, base, b.String())
	return views, base
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// startDaemon runs the daemon with the given args and returns its base URL
// plus a cancel that triggers graceful shutdown and waits for exit.
func startDaemon(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	notifyAddr = addrCh
	t.Cleanup(func() { notifyAddr = nil })

	runErr := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		runErr <- run(ctx, append([]string{"-listen", "127.0.0.1:0"}, args...), &out)
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr.String(), func() error {
			cancel()
			select {
			case err := <-runErr:
				return err
			case <-time.After(10 * time.Second):
				return fmt.Errorf("daemon did not exit; output:\n%s", out.String())
			}
		}
	case err := <-runErr:
		t.Fatalf("daemon exited before listening: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never started listening\n%s", out.String())
	}
	panic("unreachable")
}

// TestDaemonEndToEnd boots an inline live namespace, runs the whole request
// surface over real HTTP, then shuts down gracefully via context cancel
// (the same path a SIGTERM takes).
func TestDaemonEndToEnd(t *testing.T) {
	views, base := inlineDir(t)
	url, shutdown := startDaemon(t, "-views", views, "-base", base, "-live")

	resp, raw := postJSON(t, url+"/v1/prepare", map[string]any{"query": "q(Y) :- r(k1,Z), s(Z,Y)."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare: %d %s", resp.StatusCode, raw)
	}
	var prep struct {
		Handle    string   `json:"handle"`
		NumParams int      `json:"num_params"`
		Args      []string `json:"args"`
	}
	if err := json.Unmarshal(raw, &prep); err != nil {
		t.Fatal(err)
	}
	if prep.Handle == "" || prep.NumParams != 1 {
		t.Fatalf("prepare = %+v", prep)
	}

	resp, raw = postJSON(t, url+"/v1/exec", map[string]any{"handle": prep.Handle, "args": []string{"k2"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec: %d %s", resp.StatusCode, raw)
	}
	var ans struct {
		Answers [][]string `json:"answers"`
		Count   int        `json:"count"`
	}
	if err := json.Unmarshal(raw, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Count != 1 || ans.Answers[0][0] != "x2" {
		t.Fatalf("exec answers = %+v", ans)
	}

	// Batch insert, then observe it through a one-shot query.
	resp, raw = postJSON(t, url+"/v1/batch", map[string]any{
		"updates": map[string][][]string{"r": {{"k100", "m0"}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, url+"/v1/query", map[string]any{"query": "q(Y) :- r(k100,Z), s(Z,Y)."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Count != 1 || ans.Answers[0][0] != "x0" {
		t.Fatalf("post-batch answers = %+v", ans)
	}

	// Mixed batch: retract the fact just inserted and insert a replacement
	// in the same atomic unit.
	resp, raw = postJSON(t, url+"/v1/batch", map[string]any{
		"updates": map[string][][]string{"r": {{"k101", "m0"}}},
		"deletes": map[string][][]string{"r": {{"k100", "m0"}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch: %d %s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte(`"deleted":1`)) {
		t.Fatalf("mixed batch response missing deleted count: %s", raw)
	}
	resp, raw = postJSON(t, url+"/v1/query", map[string]any{"query": "q(Y) :- r(k100,Z), s(Z,Y)."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Count != 0 {
		t.Fatalf("retracted fact still answered: %+v", ans)
	}
	resp, raw = postJSON(t, url+"/v1/query", map[string]any{"query": "q(Y) :- r(k101,Z), s(Z,Y)."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Count != 1 || ans.Answers[0][0] != "x0" {
		t.Fatalf("post-mixed answers = %+v", ans)
	}

	// Health + stats.
	hr, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hraw, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || !bytes.Contains(hraw, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", hr.StatusCode, hraw)
	}
	sr, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	sraw, _ := io.ReadAll(sr.Body)
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK || !bytes.Contains(sraw, []byte(`"default"`)) {
		t.Fatalf("stats: %d %s", sr.StatusCode, sraw)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The listener is closed: new connections fail.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("daemon still accepting connections after shutdown")
	}
}

// TestDaemonConfigDir boots from a namespace config directory and routes to
// both namespaces.
func TestDaemonConfigDir(t *testing.T) {
	dir := t.TempDir()
	for _, ns := range []string{"alpha", "beta"} {
		nsDir := filepath.Join(dir, ns)
		if err := os.Mkdir(nsDir, 0o755); err != nil {
			t.Fatal(err)
		}
		writeFile(t, filepath.Join(nsDir, "views.dl"), testViews)
		writeFile(t, filepath.Join(nsDir, "base.dl"), fmt.Sprintf("r(a%s, m0).\ns(m0, x0).\n", ns))
	}
	writeFile(t, filepath.Join(dir, "beta", "config.json"), `{"strategy": "inverse-rules", "live_updates": true}`)

	url, shutdown := startDaemon(t, "-config", dir)
	for _, ns := range []string{"alpha", "beta"} {
		resp, raw := postJSON(t, url+"/v1/ns/"+ns+"/query", map[string]any{"query": "q(X,Y) :- r(X,Z), s(Z,Y)."})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s query: %d %s", ns, resp.StatusCode, raw)
		}
		if !bytes.Contains(raw, []byte("a"+ns)) {
			t.Fatalf("%s answers missing its own data: %s", ns, raw)
		}
	}
	// beta is live, alpha is frozen.
	batch := map[string]any{"updates": map[string][][]string{"r": {{"anew", "m0"}}}}
	resp, _ := postJSON(t, url+"/v1/ns/beta/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta batch: %d", resp.StatusCode)
	}
	resp, raw := postJSON(t, url+"/v1/ns/alpha/batch", batch)
	if resp.StatusCode != http.StatusConflict || !bytes.Contains(raw, []byte("not_live")) {
		t.Fatalf("alpha batch: %d %s", resp.StatusCode, raw)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRegistryFlagErrors(t *testing.T) {
	if _, err := buildRegistry("", "", "", "", server.Config{}); err == nil {
		t.Fatal("no mode selected should error")
	}
	if _, err := buildRegistry("x", "y", "", "", server.Config{}); err == nil {
		t.Fatal("both modes selected should error")
	}
	if _, err := buildRegistry(t.TempDir(), "", "", "", server.Config{}); err == nil {
		t.Fatal("empty config dir should error")
	}
}

// TestDaemonDurableRestart covers the graceful path: boot with -data,
// apply a batch, shut down (checkpoint), boot again from disk and verify
// the batch survived and the stats endpoint reports durable storage.
func TestDaemonDurableRestart(t *testing.T) {
	views, base := inlineDir(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{"-views", views, "-base", base, "-live", "-data", dataDir}

	url, shutdown := startDaemon(t, args...)
	resp, raw := postJSON(t, url+"/v1/batch", map[string]any{
		"updates": map[string][][]string{"r": {{"persisted", "m0"}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, raw)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	url, shutdown = startDaemon(t, args...)
	defer shutdown()
	resp, raw = postJSON(t, url+"/v1/query", map[string]any{"query": "q(Y) :- r(persisted,Z), s(Z,Y)."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart query: %d %s", resp.StatusCode, raw)
	}
	var ans struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(raw, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Count != 1 {
		t.Fatalf("batch applied before restart not served after: %s", raw)
	}
	sr, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	sraw, _ := io.ReadAll(sr.Body)
	sr.Body.Close()
	var all map[string]struct {
		Engine struct {
			Durable struct {
				Enabled         bool
				RecoveredTuples int
			}
		} `json:"engine"`
	}
	if err := json.Unmarshal(sraw, &all); err != nil {
		t.Fatalf("stats decode: %v\n%s", err, sraw)
	}
	st := all["default"].Engine.Durable
	if !st.Enabled || st.RecoveredTuples == 0 {
		t.Fatalf("stats report no durable recovery: %+v\n%s", st, sraw)
	}
}
