package main

// Crash torture: a real daemon process is SIGKILLed mid-batch-stream and
// restarted from its -data directory. The restarted daemon must serve
// exactly the acknowledged batches — except possibly the single batch that
// was in flight when the kill landed, which may be present or absent but
// only atomically so.
//
// The daemon runs as a child process of the test binary itself
// (re-exec via -test.run=TestHelperDaemonProcess), so kill -9 hits a real
// OS process with a real WAL fd, not an in-process goroutine.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/engine"
	"repro/internal/storage"
)

// TestHelperDaemonProcess is not a test: it is the child-process entry
// point. The parent re-execs the test binary with AQVD_HELPER_DAEMON set
// and the daemon args in the environment.
func TestHelperDaemonProcess(t *testing.T) {
	if os.Getenv("AQVD_HELPER_DAEMON") != "1" {
		t.Skip("helper process entry point")
	}
	args := strings.Split(os.Getenv("AQVD_HELPER_ARGS"), "\x1f")
	addrFile := os.Getenv("AQVD_HELPER_ADDRFILE")
	ch := make(chan net.Addr, 1)
	notifyAddr = ch
	go func() {
		a := <-ch
		tmp := addrFile + ".tmp"
		os.WriteFile(tmp, []byte(a.String()), 0o644)
		os.Rename(tmp, addrFile)
	}()
	if err := run(context.Background(), args, io.Discard); err != nil {
		fmt.Fprintln(os.Stderr, "helper daemon:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// spawnDaemon starts the daemon child and waits for its listen address.
func spawnDaemon(t *testing.T, addrFile string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperDaemonProcess$")
	cmd.Env = append(os.Environ(),
		"AQVD_HELPER_DAEMON=1",
		"AQVD_HELPER_ARGS="+strings.Join(append([]string{"-listen", "127.0.0.1:0"}, args...), "\x1f"),
		"AQVD_HELPER_ADDRFILE="+addrFile,
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return cmd, "http://" + string(data)
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("daemon child never reported its address; stderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDaemonKill9CrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs real processes")
	}
	views, base := inlineDir(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	addrFile := filepath.Join(t.TempDir(), "addr")
	daemonArgs := []string{"-views", views, "-base", base, "-live", "-data", dataDir}

	cmd, url := spawnDaemon(t, addrFile, daemonArgs...)

	// Stream distinct-tuple batches as fast as the daemon acks them. Each
	// batch is recorded before the request and promoted to acked on 200, so
	// at kill time exactly the last entry may be in limbo.
	type entry struct {
		tuples [][]string
		acked  bool
	}
	var sent []entry
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := [][]string{
				{fmt.Sprintf("crash%d", i), fmt.Sprintf("m%d", i%4)},
				{fmt.Sprintf("crash%d_b", i), fmt.Sprintf("m%d", (i+1)%4)},
			}
			sent = append(sent, entry{tuples: batch})
			body, _ := json.Marshal(map[string]any{"updates": map[string][][]string{"r": batch}})
			resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				return // the kill landed mid-request
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			sent[len(sent)-1].acked = true
		}
	}()

	// Let a stream of batches through, then kill -9 mid-flight.
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	cmd.Wait()
	acked := 0
	for _, e := range sent {
		if e.acked {
			acked++
		}
	}
	if acked == 0 {
		t.Fatalf("no batch was acknowledged before the kill (%d sent)", len(sent))
	}

	// Restart from the same -data directory and read the full r relation
	// through the vr view.
	re, url2 := spawnDaemon(t, addrFile, daemonArgs...)
	defer func() {
		re.Process.Signal(os.Interrupt)
		re.Wait()
	}()
	body, _ := json.Marshal(map[string]any{"query": "q(X,Y) :- r(X,Y)."})
	resp, err := http.Post(url2+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart query: %d %s", resp.StatusCode, raw)
	}
	var ans struct {
		Answers [][]string `json:"answers"`
	}
	if err := json.Unmarshal(raw, &ans); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(ans.Answers))
	for _, row := range ans.Answers {
		got[strings.Join(row, "\x1f")] = true
	}

	// Differential check against a shadow engine fed exactly the
	// acknowledged batches — the daemon's answers must match it, modulo the
	// at-most-one unacked batch, which must be atomically present or absent.
	shadow := shadowEngine(t, base, views)
	limboPresent, limboAbsent := 0, 0
	for _, e := range sent {
		key0 := strings.Join(e.tuples[0], "\x1f")
		key1 := strings.Join(e.tuples[1], "\x1f")
		switch {
		case e.acked:
			if !got[key0] || !got[key1] {
				t.Fatalf("acknowledged batch %v lost across kill -9", e.tuples)
			}
			ups := map[string][]storage.Tuple{"r": {e.tuples[0], e.tuples[1]}}
			if err := shadow.ApplyUpdate(ups, nil); err != nil {
				t.Fatal(err)
			}
		case got[key0] != got[key1]:
			t.Fatalf("unacked batch %v recovered non-atomically", e.tuples)
		case got[key0]:
			limboPresent++
			ups := map[string][]storage.Tuple{"r": {e.tuples[0], e.tuples[1]}}
			if err := shadow.ApplyUpdate(ups, nil); err != nil {
				t.Fatal(err)
			}
		default:
			limboAbsent++
		}
	}
	if limboPresent+limboAbsent > 1 {
		t.Fatalf("%d batches in limbo, want at most the single in-flight one", limboPresent+limboAbsent)
	}
	want, err := shadow.Answer(cq.MustParseQuery("q(X,Y) :- r(X,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("recovered daemon serves %d r-tuples, shadow engine has %d", len(got), len(want))
	}
	for _, row := range want {
		if !got[strings.Join([]string(row), "\x1f")] {
			t.Fatalf("shadow tuple %v missing from recovered daemon", row)
		}
	}
	t.Logf("kill -9 recovery: %d acked batches preserved, in-flight batch %s",
		acked, map[bool]string{true: "committed", false: "absent"}[limboPresent == 1])
}

// shadowEngine builds an in-process live engine from the same views and
// base facts the daemon booted with.
func shadowEngine(t *testing.T, basePath, viewsPath string) *engine.Engine {
	t.Helper()
	viewsSrc, err := os.ReadFile(viewsPath)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := cq.ParseViews(string(viewsSrc))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(basePath)
	if err != nil {
		t.Fatal(err)
	}
	db, err := storage.ReadDatabase(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.NewFromBase(db, vs, engine.Options{LiveUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}
