// Command aqvd is the answering-queries-using-views daemon: an HTTP/JSON
// server over the view-serving engine. It loads one or more namespaces —
// each an isolated engine with its own views, base facts and governance
// config — and serves prepared-query sessions, one-shot queries, live
// update batches and stats over a small JSON API.
//
// Usage:
//
//	aqvd -config DIR [-data DIR] [-listen ADDR] [-drain-timeout D]
//	aqvd -views views.dl [-base facts.dl] [-data DIR] [-strategy S] [-live]
//	     [-max-concurrent N] [-max-queue N] [-listen ADDR]
//
// With -config, every subdirectory of DIR holding a views.dl becomes a
// namespace named after the subdirectory (optional base.dl for ground
// facts, optional config.json for engine and session options). With
// -views, a single "default" namespace is built inline from flags.
//
// With -data, every namespace persists its state (checksummed snapshot +
// write-ahead log) under DIR/<name>: acknowledged batches survive crashes,
// a restart recovers from disk instead of re-materializing the views, and
// a graceful shutdown checkpoints so the next boot replays no log.
//
// Endpoints: POST /v1/prepare, /v1/exec, /v1/query, /v1/batch;
// GET /v1/stats, /healthz — all also under /v1/ns/{name}/... for explicit
// namespace routing. Error responses carry a machine-readable envelope
// ({"error": {"code": ...}}); overload is 429 with Retry-After, deadline
// expiry 408, budget trips 422 with partial fixpoint stats.
//
// On SIGINT/SIGTERM the daemon drains: new requests (health checks
// included) are refused with 503/shutting_down while in-flight requests
// run to completion, bounded by -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cq"
	"repro/internal/server"
	"repro/internal/storage"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aqvd:", err)
		os.Exit(1)
	}
}

// notifyAddr, when non-nil, receives the bound listen address once the
// daemon is accepting connections. Test hook.
var notifyAddr chan<- net.Addr

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aqvd", flag.ContinueOnError)
	fs.SetOutput(out)
	listen := fs.String("listen", "127.0.0.1:8437", "address to listen on")
	configDir := fs.String("config", "", "namespace config directory: <dir>/<name>/views.dl [base.dl] [config.json]")
	viewsPath := fs.String("views", "", "inline mode: file with view definitions (single 'default' namespace)")
	basePath := fs.String("base", "", "inline mode: optional file of ground base facts")
	strategy := fs.String("strategy", "", "inline mode: planning strategy (equivalent-first, bucket, minicon, inverse-rules, auto)")
	live := fs.Bool("live", false, "inline mode: enable live mixed insert/delete batches (/v1/batch)")
	maxConcurrent := fs.Int("max-concurrent", 0, "inline mode: admission-control concurrency cap (0 = unlimited)")
	maxQueue := fs.Int("max-queue", 0, "inline mode: admission queue depth (0 = 4x cap, negative = no queue)")
	dataDir := fs.String("data", "", "durable storage root: each namespace persists (snapshot + WAL) under DIR/<name> and recovers from it at startup")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logf := func(format string, a ...any) { fmt.Fprintf(out, "aqvd: "+format+"\n", a...) }
	reg, err := buildRegistry(*configDir, *viewsPath, *basePath, *dataDir, server.Config{
		Strategy:      *strategy,
		LiveUpdates:   *live,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		Logf:          logf,
	})
	if err != nil {
		return err
	}
	srv := server.New(reg)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if notifyAddr != nil {
		notifyAddr <- ln.Addr()
	}
	fmt.Fprintf(out, "aqvd: serving namespaces %v on http://%s\n", reg.Names(), ln.Addr())

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain

	// Drain: refuse new requests, let in-flight ones finish, then close.
	fmt.Fprintln(out, "aqvd: draining")
	srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Durable namespaces checkpoint on close, so the next boot comes
	// entirely from the snapshot with no WAL to replay.
	if err := reg.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	fmt.Fprintln(out, "aqvd: stopped")
	return nil
}

// buildRegistry resolves the two configuration modes: a config directory of
// namespaces, or a single inline namespace from flags. A non-empty dataDir
// roots durable storage per namespace (DIR/<name>).
func buildRegistry(configDir, viewsPath, basePath, dataDir string, cfg server.Config) (*server.Registry, error) {
	switch {
	case configDir != "" && viewsPath != "":
		return nil, errors.New("-config and -views are mutually exclusive")
	case configDir != "":
		return server.LoadDirWith(configDir, server.DirOptions{DataRoot: dataDir, Logf: cfg.Logf})
	case viewsPath == "":
		return nil, errors.New("one of -config or -views is required")
	}
	if dataDir != "" {
		cfg.DataDir = filepath.Join(dataDir, server.DefaultNamespace)
	}

	viewsSrc, err := os.ReadFile(viewsPath)
	if err != nil {
		return nil, err
	}
	views, err := cq.ParseViews(string(viewsSrc))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", viewsPath, err)
	}
	base := storage.NewDatabase()
	if basePath != "" {
		f, err := os.Open(basePath)
		if err != nil {
			return nil, err
		}
		base, err = storage.ReadDatabase(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", basePath, err)
		}
	}
	ns, err := server.NewNamespace(server.DefaultNamespace, base, views, cfg)
	if err != nil {
		return nil, err
	}
	reg := server.NewRegistry()
	if err := reg.Add(ns); err != nil {
		return nil, err
	}
	return reg, nil
}
