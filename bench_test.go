// Benchmarks backing the experiment suite in DESIGN.md Section 5. Each
// benchmark regenerates one table/figure workload under testing.B; the
// formatted tables themselves come from cmd/aqvbench (same workloads, same
// seeds).
package aqv

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bucket"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/experiments"
	"repro/internal/inverserules"
	"repro/internal/minicon"
	"repro/internal/workload"
)

// BenchmarkT1RewritingLengthBound exercises the bounded-length rewriting
// search (paper R2) on a chain workload.
func BenchmarkT1RewritingLengthBound(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("chain%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			q := workload.ChainQuery(n, true)
			views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(3*n))
			vs, err := core.NewViewSet(views...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := core.NewRewriter(vs)
				r.Opt.MaxResults = core.AllRewritings
				r.Rewrite(q)
			}
		})
	}
}

// BenchmarkT2ExistenceScaling measures the usability decision on the easy
// (chain) and hard (clique-pattern) families (paper R3).
func BenchmarkT2ExistenceScaling(b *testing.B) {
	for _, k := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("easy/k=%d", k), func(b *testing.B) {
			v, q := workload.EasyUsabilityInstance(k, 12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Usable(v, q)
			}
		})
		b.Run(fmt.Sprintf("hard/k=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			v, q := workload.HardUsabilityInstance(rng, k, 12, 0.35)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Usable(v, q)
			}
		})
	}
}

// BenchmarkT3Usability measures per-view usability across view-set sizes.
func BenchmarkT3Usability(b *testing.B) {
	q := workload.ChainQuery(8, true)
	for _, m := range []int{16, 64, 256} {
		rng := rand.New(rand.NewSource(3))
		views := workload.ChainViews(rng, 8, true, workload.DefaultViewSpec(m))
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Usable(views[i%len(views)], q)
			}
		})
	}
}

// BenchmarkT4Containment measures the containment-mapping engine.
func BenchmarkT4Containment(b *testing.B) {
	families := map[string]func(int) *cq.Query{
		"chain": func(n int) *cq.Query { return workload.ChainQuery(n, false) },
		"star":  func(n int) *cq.Query { return workload.StarQuery(n, false) },
	}
	for name, gen := range families {
		for _, n := range []int{4, 8, 12} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				q1 := gen(n)
				q2 := q1.Clone()
				q2.Body = append(q2.Body, q2.Body[0])
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					containment.Contained(q2, q1)
				}
			})
		}
	}
}

// BenchmarkT5ComparisonContainment contrasts the sound and complete tests
// under comparisons (paper R5).
func BenchmarkT5ComparisonContainment(b *testing.B) {
	q1 := cq.MustParseQuery("q(X0,X2) :- p1(X0,X1), p2(X1,X2), X0 <= X1")
	q2 := cq.MustParseQuery("q(X0,X2) :- p1(X0,X1), p2(X1,X2), X0 <= X1, X1 <= X2")
	b.Run("sound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			containment.ContainedSound(q2, q1)
		}
	})
	b.Run("complete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			containment.ContainedComplete(q2, q1)
		}
	})
}

// benchRace runs one rewriting algorithm over a prepared workload.
func benchRace(b *testing.B, q *cq.Query, views []*cq.Query, algo string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.RaceOne(q, views, algo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF1ChainViews races Bucket vs MiniCon on chain queries.
func BenchmarkF1ChainViews(b *testing.B) {
	q := workload.ChainQuery(8, true)
	spec := workload.ViewSpec{MinLen: 2, MaxLen: 4, ExposeEndpoints: true, ExposeProb: 0}
	for _, m := range []int{8, 16, 32} {
		rng := rand.New(rand.NewSource(11))
		spec.Count = m
		views := workload.ChainViews(rng, 8, true, spec)
		for _, algo := range []string{"bucket", "minicon"} {
			b.Run(fmt.Sprintf("%s/m=%d", algo, m), func(b *testing.B) {
				benchRace(b, q, views, algo)
			})
		}
	}
}

// BenchmarkF2StarViews races Bucket vs MiniCon on star queries.
func BenchmarkF2StarViews(b *testing.B) {
	q := workload.StarQuery(6, true)
	spec := workload.ViewSpec{MinLen: 1, MaxLen: 2, ExposeEndpoints: true, ExposeProb: 1}
	for _, m := range []int{8, 16} {
		rng := rand.New(rand.NewSource(12))
		spec.Count = m
		views := workload.StarViews(rng, 6, true, spec)
		for _, algo := range []string{"bucket", "minicon"} {
			b.Run(fmt.Sprintf("%s/m=%d", algo, m), func(b *testing.B) {
				benchRace(b, q, views, algo)
			})
		}
	}
}

// BenchmarkF3CompleteViews races Bucket vs MiniCon on complete queries.
func BenchmarkF3CompleteViews(b *testing.B) {
	q := workload.CompleteQuery(4)
	for _, m := range []int{4, 8} {
		rng := rand.New(rand.NewSource(13))
		views := workload.CompleteViews(rng, 4, workload.ViewSpec{
			Count: m, MinLen: 2, MaxLen: 3, ExposeProb: 1,
		})
		for _, algo := range []string{"bucket", "minicon"} {
			b.Run(fmt.Sprintf("%s/m=%d", algo, m), func(b *testing.B) {
				benchRace(b, q, views, algo)
			})
		}
	}
}

// BenchmarkF4InverseRulesEval compares end-to-end answering: inverse rules
// vs evaluating the MiniCon rewriting.
func BenchmarkF4InverseRulesEval(b *testing.B) {
	const n = 5
	q := workload.ChainQuery(n, true)
	views := []*cq.Query{
		cq.MustParseQuery("v0(Y0,Y2) :- p1(Y0,Y1), p2(Y1,Y2)"),
		cq.MustParseQuery("v1(Y2,Y4) :- p3(Y2,Y3), p4(Y3,Y4)"),
		cq.MustParseQuery("v2(Y4,Y5) :- p5(Y4,Y5)"),
	}
	vs := core.MustNewViewSet(views...)
	for _, size := range []int{100, 400, 1600} {
		rng := rand.New(rand.NewSource(int64(14 + size)))
		base := workload.ChainDatabase(rng, n, true, size, size/4+2)
		viewDB, err := datalog.MaterializeViews(base, views)
		if err != nil {
			b.Fatal(err)
		}
		u, _, err := minicon.Rewrite(q, vs, minicon.Options{VerifyCandidates: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("minicon_eval/size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				datalog.EvalUnion(viewDB, u)
			}
		})
		b.Run(fmt.Sprintf("invrules/size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := inverserules.Answer(q, views, viewDB); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("direct/size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				datalog.EvalQuery(base, q)
			}
		})
	}
}

// BenchmarkF5CertainAnswers measures the full certain-answer pipeline.
func BenchmarkF5CertainAnswers(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	n := 3
	q := workload.ChainQuery(n, true)
	views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(6))
	base := workload.ChainDatabase(rng, n, true, 50, 8)
	viewDB, err := datalog.MaterializeViews(base, views)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("minicon", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := certainViaMiniCon(q, views, viewDB); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("invrules", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := inverserules.Answer(q, views, viewDB); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// certainViaMiniCon mirrors certain.ViaMiniCon without importing the
// package under its exported name twice.
func certainViaMiniCon(q *cq.Query, views []*cq.Query, viewDB *Database) ([]Tuple, error) {
	return CertainViaMiniCon(q, views, viewDB)
}

// BenchmarkF6Minimization is the minimisation ablation.
func BenchmarkF6Minimization(b *testing.B) {
	rng := rand.New(rand.NewSource(30))
	n := 5
	q := workload.ChainQuery(n, true)
	red := q.Clone()
	for i := 0; i < n; i++ {
		a := q.Body[rng.Intn(n)].Clone()
		a.Args[1] = cq.Var(fmt.Sprintf("R%d", i))
		red.Body = append(red.Body, a)
	}
	views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(2*n))
	vs, err := core.NewViewSet(views...)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("with_minimize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := core.NewRewriter(vs)
			r.Rewrite(red)
		}
	})
	b.Run("skip_minimize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := core.NewRewriter(vs)
			r.Opt.SkipMinimize = true
			r.Rewrite(red)
		}
	})
}

// BenchmarkCoreMicro covers the hot primitive operations.
func BenchmarkCoreMicro(b *testing.B) {
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cq.ParseQuery("q(X,Y) :- r(X,Z), s(Z,Y), Z < 5"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("minimize", func(b *testing.B) {
		q := cq.MustParseQuery("q(X) :- r(X,Y), r(X,Z), r(X,W)")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			containment.Minimize(q)
		}
	})
	b.Run("expand", func(b *testing.B) {
		vs := core.MustNewViewSet(cq.MustParseQuery("v(A,B) :- r(A,C), s(C,B)"))
		q := cq.MustParseQuery("q(X,Y) :- v(X,Y)")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Expand(q, vs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bucket_small", func(b *testing.B) {
		q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
		vs := core.MustNewViewSet(
			cq.MustParseQuery("v1(A,B) :- r(A,B)"),
			cq.MustParseQuery("v2(A,B) :- s(A,B)"),
		)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := bucket.Rewrite(q, vs, bucket.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
