// Package aqv is the public API of this library — a reproduction of
// "Answering Queries Using Views" (Levy, Mendelzon, Sagiv, Srivastava,
// PODS 1995) together with the algorithms the paper founded: equivalent
// rewriting search, and the Bucket, MiniCon and inverse-rules procedures
// for maximally-contained rewritings.
//
// The facade re-exports the stable parts of the internal packages so that
// applications need a single import:
//
//	import aqv "repro"
//
//	q := aqv.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
//	vs := aqv.MustNewViewSet(aqv.MustParseQuery("v(A,B) :- r(A,C), s(C,B)"))
//	rw := aqv.NewRewriter(vs).RewriteOne(q)  // q(X,Y) :- v(X,Y).
//
// Applications that answer many queries over one view set should use the
// serving engine instead of calling the algorithms directly: it caches
// rewriting plans in a bounded LRU keyed by query *templates* — the
// canonical form with constants abstracted to placeholders — coalesces
// concurrent identical requests, and is safe for parallel use:
//
//	eng, _ := aqv.NewEngineFromBase(base, views, aqv.EngineOptions{})
//	answers, _ := eng.Answer(q) // α-equivalent and constant-varying queries hit the plan cache
//
// Point-lookup streams should prepare once and execute per binding:
//
//	pq, _ := eng.Prepare(aqv.MustParseQuery("q(Y) :- r(k0,Z), s(Z,Y)"))
//	for _, key := range keys {
//		answers, _ := pq.Exec(key) // one compiled plan, one index probe per call
//	}
//
// Answer itself is a thin prepare-once-exec wrapper, so plain callers get
// template caching for free. With EngineOptions.Strategy == StrategyAuto
// the engine additionally picks the rewriting algorithm per template by
// cost estimate, and with MaxResults > 1 it keeps the cheapest of several
// equivalent rewritings instead of the first found.
//
// With EngineOptions.LiveUpdates the engine additionally accepts base-fact
// inserts (Engine.Insert/InsertBatch/ApplyBatch), deletions
// (Engine.Delete/DeleteBatch) and mixed batches (Engine.ApplyUpdate),
// incrementally maintaining every view extent per batch instead of
// freezing the database at construction — multiplicity counting for flat
// view sets, delete-rederive for recursive programs; cached plans survive
// updates, and concurrent readers see torn-free snapshots.
//
// See examples/ for complete programs and DESIGN.md for the system map.
package aqv

import (
	"repro/internal/bucket"
	"repro/internal/certain"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/inverserules"
	"repro/internal/ivm"
	"repro/internal/minicon"
	"repro/internal/server"
	"repro/internal/storage"
)

// Query model (see internal/cq).
type (
	// Query is a conjunctive query with optional comparison predicates.
	Query = cq.Query
	// Atom is a relational atom.
	Atom = cq.Atom
	// Term is a variable or constant.
	Term = cq.Term
	// Comparison is an arithmetic comparison predicate.
	Comparison = cq.Comparison
	// Union is a union of conjunctive queries.
	Union = cq.Union
	// Subst maps variable names to terms.
	Subst = cq.Subst
	// Program is a parsed set of rules and facts.
	Program = cq.Program
)

// Parsing.
var (
	// ParseQuery parses one rule in datalog syntax.
	ParseQuery = cq.ParseQuery
	// MustParseQuery panics on parse errors; for literals.
	MustParseQuery = cq.MustParseQuery
	// ParseProgram parses rules and facts.
	ParseProgram = cq.ParseProgram
	// ParseViews parses a rules-only program.
	ParseViews = cq.ParseViews
	// Var builds a variable term.
	Var = cq.Var
	// Const builds a constant term.
	Const = cq.Const
	// NewAtom builds an atom.
	NewAtom = cq.NewAtom
	// NewQuery builds a query from head and body.
	NewQuery = cq.NewQuery
	// NewUnion builds a union of queries.
	NewUnion = cq.NewUnion
)

// Canonical forms, templates and fingerprints (see internal/cq).
type (
	// QueryTemplate is a canonical query with constants abstracted to
	// ordered placeholders — the unit the engine caches plans per.
	QueryTemplate = cq.Template
)

var (
	// Canonicalize returns the canonical α-renamed, subgoal-sorted form.
	Canonicalize = cq.Canonicalize
	// CanonicalizeUnion canonicalises a union of conjunctive queries.
	CanonicalizeUnion = cq.CanonicalizeUnion
	// Fingerprint returns a cache key shared by α-equivalent queries.
	Fingerprint = cq.Fingerprint
	// CanonicalizeTemplate abstracts a query's constants to placeholders
	// and returns the canonical template plus the extracted binding.
	CanonicalizeTemplate = cq.CanonicalizeTemplate
	// TemplateFingerprint returns the template cache key of a query:
	// shared across α-variants and constant instantiations alike.
	TemplateFingerprint = cq.TemplateFingerprint
)

// Containment, equivalence and minimisation (see internal/containment).
var (
	// Contained reports q2 ⊑ q1 (exact).
	Contained = containment.Contained
	// ContainedSound is the fast sound test under comparisons.
	ContainedSound = containment.ContainedSound
	// Equivalent reports q1 ≡ q2.
	Equivalent = containment.Equivalent
	// Minimize returns the core of a query.
	Minimize = containment.Minimize
	// ContainedInUnion reports q ⊑ u.
	ContainedInUnion = containment.ContainedInUnion
	// UnionContained reports u ⊑ q.
	UnionContained = containment.UnionContained
	// MinimizeUnion prunes subsumed members and minimises the rest.
	MinimizeUnion = containment.MinimizeUnion
)

// Equivalent rewritings — the paper's core (see internal/core).
type (
	// ViewSet is a validated, named collection of view definitions.
	ViewSet = core.ViewSet
	// Rewriter searches for equivalent rewritings.
	Rewriter = core.Rewriter
	// Rewriting is a verified rewriting with its unfolding.
	Rewriting = core.Rewriting
	// RewriteOptions configures the rewriting search.
	RewriteOptions = core.Options
	// RewriteStats reports search work.
	RewriteStats = core.Stats
)

var (
	// NewViewSet validates and indexes views.
	NewViewSet = core.NewViewSet
	// MustNewViewSet panics on invalid views.
	MustNewViewSet = core.MustNewViewSet
	// NewRewriter builds a rewriter with default options.
	NewRewriter = core.NewRewriter
	// Expand unfolds view atoms into their definitions.
	Expand = core.Expand
	// VerifyRewriting checks a candidate rewriting from scratch.
	VerifyRewriting = core.VerifyRewriting
	// Usable reports whether a view can participate in an equivalent
	// rewriting of the query.
	Usable = core.Usable
)

// AllRewritings asks Rewriter.Rewrite for exhaustive enumeration.
const AllRewritings = core.AllRewritings

// Maximally-contained rewriting algorithms.
type (
	// BucketOptions configures the Bucket algorithm.
	BucketOptions = bucket.Options
	// BucketStats reports Bucket work.
	BucketStats = bucket.Stats
	// MiniConOptions configures MiniCon.
	MiniConOptions = minicon.Options
	// MiniConStats reports MiniCon work.
	MiniConStats = minicon.Stats
)

var (
	// BucketRewrite runs the Bucket algorithm.
	BucketRewrite = bucket.Rewrite
	// MiniConRewrite runs the MiniCon algorithm.
	MiniConRewrite = minicon.Rewrite
	// InverseRulesProgram builds the Skolemised datalog program.
	InverseRulesProgram = inverserules.Program
	// InverseRulesCompile builds and compiles the inverse-rules program
	// once; evaluate the returned CompiledProgram per request.
	InverseRulesCompile = inverserules.Compile
	// InverseRulesAnswer answers a query over view extents via inverse
	// rules.
	InverseRulesAnswer = inverserules.Answer
)

// Storage and evaluation (see internal/storage, internal/datalog).
type (
	// Database is an in-memory relational database.
	Database = storage.Database
	// Relation is a named set of tuples.
	Relation = storage.Relation
	// Tuple is a row of constant values.
	Tuple = storage.Tuple
	// PartitionedDatabase is a database whose relations are hash-partitioned
	// into shards — the physical layout the sharded evaluator runs over
	// (CompiledPlan.EvalSharded, CompiledProgram.EvalSharded, and the engine
	// under EngineOptions.Shards).
	PartitionedDatabase = storage.PartitionedDatabase
	// PartitionedRelation is a named tuple set hash-partitioned by one
	// column into independent shards.
	PartitionedRelation = storage.PartitionedRelation
)

var (
	// NewDatabase creates an empty database.
	NewDatabase = storage.NewDatabase
	// ReadDatabase parses datalog facts into a new database.
	ReadDatabase = storage.ReadDatabase
	// EvalQuery evaluates a conjunctive query (compile once, run once).
	EvalQuery = datalog.EvalQuery
	// EvalUnion evaluates a union of conjunctive queries.
	EvalUnion = datalog.EvalUnion
	// CompileQuery lowers a conjunctive query to a reusable slot-based
	// physical plan; see CompiledPlan.
	CompileQuery = datalog.Compile
	// CompileQueryParams is CompileQuery for a parameterized plan: the
	// named variables become parameter slots bound per execution
	// (CompiledPlan.EvalWith), so one plan serves every constant binding.
	CompileQueryParams = datalog.CompileParams
	// MaterializeViews evaluates views over a base database into a
	// view-extent database.
	MaterializeViews = datalog.MaterializeViews
	// TuplesEqual compares answer sets regardless of order.
	TuplesEqual = storage.TuplesEqual
	// SortTuples orders a tuple slice lexicographically in place.
	SortTuples = storage.SortTuples
	// CertainAnswers drops tuples containing Skolem values and sorts the
	// rest — the certain-answer set of an inverse-rules answer relation.
	CertainAnswers = datalog.CertainAnswers
	// Explain returns the execution plan EvalQuery would use.
	Explain = datalog.Explain
	// PartitionDatabase re-buckets a database into a hash-partitioned one
	// under a partition-column policy (Catalog.PartitionColumns is the
	// usual source); freeze with BuildIndexes before concurrent reads.
	PartitionDatabase = storage.Partition
	// ShardOf routes a column value to its owning shard — the single hash
	// router every layer of the sharded evaluator agrees on.
	ShardOf = storage.ShardOf
)

// Plan describes a query execution plan (see Explain).
type Plan = datalog.Plan

// CompiledPlan is an immutable slot-based physical plan: compile a query
// once with CompileQuery, then Eval / EvalParallel it any number of times
// (concurrently, over a frozen database) without re-planning. The serving
// engine caches one per query fingerprint.
type CompiledPlan = datalog.CompiledPlan

// CompiledProgram is the compiled semi-naive form of a datalog Program:
// every rule lowered to slot plans with per-occurrence delta variants.
// Compile once with CompileProgram (or InverseRulesCompile), then Eval /
// EvalParallel / EvalRelation it any number of times concurrently.
type CompiledProgram = datalog.CompiledProgram

// FixpointStats reports the work of one semi-naive fixpoint evaluation.
type FixpointStats = datalog.FixpointStats

// CompileProgram lowers a datalog program to its compiled semi-naive form
// under catalog statistics (nil is allowed).
var CompileProgram = datalog.CompileProgram

// CompileProgramIVM is CompileProgram plus one delta plan per EDB body
// occurrence, enabling CompiledProgram.MaintainDelta/ApplyInserts: base
// inserts propagate into already materialized derived relations without
// re-running the fixpoint.
var CompileProgramIVM = datalog.CompileProgramIVM

// Incremental view maintenance (see internal/ivm). A Maintainer keeps
// materialized view extents consistent under base-fact inserts, deletions
// and mixed batches by running compiled delta plans — insertions propagate
// monotonically, deletions through per-tuple multiplicity counting (flat
// view sets) or delete-rederive (recursive programs) — instead of
// re-materializing. The live engine (EngineOptions.LiveUpdates) embeds
// one; use it directly to maintain extents without the serving layer.
type (
	// Maintainer delta-maintains view extents over a base database.
	Maintainer = ivm.Maintainer
	// MaintainerOptions configures a Maintainer.
	MaintainerOptions = ivm.Options
	// MaintainerBatch reports one applied update batch.
	MaintainerBatch = ivm.BatchResult
	// MaintainerStats aggregates a Maintainer's lifetime work.
	MaintainerStats = ivm.Stats
)

// NewMaintainer materializes the views over base once and returns a
// Maintainer that keeps the extents fresh under ApplyBatch (inserts) and
// ApplyUpdate (mixed insert/delete batches).
var NewMaintainer = ivm.New

// ErrEngineNotLive reports a mutation (Insert/InsertBatch/ApplyBatch,
// Delete/DeleteBatch/ApplyUpdate) on an engine built without
// EngineOptions.LiveUpdates.
var ErrEngineNotLive = engine.ErrNotLive

// Resource governance (see internal/engine and internal/datalog): typed
// errors, per-request budgets and admission control for the serving
// boundary. All are opt-in; an engine with zero Budget and MaxConcurrent 0
// behaves exactly as before.
type (
	// EngineBudget bounds one request: a wall-clock deadline plus caps on
	// result rows, derived tuples and fixpoint rounds. Set a default in
	// EngineOptions.Budget or pass one per call (AnswerBudget, ExecBudget,
	// ApplyBatchBudget).
	EngineBudget = engine.Budget
	// AdmissionStats counts admission-control outcomes (EngineStats.Admission).
	AdmissionStats = engine.AdmissionStats
	// OverloadedError is the concrete load-shed error; its RetryAfter field
	// hints when to retry. Matches ErrEngineOverloaded under errors.Is.
	OverloadedError = engine.OverloadedError
	// InternalError is the concrete panic-isolation error, carrying the
	// recovered panic value and stack. Matches ErrEngineInternal.
	InternalError = engine.InternalError
	// QueryError wraps an evaluation failure with the partial-progress
	// fixpoint stats at the moment the run stopped.
	QueryError = engine.QueryError
	// EvalLimits bounds one compiled-executor evaluation (the datalog-level
	// form of EngineBudget, for callers using CompiledPlan/CompiledProgram
	// Ctx methods directly).
	EvalLimits = datalog.Limits
	// ArityError reports a tuple or request of the wrong width at the
	// storage boundary.
	ArityError = storage.ArityError
)

var (
	// ErrCanceled reports that a request's context was canceled or its
	// deadline expired mid-evaluation. Match with errors.Is.
	ErrCanceled = engine.ErrCanceled
	// ErrBudgetExceeded reports that a request exhausted an explicit
	// resource budget. Match with errors.Is.
	ErrBudgetExceeded = engine.ErrBudgetExceeded
	// ErrEngineOverloaded reports that admission control shed the request.
	ErrEngineOverloaded = engine.ErrOverloaded
	// ErrEngineInternal reports an evaluation panic converted to an error
	// at the engine boundary.
	ErrEngineInternal = engine.ErrInternal
	// ErrArityMismatch reports a caller-supplied arity error at the serving
	// boundary (wrong Exec argument count, parameterized plan in Eval).
	ErrArityMismatch = engine.ErrArityMismatch
	// ErrEngineDurability reports a write-ahead-log failure on a durable
	// engine (EngineOptions.DataDir): the failed batch was not published,
	// further mutations are refused fail-stop, reads keep serving.
	ErrEngineDurability = engine.ErrDurability
)

// Certain answers (see internal/certain).
type (
	// CertainReport summarises a certain-answer comparison.
	CertainReport = certain.Report
)

var (
	// CertainViaMiniCon computes certain answers via the MiniCon MCR.
	CertainViaMiniCon = certain.ViaMiniCon
	// CertainViaInverseRules computes certain answers via inverse rules.
	CertainViaInverseRules = certain.ViaInverseRules
	// CertainCompare cross-checks both routes against direct evaluation.
	CertainCompare = certain.Compare
)

// Minimal rewritings and shortening analysis (paper R4).
type (
	// Shortening reports how much views can shorten a query.
	Shortening = core.Shortening
)

var (
	// LocallyMinimal reports whether a rewriting can lose no subgoal.
	LocallyMinimal = core.LocallyMinimal
	// MinimizeRewriting removes redundant subgoals from a rewriting.
	MinimizeRewriting = core.MinimizeRewriting
	// GloballyMinimal filters a result set to the shortest rewritings.
	GloballyMinimal = core.GloballyMinimal
	// BestShortening reports the best achievable subgoal reduction.
	BestShortening = core.BestShortening
)

// Serving engine: concurrent, plan-caching query answering over all
// rewriting algorithms (see internal/engine). This is the primary entry
// point for applications that answer many queries over one view set.
type (
	// Engine is the concurrent plan-caching query answerer.
	Engine = engine.Engine
	// EngineOptions configures an Engine.
	EngineOptions = engine.Options
	// EngineStats is a snapshot of engine counters.
	EngineStats = engine.Stats
	// EnginePlan is a cached rewriting plan for one query template.
	EnginePlan = engine.Plan
	// PreparedQuery is the handle Engine.Prepare returns: a cached
	// template plan executable under any constant binding (Exec).
	PreparedQuery = engine.PreparedQuery
	// Strategy selects the rewriting algorithm an Engine plans with.
	Strategy = engine.Strategy
	// StrategyStats aggregates planning work per strategy.
	StrategyStats = engine.StrategyStats
	// ContainmentMemo caches containment decisions across checks.
	ContainmentMemo = containment.Memo
)

// Engine strategies.
const (
	// StrategyEquivalentFirst tries an equivalent rewriting, then MiniCon.
	StrategyEquivalentFirst = engine.EquivalentFirst
	// StrategyBucket plans with the Bucket algorithm.
	StrategyBucket = engine.Bucket
	// StrategyMiniCon plans with the MiniCon algorithm.
	StrategyMiniCon = engine.MiniCon
	// StrategyInverseRules compiles an inverse-rules program.
	StrategyInverseRules = engine.InverseRules
	// StrategyAuto picks the algorithm per query template by cost
	// estimate, recording the choice in EnginePlan.Chosen and
	// EngineStats.PerStrategy.
	StrategyAuto = engine.Auto
)

var (
	// NewEngine builds an Engine over a view set and view-extent database.
	NewEngine = engine.New
	// NewEngineFromBase materialises the views over base data and builds
	// an Engine serving from the result.
	NewEngineFromBase = engine.NewFromBase
	// ParseStrategy resolves a strategy name (CLI aliases accepted).
	ParseStrategy = engine.ParseStrategy
	// EngineStrategies lists the supported strategies.
	EngineStrategies = engine.Strategies
	// NewContainmentMemo returns an empty containment memo, shareable by
	// concurrent Rewriters via the Rewriter.Memo field.
	NewContainmentMemo = containment.NewMemo
)

// Cost-based plan choice (see internal/cost).
type (
	// Catalog holds relation statistics for cost estimation.
	Catalog = cost.Catalog
	// CostEstimate is the estimated work of evaluating one query.
	CostEstimate = cost.Estimate
)

var (
	// NewCatalog derives statistics from a database.
	NewCatalog = cost.NewCatalog
	// NewRowCatalog derives cardinalities only (cheap; no distinct counts).
	NewRowCatalog = cost.NewRowCatalog
	// EstimateQuery costs a conjunctive query.
	EstimateQuery = cost.EstimateQuery
	// EstimateQueryWith costs a conjunctive query with the named variables
	// treated as pre-bound parameters.
	EstimateQueryWith = cost.EstimateQueryWith
	// EstimateUnion costs a union of conjunctive queries.
	EstimateUnion = cost.EstimateUnion
	// ChoosePlan returns the cheapest candidate under the catalog.
	ChoosePlan = cost.Choose
	// ChoosePlanWith is ChoosePlan with pre-bound parameter variables —
	// the decision procedure for parameterized plan candidates.
	ChoosePlanWith = cost.ChooseWith
)

// Network serving (see internal/server and cmd/aqvd): the HTTP/JSON
// front-end over Engine — prepare/exec/query/batch endpoints, prepared-
// handle session tables, a shared-nothing namespace registry, and the
// typed-error-to-HTTP mapping (429+Retry-After, 408, 422, 500).
type (
	// Server serves a namespace registry over HTTP (Server.Handler).
	Server = server.Server
	// ServerRegistry holds the boot-time namespace set.
	ServerRegistry = server.Registry
	// ServerNamespace is one shared-nothing tenant: engine + sessions.
	ServerNamespace = server.Namespace
	// ServerConfig is the per-namespace config (strategy, budgets,
	// admission, session TTL/LRU), JSON-decodable from config.json.
	ServerConfig = server.Config
	// ServerErrorEnvelope is the machine-readable body of every non-2xx
	// response, under the "error" key.
	ServerErrorEnvelope = server.ErrorEnvelope
	// WireRow / WireRows round-trip tuples through JSON (base64-wrapping
	// columns that are not valid UTF-8).
	WireRow  = server.Row
	WireRows = server.Rows
)

var (
	// NewServer wraps a registry in the HTTP front-end.
	NewServer = server.New
	// NewServerRegistry returns an empty namespace registry.
	NewServerRegistry = server.NewRegistry
	// NewServerNamespace builds one namespace from base data + views.
	NewServerNamespace = server.NewNamespace
	// LoadServerDir boots a registry from a config directory (one
	// subdirectory per namespace: views.dl, base.dl, config.json).
	LoadServerDir = server.LoadDir
)

// DefaultServerNamespace is the namespace requests address when they
// name none.
const DefaultServerNamespace = server.DefaultNamespace
