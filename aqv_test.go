package aqv

import (
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as README documents
// it: parse, rewrite, materialise, evaluate, compare.
func TestFacadeEndToEnd(t *testing.T) {
	q := MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	view := MustParseQuery("v(A,B) :- r(A,C), s(C,B)")
	vs := MustNewViewSet(view)

	rw := NewRewriter(vs).RewriteOne(q)
	if rw == nil {
		t.Fatal("no rewriting")
	}
	if rw.Query.String() != "q(X,Y) :- v(X,Y)." {
		t.Fatalf("rewriting = %v", rw.Query)
	}
	if !Equivalent(rw.Expansion, q) {
		t.Fatal("expansion not equivalent")
	}
	ok, err := VerifyRewriting(q, rw.Query, vs)
	if err != nil || !ok {
		t.Fatalf("VerifyRewriting = %v, %v", ok, err)
	}

	base := NewDatabase()
	prog, err := ParseProgram("r(a,m). s(m,x).")
	if err != nil {
		t.Fatal(err)
	}
	if err := base.LoadFacts(prog.Facts); err != nil {
		t.Fatal(err)
	}
	viewDB, err := MaterializeViews(base, []*Query{view})
	if err != nil {
		t.Fatal(err)
	}
	direct := EvalQuery(base, q)
	viaView := EvalQuery(viewDB, rw.Query)
	if !TuplesEqual(direct, viaView) {
		t.Fatalf("direct %v != viaView %v", direct, viaView)
	}
}

func TestFacadeMaximallyContained(t *testing.T) {
	q := MustParseQuery("q(X) :- r(X,Z), s(Z)")
	views := []*Query{
		MustParseQuery("v1(A,B) :- r(A,B)"),
		MustParseQuery("v2(A) :- s(A)"),
	}
	vs := MustNewViewSet(views...)

	bu, _, err := BucketRewrite(q, vs, BucketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mu, _, err := MiniConRewrite(q, vs, MiniConOptions{VerifyCandidates: true})
	if err != nil {
		t.Fatal(err)
	}
	if bu.Len() == 0 || mu.Len() == 0 {
		t.Fatalf("empty rewritings: bucket=%v minicon=%v", bu, mu)
	}
	be, _ := Expand(bu.Queries[0], vs)
	if !Contained(be, q) {
		t.Fatal("bucket member unsound")
	}
	if !ContainedInUnion(q, mustExpandUnion(t, mu, vs)) {
		t.Fatal("minicon union not equivalent on covering views")
	}
}

func mustExpandUnion(t *testing.T, u *Union, vs *ViewSet) *Union {
	t.Helper()
	out := &Union{}
	for _, m := range u.Queries {
		e, err := Expand(m, vs)
		if err != nil {
			t.Fatal(err)
		}
		out.Add(e)
	}
	return out
}

func TestFacadeCertain(t *testing.T) {
	base := NewDatabase()
	prog, _ := ParseProgram("r(a,m). s(m,x).")
	if err := base.LoadFacts(prog.Facts); err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	views := []*Query{MustParseQuery("v(A,B) :- r(A,C), s(C,B)")}
	rep, err := CertainCompare(q, views, base)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MethodsAgree || !rep.SoundMC || !rep.ExactRecovery {
		t.Fatalf("report = %+v", rep)
	}
}

func TestFacadeContainmentHelpers(t *testing.T) {
	a := MustParseQuery("q(X) :- r(X,Y), r(X,Z)")
	b := MustParseQuery("q(X) :- r(X,Y)")
	if !Equivalent(a, b) || !Contained(a, b) || !Contained(b, a) {
		t.Fatal("containment helpers broken")
	}
	if m := Minimize(a); len(m.Body) != 1 {
		t.Fatalf("Minimize = %v", m)
	}
	if !ContainedSound(MustParseQuery("q(X) :- r(X), X > 5"), MustParseQuery("q(X) :- r(X), X > 3")) {
		t.Fatal("sound comparison containment broken")
	}
	u := NewUnion(b)
	if !UnionContained(u, b) || !ContainedInUnion(b, u) {
		t.Fatal("union helpers broken")
	}
	if MinimizeUnion(NewUnion(a, b)).Len() != 1 {
		t.Fatal("MinimizeUnion broken")
	}
}

func TestFacadeInverseRules(t *testing.T) {
	q := MustParseQuery("q(X) :- r(X,Y)")
	views := []*Query{MustParseQuery("v(A,B) :- r(A,B)")}
	prog, err := InverseRulesProgram(q, views)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("program = %v", prog)
	}
	viewDB := NewDatabase()
	viewDB.Insert("v", Tuple{"a", "b"})
	ans, err := InverseRulesAnswer(q, views, viewDB)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0][0] != "a" {
		t.Fatalf("answers = %v", ans)
	}
}

func TestFacadeUsable(t *testing.T) {
	q := MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	if !Usable(MustParseQuery("v(A,C) :- r(A,C)"), q) {
		t.Fatal("usable view rejected")
	}
	if Usable(MustParseQuery("v(A) :- r(A,C)"), q) {
		t.Fatal("unusable view accepted")
	}
}

// TestFacadeEngine exercises the serving layer exactly as README documents
// it: build an engine from base data, answer a query, answer an α-variant
// (cache hit), and read the stats.
func TestFacadeEngine(t *testing.T) {
	base := NewDatabase()
	prog, _ := ParseProgram("r(a,m). s(m,x).")
	if err := base.LoadFacts(prog.Facts); err != nil {
		t.Fatal(err)
	}
	views := []*Query{MustParseQuery("v(A,B) :- r(A,C), s(C,B)")}
	eng, err := NewEngineFromBase(base, views, EngineOptions{Strategy: StrategyEquivalentFirst})
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	ans, err := eng.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if !TuplesEqual(ans, EvalQuery(base, q)) {
		t.Fatalf("engine answers %v disagree with direct evaluation", ans)
	}
	variant := MustParseQuery("q(A,B) :- s(C,B), r(A,C)")
	if Fingerprint(q) != Fingerprint(variant) {
		t.Fatal("facade Fingerprint not α-invariant")
	}
	if _, err := eng.Answer(variant); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	batch, err := eng.AnswerBatch([]*Query{q, variant})
	if err != nil {
		t.Fatal(err)
	}
	if !TuplesEqual(batch[0], batch[1]) {
		t.Fatal("batch answers disagree")
	}
}

func TestFacadeTermConstructors(t *testing.T) {
	a := NewAtom("r", Var("X"), Const("c"))
	q := NewQuery(NewAtom("q", Var("X")), a)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.String() != "q(X) :- r(X,c)." {
		t.Fatalf("q = %v", q)
	}
}
