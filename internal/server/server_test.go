package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/engine"
	"repro/internal/storage"
)

const testViews = `
	v(A,B)  :- r(A,C), s(C,B).
	vr(A,B) :- r(A,B).
	vs(A,B) :- s(A,B).
`

// serveBase builds the r/s point-lookup workload: n r-tuples fanning into 40
// s-tuples, so v has n rows.
func serveBase(n int) *storage.Database {
	db := storage.NewDatabase()
	for i := 0; i < n; i++ {
		db.Insert("r", storage.Tuple{fmt.Sprintf("k%d", i), fmt.Sprintf("m%d", i%40)})
	}
	for j := 0; j < 40; j++ {
		db.Insert("s", storage.Tuple{fmt.Sprintf("m%d", j), fmt.Sprintf("x%d", j%7)})
	}
	return db
}

func testNamespace(t testing.TB, name string, n int, cfg Config) *Namespace {
	t.Helper()
	views, err := cq.ParseViews(testViews)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := NewNamespace(name, serveBase(n), views, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

// testServer stands up an httptest server over the given namespaces.
func testServer(t testing.TB, nss ...*Namespace) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	for _, ns := range nss {
		if err := reg.Add(ns); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t testing.TB, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t testing.TB, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func decodeInto(t testing.TB, resp *http.Response, into any) {
	t.Helper()
	data := readBody(t, resp)
	if err := json.Unmarshal(data, into); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
}

// wantError asserts status + envelope code and returns the envelope.
func wantError(t testing.TB, resp *http.Response, status int, code string) ErrorEnvelope {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status = %d (%s), want %d", resp.StatusCode, readBody(t, resp), status)
	}
	var body errorBody
	decodeInto(t, resp, &body)
	if body.Error.Code != code {
		t.Fatalf("error code = %q (%+v), want %q", body.Error.Code, body.Error, code)
	}
	return body.Error
}

// answerKeys reduces an answer set to sorted tuple keys for comparison.
func answerKeys(rows []storage.Tuple) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = r.Key()
	}
	sort.Strings(keys)
	return keys
}

func sameAnswers(a, b []storage.Tuple) bool {
	ka, kb := answerKeys(a), answerKeys(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, testNamespace(t, DefaultNamespace, 10, Config{}))
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h healthResponse
	decodeInto(t, resp, &h)
	if h.Status != "ok" || len(h.Namespaces) != 1 || h.Namespaces[0] != DefaultNamespace {
		t.Fatalf("health = %+v", h)
	}
}

// TestQueryMatchesInProcess: a one-shot HTTP query returns exactly what the
// in-process engine returns.
func TestQueryMatchesInProcess(t *testing.T) {
	ns := testNamespace(t, DefaultNamespace, 30, Config{})
	_, ts := testServer(t, ns)
	const qsrc = "q(X,Y) :- r(X,Z), s(Z,Y)."
	want, err := ns.Engine.Answer(cq.MustParseQuery(qsrc))
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: qsrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var ans answersResponse
	decodeInto(t, resp, &ans)
	if ans.Count != len(want) || !sameAnswers(ans.Answers, want) {
		t.Fatalf("HTTP answers != in-process: %d vs %d rows", ans.Count, len(want))
	}
}

// TestPrepareExecFlow: prepare returns a handle keyed by the template
// fingerprint; exec with fresh args runs the compiled plan; re-prepare of the
// same shape reports reuse.
func TestPrepareExecFlow(t *testing.T) {
	ns := testNamespace(t, DefaultNamespace, 30, Config{})
	_, ts := testServer(t, ns)

	resp := postJSON(t, ts.URL+"/v1/prepare", prepareRequest{Query: "q(Y) :- r(k3,Z), s(Z,Y)."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare status = %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var prep prepareResponse
	decodeInto(t, resp, &prep)
	if prep.Handle == "" || prep.Handle != prep.Fingerprint {
		t.Fatalf("prepare = %+v", prep)
	}
	if prep.NumParams != 1 || len(prep.Args) != 1 || prep.Args[0] != "k3" || prep.Reused {
		t.Fatalf("prepare = %+v", prep)
	}

	// Exec under a different binding matches the one-shot answer.
	for _, k := range []string{"k3", "k7", "k12", "nope"} {
		want, err := ns.Engine.Answer(cq.MustParseQuery(fmt.Sprintf("q(Y) :- r(%s,Z), s(Z,Y).", k)))
		if err != nil {
			t.Fatal(err)
		}
		resp := postJSON(t, ts.URL+"/v1/exec", execRequest{Handle: prep.Handle, Args: Row{k}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exec %s status = %d: %s", k, resp.StatusCode, readBody(t, resp))
		}
		var ans answersResponse
		decodeInto(t, resp, &ans)
		if !sameAnswers(ans.Answers, want) {
			t.Fatalf("exec %s: HTTP %v != in-process %v", k, ans.Answers, want)
		}
	}

	// A second prepare of the same template shape shares the handle.
	resp = postJSON(t, ts.URL+"/v1/prepare", prepareRequest{Query: "q(Y) :- r(k9,Z), s(Z,Y)."})
	var prep2 prepareResponse
	decodeInto(t, resp, &prep2)
	if prep2.Handle != prep.Handle || !prep2.Reused {
		t.Fatalf("re-prepare = %+v, want reused handle %s", prep2, prep.Handle)
	}

	// Wrong arg count is an arity_mismatch, not a 500.
	resp = postJSON(t, ts.URL+"/v1/exec", execRequest{Handle: prep.Handle, Args: Row{"a", "b"}})
	wantError(t, resp, http.StatusBadRequest, engine.CodeArityMismatch)

	// An unknown handle tells the client to re-prepare.
	resp = postJSON(t, ts.URL+"/v1/exec", execRequest{Handle: "deadbeef", Args: Row{"k3"}})
	wantError(t, resp, http.StatusNotFound, CodeUnknownHandle)
}

func TestNamespaceRouting(t *testing.T) {
	nsA := testNamespace(t, DefaultNamespace, 10, Config{})
	nsB := testNamespace(t, "tenant-b", 25, Config{})
	_, ts := testServer(t, nsA, nsB)

	const qsrc = "q(X,Y) :- r(X,Y)."
	countOf := func(url string, body any) int {
		resp := postJSON(t, url, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, readBody(t, resp))
		}
		var ans answersResponse
		decodeInto(t, resp, &ans)
		return ans.Count
	}
	// Path routing, body routing and the default all hit the right engine.
	if n := countOf(ts.URL+"/v1/ns/tenant-b/query", queryRequest{Query: qsrc}); n != 25 {
		t.Fatalf("tenant-b rows = %d, want 25", n)
	}
	if n := countOf(ts.URL+"/v1/query", queryRequest{Namespace: "tenant-b", Query: qsrc}); n != 25 {
		t.Fatalf("body-routed tenant-b rows = %d, want 25", n)
	}
	if n := countOf(ts.URL+"/v1/query", queryRequest{Query: qsrc}); n != 10 {
		t.Fatalf("default rows = %d, want 10", n)
	}
	// Unknown namespaces 404 on both routes.
	resp := postJSON(t, ts.URL+"/v1/ns/nope/query", queryRequest{Query: qsrc})
	wantError(t, resp, http.StatusNotFound, CodeUnknownNamespace)
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Namespace: "nope", Query: qsrc})
	wantError(t, resp, http.StatusNotFound, CodeUnknownNamespace)

	// A handle prepared in one namespace is not visible in another.
	resp = postJSON(t, ts.URL+"/v1/ns/tenant-b/prepare", prepareRequest{Query: "q(X) :- r(k1,X)."})
	var prep prepareResponse
	decodeInto(t, resp, &prep)
	resp = postJSON(t, ts.URL+"/v1/exec", execRequest{Handle: prep.Handle, Args: Row{"k1"}})
	wantError(t, resp, http.StatusNotFound, CodeUnknownHandle)
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, testNamespace(t, DefaultNamespace, 10, Config{}))

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, resp, http.StatusBadRequest, CodeBadRequest)

	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: "q(X :- broken"})
	wantError(t, resp, http.StatusBadRequest, CodeInvalidQuery)

	resp = postJSON(t, ts.URL+"/v1/batch", batchRequest{})
	wantError(t, resp, http.StatusBadRequest, CodeBadRequest)
}

// TestBatchLiveAndFrozen: /v1/batch feeds the IVM path on a live namespace
// and is a 409 not_live on a frozen one.
func TestBatchLiveAndFrozen(t *testing.T) {
	live := testNamespace(t, DefaultNamespace, 10, Config{LiveUpdates: true})
	frozen := testNamespace(t, "frozen", 10, Config{})
	_, ts := testServer(t, live, frozen)

	batch := batchRequest{Updates: map[string]Rows{
		"r": {{"k100", "m1"}, {"k101", "m2"}},
	}}
	resp := postJSON(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var br batchResponse
	decodeInto(t, resp, &br)
	if !br.Applied || br.Predicates != 1 || br.Tuples != 2 {
		t.Fatalf("batch = %+v", br)
	}
	// The inserts are visible through the maintained views.
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: "q(X) :- r(k100,X)."})
	var ans answersResponse
	decodeInto(t, resp, &ans)
	if ans.Count != 1 || ans.Answers[0][0] != "m1" {
		t.Fatalf("post-batch answers = %+v", ans)
	}

	resp = postJSON(t, ts.URL+"/v1/ns/frozen/batch", batch)
	wantError(t, resp, http.StatusConflict, engine.CodeNotLive)
}

// TestBudgetTrip422 asserts the budget_exceeded envelope, including partial
// fixpoint stats when the inverse-rules fixpoint trips mid-run.
func TestBudgetTrip422(t *testing.T) {
	plain := testNamespace(t, DefaultNamespace, 30, Config{})
	inv := testNamespace(t, "inv", 50, Config{Strategy: "inverse-rules"})
	_, ts := testServer(t, plain, inv)

	// Row cap.
	resp := postJSON(t, ts.URL+"/v1/query", queryRequest{
		Query:  "q(X,Y) :- r(X,Z), s(Z,Y).",
		Budget: &budgetSpec{MaxResultRows: 1},
	})
	wantError(t, resp, http.StatusUnprocessableEntity, engine.CodeBudgetExceeded)

	// Fixpoint round cap: the envelope carries the partial progress.
	resp = postJSON(t, ts.URL+"/v1/ns/inv/query", queryRequest{
		Query:  "q(X,Y) :- r(X,Z), s(Z,Y).",
		Budget: &budgetSpec{MaxFixpointRounds: 1},
	})
	env := wantError(t, resp, http.StatusUnprocessableEntity, engine.CodeBudgetExceeded)
	if env.PartialStats == nil || env.PartialStats.Iterations != 1 {
		t.Fatalf("partial stats = %+v, want iterations = 1", env.PartialStats)
	}
}

// TestDeadline408: an exhausted per-request deadline is a 408 with code
// "canceled".
func TestDeadline408(t *testing.T) {
	_, ts := testServer(t, testNamespace(t, DefaultNamespace, 1500, Config{}))
	resp := postJSON(t, ts.URL+"/v1/query", queryRequest{
		Query:  "q(A,B,C,D) :- r(A,M), s(M,B), r(C,N), s(N,D).", // ~2.25M-row cross product
		Budget: &budgetSpec{DeadlineMS: 1},
	})
	wantError(t, resp, http.StatusRequestTimeout, engine.CodeCanceled)
}

// TestOverload429RetryAfter: with one execution slot and no queue, a request
// arriving while the slot is held is shed as 429, and the response carries
// Retry-After >= 1 both as a header and in the envelope. This is the
// regression test for the truncated-retry-hint bug: the engine's hint is in
// the tens of microseconds when it is cold, which int seconds used to
// truncate to the nonsensical "Retry-After: 0".
func TestOverload429RetryAfter(t *testing.T) {
	ns := testNamespace(t, DefaultNamespace, 1500, Config{MaxConcurrent: 1, MaxQueue: -1})
	_, ts := testServer(t, ns)

	// Occupy the only slot with a heavy cross product (bounded by a deadline
	// so the test always terminates).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postJSON(t, ts.URL+"/v1/query", queryRequest{
			Query:  "q(A,B,C,D) :- r(A,M), s(M,B), r(C,N), s(N,D).",
			Budget: &budgetSpec{DeadlineMS: 1500},
		})
		resp.Body.Close()
	}()
	defer wg.Wait()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		resp := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: "q(X) :- r(k1,X)."})
		if resp.StatusCode != http.StatusTooManyRequests {
			readBody(t, resp) // probe won the slot; retry until shed
			time.Sleep(time.Millisecond)
			continue
		}
		header := resp.Header.Get("Retry-After")
		env := wantError(t, resp, http.StatusTooManyRequests, engine.CodeOverloaded)
		secs, err := strconv.Atoi(header)
		if err != nil || secs < 1 {
			t.Fatalf("Retry-After header = %q, want integer >= 1", header)
		}
		if env.RetryAfterS < 1 || env.RetryAfterS != secs {
			t.Fatalf("envelope retry_after_s = %d, header = %d", env.RetryAfterS, secs)
		}
		return
	}
	t.Fatal("no 429 observed while the only slot was held")
}

// TestInternal500Envelope: a panic surfaces as 500/"internal" with the panic
// value in the message and the stack withheld.
func TestInternal500Envelope(t *testing.T) {
	err := &engine.InternalError{Value: "boom", Stack: []byte("goroutine 1 [running] secret frames")}
	rec := httptest.NewRecorder()
	writeEngineError(rec, err, http.StatusInternalServerError, engine.CodeInternal)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	var body errorBody
	if jsonErr := json.Unmarshal(rec.Body.Bytes(), &body); jsonErr != nil {
		t.Fatal(jsonErr)
	}
	if body.Error.Code != engine.CodeInternal {
		t.Fatalf("code = %q", body.Error.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("boom")) {
		t.Fatalf("panic value missing from envelope: %s", rec.Body.Bytes())
	}
	if bytes.Contains(rec.Body.Bytes(), []byte("secret frames")) {
		t.Fatalf("stack leaked onto the wire: %s", rec.Body.Bytes())
	}
}

// TestRetryAfterSecondsRounding pins the header arithmetic: round up, floor
// at one second.
func TestRetryAfterSecondsRounding(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Microsecond, 1},
		{50 * time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{2500 * time.Millisecond, 3},
		{10 * time.Second, 10},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	ns := testNamespace(t, DefaultNamespace, 10, Config{})
	_, ts := testServer(t, ns)

	// Warm the session table: one prepare, two execs.
	resp := postJSON(t, ts.URL+"/v1/prepare", prepareRequest{Query: "q(X) :- r(k1,X)."})
	var prep prepareResponse
	decodeInto(t, resp, &prep)
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/exec", execRequest{Handle: prep.Handle, Args: Row{"k1"}})
		readBody(t, resp)
	}

	resp, err := http.Get(ts.URL + "/v1/ns/default/stats")
	if err != nil {
		t.Fatal(err)
	}
	var one namespaceStats
	decodeInto(t, resp, &one)
	if one.Namespace != DefaultNamespace {
		t.Fatalf("stats namespace = %q", one.Namespace)
	}
	if one.Sessions.Prepared != 1 || one.Sessions.Hits != 2 || one.Sessions.Live != 1 {
		t.Fatalf("session stats = %+v", one.Sessions)
	}
	if one.Engine.ExecCount < 2 {
		t.Fatalf("engine ExecCount = %d, want >= 2", one.Engine.ExecCount)
	}

	// The bare route returns every namespace.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var all map[string]namespaceStats
	decodeInto(t, resp, &all)
	if len(all) != 1 || all[DefaultNamespace].Namespace != DefaultNamespace {
		t.Fatalf("all stats = %+v", all)
	}

	resp, err = http.Get(ts.URL + "/v1/ns/nope/stats")
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, resp, http.StatusNotFound, CodeUnknownNamespace)
}

// TestDrainRefusesNewRequests: after Drain every request — health checks
// included — is 503/shutting_down.
func TestDrainRefusesNewRequests(t *testing.T) {
	srv, ts := testServer(t, testNamespace(t, DefaultNamespace, 10, Config{}))
	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, resp, http.StatusServiceUnavailable, CodeShuttingDown)
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: "q(X,Y) :- r(X,Z), s(Z,Y)."})
	wantError(t, resp, http.StatusServiceUnavailable, CodeShuttingDown)
}
