package server

import (
	"net/http"
	"testing"

	"repro/internal/storage"
)

// TestBatchDeletes: /v1/batch accepts deletions over the wire — alone and
// mixed with inserts — and the namespace serves the maintained state.
func TestBatchDeletes(t *testing.T) {
	ns := testNamespace(t, DefaultNamespace, 10, Config{LiveUpdates: true})
	_, ts := testServer(t, ns)
	query := func() []storage.Tuple {
		resp := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: "q(X,Y) :- r(X,Z), s(Z,Y)"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status = %d (%s)", resp.StatusCode, readBody(t, resp))
		}
		var ar answersResponse
		decodeInto(t, resp, &ar)
		return ar.Answers
	}
	before := query()
	if len(before) != 10 {
		t.Fatalf("initial answers = %d, want 10", len(before))
	}

	// Delete-only batch: r(k0,m0) starves one v row.
	resp := postJSON(t, ts.URL+"/v1/batch", batchRequest{
		Deletes: map[string]Rows{"r": {{"k0", "m0"}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete batch status = %d (%s)", resp.StatusCode, readBody(t, resp))
	}
	var br batchResponse
	decodeInto(t, resp, &br)
	if !br.Applied || br.Deleted != 1 || br.Tuples != 0 {
		t.Fatalf("delete batch response = %+v", br)
	}
	if got := query(); len(got) != 9 {
		t.Fatalf("post-delete answers = %d, want 9", len(got))
	}

	// Mixed batch: re-insert r(k0,m0), delete r(k1,m1) — still 9 answers,
	// but a different set.
	resp = postJSON(t, ts.URL+"/v1/batch", batchRequest{
		Updates: map[string]Rows{"r": {{"k0", "m0"}}},
		Deletes: map[string]Rows{"r": {{"k1", "m1"}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch status = %d (%s)", resp.StatusCode, readBody(t, resp))
	}
	decodeInto(t, resp, &br)
	if !br.Applied || br.Deleted != 1 || br.Tuples != 1 || br.Predicates != 1 {
		t.Fatalf("mixed batch response = %+v", br)
	}
	after := query()
	if len(after) != 9 {
		t.Fatalf("post-mixed answers = %d, want 9", len(after))
	}
	found := false
	for _, a := range after {
		if a[0] == "k1" {
			t.Fatalf("deleted k1 still answered: %v", a)
		}
		if a[0] == "k0" {
			found = true
		}
	}
	if !found {
		t.Fatal("re-inserted k0 not answered")
	}

	// Deleting from a view extent maps to the engine's typed error.
	resp = postJSON(t, ts.URL+"/v1/batch", batchRequest{
		Deletes: map[string]Rows{"v": {{"k2", "x2"}}},
	})
	wantError(t, resp, http.StatusBadRequest, CodeBadRequest)
}

// TestUnknownFieldRejected: every POST endpoint refuses bodies carrying
// fields this server does not understand — a client speaking a newer
// protocol revision must get a typed error, not a silently degraded answer
// — while syntactically broken JSON keeps the bad_request code.
func TestUnknownFieldRejected(t *testing.T) {
	ns := testNamespace(t, DefaultNamespace, 5, Config{LiveUpdates: true})
	_, ts := testServer(t, ns)
	endpoints := []struct {
		path string
		body map[string]any
	}{
		{"/v1/prepare", map[string]any{"query": "q(X) :- r(X,Y)", "qery": "typo"}},
		{"/v1/exec", map[string]any{"handle": "h", "argz": []string{"k0"}}},
		{"/v1/query", map[string]any{"query": "q(X) :- r(X,Y)", "dedupe": true}},
		{"/v1/batch", map[string]any{"upserts": map[string]any{"r": [][]string{{"a", "b"}}}}},
	}
	for _, ep := range endpoints {
		resp := postJSON(t, ts.URL+ep.path, ep.body)
		env := wantError(t, resp, http.StatusBadRequest, CodeInvalidQuery)
		if env.Message == "" {
			t.Fatalf("%s: empty error message", ep.path)
		}
	}
	// Nothing was applied along the way.
	resp := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: "q(X,Y) :- r(X,Y)"})
	var ar answersResponse
	decodeInto(t, resp, &ar)
	if ar.Count != 5 {
		t.Fatalf("base mutated by rejected requests: %d rows", ar.Count)
	}
	// Malformed JSON is still a plain bad_request.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, resp, http.StatusBadRequest, CodeBadRequest)
}
