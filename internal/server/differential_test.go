package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/engine"
	"repro/internal/storage"
)

// postRaw is the goroutine-safe POST helper (t.Fatal is only legal on the
// test goroutine).
func postRaw(url string, body any) (int, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

// randomQuery draws from a small grammar of queries the r/s workload can
// answer: full scans, point lookups and joins, with randomized constants.
func randomQuery(rng *rand.Rand, n int) string {
	k := fmt.Sprintf("k%d", rng.Intn(n+3)) // occasionally misses
	m := fmt.Sprintf("m%d", rng.Intn(44))
	switch rng.Intn(6) {
	case 0:
		return "q(X,Y) :- r(X,Z), s(Z,Y)."
	case 1:
		return fmt.Sprintf("q(Y) :- r(%s,Z), s(Z,Y).", k)
	case 2:
		return fmt.Sprintf("q(X) :- r(X,%s).", m)
	case 3:
		return "q(X,Y) :- r(X,Y)."
	case 4:
		return fmt.Sprintf("q(Y) :- s(%s,Y).", m)
	default:
		return fmt.Sprintf("q(X,Z) :- r(X,%s), s(%s,Z).", m, m)
	}
}

func httpAnswers(t testing.TB, url string, body any) ([]storage.Tuple, int) {
	t.Helper()
	resp := postJSON(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var ans answersResponse
	decodeInto(t, resp, &ans)
	return ans.Answers, ans.Count
}

// TestHTTPDifferentialQuiescent: on a quiescent namespace, HTTP answers equal
// in-process answers exactly — for every planning strategy, over randomized
// queries, through both the one-shot and the prepare/exec path.
func TestHTTPDifferentialQuiescent(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 6
	}
	const n = 40
	for _, strat := range engine.Strategies() {
		t.Run(string(strat), func(t *testing.T) {
			ns := testNamespace(t, DefaultNamespace, n, Config{Strategy: string(strat)})
			_, ts := testServer(t, ns)
			rng := rand.New(rand.NewSource(int64(len(strat)) * 7919))
			for i := 0; i < trials; i++ {
				qsrc := randomQuery(rng, n)
				want, err := ns.Engine.Answer(cq.MustParseQuery(qsrc))
				if err != nil {
					t.Fatalf("in-process %s: %v", qsrc, err)
				}
				got, count := httpAnswers(t, ts.URL+"/v1/query", queryRequest{Query: qsrc})
				if count != len(want) || !sameAnswers(got, want) {
					t.Fatalf("%s: HTTP %d rows != in-process %d rows", qsrc, count, len(want))
				}

				// The prepared path agrees with the one-shot path.
				resp := postJSON(t, ts.URL+"/v1/prepare", prepareRequest{Query: qsrc})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("prepare %s: %s", qsrc, readBody(t, resp))
				}
				var prep prepareResponse
				decodeInto(t, resp, &prep)
				execGot, execCount := httpAnswers(t, ts.URL+"/v1/exec",
					execRequest{Handle: prep.Handle, Args: prep.Args})
				if execCount != len(want) || !sameAnswers(execGot, want) {
					t.Fatalf("%s: exec %d rows != in-process %d rows", qsrc, execCount, len(want))
				}
			}
		})
	}
}

// TestHTTPDifferentialConcurrentBatch: while /v1/batch traffic inserts base
// facts, concurrent HTTP reads observe a monotone sandwich — every answer set
// contains the pre-batch answers and is contained in the post-batch answers
// (CQ answers are monotone under inserts). Once quiescent, HTTP equals
// in-process exactly.
func TestHTTPDifferentialConcurrentBatch(t *testing.T) {
	const n = 30
	ns := testNamespace(t, DefaultNamespace, n, Config{LiveUpdates: true})
	_, ts := testServer(t, ns)
	const qsrc = "q(X,Y) :- r(X,Z), s(Z,Y)."
	q := cq.MustParseQuery(qsrc)

	pre, err := ns.Engine.Answer(q)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/prepare", prepareRequest{Query: "q(Y) :- r(k3,Z), s(Z,Y)."})
	var prep prepareResponse
	decodeInto(t, resp, &prep)

	const (
		batches  = 12
		perBatch = 5
		readers  = 4
		reads    = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	wg.Add(1)
	go func() { // writer: all-new r keys joining existing s tuples
		defer wg.Done()
		next := 1000
		for b := 0; b < batches; b++ {
			rows := make(Rows, perBatch)
			for i := range rows {
				rows[i] = storage.Tuple{fmt.Sprintf("k%d", next), fmt.Sprintf("m%d", next%40)}
				next++
			}
			status, raw, err := postRaw(ts.URL+"/v1/batch", batchRequest{Updates: map[string]Rows{"r": rows}})
			if err != nil {
				errs <- err
				return
			}
			if status != http.StatusOK {
				errs <- fmt.Errorf("batch status %d: %s", status, raw)
				return
			}
		}
	}()

	var mu sync.Mutex
	var observed [][]storage.Tuple
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				url, body := ts.URL+"/v1/query", any(queryRequest{Query: qsrc})
				fullJoin := (w+i)%2 == 0
				if !fullJoin { // alternate with the prepared point query
					url, body = ts.URL+"/v1/exec", any(execRequest{Handle: prep.Handle, Args: prep.Args})
				}
				status, raw, err := postRaw(url, body)
				if err != nil {
					errs <- err
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("read status %d: %s", status, raw)
					return
				}
				var ans answersResponse
				if err := json.Unmarshal(raw, &ans); err != nil {
					errs <- err
					return
				}
				if fullJoin { // the sandwich below is for the full join
					mu.Lock()
					observed = append(observed, []storage.Tuple(ans.Answers))
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	post, err := ns.Engine.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	preSet := make(map[string]bool, len(pre))
	for _, r := range pre {
		preSet[r.Key()] = true
	}
	postSet := make(map[string]bool, len(post))
	for _, r := range post {
		postSet[r.Key()] = true
	}
	if len(postSet) <= len(preSet) {
		t.Fatalf("batches did not grow the view: pre %d, post %d", len(preSet), len(postSet))
	}
	for i, rows := range observed {
		seen := make(map[string]bool, len(rows))
		for _, r := range rows {
			key := r.Key()
			seen[key] = true
			if !postSet[key] {
				t.Fatalf("read %d: answer %q not in post-batch set (non-monotone)", i, r)
			}
		}
		for key := range preSet {
			if !seen[key] {
				t.Fatalf("read %d: pre-batch answer %q missing (non-monotone)", i, key)
			}
		}
	}

	// Quiescent again: HTTP equals in-process exactly.
	got, count := httpAnswers(t, ts.URL+"/v1/query", queryRequest{Query: qsrc})
	if count != len(post) || !sameAnswers(got, post) {
		t.Fatalf("quiescent HTTP %d rows != in-process %d rows", count, len(post))
	}
}

// TestBatchRoundTripNastyValues: raw byte values — control characters,
// invalid UTF-8, Skolem-style brackets — survive the full HTTP round trip:
// uploaded through /v1/batch, stored, answered back out through /v1/query
// identical to the in-process answer.
func TestBatchRoundTripNastyValues(t *testing.T) {
	ns := testNamespace(t, DefaultNamespace, 5, Config{LiveUpdates: true})
	_, ts := testServer(t, ns)

	nasty := Rows{
		{"", "empty-left"},
		{"\x00null\x07bell", "ctrl"},
		{string([]byte{0xff, 0xfe}), "not-utf8"},
		{string([]byte{0xc3, 0x28}), "truncated"},
		{"⟨v_f0:a·b⟩", "skolemish"},
		{`"quoted"`, `back\slash`},
	}
	resp := postJSON(t, ts.URL+"/v1/batch", batchRequest{Updates: map[string]Rows{"r": nasty}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)

	const qsrc = "q(X,Y) :- r(X,Y)."
	want, err := ns.Engine.Answer(cq.MustParseQuery(qsrc))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := httpAnswers(t, ts.URL+"/v1/query", queryRequest{Query: qsrc})
	if !sameAnswers(got, want) {
		t.Fatalf("nasty values corrupted in flight:\nHTTP  %q\nlocal %q", got, want)
	}
	// And the nasty tuples are actually in there, byte-identical.
	gotSet := make(map[string]bool, len(got))
	for _, r := range got {
		gotSet[r.Key()] = true
	}
	for _, r := range nasty {
		if !gotSet[storage.Tuple(r).Key()] {
			t.Fatalf("tuple %q missing from HTTP answers", r)
		}
	}
}
