package server

// Per-namespace session table. A prepared handle is the template
// fingerprint of the prepared query, so every client preparing the same
// query shape shares one entry — the HTTP analogue of the engine's
// template-keyed plan LRU, and the reason a prepare/exec stream over the
// wire pays the rewriting search once. Entries hold their PreparedQuery
// alive (a handle survives engine-LRU eviction) and are bounded by a TTL
// plus an LRU cap, so an abandoned session cannot pin plans forever.

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/engine"
)

// SessionStats counts session-table outcomes, surfaced under /v1/stats.
type SessionStats struct {
	// Prepared counts prepare calls that built a new session entry.
	Prepared uint64 `json:"prepared"`
	// Reused counts prepare calls answered by an existing entry.
	Reused uint64 `json:"reused"`
	// Hits counts exec calls that found their handle.
	Hits uint64 `json:"hits"`
	// Misses counts exec calls whose handle was unknown or expired.
	Misses uint64 `json:"misses"`
	// EvictedLRU and EvictedTTL count entries dropped by the cap and the
	// TTL respectively.
	EvictedLRU uint64 `json:"evicted_lru"`
	EvictedTTL uint64 `json:"evicted_ttl"`
	// Live is the current number of entries.
	Live int `json:"live"`
}

// session is one prepared handle.
type session struct {
	handle   string
	pq       *engine.PreparedQuery
	lastUsed time.Time
	elem     *list.Element // position in the LRU list (front = most recent)
}

// sessionTable maps handles to prepared queries with TTL + LRU eviction.
// Safe for concurrent use.
type sessionTable struct {
	max int
	ttl time.Duration
	now func() time.Time // test hook

	mu    sync.Mutex
	m     map[string]*session
	lru   *list.List // of *session
	stats SessionStats
}

// newSessionTable builds a table; max <= 0 means 1024 entries, ttl <= 0
// means 15 minutes.
func newSessionTable(max int, ttl time.Duration) *sessionTable {
	if max <= 0 {
		max = 1024
	}
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	return &sessionTable{
		max: max,
		ttl: ttl,
		now: time.Now,
		m:   make(map[string]*session),
		lru: list.New(),
	}
}

// put stores (or refreshes) the session for a handle, evicting expired
// entries and then the least-recently-used past the cap. It reports whether
// the handle was newly created.
func (t *sessionTable) put(handle string, pq *engine.PreparedQuery) bool {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(now)
	if s, ok := t.m[handle]; ok {
		s.lastUsed = now
		t.lru.MoveToFront(s.elem)
		t.stats.Reused++
		return false
	}
	s := &session{handle: handle, pq: pq, lastUsed: now}
	s.elem = t.lru.PushFront(s)
	t.m[handle] = s
	t.stats.Prepared++
	for len(t.m) > t.max {
		oldest := t.lru.Back()
		t.dropLocked(oldest.Value.(*session))
		t.stats.EvictedLRU++
	}
	return true
}

// get returns the prepared query for a handle, refreshing its recency; ok
// is false when the handle is unknown or its entry expired.
func (t *sessionTable) get(handle string) (*engine.PreparedQuery, bool) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[handle]
	if ok && now.Sub(s.lastUsed) > t.ttl {
		t.dropLocked(s)
		t.stats.EvictedTTL++
		ok = false
	}
	if !ok {
		t.stats.Misses++
		return nil, false
	}
	s.lastUsed = now
	t.lru.MoveToFront(s.elem)
	t.stats.Hits++
	return s.pq, true
}

// expireLocked drops every entry idle past the TTL. Callers hold t.mu.
func (t *sessionTable) expireLocked(now time.Time) {
	for {
		oldest := t.lru.Back()
		if oldest == nil {
			break
		}
		s := oldest.Value.(*session)
		if now.Sub(s.lastUsed) <= t.ttl {
			break
		}
		t.dropLocked(s)
		t.stats.EvictedTTL++
	}
}

// dropLocked removes one session. Callers hold t.mu.
func (t *sessionTable) dropLocked(s *session) {
	delete(t.m, s.handle)
	t.lru.Remove(s.elem)
}

// snapshot copies the counters.
func (t *sessionTable) snapshot() SessionStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats
	st.Live = len(t.m)
	return st
}
