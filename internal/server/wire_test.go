package server

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/storage"
)

// TestRowRoundTripCases pins the wire behaviour on the values the engine
// actually produces: Skolem values (unicode brackets + \x1f separators),
// empty strings, control characters, the tuple-key separator, and raw
// non-UTF-8 bytes.
func TestRowRoundTripCases(t *testing.T) {
	cases := []storage.Tuple{
		{},
		{""},
		{"plain", "values"},
		{"⟨v_f0:a\x1fb⟩", "x"},                  // Skolem value
		{"\x00", "\x1f", "\x7f", "\r\n\t"},      // control characters
		{"a\x1fb"},                              // the Tuple.Key separator
		{string([]byte{0xff, 0xfe, 0x01}), "k"}, // not valid UTF-8
		{string([]byte{0xc3, 0x28})},            // truncated UTF-8 sequence
		{"mixed\xffmiddle"},
		{`quotes " and \ backslashes`},
		{"unicode ünïcødé 日本語"},
	}
	for _, tup := range cases {
		data, err := json.Marshal(Row(tup))
		if err != nil {
			t.Fatalf("%q: marshal: %v", tup, err)
		}
		var got Row
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%q: unmarshal: %v", tup, err)
		}
		if len(got) != len(tup) {
			t.Fatalf("%q: round-trip length %d", tup, len(got))
		}
		for i := range tup {
			if got[i] != tup[i] {
				t.Fatalf("column %d: %q -> %q", i, tup[i], got[i])
			}
		}
	}
}

// TestRowRoundTripProperty is the randomized property: any byte-string
// tuple round-trips the wire encoding unchanged.
func TestRowRoundTripProperty(t *testing.T) {
	trials := 2000
	if testing.Short() {
		trials = 300
	}
	rng := rand.New(rand.NewSource(0xA17E))
	randValue := func() string {
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			switch rng.Intn(4) {
			case 0: // printable ASCII
				b[i] = byte(' ' + rng.Intn(95))
			case 1: // control characters
				b[i] = byte(rng.Intn(32))
			case 2: // high bytes — frequently invalid UTF-8
				b[i] = byte(128 + rng.Intn(128))
			default: // anything
				b[i] = byte(rng.Intn(256))
			}
		}
		if rng.Intn(8) == 0 { // Skolem-shaped
			return "⟨v_f" + string(b) + ":" + string(b) + "\x1f" + string(b) + "⟩"
		}
		return string(b)
	}
	for trial := 0; trial < trials; trial++ {
		rows := make(Rows, rng.Intn(5))
		for i := range rows {
			tup := make(storage.Tuple, 1+rng.Intn(4))
			for j := range tup {
				tup[j] = randValue()
			}
			rows[i] = tup
		}
		data, err := json.Marshal(rows)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var got Rows
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		if len(got) != len(rows) {
			t.Fatalf("trial %d: %d rows -> %d", trial, len(rows), len(got))
		}
		for i := range rows {
			if storage.Tuple(got[i]).Key() != rows[i].Key() {
				t.Fatalf("trial %d row %d: %q -> %q", trial, i, rows[i], got[i])
			}
		}
	}
}

// TestRowsMarshalEmptyAsArray: a nil answer set must encode as [], not
// null, so clients can iterate unconditionally.
func TestRowsMarshalEmptyAsArray(t *testing.T) {
	data, err := json.Marshal(answersResponse{Answers: nil})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"answers":[]`) {
		t.Fatalf("nil answers encoded as %s, want []", data)
	}
}

// TestRowUnmarshalRejectsGarbage: malformed columns are typed errors, not
// silent corruption.
func TestRowUnmarshalRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`[42]`,               // number column
		`[true]`,             // bool column
		`[{"b64":"@@@@"}]`,   // invalid base64
		`[[1,2]]`,            // nested array column
		`{"not":"an array"}`, // row must be an array
		`[{"b64": 5}]`,       // wrong b64 type
	} {
		var r Row
		if err := json.Unmarshal([]byte(bad), &r); err == nil {
			t.Errorf("%s: accepted", bad)
		}
	}
}

// TestStdlibJSONCorruptsRawStrings documents why the b64 escape exists: Go's
// encoding/json replaces invalid UTF-8 with U+FFFD, so a plain []string
// wire format would not round-trip raw bytes.
func TestStdlibJSONCorruptsRawStrings(t *testing.T) {
	raw := string([]byte{0xff})
	data, err := json.Marshal([]string{raw})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got[0] == raw {
		t.Skip("stdlib started round-tripping invalid UTF-8; the b64 escape is belt-and-braces now")
	}
	// The corruption is real — confirm our codec fixes it.
	wire, err := json.Marshal(Row{raw})
	if err != nil {
		t.Fatal(err)
	}
	var fixed Row
	if err := json.Unmarshal(wire, &fixed); err != nil {
		t.Fatal(err)
	}
	if fixed[0] != raw {
		t.Fatalf("wire codec also corrupts: %q -> %q", raw, fixed[0])
	}
}
