package server

// Wire encoding of tuples. Tuple values are arbitrary byte strings: Skolem
// values embed \x1f separators and angle brackets, user data can carry
// empty strings, control characters, or bytes that are not valid UTF-8 at
// all. encoding/json silently replaces invalid UTF-8 with U+FFFD when
// marshalling a Go string, which would corrupt such values in flight, so
// the wire format encodes each column as either
//
//   - a plain JSON string, when the value is valid UTF-8 (JSON string
//     escaping already round-trips control characters exactly), or
//   - {"b64": "<base64>"}, when it is not.
//
// A column is therefore a JSON string or a JSON object — never ambiguous —
// and every byte string round-trips unchanged. Rows are arrays of columns,
// answer sets arrays of rows.

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"unicode/utf8"

	"repro/internal/storage"
)

// b64Column is the escape form of a column whose value is not valid UTF-8.
type b64Column struct {
	B64 string `json:"b64"`
}

// Row is one tuple on the wire.
type Row storage.Tuple

// MarshalJSON encodes the row as an array of columns.
func (r Row) MarshalJSON() ([]byte, error) {
	cols := make([]any, len(r))
	for i, v := range r {
		if utf8.ValidString(v) {
			cols[i] = v
		} else {
			cols[i] = b64Column{B64: base64.StdEncoding.EncodeToString([]byte(v))}
		}
	}
	return json.Marshal(cols)
}

// UnmarshalJSON decodes an array of columns.
func (r *Row) UnmarshalJSON(data []byte) error {
	var cols []json.RawMessage
	if err := json.Unmarshal(data, &cols); err != nil {
		return err
	}
	out := make(Row, len(cols))
	for i, c := range cols {
		if len(c) == 0 {
			return fmt.Errorf("server: empty column %d", i)
		}
		switch c[0] {
		case '"':
			var s string
			if err := json.Unmarshal(c, &s); err != nil {
				return err
			}
			out[i] = s
		case '{':
			var b b64Column
			if err := json.Unmarshal(c, &b); err != nil {
				return err
			}
			raw, err := base64.StdEncoding.DecodeString(b.B64)
			if err != nil {
				return fmt.Errorf("server: column %d: bad base64: %w", i, err)
			}
			out[i] = string(raw)
		default:
			return fmt.Errorf("server: column %d is neither a string nor a b64 object", i)
		}
	}
	*r = out
	return nil
}

// Rows is an answer set (or insert batch) on the wire.
type Rows []storage.Tuple

// MarshalJSON encodes every tuple as a Row. A nil answer set encodes as
// [], not null — clients iterate it either way.
func (rs Rows) MarshalJSON() ([]byte, error) {
	rows := make([]Row, len(rs))
	for i, t := range rs {
		rows[i] = Row(t)
	}
	return json.Marshal(rows)
}

// UnmarshalJSON decodes an array of Rows.
func (rs *Rows) UnmarshalJSON(data []byte) error {
	var rows []Row
	if err := json.Unmarshal(data, &rows); err != nil {
		return err
	}
	out := make(Rows, len(rows))
	for i, r := range rows {
		out[i] = storage.Tuple(r)
	}
	*rs = out
	return nil
}
