package server

import (
	"testing"
	"time"
)

// fakeClock drives the session table's time hook.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newClockedTable(max int, ttl time.Duration) (*sessionTable, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	tbl := newSessionTable(max, ttl)
	tbl.now = clk.now
	return tbl, clk
}

func TestSessionTableLRUEviction(t *testing.T) {
	tbl, _ := newClockedTable(2, time.Hour)
	if !tbl.put("a", nil) || !tbl.put("b", nil) {
		t.Fatal("fresh puts should be new")
	}
	if _, ok := tbl.get("a"); !ok { // refresh a; b is now the LRU victim
		t.Fatal("a missing")
	}
	if !tbl.put("c", nil) {
		t.Fatal("c should be new")
	}
	if _, ok := tbl.get("b"); ok {
		t.Fatal("b should have been LRU-evicted")
	}
	if _, ok := tbl.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	st := tbl.snapshot()
	if st.EvictedLRU != 1 || st.Live != 2 || st.Prepared != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSessionTableTTLExpiry(t *testing.T) {
	tbl, clk := newClockedTable(8, time.Minute)
	tbl.put("a", nil)
	clk.advance(30 * time.Second)
	if _, ok := tbl.get("a"); !ok {
		t.Fatal("a expired early")
	}
	// The get refreshed the entry; another 61s pushes it past the TTL.
	clk.advance(61 * time.Second)
	if _, ok := tbl.get("a"); ok {
		t.Fatal("a should have TTL-expired")
	}
	st := tbl.snapshot()
	if st.EvictedTTL != 1 || st.Live != 0 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// put also sweeps expired entries.
	tbl.put("b", nil)
	clk.advance(2 * time.Minute)
	tbl.put("c", nil)
	if st := tbl.snapshot(); st.Live != 1 || st.EvictedTTL != 2 {
		t.Fatalf("post-sweep stats = %+v", st)
	}
}

func TestSessionTableReuse(t *testing.T) {
	tbl, _ := newClockedTable(8, time.Minute)
	if !tbl.put("h", nil) {
		t.Fatal("first put should be new")
	}
	if tbl.put("h", nil) {
		t.Fatal("second put should reuse")
	}
	st := tbl.snapshot()
	if st.Prepared != 1 || st.Reused != 1 || st.Live != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
