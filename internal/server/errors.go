package server

// The error surface of the wire protocol. Every non-2xx response carries a
// machine-readable envelope:
//
//	{"error": {"code": "...", "message": "...",
//	           "retry_after_s": N, "partial_stats": {...}}}
//
// Codes for engine-typed errors come from engine.ErrorCode and are stable
// wire contract; the server adds its own codes for boundary conditions the
// engine never sees (unknown namespace, bad JSON, draining). The HTTP
// status mapping is:
//
//	overloaded        429  (Retry-After header, integer seconds, >= 1)
//	canceled          408  (deadline expired or client went away)
//	budget_exceeded   422  (partial fixpoint stats in the envelope)
//	internal          500  (panic value only — never the stack)
//	arity_mismatch    400
//	not_live          409
//	invalid_query     400
//	unknown_namespace 404
//	unknown_handle    404
//	bad_request       400
//	shutting_down     503

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
)

// Server-side error codes (engine codes live in internal/engine).
const (
	// CodeInvalidQuery: the query text failed to parse or validate, or the
	// rewriting search rejected it.
	CodeInvalidQuery = "invalid_query"
	// CodeUnknownNamespace: the request addressed a namespace the registry
	// does not hold.
	CodeUnknownNamespace = "unknown_namespace"
	// CodeUnknownHandle: the prepared-query handle is not (or no longer) in
	// the namespace's session table; the client should re-prepare.
	CodeUnknownHandle = "unknown_handle"
	// CodeBadRequest: malformed JSON or a missing required field.
	CodeBadRequest = "bad_request"
	// CodeShuttingDown: the server is draining and refuses new requests.
	CodeShuttingDown = "shutting_down"
)

// ErrorEnvelope is the body of every error response.
type ErrorEnvelope struct {
	// Code is the stable machine-readable error code.
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// RetryAfterS mirrors the Retry-After header on 429 responses, integer
	// seconds, always >= 1.
	RetryAfterS int `json:"retry_after_s,omitempty"`
	// PartialStats carries the fixpoint progress at the moment a budget or
	// deadline tripped, when the engine recorded any.
	PartialStats *PartialStats `json:"partial_stats,omitempty"`
}

// PartialStats is the wire form of datalog.FixpointStats.
type PartialStats struct {
	Iterations int `json:"iterations"`
	Derived    int `json:"derived"`
}

// errorBody wraps the envelope under the "error" key.
type errorBody struct {
	Error ErrorEnvelope `json:"error"`
}

// retryAfterSeconds converts a retry hint to HTTP integer seconds, rounding
// up and flooring at 1 — Retry-After: 0 tells every shed client to retry
// immediately, which is exactly the storm shedding exists to prevent.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeErrorCode writes an envelope for a server-side condition.
func writeErrorCode(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorBody{Error: ErrorEnvelope{Code: code, Message: message}})
}

// writeEngineError maps a typed engine error onto its status, envelope and
// headers. Errors without an engine code fall back to the given code and
// status (the caller knows whether it was parsing a query or executing one).
func writeEngineError(w http.ResponseWriter, err error, fallbackStatus int, fallbackCode string) {
	env := ErrorEnvelope{Code: engine.ErrorCode(err), Message: err.Error()}
	var qe *engine.QueryError
	if errors.As(err, &qe) && (qe.Stats.Iterations > 0 || qe.Stats.Derived > 0) {
		env.PartialStats = &PartialStats{Iterations: qe.Stats.Iterations, Derived: qe.Stats.Derived}
	}
	var status int
	switch env.Code {
	case engine.CodeOverloaded:
		status = http.StatusTooManyRequests
		retry := engine.MinRetryAfter
		var oe *engine.OverloadedError
		if errors.As(err, &oe) && oe.RetryAfter > retry {
			retry = oe.RetryAfter
		}
		env.RetryAfterS = retryAfterSeconds(retry)
		w.Header().Set("Retry-After", strconv.Itoa(env.RetryAfterS))
	case engine.CodeCanceled:
		status = http.StatusRequestTimeout
	case engine.CodeBudgetExceeded:
		status = http.StatusUnprocessableEntity
	case engine.CodeInternal:
		// The envelope message is InternalError.Error() — the panic value,
		// never the stack (that stays in the server log).
		status = http.StatusInternalServerError
	case engine.CodeArityMismatch:
		status = http.StatusBadRequest
	case engine.CodeNotLive:
		status = http.StatusConflict
	default:
		status = fallbackStatus
		env.Code = fallbackCode
	}
	writeJSON(w, status, errorBody{Error: env})
}
