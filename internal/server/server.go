// Package server is the network serving layer: an HTTP/JSON front-end
// wrapping engine.Engine, turning the in-process serving stack — prepared
// template plans, incremental view maintenance, budgets and admission
// control — into a daemon (cmd/aqvd).
//
// Endpoints (all request/response bodies JSON):
//
//	POST /v1/prepare   query text -> prepared handle (template fingerprint),
//	                   cached in a per-namespace session table (TTL + LRU)
//	POST /v1/exec      handle + args -> answers (the warm path: no parsing,
//	                   no planning, one compiled-plan execution)
//	POST /v1/query     one-shot query text -> answers
//	POST /v1/batch     mixed insert/delete batches through the IVM path
//	                   (live namespaces); deletions apply before insertions,
//	                   the whole batch atomically
//	GET  /v1/stats     engine + session counters, one or all namespaces
//	GET  /healthz      liveness (503 while draining)
//
// Every endpoint is also addressable per namespace as /v1/ns/{ns}/...; the
// bare forms take the namespace from the request body ("namespace" field,
// default "default").
//
// The governance layer maps onto HTTP faithfully: load-shed requests return
// 429 with a Retry-After of at least one second, deadline and cancellation
// trips 408, budget trips 422 with partial fixpoint stats in the error
// envelope, and panics 500 with the panic value but never the stack. The
// request context propagates into evaluation, so a dropped connection
// cancels the fixpoint it was paying for.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cq"
	"repro/internal/engine"
	"repro/internal/storage"
)

// maxBodyBytes bounds request bodies (batches included).
const maxBodyBytes = 64 << 20

// Server routes requests to namespaces. Build with New, serve the value
// returned by Handler, and call Drain before shutting the listener down.
type Server struct {
	reg      *Registry
	mux      *http.ServeMux
	draining atomic.Bool
	started  time.Time
}

// New builds a server over a namespace registry.
func New(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/ns/{ns}/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/prepare", s.handlePrepare)
	s.mux.HandleFunc("POST /v1/ns/{ns}/prepare", s.handlePrepare)
	s.mux.HandleFunc("POST /v1/exec", s.handleExec)
	s.mux.HandleFunc("POST /v1/ns/{ns}/exec", s.handleExec)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/ns/{ns}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/ns/{ns}/batch", s.handleBatch)
	return s
}

// Registry returns the server's namespace registry.
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the root handler: the route mux behind the drain gate.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeErrorCode(w, http.StatusServiceUnavailable, CodeShuttingDown,
				"server is draining; retry against another instance")
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Drain flips the server into shutdown mode: every new request — health
// checks included, so load balancers stop routing here — is refused with
// 503/shutting_down, while requests already executing run to completion
// (http.Server.Shutdown waits for them).
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// budgetSpec is the per-request budget override: every set field replaces
// the namespace default, unset fields inherit it.
type budgetSpec struct {
	DeadlineMS        int `json:"deadline_ms,omitempty"`
	MaxResultRows     int `json:"max_result_rows,omitempty"`
	MaxDerivedTuples  int `json:"max_derived_tuples,omitempty"`
	MaxFixpointRounds int `json:"max_fixpoint_rounds,omitempty"`
}

// merge overlays the spec on the namespace default.
func (b *budgetSpec) merge(def engine.Budget) engine.Budget {
	out := def
	if b == nil {
		return out
	}
	if b.DeadlineMS > 0 {
		out.Deadline = time.Duration(b.DeadlineMS) * time.Millisecond
	}
	if b.MaxResultRows > 0 {
		out.MaxResultRows = b.MaxResultRows
	}
	if b.MaxDerivedTuples > 0 {
		out.MaxDerivedTuples = b.MaxDerivedTuples
	}
	if b.MaxFixpointRounds > 0 {
		out.MaxFixpointRounds = b.MaxFixpointRounds
	}
	return out
}

// decode reads a JSON request body. Unknown fields are rejected rather
// than silently dropped: a client sending a field this server does not
// understand — "deletes" to a build that predates mixed batches, say —
// must get an error, not a quietly wrong answer. Those requests are
// well-formed JSON expressing an operation this server cannot honor, so
// they map to the invalid_query envelope; syntactically broken bodies stay
// bad_request.
func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		if strings.Contains(err.Error(), "unknown field") {
			writeErrorCode(w, http.StatusBadRequest, CodeInvalidQuery, fmt.Sprintf("unsupported request field: %v", err))
			return false
		}
		writeErrorCode(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// resolve picks the request's namespace: the {ns} path segment when the
// route has one, else the body field, else the default.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request, bodyNS string) (*Namespace, bool) {
	name := r.PathValue("ns")
	if name == "" {
		name = bodyNS
	}
	ns, ok := s.reg.Get(name)
	if !ok {
		writeErrorCode(w, http.StatusNotFound, CodeUnknownNamespace, fmt.Sprintf("unknown namespace %q", name))
		return nil, false
	}
	return ns, true
}

// ---- /healthz ----

type healthResponse struct {
	Status     string   `json:"status"`
	Namespaces []string `json:"namespaces"`
	UptimeS    float64  `json:"uptime_s"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		Namespaces: s.reg.Names(),
		UptimeS:    time.Since(s.started).Seconds(),
	})
}

// ---- /v1/prepare ----

type prepareRequest struct {
	Namespace string `json:"namespace,omitempty"`
	Query     string `json:"query"`
}

// prepareResponse returns the session handle plus the plan's identity. Args
// is the binding extracted from the submitted query's own constants — the
// arguments under which exec reproduces the one-shot answer.
type prepareResponse struct {
	Handle      string `json:"handle"`
	NumParams   int    `json:"num_params"`
	Args        Row    `json:"args"`
	Fingerprint string `json:"fingerprint"`
	Strategy    string `json:"strategy"`
	Chosen      string `json:"chosen"`
	Arity       int    `json:"arity"`
	// Reused reports whether the handle already existed in the session
	// table (another client, or an earlier request, prepared the template).
	Reused bool `json:"reused"`
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req prepareRequest
	if !decode(w, r, &req) {
		return
	}
	ns, ok := s.resolve(w, r, req.Namespace)
	if !ok {
		return
	}
	q, err := cq.ParseQuery(req.Query)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, CodeInvalidQuery, err.Error())
		return
	}
	pq, err := ns.Engine.Prepare(q)
	if err != nil {
		writeEngineError(w, err, http.StatusBadRequest, CodeInvalidQuery)
		return
	}
	plan := pq.Plan()
	isNew := ns.sessions.put(plan.Fingerprint, pq)
	writeJSON(w, http.StatusOK, prepareResponse{
		Handle:      plan.Fingerprint,
		NumParams:   pq.NumParams(),
		Args:        Row(pq.Args()),
		Fingerprint: plan.Fingerprint,
		Strategy:    string(plan.Strategy),
		Chosen:      string(plan.Chosen),
		Arity:       plan.Arity,
		Reused:      !isNew,
	})
}

// ---- /v1/exec ----

type execRequest struct {
	Namespace string      `json:"namespace,omitempty"`
	Handle    string      `json:"handle"`
	Args      Row         `json:"args"`
	Budget    *budgetSpec `json:"budget,omitempty"`
}

// answersResponse is the result of exec and query.
type answersResponse struct {
	Answers Rows `json:"answers"`
	Count   int  `json:"count"`
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req execRequest
	if !decode(w, r, &req) {
		return
	}
	ns, ok := s.resolve(w, r, req.Namespace)
	if !ok {
		return
	}
	pq, ok := ns.sessions.get(req.Handle)
	if !ok {
		writeErrorCode(w, http.StatusNotFound, CodeUnknownHandle,
			fmt.Sprintf("unknown or expired handle %q; re-prepare", req.Handle))
		return
	}
	answers, err := pq.ExecBudget(r.Context(), req.Budget.merge(ns.Budget), req.Args...)
	if err != nil {
		writeEngineError(w, err, http.StatusInternalServerError, engine.CodeInternal)
		return
	}
	writeJSON(w, http.StatusOK, answersResponse{Answers: answers, Count: len(answers)})
}

// ---- /v1/query ----

type queryRequest struct {
	Namespace string      `json:"namespace,omitempty"`
	Query     string      `json:"query"`
	Budget    *budgetSpec `json:"budget,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	ns, ok := s.resolve(w, r, req.Namespace)
	if !ok {
		return
	}
	q, err := cq.ParseQuery(req.Query)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, CodeInvalidQuery, err.Error())
		return
	}
	answers, err := ns.Engine.AnswerBudget(r.Context(), q, req.Budget.merge(ns.Budget))
	if err != nil {
		writeEngineError(w, err, http.StatusBadRequest, CodeInvalidQuery)
		return
	}
	writeJSON(w, http.StatusOK, answersResponse{Answers: answers, Count: len(answers)})
}

// ---- /v1/batch ----

// batchRequest is one mutation batch: inserts under "updates", deletions
// under "deletes", either or both. The engine applies them as a single
// atomic unit — deletions first, then insertions.
type batchRequest struct {
	Namespace string          `json:"namespace,omitempty"`
	Updates   map[string]Rows `json:"updates"`
	Deletes   map[string]Rows `json:"deletes,omitempty"`
	Budget    *budgetSpec     `json:"budget,omitempty"`
}

type batchResponse struct {
	Applied    bool `json:"applied"`
	Predicates int  `json:"predicates"`
	Tuples     int  `json:"tuples"`
	// Deleted counts the retraction tuples the batch submitted (absent
	// tuples are no-ops on the engine side, so this is the request count,
	// not the count of tuples actually removed).
	Deleted int `json:"deleted,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	ns, ok := s.resolve(w, r, req.Namespace)
	if !ok {
		return
	}
	if len(req.Updates) == 0 && len(req.Deletes) == 0 {
		writeErrorCode(w, http.StatusBadRequest, CodeBadRequest, "batch has no updates or deletes")
		return
	}
	preds := make(map[string]bool)
	updates := make(map[string][]storage.Tuple, len(req.Updates))
	tuples := 0
	for pred, rows := range req.Updates {
		updates[pred] = rows
		tuples += len(rows)
		preds[pred] = true
	}
	deletes := make(map[string][]storage.Tuple, len(req.Deletes))
	deleted := 0
	for pred, rows := range req.Deletes {
		deletes[pred] = rows
		deleted += len(rows)
		preds[pred] = true
	}
	if err := ns.Engine.ApplyUpdateBudget(r.Context(), updates, deletes, req.Budget.merge(ns.Budget)); err != nil {
		writeEngineError(w, err, http.StatusBadRequest, CodeBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Applied: true, Predicates: len(preds), Tuples: tuples, Deleted: deleted})
}

// ---- /v1/stats ----

// namespaceStats is one namespace's counters on the wire.
type namespaceStats struct {
	Namespace string       `json:"namespace"`
	Live      bool         `json:"live"`
	Engine    engine.Stats `json:"engine"`
	Sessions  SessionStats `json:"sessions"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("ns")
	if name == "" {
		name = r.URL.Query().Get("ns")
	}
	if name != "" {
		ns, ok := s.reg.Get(name)
		if !ok {
			writeErrorCode(w, http.StatusNotFound, CodeUnknownNamespace, fmt.Sprintf("unknown namespace %q", name))
			return
		}
		writeJSON(w, http.StatusOK, statsOf(ns))
		return
	}
	all := make(map[string]namespaceStats)
	for _, n := range s.reg.Names() {
		ns, _ := s.reg.Get(n)
		all[n] = statsOf(ns)
	}
	writeJSON(w, http.StatusOK, all)
}

func statsOf(ns *Namespace) namespaceStats {
	return namespaceStats{
		Namespace: ns.Name,
		Live:      ns.Live,
		Engine:    ns.Engine.Stats(),
		Sessions:  ns.sessions.snapshot(),
	}
}
