package server

// Multi-tenant namespaces: one engine per view-set namespace, shared
// nothing. A namespace is loaded from a config directory at startup —
// one subdirectory per namespace holding its view definitions, base facts
// and engine options — and addressed by path (/v1/ns/{name}/...) or by the
// "namespace" request field. Engines never share storage, catalogs, plan
// caches or admission queues, so one tenant's overload or poisoned plan
// cannot touch another's.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/cq"
	"repro/internal/engine"
	"repro/internal/storage"
)

// DefaultNamespace is the namespace requests address when they name none.
const DefaultNamespace = "default"

// Config configures one namespace's engine and session table. The zero
// value serves: equivalent-first strategy, no sharding, frozen base, no
// admission control, unlimited budget.
type Config struct {
	// Strategy is the engine planning strategy ("equivalent-first",
	// "bucket", "minicon", "inverse-rules", "auto"; CLI aliases accepted).
	Strategy string `json:"strategy,omitempty"`
	// MaxResults bounds the equivalent rewritings enumerated per plan.
	MaxResults int `json:"max_results,omitempty"`
	// CacheSize bounds the engine plan LRU.
	CacheSize int `json:"cache_size,omitempty"`
	// EvalWorkers fans a single evaluation across goroutines.
	EvalWorkers int `json:"eval_workers,omitempty"`
	// Shards hash-partitions the serving snapshots.
	Shards int `json:"shards,omitempty"`
	// LiveUpdates enables /v1/batch (insert batches with incremental view
	// maintenance).
	LiveUpdates bool `json:"live_updates,omitempty"`
	// MaxConcurrent, MaxQueue and QueueTimeoutMS configure admission
	// control (see engine.Options).
	MaxConcurrent  int `json:"max_concurrent,omitempty"`
	MaxQueue       int `json:"max_queue,omitempty"`
	QueueTimeoutMS int `json:"queue_timeout_ms,omitempty"`
	// DeadlineMS, MaxResultRows, MaxDerivedTuples and MaxFixpointRounds are
	// the default per-request budget; request budgets override per field.
	DeadlineMS        int `json:"deadline_ms,omitempty"`
	MaxResultRows     int `json:"max_result_rows,omitempty"`
	MaxDerivedTuples  int `json:"max_derived_tuples,omitempty"`
	MaxFixpointRounds int `json:"max_fixpoint_rounds,omitempty"`
	// MaxSessions caps the prepared-handle session table (default 1024);
	// SessionTTLMS expires idle handles (default 15 minutes).
	MaxSessions  int `json:"max_sessions,omitempty"`
	SessionTTLMS int `json:"session_ttl_ms,omitempty"`
	// DataDir enables durable storage (snapshot + WAL) rooted at the given
	// directory; the engine recovers from it at startup and checkpoints on
	// Close. Relative paths resolve against the daemon's working directory.
	DataDir string `json:"data_dir,omitempty"`
	// SnapshotWALBytes is the WAL size that triggers a background
	// checkpoint (0 = 64 MiB default, negative = never).
	SnapshotWALBytes int64 `json:"snapshot_wal_bytes,omitempty"`
	// WALNoSync skips the per-batch fsync, trading crash durability of the
	// latest batches for update throughput.
	WALNoSync bool `json:"wal_no_sync,omitempty"`
	// Logf receives engine warnings (stale snapshots, failed background
	// checkpoints). Not settable from config.json; the daemon injects it.
	Logf func(format string, args ...any) `json:"-"`
}

// budget assembles the namespace's default per-request budget.
func (c Config) budget() engine.Budget {
	return engine.Budget{
		Deadline:          time.Duration(c.DeadlineMS) * time.Millisecond,
		MaxResultRows:     c.MaxResultRows,
		MaxDerivedTuples:  c.MaxDerivedTuples,
		MaxFixpointRounds: c.MaxFixpointRounds,
	}
}

// options assembles the engine options.
func (c Config) options() (engine.Options, error) {
	opt := engine.Options{
		MaxResults:    c.MaxResults,
		CacheSize:     c.CacheSize,
		EvalWorkers:   c.EvalWorkers,
		Shards:        c.Shards,
		LiveUpdates:   c.LiveUpdates,
		Budget:        c.budget(),
		MaxConcurrent: c.MaxConcurrent,
		MaxQueue:      c.MaxQueue,
		QueueTimeout:  time.Duration(c.QueueTimeoutMS) * time.Millisecond,

		DataDir:          c.DataDir,
		SnapshotWALBytes: c.SnapshotWALBytes,
		WALNoSync:        c.WALNoSync,
		Logf:             c.Logf,
	}
	if c.Strategy != "" {
		s, err := engine.ParseStrategy(c.Strategy)
		if err != nil {
			return opt, err
		}
		opt.Strategy = s
	}
	return opt, nil
}

// Namespace is one tenant: an engine, its default budget, and the session
// table of prepared handles.
type Namespace struct {
	// Name is the namespace's registry key and path segment.
	Name string
	// Engine answers this namespace's queries.
	Engine *engine.Engine
	// Budget is the namespace's default per-request budget (request budgets
	// override it field-wise).
	Budget engine.Budget
	// Live reports whether /v1/batch is accepted.
	Live bool

	sessions *sessionTable
}

// NewNamespace materialises the views over base and builds a namespace
// serving them under the given config.
func NewNamespace(name string, base *storage.Database, views []*cq.Query, cfg Config) (*Namespace, error) {
	opt, err := cfg.options()
	if err != nil {
		return nil, fmt.Errorf("namespace %s: %w", name, err)
	}
	eng, err := engine.NewFromBase(base, views, opt)
	if err != nil {
		return nil, fmt.Errorf("namespace %s: %w", name, err)
	}
	return &Namespace{
		Name:     name,
		Engine:   eng,
		Budget:   cfg.budget(),
		Live:     cfg.LiveUpdates,
		sessions: newSessionTable(cfg.MaxSessions, time.Duration(cfg.SessionTTLMS)*time.Millisecond),
	}, nil
}

// Registry holds the namespaces a server routes to. Shared-nothing: every
// namespace owns its engine outright.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Namespace
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*Namespace)}
}

// Add registers a namespace; a duplicate name is an error.
func (r *Registry) Add(ns *Namespace) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[ns.Name]; ok {
		return fmt.Errorf("server: duplicate namespace %q", ns.Name)
	}
	r.m[ns.Name] = ns
	return nil
}

// Get resolves a namespace name ("" means DefaultNamespace).
func (r *Registry) Get(name string) (*Namespace, bool) {
	if name == "" {
		name = DefaultNamespace
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	ns, ok := r.m[name]
	return ns, ok
}

// Close closes every namespace engine: durable ones checkpoint their
// state and release their stores, memory-only ones no-op. Every engine is
// closed even when one fails; the first error wins.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, ns := range r.m {
		if err := ns.Engine.Close(); err != nil && first == nil {
			first = fmt.Errorf("namespace %s: %w", ns.Name, err)
		}
	}
	return first
}

// Names lists the registered namespaces, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Namespace-directory layout: <dir>/<name>/views.dl (required, one view
// definition per rule), <dir>/<name>/base.dl (optional ground facts),
// <dir>/<name>/config.json (optional Config).
const (
	viewsFile  = "views.dl"
	baseFile   = "base.dl"
	configFile = "config.json"
)

// DirOptions customizes LoadDir beyond what per-namespace config files
// express.
type DirOptions struct {
	// DataRoot roots durable storage: a namespace whose config.json does
	// not set data_dir persists under DataRoot/<name>. Empty leaves
	// namespaces memory-only unless their config says otherwise.
	DataRoot string
	// Logf receives engine warnings (stale snapshots, failed background
	// checkpoints) for every loaded namespace.
	Logf func(format string, args ...any)
}

// LoadDir builds a registry from a config directory: every subdirectory
// containing a views.dl becomes a namespace named after it. A directory
// with no loadable namespace is an error — a server with nothing to serve
// is a misconfiguration worth failing loudly on.
func LoadDir(dir string) (*Registry, error) { return LoadDirWith(dir, DirOptions{}) }

// LoadDirWith is LoadDir with daemon-injected options.
func LoadDirWith(dir string, o DirOptions) (*Registry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: config dir: %w", err)
	}
	reg := NewRegistry()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		nsDir := filepath.Join(dir, e.Name())
		if _, err := os.Stat(filepath.Join(nsDir, viewsFile)); errors.Is(err, os.ErrNotExist) {
			continue
		}
		ns, err := loadNamespace(e.Name(), nsDir, o)
		if err != nil {
			return nil, err
		}
		if err := reg.Add(ns); err != nil {
			return nil, err
		}
	}
	if len(reg.Names()) == 0 {
		return nil, fmt.Errorf("server: no namespace under %s (want <name>/%s)", dir, viewsFile)
	}
	return reg, nil
}

// loadNamespace reads one namespace directory.
func loadNamespace(name, dir string, o DirOptions) (*Namespace, error) {
	viewsSrc, err := os.ReadFile(filepath.Join(dir, viewsFile))
	if err != nil {
		return nil, fmt.Errorf("namespace %s: %w", name, err)
	}
	views, err := cq.ParseViews(string(viewsSrc))
	if err != nil {
		return nil, fmt.Errorf("namespace %s: %s: %w", name, viewsFile, err)
	}

	base := storage.NewDatabase()
	if f, err := os.Open(filepath.Join(dir, baseFile)); err == nil {
		base, err = storage.ReadDatabase(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("namespace %s: %s: %w", name, baseFile, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("namespace %s: %w", name, err)
	}

	var cfg Config
	if data, err := os.ReadFile(filepath.Join(dir, configFile)); err == nil {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			return nil, fmt.Errorf("namespace %s: %s: %w", name, configFile, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("namespace %s: %w", name, err)
	}
	if cfg.DataDir == "" && o.DataRoot != "" {
		cfg.DataDir = filepath.Join(o.DataRoot, name)
	}
	if cfg.Logf == nil {
		cfg.Logf = o.Logf
	}
	return NewNamespace(name, base, views, cfg)
}
