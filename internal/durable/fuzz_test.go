package durable

import (
	"encoding/json"
	"testing"
)

// The decoders sit on the recovery path and read bytes that survived a
// crash — or a corruption. The contract under arbitrary input is: return
// an error, never panic, never allocate unboundedly. The seed corpus
// (testdata/fuzz/) holds valid encodings plus truncated and bit-flipped
// variants; go test runs the seeds on every plain test run, and
// `go test -fuzz` explores from them.

func FuzzDecodeRecord(f *testing.F) {
	valid := encodeRecordPayload(7, batch("r", "a,1"), batch("s", "b,2", "c,3"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x80
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeRecordPayload(data)
		if err == nil {
			// The decoder tolerates cosmetic variation the encoder never
			// produces (unsorted predicates, zero-tuple groups), so exact
			// byte idempotence does not hold — but one encode round must
			// reach a fixed point.
			enc := encodeRecordPayload(rec.LSN, rec.Deletes, rec.Inserts)
			rec2, err2 := decodeRecordPayload(enc)
			if err2 != nil {
				t.Fatalf("re-encoded record fails to decode: %v", err2)
			}
			if got := encodeRecordPayload(rec2.LSN, rec2.Deletes, rec2.Inserts); string(got) != string(enc) {
				t.Fatalf("encode not stable after one round:\nfirst  %x\nsecond %x", enc, got)
			}
		}
	})
}

func FuzzDecodeManifest(f *testing.F) {
	man := &Manifest{
		Format:           manifestFormat,
		LSN:              3,
		ViewsFingerprint: "fp",
		Layout:           LayoutFull,
		Relations: []RelationMeta{
			{Name: "r", Arity: 2, Rows: 10, File: "seg-0000.col", Bytes: 100, CRC: 1, Distinct: []float64{3, 4}},
			{Name: "v", Arity: 2, Rows: 5, Extent: true, File: "seg-0001.col", Bytes: 50, CRC: 2},
		},
		Baseline: map[string][]string{"v": {"a\x1fb"}},
	}
	data, err := encodeManifest(man)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format": 1, "layout": "full"}`))
	f.Add([]byte(`{"format": 1, "layout": "full", "relations": [{"name": "r", "arity": -1}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err == nil {
			if _, merr := json.Marshal(m); merr != nil {
				t.Fatalf("accepted manifest cannot re-marshal: %v", merr)
			}
		}
	})
}

func FuzzDecodeSegment(f *testing.F) {
	valid := encodeSegment(tuples("a,1", "b,2", "c,3"), 2)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte("AQVSEG01"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		tuples, arity, err := decodeSegment(data, -1, -1)
		if err == nil {
			if got := encodeSegment(tuples, arity); string(got) != string(data) {
				t.Fatalf("decode/encode not idempotent:\nin  %x\nout %x", data, got)
			}
		}
	})
}
