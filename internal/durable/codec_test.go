package durable

import (
	"hash/crc32"
	"strings"
	"testing"
)

func crc32Of(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

func TestDecodeManifestRejects(t *testing.T) {
	cases := map[string]string{
		"future format":   `{"format": 2, "layout": "full"}`,
		"unknown layout":  `{"format": 1, "layout": "delta"}`,
		"empty name":      `{"format": 1, "layout": "full", "relations": [{"name": "", "arity": 1, "file": "seg-0000.col"}]}`,
		"duplicate name":  `{"format": 1, "layout": "full", "relations": [{"name": "r", "arity": 1, "file": "seg-0000.col"}, {"name": "r", "arity": 1, "file": "seg-0001.col"}]}`,
		"zero arity":      `{"format": 1, "layout": "full", "relations": [{"name": "r", "arity": 0, "file": "seg-0000.col"}]}`,
		"negative rows":   `{"format": 1, "layout": "full", "relations": [{"name": "r", "arity": 1, "rows": -1, "file": "seg-0000.col"}]}`,
		"distinct arity":  `{"format": 1, "layout": "full", "relations": [{"name": "r", "arity": 2, "file": "seg-0000.col", "distinct": [1]}]}`,
		"bad file name":   `{"format": 1, "layout": "full", "relations": [{"name": "r", "arity": 1, "file": "../escape"}]}`,
		"duplicate file":  `{"format": 1, "layout": "full", "relations": [{"name": "r", "arity": 1, "file": "seg-0000.col"}, {"name": "s", "arity": 1, "file": "seg-0000.col"}]}`,
		"negative bytes":  `{"format": 1, "layout": "full", "relations": [{"name": "r", "arity": 1, "file": "seg-0000.col", "bytes": -1}]}`,
		"orphan baseline": `{"format": 1, "layout": "full", "baseline": {"v": ["k"]}}`,
		"empty baseline":  `{"format": 1, "layout": "full", "baseline": {"": ["k"]}}`,
	}
	for name, in := range cases {
		if _, err := decodeManifest([]byte(in)); err == nil {
			t.Errorf("%s: decodeManifest accepted %s", name, in)
		}
	}
}

func TestDecodeSegmentRejects(t *testing.T) {
	valid := encodeSegment(tuples("a,1", "b,2"), 2)
	reCRC := func(body []byte) []byte { // re-checksum a corrupted body so
		// validation reaches the structural checks past the CRC gate
		return appendU32(body, crc32Of(body))
	}
	cases := map[string][]byte{
		"too short":      []byte("AQV"),
		"bad magic":      append([]byte("XXXSEG01"), valid[8:]...),
		"bad crc":        append(append([]byte(nil), valid[:len(valid)-1]...), valid[len(valid)-1]^1),
		"zero arity":     reCRC(append(append([]byte(segMagic), 0, 0, 0, 0), 0, 0, 0, 0)),
		"absurd rows":    reCRC(append(append([]byte(segMagic), 1, 0, 0, 0), 0xff, 0xff, 0xff, 0x7f)),
		"trailing bytes": reCRC(append(append([]byte(nil), valid[:len(valid)-4]...), 0)),
	}
	for name, in := range cases {
		if _, _, err := decodeSegment(in, -1, -1); err == nil {
			t.Errorf("%s: decodeSegment accepted %d bytes", name, len(in))
		}
	}
	// Manifest cross-checks.
	if _, _, err := decodeSegment(valid, 3, 2); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("arity cross-check: got %v", err)
	}
	if _, _, err := decodeSegment(valid, 2, 5); err == nil || !strings.Contains(err.Error(), "rows") {
		t.Errorf("rows cross-check: got %v", err)
	}
}

func TestDecodeRecordRejects(t *testing.T) {
	mk := func(mut func([]byte) []byte) []byte {
		return mut(encodeRecordPayload(1, nil, batch("r", "a,1")))
	}
	cases := map[string][]byte{
		"empty":          {},
		"lsn only":       mk(func(b []byte) []byte { return b[:8] }),
		"trailing bytes": mk(func(b []byte) []byte { return append(b, 0) }),
		"truncated":      mk(func(b []byte) []byte { return b[:len(b)-2] }),
	}
	for name, in := range cases {
		if _, err := decodeRecordPayload(in); err == nil {
			t.Errorf("%s: decodeRecordPayload accepted %d bytes", name, len(in))
		}
	}
}
