// Package atomicfile writes files that are either fully present with
// their final contents or absent — never half-written. WriteFile stages
// the data in a temporary file in the destination directory, fsyncs it,
// renames it over the target (atomic on POSIX filesystems because source
// and destination share a directory), and fsyncs the directory so the
// rename itself survives a crash. It is the single write primitive under
// every durable-storage control file (snapshot manifests, the CURRENT
// pointer) so a crash at any instant leaves either the old file or the
// new one.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temporary file is
// created in path's directory (rename across filesystems is not atomic),
// synced, renamed into place, and the directory entry is synced too. On
// any error the temporary file is removed and the target is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicfile: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a preceding create, rename or remove of an
// entry inside it is durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicfile: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("atomicfile: sync dir: %w", err)
	}
	return nil
}
