package atomicfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "CURRENT")
	if err := WriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("read %q, want %q", got, "two")
	}
	// No temp files may survive a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") || strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want 1", len(entries))
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("WriteFile into a missing directory succeeded")
	}
}

func TestSyncDirMissing(t *testing.T) {
	if err := SyncDir(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("SyncDir on a missing directory succeeded")
	}
}
