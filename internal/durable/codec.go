package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"regexp"
	"sort"

	"repro/internal/storage"
)

// Binary formats. Everything on disk is little-endian, length-prefixed and
// checksummed with CRC32-C (Castagnoli — the polynomial with hardware
// support on amd64/arm64):
//
//	segment file (one relation, columnar):
//	  magic "AQVSEG01" | u32 arity | u32 rows
//	  per column: u64 colBytes | rows × (u32 len | bytes)
//	  u32 CRC32C over everything before it
//
//	WAL file:
//	  magic "AQVWAL01"
//	  per record: u32 payloadLen | u32 CRC32C(payload) | payload
//	  payload: u64 lsn | group(deletes) | group(inserts)
//	  group: u32 nPreds | per pred: str name | u32 arity | u32 nTuples |
//	         nTuples × arity × str   (str = u32 len | bytes)
//
// Decoders are hardened against arbitrary bytes (they feed the fuzz
// targets): every length is bounds-checked against the remaining input
// before any allocation sized from it, so malformed input errors out
// instead of panicking or ballooning memory.

const (
	segMagic = "AQVSEG01"
	walMagic = "AQVWAL01"

	// manifestFormat versions the snapshot layout as a whole; a reader
	// refuses manifests from the future.
	manifestFormat = 1

	// maxRecordBytes bounds a single WAL record frame; a larger length
	// prefix is treated as corruption.
	maxRecordBytes = 1 << 30

	maxArity = 1 << 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one durable update batch — exactly the ApplyUpdate unit, in
// apply order (deletes before inserts).
type Record struct {
	LSN     uint64
	Deletes map[string][]storage.Tuple
	Inserts map[string][]storage.Tuple
}

// buf is a bounds-checked cursor over an input byte slice.
type buf struct {
	data []byte
	off  int
}

func (b *buf) remaining() int { return len(b.data) - b.off }

func (b *buf) u32() (uint32, error) {
	if b.remaining() < 4 {
		return 0, fmt.Errorf("durable: truncated u32 at offset %d", b.off)
	}
	v := binary.LittleEndian.Uint32(b.data[b.off:])
	b.off += 4
	return v, nil
}

func (b *buf) u64() (uint64, error) {
	if b.remaining() < 8 {
		return 0, fmt.Errorf("durable: truncated u64 at offset %d", b.off)
	}
	v := binary.LittleEndian.Uint64(b.data[b.off:])
	b.off += 8
	return v, nil
}

func (b *buf) str() (string, error) {
	n, err := b.u32()
	if err != nil {
		return "", err
	}
	if int64(n) > int64(b.remaining()) {
		return "", fmt.Errorf("durable: string length %d exceeds remaining %d bytes", n, b.remaining())
	}
	s := string(b.data[b.off : b.off+int(n)])
	b.off += int(n)
	return s, nil
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// sortedPreds returns the map's predicates in deterministic order so the
// encoded bytes of a batch are reproducible.
func sortedPreds(m map[string][]storage.Tuple) []string {
	preds := make([]string, 0, len(m))
	for p := range m {
		if len(m[p]) > 0 {
			preds = append(preds, p)
		}
	}
	sort.Strings(preds)
	return preds
}

func appendGroup(dst []byte, m map[string][]storage.Tuple) []byte {
	preds := sortedPreds(m)
	dst = appendU32(dst, uint32(len(preds)))
	for _, p := range preds {
		tuples := m[p]
		arity := len(tuples[0])
		dst = appendStr(dst, p)
		dst = appendU32(dst, uint32(arity))
		dst = appendU32(dst, uint32(len(tuples)))
		for _, t := range tuples {
			for _, v := range t {
				dst = appendStr(dst, v)
			}
		}
	}
	return dst
}

// encodeRecordPayload serializes one update batch (the WAL record body,
// excluding the frame header).
func encodeRecordPayload(lsn uint64, deletes, inserts map[string][]storage.Tuple) []byte {
	dst := appendU64(nil, lsn)
	dst = appendGroup(dst, deletes)
	dst = appendGroup(dst, inserts)
	return dst
}

func decodeGroup(b *buf) (map[string][]storage.Tuple, error) {
	n, err := b.u32()
	if err != nil {
		return nil, err
	}
	// Each predicate entry costs at least 12 bytes (empty name + arity +
	// count), so n is bounded by the input.
	if int64(n)*12 > int64(b.remaining()) {
		return nil, fmt.Errorf("durable: group claims %d predicates in %d bytes", n, b.remaining())
	}
	if n == 0 {
		return nil, nil
	}
	out := make(map[string][]storage.Tuple, n)
	for i := 0; i < int(n); i++ {
		pred, err := b.str()
		if err != nil {
			return nil, err
		}
		if pred == "" {
			return nil, fmt.Errorf("durable: empty predicate name in record")
		}
		arity, err := b.u32()
		if err != nil {
			return nil, err
		}
		if arity == 0 || arity > maxArity {
			return nil, fmt.Errorf("durable: predicate %s: arity %d out of range", pred, arity)
		}
		count, err := b.u32()
		if err != nil {
			return nil, err
		}
		// Every tuple value carries a 4-byte length prefix.
		if int64(count)*int64(arity)*4 > int64(b.remaining()) {
			return nil, fmt.Errorf("durable: predicate %s: %d tuples of arity %d exceed remaining %d bytes", pred, count, arity, b.remaining())
		}
		if _, dup := out[pred]; dup {
			return nil, fmt.Errorf("durable: predicate %s repeated in record group", pred)
		}
		tuples := make([]storage.Tuple, int(count))
		for j := range tuples {
			t := make(storage.Tuple, int(arity))
			for c := range t {
				v, err := b.str()
				if err != nil {
					return nil, err
				}
				t[c] = v
			}
			tuples[j] = t
		}
		out[pred] = tuples
	}
	return out, nil
}

// decodeRecordPayload parses one WAL record body. It never panics:
// malformed input returns an error.
func decodeRecordPayload(payload []byte) (Record, error) {
	b := &buf{data: payload}
	lsn, err := b.u64()
	if err != nil {
		return Record{}, err
	}
	deletes, err := decodeGroup(b)
	if err != nil {
		return Record{}, err
	}
	inserts, err := decodeGroup(b)
	if err != nil {
		return Record{}, err
	}
	if b.remaining() != 0 {
		return Record{}, fmt.Errorf("durable: %d trailing bytes after record", b.remaining())
	}
	return Record{LSN: lsn, Deletes: deletes, Inserts: inserts}, nil
}

// encodeSegment serializes one relation's tuples column by column.
func encodeSegment(tuples []storage.Tuple, arity int) []byte {
	dst := append([]byte(nil), segMagic...)
	dst = appendU32(dst, uint32(arity))
	dst = appendU32(dst, uint32(len(tuples)))
	for c := 0; c < arity; c++ {
		colBytes := 0
		for _, t := range tuples {
			colBytes += 4 + len(t[c])
		}
		dst = appendU64(dst, uint64(colBytes))
		for _, t := range tuples {
			dst = appendStr(dst, t[c])
		}
	}
	return appendU32(dst, crc32.Checksum(dst, castagnoli))
}

// decodeSegment parses and verifies one segment file. wantArity and
// wantRows come from the manifest; -1 skips the cross-check (fuzzing).
func decodeSegment(data []byte, wantArity, wantRows int) ([]storage.Tuple, int, error) {
	if len(data) < len(segMagic)+4+4+4 {
		return nil, 0, fmt.Errorf("durable: segment too short (%d bytes)", len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, 0, fmt.Errorf("durable: bad segment magic %q", data[:len(segMagic)])
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return nil, 0, fmt.Errorf("durable: segment checksum mismatch (got %08x, want %08x)", got, sum)
	}
	b := &buf{data: body, off: len(segMagic)}
	arity32, err := b.u32()
	if err != nil {
		return nil, 0, err
	}
	rows32, err := b.u32()
	if err != nil {
		return nil, 0, err
	}
	arity, rows := int(arity32), int(rows32)
	if arity32 == 0 || arity32 > maxArity {
		return nil, 0, fmt.Errorf("durable: segment arity %d out of range", arity32)
	}
	if wantArity >= 0 && arity != wantArity {
		return nil, 0, fmt.Errorf("durable: segment arity %d, manifest says %d", arity, wantArity)
	}
	if wantRows >= 0 && rows != wantRows {
		return nil, 0, fmt.Errorf("durable: segment holds %d rows, manifest says %d", rows, wantRows)
	}
	// Every value costs at least its 4-byte length prefix; reject row and
	// arity claims the input cannot possibly hold before allocating.
	if int64(rows)*int64(arity)*4 > int64(b.remaining()) {
		return nil, 0, fmt.Errorf("durable: segment claims %d rows of arity %d in %d bytes", rows, arity, b.remaining())
	}
	tuples := make([]storage.Tuple, rows)
	for i := range tuples {
		tuples[i] = make(storage.Tuple, arity)
	}
	for c := 0; c < arity; c++ {
		colBytes, err := b.u64()
		if err != nil {
			return nil, 0, err
		}
		start := b.off
		for i := 0; i < rows; i++ {
			v, err := b.str()
			if err != nil {
				return nil, 0, err
			}
			tuples[i][c] = v
		}
		if int64(b.off-start) != int64(colBytes) {
			return nil, 0, fmt.Errorf("durable: column %d consumed %d bytes, header says %d", c, b.off-start, colBytes)
		}
	}
	if b.remaining() != 0 {
		return nil, 0, fmt.Errorf("durable: %d trailing bytes after segment columns", b.remaining())
	}
	return tuples, arity, nil
}

// Manifest describes one snapshot: the format version, the log position it
// captures, the view definitions it was materialized under, and every
// relation segment with its checksum and statistics.
type Manifest struct {
	Format        int    `json:"format"`
	LSN           uint64 `json:"lsn"`
	CreatedUnixNs int64  `json:"created_unix_ns"`
	// ViewsFingerprint identifies the view-definition set the extents were
	// materialized under; a mismatch at open time means the snapshot's
	// extents are stale and only its base relations are trustworthy.
	ViewsFingerprint string         `json:"views_fingerprint"`
	Layout           string         `json:"layout"`
	Relations        []RelationMeta `json:"relations"`
	// Baseline persists the maintainer's deletion baseline: per derived
	// predicate, the keys of facts that existed as base facts before
	// materialization (their support is the base relation itself).
	Baseline map[string][]string `json:"baseline,omitempty"`
}

// LayoutFull marks a snapshot holding the base relations and every view
// extent — the maintainer's full state, from which any serving layout
// (base+extents, or extents-only for inverse rules) is derivable.
const LayoutFull = "full"

// RelationMeta describes one relation segment in a snapshot.
type RelationMeta struct {
	Name  string `json:"name"`
	Arity int    `json:"arity"`
	Rows  int    `json:"rows"`
	// Extent marks materialized view extents (vs base relations).
	Extent bool `json:"extent,omitempty"`
	// Distinct is the per-column distinct-value count captured from the
	// cost catalog, so a recovered engine plans with real statistics
	// without re-scanning every relation.
	Distinct []float64 `json:"distinct,omitempty"`
	File     string    `json:"file"`
	Bytes    int64     `json:"bytes"`
	CRC      uint32    `json:"crc32c"`
}

var segFileName = regexp.MustCompile(`^seg-\d{4}\.col$`)

// decodeManifest parses and validates a snapshot manifest. It never
// panics: malformed input returns an error.
func decodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("durable: manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("durable: manifest format %d, this build reads %d", m.Format, manifestFormat)
	}
	if m.Layout != LayoutFull {
		return nil, fmt.Errorf("durable: unknown snapshot layout %q", m.Layout)
	}
	seen := make(map[string]bool, len(m.Relations))
	files := make(map[string]bool, len(m.Relations))
	for i := range m.Relations {
		r := &m.Relations[i]
		if r.Name == "" {
			return nil, fmt.Errorf("durable: manifest relation %d has an empty name", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("durable: manifest repeats relation %s", r.Name)
		}
		seen[r.Name] = true
		if r.Arity <= 0 || r.Arity > maxArity {
			return nil, fmt.Errorf("durable: manifest relation %s: arity %d out of range", r.Name, r.Arity)
		}
		if r.Rows < 0 {
			return nil, fmt.Errorf("durable: manifest relation %s: negative row count", r.Name)
		}
		if len(r.Distinct) != 0 && len(r.Distinct) != r.Arity {
			return nil, fmt.Errorf("durable: manifest relation %s: %d distinct counts for arity %d", r.Name, len(r.Distinct), r.Arity)
		}
		if !segFileName.MatchString(r.File) {
			return nil, fmt.Errorf("durable: manifest relation %s: bad segment file name %q", r.Name, r.File)
		}
		if files[r.File] {
			return nil, fmt.Errorf("durable: manifest repeats segment file %s", r.File)
		}
		files[r.File] = true
		if r.Bytes < 0 {
			return nil, fmt.Errorf("durable: manifest relation %s: negative segment size", r.Name)
		}
	}
	for pred, keys := range m.Baseline {
		if pred == "" {
			return nil, fmt.Errorf("durable: manifest baseline has an empty predicate name")
		}
		if !seen[pred] {
			return nil, fmt.Errorf("durable: manifest baseline names unknown relation %s", pred)
		}
		_ = keys
	}
	return &m, nil
}

func encodeManifest(m *Manifest) ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("durable: manifest: %w", err)
	}
	return append(data, '\n'), nil
}
