package durable

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/durable/atomicfile"
	"repro/internal/storage"
)

// SnapshotMeta carries the engine-level context a snapshot must record
// alongside the raw tuples.
type SnapshotMeta struct {
	// ViewsFingerprint identifies the view definitions the extents were
	// materialized under (staleness detection at the next open).
	ViewsFingerprint string
	// Extents marks which relations are materialized view extents; the
	// rest are base relations.
	Extents map[string]bool
	// Baseline is the maintainer's deletion baseline (per derived
	// predicate, the keys of facts that pre-existed as base facts).
	Baseline map[string][]string
	// Distinct carries per-relation, per-column distinct-value counts from
	// the cost catalog so recovery can rebuild planning statistics without
	// scanning.
	Distinct map[string][]float64
}

// WriteSnapshot checkpoints db — base relations and view extents alike —
// as a new snapshot at the store's current LSN, publishes it via the
// CURRENT pointer, removes the superseded snapshot, and truncates the WAL
// (every logged batch is now inside the snapshot). The caller must hold
// the same serialization that guards Append, so no batch can commit while
// the checkpoint is cut.
//
// The write is crash-safe at every step: segments and the manifest land in
// a temporary directory that is fsynced and renamed into place, and the
// CURRENT pointer flips atomically. A failure leaves the previous snapshot
// (and the full WAL) authoritative; snapshot failure does not wedge the
// store, since the log still covers everything.
func (s *Store) WriteSnapshot(db *storage.Database, meta SnapshotMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if s.wal == nil {
		return fmt.Errorf("durable: store is closed")
	}
	start := time.Now()
	name := fmt.Sprintf("snap-%08d", s.seq+1)
	tmp := filepath.Join(s.dir, name+".tmp")
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := os.Mkdir(tmp, 0o755); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	man := &Manifest{
		Format:           manifestFormat,
		LSN:              s.lsn,
		CreatedUnixNs:    time.Now().UnixNano(),
		ViewsFingerprint: meta.ViewsFingerprint,
		Layout:           LayoutFull,
		Baseline:         meta.Baseline,
	}
	preds := db.Predicates()
	sort.Strings(preds)
	var total int64
	for i, pred := range preds {
		rel := db.Relation(pred)
		data := encodeSegment(rel.Tuples(), rel.Arity())
		file := fmt.Sprintf("seg-%04d.col", i)
		if err := writeFileSync(filepath.Join(tmp, file), data, s.opt.NoSync); err != nil {
			os.RemoveAll(tmp)
			return err
		}
		man.Relations = append(man.Relations, RelationMeta{
			Name:     pred,
			Arity:    rel.Arity(),
			Rows:     rel.Len(),
			Extent:   meta.Extents[pred],
			Distinct: meta.Distinct[pred],
			File:     file,
			Bytes:    int64(len(data)),
			CRC:      crc32.Checksum(data, castagnoli),
		})
		total += int64(len(data))
	}
	manData, err := encodeManifest(man)
	if err != nil {
		os.RemoveAll(tmp)
		return err
	}
	if err := writeFileSync(filepath.Join(tmp, manifestFile), manData, s.opt.NoSync); err != nil {
		os.RemoveAll(tmp)
		return err
	}
	total += int64(len(manData))
	if !s.opt.NoSync {
		if err := atomicfile.SyncDir(tmp); err != nil {
			os.RemoveAll(tmp)
			return err
		}
	}
	final := filepath.Join(s.dir, name)
	if err := os.Rename(tmp, final); err != nil {
		os.RemoveAll(tmp)
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if !s.opt.NoSync {
		if err := atomicfile.SyncDir(s.dir); err != nil {
			return err
		}
	}
	if err := atomicfile.WriteFile(filepath.Join(s.dir, currentFile), []byte(name+"\n"), 0o644); err != nil {
		return err
	}
	// The snapshot is published. Everything from here is cleanup whose
	// failure the next Open repairs (superseded dirs are swept, log
	// records at or below the snapshot LSN are skipped).
	old := s.snapDir
	s.man, s.snapDir, s.seq = man, name, s.seq+1
	if old != "" {
		os.RemoveAll(filepath.Join(s.dir, old))
	}
	if err := s.wal.reset(); err != nil {
		s.failed = err
		return err
	}
	s.snapshots++
	s.snapshotTime += time.Since(start)
	s.snapshotBytes = total
	return nil
}

// LoadSnapshot reads the current snapshot back into a database: every
// segment is checksum-verified, decoded, and bulk-inserted. Column hash
// indexes are rebuilt by the caller (BuildIndexes), not persisted — the
// rebuild is a linear scan, and re-deriving them keeps the on-disk format
// independent of the index representation.
func (s *Store) LoadSnapshot() (*storage.Database, error) {
	s.mu.Lock()
	man, snapDir := s.man, s.snapDir
	s.mu.Unlock()
	if man == nil {
		return nil, fmt.Errorf("durable: no snapshot to load")
	}
	db := storage.NewDatabase()
	for _, rm := range man.Relations {
		tuples, err := s.loadSegment(snapDir, rm)
		if err != nil {
			return nil, err
		}
		rel, err := db.Ensure(rm.Name, rm.Arity)
		if err != nil {
			return nil, fmt.Errorf("durable: %w", err)
		}
		for _, t := range tuples {
			rel.Insert(t)
		}
	}
	return db, nil
}

// loadSegment reads, verifies and decodes one relation segment.
func (s *Store) loadSegment(snapDir string, rm RelationMeta) ([]storage.Tuple, error) {
	path := filepath.Join(s.dir, snapDir, rm.File)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("durable: segment %s: %w", rm.Name, err)
	}
	if int64(len(data)) != rm.Bytes {
		return nil, fmt.Errorf("durable: segment %s: %d bytes on disk, manifest says %d", rm.Name, len(data), rm.Bytes)
	}
	if sum := crc32.Checksum(data, castagnoli); sum != rm.CRC {
		return nil, fmt.Errorf("durable: segment %s: file checksum mismatch (got %08x, want %08x)", rm.Name, sum, rm.CRC)
	}
	tuples, _, err := decodeSegment(data, rm.Arity, rm.Rows)
	if err != nil {
		return nil, fmt.Errorf("durable: segment %s: %w", rm.Name, err)
	}
	return tuples, nil
}

// writeFileSync writes a file created inside a staging directory and (by
// default) fsyncs it. No rename is needed: the whole directory is renamed
// into place after every file in it is durable.
func writeFileSync(path string, data []byte, noSync bool) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("durable: snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	return nil
}
