// Package durable persists a serving engine's state so a cold process
// resumes in milliseconds instead of re-materializing every view extent.
// Two structures cooperate:
//
//   - A snapshot: one directory per checkpoint holding a columnar,
//     checksummed segment file per relation (base relations and
//     materialized extents alike) plus a JSON manifest recording the
//     format version, the log position (LSN), the view-definition
//     fingerprint, per-relation statistics for the cost catalog, and the
//     maintainer's deletion baseline. Snapshots are written to a temp
//     directory, fsynced, renamed into place, and published by atomically
//     rewriting a CURRENT pointer file — a crash at any instant leaves the
//     previous snapshot intact.
//
//   - An append-only WAL whose record unit is exactly one ApplyUpdate
//     batch (deletes + inserts). Records are length-prefixed and CRC32C
//     checksummed; the tail may be torn by a crash and is truncated at the
//     next open. A batch is logged and fsynced after the maintainer
//     applies it but before it is published to readers, so recovery
//     (snapshot + replay through Maintainer.ApplyUpdate) reconstructs
//     exactly the batches whose callers were acknowledged.
//
// Open = newest valid snapshot + WAL replay. A snapshot whose view
// fingerprint no longer matches the engine's view definitions is stale:
// its extents are discarded, its base relations (plus the WAL) are
// recovered flat, and the caller re-materializes. Writing a snapshot
// truncates the log; the engine triggers that in the background when the
// log crosses a size threshold, and on graceful shutdown.
//
// Failure policy is fail-stop for writes: if a WAL append or sync fails,
// the store wedges — every later Append and WriteSnapshot returns the
// original error — while the in-memory engine keeps serving reads. The
// unlogged batch was never acknowledged or published, so the on-disk state
// remains a consistent prefix of the acknowledged history.
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/storage"
)

// Options configures a Store.
type Options struct {
	// NoSync skips the per-append fsync (and snapshot file syncs). Batches
	// then survive a process crash but not a host crash — a deliberate
	// trade for tests and bulk loads.
	NoSync bool
}

const (
	currentFile = "CURRENT"
	manifestFile = "MANIFEST.json"
	walFile      = "wal.log"
)

var snapDirName = regexp.MustCompile(`^snap-(\d{8})$`)

// Store is one engine's durable state: the current snapshot and the
// append-only log of batches applied since it was taken. Single-writer:
// Append and WriteSnapshot must be serialized by the caller (the engine
// holds its update mutex); an internal mutex makes the read-side accessors
// safe from any goroutine.
type Store struct {
	dir string
	opt Options

	mu      sync.Mutex
	wal     *wal
	man     *Manifest
	snapDir string // directory name of the current snapshot ("" if none)
	seq     uint64 // sequence number of the current snapshot
	lsn     uint64 // last durable LSN (snapshot or WAL record)
	failed  error  // first write failure; wedges all later writes

	walAppends    uint64
	walAppendTime time.Duration
	snapshots     uint64
	snapshotTime  time.Duration
	snapshotBytes int64
}

// Stats reports a store's position and lifetime write work.
type Stats struct {
	// LSN is the last durable log position.
	LSN uint64
	// WALBytes is the current size of the log file.
	WALBytes int64
	// WALAppends counts records appended by this process.
	WALAppends uint64
	// WALAppendTime is the cumulative wall time of appends (including fsync).
	WALAppendTime time.Duration
	// Snapshots counts snapshots written by this process.
	Snapshots uint64
	// SnapshotTime is the cumulative wall time of snapshot writes.
	SnapshotTime time.Duration
	// SnapshotBytes is the byte size of the most recent snapshot.
	SnapshotBytes int64
	// SnapshotLSN is the log position of the current snapshot.
	SnapshotLSN uint64
	// Failed reports the fail-stop state: a write failed and all further
	// mutations are refused.
	Failed bool
}

// Open attaches to (or initializes) the durable state under dir: it reads
// the CURRENT pointer, validates the manifest it names, removes leftover
// temporary or superseded snapshot directories, and scans the WAL,
// truncating any torn tail. The returned store holds the intact records
// for Replay.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	s := &Store{dir: dir, opt: opt}
	cur, err := os.ReadFile(filepath.Join(dir, currentFile))
	switch {
	case err == nil:
		name := strings.TrimSpace(string(cur))
		m := snapDirName.FindStringSubmatch(name)
		if m == nil {
			return nil, fmt.Errorf("durable: CURRENT names %q, not a snapshot directory", name)
		}
		data, err := os.ReadFile(filepath.Join(dir, name, manifestFile))
		if err != nil {
			return nil, fmt.Errorf("durable: current snapshot %s: %w", name, err)
		}
		man, err := decodeManifest(data)
		if err != nil {
			return nil, fmt.Errorf("durable: current snapshot %s: %w", name, err)
		}
		s.man, s.snapDir = man, name
		s.seq, _ = strconv.ParseUint(m[1], 10, 64)
		s.lsn = man.LSN
	case errors.Is(err, os.ErrNotExist):
		// Fresh directory: no snapshot yet.
	default:
		return nil, fmt.Errorf("durable: %w", err)
	}
	// Sweep snapshot directories the CURRENT pointer does not reference:
	// temp dirs from a crashed snapshot write, or superseded snapshots
	// whose removal was interrupted.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == s.snapDir {
			continue
		}
		if snapDirName.MatchString(e.Name()) || strings.HasSuffix(e.Name(), ".tmp") {
			os.RemoveAll(filepath.Join(dir, e.Name()))
		}
	}
	w, err := openWAL(filepath.Join(dir, walFile), opt.NoSync)
	if err != nil {
		return nil, err
	}
	s.wal = w
	// Records at or below the snapshot LSN are already captured by it (a
	// crash between publishing a snapshot and truncating the log leaves
	// them behind); drop them from replay.
	if s.man != nil {
		recs := w.recs[:0]
		for _, r := range w.recs {
			if r.lsn > s.man.LSN {
				recs = append(recs, r)
			}
		}
		w.recs = recs
	}
	if len(w.recs) > 0 {
		if s.man == nil {
			w.close()
			return nil, fmt.Errorf("durable: %s holds %d log records but no snapshot — the snapshot directories were removed out from under the log", dir, len(w.recs))
		}
		s.lsn = w.recs[len(w.recs)-1].lsn
	}
	return s, nil
}

// Manifest returns the current snapshot's manifest, or nil when the
// directory holds no snapshot yet. Read-only.
func (s *Store) Manifest() *Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man
}

// PendingRecords reports how many intact WAL records await Replay.
func (s *Store) PendingRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0
	}
	return len(s.wal.recs)
}

// Replay decodes every intact WAL record past the current snapshot, in
// commit order, and hands each to fn. It returns the number of records
// applied; an error from decoding or from fn stops the replay. The parsed
// records are released afterwards.
func (s *Store) Replay(fn func(Record) error) (int, error) {
	s.mu.Lock()
	var recs []walRec
	if s.wal != nil {
		recs = s.wal.recs
		s.wal.recs = nil
	}
	s.mu.Unlock()
	for i, r := range recs {
		rec, err := decodeRecordPayload(r.payload)
		if err != nil {
			return i, fmt.Errorf("durable: wal record %d (lsn %d): %w", i, r.lsn, err)
		}
		if err := fn(rec); err != nil {
			return i, fmt.Errorf("durable: replay record %d (lsn %d): %w", i, r.lsn, err)
		}
	}
	return len(recs), nil
}

// RecoverBaseFacts rebuilds just the base relations — the snapshot's
// non-extent segments with every WAL batch applied flat (deletes before
// inserts, no view maintenance). This is the stale-snapshot path: the view
// definitions changed, the extents are worthless, but the base facts are
// still the authoritative data to re-materialize from.
func (s *Store) RecoverBaseFacts() (*storage.Database, error) {
	s.mu.Lock()
	man, snapDir := s.man, s.snapDir
	var recs []walRec
	if s.wal != nil {
		recs = s.wal.recs
		s.wal.recs = nil
	}
	s.mu.Unlock()
	db := storage.NewDatabase()
	if man != nil {
		for _, rm := range man.Relations {
			if rm.Extent {
				continue
			}
			tuples, err := s.loadSegment(snapDir, rm)
			if err != nil {
				return nil, err
			}
			rel, err := db.Ensure(rm.Name, rm.Arity)
			if err != nil {
				return nil, fmt.Errorf("durable: %w", err)
			}
			for _, t := range tuples {
				rel.Insert(t)
			}
		}
	}
	for i, r := range recs {
		rec, err := decodeRecordPayload(r.payload)
		if err != nil {
			return nil, fmt.Errorf("durable: wal record %d (lsn %d): %w", i, r.lsn, err)
		}
		for pred, tuples := range rec.Deletes {
			for _, t := range tuples {
				db.Remove(pred, t)
			}
		}
		for pred, tuples := range rec.Inserts {
			for _, t := range tuples {
				if err := db.Insert(pred, t); err != nil {
					return nil, fmt.Errorf("durable: wal record %d: %w", i, err)
				}
			}
		}
	}
	return db, nil
}

// Append logs one update batch — the ApplyUpdate unit, deletes applied
// before inserts — and syncs it, returning its LSN. Call it after the
// maintainer accepted the batch and before publishing to readers. On an
// IO failure the store wedges (fail-stop): the error is returned now and
// by every later Append.
func (s *Store) Append(deletes, inserts map[string][]storage.Tuple) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return 0, s.failed
	}
	if s.wal == nil {
		return 0, fmt.Errorf("durable: store is closed")
	}
	lsn := s.lsn + 1
	start := time.Now()
	if err := s.wal.append(encodeRecordPayload(lsn, deletes, inserts)); err != nil {
		s.failed = err
		return 0, err
	}
	s.lsn = lsn
	s.walAppends++
	s.walAppendTime += time.Since(start)
	return lsn, nil
}

// Dirty reports whether the WAL holds batches the current snapshot does
// not cover (a checkpoint at shutdown would not be redundant).
func (s *Store) Dirty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return false
	}
	return s.wal.size > int64(len(walMagic)) || s.man == nil
}

// WALBytes returns the current size of the log file.
func (s *Store) WALBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0
	}
	return s.wal.size
}

// LSN returns the last durable log position.
func (s *Store) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsn
}

// Err returns the wedging write failure, or nil while the store is
// healthy.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		LSN:           s.lsn,
		WALAppends:    s.walAppends,
		WALAppendTime: s.walAppendTime,
		Snapshots:     s.snapshots,
		SnapshotTime:  s.snapshotTime,
		SnapshotBytes: s.snapshotBytes,
		Failed:        s.failed != nil,
	}
	if s.wal != nil {
		st.WALBytes = s.wal.size
	}
	if s.man != nil {
		st.SnapshotLSN = s.man.LSN
	}
	return st
}

// Close syncs and closes the log. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.close()
	s.wal = nil
	return err
}
