package durable

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/storage"
)

func tuples(vals ...string) []storage.Tuple {
	out := make([]storage.Tuple, len(vals))
	for i, v := range vals {
		out[i] = storage.Tuple(strings.Split(v, ","))
	}
	return out
}

func batch(pred string, vals ...string) map[string][]storage.Tuple {
	return map[string][]storage.Tuple{pred: tuples(vals...)}
}

func testDB(t *testing.T) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	for _, f := range tuples("a,1", "b,2", "c,3") {
		if err := db.Insert("r", f); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range tuples("1,x", "2,y") {
		if err := db.Insert("s", f); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range tuples("a,x", "b,y") {
		if err := db.Insert("v", f); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func testMeta() SnapshotMeta {
	return SnapshotMeta{
		ViewsFingerprint: "fp-1",
		Extents:          map[string]bool{"v": true},
		Baseline:         map[string][]string{"v": {"a\x1fx"}},
		Distinct:         map[string][]float64{"r": {3, 3}, "s": {2, 2}, "v": {2, 2}},
	}
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if s.Manifest() != nil {
		t.Fatal("fresh store claims a snapshot")
	}
	db := testDB(t)
	if err := s.WriteSnapshot(db, testMeta()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	man := s2.Manifest()
	if man == nil {
		t.Fatal("no manifest after reopen")
	}
	if man.ViewsFingerprint != "fp-1" || man.Layout != LayoutFull || man.LSN != 0 {
		t.Fatalf("manifest = %+v", man)
	}
	var vMeta *RelationMeta
	for i := range man.Relations {
		if man.Relations[i].Name == "v" {
			vMeta = &man.Relations[i]
		}
	}
	if vMeta == nil || !vMeta.Extent || vMeta.Rows != 2 || vMeta.Arity != 2 {
		t.Fatalf("extent meta = %+v", vMeta)
	}
	if got := man.Baseline["v"]; len(got) != 1 || got[0] != "a\x1fx" {
		t.Fatalf("baseline = %q", man.Baseline)
	}
	loaded, err := s2.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !db.Equal(loaded) {
		t.Fatalf("snapshot round trip lost data:\nwant %s\ngot  %s", db.Summary(), loaded.Summary())
	}
}

func TestSnapshotSupersedesAndSweeps(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	db := testDB(t)
	if err := s.WriteSnapshot(db, testMeta()); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("r", storage.Tuple{"d", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(db, testMeta()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []string
	for _, e := range entries {
		if e.IsDir() {
			snaps = append(snaps, e.Name())
		}
	}
	if len(snaps) != 1 || snaps[0] != "snap-00000002" {
		t.Fatalf("snapshot dirs after second checkpoint: %v", snaps)
	}
	// A leftover temp dir and a stale snapshot dir are swept at open.
	if err := os.Mkdir(filepath.Join(dir, "snap-00000009.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "snap-00000001"), 0o755); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir)
	defer s2.Close()
	for _, stale := range []string{"snap-00000009.tmp", "snap-00000001"} {
		if _, err := os.Stat(filepath.Join(dir, stale)); !os.IsNotExist(err) {
			t.Fatalf("%s not swept at open", stale)
		}
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(testDB(t), testMeta()); err != nil {
		t.Fatal(err)
	}
	if lsn, err := s.Append(nil, batch("r", "d,4", "e,5")); err != nil || lsn != 1 {
		t.Fatalf("append: lsn=%d err=%v", lsn, err)
	}
	if lsn, err := s.Append(batch("r", "a,1"), batch("s", "3,z")); err != nil || lsn != 2 {
		t.Fatalf("append: lsn=%d err=%v", lsn, err)
	}
	if s.LSN() != 2 {
		t.Fatalf("LSN = %d", s.LSN())
	}
	s.Close() // no checkpoint: simulates a crash with a populated log

	s2 := openStore(t, dir)
	defer s2.Close()
	if n := s2.PendingRecords(); n != 2 {
		t.Fatalf("pending records = %d", n)
	}
	if s2.LSN() != 2 {
		t.Fatalf("LSN after reopen = %d", s2.LSN())
	}
	var got []Record
	n, err := s2.Replay(func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil || n != 2 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	if got[0].LSN != 1 || len(got[0].Inserts["r"]) != 2 || got[0].Deletes != nil {
		t.Fatalf("record 0 = %+v", got[0])
	}
	if got[1].LSN != 2 || len(got[1].Deletes["r"]) != 1 || len(got[1].Inserts["s"]) != 1 {
		t.Fatalf("record 1 = %+v", got[1])
	}
	if got[1].Inserts["s"][0][1] != "z" {
		t.Fatalf("tuple payload = %v", got[1].Inserts["s"])
	}
	// A checkpoint truncates the log.
	if err := s2.WriteSnapshot(testDB(t), testMeta()); err != nil {
		t.Fatal(err)
	}
	if s2.Dirty() {
		t.Fatal("store dirty right after checkpoint")
	}
	if b := s2.WALBytes(); b != int64(len(walMagic)) {
		t.Fatalf("wal bytes after checkpoint = %d", b)
	}
}

// TestTornTailTruncated covers the crash-mid-append corpus: the log ends in
// a partial frame, which recovery silently drops and truncates away.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(testDB(t), testMeta()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append(nil, batch("r", "x,1")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 3, 7, 11} { // inside the last frame, the header, the LSN...
		torn := data[:len(data)-cut]
		if err := os.WriteFile(walPath, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := openStore(t, dir)
		n, err := s2.Replay(func(Record) error { return nil })
		if err != nil || n != 2 {
			t.Fatalf("cut %d: replayed n=%d err=%v, want the 2 intact records", cut, n, err)
		}
		if s2.LSN() != 2 {
			t.Fatalf("cut %d: LSN = %d", cut, s2.LSN())
		}
		s2.Close()
		after, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(after) >= len(torn) {
			t.Fatalf("cut %d: torn tail not truncated (%d >= %d)", cut, len(after), len(torn))
		}
		if err := os.WriteFile(walPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBitFlippedRecordStopsReplay covers the corruption corpus: a flipped
// bit inside a committed record fails its CRC, and recovery refuses to
// replay past it — later records are unreachable because replay order is
// commit order.
func TestBitFlippedRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(testDB(t), testMeta()); err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for i := 0; i < 3; i++ {
		if _, err := s.Append(nil, batch("r", "x,1")); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, s.WALBytes())
	}
	s.Close()
	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit in the middle record (frames start at sizes[0]).
	flipped := append([]byte(nil), data...)
	flipped[sizes[0]+8+4] ^= 0x40
	if err := os.WriteFile(walPath, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	defer s2.Close()
	n, err := s2.Replay(func(Record) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("replay past a flipped record: n=%d err=%v, want exactly the first record", n, err)
	}
}

// TestTornHeaderAndFreshFiles covers log files shorter than the magic and
// a log that is not a log at all.
func TestTornHeaderAndFreshFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFile), []byte("AQV"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn header should reset the log: %v", err)
	}
	s.Close()

	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, walFile), []byte("NOTALOG!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2, Options{}); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBitFlippedSegmentRefusesLoad(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(testDB(t), testMeta()); err != nil {
		t.Fatal(err)
	}
	man := s.Manifest()
	seg := filepath.Join(dir, "snap-00000001", man.Relations[0].File)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSnapshot(); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("flipped segment loaded: err=%v", err)
	}
}

func TestCorruptManifestRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(testDB(t), testMeta()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	manPath := filepath.Join(dir, "snap-00000001", manifestFile)
	if err := os.WriteFile(manPath, []byte(`{"format": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("future-format manifest accepted")
	}
}

func TestWALWithoutSnapshotRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(testDB(t), testMeta()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(nil, batch("r", "x,1")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Deleting the snapshot out from under a populated log must refuse to
	// open (replaying onto an unknown base would fabricate state).
	if err := os.Remove(filepath.Join(dir, currentFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("orphaned log accepted")
	}
}

func TestRecoverBaseFacts(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(testDB(t), testMeta()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(batch("r", "a,1"), batch("r", "d,4")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir)
	defer s2.Close()
	db, err := s2.RecoverBaseFacts()
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("v") != nil {
		t.Fatal("stale extent leaked into recovered base facts")
	}
	r := db.Relation("r")
	if r == nil || r.Len() != 3 {
		t.Fatalf("recovered r = %v", db.Summary())
	}
	if r.Contains(storage.Tuple{"a", "1"}) {
		t.Fatal("logged delete not applied to recovered base")
	}
	if !r.Contains(storage.Tuple{"d", "4"}) {
		t.Fatal("logged insert not applied to recovered base")
	}
}

func TestFailStopWedgesWrites(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(testDB(t), testMeta()); err != nil {
		t.Fatal(err)
	}
	// Force an append failure by closing the log file underneath the
	// store — the same observable outcome as a disk error.
	s.mu.Lock()
	s.wal.f.Close()
	s.mu.Unlock()
	if _, err := s.Append(nil, batch("r", "x,1")); err == nil {
		t.Fatal("append on a closed file succeeded")
	}
	if s.Err() == nil {
		t.Fatal("store not wedged after append failure")
	}
	if !s.Stats().Failed {
		t.Fatal("stats do not report the wedge")
	}
	if _, err := s.Append(nil, batch("r", "y,2")); err == nil {
		t.Fatal("append allowed after wedge")
	}
	if err := s.WriteSnapshot(testDB(t), testMeta()); err == nil {
		t.Fatal("snapshot allowed after wedge")
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(testDB(t), testMeta()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close not idempotent")
	}
	if _, err := s.Append(nil, batch("r", "x,1")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := s.WriteSnapshot(testDB(t), testMeta()); err == nil {
		t.Fatal("snapshot after close succeeded")
	}
}

func TestNoSyncRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(testDB(t), testMeta()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(nil, batch("r", "d,4")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir)
	defer s2.Close()
	if n := s2.PendingRecords(); n != 1 {
		t.Fatalf("pending = %d", n)
	}
}

func TestStatsCounters(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.WriteSnapshot(testDB(t), testMeta()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(nil, batch("r", "d,4")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Snapshots != 1 || st.WALAppends != 1 || st.LSN != 1 || st.SnapshotLSN != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SnapshotBytes <= 0 || st.WALBytes <= int64(len(walMagic)) {
		t.Fatalf("sizes not tracked: %+v", st)
	}
}
