package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/durable/atomicfile"
)

// wal is the append-only update log. One file, one writer, records framed
// as u32 length + u32 CRC32C + payload. The tail is allowed to be torn —
// a crash mid-append leaves a partial frame or a frame whose checksum
// fails, and open truncates the file back to the last intact record. A
// checksum failure *before* the tail (a bit flip inside committed data)
// also stops recovery at that point: nothing after an unreadable record
// can be trusted, because replay order is the commit order.
type wal struct {
	path   string
	f      *os.File
	noSync bool
	size   int64
	// recs are the intact records parsed at open, kept until the engine
	// replays them (Replay frees them).
	recs []walRec
}

type walRec struct {
	lsn     uint64
	payload []byte
}

// openWAL opens or creates the log at path, scans it, truncates any torn
// tail, and returns the writer positioned at the end.
func openWAL(path string, noSync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: wal: %w", err)
	}
	w := &wal{path: path, f: f, noSync: noSync}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: wal: %w", err)
	}
	if len(data) < len(walMagic) {
		// Fresh file, or a creation torn before the magic landed: start over.
		if err := w.reset(); err != nil {
			f.Close()
			return nil, err
		}
		return w, nil
	}
	if string(data[:len(walMagic)]) != walMagic {
		f.Close()
		return nil, fmt.Errorf("durable: %s is not a WAL (bad magic)", path)
	}
	recs, good, err := scanWAL(data)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.recs = recs
	if good < int64(len(data)) {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: wal: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: wal: %w", err)
	}
	w.size = good
	return w, nil
}

// scanWAL walks the framed records after the magic, returning the intact
// prefix: the parsed records and the byte offset the file should be
// truncated to. A torn or checksum-failed frame ends the scan silently (it
// is the uncommitted tail); a frame whose checksum passes but whose body is
// structurally invalid, or whose LSN does not increase, is a hard error —
// those bytes were durable once, so the log is corrupt, not torn.
func scanWAL(data []byte) ([]walRec, int64, error) {
	var recs []walRec
	off := len(walMagic)
	var prevLSN uint64
	for {
		if len(data)-off < 8 {
			break // torn frame header
		}
		ln := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if int64(ln) > maxRecordBytes || int(ln) > len(data)-off-8 {
			break // length prefix torn or beyond the file
		}
		payload := data[off+8 : off+8+int(ln)]
		if crc32.Checksum(payload, castagnoli) != sum {
			break // torn or flipped record: stop here
		}
		if len(payload) < 8 {
			return nil, 0, fmt.Errorf("durable: wal record at offset %d passes its checksum but is too short for an LSN", off)
		}
		lsn := binary.LittleEndian.Uint64(payload)
		if lsn <= prevLSN {
			return nil, 0, fmt.Errorf("durable: wal LSN went backwards at offset %d (%d after %d)", off, lsn, prevLSN)
		}
		prevLSN = lsn
		recs = append(recs, walRec{lsn: lsn, payload: payload})
		off += 8 + int(ln)
	}
	return recs, int64(off), nil
}

// reset truncates the log to an empty file holding only the magic. Called
// at creation and after a snapshot makes every logged record redundant.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: wal: %w", err)
	}
	if _, err := w.f.WriteAt([]byte(walMagic), 0); err != nil {
		return fmt.Errorf("durable: wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: wal: %w", err)
	}
	if _, err := w.f.Seek(int64(len(walMagic)), 0); err != nil {
		return fmt.Errorf("durable: wal: %w", err)
	}
	if err := atomicfile.SyncDir(filepath.Dir(w.path)); err != nil {
		return err
	}
	w.size = int64(len(walMagic))
	w.recs = nil
	return nil
}

// append frames and writes one record payload, then syncs it to disk
// (unless noSync). The frame is written in a single Write call, so a crash
// leaves either nothing, a torn frame (truncated at next open), or the
// whole record.
func (w *wal) append(payload []byte) error {
	frame := make([]byte, 0, 8+len(payload))
	frame = appendU32(frame, uint32(len(payload)))
	frame = appendU32(frame, crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("durable: wal append: %w", err)
	}
	if !w.noSync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("durable: wal sync: %w", err)
		}
	}
	w.size += int64(len(frame))
	return nil
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
