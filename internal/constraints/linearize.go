package constraints

import (
	"strings"

	"repro/internal/cq"
)

// Linearization is a total preorder over a set of terms, represented as
// blocks of equal terms listed in strictly increasing order. Linearizations
// are the "total orderings" quantified over by the complete containment test
// for conjunctive queries with comparisons.
type Linearization [][]cq.Term

// Comparisons returns the constraint rendering of the linearization:
// equalities within each block and a strict inequality between consecutive
// blocks (one representative per block suffices by transitivity).
func (l Linearization) Comparisons() []cq.Comparison {
	var out []cq.Comparison
	for _, block := range l {
		for i := 1; i < len(block); i++ {
			out = append(out, cq.Comparison{Left: block[0], Op: cq.Eq, Right: block[i]})
		}
	}
	for i := 1; i < len(l); i++ {
		out = append(out, cq.Comparison{Left: l[i-1][0], Op: cq.Lt, Right: l[i][0]})
	}
	return out
}

// MergeSubst returns the substitution that collapses each block onto a
// representative: the block's constant if it has one, otherwise its first
// term. Applying it to a query identifies the terms the linearization
// declares equal — required before searching containment mappings against
// a fixed linearization.
func (l Linearization) MergeSubst() cq.Subst {
	s := cq.NewSubst()
	for _, block := range l {
		rep := block[0]
		for _, t := range block {
			if t.IsConst() {
				rep = t
				break
			}
		}
		for _, t := range block {
			if t.IsVar() && t != rep {
				s[t.Lex] = rep
			}
		}
	}
	return s
}

// Set returns the linearization as a constraint set over its terms.
func (l Linearization) Set() *Set {
	var terms []cq.Term
	for _, b := range l {
		terms = append(terms, b...)
	}
	return NewSet(l.Comparisons(), terms...)
}

// String renders e.g. "a = X < Y < 5 = Z".
func (l Linearization) String() string {
	var parts []string
	for _, b := range l {
		var eq []string
		for _, t := range b {
			eq = append(eq, t.String())
		}
		parts = append(parts, strings.Join(eq, " = "))
	}
	return strings.Join(parts, " < ")
}

// EnumerateLinearizations calls yield for every total preorder of terms that
// is consistent with the base constraint set (nil base means no constraints).
// Enumeration stops early if yield returns false. The count of linearizations
// is the Fubini number of len(terms) before filtering — callers should keep
// the term set small (the complete containment test is exponential by the
// paper's lower bound; see DESIGN.md R5).
func EnumerateLinearizations(terms []cq.Term, base *Set, yield func(Linearization) bool) {
	terms = dedupeTerms(terms)
	var rec func(i int, blocks [][]cq.Term) bool
	rec = func(i int, blocks [][]cq.Term) bool {
		if i == len(terms) {
			lin := make(Linearization, len(blocks))
			for b, blk := range blocks {
				cp := make([]cq.Term, len(blk))
				copy(cp, blk)
				lin[b] = cp
			}
			if !consistent(lin, base) {
				return true
			}
			return yield(lin)
		}
		t := terms[i]
		// Join an existing block.
		for b := range blocks {
			blocks[b] = append(blocks[b], t)
			if !rec(i+1, blocks) {
				return false
			}
			blocks[b] = blocks[b][:len(blocks[b])-1]
		}
		// Open a new block at any gap.
		for gap := 0; gap <= len(blocks); gap++ {
			next := make([][]cq.Term, 0, len(blocks)+1)
			next = append(next, blocks[:gap]...)
			next = append(next, []cq.Term{t})
			next = append(next, blocks[gap:]...)
			if !rec(i+1, next) {
				return false
			}
		}
		return true
	}
	rec(0, nil)
}

// CountLinearizations returns the number of linearizations of terms
// consistent with base. Useful for tests and the T5 experiment.
func CountLinearizations(terms []cq.Term, base *Set) int {
	n := 0
	EnumerateLinearizations(terms, base, func(Linearization) bool {
		n++
		return true
	})
	return n
}

func consistent(l Linearization, base *Set) bool {
	var s *Set
	if base == nil {
		s = NewSet(nil)
	} else {
		s = base.Clone()
	}
	for _, c := range l.Comparisons() {
		s.Add(c)
	}
	// Register all terms so constant ordering is enforced even for blocks
	// of size one.
	for _, b := range l {
		for _, t := range b {
			s.AddTerm(t)
		}
	}
	return s.Satisfiable()
}

func dedupeTerms(terms []cq.Term) []cq.Term {
	seen := make(map[cq.Term]bool, len(terms))
	out := terms[:0:0]
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
