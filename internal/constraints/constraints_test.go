package constraints

import (
	"testing"
	"testing/quick"

	"repro/internal/cq"
)

func comp(l string, op cq.CompOp, r string) cq.Comparison {
	return cq.Comparison{Left: term(l), Op: op, Right: term(r)}
}

// term interprets upper-case-initial names as variables, others as constants.
func term(s string) cq.Term {
	if s == "" {
		return cq.Const("")
	}
	c := s[0]
	if c >= 'A' && c <= 'Z' || c == '_' {
		return cq.Var(s)
	}
	return cq.Const(s)
}

func TestSatisfiableBasic(t *testing.T) {
	cases := []struct {
		comps []cq.Comparison
		want  bool
	}{
		{nil, true},
		{[]cq.Comparison{comp("X", cq.Lt, "Y")}, true},
		{[]cq.Comparison{comp("X", cq.Lt, "Y"), comp("Y", cq.Lt, "X")}, false},
		{[]cq.Comparison{comp("X", cq.Lt, "X")}, false},
		{[]cq.Comparison{comp("X", cq.Le, "Y"), comp("Y", cq.Le, "X")}, true},
		{[]cq.Comparison{comp("X", cq.Le, "Y"), comp("Y", cq.Le, "X"), comp("X", cq.Ne, "Y")}, false},
		{[]cq.Comparison{comp("X", cq.Eq, "Y"), comp("X", cq.Ne, "Y")}, false},
		{[]cq.Comparison{comp("X", cq.Lt, "Y"), comp("Y", cq.Lt, "Z"), comp("Z", cq.Lt, "X")}, false},
		{[]cq.Comparison{comp("X", cq.Ge, "Y"), comp("Y", cq.Gt, "X")}, false},
	}
	for _, c := range cases {
		s := NewSet(c.comps)
		if got := s.Satisfiable(); got != c.want {
			t.Errorf("Satisfiable(%v) = %v want %v", c.comps, got, c.want)
		}
	}
}

func TestSatisfiableWithConstants(t *testing.T) {
	cases := []struct {
		comps []cq.Comparison
		want  bool
	}{
		{[]cq.Comparison{comp("X", cq.Lt, "5"), comp("X", cq.Gt, "3")}, true},
		{[]cq.Comparison{comp("X", cq.Lt, "3"), comp("X", cq.Gt, "5")}, false},
		{[]cq.Comparison{comp("X", cq.Eq, "3"), comp("X", cq.Eq, "5")}, false},
		{[]cq.Comparison{comp("3", cq.Gt, "5")}, false},
		{[]cq.Comparison{comp("3", cq.Lt, "5")}, true},
		{[]cq.Comparison{comp("a", cq.Lt, "b")}, true},
		{[]cq.Comparison{comp("b", cq.Lt, "a")}, false},
		// Density: strictly between 3 and 4 there is a value.
		{[]cq.Comparison{comp("X", cq.Gt, "3"), comp("X", cq.Lt, "4")}, true},
		{[]cq.Comparison{comp("X", cq.Eq, "3"), comp("X", cq.Ne, "3")}, false},
	}
	for _, c := range cases {
		s := NewSet(c.comps)
		if got := s.Satisfiable(); got != c.want {
			t.Errorf("Satisfiable(%v) = %v want %v", c.comps, got, c.want)
		}
	}
}

func TestImplies(t *testing.T) {
	base := []cq.Comparison{comp("X", cq.Lt, "Y"), comp("Y", cq.Le, "Z")}
	s := NewSet(base)
	cases := []struct {
		c    cq.Comparison
		want bool
	}{
		{comp("X", cq.Lt, "Z"), true},
		{comp("X", cq.Le, "Z"), true},
		{comp("X", cq.Ne, "Z"), true},
		{comp("Z", cq.Gt, "X"), true},
		{comp("X", cq.Lt, "Y"), true},
		{comp("Z", cq.Lt, "X"), false},
		{comp("Y", cq.Eq, "Z"), false},
		{comp("Y", cq.Ne, "Z"), false},
	}
	for _, c := range cases {
		if got := s.Implies(c.c); got != c.want {
			t.Errorf("%v Implies(%v) = %v want %v", base, c.c, got, c.want)
		}
	}
}

func TestImpliesWithConstants(t *testing.T) {
	s := NewSet([]cq.Comparison{comp("X", cq.Ge, "5")})
	if !s.Implies(comp("X", cq.Gt, "4")) {
		t.Error("X>=5 should imply X>4")
	}
	if !s.Implies(comp("X", cq.Ne, "3")) {
		t.Error("X>=5 should imply X!=3")
	}
	if s.Implies(comp("X", cq.Gt, "5")) {
		t.Error("X>=5 should not imply X>5")
	}
	if s.Implies(comp("X", cq.Ne, "5")) {
		t.Error("X>=5 should not imply X!=5")
	}
	// Equality chaining through a constant.
	s2 := NewSet([]cq.Comparison{comp("X", cq.Eq, "5"), comp("Y", cq.Eq, "5")})
	if !s2.Implies(comp("X", cq.Eq, "Y")) {
		t.Error("X=5, Y=5 should imply X=Y")
	}
}

func TestUnsatisfiableImpliesEverything(t *testing.T) {
	s := NewSet([]cq.Comparison{comp("X", cq.Lt, "X")})
	if !s.Implies(comp("A", cq.Eq, "B")) {
		t.Error("unsatisfiable set should imply everything")
	}
}

func TestEquivalentTo(t *testing.T) {
	a := NewSet([]cq.Comparison{comp("X", cq.Lt, "Y"), comp("Y", cq.Lt, "Z")})
	b := NewSet([]cq.Comparison{comp("Y", cq.Gt, "X"), comp("Z", cq.Gt, "Y"), comp("X", cq.Lt, "Z")})
	if !a.EquivalentTo(b) {
		t.Error("sets with same models reported different")
	}
	c := NewSet([]cq.Comparison{comp("X", cq.Le, "Y")})
	if a.EquivalentTo(c) {
		t.Error("different sets reported equivalent")
	}
	u1 := NewSet([]cq.Comparison{comp("X", cq.Lt, "X")})
	u2 := NewSet([]cq.Comparison{comp("3", cq.Gt, "5")})
	if !u1.EquivalentTo(u2) {
		t.Error("two unsatisfiable sets should be equivalent")
	}
}

func TestAddTermAndAccessors(t *testing.T) {
	s := NewSet([]cq.Comparison{comp("X", cq.Lt, "Y")}, term("Z"))
	if len(s.Terms()) != 3 {
		t.Fatalf("Terms = %v", s.Terms())
	}
	s.AddTerm(term("Z")) // idempotent
	if len(s.Terms()) != 3 {
		t.Fatal("AddTerm duplicated a term")
	}
	if len(s.Comparisons()) != 1 {
		t.Fatalf("Comparisons = %v", s.Comparisons())
	}
	cl := s.Clone()
	cl.Add(comp("Y", cq.Lt, "X"))
	if !s.Satisfiable() {
		t.Fatal("Clone shares state")
	}
	if cl.Satisfiable() {
		t.Fatal("clone should be unsatisfiable")
	}
	_ = s.String()
}

func TestCloneAfterCloseIsIndependent(t *testing.T) {
	s := NewSet([]cq.Comparison{comp("X", cq.Lt, "Y")})
	if !s.Satisfiable() { // forces closure
		t.Fatal("sat expected")
	}
	cl := s.Clone()
	cl.Add(comp("Y", cq.Lt, "X"))
	if cl.Satisfiable() {
		t.Fatal("clone misses added constraint")
	}
	if !s.Satisfiable() {
		t.Fatal("original polluted by clone")
	}
}

func TestLinearizationComparisons(t *testing.T) {
	l := Linearization{{term("X"), term("Y")}, {term("Z")}}
	comps := l.Comparisons()
	s := NewSet(comps)
	if !s.Implies(comp("X", cq.Eq, "Y")) || !s.Implies(comp("X", cq.Lt, "Z")) || !s.Implies(comp("Y", cq.Lt, "Z")) {
		t.Fatalf("linearization constraints wrong: %v", comps)
	}
	if l.String() != "X = Y < Z" {
		t.Fatalf("String = %q", l.String())
	}
}

// fubini returns the ordered Bell numbers 1, 1, 3, 13, 75, 541, ... which
// count total preorders of an n-element set.
func fubini(n int) int {
	switch n {
	case 0:
		return 1
	case 1:
		return 1
	case 2:
		return 3
	case 3:
		return 13
	case 4:
		return 75
	case 5:
		return 541
	}
	return -1
}

func TestEnumerateLinearizationsCount(t *testing.T) {
	for n := 1; n <= 4; n++ {
		var terms []cq.Term
		for i := 0; i < n; i++ {
			terms = append(terms, cq.Var("V"+string(rune('0'+i))))
		}
		got := CountLinearizations(terms, nil)
		if want := fubini(n); got != want {
			t.Errorf("n=%d: %d linearizations, want %d (Fubini)", n, got, want)
		}
	}
}

func TestMergeSubst(t *testing.T) {
	l := Linearization{{term("X"), term("Y"), term("5")}, {term("Z")}}
	s := l.MergeSubst()
	// X and Y collapse to the constant 5; Z stays free.
	if s.ApplyTerm(term("X")) != term("5") || s.ApplyTerm(term("Y")) != term("5") {
		t.Fatalf("MergeSubst = %v", s)
	}
	if _, bound := s["Z"]; bound {
		t.Fatalf("singleton block should not bind: %v", s)
	}
	// All-variable block: first term is the representative.
	l2 := Linearization{{term("A"), term("B")}}
	s2 := l2.MergeSubst()
	if s2.ApplyTerm(term("B")) != term("A") {
		t.Fatalf("MergeSubst = %v", s2)
	}
}

func TestEnumerateLinearizationsRespectsBase(t *testing.T) {
	terms := []cq.Term{term("X"), term("Y")}
	base := NewSet([]cq.Comparison{comp("X", cq.Lt, "Y")})
	var got []string
	EnumerateLinearizations(terms, base, func(l Linearization) bool {
		got = append(got, l.String())
		return true
	})
	if len(got) != 1 || got[0] != "X < Y" {
		t.Fatalf("linearizations = %v", got)
	}
}

func TestEnumerateLinearizationsConstants(t *testing.T) {
	// Constants force their natural order; X can sit in 5 positions
	// relative to 1 < 2: before, =1, between, =2, after.
	terms := []cq.Term{term("1"), term("2"), term("X")}
	if got := CountLinearizations(terms, nil); got != 5 {
		t.Fatalf("count = %d want 5", got)
	}
}

func TestEnumerateLinearizationsEarlyStop(t *testing.T) {
	terms := []cq.Term{term("X"), term("Y"), term("Z")}
	calls := 0
	EnumerateLinearizations(terms, nil, func(Linearization) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

func TestEnumerateDedupesTerms(t *testing.T) {
	terms := []cq.Term{term("X"), term("X"), term("Y")}
	if got := CountLinearizations(terms, nil); got != 3 {
		t.Fatalf("count = %d want 3", got)
	}
}

// Property: every enumerated linearization is consistent with the base and
// decides every pair of terms.
func TestQuickLinearizationsTotalAndConsistent(t *testing.T) {
	f := func(ltXY, ltYZ bool) bool {
		var comps []cq.Comparison
		if ltXY {
			comps = append(comps, comp("X", cq.Lt, "Y"))
		}
		if ltYZ {
			comps = append(comps, comp("Y", cq.Lt, "Z"))
		}
		base := NewSet(comps)
		terms := []cq.Term{term("X"), term("Y"), term("Z")}
		ok := true
		EnumerateLinearizations(terms, base, func(l Linearization) bool {
			s := l.Set()
			for _, c := range comps {
				if !s.Implies(c) && s.Satisfiable() {
					// The linearization must refine the base.
					full := base.Clone()
					for _, lc := range l.Comparisons() {
						full.Add(lc)
					}
					if !full.Satisfiable() {
						ok = false
					}
				}
			}
			// Totality: every pair decided.
			for i := range terms {
				for j := i + 1; j < len(terms); j++ {
					a, b := terms[i], terms[j]
					decided := s.Implies(cq.Comparison{Left: a, Op: cq.Lt, Right: b}) ||
						s.Implies(cq.Comparison{Left: b, Op: cq.Lt, Right: a}) ||
						s.Implies(cq.Comparison{Left: a, Op: cq.Eq, Right: b})
					if !decided {
						ok = false
					}
				}
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: Implies is reflexive-transitively coherent — if s implies a<b
// and b<c then it implies a<c.
func TestQuickImpliesTransitive(t *testing.T) {
	f := func(perm uint8) bool {
		names := []string{"A", "B", "C", "D"}
		i := int(perm) % 4
		comps := []cq.Comparison{
			comp(names[i], cq.Lt, names[(i+1)%4]),
			comp(names[(i+1)%4], cq.Lt, names[(i+2)%4]),
		}
		s := NewSet(comps)
		return s.Implies(comp(names[i], cq.Lt, names[(i+2)%4]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
