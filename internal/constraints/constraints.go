// Package constraints decides satisfiability and implication for
// conjunctions of arithmetic comparison predicates (<, <=, >, >=, =, !=)
// over a densely ordered domain, as needed for conjunctive queries with
// comparisons ("Answering Queries Using Views", PODS 1995, Section on
// queries with arithmetic comparisons).
//
// A Set holds a conjunction of comparisons over variables and constants.
// Satisfiability and implication are decided by computing the transitive
// closure of the induced <=/< graph (a Floyd–Warshall pass over the
// {<=, <} semiring), with the total order on constants added implicitly.
// Density of the domain guarantees that the closure test is complete: a
// conjunction is satisfiable iff no term is strictly below itself and no
// disequated pair is forced equal.
package constraints

import (
	"sort"
	"strings"

	"repro/internal/cq"
)

// Set is a conjunction of comparison constraints. The zero value is not
// usable; construct with NewSet.
type Set struct {
	comps []cq.Comparison
	terms []cq.Term
	index map[cq.Term]int

	dirty bool
	le    [][]bool // le[i][j]: terms[i] <= terms[j] derivable
	lt    [][]bool // lt[i][j]: terms[i] <  terms[j] derivable
	ne    [][]bool // ne[i][j]: terms[i] != terms[j] asserted (not closed)
}

// NewSet builds a constraint set from the given comparisons. Additional
// terms may be registered so that implication questions about them can be
// asked even if they do not appear in any comparison.
func NewSet(comps []cq.Comparison, extraTerms ...cq.Term) *Set {
	s := &Set{index: make(map[cq.Term]int), dirty: true}
	for _, t := range extraTerms {
		s.addTerm(t)
	}
	for _, c := range comps {
		s.Add(c)
	}
	return s
}

// Add appends one comparison to the conjunction.
func (s *Set) Add(c cq.Comparison) {
	s.addTerm(c.Left)
	s.addTerm(c.Right)
	s.comps = append(s.comps, c)
	s.dirty = true
}

// AddTerm registers a term without constraining it.
func (s *Set) AddTerm(t cq.Term) {
	s.addTerm(t)
}

// Comparisons returns the asserted comparisons (not the closure).
func (s *Set) Comparisons() []cq.Comparison {
	out := make([]cq.Comparison, len(s.comps))
	copy(out, s.comps)
	return out
}

// Terms returns all registered terms.
func (s *Set) Terms() []cq.Term {
	out := make([]cq.Term, len(s.terms))
	copy(out, s.terms)
	return out
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	return NewSet(s.comps, s.terms...)
}

func (s *Set) addTerm(t cq.Term) int {
	if i, ok := s.index[t]; ok {
		return i
	}
	i := len(s.terms)
	s.terms = append(s.terms, t)
	s.index[t] = i
	s.dirty = true
	return i
}

// close recomputes the transitive closure matrices.
func (s *Set) close() {
	if !s.dirty {
		return
	}
	n := len(s.terms)
	s.le = boolMatrix(n)
	s.lt = boolMatrix(n)
	s.ne = boolMatrix(n)
	for i := 0; i < n; i++ {
		s.le[i][i] = true
	}
	// Implicit total order on constants.
	for i := 0; i < n; i++ {
		if !s.terms[i].IsConst() {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || !s.terms[j].IsConst() {
				continue
			}
			switch cq.CompareConst(s.terms[i], s.terms[j]) {
			case -1:
				s.lt[i][j], s.le[i][j] = true, true
				s.ne[i][j], s.ne[j][i] = true, true
			case 0:
				s.le[i][j] = true
			case 1:
				// handled symmetrically when (j,i) is visited
			}
		}
	}
	// Asserted comparisons.
	for _, c := range s.comps {
		i, j := s.index[c.Left], s.index[c.Right]
		switch c.Op {
		case cq.Lt:
			s.lt[i][j], s.le[i][j] = true, true
		case cq.Le:
			s.le[i][j] = true
		case cq.Gt:
			s.lt[j][i], s.le[j][i] = true, true
		case cq.Ge:
			s.le[j][i] = true
		case cq.Eq:
			s.le[i][j], s.le[j][i] = true, true
		case cq.Ne:
			s.ne[i][j], s.ne[j][i] = true, true
		}
	}
	// Floyd–Warshall over the ordered semiring:
	//   le := le ∘ le,   lt := (le ∘ lt) ∪ (lt ∘ le).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !s.le[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if !s.le[k][j] {
					continue
				}
				s.le[i][j] = true
				if s.lt[i][k] || s.lt[k][j] {
					s.lt[i][j] = true
				}
			}
		}
	}
	s.dirty = false
}

func boolMatrix(n int) [][]bool {
	m := make([][]bool, n)
	cells := make([]bool, n*n)
	for i := range m {
		m[i], cells = cells[:n], cells[n:]
	}
	return m
}

// Satisfiable reports whether the conjunction has a model over a dense
// linear order extending the order on constants.
func (s *Set) Satisfiable() bool {
	s.close()
	n := len(s.terms)
	for i := 0; i < n; i++ {
		if s.lt[i][i] {
			return false
		}
		for j := 0; j < n; j++ {
			if s.ne[i][j] && s.le[i][j] && s.le[j][i] {
				return false
			}
		}
	}
	return true
}

// Implies reports whether every model of the set satisfies c. It is decided
// as unsatisfiability of the set extended with the negation of c; the
// comparison language is closed under negation, so this is exact.
func (s *Set) Implies(c cq.Comparison) bool {
	if !s.Satisfiable() {
		return true
	}
	neg := cq.Comparison{Left: c.Left, Op: c.Op.Negate(), Right: c.Right}
	ext := s.Clone()
	ext.Add(neg)
	return !ext.Satisfiable()
}

// ImpliesAll reports whether the set implies every comparison in cs.
func (s *Set) ImpliesAll(cs []cq.Comparison) bool {
	for _, c := range cs {
		if !s.Implies(c) {
			return false
		}
	}
	return true
}

// EquivalentTo reports whether two sets have the same models over their
// combined terms: each implies all comparisons of the other.
func (s *Set) EquivalentTo(t *Set) bool {
	if !s.Satisfiable() || !t.Satisfiable() {
		return s.Satisfiable() == t.Satisfiable()
	}
	return s.ImpliesAll(t.comps) && t.ImpliesAll(s.comps)
}

// String renders the asserted comparisons deterministically.
func (s *Set) String() string {
	parts := make([]string, len(s.comps))
	for i, c := range s.comps {
		parts[i] = c.Normalize().String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
