// Package cost provides a simple cardinality-based cost model for choosing
// among rewritings — the query-optimisation use of the paper's results.
// Costs estimate the work of left-deep index-nested-loop evaluation, which
// is how internal/datalog executes conjunctive queries.
//
// The model is deliberately simple (independence and uniformity
// assumptions, per-column distinct counts) but is honest about its output:
// it ranks plans; it does not predict wall-clock time.
package cost

import (
	"math"

	"repro/internal/cq"
	"repro/internal/storage"
)

// Catalog holds per-relation statistics used by the estimator.
type Catalog struct {
	rows     map[string]float64
	distinct map[string][]float64 // per column
}

// NewCatalog builds statistics from a database: relation cardinalities and
// per-column distinct-value counts.
func NewCatalog(db *storage.Database) *Catalog {
	c := &Catalog{
		rows:     make(map[string]float64),
		distinct: make(map[string][]float64),
	}
	for _, pred := range db.Predicates() {
		rel := db.Relation(pred)
		c.rows[pred] = float64(rel.Len())
		d := make([]float64, rel.Arity())
		for col := 0; col < rel.Arity(); col++ {
			seen := make(map[string]bool)
			for _, t := range rel.Tuples() {
				seen[t[col]] = true
			}
			d[col] = math.Max(1, float64(len(seen)))
		}
		c.distinct[pred] = d
	}
	return c
}

// NewRowCatalog builds a rows-only catalog: relation cardinalities without
// per-column distinct counts. With preds given it covers only those
// predicates (O(|preds|) — the per-query case); with none it covers the
// whole database. It is cheap enough to derive per evaluation, which is
// how EvalQuery orders joins; distinct counts default to 1 and ordering
// degrades to bound-columns-first with smaller-relation tie-breaks.
func NewRowCatalog(db *storage.Database, preds ...string) *Catalog {
	c := &Catalog{
		rows:     make(map[string]float64),
		distinct: make(map[string][]float64),
	}
	if len(preds) == 0 {
		preds = db.Predicates()
	}
	for _, pred := range preds {
		if rel := db.Relation(pred); rel != nil {
			c.rows[pred] = float64(rel.Len())
		}
	}
	return c
}

// SetRelation registers statistics manually (for what-if analysis).
func (c *Catalog) SetRelation(pred string, rows float64, distinct []float64) {
	c.rows[pred] = rows
	c.distinct[pred] = distinct
}

// Clone returns an independent copy of the catalog, so what-if overrides
// (SetRelation) never leak into a shared instance.
func (c *Catalog) Clone() *Catalog {
	n := &Catalog{
		rows:     make(map[string]float64, len(c.rows)),
		distinct: make(map[string][]float64, len(c.distinct)),
	}
	for pred, r := range c.rows {
		n.rows[pred] = r
	}
	for pred, d := range c.distinct {
		n.distinct[pred] = append([]float64(nil), d...)
	}
	return n
}

// Rows returns the cardinality of a relation (1 if unknown — a missing
// relation joins like a singleton so unknown predicates do not dominate).
func (c *Catalog) Rows(pred string) float64 {
	if r, ok := c.rows[pred]; ok {
		return r
	}
	return 1
}

// Distinct returns the number of distinct values in a column (1 if
// unknown). The physical-plan compiler uses it to pick the most selective
// index probe column and to refine join-order tie-breaks.
func (c *Catalog) Distinct(pred string, col int) float64 {
	return c.distinctAt(pred, col)
}

func (c *Catalog) distinctAt(pred string, col int) float64 {
	if d, ok := c.distinct[pred]; ok && col < len(d) {
		return d[col]
	}
	return 1
}

// Estimate is the estimated evaluation of one query: the number of
// intermediate tuples produced by a left-deep plan in the datalog
// evaluator's greedy join order.
type Estimate struct {
	// Cost is the total intermediate-result size (the quantity a nested-
	// loop evaluator is proportional to).
	Cost float64
	// Cardinality is the estimated output size before projection.
	Cardinality float64
	// Order is the join order used, as body indexes.
	Order []int
}

// EstimateQuery costs a conjunctive query against the catalog.
func EstimateQuery(c *Catalog, q *cq.Query) Estimate {
	return EstimateQueryWith(c, q, nil)
}

// EstimateQueryWith is EstimateQuery with the listed variables treated as
// bound before the first join step — the cost of a parameterized plan whose
// parameter slots are filled at execution time. Bound columns filter by
// their distinct counts exactly like constants, so point-lookup templates
// cost like point lookups rather than full scans.
func EstimateQueryWith(c *Catalog, q *cq.Query, boundVars []string) Estimate {
	type state struct {
		bound map[string]bool
	}
	st := state{bound: make(map[string]bool, len(boundVars))}
	for _, v := range boundVars {
		st.bound[v] = true
	}
	remaining := make([]int, 0, len(q.Body))
	for i := range q.Body {
		remaining = append(remaining, i)
	}
	est := Estimate{Cardinality: 1}
	for len(remaining) > 0 {
		// Mirror datalog.planOrder: most bound arguments first, then
		// smaller relation.
		best, bestScore, bestRows := -1, -1.0, 0.0
		for _, idx := range remaining {
			a := q.Body[idx]
			score := 0.0
			for _, t := range a.Args {
				if t.IsConst() || t.IsVar() && st.bound[t.Lex] {
					score++
				}
			}
			rows := c.Rows(a.Pred)
			if best == -1 || score > bestScore || score == bestScore && rows < bestRows {
				best, bestScore, bestRows = idx, score, rows
			}
		}
		a := q.Body[best]
		// Selectivity: each bound column filters by its distinct count;
		// constants likewise.
		size := c.Rows(a.Pred)
		for col, t := range a.Args {
			if t.IsConst() || t.IsVar() && st.bound[t.Lex] {
				size /= c.distinctAt(a.Pred, col)
			}
		}
		size = math.Max(size, 1.0/c.RowsSafe(a.Pred))
		est.Cardinality *= size
		est.Cost += est.Cardinality
		est.Order = append(est.Order, best)
		for _, t := range a.Args {
			if t.IsVar() {
				st.bound[t.Lex] = true
			}
		}
		remaining = removeInt(remaining, best)
	}
	// Comparisons filter the final result; assume 1/3 selectivity each
	// (the classical System R default).
	for range q.Comparisons {
		est.Cardinality /= 3
	}
	return est
}

// PartitionColumn picks the column a relation should be hash-partitioned
// by. probeCols, when given, is an ordered preference list (compiled plans
// emit their primary probe or join column first — see
// datalog.CompiledPlan.PartitionHints): the first in-range candidate wins,
// because partitioning on the column the plan probes next is what keeps
// probes shard-local and spares the executor an exchange. Without probe
// information the catalog falls back to statistics: the most distinct
// column, which spreads tuples evenly across shards. Ties break toward the
// lower column for determinism; unknown relations partition by column 0.
func (c *Catalog) PartitionColumn(pred string, probeCols []int) int {
	d, ok := c.distinct[pred]
	if !ok || len(d) == 0 {
		if len(probeCols) > 0 {
			return probeCols[0]
		}
		return 0
	}
	for _, col := range probeCols {
		if col >= 0 && col < len(d) {
			return col
		}
	}
	best, bestDistinct := 0, -1.0
	for col := range d {
		if d[col] > bestDistinct {
			best, bestDistinct = col, d[col]
		}
	}
	return best
}

// PartitionColumns applies PartitionColumn to every known relation,
// returning the partition-column policy storage.Partition consumes.
// probeCols, when non-nil, restricts each relation's candidates to the
// columns some plan actually probes.
func (c *Catalog) PartitionColumns(probeCols map[string][]int) map[string]int {
	out := make(map[string]int, len(c.rows))
	for pred := range c.rows {
		out[pred] = c.PartitionColumn(pred, probeCols[pred])
	}
	return out
}

// RowsSafe is Rows guarded against zero.
func (c *Catalog) RowsSafe(pred string) float64 {
	return math.Max(1, c.Rows(pred))
}

// EstimateUnion costs a union as the sum of member costs.
func EstimateUnion(c *Catalog, u *cq.Union) Estimate {
	return EstimateUnionWith(c, u, nil)
}

// EstimateUnionWith is EstimateUnion with pre-bound variables (see
// EstimateQueryWith).
func EstimateUnionWith(c *Catalog, u *cq.Union, boundVars []string) Estimate {
	var total Estimate
	for _, m := range u.Queries {
		e := EstimateQueryWith(c, m, boundVars)
		total.Cost += e.Cost
		total.Cardinality += e.Cardinality
	}
	return total
}

// Choose returns the index of the cheapest query among candidates, along
// with all estimates. It is the decision procedure an optimiser would run
// over the rewritings produced by the core engine.
func Choose(c *Catalog, candidates []*cq.Query) (best int, estimates []Estimate) {
	return ChooseWith(c, candidates, nil)
}

// ChooseWith is Choose with pre-bound variables (see EstimateQueryWith):
// the decision procedure for parameterized plan candidates, whose parameter
// slots are bound on every execution.
func ChooseWith(c *Catalog, candidates []*cq.Query, boundVars []string) (best int, estimates []Estimate) {
	best = -1
	estimates = make([]Estimate, len(candidates))
	for i, q := range candidates {
		estimates[i] = EstimateQueryWith(c, q, boundVars)
		if best == -1 || estimates[i].Cost < estimates[best].Cost {
			best = i
		}
	}
	return best, estimates
}

func removeInt(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
