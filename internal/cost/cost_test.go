package cost

import (
	"fmt"
	"testing"

	"repro/internal/cq"
	"repro/internal/storage"
)

func mustQ(src string) *cq.Query { return cq.MustParseQuery(src) }

func sampleDB() *storage.Database {
	db := storage.NewDatabase()
	for i := 0; i < 100; i++ {
		db.Insert("big", storage.Tuple{tupleVal("a", i), tupleVal("b", i%10)})
	}
	for i := 0; i < 5; i++ {
		db.Insert("small", storage.Tuple{tupleVal("a", i)})
	}
	return db
}

func tupleVal(p string, i int) string { return p + string(rune('0'+i%10)) + string(rune('0'+i/10%10)) }

func TestCatalogStats(t *testing.T) {
	c := NewCatalog(sampleDB())
	if c.Rows("big") != 100 || c.Rows("small") != 5 {
		t.Fatalf("rows: big=%v small=%v", c.Rows("big"), c.Rows("small"))
	}
	if c.Rows("missing") != 1 {
		t.Fatal("missing relation should default to 1")
	}
	if d := c.distinctAt("big", 1); d != 10 {
		t.Fatalf("distinct(big,1) = %v", d)
	}
}

func TestEstimateQueryPrefersSelectiveDriver(t *testing.T) {
	c := NewCatalog(sampleDB())
	q := mustQ("q(X) :- big(X,Y), small(X)")
	e := EstimateQuery(c, q)
	if len(e.Order) != 2 {
		t.Fatalf("order = %v", e.Order)
	}
	// The evaluator starts with the smaller relation (index 1 = small).
	if e.Order[0] != 1 {
		t.Fatalf("driver should be small, order = %v", e.Order)
	}
	if e.Cost <= 0 || e.Cardinality <= 0 {
		t.Fatalf("estimate = %+v", e)
	}
}

func TestEstimateConstantsFilter(t *testing.T) {
	c := NewCatalog(sampleDB())
	all := EstimateQuery(c, mustQ("q(X,Y) :- big(X,Y)"))
	filtered := EstimateQuery(c, mustQ("q(X) :- big(X,b3)"))
	if filtered.Cardinality >= all.Cardinality {
		t.Fatalf("constant filter did not reduce cardinality: %v vs %v", filtered.Cardinality, all.Cardinality)
	}
}

func TestEstimateComparisonsReduce(t *testing.T) {
	c := NewCatalog(sampleDB())
	plain := EstimateQuery(c, mustQ("q(X,Y) :- big(X,Y)"))
	comp := EstimateQuery(c, mustQ("q(X,Y) :- big(X,Y), X < Y"))
	if comp.Cardinality >= plain.Cardinality {
		t.Fatal("comparison did not reduce cardinality")
	}
}

func TestChoosePrefersMaterializedJoin(t *testing.T) {
	// Simulate a pre-joined view that is much smaller than the cross of
	// its base relations.
	c := NewCatalog(storage.NewDatabase())
	c.SetRelation("r", 10000, []float64{1000, 500})
	c.SetRelation("s", 10000, []float64{500, 1000})
	c.SetRelation("v_joined", 800, []float64{600, 600})
	direct := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	viaView := mustQ("q(X,Y) :- v_joined(X,Y)")
	best, ests := Choose(c, []*cq.Query{direct, viaView})
	if best != 1 {
		t.Fatalf("Choose picked %d (estimates %+v)", best, ests)
	}
}

func TestEstimateUnion(t *testing.T) {
	c := NewCatalog(sampleDB())
	u := cq.NewUnion(mustQ("q(X) :- small(X)"), mustQ("q(X) :- big(X,Y)"))
	e := EstimateUnion(c, u)
	single := EstimateQuery(c, mustQ("q(X) :- small(X)"))
	if e.Cost <= single.Cost {
		t.Fatal("union cost should exceed a single member")
	}
}

func TestEstimateQueryWithBoundParams(t *testing.T) {
	c := NewCatalog(sampleDB())
	q := mustQ("q(X) :- big(X,P)")
	free := EstimateQuery(c, q)
	bound := EstimateQueryWith(c, q, []string{"P"})
	if bound.Cardinality >= free.Cardinality || bound.Cost >= free.Cost {
		t.Fatalf("pre-bound parameter did not filter: bound=%+v free=%+v", bound, free)
	}
	// A bound parameter behaves like the equivalent constant selection.
	asConst := EstimateQuery(c, mustQ("q(X) :- big(X,b3)"))
	if bound.Cardinality != asConst.Cardinality {
		t.Fatalf("bound param %v != constant %v", bound.Cardinality, asConst.Cardinality)
	}
}

func TestEstimateQueryWithBoundDrivesJoinOrder(t *testing.T) {
	c := NewCatalog(sampleDB())
	q := mustQ("q(Y) :- big(P,Y), small(Z)")
	e := EstimateQueryWith(c, q, []string{"P"})
	// With P bound, big has a bound column and must drive despite being the
	// larger relation.
	if e.Order[0] != 0 {
		t.Fatalf("order = %v, want the parameter-bound atom first", e.Order)
	}
}

func TestChooseWithBoundParams(t *testing.T) {
	// v_wide is cheaper scanned cold, but with the parameter bound the
	// highly selective v_sel wins: ChooseWith must flip the decision.
	c := NewCatalog(storage.NewDatabase())
	c.SetRelation("v_wide", 1000, []float64{2, 2})
	c.SetRelation("v_sel", 2000, []float64{2000, 2000})
	a := mustQ("q(X) :- v_wide(X,P)")
	b := mustQ("q(X) :- v_sel(X,P)")
	cold, _ := Choose(c, []*cq.Query{a, b})
	warm, ests := ChooseWith(c, []*cq.Query{a, b}, []string{"P"})
	if cold != 0 || warm != 1 {
		t.Fatalf("cold=%d warm=%d (estimates %+v), want 0 then 1", cold, warm, ests)
	}
}

func TestEstimateUnionWith(t *testing.T) {
	c := NewCatalog(sampleDB())
	u := cq.NewUnion(mustQ("q(X) :- big(X,P)"), mustQ("q(X) :- small(X)"))
	free := EstimateUnion(c, u)
	bound := EstimateUnionWith(c, u, []string{"P"})
	if bound.Cost >= free.Cost {
		t.Fatalf("bound union cost %v, want below %v", bound.Cost, free.Cost)
	}
}

func TestCatalogClone(t *testing.T) {
	c := NewCatalog(sampleDB())
	n := c.Clone()
	n.SetRelation("big", 7, []float64{7, 7})
	if c.Rows("big") != 100 || c.Distinct("big", 1) != 10 {
		t.Fatalf("Clone leaked overrides into the original: rows=%v", c.Rows("big"))
	}
	if n.Rows("big") != 7 || n.Rows("small") != 5 {
		t.Fatalf("clone stats wrong: big=%v small=%v", n.Rows("big"), n.Rows("small"))
	}
}

func TestChooseEmpty(t *testing.T) {
	c := NewCatalog(storage.NewDatabase())
	best, ests := Choose(c, nil)
	if best != -1 || len(ests) != 0 {
		t.Fatalf("Choose on empty = %d, %v", best, ests)
	}
}

func TestPartitionColumnPolicy(t *testing.T) {
	db := storage.NewDatabase()
	for i := 0; i < 100; i++ {
		// col 0: 100 distinct, col 1: 5 distinct.
		db.Insert("r", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i % 5)})
	}
	c := NewCatalog(db)
	if got := c.PartitionColumn("r", nil); got != 0 {
		t.Fatalf("PartitionColumn(r) = %d, want the most-distinct column 0", got)
	}
	// Restricted to probed columns, the policy must stay inside them.
	if got := c.PartitionColumn("r", []int{1}); got != 1 {
		t.Fatalf("PartitionColumn(r, probe=[1]) = %d, want 1", got)
	}
	if got := c.PartitionColumn("unknown", nil); got != 0 {
		t.Fatalf("PartitionColumn(unknown) = %d, want 0", got)
	}
	if got := c.PartitionColumn("unknown", []int{2}); got != 2 {
		t.Fatalf("PartitionColumn(unknown, probe=[2]) = %d, want 2", got)
	}
	cols := c.PartitionColumns(map[string][]int{"r": {0, 1}})
	if cols["r"] != 0 {
		t.Fatalf("PartitionColumns[r] = %d, want 0", cols["r"])
	}
	// Out-of-range probe columns are ignored, not chosen.
	if got := c.PartitionColumn("r", []int{9}); got != 0 {
		t.Fatalf("PartitionColumn(r, probe=[9]) = %d, want fallback 0", got)
	}
}
