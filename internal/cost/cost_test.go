package cost

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/storage"
)

func mustQ(src string) *cq.Query { return cq.MustParseQuery(src) }

func sampleDB() *storage.Database {
	db := storage.NewDatabase()
	for i := 0; i < 100; i++ {
		db.Insert("big", storage.Tuple{tupleVal("a", i), tupleVal("b", i%10)})
	}
	for i := 0; i < 5; i++ {
		db.Insert("small", storage.Tuple{tupleVal("a", i)})
	}
	return db
}

func tupleVal(p string, i int) string { return p + string(rune('0'+i%10)) + string(rune('0'+i/10%10)) }

func TestCatalogStats(t *testing.T) {
	c := NewCatalog(sampleDB())
	if c.Rows("big") != 100 || c.Rows("small") != 5 {
		t.Fatalf("rows: big=%v small=%v", c.Rows("big"), c.Rows("small"))
	}
	if c.Rows("missing") != 1 {
		t.Fatal("missing relation should default to 1")
	}
	if d := c.distinctAt("big", 1); d != 10 {
		t.Fatalf("distinct(big,1) = %v", d)
	}
}

func TestEstimateQueryPrefersSelectiveDriver(t *testing.T) {
	c := NewCatalog(sampleDB())
	q := mustQ("q(X) :- big(X,Y), small(X)")
	e := EstimateQuery(c, q)
	if len(e.Order) != 2 {
		t.Fatalf("order = %v", e.Order)
	}
	// The evaluator starts with the smaller relation (index 1 = small).
	if e.Order[0] != 1 {
		t.Fatalf("driver should be small, order = %v", e.Order)
	}
	if e.Cost <= 0 || e.Cardinality <= 0 {
		t.Fatalf("estimate = %+v", e)
	}
}

func TestEstimateConstantsFilter(t *testing.T) {
	c := NewCatalog(sampleDB())
	all := EstimateQuery(c, mustQ("q(X,Y) :- big(X,Y)"))
	filtered := EstimateQuery(c, mustQ("q(X) :- big(X,b3)"))
	if filtered.Cardinality >= all.Cardinality {
		t.Fatalf("constant filter did not reduce cardinality: %v vs %v", filtered.Cardinality, all.Cardinality)
	}
}

func TestEstimateComparisonsReduce(t *testing.T) {
	c := NewCatalog(sampleDB())
	plain := EstimateQuery(c, mustQ("q(X,Y) :- big(X,Y)"))
	comp := EstimateQuery(c, mustQ("q(X,Y) :- big(X,Y), X < Y"))
	if comp.Cardinality >= plain.Cardinality {
		t.Fatal("comparison did not reduce cardinality")
	}
}

func TestChoosePrefersMaterializedJoin(t *testing.T) {
	// Simulate a pre-joined view that is much smaller than the cross of
	// its base relations.
	c := NewCatalog(storage.NewDatabase())
	c.SetRelation("r", 10000, []float64{1000, 500})
	c.SetRelation("s", 10000, []float64{500, 1000})
	c.SetRelation("v_joined", 800, []float64{600, 600})
	direct := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	viaView := mustQ("q(X,Y) :- v_joined(X,Y)")
	best, ests := Choose(c, []*cq.Query{direct, viaView})
	if best != 1 {
		t.Fatalf("Choose picked %d (estimates %+v)", best, ests)
	}
}

func TestEstimateUnion(t *testing.T) {
	c := NewCatalog(sampleDB())
	u := cq.NewUnion(mustQ("q(X) :- small(X)"), mustQ("q(X) :- big(X,Y)"))
	e := EstimateUnion(c, u)
	single := EstimateQuery(c, mustQ("q(X) :- small(X)"))
	if e.Cost <= single.Cost {
		t.Fatal("union cost should exceed a single member")
	}
}

func TestChooseEmpty(t *testing.T) {
	c := NewCatalog(storage.NewDatabase())
	best, ests := Choose(c, nil)
	if best != -1 || len(ests) != 0 {
		t.Fatalf("Choose on empty = %d, %v", best, ests)
	}
}
