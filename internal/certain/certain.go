// Package certain computes certain answers of a query over materialised
// view extents and compares them against direct evaluation — the semantic
// yardstick for maximally-contained rewritings (experiment F5).
//
// Under the open-world assumption with sound views (the view extents are
// exactly the views applied to some unknown database), the certain answers
// of a conjunctive query equal the answers of its maximally-contained
// rewriting evaluated over the extents (Abiteboul & Duschka). The package
// offers that route via MiniCon and, independently, via inverse rules, so
// the two can cross-check each other.
package certain

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/inverserules"
	"repro/internal/minicon"
	"repro/internal/storage"
)

// ViaMiniCon computes the certain answers of q from the view extents in
// viewDB by evaluating the MiniCon maximally-contained rewriting.
func ViaMiniCon(q *cq.Query, views []*cq.Query, viewDB *storage.Database) ([]storage.Tuple, error) {
	vs, err := core.NewViewSet(views...)
	if err != nil {
		return nil, err
	}
	u, _, err := minicon.Rewrite(q, vs, minicon.Options{VerifyCandidates: true})
	if err != nil {
		return nil, err
	}
	return datalog.EvalUnion(viewDB, u), nil
}

// ViaInverseRules computes the certain answers of q from the view extents
// using the inverse-rules program.
func ViaInverseRules(q *cq.Query, views []*cq.Query, viewDB *storage.Database) ([]storage.Tuple, error) {
	return inverserules.Answer(q, views, viewDB)
}

// Report summarises one certain-answer experiment.
type Report struct {
	Direct        int // |q(D)| over the base database
	CertainMC     int // via MiniCon MCR
	CertainIR     int // via inverse rules
	MethodsAgree  bool
	SoundMC       bool // certain(MC) ⊆ direct
	SoundIR       bool // certain(IR) ⊆ direct
	ExactRecovery bool // certain == direct
}

// Compare materialises the views over base, computes certain answers by
// both methods, and checks the semantic invariants: both methods agree and
// are sound with respect to direct evaluation.
func Compare(q *cq.Query, views []*cq.Query, base *storage.Database) (Report, error) {
	var rep Report
	viewDB, err := datalog.MaterializeViews(base, views)
	if err != nil {
		return rep, err
	}
	direct := datalog.EvalQuery(base, q)
	mc, err := ViaMiniCon(q, views, viewDB)
	if err != nil {
		return rep, fmt.Errorf("certain: minicon route: %w", err)
	}
	ir, err := ViaInverseRules(q, views, viewDB)
	if err != nil {
		return rep, fmt.Errorf("certain: inverse-rules route: %w", err)
	}
	rep.Direct = len(direct)
	rep.CertainMC = len(mc)
	rep.CertainIR = len(ir)
	rep.MethodsAgree = storage.TuplesEqual(mc, ir)
	rep.SoundMC = subset(mc, direct)
	rep.SoundIR = subset(ir, direct)
	rep.ExactRecovery = storage.TuplesEqual(mc, direct)
	return rep, nil
}

func subset(a, b []storage.Tuple) bool {
	in := make(map[string]bool, len(b))
	for _, t := range b {
		in[t.Key()] = true
	}
	for _, t := range a {
		if !in[t.Key()] {
			return false
		}
	}
	return true
}
