package certain

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/storage"
	"repro/internal/workload"
)

func mustQ(src string) *cq.Query { return cq.MustParseQuery(src) }

func TestCompareExactRecovery(t *testing.T) {
	// Views preserve all information needed by the query: certain answers
	// equal direct answers.
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	base.Insert("r", storage.Tuple{"b", "n"})
	base.Insert("s", storage.Tuple{"m", "x"})
	base.Insert("s", storage.Tuple{"n", "y"})
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	views := []*cq.Query{mustQ("v1(A,B) :- r(A,B)"), mustQ("v2(A,B) :- s(A,B)")}
	rep, err := Compare(q, views, base)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MethodsAgree {
		t.Fatalf("methods disagree: %+v", rep)
	}
	if !rep.SoundMC || !rep.SoundIR {
		t.Fatalf("unsound: %+v", rep)
	}
	if !rep.ExactRecovery || rep.Direct != 2 {
		t.Fatalf("expected exact recovery: %+v", rep)
	}
}

func TestCompareLossyViews(t *testing.T) {
	// The view hides the join column: certain answers are empty even
	// though direct answers exist.
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	base.Insert("s", storage.Tuple{"m", "x"})
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	views := []*cq.Query{mustQ("v1(A) :- r(A,B)"), mustQ("v2(B) :- s(A,B)")}
	rep, err := Compare(q, views, base)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Direct != 1 || rep.CertainMC != 0 || rep.CertainIR != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if !rep.MethodsAgree || !rep.SoundMC || !rep.SoundIR || rep.ExactRecovery {
		t.Fatalf("report = %+v", rep)
	}
}

func TestComparePackedView(t *testing.T) {
	// One view packs the full join: inverse rules recover answers through
	// Skolem joins and MiniCon uses the single-view rewriting.
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	base.Insert("s", storage.Tuple{"m", "x"})
	base.Insert("s", storage.Tuple{"n", "dead"})
	q := mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")
	views := []*cq.Query{mustQ("v(A,B) :- r(A,C), s(C,B)")}
	rep, err := Compare(q, views, base)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CertainMC != 1 || rep.CertainIR != 1 || !rep.MethodsAgree || !rep.ExactRecovery {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCompareRandomWorkloads(t *testing.T) {
	// Property-style: on random chain workloads, both methods agree and
	// are sound.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(seed)%3
		q := workload.ChainQuery(n, true)
		views := workload.ChainViews(rng, n, true, workload.DefaultViewSpec(6))
		base := workload.ChainDatabase(rng, n, true, 40, 6)
		rep, err := Compare(q, views, base)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.MethodsAgree {
			t.Fatalf("seed %d: methods disagree: %+v", seed, rep)
		}
		if !rep.SoundMC || !rep.SoundIR {
			t.Fatalf("seed %d: unsound: %+v", seed, rep)
		}
	}
}

func TestViaMiniConDirect(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "b"})
	views := []*cq.Query{mustQ("v(A,B) :- r(A,B)")}
	viewDB, _ := datalog.MaterializeViews(base, views)
	got, err := ViaMiniCon(mustQ("q(X) :- r(X,Y)"), views, viewDB)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(got, []storage.Tuple{{"a"}}) {
		t.Fatalf("got %v", got)
	}
}

func TestViaMiniConInvalidViews(t *testing.T) {
	views := []*cq.Query{mustQ("v(A) :- r(A)"), mustQ("v(B) :- s(B)")}
	if _, err := ViaMiniCon(mustQ("q(X) :- r(X)"), views, storage.NewDatabase()); err == nil {
		t.Fatal("duplicate view names accepted")
	}
}
