package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Query is a conjunctive query with optional comparison predicates:
//
//	Head :- Body[0], ..., Body[k-1], Comparisons...
//
// The head's predicate names the query; its arguments are the distinguished
// terms. Body atoms are relational subgoals over base (or view) predicates.
type Query struct {
	Head        Atom
	Body        []Atom
	Comparisons []Comparison
}

// NewQuery builds a query from a head and body. Comparisons may be attached
// afterwards or via AddComparison.
func NewQuery(head Atom, body ...Atom) *Query {
	return &Query{Head: head, Body: body}
}

// AddComparison appends a comparison predicate and returns the query for
// chaining.
func (q *Query) AddComparison(c Comparison) *Query {
	q.Comparisons = append(q.Comparisons, c)
	return q
}

// Name returns the head predicate name.
func (q *Query) Name() string { return q.Head.Pred }

// Arity returns the head arity.
func (q *Query) Arity() int { return len(q.Head.Args) }

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	body := make([]Atom, len(q.Body))
	for i, a := range q.Body {
		body[i] = a.Clone()
	}
	comps := make([]Comparison, len(q.Comparisons))
	copy(comps, q.Comparisons)
	return &Query{Head: q.Head.Clone(), Body: body, Comparisons: comps}
}

// Vars returns the set of variables occurring anywhere in the query, in
// first-occurrence order (head first, then body, then comparisons).
func (q *Query) Vars() []Term {
	seen := make(map[string]bool)
	var out []Term
	add := func(t Term) {
		if t.IsVar() && !seen[t.Lex] {
			seen[t.Lex] = true
			out = append(out, t)
		}
	}
	for _, t := range q.Head.Args {
		add(t)
	}
	for _, a := range q.Body {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, c := range q.Comparisons {
		add(c.Left)
		add(c.Right)
	}
	return out
}

// HeadVars returns the set of distinguished variables (head variables), in
// first-occurrence order.
func (q *Query) HeadVars() []Term {
	seen := make(map[string]bool)
	var out []Term
	for _, t := range q.Head.Args {
		if t.IsVar() && !seen[t.Lex] {
			seen[t.Lex] = true
			out = append(out, t)
		}
	}
	return out
}

// ExistentialVars returns the variables occurring in the body or comparisons
// but not in the head, in first-occurrence order.
func (q *Query) ExistentialVars() []Term {
	head := make(map[string]bool)
	for _, t := range q.Head.Args {
		if t.IsVar() {
			head[t.Lex] = true
		}
	}
	seen := make(map[string]bool)
	var out []Term
	add := func(t Term) {
		if t.IsVar() && !head[t.Lex] && !seen[t.Lex] {
			seen[t.Lex] = true
			out = append(out, t)
		}
	}
	for _, a := range q.Body {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, c := range q.Comparisons {
		add(c.Left)
		add(c.Right)
	}
	return out
}

// Constants returns the set of constants occurring anywhere in the query.
func (q *Query) Constants() []Term {
	seen := make(map[string]bool)
	var out []Term
	add := func(t Term) {
		if t.IsConst() && !seen[t.Lex] {
			seen[t.Lex] = true
			out = append(out, t)
		}
	}
	for _, t := range q.Head.Args {
		add(t)
	}
	for _, a := range q.Body {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, c := range q.Comparisons {
		add(c.Left)
		add(c.Right)
	}
	return out
}

// Predicates returns the distinct body predicate names in first-occurrence
// order.
func (q *Query) Predicates() []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range q.Body {
		if !seen[a.Pred] {
			seen[a.Pred] = true
			out = append(out, a.Pred)
		}
	}
	return out
}

// Validate checks the query for well-formedness:
//   - the body is non-empty,
//   - the query is safe (every head variable occurs in a relational subgoal),
//   - every comparison variable occurs in a relational subgoal,
//   - predicate arities are used consistently within the query.
func (q *Query) Validate() error {
	if len(q.Body) == 0 {
		return fmt.Errorf("cq: query %s has an empty body", q.Head.Pred)
	}
	bodyVars := make(map[string]bool)
	arity := make(map[string]int)
	for _, a := range q.Body {
		if prev, ok := arity[a.Pred]; ok && prev != len(a.Args) {
			return fmt.Errorf("cq: predicate %s used with arities %d and %d", a.Pred, prev, len(a.Args))
		}
		arity[a.Pred] = len(a.Args)
		for _, t := range a.Args {
			if t.IsVar() {
				bodyVars[t.Lex] = true
			}
		}
	}
	for _, t := range q.Head.Args {
		if t.IsVar() && !bodyVars[t.Lex] {
			return fmt.Errorf("cq: unsafe query %s: head variable %s does not occur in the body", q.Head.Pred, t.Lex)
		}
	}
	for _, c := range q.Comparisons {
		for _, t := range []Term{c.Left, c.Right} {
			if t.IsVar() && !bodyVars[t.Lex] {
				return fmt.Errorf("cq: unsafe query %s: comparison variable %s does not occur in a relational subgoal", q.Head.Pred, t.Lex)
			}
		}
	}
	return nil
}

// String renders the query in surface syntax, e.g.
// "q(X,Y) :- r(X,Z), s(Z,Y), Z < 5.".
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString(q.Head.String())
	sb.WriteString(" :- ")
	for i, a := range q.Body {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	for i, c := range q.Comparisons {
		// No separator before the first conjunct: a (non-validated) query
		// may have comparisons but an empty body, and "q() :- , X<1." would
		// not re-parse.
		if i > 0 || len(q.Body) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.String())
	}
	sb.WriteByte('.')
	return sb.String()
}

// CanonicalString renders the query with body atoms and comparisons sorted,
// so that queries that differ only in subgoal order render identically.
// Variable names are not canonicalised; use containment.Equivalent for a
// semantic comparison.
func (q *Query) CanonicalString() string {
	body := make([]string, len(q.Body))
	for i, a := range q.Body {
		body[i] = a.String()
	}
	sort.Strings(body)
	comps := make([]string, len(q.Comparisons))
	for i, c := range q.Comparisons {
		comps[i] = c.Normalize().String()
	}
	sort.Strings(comps)
	var sb strings.Builder
	sb.WriteString(q.Head.String())
	sb.WriteString(" :- ")
	conjuncts := append(body, comps...)
	sb.WriteString(strings.Join(conjuncts, ", "))
	sb.WriteByte('.')
	return sb.String()
}

// Union is a union of conjunctive queries (UCQ). All members must share the
// head predicate name and arity. A nil or empty union denotes the empty
// query (no answers).
type Union struct {
	Queries []*Query
}

// NewUnion builds a union from member queries.
func NewUnion(qs ...*Query) *Union { return &Union{Queries: qs} }

// Add appends a member query.
func (u *Union) Add(q *Query) { u.Queries = append(u.Queries, q) }

// Len returns the number of member queries.
func (u *Union) Len() int {
	if u == nil {
		return 0
	}
	return len(u.Queries)
}

// Validate checks every member and their head compatibility.
func (u *Union) Validate() error {
	if u == nil || len(u.Queries) == 0 {
		return nil
	}
	name, arity := u.Queries[0].Name(), u.Queries[0].Arity()
	for _, q := range u.Queries {
		if err := q.Validate(); err != nil {
			return err
		}
		if q.Name() != name || q.Arity() != arity {
			return fmt.Errorf("cq: union mixes heads %s/%d and %s/%d", name, arity, q.Name(), q.Arity())
		}
	}
	return nil
}

// String renders the union one member per line.
func (u *Union) String() string {
	if u.Len() == 0 {
		return "<empty union>"
	}
	parts := make([]string, len(u.Queries))
	for i, q := range u.Queries {
		parts[i] = q.String()
	}
	return strings.Join(parts, "\n")
}
