package cq

import (
	"testing"
)

func TestTemplateSharedAcrossConstantValues(t *testing.T) {
	q1 := MustParseQuery("q(X) :- r(X,a)")
	q2 := MustParseQuery("q(Y) :- r(Y,b)")
	t1, t2 := CanonicalizeTemplate(q1), CanonicalizeTemplate(q2)
	if t1.Fingerprint() != t2.Fingerprint() {
		t.Fatalf("templates differ:\n%s\n%s", t1.Query, t2.Query)
	}
	if t1.NumParams() != 1 || t2.NumParams() != 1 {
		t.Fatalf("params = %v / %v, want one each", t1.Params, t2.Params)
	}
	if t1.Args[0] != "a" || t2.Args[0] != "b" {
		t.Fatalf("args = %v / %v", t1.Args, t2.Args)
	}
	if TemplateFingerprint(q1) != t1.Fingerprint() {
		t.Fatal("TemplateFingerprint disagrees with Template.Fingerprint")
	}
}

func TestTemplateSharedAcrossAlphaVariants(t *testing.T) {
	q1 := MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y), t(c7,Z)")
	q2 := MustParseQuery("q(A,B) :- s(C,B), t(c9,C), r(A,C)")
	t1, t2 := CanonicalizeTemplate(q1), CanonicalizeTemplate(q2)
	if t1.Fingerprint() != t2.Fingerprint() {
		t.Fatalf("α-variant templates differ:\n%s params=%v\n%s params=%v",
			t1.Query, t1.Params, t2.Query, t2.Params)
	}
	if len(t1.Args) != 1 || t1.Args[0] != "c7" || t2.Args[0] != "c9" {
		t.Fatalf("args = %v / %v", t1.Args, t2.Args)
	}
}

func TestTemplateDistinguishesEqualityPatterns(t *testing.T) {
	// One constant in two positions vs two distinct constants: the shared
	// placeholder carries the equality, so the templates must differ.
	q1 := MustParseQuery("q(X) :- r(X,a), s(a,X)")
	q2 := MustParseQuery("q(X) :- r(X,a), s(b,X)")
	t1, t2 := CanonicalizeTemplate(q1), CanonicalizeTemplate(q2)
	if t1.Fingerprint() == t2.Fingerprint() {
		t.Fatal("equality pattern lost in template")
	}
	if t1.NumParams() != 1 || t2.NumParams() != 2 {
		t.Fatalf("params = %v / %v, want 1 and 2", t1.Params, t2.Params)
	}
	// ...but two queries with the same pattern share, whatever the value.
	q3 := MustParseQuery("q(X) :- r(X,z9), s(z9,X)")
	if CanonicalizeTemplate(q3).Fingerprint() != t1.Fingerprint() {
		t.Fatal("same-pattern template not shared")
	}
}

func TestTemplateDistinguishesParamFromVariable(t *testing.T) {
	// A constant position and a don't-care variable position canonicalise
	// to the same query text; the placeholder set must keep them apart.
	withConst := MustParseQuery("q(X) :- r(X,a)")
	withVar := MustParseQuery("q(X) :- r(X,Y)")
	tc, tv := CanonicalizeTemplate(withConst), CanonicalizeTemplate(withVar)
	if tc.Query.String() != tv.Query.String() {
		t.Fatalf("canonical texts differ: %s vs %s", tc.Query, tv.Query)
	}
	if tc.Fingerprint() == tv.Fingerprint() {
		t.Fatal("placeholder set not part of the template identity")
	}
}

func TestTemplateKeepsHeadOnlyConstants(t *testing.T) {
	q1 := MustParseQuery("q(tag1,X) :- r(X,Y)")
	q2 := MustParseQuery("q(tag2,X) :- r(X,Y)")
	t1, t2 := CanonicalizeTemplate(q1), CanonicalizeTemplate(q2)
	if t1.NumParams() != 0 {
		t.Fatalf("head-only constant abstracted: params=%v", t1.Params)
	}
	if t1.Fingerprint() == t2.Fingerprint() {
		t.Fatal("head-only constants must stay part of the template")
	}
}

func TestTemplateKeepsComparisonOnlyConstants(t *testing.T) {
	q1 := MustParseQuery("q(X) :- r(X,Y), Y < 5")
	q2 := MustParseQuery("q(X) :- r(X,Y), Y < 9")
	t1, t2 := CanonicalizeTemplate(q1), CanonicalizeTemplate(q2)
	if t1.NumParams() != 0 {
		t.Fatalf("comparison threshold abstracted: params=%v", t1.Params)
	}
	if t1.Fingerprint() == t2.Fingerprint() {
		t.Fatal("comparison thresholds must stay part of the template")
	}
}

func TestTemplateAbstractsHeadButNotComparisonOccurrences(t *testing.T) {
	// The constant occurs in the body, so its head occurrence becomes the
	// same placeholder — but the comparison occurrence stays concrete
	// (thresholds are part of the template identity: a ground comparison
	// must stay decidable at plan time).
	q1 := MustParseQuery("q(c5,X) :- r(X,c5), X < c5")
	t1 := CanonicalizeTemplate(q1)
	if t1.NumParams() != 1 {
		t.Fatalf("params = %v, want exactly one placeholder", t1.Params)
	}
	for _, a := range t1.Query.Head.Args {
		if a.IsConst() {
			t.Fatalf("head constant not abstracted: %s", t1.Query)
		}
	}
	for _, c := range t1.Query.Comparisons {
		if c.Left.IsVar() && c.Right.IsVar() {
			t.Fatalf("comparison constant abstracted: %s", t1.Query)
		}
	}
	// A different threshold is a different template...
	q2 := MustParseQuery("q(c8,Y) :- r(Y,c8), Y < c8")
	if CanonicalizeTemplate(q2).Fingerprint() == t1.Fingerprint() {
		t.Fatal("different comparison thresholds share a template")
	}
	// ...but a different atom constant under the same threshold shares.
	q3 := MustParseQuery("q(c9,X) :- r(X,c9), X < c5")
	t3 := CanonicalizeTemplate(q3)
	if t3.Fingerprint() != t1.Fingerprint() {
		t.Fatalf("same-threshold templates differ:\n%s\n%s", t1.Query, t3.Query)
	}
	if t3.Args[0] != "c9" || t1.Args[0] != "c5" {
		t.Fatalf("bindings = %v / %v", t1.Args, t3.Args)
	}
}

func TestTemplateWithoutConstantsIsCanonicalForm(t *testing.T) {
	q := MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	tmpl := CanonicalizeTemplate(q)
	if tmpl.NumParams() != 0 || len(tmpl.Args) != 0 {
		t.Fatalf("params = %v args = %v, want none", tmpl.Params, tmpl.Args)
	}
	if tmpl.Query.String() != Canonicalize(q).String() {
		t.Fatalf("template %s != canonical %s", tmpl.Query, Canonicalize(q))
	}
	if tmpl.PlanQuery() != tmpl.Query {
		t.Fatal("parameterless PlanQuery should be the template itself")
	}
}

func TestTemplatePlanQuery(t *testing.T) {
	q := MustParseQuery("q(X) :- r(X,k1), s(k2,X)")
	tmpl := CanonicalizeTemplate(q)
	pq := tmpl.PlanQuery()
	if len(pq.Head.Args) != 1+tmpl.NumParams() {
		t.Fatalf("plan head %s, want original plus %d placeholders", pq.Head, tmpl.NumParams())
	}
	if err := pq.Validate(); err != nil {
		t.Fatalf("plan query invalid: %v", err)
	}
	// Appending must not mutate the template.
	if len(tmpl.Query.Head.Args) != 1 {
		t.Fatal("PlanQuery mutated the template head")
	}
	// Binding order is deterministic: params ascend by canonical index and
	// correspond positionally to Args.
	for i := 1; i < len(tmpl.Params); i++ {
		if canonIndex(tmpl.Params[i-1]) >= canonIndex(tmpl.Params[i]) {
			t.Fatalf("params out of order: %v", tmpl.Params)
		}
	}
}

// TestTemplateInstantiationRoundTrip substitutes Args back into the
// template and checks the result is α-equivalent to the source query (same
// fingerprint).
func TestTemplateInstantiationRoundTrip(t *testing.T) {
	queries := []string{
		"q(X) :- r(X,a)",
		"q(c5,X) :- r(X,c5), X < c5",
		"q(X,Y) :- r(X,Z), s(Z,Y), t(c7,Z)",
		"q(X) :- r(X,a), s(a,X)",
		"q(X) :- r(X,a), s(b,X)",
		"q(X) :- r(X,Y), Y < 5",
	}
	for _, text := range queries {
		q := MustParseQuery(text)
		tmpl := CanonicalizeTemplate(q)
		bind := make(Subst, len(tmpl.Params))
		for i, p := range tmpl.Params {
			bind[p] = Const(tmpl.Args[i])
		}
		inst := bind.ApplyQuery(tmpl.Query)
		if Fingerprint(inst) != Fingerprint(q) {
			t.Fatalf("%s: instantiated template %s is not α-equivalent", text, inst)
		}
	}
}
