package cq

import "testing"

// FuzzParseQuery checks the parser never panics and that accepted inputs
// survive a print/parse round trip.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"q(X,Y) :- r(X,Z), s(Z,Y).",
		"q(X) :- r(X), X < 5, X != Y.",
		"q() :- r(a,'quo ted', -2.5).",
		"v(A,B) :- e(A,C), e(C,B)",
		"q(X :- r(X)",
		":- .",
		"q(X) :- r(X), ",
		"% comment only",
		"q(_U) :- p(_U, _U).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		printed := q.String()
		q2, err := ParseQuery(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %q -> %q: %v", src, printed, err)
		}
		if q2.String() != printed {
			t.Fatalf("round trip unstable: %q -> %q -> %q", src, printed, q2.String())
		}
	})
}

// FuzzParseProgram checks program parsing never panics.
func FuzzParseProgram(f *testing.F) {
	f.Add("r(a,b). q(X) :- r(X,Y).")
	f.Add("## only a comment\nr(a).")
	f.Add("broken((")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseProgram(src)
		if err != nil {
			return
		}
		for _, q := range prog.Queries {
			_ = q.String()
		}
		for _, fact := range prog.Facts {
			if !fact.IsGround() {
				t.Fatalf("non-ground fact accepted: %v", fact)
			}
		}
	})
}
