package cq

import "testing"

func TestCanonicalizeVariablesRenamingInvariant(t *testing.T) {
	a := MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	b := MustParseQuery("q(A,B) :- r(A,M), s(M,B)")
	if CanonicalizeVariables(a).String() != CanonicalizeVariables(b).String() {
		t.Fatalf("renamed queries canonicalise differently:\n%s\n%s",
			CanonicalizeVariables(a), CanonicalizeVariables(b))
	}
}

func TestCanonicalizeVariablesOrderInvariant(t *testing.T) {
	a := MustParseQuery("q(X) :- r(X,Z), s(Z), X > 2")
	b := MustParseQuery("q(X) :- s(Z), r(X,Z), 2 < X")
	if CanonicalizeVariables(a).String() != CanonicalizeVariables(b).String() {
		t.Fatalf("reordered queries canonicalise differently:\n%s\n%s",
			CanonicalizeVariables(a), CanonicalizeVariables(b))
	}
}

func TestCanonicalizeVariablesDistinguishesStructure(t *testing.T) {
	a := MustParseQuery("q(X) :- r(X,Y), r(Y,X)")
	b := MustParseQuery("q(X) :- r(X,Y), r(X,Z)")
	if CanonicalizeVariables(a).String() == CanonicalizeVariables(b).String() {
		t.Fatal("structurally different queries canonicalise equal")
	}
}

func TestCanonicalizeVariablesPreservesSemantics(t *testing.T) {
	q := MustParseQuery("q(X,c) :- r(X,Y), s(Y,5), Y != 3")
	c := CanonicalizeVariables(q)
	if err := c.Validate(); err != nil {
		t.Fatalf("canonical form invalid: %v", err)
	}
	if len(c.Body) != len(q.Body) || len(c.Comparisons) != len(q.Comparisons) {
		t.Fatalf("shape changed: %v", c)
	}
	if c.Head.Args[1] != Const("c") {
		t.Fatalf("head constant lost: %v", c)
	}
}

func TestIsAcyclic(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		// Chains and stars are acyclic.
		{"q(X) :- r(X,Y), s(Y,Z), t(Z,W)", true},
		{"q(X) :- r(X,A), r(X,B), r(X,C)", true},
		// A triangle is the canonical cyclic query.
		{"q(X) :- e(X,Y), e(Y,Z), e(Z,X)", false},
		// A triangle covered by a big atom becomes acyclic.
		{"q(X) :- e(X,Y), e(Y,Z), e(Z,X), big(X,Y,Z)", true},
		// Single atom, and an atom with only private variables.
		{"q(X) :- r(X)", true},
		{"q(X) :- r(X), s(A,B)", true},
		// Four-cycle: cyclic.
		{"q(X) :- e(X,Y), e(Y,Z), e(Z,W), e(W,X)", false},
		// Self-loop style repetition stays acyclic.
		{"q(X) :- e(X,X)", true},
	}
	for _, c := range cases {
		if got := IsAcyclic(MustParseQuery(c.src)); got != c.want {
			t.Errorf("IsAcyclic(%q) = %v want %v", c.src, got, c.want)
		}
	}
}
