package cq

import "strings"

// Atom is a relational atom: a predicate applied to a list of terms. It is
// used both for query heads and body subgoals, and (with all-constant
// arguments) for database facts.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom from a predicate name and terms.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// IsGround reports whether every argument is a constant.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// Equal reports whether two atoms are syntactically identical.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// String renders the atom in surface syntax, e.g. "r(X,'a',3)".
func (a Atom) String() string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Key returns a canonical string key for the atom, usable for dedup maps.
func (a Atom) Key() string { return a.String() }

// CompOp enumerates the comparison operators over the densely ordered
// constant domain.
type CompOp uint8

const (
	// Lt is strict less-than.
	Lt CompOp = iota
	// Le is less-than-or-equal.
	Le
	// Gt is strict greater-than.
	Gt
	// Ge is greater-than-or-equal.
	Ge
	// Eq is equality.
	Eq
	// Ne is disequality.
	Ne
)

// String renders the operator in surface syntax.
func (op CompOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	case Ne:
		return "!="
	default:
		return "?"
	}
}

// Flip returns the operator with its operands exchanged, so that
// (a op b) == (b op.Flip() a).
func (op CompOp) Flip() CompOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default:
		return op // Eq and Ne are symmetric.
	}
}

// Negate returns the complement of the operator, so that
// (a op b) == !(a op.Negate() b).
func (op CompOp) Negate() CompOp {
	switch op {
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	case Eq:
		return Ne
	default:
		return Eq
	}
}

// EvalConst evaluates the operator on two constant terms.
func (op CompOp) EvalConst(a, b Term) bool {
	c := CompareConst(a, b)
	switch op {
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	default:
		return false
	}
}

// Comparison is an arithmetic comparison predicate between two terms, e.g.
// "X < 5" or "X != Y".
type Comparison struct {
	Left  Term
	Op    CompOp
	Right Term
}

// NewComparison builds a comparison.
func NewComparison(left Term, op CompOp, right Term) Comparison {
	return Comparison{Left: left, Op: op, Right: right}
}

// String renders the comparison in surface syntax.
func (c Comparison) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// Normalize orients the comparison so that Gt/Ge become Lt/Le and, for the
// symmetric operators, the lexicographically smaller rendering comes first.
// Normalised comparisons compare equal iff they denote the same constraint.
func (c Comparison) Normalize() Comparison {
	switch c.Op {
	case Gt, Ge:
		return Comparison{Left: c.Right, Op: c.Op.Flip(), Right: c.Left}
	case Eq, Ne:
		if c.Right.String() < c.Left.String() {
			return Comparison{Left: c.Right, Op: c.Op, Right: c.Left}
		}
	}
	return c
}

// Equal reports whether two comparisons denote the same constraint after
// normalisation.
func (c Comparison) Equal(d Comparison) bool {
	return c.Normalize() == d.Normalize()
}
