package cq

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
)

// canonBudget bounds the tie-exploration work Canonicalize performs. Queries
// with many mutually symmetric subgoals (rare in practice) fall back to a
// greedy, still-deterministic ordering once the budget is exhausted.
const canonBudget = 4096

// Canonicalize returns a canonical copy of q: body atoms are ordered by a
// variable-name-independent key, variables are renamed V0, V1, ... by first
// occurrence over (head, ordered body, comparisons), and comparisons are
// normalised and sorted. Two queries that differ only in variable names
// and/or subgoal order canonicalise to the same query, so the rendered form
// is a sound cache key for any property invariant under α-renaming
// (containment, equivalence, rewritability, answer sets).
//
// Head argument positions are preserved — the canonical query is always
// α-equivalent to the input, never merely isomorphic.
func Canonicalize(q *Query) *Query {
	qc, _ := canonicalizeRen(q)
	return qc
}

// canonicalizeRen is Canonicalize plus the final renaming it applied: a map
// from the input query's variable names to their canonical names. The
// template machinery uses it to locate placeholder variables in the
// canonical form.
func canonicalizeRen(q *Query) (*Query, map[string]string) {
	ren := make(map[string]string, 8)
	next := 0
	rename := func(t Term) Term {
		if !t.IsVar() {
			return t
		}
		n, ok := ren[t.Lex]
		if !ok {
			n = "V" + strconv.Itoa(next)
			next++
			ren[t.Lex] = n
		}
		return Term{Kind: Variable, Lex: n}
	}

	head := Atom{Pred: q.Head.Pred, Args: make([]Term, len(q.Head.Args))}
	for i, t := range q.Head.Args {
		head.Args[i] = rename(t)
	}

	c := &canonicalizer{budget: canonBudget}
	remaining := make([]Atom, len(q.Body))
	copy(remaining, q.Body)
	body, ren, next := c.orderBody(remaining, ren, next)

	comps := make([]Comparison, len(q.Comparisons))
	for i, cmp := range q.Comparisons {
		nc := Comparison{Op: cmp.Op}
		for _, side := range []struct {
			src Term
			dst *Term
		}{{cmp.Left, &nc.Left}, {cmp.Right, &nc.Right}} {
			t := side.src
			if t.IsVar() {
				n, ok := ren[t.Lex]
				if !ok {
					// Unsafe comparison variable (invalid query): still
					// rename deterministically so Canonicalize is total.
					n = "V" + strconv.Itoa(next)
					next++
					ren[t.Lex] = n
				}
				t = Term{Kind: Variable, Lex: n}
			}
			*side.dst = t
		}
		comps[i] = nc.Normalize()
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].String() < comps[j].String() })

	return &Query{Head: head, Body: body, Comparisons: comps}, ren
}

// CanonicalizeUnion canonicalises every member and sorts them by rendered
// form, yielding a deterministic representation of a UCQ.
func CanonicalizeUnion(u *Union) *Union {
	if u == nil {
		return &Union{}
	}
	members := make([]*Query, len(u.Queries))
	for i, q := range u.Queries {
		members[i] = Canonicalize(q)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].String() < members[j].String() })
	return &Union{Queries: members}
}

// Fingerprint returns a fixed-size hex key identifying q up to variable
// renaming and subgoal order: α-equivalent query texts share the key. It is
// the cache key used by the engine's plan cache and the containment memo.
func Fingerprint(q *Query) string {
	sum := sha256.Sum256([]byte(Canonicalize(q).String()))
	return hex.EncodeToString(sum[:16])
}

// canonicalizer orders body atoms greedily: at each step it commits the atom
// whose rendering under the partial renaming is minimal. Ties between atoms
// that are not symmetric are resolved by exploring each tied branch to
// completion (within a work budget) and keeping the lexicographically
// smallest full rendering, which makes the result independent of the input
// atom order.
type canonicalizer struct {
	budget int
}

func (c *canonicalizer) orderBody(remaining []Atom, ren map[string]string, next int) ([]Atom, map[string]string, int) {
	if len(remaining) == 0 {
		return nil, ren, next
	}
	minKey := ""
	var tied []int
	for i, a := range remaining {
		k := projectedKey(a, ren)
		switch {
		case i == 0 || k < minKey:
			minKey = k
			tied = tied[:0]
			tied = append(tied, i)
		case k == minKey:
			tied = append(tied, i)
		}
	}
	if len(tied) > 1 && c.budget <= 0 {
		tied = tied[:1] // budget exhausted: greedy, still deterministic
	}

	var bestBody []Atom
	var bestRen map[string]string
	var bestNext int
	bestStr := ""
	for _, idx := range tied {
		c.budget--
		branchRen := ren
		branchNext := next
		if len(tied) > 1 {
			branchRen = make(map[string]string, len(ren)+2)
			for k, v := range ren {
				branchRen[k] = v
			}
		}
		a := remaining[idx]
		na := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
		for i, t := range a.Args {
			if t.IsVar() {
				n, ok := branchRen[t.Lex]
				if !ok {
					n = "V" + strconv.Itoa(branchNext)
					branchNext++
					branchRen[t.Lex] = n
				}
				na.Args[i] = Term{Kind: Variable, Lex: n}
			} else {
				na.Args[i] = t
			}
		}
		rest := make([]Atom, 0, len(remaining)-1)
		rest = append(rest, remaining[:idx]...)
		rest = append(rest, remaining[idx+1:]...)
		tailBody, tailRen, tailNext := c.orderBody(rest, branchRen, branchNext)
		body := append([]Atom{na}, tailBody...)
		if len(tied) == 1 {
			return body, tailRen, tailNext
		}
		s := renderAtoms(body)
		if bestBody == nil || s < bestStr {
			bestBody, bestRen, bestNext, bestStr = body, tailRen, tailNext, s
		}
	}
	return bestBody, bestRen, bestNext
}

// projectedKey renders an atom under a partial renaming so that atoms can be
// compared without depending on original variable names: renamed variables
// show their canonical name, unrenamed variables show their first-occurrence
// index within this atom, constants show their lexeme.
func projectedKey(a Atom, ren map[string]string) string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(len(a.Args)))
	sb.WriteByte('(')
	local := make(map[string]int, len(a.Args))
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		switch {
		case t.IsConst():
			sb.WriteString("c:")
			sb.WriteString(t.Lex)
		default:
			if n, ok := ren[t.Lex]; ok {
				sb.WriteString("v:")
				sb.WriteString(n)
			} else {
				j, ok := local[t.Lex]
				if !ok {
					j = len(local)
					local[t.Lex] = j
				}
				sb.WriteString("u:")
				sb.WriteString(strconv.Itoa(j))
			}
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

func renderAtoms(atoms []Atom) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
