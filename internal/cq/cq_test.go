package cq

import (
	"strings"
	"testing"
)

func TestTermBasics(t *testing.T) {
	v := Var("X")
	if !v.IsVar() || v.IsConst() {
		t.Fatalf("Var(X) kind wrong: %+v", v)
	}
	c := Const("abc")
	if c.IsVar() || !c.IsConst() {
		t.Fatalf("Const(abc) kind wrong: %+v", c)
	}
	if v == c {
		t.Fatal("distinct terms compare equal")
	}
	if got := IntConst(42).Lex; got != "42" {
		t.Fatalf("IntConst lexeme = %q", got)
	}
}

func TestTermNum(t *testing.T) {
	cases := []struct {
		term Term
		want float64
		ok   bool
	}{
		{Const("5"), 5, true},
		{Const("-3"), -3, true},
		{Const("2.5"), 2.5, true},
		{Const("abc"), 0, false},
		{Var("X"), 0, false},
	}
	for _, c := range cases {
		got, ok := c.term.Num()
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Num(%v) = %v,%v want %v,%v", c.term, got, ok, c.want, c.ok)
		}
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{Var("X"), "X"},
		{Const("abc"), "abc"},
		{Const("5"), "5"},
		{Const("-2.5"), "-2.5"},
		{Const("Upper"), "'Upper'"},
		{Const("has space"), "'has space'"},
		{Const(""), "''"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q want %q", c.term, got, c.want)
		}
	}
}

func TestCompareConst(t *testing.T) {
	cases := []struct {
		a, b Term
		want int
	}{
		{Const("1"), Const("2"), -1},
		{Const("2"), Const("2"), 0},
		{Const("10"), Const("9"), 1}, // numeric, not lexicographic
		{Const("a"), Const("b"), -1},
		{Const("b"), Const("a"), 1},
		{Const("a"), Const("a"), 0},
	}
	for _, c := range cases {
		if got := CompareConst(c.a, c.b); got != c.want {
			t.Errorf("CompareConst(%v,%v) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareConstPanicsOnVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on variable operand")
		}
	}()
	CompareConst(Var("X"), Const("1"))
}

func TestAtomBasics(t *testing.T) {
	a := NewAtom("r", Var("X"), Const("a"))
	if a.Arity() != 2 {
		t.Fatalf("arity = %d", a.Arity())
	}
	if a.IsGround() {
		t.Fatal("atom with variable reported ground")
	}
	g := NewAtom("r", Const("a"), Const("b"))
	if !g.IsGround() {
		t.Fatal("ground atom not reported ground")
	}
	if a.String() != "r(X,a)" {
		t.Fatalf("String = %q", a.String())
	}
	b := a.Clone()
	b.Args[0] = Const("z")
	if a.Args[0] != Var("X") {
		t.Fatal("Clone shares argument slice")
	}
	if !a.Equal(NewAtom("r", Var("X"), Const("a"))) {
		t.Fatal("Equal failed on identical atoms")
	}
	if a.Equal(NewAtom("r", Var("X"))) || a.Equal(NewAtom("s", Var("X"), Const("a"))) {
		t.Fatal("Equal matched distinct atoms")
	}
}

func TestCompOpFlipNegate(t *testing.T) {
	ops := []CompOp{Lt, Le, Gt, Ge, Eq, Ne}
	for _, op := range ops {
		if op.Flip().Flip() != op {
			t.Errorf("Flip not involutive on %v", op)
		}
		if op.Negate().Negate() != op {
			t.Errorf("Negate not involutive on %v", op)
		}
	}
	if Lt.Flip() != Gt || Le.Flip() != Ge || Eq.Flip() != Eq || Ne.Flip() != Ne {
		t.Error("Flip wrong")
	}
	if Lt.Negate() != Ge || Eq.Negate() != Ne {
		t.Error("Negate wrong")
	}
}

func TestCompOpEvalConst(t *testing.T) {
	one, two := Const("1"), Const("2")
	cases := []struct {
		op   CompOp
		a, b Term
		want bool
	}{
		{Lt, one, two, true},
		{Lt, two, one, false},
		{Le, one, one, true},
		{Gt, two, one, true},
		{Ge, one, two, false},
		{Eq, one, one, true},
		{Ne, one, two, true},
		{Ne, one, one, false},
	}
	for _, c := range cases {
		if got := c.op.EvalConst(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestComparisonNormalize(t *testing.T) {
	x, y := Var("X"), Var("Y")
	gt := NewComparison(x, Gt, y)
	n := gt.Normalize()
	if n.Op != Lt || n.Left != y || n.Right != x {
		t.Fatalf("Normalize(X>Y) = %v", n)
	}
	eq1 := NewComparison(y, Eq, x).Normalize()
	eq2 := NewComparison(x, Eq, y).Normalize()
	if eq1 != eq2 {
		t.Fatalf("Eq normalisation not canonical: %v vs %v", eq1, eq2)
	}
	if !NewComparison(x, Gt, y).Equal(NewComparison(y, Lt, x)) {
		t.Fatal("X>Y should equal Y<X")
	}
}

func TestQueryVarsAndConstants(t *testing.T) {
	q := MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y,a), Z < 5, W = W, t(W)")
	vars := q.Vars()
	want := []string{"X", "Y", "Z", "W"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v", vars)
	}
	for i, w := range want {
		if vars[i].Lex != w {
			t.Errorf("Vars[%d] = %v want %s", i, vars[i], w)
		}
	}
	hv := q.HeadVars()
	if len(hv) != 2 || hv[0].Lex != "X" || hv[1].Lex != "Y" {
		t.Fatalf("HeadVars = %v", hv)
	}
	ev := q.ExistentialVars()
	if len(ev) != 2 || ev[0].Lex != "Z" || ev[1].Lex != "W" {
		t.Fatalf("ExistentialVars = %v", ev)
	}
	consts := q.Constants()
	if len(consts) != 2 {
		t.Fatalf("Constants = %v", consts)
	}
	preds := q.Predicates()
	if len(preds) != 3 || preds[0] != "r" || preds[1] != "s" || preds[2] != "t" {
		t.Fatalf("Predicates = %v", preds)
	}
}

func TestQueryValidate(t *testing.T) {
	good := MustParseQuery("q(X) :- r(X,Y), Y < 3")
	if err := good.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	cases := []struct {
		src  string
		frag string
	}{
		{"q(X) :- r(Y)", "unsafe"},
		{"q(X) :- r(X), X < Z", "unsafe"},
		{"q(X) :- r(X), r(X,X)", "arities"},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		err = q.Validate()
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Validate(%q) = %v, want error containing %q", c.src, err, c.frag)
		}
	}
	empty := &Query{Head: NewAtom("q", Var("X"))}
	if err := empty.Validate(); err == nil {
		t.Error("empty body accepted")
	}
}

func TestQueryCloneIndependence(t *testing.T) {
	q := MustParseQuery("q(X) :- r(X,Y), Y < 3")
	c := q.Clone()
	c.Body[0].Args[0] = Const("mut")
	c.Comparisons[0].Op = Gt
	if q.Body[0].Args[0] != Var("X") || q.Comparisons[0].Op != Lt {
		t.Fatal("Clone shares state with original")
	}
}

func TestQueryString(t *testing.T) {
	src := "q(X,Y) :- r(X,Z), s(Z,Y), Z < 5."
	q := MustParseQuery(src)
	if got := q.String(); got != src {
		t.Fatalf("String = %q want %q", got, src)
	}
}

func TestCanonicalString(t *testing.T) {
	a := MustParseQuery("q(X) :- r(X,Y), s(Y), Y > 2")
	b := MustParseQuery("q(X) :- s(Y), r(X,Y), 2 < Y")
	if a.CanonicalString() != b.CanonicalString() {
		t.Fatalf("canonical strings differ:\n%s\n%s", a.CanonicalString(), b.CanonicalString())
	}
}

func TestUnion(t *testing.T) {
	u := NewUnion(
		MustParseQuery("q(X) :- r(X)"),
		MustParseQuery("q(X) :- s(X)"),
	)
	if u.Len() != 2 {
		t.Fatalf("Len = %d", u.Len())
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("valid union rejected: %v", err)
	}
	u.Add(MustParseQuery("p(X) :- t(X)"))
	if err := u.Validate(); err == nil {
		t.Fatal("union with mixed heads accepted")
	}
	var empty *Union
	if empty.Len() != 0 {
		t.Fatal("nil union Len != 0")
	}
	if (&Union{}).String() != "<empty union>" {
		t.Fatal("empty union String")
	}
}

func TestSubstApply(t *testing.T) {
	s := Subst{"X": Const("a"), "Y": Var("Z")}
	q := MustParseQuery("q(X,Y) :- r(X,Y), X < Y")
	out := s.ApplyQuery(q)
	want := "q(a,Z) :- r(a,Z), a < Z."
	if out.String() != want {
		t.Fatalf("ApplyQuery = %q want %q", out.String(), want)
	}
	// Original untouched.
	if q.Head.Args[0] != Var("X") {
		t.Fatal("ApplyQuery mutated input")
	}
}

func TestSubstBindAndClone(t *testing.T) {
	s := NewSubst()
	if !s.Bind("X", Const("a")) {
		t.Fatal("first Bind failed")
	}
	if !s.Bind("X", Const("a")) {
		t.Fatal("re-Bind with same value failed")
	}
	if s.Bind("X", Const("b")) {
		t.Fatal("conflicting Bind succeeded")
	}
	c := s.Clone()
	c["Y"] = Const("z")
	if _, ok := s["Y"]; ok {
		t.Fatal("Clone shares map")
	}
}

func TestSubstCompose(t *testing.T) {
	s := Subst{"X": Var("Y")}
	u := Subst{"Y": Const("a"), "W": Const("b")}
	c := s.Compose(u)
	if c.ApplyTerm(Var("X")) != Const("a") {
		t.Fatalf("Compose: X -> %v", c.ApplyTerm(Var("X")))
	}
	if c.ApplyTerm(Var("W")) != Const("b") {
		t.Fatal("Compose lost carried binding")
	}
}

func TestUnifyTerms(t *testing.T) {
	s := NewSubst()
	if !s.UnifyTerms(Var("X"), Const("a")) {
		t.Fatal("unify var/const failed")
	}
	if !s.UnifyTerms(Var("X"), Const("a")) {
		t.Fatal("unify repeated failed")
	}
	if s.UnifyTerms(Var("X"), Const("b")) {
		t.Fatal("conflicting unify succeeded")
	}
	s2 := NewSubst()
	if !s2.UnifyTerms(Var("X"), Var("Y")) {
		t.Fatal("var-var unify failed")
	}
	if !s2.UnifyTerms(Var("X"), Const("c")) {
		t.Fatal("chained unify failed")
	}
	if s2.ApplyTerm(s2.ApplyTerm(Var("X"))) != Const("c") {
		t.Fatal("chain does not resolve to c")
	}
}

func TestUnifyAtoms(t *testing.T) {
	s := NewSubst()
	a := NewAtom("r", Var("X"), Const("a"))
	b := NewAtom("r", Const("c"), Var("Y"))
	if !s.UnifyAtoms(a, b) {
		t.Fatal("unifiable atoms failed")
	}
	if s.ApplyTerm(Var("X")) != Const("c") || s.ApplyTerm(Var("Y")) != Const("a") {
		t.Fatalf("bindings wrong: %v", s)
	}
	if NewSubst().UnifyAtoms(a, NewAtom("s", Var("X"), Const("a"))) {
		t.Fatal("different predicates unified")
	}
	if NewSubst().UnifyAtoms(a, NewAtom("r", Var("X"))) {
		t.Fatal("different arities unified")
	}
}

func TestMatchAtom(t *testing.T) {
	s := NewSubst()
	pat := NewAtom("r", Var("X"), Var("X"))
	tgt := NewAtom("r", Var("A"), Var("A"))
	if !s.MatchAtom(pat, tgt) {
		t.Fatal("match failed")
	}
	if s.ApplyTerm(Var("X")) != Var("A") {
		t.Fatalf("X -> %v", s.ApplyTerm(Var("X")))
	}
	// One-way: target variables are never bound.
	s2 := NewSubst()
	if s2.MatchAtom(NewAtom("r", Const("a")), NewAtom("r", Var("B"))) {
		t.Fatal("matched constant pattern against variable target")
	}
	// Repeated pattern variable must map consistently.
	s3 := NewSubst()
	if s3.MatchAtom(pat, NewAtom("r", Var("A"), Var("B"))) {
		t.Fatal("inconsistent repeated variable matched")
	}
}

func TestFreshener(t *testing.T) {
	q := MustParseQuery("q(V0) :- r(V0,V1)")
	f := NewFreshener("V")
	f.Reserve(q)
	v := f.Fresh()
	if v.Lex == "V0" || v.Lex == "V1" {
		t.Fatalf("Fresh collided: %v", v)
	}
	r, s := f.RenameApart(q)
	if err := r.Validate(); err != nil {
		t.Fatalf("renamed query invalid: %v", err)
	}
	for _, old := range q.Vars() {
		img, ok := s[old.Lex]
		if !ok {
			t.Fatalf("renaming missing %v", old)
		}
		for _, again := range q.Vars() {
			if again.Lex != old.Lex && s[again.Lex] == img {
				t.Fatal("renaming not injective")
			}
		}
	}
}
