package cq

import (
	"fmt"
	"sort"
	"strings"
)

// CanonicalizeVariables returns an α-renamed copy of q: variables are
// renamed V0, V1, ... in first-occurrence order over the canonicalised
// rendering (head first, then body atoms sorted). Two queries that differ
// only by variable names and subgoal order canonicalise to equal strings,
// which makes CanonicalizeVariables(q).String() a cheap isomorphism-modulo-
// ordering key for deduplication. (Full CQ isomorphism also permutes atoms
// with equal shape; use containment.Equivalent for the semantic check.)
func CanonicalizeVariables(q *Query) *Query {
	// Sort body atoms by a name-insensitive shape key first, so renaming
	// does not depend on the input's subgoal order.
	type shaped struct {
		atom Atom
		key  string
	}
	shapes := make([]shaped, len(q.Body))
	for i, a := range q.Body {
		shapes[i] = shaped{atom: a, key: shapeKey(q, a)}
	}
	sort.SliceStable(shapes, func(i, j int) bool { return shapes[i].key < shapes[j].key })

	rename := NewSubst()
	n := 0
	visit := func(t Term) {
		if t.IsVar() {
			if _, ok := rename[t.Lex]; !ok {
				rename[t.Lex] = Var(fmt.Sprintf("V%d", n))
				n++
			}
		}
	}
	for _, t := range q.Head.Args {
		visit(t)
	}
	for _, s := range shapes {
		for _, t := range s.atom.Args {
			visit(t)
		}
	}
	for _, c := range q.Comparisons {
		visit(c.Left)
		visit(c.Right)
	}
	body := make([]Atom, len(shapes))
	for i, s := range shapes {
		body[i] = rename.ApplyAtom(s.atom)
	}
	comps := make([]Comparison, len(q.Comparisons))
	for i, c := range q.Comparisons {
		comps[i] = rename.ApplyComparison(c).Normalize()
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].String() < comps[j].String() })
	return &Query{Head: rename.ApplyAtom(q.Head), Body: body, Comparisons: comps}
}

// shapeKey renders an atom with variables abstracted to their roles: 'h'
// for head variables, '*' for repeated positions within the atom, '_' for
// other variables, constants verbatim.
func shapeKey(q *Query, a Atom) string {
	head := make(map[string]bool)
	for _, t := range q.Head.Args {
		if t.IsVar() {
			head[t.Lex] = true
		}
	}
	seen := make(map[string]int)
	parts := make([]string, 0, len(a.Args)+1)
	parts = append(parts, a.Pred)
	for _, t := range a.Args {
		switch {
		case t.IsConst():
			parts = append(parts, t.String())
		case head[t.Lex]:
			parts = append(parts, "h")
		default:
			seen[t.Lex]++
			if seen[t.Lex] > 1 {
				parts = append(parts, "*")
			} else {
				parts = append(parts, "_")
			}
		}
	}
	return strings.Join(parts, ",")
}

// IsAcyclic reports whether the query's hypergraph is α-acyclic, decided
// by the GYO (Graham–Yu–Özsoyoğlu) reduction: repeatedly remove "ear"
// atoms — atoms whose variables are either private to the atom or wholly
// contained in some other atom — until no atoms remain (acyclic) or no ear
// exists (cyclic). Acyclic queries admit Yannakakis-style evaluation and
// have tractable minimisation; the classifier is exposed for analysis and
// workload characterisation.
// hyperedge is one atom's variable set during the GYO reduction.
type hyperedge struct {
	vars map[string]bool
	live bool
}

func IsAcyclic(q *Query) bool {
	edges := make([]hyperedge, len(q.Body))
	occurrences := make(map[string]int)
	for i, a := range q.Body {
		vars := make(map[string]bool)
		for _, t := range a.Args {
			if t.IsVar() {
				vars[t.Lex] = true
			}
		}
		for v := range vars {
			occurrences[v]++
		}
		edges[i] = hyperedge{vars: vars, live: true}
	}
	remaining := len(edges)
	for remaining > 0 {
		removed := false
		for i := range edges {
			if !edges[i].live {
				continue
			}
			if isEar(edges, i, occurrences) {
				edges[i].live = false
				remaining--
				for v := range edges[i].vars {
					occurrences[v]--
				}
				removed = true
			}
		}
		if !removed {
			return false
		}
	}
	return true
}

// isEar reports whether edge i is an ear: its non-private variables are
// all contained in a single other live edge.
func isEar(edges []hyperedge, i int, occurrences map[string]int) bool {
	shared := make([]string, 0, len(edges[i].vars))
	for v := range edges[i].vars {
		if occurrences[v] > 1 {
			shared = append(shared, v)
		}
	}
	if len(shared) == 0 {
		return true
	}
	for j := range edges {
		if j == i || !edges[j].live {
			continue
		}
		contained := true
		for _, v := range shared {
			if !edges[j].vars[v] {
				contained = false
				break
			}
		}
		if contained {
			return true
		}
	}
	return false
}
