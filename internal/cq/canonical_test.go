package cq

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCanonicalizeRenamesAndSorts(t *testing.T) {
	q := MustParseQuery("q(X,Y) :- s(Z,Y), r(X,Z)")
	c := Canonicalize(q)
	if got := c.String(); got != "q(V0,V1) :- r(V0,V2), s(V2,V1)." {
		t.Fatalf("canonical form = %q", got)
	}
	// The input query is untouched.
	if q.String() != "q(X,Y) :- s(Z,Y), r(X,Z)." {
		t.Fatalf("input mutated: %q", q.String())
	}
}

func TestFingerprintAlphaEquivalence(t *testing.T) {
	// Pairs of α-equivalent queries: renamed variables, reordered subgoals,
	// reordered and flipped comparisons.
	pairs := [][2]string{
		{
			"q(X,Y) :- r(X,Z), s(Z,Y)",
			"q(A,B) :- s(C,B), r(A,C)",
		},
		{
			"q(X) :- r(X,Y), r(Y,Z), r(Z,X)",
			"q(U) :- r(W,U), r(U,V), r(V,W)",
		},
		{
			"q(X,Y) :- r(X,Z), s(Z,Y), Z < 5, X != Y",
			"q(P,Q) :- s(R,Q), r(P,R), Q != P, 5 > R",
		},
		{
			// Symmetric disconnected subgoals: the tie-exploring ordering
			// must not depend on which copy appears first.
			"q(X) :- t(X), r(A,B), r(B,C)",
			"q(X) :- t(X), r(P,Q), r(O,P)",
		},
		{
			"q(X) :- r(X,'a'), r(X,X)",
			"q(W) :- r(W,W), r(W,'a')",
		},
	}
	for _, pair := range pairs {
		a, b := MustParseQuery(pair[0]), MustParseQuery(pair[1])
		fa, fb := Fingerprint(a), Fingerprint(b)
		if fa != fb {
			t.Errorf("fingerprints differ for α-equivalent queries:\n  %s -> %s (%s)\n  %s -> %s (%s)",
				pair[0], fa, Canonicalize(a), pair[1], fb, Canonicalize(b))
		}
	}
}

func TestFingerprintSeparatesDifferentQueries(t *testing.T) {
	distinct := []string{
		"q(X,Y) :- r(X,Z), s(Z,Y)",
		"q(X,Y) :- r(X,Z), s(Y,Z)",   // different join pattern
		"q(Y,X) :- r(X,Z), s(Z,Y)",   // head swapped
		"p(X,Y) :- r(X,Z), s(Z,Y)",   // different head predicate
		"q(X,Y) :- r(X,Z), s(Z,Y), Z < 5",
		"q(X,X) :- r(X,Z), s(Z,X)",   // head repetition
		"q(X,Y) :- r(X,Z), s(Z,Y), r(X,X)",
	}
	seen := make(map[string]string)
	for _, src := range distinct {
		fp := Fingerprint(MustParseQuery(src))
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision: %q and %q -> %s", prev, src, fp)
		}
		seen[fp] = src
	}
}

// TestFingerprintRandomized shuffles subgoals and consistently renames
// variables many times; every variant must share one fingerprint.
func TestFingerprintRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := MustParseQuery("q(X,Y) :- r(X,A), r(A,B), s(B,Y), t(A,C), t(B,C), C < 9")
	want := Fingerprint(base)
	vars := base.Vars()
	for trial := 0; trial < 200; trial++ {
		v := base.Clone()
		// Consistent random renaming.
		sub := NewSubst()
		perm := rng.Perm(len(vars))
		for i, old := range vars {
			sub.Bind(old.Lex, Var("Z"+strings.Repeat("z", perm[i])+"W"))
		}
		v = sub.ApplyQuery(v)
		// Shuffle body atoms.
		rng.Shuffle(len(v.Body), func(i, j int) { v.Body[i], v.Body[j] = v.Body[j], v.Body[i] })
		if got := Fingerprint(v); got != want {
			t.Fatalf("trial %d: fingerprint %s != %s for variant %s", trial, got, want, v)
		}
	}
}

func TestCanonicalizeUnion(t *testing.T) {
	u1 := NewUnion(
		MustParseQuery("q(X) :- r(X,Y)"),
		MustParseQuery("q(X) :- s(X)"),
	)
	u2 := NewUnion(
		MustParseQuery("q(A) :- s(A)"),
		MustParseQuery("q(B) :- r(B,C)"),
	)
	if CanonicalizeUnion(u1).String() != CanonicalizeUnion(u2).String() {
		t.Fatalf("union canonical forms differ:\n%s\n--\n%s", CanonicalizeUnion(u1), CanonicalizeUnion(u2))
	}
	if CanonicalizeUnion(nil).Len() != 0 {
		t.Fatal("nil union should canonicalise to empty")
	}
}
