package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Subst maps variable names to terms. Applying a substitution replaces every
// occurrence of a bound variable by its image; unbound variables are left in
// place. Substitutions are applied in one pass (no chasing of chains), so
// callers composing substitutions should use Compose.
type Subst map[string]Term

// NewSubst returns an empty substitution.
func NewSubst() Subst { return make(Subst) }

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Bind adds a binding and reports whether it is consistent with an existing
// one (binding the same variable to a different term fails).
func (s Subst) Bind(v string, t Term) bool {
	if old, ok := s[v]; ok {
		return old == t
	}
	s[v] = t
	return true
}

// ApplyTerm applies the substitution to a single term.
func (s Subst) ApplyTerm(t Term) Term {
	if t.IsVar() {
		if img, ok := s[t.Lex]; ok {
			return img
		}
	}
	return t
}

// ApplyAtom applies the substitution to every argument of an atom.
func (s Subst) ApplyAtom(a Atom) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.ApplyTerm(t)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// ApplyComparison applies the substitution to both sides of a comparison.
func (s Subst) ApplyComparison(c Comparison) Comparison {
	return Comparison{Left: s.ApplyTerm(c.Left), Op: c.Op, Right: s.ApplyTerm(c.Right)}
}

// ApplyQuery applies the substitution to the head, body and comparisons of a
// query, returning a new query.
func (s Subst) ApplyQuery(q *Query) *Query {
	body := make([]Atom, len(q.Body))
	for i, a := range q.Body {
		body[i] = s.ApplyAtom(a)
	}
	comps := make([]Comparison, len(q.Comparisons))
	for i, c := range q.Comparisons {
		comps[i] = s.ApplyComparison(c)
	}
	return &Query{Head: s.ApplyAtom(q.Head), Body: body, Comparisons: comps}
}

// Compose returns the substitution equivalent to applying s first and then
// t: (s.Compose(t))(x) = t(s(x)). Bindings of t for variables not bound by s
// are carried over.
func (s Subst) Compose(t Subst) Subst {
	out := make(Subst, len(s)+len(t))
	for v, img := range s {
		out[v] = t.ApplyTerm(img)
	}
	for v, img := range t {
		if _, ok := out[v]; !ok {
			out[v] = img
		}
	}
	return out
}

// String renders the substitution deterministically, e.g. "{X->a, Y->Z}".
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "->" + s[k].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Walk follows chains of variable bindings to their end, guarding against
// cycles (members of a cyclic chain are all equal; the walk stops at the
// first repeated variable).
func (s Subst) Walk(t Term) Term {
	var seen map[string]bool
	for t.IsVar() {
		next, ok := s[t.Lex]
		if !ok {
			return t
		}
		if seen == nil {
			seen = make(map[string]bool)
		}
		if seen[t.Lex] {
			return t
		}
		seen[t.Lex] = true
		t = next
	}
	return t
}

// Resolved returns a substitution in which every binding is fully chased:
// Resolved()[x] is the end of x's binding chain. Applying the result once
// is equivalent to applying s until fixpoint.
func (s Subst) Resolved() Subst {
	out := make(Subst, len(s))
	for v := range s {
		out[v] = s.Walk(Var(v))
	}
	return out
}

// UnifyTerms attempts to extend s so that a and b become equal, treating
// variables on both sides as unifiable. It reports whether unification
// succeeded; on failure s may be partially extended (clone first if needed).
func (s Subst) UnifyTerms(a, b Term) bool {
	a, b = s.Walk(a), s.Walk(b)
	switch {
	case a == b:
		return true
	case a.IsVar():
		return s.Bind(a.Lex, b)
	case b.IsVar():
		return s.Bind(b.Lex, a)
	default:
		return false // distinct constants
	}
}

// UnifyAtoms attempts to extend s so that atoms a and b become equal.
func (s Subst) UnifyAtoms(a, b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !s.UnifyTerms(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// MatchAtom attempts to extend s so that s(pattern) == target, binding
// variables of the pattern only (one-way matching, as used by containment
// mappings). target may contain variables; they are treated as constants of
// the target query.
func (s Subst) MatchAtom(pattern, target Atom) bool {
	if pattern.Pred != target.Pred || len(pattern.Args) != len(target.Args) {
		return false
	}
	for i := range pattern.Args {
		pt, tt := pattern.Args[i], target.Args[i]
		if pt.IsVar() {
			if !s.Bind(pt.Lex, tt) {
				return false
			}
			continue
		}
		if pt != tt {
			return false
		}
	}
	return true
}

// Freshener generates fresh variable names that cannot collide with names it
// has seen. Use one Freshener per renaming session.
type Freshener struct {
	prefix string
	n      int
	taken  map[string]bool
}

// NewFreshener returns a Freshener producing names prefix0, prefix1, ...
// skipping any name registered via Reserve.
func NewFreshener(prefix string) *Freshener {
	return &Freshener{prefix: prefix, taken: make(map[string]bool)}
}

// Reserve marks every variable of q as taken.
func (f *Freshener) Reserve(q *Query) {
	for _, v := range q.Vars() {
		f.taken[v.Lex] = true
	}
}

// ReserveName marks one name as taken.
func (f *Freshener) ReserveName(name string) { f.taken[name] = true }

// Fresh returns a new variable distinct from all reserved and previously
// generated names.
func (f *Freshener) Fresh() Term {
	for {
		name := fmt.Sprintf("%s%d", f.prefix, f.n)
		f.n++
		if !f.taken[name] {
			f.taken[name] = true
			return Var(name)
		}
	}
}

// RenameApart returns a copy of q whose variables are all renamed to fresh
// names drawn from f, together with the renaming used.
func (f *Freshener) RenameApart(q *Query) (*Query, Subst) {
	s := NewSubst()
	for _, v := range q.Vars() {
		s[v.Lex] = f.Fresh()
	}
	return s.ApplyQuery(q), s
}
