// Package cq defines the conjunctive-query data model used throughout the
// library: terms, atoms, comparison predicates, queries and unions of
// queries, together with substitutions, renaming, a datalog-style parser and
// a printer.
//
// The model follows the conventions of Levy, Mendelzon, Sagiv and Srivastava,
// "Answering Queries Using Views" (PODS 1995): a conjunctive query has a head
// atom, a body of relational subgoals, and an optional conjunction of
// arithmetic comparison predicates over a densely ordered domain.
package cq

import (
	"fmt"
	"strconv"
)

// TermKind discriminates the two kinds of terms appearing in queries.
type TermKind uint8

const (
	// Variable is a query variable (written with a leading upper-case
	// letter or underscore in the surface syntax).
	Variable TermKind = iota
	// Constant is a constant symbol (lower-case identifier, number, or
	// quoted string in the surface syntax).
	Constant
)

// Term is a variable or a constant. Terms are small comparable values and
// may be used as map keys.
type Term struct {
	Kind TermKind
	// Lex is the variable name or the constant's lexeme.
	Lex string
}

// Var returns a variable term with the given name.
func Var(name string) Term { return Term{Kind: Variable, Lex: name} }

// Const returns a constant term with the given lexeme.
func Const(lexeme string) Term { return Term{Kind: Constant, Lex: lexeme} }

// IntConst returns a numeric constant term.
func IntConst(v int64) Term { return Term{Kind: Constant, Lex: strconv.FormatInt(v, 10)} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Kind == Variable }

// IsConst reports whether t is a constant.
func (t Term) IsConst() bool { return t.Kind == Constant }

// Num reports the numeric value of a constant term, if it has one.
// Variables and non-numeric constants return ok=false.
func (t Term) Num() (v float64, ok bool) {
	if t.Kind != Constant {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.Lex, 64)
	return v, err == nil
}

// String renders the term in surface syntax. Constants whose lexeme could be
// mistaken for a variable or that contain separators are quoted.
func (t Term) String() string {
	if t.Kind == Variable {
		return t.Lex
	}
	if needsQuoting(t.Lex) {
		return "'" + t.Lex + "'"
	}
	return t.Lex
}

func needsQuoting(lex string) bool {
	if lex == "" {
		return true
	}
	if isNumberLexeme(lex) {
		return false
	}
	c := lex[0]
	if !(c >= 'a' && c <= 'z') {
		return true
	}
	for i := 0; i < len(lex); i++ {
		c := lex[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			return true
		}
	}
	return false
}

// isNumberLexeme reports whether lex is exactly one numeric token of the
// surface syntax: optional '-', a digit, then digits or dots each followed
// by a digit. This is deliberately the lexer's grammar, not ParseFloat's —
// spellings like "0.", ".5", "1e5" or "NaN" parse as floats but would not
// re-tokenize as a single number, so they must be quoted when printed.
func isNumberLexeme(lex string) bool {
	i := 0
	if lex[0] == '-' {
		i++
	}
	if i >= len(lex) || lex[i] < '0' || lex[i] > '9' {
		return false
	}
	for i++; i < len(lex); i++ {
		c := lex[i]
		if c >= '0' && c <= '9' {
			continue
		}
		if c == '.' && i+1 < len(lex) && lex[i+1] >= '0' && lex[i+1] <= '9' {
			continue
		}
		return false
	}
	return true
}

// CompareConst orders two constant terms: numerically when both lexemes are
// numeric, lexicographically otherwise. It reports -1, 0 or +1. Calling it
// with variable terms is a programming error and panics.
func CompareConst(a, b Term) int {
	if a.Kind != Constant || b.Kind != Constant {
		panic(fmt.Sprintf("cq: CompareConst on non-constant terms %v, %v", a, b))
	}
	av, aok := a.Num()
	bv, bok := b.Num()
	if aok && bok {
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		default:
			return 0
		}
	}
	switch {
	case a.Lex < b.Lex:
		return -1
	case a.Lex > b.Lex:
		return 1
	default:
		return 0
	}
}
