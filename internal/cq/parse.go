package cq

import (
	"fmt"
	"strings"
	"unicode"
)

// Program is the result of parsing a datalog-style text: named rules
// (queries/views) and ground facts.
type Program struct {
	Queries []*Query
	Facts   []Atom
}

// ParseQuery parses a single rule such as
//
//	q(X,Y) :- r(X,Z), s(Z,Y), Z < 5, X != Y.
//
// The trailing period is optional. Variables begin with an upper-case letter
// or underscore; constants are lower-case identifiers, numbers, or quoted
// strings ('like this').
func ParseQuery(src string) (*Query, error) {
	p := newParser(src)
	q, err := p.rule()
	if err != nil {
		return nil, err
	}
	p.accept(tokDot)
	if p.cur.kind != tokEOF {
		return nil, p.errorf("trailing input after query: %q", p.cur.text)
	}
	if q == nil {
		return nil, p.errorf("expected a rule with a body, got a fact")
	}
	return q, nil
}

// MustParseQuery is ParseQuery that panics on error; intended for tests and
// examples with literal query text.
func MustParseQuery(src string) *Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseProgram parses a sequence of rules and facts separated by periods.
// Lines starting with '%' or '#' are comments.
func ParseProgram(src string) (*Program, error) {
	p := newParser(src)
	prog := &Program{}
	for p.cur.kind != tokEOF {
		q, err := p.rule()
		if err != nil {
			return nil, err
		}
		if q != nil {
			prog.Queries = append(prog.Queries, q)
		} else {
			prog.Facts = append(prog.Facts, p.lastFact)
		}
		if !p.accept(tokDot) && p.cur.kind != tokEOF {
			return nil, p.errorf("expected '.' between statements, got %q", p.cur.text)
		}
	}
	return prog, nil
}

// ParseViews parses a program and returns its rules, requiring that no facts
// appear. It is a convenience for view-set files.
func ParseViews(src string) ([]*Query, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Facts) > 0 {
		return nil, fmt.Errorf("cq: unexpected fact %s in view definitions", prog.Facts[0])
	}
	return prog.Queries, nil
}

type tokKind uint8

const (
	tokEOF   tokKind = iota
	tokIdent         // lower-case identifier
	tokVar           // upper-case identifier or _name
	tokNumber
	tokString // quoted constant; a term, never a predicate name
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokImplies // :-
	tokOp      // comparison operator
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	src      string
	pos      int
	cur      token
	lastFact Atom
}

func newParser(src string) *parser {
	p := &parser{src: src}
	p.next()
	return p
}

func (p *parser) errorf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:min(p.cur.pos, len(p.src))], "\n")
	return fmt.Errorf("cq: parse error at line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) next() {
	// Skip whitespace and comments.
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '%' || c == '#' {
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		break
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.cur = token{kind: tokEOF, pos: start}
		return
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.cur = token{tokLParen, "(", start}
	case c == ')':
		p.pos++
		p.cur = token{tokRParen, ")", start}
	case c == ',':
		p.pos++
		p.cur = token{tokComma, ",", start}
	case c == '.':
		p.pos++
		p.cur = token{tokDot, ".", start}
	case c == ':' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '-':
		p.pos += 2
		p.cur = token{tokImplies, ":-", start}
	case c == '<' || c == '>' || c == '=' || c == '!':
		op := string(c)
		p.pos++
		if p.pos < len(p.src) && p.src[p.pos] == '=' {
			op += "="
			p.pos++
		}
		p.cur = token{tokOp, op, start}
	case c == '\'':
		p.pos++
		var sb strings.Builder
		for p.pos < len(p.src) && p.src[p.pos] != '\'' {
			sb.WriteByte(p.src[p.pos])
			p.pos++
		}
		if p.pos >= len(p.src) {
			p.cur = token{tokEOF, "", start} // unterminated; caught by caller expecting ident
			return
		}
		p.pos++ // closing quote
		p.cur = token{tokString, sb.String(), start}
	case c >= '0' && c <= '9' || c == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9':
		p.pos++
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.' && p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9') {
			p.pos++
		}
		p.cur = token{tokNumber, p.src[start:p.pos], start}
	case isIdentStart(rune(c)):
		p.pos++
		for p.pos < len(p.src) && isIdentPart(rune(p.src[p.pos])) {
			p.pos++
		}
		text := p.src[start:p.pos]
		if unicode.IsUpper(rune(text[0])) || text[0] == '_' {
			p.cur = token{tokVar, text, start}
		} else {
			p.cur = token{tokIdent, text, start}
		}
	default:
		p.cur = token{tokEOF, string(c), start}
		p.pos++
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (p *parser) accept(k tokKind) bool {
	if p.cur.kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.cur.kind != k {
		return token{}, p.errorf("expected %s, got %q", what, p.cur.text)
	}
	t := p.cur
	p.next()
	return t, nil
}

// rule parses "head :- body" or a ground fact "pred(consts)". For a fact it
// returns (nil, nil) and stores the atom in p.lastFact.
func (p *parser) rule() (*Query, error) {
	head, err := p.atom()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokImplies {
		if !head.IsGround() {
			return nil, p.errorf("fact %s contains variables; did you forget ':-'?", head)
		}
		p.lastFact = head
		return nil, nil
	}
	p.next() // consume :-
	q := &Query{Head: head}
	for {
		item, comp, isComp, err := p.bodyItem()
		if err != nil {
			return nil, err
		}
		if isComp {
			q.Comparisons = append(q.Comparisons, comp)
		} else {
			q.Body = append(q.Body, item)
		}
		if !p.accept(tokComma) {
			break
		}
	}
	return q, nil
}

// bodyItem parses either a relational atom or a comparison.
func (p *parser) bodyItem() (Atom, Comparison, bool, error) {
	// A comparison starts with a term followed by an operator; an atom
	// starts with an identifier followed by '('.
	if p.cur.kind == tokIdent || p.cur.kind == tokVar || p.cur.kind == tokNumber || p.cur.kind == tokString {
		// Look ahead: save state.
		savePos, saveCur := p.pos, p.cur
		left, err := p.term()
		if err != nil {
			return Atom{}, Comparison{}, false, err
		}
		if p.cur.kind == tokOp {
			opTok := p.cur
			p.next()
			right, err := p.term()
			if err != nil {
				return Atom{}, Comparison{}, false, err
			}
			op, err := parseOp(opTok.text)
			if err != nil {
				return Atom{}, Comparison{}, false, p.errorf("%v", err)
			}
			return Atom{}, Comparison{Left: left, Op: op, Right: right}, true, nil
		}
		// Not a comparison: rewind and parse an atom.
		p.pos, p.cur = savePos, saveCur
	}
	a, err := p.atom()
	if err != nil {
		return Atom{}, Comparison{}, false, err
	}
	return a, Comparison{}, false, nil
}

func parseOp(s string) (CompOp, error) {
	switch s {
	case "<":
		return Lt, nil
	case "<=":
		return Le, nil
	case ">":
		return Gt, nil
	case ">=":
		return Ge, nil
	case "=", "==":
		return Eq, nil
	case "!=":
		return Ne, nil
	default:
		return 0, fmt.Errorf("unknown comparison operator %q", s)
	}
}

func (p *parser) atom() (Atom, error) {
	name, err := p.expect(tokIdent, "predicate name")
	if err != nil {
		return Atom{}, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return Atom{}, err
	}
	var args []Term
	if p.cur.kind != tokRParen {
		for {
			t, err := p.term()
			if err != nil {
				return Atom{}, err
			}
			args = append(args, t)
			if !p.accept(tokComma) {
				break
			}
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return Atom{}, err
	}
	return Atom{Pred: name.text, Args: args}, nil
}

func (p *parser) term() (Term, error) {
	switch p.cur.kind {
	case tokVar:
		t := Var(p.cur.text)
		p.next()
		return t, nil
	case tokIdent, tokString:
		t := Const(p.cur.text)
		p.next()
		return t, nil
	case tokNumber:
		t := Const(p.cur.text)
		p.next()
		return t, nil
	default:
		return Term{}, p.errorf("expected a term, got %q", p.cur.text)
	}
}
