package cq

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseQueryBasic(t *testing.T) {
	q, err := ParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name() != "q" || q.Arity() != 2 || len(q.Body) != 2 {
		t.Fatalf("parsed shape wrong: %v", q)
	}
	if q.Body[0].Pred != "r" || q.Body[1].Pred != "s" {
		t.Fatalf("body = %v", q.Body)
	}
}

func TestParseQueryWithComparisons(t *testing.T) {
	q := MustParseQuery("q(X) :- r(X,Y), X < 5, Y >= X, X != Y, Y = 3, 2 <= X")
	if len(q.Comparisons) != 5 {
		t.Fatalf("comparisons = %v", q.Comparisons)
	}
	ops := []CompOp{Lt, Ge, Ne, Eq, Le}
	for i, c := range q.Comparisons {
		if c.Op != ops[i] {
			t.Errorf("comparison %d op = %v want %v", i, c.Op, ops[i])
		}
	}
}

func TestParseConstantsAndVariables(t *testing.T) {
	q := MustParseQuery("q(X) :- r(X, abc, 'Hello World', 42, -7, 2.5, _tmp)")
	args := q.Body[0].Args
	want := []Term{Var("X"), Const("abc"), Const("Hello World"), Const("42"), Const("-7"), Const("2.5"), Var("_tmp")}
	if len(args) != len(want) {
		t.Fatalf("args = %v", args)
	}
	for i := range want {
		if args[i] != want[i] {
			t.Errorf("arg %d = %v want %v", i, args[i], want[i])
		}
	}
}

func TestParseZeroArity(t *testing.T) {
	q, err := ParseQuery("q() :- r()")
	if err != nil {
		t.Fatal(err)
	}
	if q.Arity() != 0 || q.Body[0].Arity() != 0 {
		t.Fatalf("zero-arity parse wrong: %v", q)
	}
}

func TestParseProgram(t *testing.T) {
	src := `
% views for the running example
v1(X,Y) :- r(X,Z), s(Z,Y).
v2(X) :- r(X,X).
# facts
r(a,b).
s(b,c).
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Queries) != 2 || len(prog.Facts) != 2 {
		t.Fatalf("program shape: %d queries, %d facts", len(prog.Queries), len(prog.Facts))
	}
	if prog.Facts[0].String() != "r(a,b)" || prog.Facts[1].String() != "s(b,c)" {
		t.Fatalf("facts = %v", prog.Facts)
	}
}

func TestParseViews(t *testing.T) {
	vs, err := ParseViews("v1(X) :- r(X). v2(Y) :- s(Y).")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("views = %v", vs)
	}
	if _, err := ParseViews("v1(X) :- r(X). r(a)."); err == nil {
		t.Fatal("fact in view file accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"q(X) :-",
		"q(X :- r(X)",
		"q(X) :- r(X",
		"q(X) :- r(X) s(X)",
		":- r(X)",
		"q(X) :- r(X), <",
		"q(X)",          // fact with variable
		"q(X) :- r(X).", // trailing content below
	}
	for _, src := range cases[:7] {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) accepted", src)
		}
	}
	if _, err := ParseQuery("q(X) :- r(X). extra(Y) :- s(Y)."); err == nil {
		t.Error("trailing statement accepted by ParseQuery")
	}
	if _, err := ParseProgram("q(a) r(b)."); err == nil {
		t.Error("missing '.' between statements accepted")
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	_, err := ParseProgram("v1(X) :- r(X).\nv2(Y :- s(Y).")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestMustParseQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseQuery("not a query")
}

func TestParsePrintRoundTrip(t *testing.T) {
	cases := []string{
		"q(X,Y) :- r(X,Z), s(Z,Y).",
		"q(X) :- r(X,X), X < 5.",
		"q() :- r(a,b).",
		"q(X,a) :- edge(X,Y), edge(Y,X), X != Y.",
		"q(X) :- r(X,'Hello World'), X >= -3.",
	}
	for _, src := range cases {
		q := MustParseQuery(src)
		if got := q.String(); got != src {
			t.Errorf("round trip %q -> %q", src, got)
		}
		// Idempotence: parse the printed form again.
		q2 := MustParseQuery(q.String())
		if q2.String() != q.String() {
			t.Errorf("second round trip differs: %q vs %q", q2.String(), q.String())
		}
	}
}

// quickQuery builds a random but well-formed query from raw fuzz inputs.
func quickQuery(nPreds, nAtoms, nVars uint8) *Query {
	preds := []string{"r", "s", "t", "u"}
	np := int(nPreds)%len(preds) + 1
	na := int(nAtoms)%5 + 1
	nv := int(nVars)%6 + 1
	vars := make([]Term, nv)
	for i := range vars {
		vars[i] = Var("V" + string(rune('0'+i)))
	}
	body := make([]Atom, na)
	for i := range body {
		p := preds[i%np]
		body[i] = NewAtom(p, vars[i%nv], vars[(i+1)%nv])
	}
	return &Query{Head: NewAtom("q", vars[0]), Body: body}
}

func TestQuickParsePrintRoundTrip(t *testing.T) {
	f := func(a, b, c uint8) bool {
		q := quickQuery(a, b, c)
		parsed, err := ParseQuery(q.String())
		if err != nil {
			return false
		}
		return parsed.String() == q.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCanonicalStringOrderInsensitive(t *testing.T) {
	f := func(a, b, c uint8) bool {
		q := quickQuery(a, b, c)
		// Reverse the body.
		rev := q.Clone()
		for i, j := 0, len(rev.Body)-1; i < j; i, j = i+1, j-1 {
			rev.Body[i], rev.Body[j] = rev.Body[j], rev.Body[i]
		}
		return q.CanonicalString() == rev.CanonicalString()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
