package cq

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
)

// Query templates. A template is the canonical form of a query with its
// constants abstracted to placeholders, so that a stream of point lookups
// differing only in the constants they select on — q(X) :- r(X,'a'),
// q(X) :- r(X,'b'), ... — shares one template, and therefore one cached
// plan. The placeholders are ordinary canonical variables; Template.Params
// records which ones they are and Template.Args the source query's
// constants in the same order, the binding that re-instantiates it.
//
// Abstraction rules:
//
//   - only constants that occur in at least one relational body atom are
//     abstracted; when one is, every head and body occurrence of that
//     constant becomes the same placeholder, preserving the equality
//     pattern among constant positions (two queries whose constants are
//     equal at different position sets get different templates, as they
//     must);
//   - comparison occurrences always stay concrete, even of abstracted
//     constants: comparison thresholds change which rewritings are
//     equivalent (a ground comparison like 5 > 3 is decidable at plan
//     time; its abstraction V0 > 3 is not), so they are part of the
//     template's identity. Instantiation stays exact — the concrete
//     comparison is the one every sharing query carries verbatim;
//   - constants occurring only in the head, or only in comparisons, stay
//     concrete: abstracting the former would make the template unsafe (a
//     placeholder with no relational occurrence cannot be planned or
//     bound), and the latter is the threshold rule above.
//
// A query without body constants is its own template (no placeholders), so
// template fingerprints strictly generalise the α-equivalence fingerprints:
// plans cached per template subsume the old per-fingerprint cache.

// tmplPrefix marks the transient placeholder variables CanonicalizeTemplate
// substitutes for constants before canonicalising. The NUL byte cannot
// appear in parsed variable names, so the names cannot collide with the
// query's own variables; they never escape — canonicalisation renames them
// to ordinary V<i> names.
const tmplPrefix = "\x00$"

// Template is a parameterized query template: the canonical query with
// abstracted constants replaced by placeholder variables.
type Template struct {
	// Query is the canonical template. Placeholders are ordinary canonical
	// variables (V<i>); the head keeps its original shape.
	Query *Query
	// Params lists the canonical names of the placeholder variables in
	// binding order (ascending canonical index). Empty when the source
	// query has no body constants.
	Params []string
	// Args holds the source query's constants in Params order — the
	// binding under which Query instantiates back to (an α-variant of)
	// the source query.
	Args []string
}

// CanonicalizeTemplate abstracts q's constants to placeholders and returns
// the canonical template together with the binding that reproduces q. Two
// queries that differ only in variable names, subgoal order and/or the
// values of their body constants share the same template (and fingerprint);
// their Args differ.
func CanonicalizeTemplate(q *Query) *Template {
	abstractable := bodyConstants(q)
	if len(abstractable) == 0 {
		return &Template{Query: Canonicalize(q)}
	}

	// Substitute every head and body occurrence of each abstractable
	// constant with a reserved placeholder variable, one per constant
	// value. Comparison occurrences are deliberately left concrete.
	sub := func(t Term) Term {
		if t.IsConst() && abstractable[t.Lex] {
			return Term{Kind: Variable, Lex: tmplPrefix + t.Lex}
		}
		return t
	}
	g := q.Clone()
	for i, t := range g.Head.Args {
		g.Head.Args[i] = sub(t)
	}
	for ai := range g.Body {
		for i, t := range g.Body[ai].Args {
			g.Body[ai].Args[i] = sub(t)
		}
	}

	ct, ren := canonicalizeRen(g)
	tmpl := &Template{Query: ct}
	for c := range abstractable {
		tmpl.Params = append(tmpl.Params, ren[tmplPrefix+c])
		tmpl.Args = append(tmpl.Args, c)
	}
	// Binding order: ascending canonical variable index. The canonical
	// form is α-invariant, so every α-variant of every instantiation of
	// the template derives the same order.
	sort.Sort(&byCanonIndex{tmpl.Params, tmpl.Args})
	return tmpl
}

// bodyConstants returns the set of constants occurring in at least one
// relational body atom of q — the abstractable ones.
func bodyConstants(q *Query) map[string]bool {
	set := make(map[string]bool)
	for _, a := range q.Body {
		for _, t := range a.Args {
			if t.IsConst() {
				set[t.Lex] = true
			}
		}
	}
	return set
}

// byCanonIndex sorts Params (canonical names "V<i>") by ascending index,
// carrying Args along.
type byCanonIndex struct {
	params []string
	args   []string
}

func (s *byCanonIndex) Len() int { return len(s.params) }
func (s *byCanonIndex) Less(i, j int) bool {
	return canonIndex(s.params[i]) < canonIndex(s.params[j])
}
func (s *byCanonIndex) Swap(i, j int) {
	s.params[i], s.params[j] = s.params[j], s.params[i]
	s.args[i], s.args[j] = s.args[j], s.args[i]
}

// canonIndex parses the numeric index of a canonical variable name V<i>.
func canonIndex(name string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(name, "V"))
	return n
}

// Fingerprint returns the template's cache key: queries sharing a template
// share the key. The placeholder set is part of the identity — a query
// selecting on a constant and one joining a plain variable in the same
// position canonicalise to the same query text but are different templates.
func (t *Template) Fingerprint() string {
	sum := sha256.Sum256([]byte(t.Query.String() + "\x00" + strings.Join(t.Params, ",")))
	return hex.EncodeToString(sum[:16])
}

// NumParams returns the number of placeholders.
func (t *Template) NumParams() int { return len(t.Params) }

// PlanQuery returns the query a planner should rewrite: the template with
// its placeholders appended to the head as extra distinguished variables.
// Distinguishing them forces every rewriting to expose the parameter
// positions, so a cached plan can filter on any binding at execution time;
// callers compile the resulting rewriting back at the original arity with
// the placeholders as parameter slots. Without placeholders it returns the
// template query itself.
func (t *Template) PlanQuery() *Query {
	if len(t.Params) == 0 {
		return t.Query
	}
	pq := t.Query.Clone()
	for _, p := range t.Params {
		pq.Head.Args = append(pq.Head.Args, Var(p))
	}
	return pq
}

// TemplateFingerprint returns the template cache key of q directly:
// CanonicalizeTemplate(q).Fingerprint().
func TemplateFingerprint(q *Query) string {
	return CanonicalizeTemplate(q).Fingerprint()
}
