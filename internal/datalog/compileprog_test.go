package datalog

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/storage"
)

func mustCompileProgram(t *testing.T, p *Program, db *storage.Database) *CompiledProgram {
	t.Helper()
	cp, err := CompileProgram(p, cost.NewRowCatalog(db))
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestCompiledProgramTransitiveClosure(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	p := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	cp := mustCompileProgram(t, p, db)
	out, err := cp.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	want := []storage.Tuple{
		{"a", "b"}, {"a", "c"}, {"a", "d"},
		{"b", "c"}, {"b", "d"},
		{"c", "d"},
	}
	if got := out.Relation("tc").Tuples(); !storage.TuplesEqual(got, want) {
		t.Fatalf("tc = %v want %v", got, want)
	}
	if db.Relation("tc") != nil {
		t.Fatal("Eval mutated the input database")
	}
}

func TestCompiledProgramStats(t *testing.T) {
	// Chain a->b->c->d: the linear rule needs one round per extra hop, so
	// the loop runs round 0 plus delta rounds until a round derives nothing.
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	p := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	cp := mustCompileProgram(t, p, db)
	tuples, stats, err := cp.EvalRelation(db, "tc", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 6 {
		t.Fatalf("tc tuples = %v", tuples)
	}
	if stats.Derived != 6 {
		t.Fatalf("Derived = %d, want 6", stats.Derived)
	}
	// Round 0 derives the edges, round 1 the 2-hop pairs, round 2 the 3-hop
	// pair, round 3 derives nothing new but still runs (it consumes the
	// round-2 delta).
	if stats.Iterations != 4 {
		t.Fatalf("Iterations = %d, want 4", stats.Iterations)
	}
}

func TestCompiledProgramMutualRecursion(t *testing.T) {
	// even/odd distance reachability over a chain: mutually recursive IDB
	// predicates exercise cross-rule deltas.
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"}, [2]string{"d", "a"})
	p := NewProgram(
		RuleFromQuery(mustQ("odd(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("even(X,Z) :- odd(X,Y), e(Y,Z)")),
		RuleFromQuery(mustQ("odd(X,Z) :- even(X,Y), e(Y,Z)")),
	)
	cp := mustCompileProgram(t, p, db)
	got, err := cp.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.EvalInterp(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"odd", "even"} {
		if !storage.TuplesEqual(got.Relation(pred).Tuples(), want.Relation(pred).Tuples()) {
			t.Fatalf("%s: compiled %v want %v", pred, got.Relation(pred).Tuples(), want.Relation(pred).Tuples())
		}
	}
}

func TestCompiledProgramSkolemHeads(t *testing.T) {
	// Inverse-rule shape: two rules emit the same Skolem function so the
	// compiled emitter must produce joinable values identical to the
	// interpreter's.
	db := storage.NewDatabase()
	db.Insert("v", storage.Tuple{"a"})
	db.Insert("v", storage.Tuple{"b"})
	rules := []Rule{
		{
			HeadPred: "r",
			Head: []HeadTerm{
				{Term: cq.Var("X")},
				{Skolem: &Skolem{Name: "f0", Args: []string{"X"}}},
			},
			Body: []cq.Atom{cq.NewAtom("v", cq.Var("X"))},
		},
		{
			HeadPred: "s",
			Head: []HeadTerm{
				{Skolem: &Skolem{Name: "f0", Args: []string{"X"}}},
			},
			Body: []cq.Atom{cq.NewAtom("v", cq.Var("X"))},
		},
		RuleFromQuery(mustQ("joined(X) :- r(X,W), s(W)")),
	}
	p := NewProgram(rules...)
	cp := mustCompileProgram(t, p, db)
	out, err := cp.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("joined").Len() != 2 {
		t.Fatalf("joined = %v", out.Relation("joined").Tuples())
	}
	want, err := p.EvalInterp(db)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(out.Relation("r").Tuples(), want.Relation("r").Tuples()) {
		t.Fatalf("skolem values diverge: compiled %v interp %v",
			out.Relation("r").Tuples(), want.Relation("r").Tuples())
	}
}

func TestCompiledProgramHeadConstantAndComparison(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("n", storage.Tuple{"1"})
	db.Insert("n", storage.Tuple{"5"})
	p := NewProgram(RuleFromQuery(mustQ("big(X,tag) :- n(X), X > 3")))
	cp := mustCompileProgram(t, p, db)
	out, err := cp.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(out.Relation("big").Tuples(), []storage.Tuple{{"5", "tag"}}) {
		t.Fatalf("big = %v", out.Relation("big").Tuples())
	}
}

func TestCompiledProgramGroundFalseComparison(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("n", storage.Tuple{"1"})
	q := mustQ("p(X) :- n(X)")
	q.AddComparison(cq.NewComparison(cq.IntConst(1), cq.Gt, cq.IntConst(2)))
	p := NewProgram(RuleFromQuery(q))
	cp := mustCompileProgram(t, p, db)
	out, err := cp.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("p") != nil && out.Relation("p").Len() != 0 {
		t.Fatalf("p = %v, want empty", out.Relation("p").Tuples())
	}
}

func TestCompiledProgramUnsafeComparisonVarDerivesNothing(t *testing.T) {
	// A comparison variable in no body atom: the interpreter filters every
	// binding silently; the compiled variant is marked empty.
	db := storage.NewDatabase()
	db.Insert("n", storage.Tuple{"1"})
	q := mustQ("p(X) :- n(X)")
	q.AddComparison(cq.NewComparison(cq.Var("Zfree"), cq.Lt, cq.IntConst(9)))
	p := NewProgram(RuleFromQuery(q))
	cp := mustCompileProgram(t, p, db)
	out, err := cp.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("p") != nil && out.Relation("p").Len() != 0 {
		t.Fatalf("p = %v, want empty", out.Relation("p").Tuples())
	}
	interp, err := p.EvalInterp(db)
	if err != nil {
		t.Fatal(err)
	}
	if interp.Relation("p").Len() != 0 {
		t.Fatalf("interp disagrees: %v", interp.Relation("p").Tuples())
	}
}

func TestCompiledProgramUnboundHeadVarErrors(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("v", storage.Tuple{"a"})
	rule := Rule{
		HeadPred: "bad",
		Head:     []HeadTerm{{Term: cq.Var("Z")}},
		Body:     []cq.Atom{cq.NewAtom("v", cq.Var("X"))},
	}
	cp := mustCompileProgram(t, NewProgram(rule), db)
	if _, err := cp.Eval(db); err == nil {
		t.Fatal("unsafe rule evaluated without error")
	}
	// No body match → no error, matching the interpreter's lazy check.
	empty := storage.NewDatabase()
	if _, err := cp.Eval(empty); err != nil {
		t.Fatalf("unsafe rule with empty body relation errored: %v", err)
	}
}

func TestCompiledProgramUnboundSkolemArgErrors(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("v", storage.Tuple{"a"})
	rule := Rule{
		HeadPred: "bad",
		Head:     []HeadTerm{{Skolem: &Skolem{Name: "f", Args: []string{"Missing"}}}},
		Body:     []cq.Atom{cq.NewAtom("v", cq.Var("X"))},
	}
	cp := mustCompileProgram(t, NewProgram(rule), db)
	if _, err := cp.Eval(db); err == nil {
		t.Fatal("unbound Skolem argument evaluated without error")
	}
}

func TestCompileProgramArityConflict(t *testing.T) {
	p := NewProgram(
		RuleFromQuery(mustQ("p(X) :- e(X,Y)")),
		RuleFromQuery(mustQ("p(X,Y) :- e(X,Y)")),
	)
	if _, err := CompileProgram(p, nil); err == nil {
		t.Fatal("arity conflict compiled without error")
	}
}

func TestCompiledProgramEDBSeedsIDBRelation(t *testing.T) {
	// The derived predicate also exists in the EDB: its facts seed the
	// fixpoint and survive into the result, as with the interpreter.
	db := edgeDB([2]string{"a", "b"})
	db.Insert("tc", storage.Tuple{"x", "y"})
	p := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	cp := mustCompileProgram(t, p, db)
	got, err := cp.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.EvalInterp(db)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(got.Relation("tc").Tuples(), want.Relation("tc").Tuples()) {
		t.Fatalf("tc = %v want %v", got.Relation("tc").Tuples(), want.Relation("tc").Tuples())
	}
	// Arity clash between EDB relation and rule head is an evaluation error.
	bad := storage.NewDatabase()
	bad.Insert("tc", storage.Tuple{"only-one-column"})
	if _, err := cp.Eval(bad); err == nil {
		t.Fatal("arity clash with EDB relation evaluated without error")
	}
}

func TestCompiledProgramEvalRelation(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"})
	p := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	cp := mustCompileProgram(t, p, db)
	tuples, _, err := cp.EvalRelation(db, "tc", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(tuples, []storage.Tuple{{"a", "b"}, {"b", "c"}, {"a", "c"}}) {
		t.Fatalf("tc = %v", tuples)
	}
	// EDB predicate: returns a copy of the base tuples.
	edges, _, err := cp.EvalRelation(db, "e", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Fatalf("e = %v", edges)
	}
	// Unknown predicate: nil.
	if none, _, _ := cp.EvalRelation(db, "nope", 1); none != nil {
		t.Fatalf("nope = %v", none)
	}
}

func TestCompiledProgramDescribe(t *testing.T) {
	db := edgeDB([2]string{"a", "b"})
	p := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	cp := mustCompileProgram(t, p, db)
	d := cp.Describe()
	for _, want := range []string{"rule 0", "full", "Δtc@0", "delta"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestProgramEvalDoesNotMutateInput(t *testing.T) {
	// Program.Eval freezes only its private clone: the input database gains
	// neither relations nor column indexes, so concurrent Eval calls over
	// one shared unfrozen database stay safe (as with EvalInterp).
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"})
	p := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	if _, err := p.Eval(db); err != nil {
		t.Fatal(err)
	}
	if db.Relation("tc") != nil {
		t.Fatal("Eval added a relation to the input database")
	}
	for col := 0; col < 2; col++ {
		if _, ok := db.Relation("e").ColumnIndex(col); ok {
			t.Fatalf("Eval built an index on input column %d", col)
		}
	}
}

func TestProgramEvalMatchesInterpOnCycle(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "a"})
	p := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), tc(Y,Z)")),
	)
	got, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.EvalInterp(db)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(got.Relation("tc").Tuples(), want.Relation("tc").Tuples()) {
		t.Fatalf("tc = %v want %v", got.Relation("tc").Tuples(), want.Relation("tc").Tuples())
	}
}
