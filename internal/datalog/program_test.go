package datalog

import (
	"strings"
	"testing"

	"repro/internal/cq"
	"repro/internal/storage"
)

func TestProgramNonRecursive(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"})
	p := NewProgram(RuleFromQuery(mustQ("hop(X,Z) :- e(X,Y), e(Y,Z)")))
	out, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("hop").Len() != 1 {
		t.Fatalf("hop = %v", out.Relation("hop").Tuples())
	}
	if db.Relation("hop") != nil {
		t.Fatal("Eval mutated the input database")
	}
}

func TestProgramTransitiveClosure(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	p := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	out, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	want := []storage.Tuple{
		{"a", "b"}, {"a", "c"}, {"a", "d"},
		{"b", "c"}, {"b", "d"},
		{"c", "d"},
	}
	got := out.Relation("tc").Tuples()
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("tc = %v want %v", got, want)
	}
}

func TestProgramTransitiveClosureCycle(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "a"})
	p := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), tc(Y,Z)")),
	)
	out, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("tc").Len() != 4 { // ab, ba, aa, bb
		t.Fatalf("tc = %v", out.Relation("tc").Tuples())
	}
}

func TestSkolemValues(t *testing.T) {
	s := Skolem{Name: "f1", Args: []string{"X", "Y"}}
	v, ok := s.Value(Bindings{"X": "a", "Y": "b"})
	if !ok || !IsSkolemValue(v) {
		t.Fatalf("Value = %q, %v", v, ok)
	}
	v2, _ := s.Value(Bindings{"X": "a", "Y": "c"})
	if v == v2 {
		t.Fatal("distinct arguments gave equal Skolem values")
	}
	same, _ := s.Value(Bindings{"X": "a", "Y": "b"})
	if v != same {
		t.Fatal("same arguments gave different Skolem values")
	}
	if _, ok := s.Value(Bindings{"X": "a"}); ok {
		t.Fatal("unbound argument accepted")
	}
	if IsSkolemValue("plain") {
		t.Fatal("plain value reported Skolem")
	}
	if !HasSkolem(storage.Tuple{"a", v}) || HasSkolem(storage.Tuple{"a", "b"}) {
		t.Fatal("HasSkolem wrong")
	}
	if s.String() != "f1(X,Y)" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestProgramWithSkolemHeads(t *testing.T) {
	// Inverse-rule shape: from v(X) recover r(X, f(X)).
	db := storage.NewDatabase()
	db.Insert("v", storage.Tuple{"a"})
	db.Insert("v", storage.Tuple{"b"})
	rule := Rule{
		HeadPred: "r",
		Head: []HeadTerm{
			{Term: cq.Var("X")},
			{Skolem: &Skolem{Name: "f0", Args: []string{"X"}}},
		},
		Body: []cq.Atom{cq.NewAtom("v", cq.Var("X"))},
	}
	out, err := NewProgram(rule).Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	r := out.Relation("r")
	if r.Len() != 2 {
		t.Fatalf("r = %v", r.Tuples())
	}
	for _, tup := range r.Tuples() {
		if IsSkolemValue(tup[0]) || !IsSkolemValue(tup[1]) {
			t.Fatalf("tuple shape wrong: %v", tup)
		}
	}
	// Skolem joins: both rules produce the same skolem value for the same
	// argument, so a join through the second column succeeds.
	p2 := NewProgram(
		rule,
		Rule{
			HeadPred: "s",
			Head: []HeadTerm{
				{Skolem: &Skolem{Name: "f0", Args: []string{"X"}}},
			},
			Body: []cq.Atom{cq.NewAtom("v", cq.Var("X"))},
		},
		RuleFromQuery(mustQ("joined(X) :- r(X,W), s(W)")),
	)
	out2, err := p2.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Relation("joined").Len() != 2 {
		t.Fatalf("joined = %v", out2.Relation("joined").Tuples())
	}
}

func TestProgramRuleWithComparisons(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("n", storage.Tuple{"1"})
	db.Insert("n", storage.Tuple{"5"})
	p := NewProgram(RuleFromQuery(mustQ("big(X) :- n(X), X > 3")))
	out, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(out.Relation("big").Tuples(), []storage.Tuple{{"5"}}) {
		t.Fatalf("big = %v", out.Relation("big").Tuples())
	}
}

func TestProgramString(t *testing.T) {
	rule := Rule{
		HeadPred: "r",
		Head: []HeadTerm{
			{Term: cq.Var("X")},
			{Skolem: &Skolem{Name: "f0", Args: []string{"X"}}},
		},
		Body: []cq.Atom{cq.NewAtom("v", cq.Var("X"))},
	}
	p := NewProgram(rule, RuleFromQuery(mustQ("q(X) :- r(X,Y), X < 3")))
	s := p.String()
	if !strings.Contains(s, "r(X,f0(X)) :- v(X).") {
		t.Fatalf("program string:\n%s", s)
	}
	if !strings.Contains(s, "q(X) :- r(X,Y), X < 3.") {
		t.Fatalf("program string:\n%s", s)
	}
}

func TestProgramHeadConstant(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("v", storage.Tuple{"a"})
	rule := Rule{
		HeadPred: "tagged",
		Head:     []HeadTerm{{Term: cq.Var("X")}, {Term: cq.Const("k")}},
		Body:     []cq.Atom{cq.NewAtom("v", cq.Var("X"))},
	}
	out, err := NewProgram(rule).Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(out.Relation("tagged").Tuples(), []storage.Tuple{{"a", "k"}}) {
		t.Fatalf("tagged = %v", out.Relation("tagged").Tuples())
	}
}

func TestProgramUnboundHeadVarErrors(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("v", storage.Tuple{"a"})
	rule := Rule{
		HeadPred: "bad",
		Head:     []HeadTerm{{Term: cq.Var("Z")}},
		Body:     []cq.Atom{cq.NewAtom("v", cq.Var("X"))},
	}
	if _, err := NewProgram(rule).Eval(db); err == nil {
		t.Fatal("unsafe rule evaluated without error")
	}
}
