package datalog

import (
	"repro/internal/cq"
	"repro/internal/storage"
)

// Connected-component decomposition. A conjunctive query whose join graph
// is disconnected would otherwise evaluate as a cross product of its
// components; rewritings produced by the view-based algorithms frequently
// have this shape (several view atoms sharing no variables). Evaluating
// each component independently, projecting onto the head variables early,
// and combining the (small) projected results turns an O(∏ |component|)
// enumeration into O(Σ |component| + |answers|).

// component is one connected piece of a query's body.
type component struct {
	atoms []cq.Atom
	comps []cq.Comparison
	// headVars are the head variables covered by this component, in
	// first-occurrence order of the query head.
	headVars []string
}

// splitComponents partitions the body atoms and comparisons of q into
// connected components. Comparisons act as edges too: a comparison whose
// variables span two components merges them.
func splitComponents(q *cq.Query) []component {
	n := len(q.Body)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	// Atoms sharing a variable are connected.
	varFirst := make(map[string]int)
	for i, a := range q.Body {
		for _, t := range a.Args {
			if !t.IsVar() {
				continue
			}
			if j, ok := varFirst[t.Lex]; ok {
				union(i, j)
			} else {
				varFirst[t.Lex] = i
			}
		}
	}
	// Comparisons connect the atoms owning their variables.
	for _, c := range q.Comparisons {
		var owners []int
		for _, t := range []cq.Term{c.Left, c.Right} {
			if t.IsVar() {
				if j, ok := varFirst[t.Lex]; ok {
					owners = append(owners, j)
				}
			}
		}
		for i := 1; i < len(owners); i++ {
			union(owners[0], owners[i])
		}
	}

	groups := make(map[int]*component)
	var order []int
	for i, a := range q.Body {
		root := find(i)
		g, ok := groups[root]
		if !ok {
			g = &component{}
			groups[root] = g
			order = append(order, root)
		}
		g.atoms = append(g.atoms, a)
	}
	for _, c := range q.Comparisons {
		root := -1
		for _, t := range []cq.Term{c.Left, c.Right} {
			if t.IsVar() {
				if j, ok := varFirst[t.Lex]; ok {
					root = find(j)
					break
				}
			}
		}
		if root >= 0 {
			groups[root].comps = append(groups[root].comps, c)
		} else if len(order) > 0 {
			// Constant-only comparison: attach to the first component (it
			// filters everything or nothing).
			groups[order[0]].comps = append(groups[order[0]].comps, c)
		}
	}
	// Record which head variables each component provides.
	seen := make(map[string]bool)
	for _, t := range q.Head.Args {
		if !t.IsVar() || seen[t.Lex] {
			continue
		}
		seen[t.Lex] = true
		if j, ok := varFirst[t.Lex]; ok {
			groups[find(j)].headVars = append(groups[find(j)].headVars, t.Lex)
		}
	}
	out := make([]component, 0, len(order))
	for _, root := range order {
		out = append(out, *groups[root])
	}
	return out
}

// evalDecomposed evaluates the query by components and invokes yield with
// complete head-variable bindings. It reports false if yield asked to stop.
func evalDecomposed(db relSource, comps []component, yield func(Bindings) bool) bool {
	// Evaluate each component, projecting onto its head variables.
	type projected struct {
		vars []string
		rows [][]string
	}
	parts := make([]projected, 0, len(comps))
	for _, c := range comps {
		p := projected{vars: c.headVars}
		dedup := make(map[string]bool)
		nonEmpty := false
		needed := make(map[string]bool, len(c.headVars))
		for _, v := range c.headVars {
			needed[v] = true
		}
		for _, cmp := range c.comps {
			for _, t := range []cq.Term{cmp.Left, cmp.Right} {
				if t.IsVar() {
					needed[t.Lex] = true
				}
			}
		}
		atoms, src := projectBody(db, c.atoms, needed)
		joinBody(src, atoms, c.comps, make(Bindings), func(b Bindings) bool {
			nonEmpty = true
			if len(p.vars) == 0 {
				return false // pure existence check: one witness suffices
			}
			row := make([]string, len(p.vars))
			for i, v := range p.vars {
				row[i] = b[v]
			}
			key := storage.Tuple(row).Key()
			if !dedup[key] {
				dedup[key] = true
				p.rows = append(p.rows, row)
			}
			return true
		})
		if !nonEmpty {
			return true // some component has no match: no answers at all
		}
		if len(p.vars) > 0 {
			parts = append(parts, p)
		}
	}
	// Combine the projected rows (cross product over distinct projections,
	// which is exactly the answer set's structure).
	b := make(Bindings)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(parts) {
			return yield(b)
		}
		for _, row := range parts[i].rows {
			for j, v := range parts[i].vars {
				b[v] = row[j]
			}
			if !rec(i + 1) {
				return false
			}
		}
		for _, v := range parts[i].vars {
			delete(b, v)
		}
		return true
	}
	return rec(0)
}
