package datalog

import (
	"fmt"
	"strings"

	"repro/internal/cq"
	"repro/internal/storage"
)

// Plan describes how the interpretive evaluator (EvalQueryInterp) executes
// a conjunctive query: its connected components, the projection decisions,
// and per-component join orders with access-path notes. It exists for
// diagnostics and for the cost model's documentation — production code
// paths do not depend on it. The compiled executor renders its own plan
// via CompiledPlan.Describe.
type Plan struct {
	Components []ComponentPlan
}

// ComponentPlan is the plan for one connected component.
type ComponentPlan struct {
	// Steps are the joined atoms in execution order.
	Steps []StepPlan
	// HeadVars are the variables this component contributes to the head.
	HeadVars []string
	// ExistenceOnly marks components with no head variables (evaluated as
	// a boolean guard).
	ExistenceOnly bool
}

// StepPlan is one join step.
type StepPlan struct {
	Atom cq.Atom
	// Projected reports whether don't-care columns were dropped.
	Projected bool
	// Access describes the expected access path: "scan" or "index(col=k)".
	Access string
	// Rows is the relation size at planning time.
	Rows int
}

// Explain computes the execution plan of q over db without evaluating it.
func Explain(db *storage.Database, q *cq.Query) Plan {
	var plan Plan
	for _, c := range splitComponents(q) {
		needed := make(map[string]bool, len(c.headVars))
		for _, v := range c.headVars {
			needed[v] = true
		}
		for _, cmp := range c.comps {
			for _, t := range []cq.Term{cmp.Left, cmp.Right} {
				if t.IsVar() {
					needed[t.Lex] = true
				}
			}
		}
		atoms, src := projectBody(db, c.atoms, needed)
		order := planOrder(src, atoms, make(Bindings))
		cp := ComponentPlan{HeadVars: c.headVars, ExistenceOnly: len(c.headVars) == 0}
		bound := make(map[string]bool)
		for _, idx := range order {
			a := atoms[idx]
			step := StepPlan{Atom: a, Projected: strings.HasPrefix(a.Pred, "\x00π")}
			if r := src.Relation(a.Pred); r != nil {
				step.Rows = r.Len()
			}
			step.Access = "scan"
			for i, t := range a.Args {
				if t.IsConst() || t.IsVar() && bound[t.Lex] {
					step.Access = fmt.Sprintf("index(col=%d)", i)
					break
				}
			}
			for _, t := range a.Args {
				if t.IsVar() {
					bound[t.Lex] = true
				}
			}
			cp.Steps = append(cp.Steps, step)
		}
		plan.Components = append(plan.Components, cp)
	}
	return plan
}

// String renders the plan for humans.
func (p Plan) String() string {
	var sb strings.Builder
	for i, c := range p.Components {
		fmt.Fprintf(&sb, "component %d", i)
		if c.ExistenceOnly {
			sb.WriteString(" (existence check)")
		} else {
			fmt.Fprintf(&sb, " -> %s", strings.Join(c.HeadVars, ","))
		}
		sb.WriteByte('\n')
		for j, s := range c.Steps {
			name := s.Atom.Pred
			if s.Projected {
				name = "π(" + strings.TrimPrefix(name, "\x00π") + ")"
			}
			fmt.Fprintf(&sb, "  %d. %s%v  %s rows=%d", j+1, name, renderArgs(s.Atom.Args), s.Access, s.Rows)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func renderArgs(args []cq.Term) string {
	parts := make([]string, len(args))
	for i, t := range args {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}
