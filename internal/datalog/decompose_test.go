package datalog

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/storage"
)

func TestSplitComponentsBasic(t *testing.T) {
	q := mustQ("q(X,A) :- r(X,Y), s(Y), t(A,B), u(C)")
	comps := splitComponents(q)
	if len(comps) != 3 {
		t.Fatalf("components = %d", len(comps))
	}
	// r,s share Y; t alone; u alone.
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c.atoms)]++
	}
	if sizes[2] != 1 || sizes[1] != 2 {
		t.Fatalf("component sizes wrong: %v", sizes)
	}
}

func TestSplitComponentsComparisonsMerge(t *testing.T) {
	// A and X live in different atom components but the comparison joins
	// them.
	q := mustQ("q(X,A) :- r(X), t(A), X < A")
	comps := splitComponents(q)
	if len(comps) != 1 {
		t.Fatalf("comparison should merge components: %d", len(comps))
	}
}

func TestSplitComponentsConstantComparison(t *testing.T) {
	q := mustQ("q(X,A) :- r(X), t(A), 1 < 2")
	comps := splitComponents(q)
	if len(comps) != 2 {
		t.Fatalf("components = %d", len(comps))
	}
	total := 0
	for _, c := range comps {
		total += len(c.comps)
	}
	if total != 1 {
		t.Fatalf("constant comparison lost: %d", total)
	}
}

func TestEvalDecomposedCrossProduct(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("a", storage.Tuple{"1"})
	db.Insert("a", storage.Tuple{"2"})
	db.Insert("b", storage.Tuple{"x"})
	db.Insert("b", storage.Tuple{"y"})
	got := EvalQuery(db, mustQ("q(X,Y) :- a(X), b(Y)"))
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestEvalDecomposedExistenceComponent(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("a", storage.Tuple{"1"})
	db.Insert("guard", storage.Tuple{"g"})
	// guard(W) has no head variable: it acts as an existence filter.
	got := EvalQuery(db, mustQ("q(X) :- a(X), guard(W)"))
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	// Empty guard relation: no answers.
	db2 := storage.NewDatabase()
	db2.Insert("a", storage.Tuple{"1"})
	got2 := EvalQuery(db2, mustQ("q(X) :- a(X), guard(W)"))
	if len(got2) != 0 {
		t.Fatalf("got %v", got2)
	}
}

func TestEvalDecomposedMatchesMonolithic(t *testing.T) {
	// Cross-check the decomposed path against a single-component rewrite
	// of the same semantics.
	db := storage.NewDatabase()
	for i := 0; i < 5; i++ {
		db.Insert("a", storage.Tuple{fmt.Sprint(i)})
		db.Insert("b", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i + 1)})
	}
	q := mustQ("q(X,Y,Z) :- a(X), b(Y,Z)")
	got := EvalQuery(db, q)
	if len(got) != 25 {
		t.Fatalf("got %d answers", len(got))
	}
}

func TestEvalDecomposedComparisonsWithinComponent(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("a", storage.Tuple{"1", "5"})
	db.Insert("a", storage.Tuple{"7", "5"})
	db.Insert("b", storage.Tuple{"x"})
	got := EvalQuery(db, mustQ("q(X,W) :- a(X,Y), b(W), X < Y"))
	if len(got) != 1 || got[0][0] != "1" {
		t.Fatalf("got %v", got)
	}
}

// The regression this machinery exists for: disconnected members must not
// take cross-product time.
func TestEvalDecomposedPerformance(t *testing.T) {
	db := storage.NewDatabase()
	for i := 0; i < 2000; i++ {
		db.Insert("v1", storage.Tuple{fmt.Sprint(i)})
		db.Insert("v2", storage.Tuple{fmt.Sprint(i)})
		db.Insert("v3", storage.Tuple{fmt.Sprint(i)})
	}
	q := mustQ("q(X) :- v1(X), v2(A), v3(B)")
	start := time.Now()
	got := EvalQuery(db, q)
	elapsed := time.Since(start)
	if len(got) != 2000 {
		t.Fatalf("got %d answers", len(got))
	}
	// A cross-product evaluation would enumerate 8e9 bindings; the
	// decomposed one touches ~6000 tuples. A generous bound proves the
	// fast path is in effect.
	if elapsed > 2*time.Second {
		t.Fatalf("decomposed evaluation too slow: %v", elapsed)
	}
}
