package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/storage"
)

// Differential property test for incremental view maintenance: on randomized
// update streams over random recursive programs — the progdiff corpus:
// transitive closures (linear and nonlinear), cycles, mutual recursion,
// Skolem heads, head constants, comparisons, don't-care columns — the
// incrementally maintained database must equal a full re-materialization
// from scratch after every batch, relation by relation, with exact set
// equality.

// randomUpdate draws one batch of base facts from the same distribution
// randomProgDB populates, so updates collide with existing tuples (no-op
// inserts) as often as they extend the database.
func randomUpdate(rng *rand.Rand) map[string][]storage.Tuple {
	node := func(i int) string { return fmt.Sprintf("n%d", i) }
	nodes := 3 + rng.Intn(6)
	upd := make(map[string][]storage.Tuple)
	for i := 0; i < 1+rng.Intn(4); i++ {
		upd["e"] = append(upd["e"], storage.Tuple{node(rng.Intn(nodes)), node(rng.Intn(nodes))})
	}
	if rng.Intn(2) == 0 {
		upd["u"] = append(upd["u"], storage.Tuple{node(rng.Intn(nodes))})
	}
	if rng.Intn(2) == 0 {
		upd["m"] = append(upd["m"], storage.Tuple{node(rng.Intn(nodes)), fmt.Sprint(rng.Intn(10))})
	}
	if rng.Intn(3) == 0 {
		upd["t3"] = append(upd["t3"], storage.Tuple{node(rng.Intn(nodes)), fmt.Sprint(rng.Intn(3)), fmt.Sprint(rng.Intn(3))})
	}
	return upd
}

func TestMaintainDeltaDifferential(t *testing.T) {
	streams := 400
	if testing.Short() {
		streams = 80
	}
	rng := rand.New(rand.NewSource(0x17A9))
	for stream := 0; stream < streams; stream++ {
		edb := randomProgDB(rng)
		prog := randomProgram(rng, stream)
		cp, err := CompileProgramIVM(prog, cost.NewRowCatalog(edb))
		if err != nil {
			t.Fatalf("stream %d: compile: %v\n%s", stream, err, prog)
		}

		// The maintained database: full materialization once, then deltas.
		maintained, err := cp.Eval(edb)
		if err != nil {
			t.Fatalf("stream %d: materialize: %v\n%s", stream, err, prog)
		}
		if rng.Intn(2) == 0 {
			maintained.BuildIndexes() // cover indexed probes and scan fallbacks
		}
		// The shadow EDB accumulates raw base facts for re-materialization.
		shadow := edb.Clone()

		batches := 1 + rng.Intn(4)
		for batch := 0; batch < batches; batch++ {
			upd := randomUpdate(rng)
			workers := 1 + rng.Intn(4)
			fresh, derived, stats, err := cp.ApplyInserts(maintained, upd, workers)
			if err != nil {
				t.Fatalf("stream %d batch %d: maintain: %v\n%s", stream, batch, err, prog)
			}
			for pred, tuples := range upd {
				for _, tup := range tuples {
					if err := shadow.Insert(pred, tup); err != nil {
						t.Fatalf("stream %d batch %d: shadow insert: %v", stream, batch, err)
					}
				}
			}
			total := 0
			for _, d := range derived {
				total += len(d)
			}
			if total != stats.Derived {
				t.Fatalf("stream %d batch %d: derived map has %d tuples, stats report %d", stream, batch, total, stats.Derived)
			}
			for pred, tuples := range fresh {
				for _, tup := range tuples {
					if !maintained.Relation(pred).Contains(tup) {
						t.Fatalf("stream %d batch %d: fresh tuple %s%v missing from db", stream, batch, pred, tup)
					}
				}
			}

			want, err := prog.EvalInterp(shadow)
			if err != nil {
				t.Fatalf("stream %d batch %d: interp: %v\n%s", stream, batch, err, prog)
			}
			diffDatabases(t, fmt.Sprintf("stream %d batch %d (incremental vs full)\n%s", stream, batch, prog), maintained, want)
		}
	}
}

// TestMaintainDeltaConjunctiveView is the deterministic engine-shaped case:
// a join view maintained under base inserts that create join partners both
// ways, including a batch where the two halves of a new join arrive
// together (the new⋈new case the post-batch database evaluation covers).
func TestMaintainDeltaConjunctiveView(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	base.Insert("s", storage.Tuple{"m", "x"})
	prog := NewProgram(RuleFromQuery(mustQ("v(X,Y) :- r(X,Z), s(Z,Y)")))
	cp, err := CompileProgramIVM(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := cp.Eval(base)
	if err != nil {
		t.Fatal(err)
	}
	db.BuildIndexes()
	if db.Relation("v").Len() != 1 {
		t.Fatalf("initial extent = %v", db.Relation("v").Tuples())
	}

	// Batch 1: a new r tuple joining an existing s tuple.
	_, derived, stats, err := cp.ApplyInserts(db, map[string][]storage.Tuple{"r": {{"b", "m"}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(derived["v"]) != 1 || derived["v"][0].Key() != (storage.Tuple{"b", "x"}).Key() {
		t.Fatalf("batch 1 derived %v, want v(b,x)", derived)
	}
	if stats.Iterations != 1 {
		t.Fatalf("batch 1 iterations = %d", stats.Iterations)
	}

	// Batch 2: both halves of a fresh join arrive in one batch, plus a
	// duplicate base fact that must not derive anything.
	_, derived, _, err = cp.ApplyInserts(db, map[string][]storage.Tuple{
		"r": {{"c", "n"}, {"a", "m"}},
		"s": {{"n", "y"}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(derived["v"]) != 1 || derived["v"][0].Key() != (storage.Tuple{"c", "y"}).Key() {
		t.Fatalf("batch 2 derived %v, want exactly v(c,y)", derived)
	}
	if !db.Relation("v").Frozen() {
		t.Fatal("maintained extent lost its indexes")
	}
}

// TestMaintainDeltaRecursive extends a transitive-closure chain by one edge
// and checks the propagation derives exactly the new closure tuples in a
// number of rounds proportional to the chain, against full recomputation.
func TestMaintainDeltaRecursive(t *testing.T) {
	base := storage.NewDatabase()
	for i := 0; i < 10; i++ {
		base.Insert("e", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i + 1)})
	}
	prog := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	cp, err := CompileProgramIVM(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := cp.Eval(base)
	if err != nil {
		t.Fatal(err)
	}
	db.BuildIndexes()
	before := db.Relation("tc").Len()

	_, derived, _, err := cp.ApplyInserts(db, map[string][]storage.Tuple{"e": {{"10", "11"}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The new edge closes 0..10 → 11: eleven new tc tuples.
	if len(derived["tc"]) != 11 {
		t.Fatalf("derived %d tc tuples, want 11: %v", len(derived["tc"]), derived["tc"])
	}
	if db.Relation("tc").Len() != before+11 {
		t.Fatalf("tc grew by %d, want 11", db.Relation("tc").Len()-before)
	}
	shadow := base.Clone()
	shadow.Insert("e", storage.Tuple{"10", "11"})
	want, err := prog.EvalInterp(shadow)
	if err != nil {
		t.Fatal(err)
	}
	diffDatabases(t, "recursive maintenance", db, want)
}

func TestMaintainDeltaErrors(t *testing.T) {
	prog := NewProgram(RuleFromQuery(mustQ("v(X) :- r(X,Y)")))
	plain, err := CompileProgram(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase()
	if _, _, err := plain.MaintainDelta(db, nil); err != ErrNotMaintenance {
		t.Fatalf("non-IVM program: err = %v, want ErrNotMaintenance", err)
	}
	if _, _, _, err := plain.ApplyInserts(db, nil, 1); err != ErrNotMaintenance {
		t.Fatalf("non-IVM ApplyInserts: err = %v, want ErrNotMaintenance", err)
	}

	cp, err := CompileProgramIVM(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.Insert("r", storage.Tuple{"a", "b"})
	mdb, err := cp.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	// Inserting into the derived relation is rejected.
	if _, _, _, err := cp.ApplyInserts(mdb, map[string][]storage.Tuple{"v": {{"z"}}}, 1); err == nil {
		t.Fatal("insert into derived relation accepted")
	}
	// Arity mismatches are rejected before anything is mutated.
	if _, _, _, err := cp.ApplyInserts(mdb, map[string][]storage.Tuple{
		"r":     {{"c", "d"}},
		"wrong": {{"1"}, {"1", "2"}},
	}, 1); err == nil {
		t.Fatal("mixed-arity batch accepted")
	}
	if mdb.Relation("r").Len() != 1 || mdb.Relation("wrong") != nil {
		t.Fatal("failed batch mutated the database")
	}
	// An empty batch is a no-op.
	fresh, derived, stats, err := cp.ApplyInserts(mdb, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 0 || len(derived) != 0 || stats.Iterations != 0 || stats.Derived != 0 {
		t.Fatalf("empty batch did work: %v %v %+v", fresh, derived, stats)
	}
}
