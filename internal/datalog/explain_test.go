package datalog

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestExplainSingleComponent(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"})
	p := Explain(db, mustQ("q(X,Z) :- e(X,Y), e(Y,Z)"))
	if len(p.Components) != 1 {
		t.Fatalf("components = %d", len(p.Components))
	}
	steps := p.Components[0].Steps
	if len(steps) != 2 {
		t.Fatalf("steps = %v", steps)
	}
	if steps[0].Access != "scan" {
		t.Fatalf("first step access = %q", steps[0].Access)
	}
	if !strings.HasPrefix(steps[1].Access, "index(") {
		t.Fatalf("second step should use the index: %q", steps[1].Access)
	}
	if steps[0].Rows != 2 {
		t.Fatalf("rows = %d", steps[0].Rows)
	}
	out := p.String()
	if !strings.Contains(out, "component 0") || !strings.Contains(out, "index(") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestExplainProjectionVisible(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", storage.Tuple{"a", "x"})
	p := Explain(db, mustQ("q(X) :- r(X,F)"))
	if !p.Components[0].Steps[0].Projected {
		t.Fatal("projection not reflected in plan")
	}
	if !strings.Contains(p.String(), "π(") {
		t.Fatalf("render misses projection marker:\n%s", p)
	}
}

func TestExplainComponentsAndExistence(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("a", storage.Tuple{"1"})
	db.Insert("guard", storage.Tuple{"g"})
	p := Explain(db, mustQ("q(X) :- a(X), guard(W)"))
	if len(p.Components) != 2 {
		t.Fatalf("components = %d", len(p.Components))
	}
	foundExistence := false
	for _, c := range p.Components {
		if c.ExistenceOnly {
			foundExistence = true
		}
	}
	if !foundExistence {
		t.Fatal("existence-only component not marked")
	}
	if !strings.Contains(p.String(), "existence check") {
		t.Fatalf("render:\n%s", p)
	}
}

func TestExplainConstantUsesIndex(t *testing.T) {
	db := edgeDB([2]string{"a", "b"})
	p := Explain(db, mustQ("q(Y) :- e(a,Y)"))
	if p.Components[0].Steps[0].Access != "index(col=0)" {
		t.Fatalf("access = %q", p.Components[0].Steps[0].Access)
	}
}
