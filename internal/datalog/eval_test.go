package datalog

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/storage"
)

func mustQ(src string) *cq.Query { return cq.MustParseQuery(src) }

func edgeDB(edges ...[2]string) *storage.Database {
	db := storage.NewDatabase()
	for _, e := range edges {
		db.Insert("e", storage.Tuple{e[0], e[1]})
	}
	return db
}

func TestEvalQuerySimpleJoin(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	got := EvalQuery(db, mustQ("q(X,Z) :- e(X,Y), e(Y,Z)"))
	want := []storage.Tuple{{"a", "c"}, {"b", "d"}}
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestEvalQueryConstantsInBody(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"})
	got := EvalQuery(db, mustQ("q(Y) :- e(a,Y)"))
	if !storage.TuplesEqual(got, []storage.Tuple{{"b"}}) {
		t.Fatalf("got %v", got)
	}
}

func TestEvalQueryConstantsInHead(t *testing.T) {
	db := edgeDB([2]string{"a", "b"})
	got := EvalQuery(db, mustQ("q(X,tag) :- e(X,Y)"))
	if !storage.TuplesEqual(got, []storage.Tuple{{"a", "tag"}}) {
		t.Fatalf("got %v", got)
	}
}

func TestEvalQueryRepeatedVariable(t *testing.T) {
	db := edgeDB([2]string{"a", "a"}, [2]string{"a", "b"})
	got := EvalQuery(db, mustQ("q(X) :- e(X,X)"))
	if !storage.TuplesEqual(got, []storage.Tuple{{"a"}}) {
		t.Fatalf("got %v", got)
	}
}

func TestEvalQueryComparisons(t *testing.T) {
	db := storage.NewDatabase()
	for _, v := range []string{"1", "3", "5", "7"} {
		db.Insert("r", storage.Tuple{v})
	}
	got := EvalQuery(db, mustQ("q(X) :- r(X), X > 2, X < 6"))
	if !storage.TuplesEqual(got, []storage.Tuple{{"3"}, {"5"}}) {
		t.Fatalf("got %v", got)
	}
	// Variable-variable comparison.
	db2 := edgeDB([2]string{"1", "2"}, [2]string{"3", "2"})
	got2 := EvalQuery(db2, mustQ("q(X,Y) :- e(X,Y), X < Y"))
	if !storage.TuplesEqual(got2, []storage.Tuple{{"1", "2"}}) {
		t.Fatalf("got %v", got2)
	}
}

func TestEvalQueryMissingRelation(t *testing.T) {
	db := edgeDB([2]string{"a", "b"})
	got := EvalQuery(db, mustQ("q(X) :- nope(X)"))
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	// A join with a missing relation is empty but must not drop sibling
	// enumeration semantics.
	got = EvalQuery(db, mustQ("q(X) :- e(X,Y), nope(Y)"))
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestEvalQueryCartesianProduct(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("a", storage.Tuple{"1"})
	db.Insert("a", storage.Tuple{"2"})
	db.Insert("b", storage.Tuple{"x"})
	got := EvalQuery(db, mustQ("q(X,Y) :- a(X), b(Y)"))
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestEvalQueryDeduplicates(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"a", "c"})
	got := EvalQuery(db, mustQ("q(X) :- e(X,Y)"))
	if !storage.TuplesEqual(got, []storage.Tuple{{"a"}}) {
		t.Fatalf("got %v", got)
	}
}

func TestEvalUnion(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", storage.Tuple{"1"})
	db.Insert("s", storage.Tuple{"2"})
	db.Insert("s", storage.Tuple{"1"})
	u := cq.NewUnion(mustQ("q(X) :- r(X)"), mustQ("q(X) :- s(X)"))
	got := EvalUnion(db, u)
	if !storage.TuplesEqual(got, []storage.Tuple{{"1"}, {"2"}}) {
		t.Fatalf("got %v", got)
	}
}

func TestCountQuery(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"})
	if n := CountQuery(db, mustQ("q(X) :- e(X,Y)")); n != 2 {
		t.Fatalf("CountQuery = %d", n)
	}
}

func TestMaterializeViews(t *testing.T) {
	base := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"})
	views := []*cq.Query{
		mustQ("v1(X,Y) :- e(X,Y)"),
		mustQ("v2(X) :- e(X,Y), e(Y,Z)"),
	}
	vdb, err := MaterializeViews(base, views)
	if err != nil {
		t.Fatal(err)
	}
	if vdb.Relation("v1").Len() != 2 || vdb.Relation("v2").Len() != 1 {
		t.Fatalf("view extents wrong: v1=%d v2=%d", vdb.Relation("v1").Len(), vdb.Relation("v2").Len())
	}
	if vdb.Relation("e") != nil {
		t.Fatal("base relation leaked into view database")
	}
}

func TestEvalAgainstFrozenQuery(t *testing.T) {
	// The canonical database of q must satisfy q (Chandra–Merlin sanity).
	q := mustQ("q(X,Y) :- e(X,Z), e(Z,Y), f(Y)")
	db := storage.NewDatabase()
	facts := []cq.Atom{
		cq.NewAtom("e", cq.Const("cx"), cq.Const("cz")),
		cq.NewAtom("e", cq.Const("cz"), cq.Const("cy")),
		cq.NewAtom("f", cq.Const("cy")),
	}
	if err := db.LoadFacts(facts); err != nil {
		t.Fatal(err)
	}
	got := EvalQuery(db, q)
	if !storage.TuplesEqual(got, []storage.Tuple{{"cx", "cy"}}) {
		t.Fatalf("got %v", got)
	}
}
