// Package datalog evaluates conjunctive queries, unions of conjunctive
// queries, and (recursive) datalog programs with Skolem function terms over
// the in-memory storage substrate.
//
// Conjunctive queries are evaluated by backtracking joins with greedy
// bound-first atom ordering and per-column hash indexes. Programs are
// evaluated semi-naively: each iteration joins the per-relation delta from
// the previous round against the full relations, until no new tuples are
// derived. Skolem terms — needed by the inverse-rules rewriting algorithm —
// are constructed as tagged values in the data domain.
package datalog

import (
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/storage"
)

// Bindings maps variable names to data values during evaluation.
type Bindings map[string]string

// relSource resolves predicate names to relations. *storage.Database
// satisfies it; the projection layer wraps one database over another.
type relSource interface {
	Relation(pred string) *storage.Relation
}

// layered resolves from the scratch database first, then the base.
type layered struct {
	scratch *storage.Database
	base    relSource
}

func (l layered) Relation(pred string) *storage.Relation {
	if r := l.scratch.Relation(pred); r != nil {
		return r
	}
	return l.base.Relation(pred)
}

// EvalQuery evaluates a conjunctive query over the database and returns the
// distinct head tuples in deterministic (sorted) order. Predicates missing
// from the database are treated as empty relations.
//
// Since the introduction of compiled physical plans this is a thin wrapper:
// it compiles q to a slot-based CompiledPlan (join order from relation
// cardinalities, connected-component decomposition, comparisons pushed to
// their earliest bound depth) and executes it once. Applications answering
// the same query repeatedly should Compile once and reuse the plan — the
// serving engine does exactly that through its LRU.
//
// Like the lazy index builds it replaces, the freeze below mutates db, so
// concurrent callers over one database must BuildIndexes first (the engine
// freezes at construction).
func EvalQuery(db *storage.Database, q *cq.Query) []storage.Tuple {
	p := Compile(q, cost.NewRowCatalog(db, q.Predicates()...))
	p.freeze(db)
	return p.Eval(db)
}

// freeze builds exactly the column indexes the plan's probes need so the
// executor gets index candidates instead of scan fallbacks. This
// preserves the previous lazy-indexing behaviour (one column per probed
// atom, single-writer requirement) for one-shot callers; the executor
// itself never mutates relations.
func (p *CompiledPlan) freeze(db *storage.Database) {
	for i := range p.components {
		for j := range p.components[i].steps {
			s := &p.components[i].steps[j]
			if s.probeCol < 0 {
				continue
			}
			if r := db.Relation(s.pred); r != nil {
				r.BuildColumnIndex(s.probeCol)
			}
		}
	}
}

// EvalQueryInterp is the retained tuple-at-a-time interpreter (map-based
// bindings, per-call greedy join ordering, connected-component
// decomposition with materialised projection pushdown). It computes the
// same answers as EvalQuery and serves as the baseline the compiled
// executor is benchmarked against.
func EvalQueryInterp(db *storage.Database, q *cq.Query) []storage.Tuple {
	var out []storage.Tuple
	seen := make(map[string]bool)
	collect := func(b Bindings) bool {
		t := headTuple(q.Head, b)
		k := t.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
		return true
	}
	if comps := splitComponents(q); len(comps) > 1 {
		evalDecomposed(db, comps, collect)
	} else {
		atoms, src := projectBody(db, q.Body, neededVars(q))
		joinBody(src, atoms, q.Comparisons, make(Bindings), collect)
	}
	return storage.SortTuples(out)
}

// EvalQueryNaive evaluates without connected-component decomposition or
// projection pushdown — the unoptimised reference used by the F7 ablation
// experiment. Results are identical to EvalQuery.
func EvalQueryNaive(db *storage.Database, q *cq.Query) []storage.Tuple {
	var out []storage.Tuple
	seen := make(map[string]bool)
	joinBody(db, q.Body, q.Comparisons, make(Bindings), func(b Bindings) bool {
		t := headTuple(q.Head, b)
		if k := t.Key(); !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
		return true
	})
	return storage.SortTuples(out)
}

// EvalUnion evaluates a union of conjunctive queries, returning distinct
// tuples in sorted order.
func EvalUnion(db *storage.Database, u *cq.Union) []storage.Tuple {
	var out []storage.Tuple
	seen := make(map[string]bool)
	for _, q := range u.Queries {
		for _, t := range EvalQuery(db, q) {
			if k := t.Key(); !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	return storage.SortTuples(out)
}

func headTuple(head cq.Atom, b Bindings) storage.Tuple {
	t := make(storage.Tuple, len(head.Args))
	for i, a := range head.Args {
		if a.IsVar() {
			t[i] = b[a.Lex]
		} else {
			t[i] = a.Lex
		}
	}
	return t
}

// joinBody enumerates bindings satisfying all atoms and comparisons,
// invoking yield for each; enumeration stops if yield returns false.
func joinBody(db relSource, atoms []cq.Atom, comps []cq.Comparison, b Bindings, yield func(Bindings) bool) bool {
	order := planOrder(db, atoms, b)
	return joinStep(db, atoms, order, 0, comps, b, yield)
}

// planOrder chooses a join order: repeatedly pick the atom with the most
// already-bound argument positions, breaking ties by smaller relation.
func planOrder(db relSource, atoms []cq.Atom, initial Bindings) []int {
	bound := make(map[string]bool, len(initial))
	for v := range initial {
		bound[v] = true
	}
	used := make([]bool, len(atoms))
	order := make([]int, 0, len(atoms))
	for len(order) < len(atoms) {
		best, bestScore, bestSize := -1, -1, 0
		for i, a := range atoms {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range a.Args {
				if t.IsConst() || t.IsVar() && bound[t.Lex] {
					score++
				}
			}
			size := 0
			if r := db.Relation(a.Pred); r != nil {
				size = r.Len()
			}
			if best == -1 || score > bestScore || score == bestScore && size < bestSize {
				best, bestScore, bestSize = i, score, size
			}
		}
		used[best] = true
		order = append(order, best)
		for _, t := range atoms[best].Args {
			if t.IsVar() {
				bound[t.Lex] = true
			}
		}
	}
	return order
}

func joinStep(db relSource, atoms []cq.Atom, order []int, depth int, comps []cq.Comparison, b Bindings, yield func(Bindings) bool) bool {
	if depth == len(order) {
		if !checkComparisons(comps, b) {
			return true
		}
		return yield(b)
	}
	atom := atoms[order[depth]]
	rel := db.Relation(atom.Pred)
	if rel == nil {
		return true // empty relation: no matches, keep enumerating siblings
	}
	candidates := candidateTuples(rel, atom, b)
	for _, tuple := range candidates {
		trail := bindTuple(atom, tuple, b)
		if trail == nil {
			continue
		}
		if !joinStep(db, atoms, order, depth+1, comps, b, yield) {
			return false
		}
		for _, v := range trail {
			delete(b, v)
		}
	}
	return true
}

// candidateTuples narrows the scan using an index on the first bound column.
func candidateTuples(rel *storage.Relation, atom cq.Atom, b Bindings) []storage.Tuple {
	for i, t := range atom.Args {
		switch {
		case t.IsConst():
			return rel.Lookup(i, t.Lex)
		case t.IsVar():
			if v, ok := b[t.Lex]; ok {
				return rel.Lookup(i, v)
			}
		}
	}
	return rel.Tuples()
}

// bindTuple extends b so the atom matches the tuple, returning the list of
// newly bound variables, or nil on mismatch (with b restored).
func bindTuple(atom cq.Atom, tuple storage.Tuple, b Bindings) []string {
	trail := make([]string, 0, len(atom.Args))
	for i, t := range atom.Args {
		if t.IsConst() {
			if t.Lex != tuple[i] {
				for _, v := range trail {
					delete(b, v)
				}
				return nil
			}
			continue
		}
		if v, ok := b[t.Lex]; ok {
			if v != tuple[i] {
				for _, v := range trail {
					delete(b, v)
				}
				return nil
			}
			continue
		}
		b[t.Lex] = tuple[i]
		trail = append(trail, t.Lex)
	}
	return trail
}

func checkComparisons(comps []cq.Comparison, b Bindings) bool {
	for _, c := range comps {
		l, ok1 := valueOf(c.Left, b)
		r, ok2 := valueOf(c.Right, b)
		if !ok1 || !ok2 {
			return false // unbound comparison variable: unsafe query
		}
		if !c.Op.EvalConst(cq.Const(l), cq.Const(r)) {
			return false
		}
	}
	return true
}

func valueOf(t cq.Term, b Bindings) (string, bool) {
	if t.IsConst() {
		return t.Lex, true
	}
	v, ok := b[t.Lex]
	return v, ok
}

// CountQuery returns the number of distinct answers without materialising
// them in sorted order. It evaluates through the compiled plan, so a
// disconnected query is counted per connected component and combined as a
// product of distinct projection counts — not by enumerating the full
// cross product the way the old joinBody-based count did.
func CountQuery(db *storage.Database, q *cq.Query) int {
	p := Compile(q, cost.NewRowCatalog(db, q.Predicates()...))
	p.freeze(db)
	return p.Count(db)
}

// MaterializeView evaluates a view definition and stores its extent in dst
// under the view's name.
func MaterializeView(src *storage.Database, view *cq.Query, dst *storage.Database) error {
	rel, err := dst.Ensure(view.Name(), view.Arity())
	if err != nil {
		return err
	}
	for _, t := range EvalQuery(src, view) {
		rel.Insert(t)
	}
	return nil
}

// MaterializeViews evaluates every view over base and returns a database
// holding only the view extents (the data-integration setting: the query
// processor sees view relations, not base relations).
func MaterializeViews(base *storage.Database, views []*cq.Query) (*storage.Database, error) {
	out := storage.NewDatabase()
	for _, v := range views {
		if err := MaterializeView(base, v, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}
