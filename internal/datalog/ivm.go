package datalog

import (
	"errors"
	"fmt"

	"repro/internal/storage"
)

// Incremental view maintenance. A program compiled with CompileProgramIVM
// carries one delta variant per EDB body occurrence in addition to the
// per-IDB-occurrence variants the semi-naive fixpoint uses. MaintainDelta
// exploits them to propagate a batch of base-relation inserts into already
// materialized derived relations without re-running the fixpoint:
//
//   - the database itself is the maintenance state: it holds the base
//     relations and the accumulated derived relations side by side (the
//     shape CompiledProgram.Eval returns), and new derivations are inserted
//     straight into it, incrementally maintaining its column indexes
//     (storage.Relation.Insert appends to built indexes in O(arity));
//   - the seed round fires exactly the EDB delta variants whose predicate
//     gained tuples, with the batch at the join root and every other atom
//     reading the post-batch database — any derivation that uses at least
//     one new base tuple is found, and derivations that use none were
//     already present (insertion is monotone; deletions take the
//     non-monotone counting/DRed path in delete.go via ApplyUpdates);
//   - subsequent rounds are ordinary semi-naive: the IDB delta variants
//     fire on whatever the previous round newly derived, until quiescence;
//   - within a round the database is only read (derivations are buffered
//     per task and merged between rounds), so rounds fan out across
//     goroutines exactly like fixpoint rounds.
//
// Work per batch is therefore proportional to the consequences of the
// delta, not to the size of the database — the acceptance criterion the
// BENCH_eval.json "ivm" section tracks against full re-materialization.

// ErrNotMaintenance reports a MaintainDelta call on a program compiled
// without EDB delta variants.
var ErrNotMaintenance = errors.New("datalog: program not compiled for maintenance (use CompileProgramIVM)")

// maintTask is one delta-variant execution scheduled in a maintenance
// round: the variant plus the tuple batch feeding its root.
type maintTask struct {
	rule  *compiledRule
	v     *ruleVariant
	delta []storage.Tuple
}

// MaintainDelta propagates a batch of inserts through the program's delta
// variants, updating db's derived relations in place. db must hold the
// accumulated derived relations alongside the base relations (the database
// CompiledProgram.Eval returns, or one maintained by earlier calls), and
// the delta tuples must already be inserted into db — ApplyInserts does
// both steps for callers starting from raw updates. It returns the newly
// derived tuples per predicate, in derivation order.
func (cp *CompiledProgram) MaintainDelta(db *storage.Database, delta map[string][]storage.Tuple) (map[string][]storage.Tuple, FixpointStats, error) {
	return cp.MaintainDeltaParallel(db, delta, 1)
}

// MaintainDeltaParallel is MaintainDelta with each round's delta-variant
// executions fanned out across up to workers goroutines; results are
// identical to the sequential propagation.
func (cp *CompiledProgram) MaintainDeltaParallel(db *storage.Database, delta map[string][]storage.Tuple, workers int) (map[string][]storage.Tuple, FixpointStats, error) {
	return cp.maintainDelta(db, delta, workers, nil, Limits{})
}

// maintainDelta is the shared implementation behind MaintainDeltaParallel
// and MaintainDeltaCtx. On a guard or budget failure the database holds a
// partially propagated state — callers wanting atomicity (ivm.Maintainer)
// snapshot and roll back around it.
func (cp *CompiledProgram) maintainDelta(db *storage.Database, delta map[string][]storage.Tuple, workers int, gs *guardState, lim Limits) (map[string][]storage.Tuple, FixpointStats, error) {
	var stats FixpointStats
	if !cp.ivm {
		return nil, stats, ErrNotMaintenance
	}
	derived := make(map[string][]storage.Tuple)
	cur := delta
	for {
		var tasks []maintTask
		for i := range cp.rules {
			r := &cp.rules[i]
			for _, variants := range [2][]ruleVariant{r.edbDeltas, r.deltas} {
				for j := range variants {
					v := &variants[j]
					if v.empty {
						continue
					}
					if d := cur[v.deltaPred]; len(d) > 0 {
						tasks = append(tasks, maintTask{rule: r, v: v, delta: d})
					}
				}
			}
		}
		if len(tasks) == 0 {
			if err := gs.failure(); err != nil {
				return nil, stats, err
			}
			return derived, stats, nil
		}
		if err := gs.barrier(); err != nil {
			return nil, stats, err
		}
		if err := checkFixpointBudget(stats, lim); err != nil {
			return nil, stats, err
		}
		stats.Iterations++
		bufs, err := runTaskSet(len(tasks), workers, func(i int) ([]derivedTuple, error) {
			return cp.maintVariant(db, tasks[i], gs.child())
		})
		if err != nil {
			return nil, stats, err
		}
		next := make(map[string][]storage.Tuple)
		for i, buf := range bufs {
			pred := tasks[i].rule.headPred
			rel, err := db.Ensure(pred, tasks[i].rule.arity)
			if err != nil {
				return nil, stats, err
			}
			for _, d := range buf {
				if rel.Insert(d.t) {
					next[pred] = append(next[pred], d.t)
					derived[pred] = append(derived[pred], d.t)
					stats.Derived++
				}
			}
		}
		cur = next
	}
}

// ApplyInserts applies a batch of updates to db — inserting the facts,
// creating missing relations — and propagates the newly inserted ones
// through the delta plans (MaintainDeltaParallel). Predicates derived by
// the program are rejected: their contents are maintained, not asserted.
// Updates are validated against the schema before anything is mutated, so
// an error leaves db unchanged. It returns the per-predicate base tuples
// that were actually new, the newly derived tuples per predicate, and the
// propagation stats.
func (cp *CompiledProgram) ApplyInserts(db *storage.Database, updates map[string][]storage.Tuple, workers int) (fresh, derived map[string][]storage.Tuple, stats FixpointStats, err error) {
	return cp.applyInserts(db, updates, workers, nil, Limits{})
}

// applyInserts is the shared implementation behind ApplyInserts and
// ApplyInsertsCtx. Validation errors leave db unchanged; a guard or budget
// failure leaves it partially updated (callers wanting atomicity snapshot
// and roll back).
func (cp *CompiledProgram) applyInserts(db *storage.Database, updates map[string][]storage.Tuple, workers int, gs *guardState, lim Limits) (fresh, derived map[string][]storage.Tuple, stats FixpointStats, err error) {
	if !cp.ivm {
		return nil, nil, stats, ErrNotMaintenance
	}
	for pred, tuples := range updates {
		if _, idb := cp.idbArity[pred]; idb {
			return nil, nil, stats, fmt.Errorf("datalog: cannot insert into derived relation %s", pred)
		}
		want := -1
		if rel := db.Relation(pred); rel != nil {
			want = rel.Arity()
		}
		for _, t := range tuples {
			if want < 0 {
				want = len(t)
			}
			if len(t) != want {
				return nil, nil, stats, &storage.ArityError{Pred: pred, Want: want, Got: len(t)}
			}
		}
	}
	fresh = make(map[string][]storage.Tuple)
	for pred, tuples := range updates {
		if len(tuples) == 0 {
			continue
		}
		rel, err := db.Ensure(pred, len(tuples[0]))
		if err != nil {
			return nil, nil, stats, err
		}
		for _, t := range tuples {
			if rel.Insert(t) {
				fresh[pred] = append(fresh[pred], t)
			}
		}
	}
	derived, stats, err = cp.maintainDelta(db, fresh, workers, gs, lim)
	if err != nil {
		return nil, nil, stats, err
	}
	return fresh, derived, stats, nil
}

// maintVariant enumerates one delta variant's matches over the live
// database and buffers the derived head tuples, deduplicated against both
// the buffer and the accumulated head relation. Every source — including
// the derived relations — resolves from db, with indexed probes whenever
// the relation's column indexes are current (frozen databases keep them
// current across maintained inserts).
func (cp *CompiledProgram) maintVariant(db *storage.Database, t maintTask, g *evalGuard) ([]derivedTuple, error) {
	v := t.v
	srcs := make([]stepSrc, len(v.steps))
	for j := range v.steps {
		s := &v.steps[j]
		if j == 0 {
			srcs[j].tuples = t.delta // the delta is scanned: it is the small side
			continue
		}
		rel := db.Relation(s.pred)
		if rel == nil {
			continue // missing predicate: empty relation
		}
		srcs[j].tuples = rel.Tuples()
		if s.probeCol >= 0 {
			if idx, ok := rel.ColumnIndex(s.probeCol); ok {
				srcs[j].idx = idx
			}
		}
	}
	headRel := db.Relation(t.rule.headPred)
	comp := compiledComponent{steps: v.steps}
	frame := make([]string, v.numSlots)
	var buf []derivedTuple
	var bufSeen map[string]bool
	var evalErr error
	joinSteps(&comp, srcs, 0, frame, g, func(frame []string) bool {
		if v.unsafeVar != "" {
			evalErr = fmt.Errorf("datalog: unbound head variable %s", v.unsafeVar)
			return false
		}
		tuple := buildHeadTuple(v.head, frame)
		k := tuple.Key()
		if (headRel != nil && headRel.ContainsKey(k)) || bufSeen[k] {
			return true
		}
		if bufSeen == nil {
			bufSeen = make(map[string]bool)
		}
		bufSeen[k] = true
		buf = append(buf, derivedTuple{t: tuple, key: k})
		if g.emitRow() {
			return false
		}
		return true
	})
	return buf, evalErr
}
