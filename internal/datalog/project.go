package datalog

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/storage"
)

// Projection pushdown. View-based rewritings routinely contain atoms with
// "don't care" positions — existential variables that occur nowhere else
// and do not reach the head. Enumerating their values multiplies the join
// work without changing the answer set. projectBody replaces each such
// atom by a distinct projection of its relation onto the relevant columns,
// materialised once in a scratch database.

// projectBody rewrites atoms so that don't-care argument positions are
// dropped, materialising projected relations into a scratch database. The
// returned relSource resolves both projected and original relations.
// needed lists the variables that must survive (head and comparison
// variables); join variables (two or more occurrences across atoms) are
// always kept.
func projectBody(db relSource, atoms []cq.Atom, needed map[string]bool) ([]cq.Atom, relSource) {
	occurrences := make(map[string]int)
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				occurrences[t.Lex]++
			}
		}
	}
	keep := func(t cq.Term) bool {
		if t.IsConst() {
			return true
		}
		return needed[t.Lex] || occurrences[t.Lex] > 1
	}

	var scratch *storage.Database
	out := make([]cq.Atom, len(atoms))
	for i, a := range atoms {
		var relevant []int
		for pos, t := range a.Args {
			if keep(t) {
				relevant = append(relevant, pos)
			}
		}
		if len(relevant) == len(a.Args) {
			out[i] = a
			continue
		}
		rel := db.Relation(a.Pred)
		if rel == nil {
			out[i] = a // missing relation: leave as-is, join yields nothing
			continue
		}
		if scratch == nil {
			scratch = storage.NewDatabase()
		}
		name := fmt.Sprintf("\x00π%d_%s", i, a.Pred)
		proj, err := scratch.Ensure(name, len(relevant))
		if err != nil {
			out[i] = a
			continue
		}
		for _, tuple := range rel.Tuples() {
			row := make(storage.Tuple, len(relevant))
			for j, pos := range relevant {
				row[j] = tuple[pos]
			}
			proj.Insert(row)
		}
		args := make([]cq.Term, len(relevant))
		for j, pos := range relevant {
			args[j] = a.Args[pos]
		}
		out[i] = cq.Atom{Pred: name, Args: args}
	}
	if scratch == nil {
		return out, db
	}
	return out, layered{scratch: scratch, base: db}
}

// neededVars collects the variables of the head and comparisons.
func neededVars(q *cq.Query) map[string]bool {
	needed := make(map[string]bool)
	for _, t := range q.Head.Args {
		if t.IsVar() {
			needed[t.Lex] = true
		}
	}
	for _, c := range q.Comparisons {
		for _, t := range []cq.Term{c.Left, c.Right} {
			if t.IsVar() {
				needed[t.Lex] = true
			}
		}
	}
	return needed
}
