package datalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/storage"
)

// Compiled datalog programs. CompileProgram lowers every rule of a Program
// to slot-plan form once; CompiledProgram.Eval then runs a proper semi-naive
// fixpoint over the compiled rules with none of the interpretive overhead of
// Program.EvalInterp:
//
//   - each rule body becomes a sequence of compiledSteps — the same
//     integer-slot frames, catalog-ordered joins, index-probe access paths
//     and earliest-bound-depth comparisons the single-query compiler emits —
//     followed by a head-emission step that writes Skolem, constant and slot
//     columns directly into the derived tuple;
//   - every rule occurrence of an IDB predicate gets its own delta variant:
//     a plan with that atom forced to the root of the join order, fed by the
//     previous round's delta instead of the full relation. Rounds after the
//     first run only delta variants, so work is proportional to what the
//     last round derived, not to the accumulated fixpoint;
//   - derived (IDB) relations are private to the Eval call and maintain
//     their probe-column hash indexes incrementally as tuples are inserted,
//     instead of the interpreter's discard-and-rebuild on every insert;
//   - within a round, rule-variant executions only read the relations
//     (inserts are buffered and merged between rounds), so EvalParallel can
//     run a round's variants across goroutines without locks.
//
// The executor never mutates the EDB it reads: base candidates come from
// frozen column indexes when available and degrade to scans otherwise,
// exactly like CompiledPlan. Any number of Evals may therefore run
// concurrently over one shared (even unfrozen) database.

// ruleHeadOp builds one head-tuple column: from a Skolem application over
// frame slots, from a frame slot, or from a constant.
type ruleHeadOp struct {
	skolem   *compiledSkolem // nil unless the column is a Skolem term
	slot     int             // -1 → constant
	constVal string
}

// compiledSkolem is a Skolem function term whose arguments resolve to slots.
type compiledSkolem struct {
	name     string
	argSlots []int
}

// ruleVariant is one executable form of a rule: the full plan (fired once,
// in round 0) or a delta variant (fired whenever its delta predicate gained
// tuples in the previous round, with the delta atom at the join root).
type ruleVariant struct {
	// deltaPos is the body position the variant restricts to the delta;
	// -1 for the full variant.
	deltaPos  int
	deltaPred string
	steps     []compiledStep
	head      []ruleHeadOp
	numSlots  int
	// unsafeVar names a head or Skolem-argument variable the body never
	// binds; the first body match reports it as an evaluation error,
	// matching the interpreter's lazy unsafe-rule detection.
	unsafeVar string
	// empty marks variants proven matchless at compile time: a ground
	// comparison failed, or a comparison variable occurs in no body atom
	// (the interpreter silently filters every binding in both cases).
	empty bool
}

// compiledRule is one rule's compiled forms plus its head shape.
type compiledRule struct {
	headPred string
	arity    int
	full     ruleVariant
	deltas   []ruleVariant
	// edbDeltas are per-EDB-occurrence delta variants, compiled only for
	// maintenance programs (CompileProgramIVM): they seed a MaintainDelta
	// round from a batch of base-relation inserts, exactly as the IDB
	// variants in deltas continue it from derived tuples.
	edbDeltas []ruleVariant
	src       Rule // retained for Describe
}

// FixpointStats reports the work of one semi-naive evaluation.
type FixpointStats struct {
	// Iterations is the number of semi-naive rounds executed, including
	// round 0 (the full-plan round).
	Iterations int
	// Derived is the number of distinct IDB tuples derived beyond the EDB.
	Derived int
}

// CompiledProgram is an immutable compiled form of a datalog Program. Like
// CompiledPlan it is compiled once (per engine cache entry) and may be
// evaluated concurrently by any number of goroutines: all fixpoint state
// lives in per-call structures.
type CompiledProgram struct {
	rules []compiledRule
	// idbArity maps every derived predicate to its arity.
	idbArity map[string]int
	// idbProbeCols lists, per IDB predicate, the columns some compiled step
	// probes; per-call IDB relations maintain exactly these hash indexes
	// incrementally.
	idbProbeCols map[string][]int
	// ivm marks programs compiled with per-EDB-occurrence delta variants
	// (CompileProgramIVM); only those support MaintainDelta.
	ivm bool
	// flat marks IVM programs whose rule bodies reference no derived
	// predicate (non-recursive, single-level view sets): deletions maintain
	// exact per-derived-tuple multiplicity counts. Non-flat programs fall
	// back to DRed (delete-and-rederive); see delete.go.
	flat bool
	// countFull / countDeltas are the counting plan variants of flat IVM
	// programs: one full enumeration per rule and one delta variant per body
	// occurrence, compiled with every body variable kept so each emission is
	// one distinct derivation (see delete.go).
	countFull   []countVariant
	countDeltas [][]countVariant
	// supports are the re-derivation variants of non-flat IVM programs: per
	// rule, a plan rooted at the rule's own head (fed by over-deleted
	// tuples), or the filtered full variant when the head contains Skolem
	// terms (see delete.go).
	supports []supportVariant
}

// CompileProgram lowers a program to compiled-rule form using catalog
// statistics for join ordering and probe selection (nil falls back to
// bound-columns-first ordering). It fails when two rules derive the same
// predicate with different arities — the interpreter reports the same
// conflict at evaluation time.
func CompileProgram(p *Program, cat *cost.Catalog) (*CompiledProgram, error) {
	return compileProgram(p, cat, false)
}

// CompileProgramIVM is CompileProgram for incremental view maintenance: in
// addition to the per-IDB-occurrence delta variants it lowers one delta
// variant per EDB body occurrence, so MaintainDelta can seed a semi-naive
// propagation round directly from a batch of base-relation inserts instead
// of re-running the fixpoint from scratch.
func CompileProgramIVM(p *Program, cat *cost.Catalog) (*CompiledProgram, error) {
	return compileProgram(p, cat, true)
}

func compileProgram(p *Program, cat *cost.Catalog, ivm bool) (*CompiledProgram, error) {
	if cat == nil {
		cat = &cost.Catalog{}
	}
	cp := &CompiledProgram{
		idbArity:     make(map[string]int),
		idbProbeCols: make(map[string][]int),
		ivm:          ivm,
	}
	for _, r := range p.Rules {
		if prev, ok := cp.idbArity[r.HeadPred]; ok && prev != len(r.Head) {
			return nil, fmt.Errorf("datalog: relation %s derived with arities %d and %d", r.HeadPred, prev, len(r.Head))
		}
		cp.idbArity[r.HeadPred] = len(r.Head)
	}
	probeCols := make(map[string]map[int]bool)
	for _, r := range p.Rules {
		cr := compiledRule{headPred: r.HeadPred, arity: len(r.Head), src: r}
		cr.full = compileRuleVariant(r, -1, cat)
		collectProbeCols(cp.idbArity, probeCols, cr.full.steps)
		for pos, a := range r.Body {
			_, idb := cp.idbArity[a.Pred]
			switch {
			case idb:
				v := compileRuleVariant(r, pos, cat)
				collectProbeCols(cp.idbArity, probeCols, v.steps)
				cr.deltas = append(cr.deltas, v)
			case ivm:
				v := compileRuleVariant(r, pos, cat)
				collectProbeCols(cp.idbArity, probeCols, v.steps)
				cr.edbDeltas = append(cr.edbDeltas, v)
			}
		}
		cp.rules = append(cp.rules, cr)
	}
	for pred, cols := range probeCols {
		for col := range cols {
			cp.idbProbeCols[pred] = append(cp.idbProbeCols[pred], col)
		}
		sort.Ints(cp.idbProbeCols[pred])
	}
	if ivm {
		cp.compileDeletionSupport(p, cat)
	}
	return cp, nil
}

// collectProbeCols records which IDB columns the steps probe. The delta-root
// step of a delta variant is included too: the same (pred, col) pair is
// probed by the full variant, and recording it unconditionally keeps the
// maintained-index set a superset of what execution asks for.
func collectProbeCols(idb map[string]int, out map[string]map[int]bool, steps []compiledStep) {
	for i := range steps {
		s := &steps[i]
		if s.probeCol < 0 {
			continue
		}
		if _, ok := idb[s.pred]; !ok {
			continue
		}
		if out[s.pred] == nil {
			out[s.pred] = make(map[int]bool)
		}
		out[s.pred][s.probeCol] = true
	}
}

// compileRuleVariant lowers one rule into a variant. deltaPos >= 0 forces
// that body atom to the root of the join order (it will read the delta
// relation at execution time); the remaining atoms are ordered by the same
// bound-columns-first, catalog-estimated policy single-query plans use.
func compileRuleVariant(r Rule, deltaPos int, cat *cost.Catalog) ruleVariant {
	v := ruleVariant{deltaPos: deltaPos}
	if deltaPos >= 0 {
		v.deltaPred = r.Body[deltaPos].Pred
	}

	// Variables that must survive into the frame: head variables, Skolem
	// arguments, comparison variables, and any variable with two or more
	// body occurrences. The rest are don't-care positions.
	needed := make(map[string]bool)
	for _, h := range r.Head {
		if h.Skolem != nil {
			for _, a := range h.Skolem.Args {
				needed[a] = true
			}
		} else if h.Term.IsVar() {
			needed[h.Term.Lex] = true
		}
	}
	for _, c := range r.Comparisons {
		for _, t := range []cq.Term{c.Left, c.Right} {
			if t.IsVar() {
				needed[t.Lex] = true
			}
		}
	}
	occ := make(map[string]int)
	for _, a := range r.Body {
		for _, t := range a.Args {
			if t.IsVar() {
				occ[t.Lex]++
			}
		}
	}
	slots := make(map[string]int)
	slotOf := func(name string) int {
		s, ok := slots[name]
		if !ok {
			s = v.numSlots
			slots[name] = s
			v.numSlots++
		}
		return s
	}
	keep := func(t cq.Term) bool { return needed[t.Lex] || occ[t.Lex] > 1 }

	var pending []cq.Comparison
	for _, c := range r.Comparisons {
		if c.Left.IsConst() && c.Right.IsConst() {
			if !c.Op.EvalConst(c.Left, c.Right) {
				v.empty = true
			}
			continue
		}
		pending = append(pending, c)
	}

	bound := make(map[string]bool)
	remaining := make([]int, 0, len(r.Body))
	for i := range r.Body {
		if i != deltaPos {
			remaining = append(remaining, i)
		}
	}
	lower := func(idx int) {
		step := lowerAtom(r.Body[idx], bound, slotOf, keep, cat)
		pending = attachComparisons(&step, pending, bound, slots)
		v.steps = append(v.steps, step)
	}
	if deltaPos >= 0 {
		lower(deltaPos)
	}
	for len(remaining) > 0 {
		next := chooseNext(r.Body, remaining, bound, cat)
		lower(next)
		remaining = removeIdx(remaining, next)
	}
	if len(pending) > 0 {
		// A comparison variable occurs in no body atom: the interpreter
		// filters every binding, so the variant derives nothing.
		v.empty = true
	}

	// Head emission. Unbound head or Skolem-argument variables make the
	// rule unsafe; the error is raised on the first body match, matching
	// the interpreter.
	markUnsafe := func(name string) {
		if v.unsafeVar == "" {
			v.unsafeVar = name
		}
	}
	v.head = make([]ruleHeadOp, len(r.Head))
	for i, h := range r.Head {
		switch {
		case h.Skolem != nil:
			cs := &compiledSkolem{name: h.Skolem.Name, argSlots: make([]int, len(h.Skolem.Args))}
			for j, a := range h.Skolem.Args {
				if !bound[a] {
					markUnsafe(a)
					continue
				}
				cs.argSlots[j] = slots[a]
			}
			v.head[i] = ruleHeadOp{skolem: cs, slot: -1}
		case h.Term.IsConst():
			v.head[i] = ruleHeadOp{slot: -1, constVal: h.Term.Lex}
		default:
			if !bound[h.Term.Lex] {
				markUnsafe(h.Term.Lex)
				v.head[i] = ruleHeadOp{slot: -1}
				continue
			}
			v.head[i] = ruleHeadOp{slot: slots[h.Term.Lex]}
		}
	}
	return v
}

// idbRel is a per-Eval derived relation: a growing tuple set with hash
// indexes on the plan's probe columns, maintained incrementally on insert
// (the interpreter instead invalidates and rebuilds indexes every round).
type idbRel struct {
	arity  int
	tuples []storage.Tuple
	seen   map[string]bool
	idx    map[int]map[string][]int
}

func newIDBRel(arity int, probeCols []int) *idbRel {
	r := &idbRel{arity: arity, seen: make(map[string]bool), idx: make(map[int]map[string][]int, len(probeCols))}
	for _, col := range probeCols {
		r.idx[col] = make(map[string][]int)
	}
	return r
}

// insert adds the tuple and updates the maintained indexes, reporting
// whether it was new. The tuple is not copied: callers pass fresh or
// read-only tuples.
func (r *idbRel) insert(t storage.Tuple) bool {
	return r.insertKeyed(derivedTuple{t: t, key: t.Key()})
}

// derivedTuple is one buffered derivation: the tuple plus its dedup key,
// computed once at emission and reused by the merge.
type derivedTuple struct {
	t   storage.Tuple
	key string
}

// insertKeyed is insert with the key already computed.
func (r *idbRel) insertKeyed(d derivedTuple) bool {
	if r.seen[d.key] {
		return false
	}
	r.seen[d.key] = true
	pos := len(r.tuples)
	r.tuples = append(r.tuples, d.t)
	for col, m := range r.idx {
		m[d.t[col]] = append(m[d.t[col]], pos)
	}
	return true
}

// fixTask is one rule-variant execution scheduled in a round.
type fixTask struct {
	rule  *compiledRule
	v     *ruleVariant
	delta []storage.Tuple // nil for full variants
}

// Eval runs the compiled fixpoint over edb and returns a database containing
// the EDB relations plus all derived (IDB) relations, exactly like
// Program.EvalInterp. The input database is never mutated.
func (cp *CompiledProgram) Eval(edb *storage.Database) (*storage.Database, error) {
	return cp.EvalParallel(edb, 1)
}

// EvalParallel is Eval with each round's rule-variant executions fanned out
// across up to workers goroutines. Within a round the executions only read
// the (immutable-for-the-round) relations and buffer their derivations;
// buffers are merged sequentially between rounds, so results are identical
// to the sequential evaluation.
func (cp *CompiledProgram) EvalParallel(edb *storage.Database, workers int) (*storage.Database, error) {
	idb, _, err := cp.run(edb, workers, nil, Limits{})
	if err != nil {
		return nil, err
	}
	return materializeIDB(edb.Clone(), idb)
}

// materializeIDB inserts the derived relations into db and returns it.
func materializeIDB(db *storage.Database, idb map[string]*idbRel) (*storage.Database, error) {
	for pred, ir := range idb {
		rel, err := db.Ensure(pred, ir.arity)
		if err != nil {
			return nil, err
		}
		for _, t := range ir.tuples {
			rel.Insert(t)
		}
	}
	return db, nil
}

// EvalRelation runs the fixpoint and returns just one relation's tuples —
// the serving path: the engine asks for the answer predicate and skips the
// full-database clone Eval pays for API compatibility. The returned slice is
// fresh; callers may sort or filter it in place.
func (cp *CompiledProgram) EvalRelation(edb *storage.Database, pred string, workers int) ([]storage.Tuple, FixpointStats, error) {
	return cp.evalRelation(edb, pred, workers, nil, Limits{})
}

// evalRelation is the shared implementation behind EvalRelation and
// EvalRelationCtx. On a guard or budget failure the partial stats are
// returned with the error so callers can report progress.
func (cp *CompiledProgram) evalRelation(edb *storage.Database, pred string, workers int, gs *guardState, lim Limits) ([]storage.Tuple, FixpointStats, error) {
	idb, stats, err := cp.run(edb, workers, gs, lim)
	if err != nil {
		return nil, stats, err
	}
	if ir, ok := idb[pred]; ok {
		return ir.tuples, stats, nil
	}
	if rel := edb.Relation(pred); rel != nil {
		out := make([]storage.Tuple, len(rel.Tuples()))
		copy(out, rel.Tuples())
		return out, stats, nil
	}
	return nil, stats, nil
}

// run executes the semi-naive loop: round 0 fires every rule's full plan;
// each later round fires only the delta variants whose predicate gained
// tuples, with the delta at the join root. New tuples are buffered during a
// round and merged (with dedup against the accumulated relation) after it,
// so relations are immutable while any variant is executing.
//
// gs and lim are the governance hooks (nil/zero for unbounded runs):
// cancellation is polled inside the variant loops and at every round
// barrier, and the round/derivation budgets are checked where the stats are
// consistent — so an aborted run returns its partial stats with the error.
func (cp *CompiledProgram) run(edb *storage.Database, workers int, gs *guardState, lim Limits) (map[string]*idbRel, FixpointStats, error) {
	var stats FixpointStats
	idb := make(map[string]*idbRel, len(cp.idbArity))
	for pred, arity := range cp.idbArity {
		ir := newIDBRel(arity, cp.idbProbeCols[pred])
		// A derived predicate may coincide with an EDB relation; its facts
		// seed the accumulated set (the interpreter derives into a clone of
		// that relation).
		if rel := edb.Relation(pred); rel != nil {
			if rel.Arity() != arity {
				return nil, stats, fmt.Errorf("storage: relation %s has arity %d, requested %d", pred, rel.Arity(), arity)
			}
			for _, t := range rel.Tuples() {
				ir.insert(t)
			}
		}
		idb[pred] = ir
	}

	var tasks []fixTask
	for i := range cp.rules {
		r := &cp.rules[i]
		if !r.full.empty {
			tasks = append(tasks, fixTask{rule: r, v: &r.full})
		}
	}
	for len(tasks) > 0 {
		if err := gs.barrier(); err != nil {
			return nil, stats, err
		}
		if err := checkFixpointBudget(stats, lim); err != nil {
			return nil, stats, err
		}
		stats.Iterations++
		bufs, err := cp.runRound(edb, idb, tasks, workers, gs)
		if err != nil {
			return nil, stats, err
		}
		delta := make(map[string][]storage.Tuple)
		for i, buf := range bufs {
			ir := idb[tasks[i].rule.headPred]
			for _, d := range buf {
				if ir.insertKeyed(d) {
					delta[tasks[i].rule.headPred] = append(delta[tasks[i].rule.headPred], d.t)
					stats.Derived++
				}
			}
		}
		tasks = tasks[:0]
		for i := range cp.rules {
			r := &cp.rules[i]
			for j := range r.deltas {
				v := &r.deltas[j]
				if v.empty {
					continue
				}
				if d := delta[v.deltaPred]; len(d) > 0 {
					tasks = append(tasks, fixTask{rule: r, v: v, delta: d})
				}
			}
		}
	}
	if err := gs.failure(); err != nil {
		return nil, stats, err
	}
	return idb, stats, nil
}

// checkFixpointBudget enforces the round and derivation budgets at a round
// barrier (stats are consistent there; a run may overshoot MaxDerived by at
// most the final round's derivations).
func checkFixpointBudget(stats FixpointStats, lim Limits) error {
	if lim.MaxRounds > 0 && stats.Iterations >= lim.MaxRounds {
		return fmt.Errorf("datalog: fixpoint exceeded %d round(s): %w", lim.MaxRounds, ErrBudgetExceeded)
	}
	if lim.MaxDerived > 0 && stats.Derived > lim.MaxDerived {
		return fmt.Errorf("datalog: fixpoint derived more than %d tuple(s): %w", lim.MaxDerived, ErrBudgetExceeded)
	}
	return nil
}

// runRound executes one round's tasks, each into its own buffer. With
// workers > 1 the tasks run concurrently: they read the round-stable
// relations and the (read-only until merge) dedup sets, and write nothing
// shared.
func (cp *CompiledProgram) runRound(edb *storage.Database, idb map[string]*idbRel, tasks []fixTask, workers int, gs *guardState) ([][]derivedTuple, error) {
	return runTaskSet(len(tasks), workers, func(i int) ([]derivedTuple, error) {
		return cp.runVariant(edb, idb, tasks[i], gs.child())
	})
}

// runTaskSet executes n independent task bodies across up to workers
// goroutines, collecting each body's derivation buffer. Bodies only read
// round-stable state, so the fan-out needs no locks; the fixpoint rounds
// and the maintenance rounds (MaintainDelta) share it.
func runTaskSet(n, workers int, run func(int) ([]derivedTuple, error)) ([][]derivedTuple, error) {
	bufs := make([][]derivedTuple, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			var err error
			if bufs[i], err = run(i); err != nil {
				return nil, err
			}
		}
		return bufs, nil
	}
	errs := make([]error, n)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				bufs[i], errs[i] = run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return bufs, nil
}

// runVariant enumerates one variant's body matches and buffers the derived
// head tuples, deduplicated against both the buffer and the accumulated
// relation (reads only — inserts happen at the merge).
func (cp *CompiledProgram) runVariant(edb *storage.Database, idb map[string]*idbRel, t fixTask, g *evalGuard) ([]derivedTuple, error) {
	v := t.v
	srcs := cp.resolveVariant(edb, idb, t)
	comp := compiledComponent{steps: v.steps}
	accum := idb[t.rule.headPred]
	frame := make([]string, v.numSlots)
	var buf []derivedTuple
	var bufSeen map[string]bool
	var evalErr error
	joinSteps(&comp, srcs, 0, frame, g, func(frame []string) bool {
		if v.unsafeVar != "" {
			evalErr = fmt.Errorf("datalog: unbound head variable %s", v.unsafeVar)
			return false
		}
		tuple := buildHeadTuple(v.head, frame)
		k := tuple.Key()
		if accum.seen[k] || bufSeen[k] {
			return true
		}
		if bufSeen == nil {
			bufSeen = make(map[string]bool)
		}
		bufSeen[k] = true
		buf = append(buf, derivedTuple{t: tuple, key: k})
		// Intra-round backstop for the derivation budget: the authoritative
		// check runs at the round barrier, but a single variant exploding
		// past the whole budget stops here instead of finishing the round.
		if g.emitRow() {
			return false
		}
		return true
	})
	return buf, evalErr
}

// resolveVariant binds a variant's steps to their candidate sources: the
// delta slice for the delta-root step, the per-call IDB relation (tuples
// plus maintained probe index) for derived predicates, and the EDB relation
// (with its frozen column index when built) otherwise.
func (cp *CompiledProgram) resolveVariant(edb *storage.Database, idb map[string]*idbRel, t fixTask) []stepSrc {
	srcs := make([]stepSrc, len(t.v.steps))
	for j := range t.v.steps {
		s := &t.v.steps[j]
		if j == 0 && t.delta != nil {
			srcs[j].tuples = t.delta // deltas are scanned: they are the small side
			continue
		}
		if ir, ok := idb[s.pred]; ok {
			srcs[j].tuples = ir.tuples
			if s.probeCol >= 0 {
				srcs[j].idx = ir.idx[s.probeCol]
			}
			continue
		}
		rel := edb.Relation(s.pred)
		if rel == nil {
			continue // missing predicate: empty relation
		}
		srcs[j].tuples = rel.Tuples()
		if s.probeCol >= 0 {
			if idx, ok := rel.ColumnIndex(s.probeCol); ok {
				srcs[j].idx = idx
			}
		}
	}
	return srcs
}

// buildHeadTuple emits the derived tuple for a complete frame.
func buildHeadTuple(head []ruleHeadOp, frame []string) storage.Tuple {
	t := make(storage.Tuple, len(head))
	for i, h := range head {
		switch {
		case h.skolem != nil:
			parts := make([]string, len(h.skolem.argSlots))
			for j, s := range h.skolem.argSlots {
				parts[j] = frame[s]
			}
			t[i] = skolemValue(h.skolem.name, parts)
		case h.slot >= 0:
			t[i] = frame[h.slot]
		default:
			t[i] = h.constVal
		}
	}
	return t
}

// freeze builds exactly the EDB column indexes the program's probes need, so
// one-shot evaluation gets index candidates instead of scan fallbacks. Like
// CompiledPlan.freeze it mutates edb and carries the same single-writer
// requirement; the serving engine freezes its database at construction and
// never calls this.
func (cp *CompiledProgram) freeze(edb *storage.Database) {
	for i := range cp.rules {
		r := &cp.rules[i]
		variants := []*ruleVariant{&r.full}
		for j := range r.deltas {
			variants = append(variants, &r.deltas[j])
		}
		for _, v := range variants {
			for j := range v.steps {
				s := &v.steps[j]
				if s.probeCol < 0 {
					continue
				}
				if _, idbPred := cp.idbArity[s.pred]; idbPred {
					continue
				}
				if rel := edb.Relation(s.pred); rel != nil {
					rel.BuildColumnIndex(s.probeCol)
				}
			}
		}
	}
}

// Describe renders the compiled program for humans: every rule with its full
// plan and delta variants, one join step per line.
func (cp *CompiledProgram) Describe() string {
	var sb strings.Builder
	for i := range cp.rules {
		r := &cp.rules[i]
		fmt.Fprintf(&sb, "rule %d: %s\n", i, r.src.String())
		describeVariant(&sb, "full", &r.full)
		for j := range r.deltas {
			v := &r.deltas[j]
			describeVariant(&sb, fmt.Sprintf("Δ%s@%d", v.deltaPred, v.deltaPos), v)
		}
		for j := range r.edbDeltas {
			v := &r.edbDeltas[j]
			describeVariant(&sb, fmt.Sprintf("Δ%s@%d (edb)", v.deltaPred, v.deltaPos), v)
		}
	}
	return sb.String()
}

func describeVariant(sb *strings.Builder, label string, v *ruleVariant) {
	fmt.Fprintf(sb, "  %s", label)
	if v.empty {
		sb.WriteString("  (empty: unsatisfiable at compile time)\n")
		return
	}
	if v.unsafeVar != "" {
		fmt.Fprintf(sb, "  (unsafe: %s unbound)", v.unsafeVar)
	}
	sb.WriteByte('\n')
	for j := range v.steps {
		describeStep(sb, "    ", j, &v.steps[j], j == 0 && v.deltaPos >= 0)
	}
}

// Eval computes the fixpoint of the program over the EDB and returns a
// database containing the EDB relations plus all derived (IDB) relations.
// The input database is not modified: like the interpretive EvalInterp it
// evaluates over a private clone, on which it builds exactly the column
// indexes the compiled probes need.
//
// Since the introduction of compiled programs this is a thin wrapper: it
// compiles the rules to slot-plan form (CompileProgram) and runs the
// compiled semi-naive loop once. Applications evaluating the same program
// repeatedly should CompileProgram once and reuse it — the serving engine
// caches the compiled program in its plan LRU.
func (p *Program) Eval(edb *storage.Database) (*storage.Database, error) {
	cp, err := CompileProgram(p, cost.NewRowCatalog(edb))
	if err != nil {
		return nil, err
	}
	db := edb.Clone()
	cp.freeze(db)
	idb, _, err := cp.run(db, 1, nil, Limits{})
	if err != nil {
		return nil, err
	}
	return materializeIDB(db, idb)
}
