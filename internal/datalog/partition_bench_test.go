package datalog

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cost"
	"repro/internal/storage"
)

// Shard-count scaling benchmarks for the sharded executor. CI runs these at
// -benchtime=1x as a smoke test; cmd/aqvbench -scaling produces the curve
// BENCH_eval.json tracks.

func benchShardCounts() []int {
	// Shards beyond the core count still pay off on one core: they shrink the
	// per-task probe working set (the cache-locality axis), so the sweep runs
	// past GOMAXPROCS.
	limit := 2 * runtime.GOMAXPROCS(0)
	if limit < 32 {
		limit = 32
	}
	var out []int
	for s := 1; s <= limit; s *= 2 {
		out = append(out, s)
	}
	return out
}

func BenchmarkShardedServeJoin(b *testing.B) {
	// A one-tenth-scale copy of aqvbench's serve_join workload: guarded
	// fan-out join where the flat evaluator's time goes to candidate-list
	// walks over p3 and the head carries the routing slot (disjoint tasks).
	rng := rand.New(rand.NewSource(91))
	db := storage.NewDatabase()
	for i := 0; i < 40000; i++ {
		db.Insert("p1", storage.Tuple{"w" + fmt.Sprint(rng.Intn(100000)), "x" + fmt.Sprint(rng.Intn(30000))})
	}
	for i := 0; i < 15000; i++ {
		db.Insert("p2", storage.Tuple{"x" + fmt.Sprint(rng.Intn(30000)), "k" + fmt.Sprint(rng.Intn(10000))})
	}
	for i := 0; i < 200000; i++ {
		db.Insert("p3", storage.Tuple{"k" + fmt.Sprint(rng.Intn(10000)), "z" + fmt.Sprint(rng.Intn(500000))})
	}
	q := mustQ("q(Y,Z) :- p1(W,X), p2(X,Y), p3(Y,Z)")
	db.BuildIndexes()
	cat := cost.NewCatalog(db)
	plan := Compile(q, cat)
	partCols := cat.PartitionColumns(plan.PartitionHints())
	workers := runtime.GOMAXPROCS(0)
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan.EvalParallel(db, workers)
		}
	})
	for _, s := range benchShardCounts() {
		pdb := storage.Partition(db, s, partCols)
		pdb.BuildIndexes()
		w := workers
		if s < w {
			w = s
		}
		b.Run(fmt.Sprintf("shards%d", s), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan.EvalSharded(pdb, w)
			}
		})
	}
}

func BenchmarkShardedFixpointTC(b *testing.B) {
	rng := rand.New(rand.NewSource(93))
	edges := storage.NewDatabase()
	const chain = 400
	for i := 0; i < chain; i++ {
		edges.Insert("e", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i + 1)})
	}
	for i := 0; i < 200; i++ {
		from := rng.Intn(chain)
		edges.Insert("e", storage.Tuple{fmt.Sprint(from), fmt.Sprint(from + 1 + rng.Intn(6))})
	}
	prog := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	edges.BuildIndexes()
	cat := cost.NewCatalog(edges)
	cp, err := CompileProgram(prog, cat)
	if err != nil {
		b.Fatal(err)
	}
	partCols := cat.PartitionColumns(cp.PartitionHints())
	workers := runtime.GOMAXPROCS(0)
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cp.EvalParallel(edges, workers); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, s := range benchShardCounts() {
		pdb := storage.Partition(edges, s, partCols)
		pdb.BuildIndexes()
		w := workers
		if s < w {
			w = s
		}
		b.Run(fmt.Sprintf("shards%d", s), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cp.EvalSharded(pdb, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
