package datalog

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/storage"
)

// Differential property tests for non-monotone maintenance: on randomized
// mixed insert/delete streams over the progdiff corpus — flat view sets
// (counting) and recursive, mutually recursive, and Skolem-head programs
// (DRed) — the maintained database must equal a full re-materialization
// from the surviving base facts after every batch, relation by relation.

// randomDeletes draws a batch of deletions: mostly tuples present in the
// shadow EDB (so deletions actually bite), plus the occasional absent
// tuple that must be a no-op.
func randomDeletes(rng *rand.Rand, edb *storage.Database) map[string][]storage.Tuple {
	del := make(map[string][]storage.Tuple)
	for _, pred := range []string{"e", "u", "m", "t3"} {
		rel := edb.Relation(pred)
		if rel == nil || rel.Len() == 0 || rng.Intn(3) == 0 {
			continue
		}
		tuples := rel.Tuples()
		for i := 0; i < 1+rng.Intn(3); i++ {
			del[pred] = append(del[pred], tuples[rng.Intn(len(tuples))])
		}
	}
	if rng.Intn(4) == 0 {
		del["e"] = append(del["e"], storage.Tuple{"zz", "zz"})
	}
	return del
}

func TestApplyUpdatesDifferential(t *testing.T) {
	streams := 300
	if testing.Short() {
		streams = 60
	}
	rng := rand.New(rand.NewSource(0xDE1E7E))
	flat, dred := 0, 0
	for stream := 0; stream < streams; stream++ {
		edb := randomProgDB(rng)
		prog := randomProgram(rng, stream)
		cp, err := CompileProgramIVM(prog, cost.NewRowCatalog(edb))
		if err != nil {
			t.Fatalf("stream %d: compile: %v\n%s", stream, err, prog)
		}
		if cp.flat {
			flat++
		} else {
			dred++
		}
		st := cp.NewMaintState(edb)
		maintained, err := cp.Eval(edb)
		if err != nil {
			t.Fatalf("stream %d: materialize: %v\n%s", stream, err, prog)
		}
		if rng.Intn(2) == 0 {
			maintained.BuildIndexes()
		}
		shadow := edb.Clone()

		batches := 2 + rng.Intn(4)
		for batch := 0; batch < batches; batch++ {
			var ins, del map[string][]storage.Tuple
			switch rng.Intn(4) {
			case 0: // delete-heavy
				del = randomDeletes(rng, shadow)
			case 1: // insert-only (exercises the lazy-counts boundary)
				ins = randomUpdate(rng)
			default: // mixed churn
				del = randomDeletes(rng, shadow)
				ins = randomUpdate(rng)
			}
			workers := 1 + rng.Intn(4)
			res, err := cp.ApplyUpdates(maintained, st, ins, del, workers)
			if err != nil {
				t.Fatalf("stream %d batch %d: update: %v\n%s", stream, batch, err, prog)
			}
			// Shadow semantics: deletions first, then insertions.
			for pred, tuples := range del {
				for _, tup := range tuples {
					shadow.Remove(pred, tup)
				}
			}
			for pred, tuples := range ins {
				for _, tup := range tuples {
					if err := shadow.Insert(pred, tup); err != nil {
						t.Fatalf("stream %d batch %d: shadow insert: %v", stream, batch, err)
					}
				}
			}
			// Result bookkeeping must match the database.
			for pred, tuples := range res.BaseDeleted {
				for _, tup := range tuples {
					if maintained.Relation(pred) != nil && maintained.Relation(pred).Contains(tup) {
						if !containsTuple(res.BaseInserted[pred], tup) && !containsTuple(ins[pred], tup) {
							t.Fatalf("stream %d batch %d: deleted base tuple %s%v survives", stream, batch, pred, tup)
						}
					}
				}
			}
			for pred, tuples := range res.Derived {
				for _, tup := range tuples {
					if !maintained.Relation(pred).Contains(tup) {
						t.Fatalf("stream %d batch %d: derived tuple %s%v missing", stream, batch, pred, tup)
					}
				}
			}
			for pred, tuples := range res.Retracted {
				for _, tup := range tuples {
					if maintained.Relation(pred).Contains(tup) && !containsTuple(res.Derived[pred], tup) {
						t.Fatalf("stream %d batch %d: retracted tuple %s%v survives", stream, batch, pred, tup)
					}
				}
			}

			want, err := prog.EvalInterp(shadow)
			if err != nil {
				t.Fatalf("stream %d batch %d: interp: %v\n%s", stream, batch, err, prog)
			}
			diffDatabases(t, fmt.Sprintf("stream %d batch %d (mixed update vs full)\n%s", stream, batch, prog), maintained, want)
		}
	}
	if flat == 0 || dred == 0 {
		t.Fatalf("corpus skew: %d flat / %d DRed streams — both paths must be exercised", flat, dred)
	}
}

func containsTuple(ts []storage.Tuple, tup storage.Tuple) bool {
	for _, t := range ts {
		if t.Key() == tup.Key() {
			return true
		}
	}
	return false
}

// TestApplyUpdatesCounting pins the flat-program counting semantics that
// randomized streams hit only by chance: cross-rule support, multiple
// derivations within one rule, and a same-tuple delete+insert in one batch.
func TestApplyUpdatesCounting(t *testing.T) {
	prog := NewProgram(
		RuleFromQuery(mustQ("v(X) :- a(X)")),
		RuleFromQuery(mustQ("v(X) :- b(X)")),
		RuleFromQuery(mustQ("w(X) :- r(X,Y)")),
	)
	base := storage.NewDatabase()
	base.Insert("a", storage.Tuple{"1"})
	base.Insert("b", storage.Tuple{"1"})
	base.Insert("r", storage.Tuple{"1", "p"})
	base.Insert("r", storage.Tuple{"1", "q"})
	cp, err := CompileProgramIVM(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.flat {
		t.Fatal("view set should select the counting strategy")
	}
	st := cp.NewMaintState(base)
	db, err := cp.Eval(base)
	if err != nil {
		t.Fatal(err)
	}

	// Cross-rule: v(1) has two supports; losing one must not retract it.
	res, err := cp.ApplyUpdates(db, st, nil, map[string][]storage.Tuple{"a": {{"1"}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retracted["v"]) != 0 || !db.Relation("v").Contains(storage.Tuple{"1"}) {
		t.Fatalf("v(1) retracted with a surviving support: %+v", res.Retracted)
	}
	if !st.CountsReady() {
		t.Fatal("first deletion should have built the derivation counts")
	}
	res, err = cp.ApplyUpdates(db, st, nil, map[string][]storage.Tuple{"b": {{"1"}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retracted["v"]) != 1 || db.Relation("v").Contains(storage.Tuple{"1"}) {
		t.Fatalf("v(1) must go when its last support does: %+v", res.Retracted)
	}

	// Within-rule multiplicity: w(1) has two r-derivations.
	res, err = cp.ApplyUpdates(db, st, nil, map[string][]storage.Tuple{"r": {{"1", "p"}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retracted["w"]) != 0 || !db.Relation("w").Contains(storage.Tuple{"1"}) {
		t.Fatal("w(1) retracted while r(1,q) still derives it")
	}

	// Same-tuple delete+insert in one batch nets to present.
	res, err = cp.ApplyUpdates(db, st,
		map[string][]storage.Tuple{"r": {{"1", "q"}}},
		map[string][]storage.Tuple{"r": {{"1", "q"}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Relation("w").Contains(storage.Tuple{"1"}) || !db.Relation("r").Contains(storage.Tuple{"1", "q"}) {
		t.Fatal("delete+insert of the same tuple must net to present")
	}
	// And the counts stayed exact: one more delete retracts.
	res, err = cp.ApplyUpdates(db, st, nil, map[string][]storage.Tuple{"r": {{"1", "q"}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retracted["w"]) != 1 || db.Relation("w").Contains(storage.Tuple{"1"}) {
		t.Fatalf("w(1) must go with its last derivation: %+v", res.Retracted)
	}
}

// TestApplyUpdatesBaselineFacts: derived predicates seeded from same-named
// base facts keep those facts forever — their support is the base relation
// itself, not any rule derivation.
func TestApplyUpdatesBaselineFacts(t *testing.T) {
	// Flat (counting) shape.
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a"})
	base.Insert("v", storage.Tuple{"a"}) // also rule-derivable
	base.Insert("v", storage.Tuple{"s"}) // baseline only
	prog := NewProgram(RuleFromQuery(mustQ("v(X) :- r(X)")))
	cp, err := CompileProgramIVM(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := cp.NewMaintState(base)
	db, err := cp.Eval(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.ApplyUpdates(db, st, nil, map[string][]storage.Tuple{"r": {{"a"}}}, 1); err != nil {
		t.Fatal(err)
	}
	for _, tup := range []storage.Tuple{{"a"}, {"s"}} {
		if !db.Relation("v").Contains(tup) {
			t.Fatalf("baseline fact v%v lost to a rule-support deletion", tup)
		}
	}

	// Recursive (DRed) shape.
	base2 := storage.NewDatabase()
	base2.Insert("e", storage.Tuple{"a", "b"})
	base2.Insert("tc", storage.Tuple{"x", "y"})
	prog2 := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	cp2, err := CompileProgramIVM(prog2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.flat {
		t.Fatal("recursive program should select DRed")
	}
	st2 := cp2.NewMaintState(base2)
	db2, err := cp2.Eval(base2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cp2.ApplyUpdates(db2, st2, nil, map[string][]storage.Tuple{"e": {{"a", "b"}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Relation("tc").Contains(storage.Tuple{"a", "b"}) {
		t.Fatal("tc(a,b) must be retracted with its only edge")
	}
	if !db2.Relation("tc").Contains(storage.Tuple{"x", "y"}) {
		t.Fatalf("baseline fact tc(x,y) must survive: retracted=%v", res.Retracted)
	}
}

// TestApplyUpdatesDRedRederive pins the survivor case DRed exists for:
// over-deletion marks tuples that keep an alternative derivation, and the
// re-derive pass must restore them.
func TestApplyUpdatesDRedRederive(t *testing.T) {
	base := storage.NewDatabase()
	// Two paths a→c: direct edge and via b. Deleting a→c keeps tc(a,c).
	base.Insert("e", storage.Tuple{"a", "b"})
	base.Insert("e", storage.Tuple{"b", "c"})
	base.Insert("e", storage.Tuple{"a", "c"})
	base.Insert("e", storage.Tuple{"c", "d"})
	prog := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	cp, err := CompileProgramIVM(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := cp.NewMaintState(base)
	db, err := cp.Eval(base)
	if err != nil {
		t.Fatal(err)
	}
	db.BuildIndexes()
	res, err := cp.ApplyUpdates(db, st, nil, map[string][]storage.Tuple{"e": {{"a", "c"}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// tc(a,c) and tc(a,d) survive via b; nothing else is lost.
	for _, tup := range []storage.Tuple{{"a", "c"}, {"a", "d"}, {"a", "b"}, {"b", "c"}, {"c", "d"}, {"b", "d"}} {
		if !db.Relation("tc").Contains(tup) {
			t.Fatalf("tc%v lost despite a surviving derivation; retracted=%v", tup, res.Retracted)
		}
	}
	if len(res.Retracted["tc"]) != 0 {
		t.Fatalf("no tc tuple should be retracted, got %v", res.Retracted["tc"])
	}
	if !db.Relation("tc").Frozen() {
		t.Fatal("maintained extent lost its indexes across a DRed batch")
	}

	// Now cut the alternative path too: the downstream closure collapses.
	_, err = cp.ApplyUpdates(db, st, nil, map[string][]storage.Tuple{"e": {{"a", "b"}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	shadow := storage.NewDatabase()
	shadow.Insert("e", storage.Tuple{"b", "c"})
	shadow.Insert("e", storage.Tuple{"c", "d"})
	want, err := prog.EvalInterp(shadow)
	if err != nil {
		t.Fatal(err)
	}
	diffDatabases(t, "post-collapse closure", db, want)
}

// TestApplyUpdatesErrors covers the rejection and atomicity contract:
// invalid batches fail before mutation, failing batches roll back fully.
func TestApplyUpdatesErrors(t *testing.T) {
	prog := NewProgram(RuleFromQuery(mustQ("v(X) :- r(X,Y)")))
	plain, err := CompileProgram(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.ApplyUpdates(storage.NewDatabase(), nil, nil, nil, 1); err != ErrNotMaintenance {
		t.Fatalf("non-IVM program: err = %v, want ErrNotMaintenance", err)
	}

	cp, err := CompileProgramIVM(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "b"})
	st := cp.NewMaintState(base)
	db, err := cp.Eval(base)
	if err != nil {
		t.Fatal(err)
	}
	// Deleting from the derived relation is rejected.
	if _, err := cp.ApplyUpdates(db, st, nil, map[string][]storage.Tuple{"v": {{"a"}}}, 1); err == nil {
		t.Fatal("delete from derived relation accepted")
	}
	// Arity mismatch on the delete side fails before the insert side runs.
	_, err = cp.ApplyUpdates(db, st,
		map[string][]storage.Tuple{"r": {{"c", "d"}}},
		map[string][]storage.Tuple{"r": {{"oops"}}}, 1)
	if err == nil {
		t.Fatal("wrong-arity delete accepted")
	}
	var ae *storage.ArityError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *storage.ArityError", err)
	}
	if db.Relation("r").Len() != 1 || db.Relation("r").Contains(storage.Tuple{"c", "d"}) {
		t.Fatal("failed batch mutated the database")
	}
	// Deleting absent tuples and from absent relations is a clean no-op.
	res, err := cp.ApplyUpdates(db, st, nil, map[string][]storage.Tuple{
		"r":       {{"z", "z"}},
		"missing": {{"1"}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BaseDeleted) != 0 || len(res.Retracted) != 0 {
		t.Fatalf("no-op delete batch reported changes: %+v", res)
	}
}

// TestApplyUpdatesCancelRollback: a canceled or budget-tripped batch must
// leave the database bit-identical to its pre-batch state — deletions
// re-inserted, insertions truncated, batch-created relations dropped.
func TestApplyUpdatesCancelRollback(t *testing.T) {
	for _, recursive := range []bool{false, true} {
		base := storage.NewDatabase()
		for i := 0; i < 20; i++ {
			base.Insert("e", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i + 1)})
		}
		var prog *Program
		if recursive {
			prog = NewProgram(
				RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
				RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
			)
		} else {
			prog = NewProgram(RuleFromQuery(mustQ("v(X,Z) :- e(X,Y), e(Y,Z)")))
		}
		cp, err := CompileProgramIVM(prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		st := cp.NewMaintState(base)
		db, err := cp.Eval(base)
		if err != nil {
			t.Fatal(err)
		}
		snapshot := db.Clone()

		// Pre-canceled context: rejected before any work.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := cp.ApplyUpdatesCtx(ctx, db, st, nil, map[string][]storage.Tuple{"e": {{"0", "1"}}}, 1, Limits{}); !errors.Is(err, ErrCanceled) {
			t.Fatalf("recursive=%v: err = %v, want ErrCanceled", recursive, err)
		}
		diffDatabases(t, "canceled batch", db, snapshot)

		// A tripped budget mid-batch rolls everything back: in the DRed
		// case the over-deletion fixpoint trips it mid-retraction, in the
		// counting case the insert side derives past the cap.
		ins := map[string][]storage.Tuple{"e": {{"20", "21"}, {"21", "22"}}}
		del := map[string][]storage.Tuple{"e": {{"0", "1"}, {"5", "6"}}}
		_, err = cp.ApplyUpdatesCtx(context.Background(), db, st, ins, del, 2, Limits{MaxDerived: 1})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("recursive=%v: err = %v, want ErrBudgetExceeded", recursive, err)
		}
		diffDatabases(t, fmt.Sprintf("budget-tripped batch (recursive=%v)", recursive), db, snapshot)

		// The same batch with room succeeds and stays consistent.
		if _, err := cp.ApplyUpdatesCtx(context.Background(), db, st, ins, del, 2, Limits{}); err != nil {
			t.Fatalf("recursive=%v: %v", recursive, err)
		}
		shadow := base.Clone()
		shadow.Remove("e", storage.Tuple{"0", "1"})
		shadow.Remove("e", storage.Tuple{"5", "6"})
		shadow.Insert("e", storage.Tuple{"20", "21"})
		shadow.Insert("e", storage.Tuple{"21", "22"})
		want, err := prog.EvalInterp(shadow)
		if err != nil {
			t.Fatal(err)
		}
		diffDatabases(t, fmt.Sprintf("post-rollback batch (recursive=%v)", recursive), db, want)
	}
}
