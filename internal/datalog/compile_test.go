package datalog

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/storage"
	"repro/internal/workload"
)

// checkAgreement verifies every evaluation route against the unoptimised
// reference EvalQueryNaive on one (db, q) instance.
func checkAgreement(t *testing.T, db *storage.Database, q *cq.Query, label string) {
	t.Helper()
	want := EvalQueryNaive(db, q)
	plan := Compile(q, cost.NewCatalog(db))
	if got := plan.Eval(db); !storage.TuplesEqual(got, want) {
		t.Fatalf("%s: compiled Eval disagrees with naive\nquery: %s\nplan:\n%s got %v\nwant %v",
			label, q, plan.Describe(), got, want)
	}
	if got := plan.EvalParallel(db, 4); !storage.TuplesEqual(got, want) {
		t.Fatalf("%s: EvalParallel disagrees with naive\nquery: %s\ngot %v\nwant %v", label, q, got, want)
	}
	if got := EvalQuery(db, q); !storage.TuplesEqual(got, want) {
		t.Fatalf("%s: EvalQuery disagrees with naive\nquery: %s\ngot %v\nwant %v", label, q, got, want)
	}
	if got := EvalQueryInterp(db, q); !storage.TuplesEqual(got, want) {
		t.Fatalf("%s: interpreter disagrees with naive\nquery: %s\ngot %v\nwant %v", label, q, got, want)
	}
	if got := CountQuery(db, q); got != len(want) {
		t.Fatalf("%s: CountQuery = %d, want %d\nquery: %s", label, got, len(want), q)
	}
}

// TestCompiledMatchesNaiveRandom is the differential property test of the
// compiled executor: on randomized workloads — varying connectivity (many
// are disconnected), random constants, comparison predicates and Skolem
// values in the data — every route must agree exactly with EvalQueryNaive.
func TestCompiledMatchesNaiveRandom(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 120
	}
	rng := rand.New(rand.NewSource(71))
	preds := []string{"p1", "p2", "p3"}
	for trial := 0; trial < trials; trial++ {
		reuse := []float64{0, 0.3, 0.6}[trial%3]
		q := workload.RandomQuery(rng, 2+rng.Intn(4), len(preds), reuse)
		db := workload.RandomDatabase(rng, preds, 2, 10+rng.Intn(15), 6+rng.Intn(6))

		// The naive reference enumerates disconnected bodies as a full
		// cross product; bound its worst case so the test stays fast.
		naiveCost := 1
		for _, a := range q.Body {
			if r := db.Relation(a.Pred); r != nil {
				naiveCost *= r.Len()
			}
		}
		if naiveCost > 200_000 {
			continue
		}

		// Sprinkle Skolem values into the data: they join by ordinary
		// equality and must flow through slots like any constant.
		for i := 0; i < 4; i++ {
			p := preds[rng.Intn(len(preds))]
			sk := fmt.Sprintf("⟨f%d:c%d⟩", rng.Intn(2), rng.Intn(5))
			db.Insert(p, storage.Tuple{sk, fmt.Sprintf("c%d", rng.Intn(8))})
			db.Insert(p, storage.Tuple{fmt.Sprintf("c%d", rng.Intn(8)), sk})
		}

		// Replace a random body argument by a constant (index probes by
		// constant, constant checks on scan fallback).
		if rng.Intn(2) == 0 {
			a := rng.Intn(len(q.Body))
			q.Body[a].Args[rng.Intn(2)] = cq.Const(fmt.Sprintf("c%d", rng.Intn(8)))
		}

		// Attach random comparisons over body variables.
		var bodyVars []cq.Term
		seen := map[string]bool{}
		for _, a := range q.Body {
			for _, arg := range a.Args {
				if arg.IsVar() && !seen[arg.Lex] {
					seen[arg.Lex] = true
					bodyVars = append(bodyVars, arg)
				}
			}
		}
		for i := rng.Intn(3); i > 0 && len(bodyVars) > 0; i-- {
			l := bodyVars[rng.Intn(len(bodyVars))]
			var r cq.Term
			if rng.Intn(3) == 0 {
				r = cq.Const(fmt.Sprintf("c%d", rng.Intn(8)))
			} else {
				r = bodyVars[rng.Intn(len(bodyVars))]
			}
			op := cq.CompOp(rng.Intn(6))
			q.AddComparison(cq.NewComparison(l, op, r))
		}

		checkAgreement(t, db, q, fmt.Sprintf("trial %d", trial))
	}
}

// TestCompiledDisconnected covers the decomposition shapes explicitly:
// cross products, existence-only components, and constant-only heads.
func TestCompiledDisconnected(t *testing.T) {
	db := storage.NewDatabase()
	for i := 0; i < 5; i++ {
		db.Insert("a", storage.Tuple{fmt.Sprintf("x%d", i)})
		db.Insert("b", storage.Tuple{fmt.Sprintf("y%d", i)})
	}
	db.Insert("c", storage.Tuple{"only"})
	for _, src := range []string{
		"q(X,Y) :- a(X), b(Y)",
		"q(X) :- a(X), b(Y)",
		"q(X) :- a(X), b(Y), c(Z)",
		"q(tag) :- a(X), b(Y)",
		"q(X) :- a(X), nope(Y)",
		"q(X,Y) :- a(X), b(Y), X != Y",
	} {
		checkAgreement(t, db, cq.MustParseQuery(src), src)
	}
}

// TestCompiledGroundComparisons checks compile-time decided comparisons.
func TestCompiledGroundComparisons(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", storage.Tuple{"1"})
	for _, src := range []string{
		"q(X) :- r(X), 1 < 2",
		"q(X) :- r(X), 2 < 1",
		"q(X) :- r(X), 'a' = 'a'",
	} {
		checkAgreement(t, db, cq.MustParseQuery(src), src)
	}
}

// TestCompiledComparisonDepth asserts the comparison runs before the leaf:
// in a chain join it must be attached to the step that binds its variables,
// not re-checked per full binding.
func TestCompiledComparisonDepth(t *testing.T) {
	q := cq.MustParseQuery("q(X,Z) :- e(X,Y), f(Y,Z), X < Y")
	plan := Compile(q, nil)
	desc := plan.Describe()
	lines := strings.Split(strings.TrimSpace(desc), "\n")
	if len(lines) < 3 {
		t.Fatalf("unexpected plan:\n%s", desc)
	}
	// Step 1 joins e(X,Y) and binds both comparison variables.
	if !strings.Contains(lines[1], "comparisons=1") {
		t.Fatalf("comparison not attached to its earliest bound depth:\n%s", desc)
	}
	if strings.Contains(lines[2], "comparisons") {
		t.Fatalf("comparison leaked to the leaf:\n%s", desc)
	}
}

// TestCompiledDontCareDedup checks that don't-care columns do not multiply
// the join work: the step-level dedup stands in for the interpreter's
// materialised projections.
func TestCompiledDontCareDedup(t *testing.T) {
	db := storage.NewDatabase()
	for i := 0; i < 50; i++ {
		db.Insert("v", storage.Tuple{"k", fmt.Sprintf("junk%d", i)})
	}
	db.Insert("w", storage.Tuple{"k"})
	q := cq.MustParseQuery("q(X) :- v(X,J), w(X)")
	checkAgreement(t, db, q, "dont-care")
	// The join form turns the don't-care atom into an existential step
	// (first match decides) because w is smaller and joins first…
	plan := Compile(q, cost.NewCatalog(db))
	if !strings.Contains(plan.Describe(), "existential") {
		t.Fatalf("expected an existential step for the don't-care atom:\n%s", plan.Describe())
	}
	// …while a binding step with a don't-care column gets step dedup.
	q2 := cq.MustParseQuery("q(X) :- v(X,J)")
	checkAgreement(t, db, q2, "dont-care root")
	plan2 := Compile(q2, cost.NewCatalog(db))
	if !strings.Contains(plan2.Describe(), "dedup") {
		t.Fatalf("expected a dedup step for the don't-care column:\n%s", plan2.Describe())
	}
}

// TestEvalParallelUnfrozenNeverMutates exercises the scan fallback under
// the race detector: the database is never frozen, so any lazy index build
// inside the executor would be a data race across these goroutines.
func TestEvalParallelUnfrozenNeverMutates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := workload.RandomDatabase(rng, []string{"p1", "p2"}, 2, 200, 20)
	q := cq.MustParseQuery("q(X,Z) :- p1(X,Y), p2(Y,Z)")
	plan := Compile(q, nil)
	want := plan.Eval(db)
	if db.Relation("p1").Frozen() {
		t.Fatal("compiled executor mutated the relation (built indexes)")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if got := plan.EvalParallel(db, 4); !storage.TuplesEqual(got, want) {
					t.Errorf("concurrent EvalParallel diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestEvalParallelFrozenConcurrent is the fast path under the race
// detector: frozen relations, indexed probes, many concurrent evaluations.
func TestEvalParallelFrozenConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	db := workload.ChainDatabase(rng, 4, true, 300, 40)
	db.BuildIndexes()
	q := workload.ChainQuery(4, true)
	plan := Compile(q, cost.NewCatalog(db))
	want := EvalQueryNaive(db, q)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if got := plan.EvalParallel(db, 4); !storage.TuplesEqual(got, want) {
					t.Errorf("concurrent EvalParallel diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCountQueryDisconnected pins the satellite fix: counting a
// disconnected query must not enumerate the cross product. With two
// components of 1000 rows each the product has 10^6 combinations; the
// per-component count finishes immediately.
func TestCountQueryDisconnected(t *testing.T) {
	db := storage.NewDatabase()
	for i := 0; i < 1000; i++ {
		db.Insert("a", storage.Tuple{fmt.Sprintf("x%d", i)})
		db.Insert("b", storage.Tuple{fmt.Sprintf("y%d", i)})
	}
	q := cq.MustParseQuery("q(X,Y) :- a(X), b(Y)")
	if n := CountQuery(db, q); n != 1000*1000 {
		t.Fatalf("CountQuery = %d, want 1000000", n)
	}
}
