package datalog

import (
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/storage"
)

// Race coverage for the compiled fixpoint executor: many goroutines share
// one CompiledProgram and one database. All fixpoint state (delta slices,
// IDB relations, buffers) must be per-call; the shared relations must only
// ever be read. Run with -race (CI does).

func raceProgram(t *testing.T) (*Program, *storage.Database) {
	t.Helper()
	db := storage.NewDatabase()
	for i := 0; i < 40; i++ {
		db.Insert("e", storage.Tuple{node40(i), node40(i + 1)})
	}
	db.Insert("e", storage.Tuple{node40(40), node40(0)}) // cycle
	p := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	return p, db
}

func node40(i int) string {
	return "n" + string(rune('A'+i%26)) + string(rune('a'+i/26))
}

// TestCompiledProgramConcurrentFrozen runs concurrent parallel evaluations
// over a frozen database — the engine's serving configuration.
func TestCompiledProgramConcurrentFrozen(t *testing.T) {
	p, db := raceProgram(t)
	db.BuildIndexes()
	cp, err := CompileProgram(p, cost.NewCatalog(db))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := cp.EvalRelation(db, "tc", 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, _, err := cp.EvalRelation(db, "tc", 1+g%4)
			if err != nil {
				t.Error(err)
				return
			}
			if !storage.TuplesEqual(got, want) {
				t.Errorf("goroutine %d: %d tuples, want %d", g, len(got), len(want))
			}
		}(g)
	}
	wg.Wait()
}

// TestCompiledProgramConcurrentUnfrozen shares an unfrozen database: no
// column indexes exist, ColumnIndex reports ok=false, and every EDB access
// degrades to a scan — without ever building (i.e. mutating) an index.
func TestCompiledProgramConcurrentUnfrozen(t *testing.T) {
	p, db := raceProgram(t)
	cp, err := CompileProgram(p, cost.NewRowCatalog(db))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := cp.EvalRelation(db, "tc", 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, _, err := cp.EvalRelation(db, "tc", 1+g%4)
			if err != nil {
				t.Error(err)
				return
			}
			if !storage.TuplesEqual(got, want) {
				t.Errorf("goroutine %d: %d tuples, want %d", g, len(got), len(want))
			}
		}(g)
	}
	wg.Wait()
	if db.Relation("e").Frozen() {
		t.Fatal("executor built indexes on the shared database")
	}
}
