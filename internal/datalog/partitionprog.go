package datalog

import (
	"fmt"

	"repro/internal/storage"
)

// Per-shard semi-naive fixpoints and sharded IVM propagation over a
// storage.PartitionedDatabase.
//
// The fixpoint keeps the semi-naive structure of run() — round 0 fires full
// variants, later rounds fire delta variants on what the previous round
// derived — but both the data and the work are sharded:
//
//   - derived relations are shardedIDB: per-shard idbRel instances, each
//     with its own dedup set and maintained probe indexes, partitioned by
//     the first probed column (the column delta-joins route on);
//   - a round's tasks are rule-variant × shard: full variants fan out one
//     task per root shard, delta variants one task per shard of the
//     previous round's delta. Tasks buffer their derivations and only read
//     round-stable state, so they fan out across workers without locks;
//   - derivations merge at the round barrier only: each new tuple is routed
//     to its owner shard (storage.ShardOf of its partition-column value)
//     and becomes that shard's delta for the next round. Between barriers
//     no shard sees another shard's in-flight derivations — the per-shard
//     fixpoint is exact because semi-naive evaluation is insensitive to
//     which round a tuple arrives in, only that every rule eventually sees
//     it.
//
// Variant bodies run through joinStepsShard: probes on a relation's
// partition column route to the owner shard, everything else broadcasts.
// Unlike the one-shot plan path there are no exchange materializations
// inside a variant — the delta at the root is already shard-resident, which
// is the locality that matters in the delta-dominated rounds.

// shardedIDB is a per-Eval derived relation partitioned across shards: each
// shard is an idbRel with its own dedup set and maintained probe indexes.
type shardedIDB struct {
	arity   int
	partCol int
	shards  []*idbRel
}

func newShardedIDB(arity, partCol, shards int, probeCols []int) *shardedIDB {
	if partCol < 0 || partCol >= arity {
		partCol = 0
	}
	si := &shardedIDB{arity: arity, partCol: partCol, shards: make([]*idbRel, shards)}
	for i := range si.shards {
		si.shards[i] = newIDBRel(arity, probeCols)
	}
	return si
}

// ownerIdx returns the index of the shard owning the tuple (0 for nullary
// tuples).
func (si *shardedIDB) ownerIdx(t storage.Tuple) int {
	if si.arity == 0 {
		return 0
	}
	return storage.ShardOf(t[si.partCol], len(si.shards))
}

// contains reports membership, with the tuple's key already computed.
func (si *shardedIDB) contains(t storage.Tuple, key string) bool {
	return si.shards[si.ownerIdx(t)].seen[key]
}

// insert routes the tuple to its owner shard, reporting whether it was new.
func (si *shardedIDB) insert(t storage.Tuple) bool {
	return si.shards[si.ownerIdx(t)].insert(t)
}

// tuples returns all tuples, shard-major, as a fresh slice.
func (si *shardedIDB) tuples() []storage.Tuple {
	n := 0
	for _, ir := range si.shards {
		n += len(ir.tuples)
	}
	out := make([]storage.Tuple, 0, n)
	for _, ir := range si.shards {
		out = append(out, ir.tuples...)
	}
	return out
}

// idbPartCol is the partition-column policy for derived relations: the
// first (lowest) column some compiled step probes — the column delta-joins
// route on — and column 0 when nothing probes the predicate.
// PartitionHints is CompiledPlan.PartitionHints for a compiled program: the
// probe and scan-join columns of every rule variant (full, delta and IVM
// alike), EDB and IDB predicates both. Partitioning the EDB on these columns
// makes the per-shard fixpoint's probes shard-local.
func (cp *CompiledProgram) PartitionHints() map[string][]int {
	hints := make(map[string][]int)
	for i := range cp.rules {
		r := &cp.rules[i]
		collectPartitionHints(r.full.steps, hints)
		for j := range r.deltas {
			collectPartitionHints(r.deltas[j].steps, hints)
		}
		for j := range r.edbDeltas {
			collectPartitionHints(r.edbDeltas[j].steps, hints)
		}
	}
	return hints
}

func (cp *CompiledProgram) idbPartCol(pred string) int {
	if cols := cp.idbProbeCols[pred]; len(cols) > 0 {
		return cols[0]
	}
	return 0
}

// shardFixTask is one rule-variant execution scheduled in a sharded round:
// full variants may be restricted to one root shard, delta variants carry
// one shard's slice of the previous round's delta.
type shardFixTask struct {
	rule      *compiledRule
	v         *ruleVariant
	delta     []storage.Tuple
	rootShard int // -1: all shards
}

// resolveVariantSharded binds a variant's steps to their partitioned
// sources: the delta slice (as a one-shard scan) for the delta-root step,
// the sharded IDB state for derived predicates, and the partitioned EDB
// relation otherwise.
func (cp *CompiledProgram) resolveVariantSharded(pdb *storage.PartitionedDatabase, idb map[string]*shardedIDB, v *ruleVariant, delta []storage.Tuple) []shardSrc {
	srcs := make([]shardSrc, len(v.steps))
	for j := range v.steps {
		s := &v.steps[j]
		if j == 0 && delta != nil {
			srcs[j] = singleSrc(delta, s.probeCol >= 0)
			continue
		}
		if si, ok := idb[s.pred]; ok {
			n := len(si.shards)
			srcs[j].shards = n
			srcs[j].partCol = si.partCol
			srcs[j].tuples = make([][]storage.Tuple, n)
			if s.probeCol >= 0 {
				srcs[j].idx = make([]map[string][]int, n)
				srcs[j].local = s.probeCol == si.partCol
			}
			for i, ir := range si.shards {
				srcs[j].tuples[i] = ir.tuples
				if s.probeCol >= 0 {
					srcs[j].idx[i] = ir.idx[s.probeCol] // nil → scan fallback
				}
			}
			continue
		}
		rel := pdb.Relation(s.pred)
		if rel == nil {
			srcs[j].partCol = -1
			continue // missing predicate: empty relation
		}
		srcs[j] = shardSrcForRel(rel, s.probeCol)
	}
	return srcs
}

// runSharded executes the per-shard semi-naive loop; see the package
// comment above for the round/barrier structure. gs and lim are the
// governance hooks (nil/zero for unbounded runs), checked exactly as in
// run(): inside the variant loops and at every round barrier.
func (cp *CompiledProgram) runSharded(pdb *storage.PartitionedDatabase, workers int, gs *guardState, lim Limits) (map[string]*shardedIDB, FixpointStats, error) {
	P := pdb.NumShards()
	var stats FixpointStats
	idb := make(map[string]*shardedIDB, len(cp.idbArity))
	for pred, arity := range cp.idbArity {
		si := newShardedIDB(arity, cp.idbPartCol(pred), P, cp.idbProbeCols[pred])
		// A derived predicate may coincide with an EDB relation; its facts
		// seed the accumulated set, re-routed by the IDB partition column.
		if rel := pdb.Relation(pred); rel != nil {
			if rel.Arity() != arity {
				return nil, stats, &storage.ArityError{Pred: pred, Want: rel.Arity(), Got: arity}
			}
			for i := 0; i < rel.NumShards(); i++ {
				for _, t := range rel.Shard(i).Tuples() {
					si.insert(t)
				}
			}
		}
		idb[pred] = si
	}

	var tasks []shardFixTask
	for i := range cp.rules {
		r := &cp.rules[i]
		if r.full.empty {
			continue
		}
		tasks = append(tasks, cp.fullTasks(pdb, idb, r)...)
	}
	for len(tasks) > 0 {
		if err := gs.barrier(); err != nil {
			return nil, stats, err
		}
		if err := checkFixpointBudget(stats, lim); err != nil {
			return nil, stats, err
		}
		stats.Iterations++
		bufs, err := runTaskSet(len(tasks), workers, func(i int) ([]derivedTuple, error) {
			return cp.runVariantSharded(pdb, idb, tasks[i], gs.child())
		})
		if err != nil {
			return nil, stats, err
		}
		// Round barrier: route every new derivation to its owner shard; the
		// per-shard slices become the next round's per-shard deltas.
		delta := make(map[string][][]storage.Tuple)
		for i, buf := range bufs {
			pred := tasks[i].rule.headPred
			si := idb[pred]
			for _, d := range buf {
				o := si.ownerIdx(d.t)
				if si.shards[o].insertKeyed(d) {
					if delta[pred] == nil {
						delta[pred] = make([][]storage.Tuple, P)
					}
					delta[pred][o] = append(delta[pred][o], d.t)
					stats.Derived++
				}
			}
		}
		tasks = tasks[:0]
		for i := range cp.rules {
			r := &cp.rules[i]
			for j := range r.deltas {
				v := &r.deltas[j]
				if v.empty {
					continue
				}
				for _, part := range delta[v.deltaPred] {
					if len(part) > 0 {
						tasks = append(tasks, shardFixTask{rule: r, v: v, delta: part, rootShard: -1})
					}
				}
			}
		}
	}
	if err := gs.failure(); err != nil {
		return nil, stats, err
	}
	return idb, stats, nil
}

// fullTasks fans one rule's full variant out across its root relation's
// shards: one task per non-empty root shard for data-sharded roots, a
// single all-shard task when the root probes its partition column (owner
// routing confines it already), is existential, or has no source.
func (cp *CompiledProgram) fullTasks(pdb *storage.PartitionedDatabase, idb map[string]*shardedIDB, r *compiledRule) []shardFixTask {
	root := &r.full.steps[0]
	var n int
	var local bool
	var sizes []int
	if si, ok := idb[root.pred]; ok {
		n = len(si.shards)
		local = root.probeCol >= 0 && root.probeCol == si.partCol
		sizes = make([]int, n)
		for i, ir := range si.shards {
			sizes[i] = len(ir.tuples)
		}
	} else if rel := pdb.Relation(root.pred); rel != nil {
		n = rel.NumShards()
		local = root.probeCol >= 0 && root.probeCol == rel.PartitionColumn()
		sizes = make([]int, n)
		for i := 0; i < n; i++ {
			sizes[i] = rel.Shard(i).Len()
		}
	} else {
		return nil // missing root relation: the variant matches nothing
	}
	if root.existential || local {
		return []shardFixTask{{rule: r, v: &r.full, rootShard: -1}}
	}
	var tasks []shardFixTask
	for s := 0; s < n; s++ {
		if sizes[s] > 0 {
			tasks = append(tasks, shardFixTask{rule: r, v: &r.full, rootShard: s})
		}
	}
	return tasks
}

// runVariantSharded enumerates one variant's body matches through the
// sharded executor and buffers the derived head tuples, deduplicated
// against the buffer and the accumulated (round-stable) sharded relation.
func (cp *CompiledProgram) runVariantSharded(pdb *storage.PartitionedDatabase, idb map[string]*shardedIDB, t shardFixTask, g *evalGuard) ([]derivedTuple, error) {
	v := t.v
	srcs := cp.resolveVariantSharded(pdb, idb, v, t.delta)
	if t.rootShard >= 0 {
		srcs[0] = srcs[0].only(t.rootShard)
	}
	comp := compiledComponent{steps: v.steps}
	accum := idb[t.rule.headPred]
	frame := make([]string, v.numSlots)
	var buf []derivedTuple
	var bufSeen map[string]bool
	var evalErr error
	joinStepsShard(&comp, srcs, 0, len(v.steps), frame, g, func(frame []string) bool {
		if v.unsafeVar != "" {
			evalErr = fmt.Errorf("datalog: unbound head variable %s", v.unsafeVar)
			return false
		}
		tuple := buildHeadTuple(v.head, frame)
		k := tuple.Key()
		if accum.contains(tuple, k) || bufSeen[k] {
			return true
		}
		if bufSeen == nil {
			bufSeen = make(map[string]bool)
		}
		bufSeen[k] = true
		buf = append(buf, derivedTuple{t: tuple, key: k})
		if g.emitRow() {
			return false
		}
		return true
	})
	return buf, evalErr
}

// EvalSharded runs the per-shard fixpoint over a partitioned EDB and
// returns an ordinary database containing the (flattened) EDB relations
// plus all derived relations — tuple-set-identical to Eval over the
// flattened input.
func (cp *CompiledProgram) EvalSharded(pdb *storage.PartitionedDatabase, workers int) (*storage.Database, error) {
	idb, _, err := cp.runSharded(pdb, workers, nil, Limits{})
	if err != nil {
		return nil, err
	}
	db := pdb.Flatten()
	for pred, si := range idb {
		rel, err := db.Ensure(pred, si.arity)
		if err != nil {
			return nil, err
		}
		for _, ir := range si.shards {
			for _, t := range ir.tuples {
				rel.Insert(t)
			}
		}
	}
	return db, nil
}

// EvalRelationSharded runs the per-shard fixpoint and returns just one
// relation's tuples — the sharded serving path, mirroring EvalRelation.
func (cp *CompiledProgram) EvalRelationSharded(pdb *storage.PartitionedDatabase, pred string, workers int) ([]storage.Tuple, FixpointStats, error) {
	return cp.evalRelationSharded(pdb, pred, workers, nil, Limits{})
}

// evalRelationSharded is the shared implementation behind
// EvalRelationSharded and EvalRelationShardedCtx.
func (cp *CompiledProgram) evalRelationSharded(pdb *storage.PartitionedDatabase, pred string, workers int, gs *guardState, lim Limits) ([]storage.Tuple, FixpointStats, error) {
	idb, stats, err := cp.runSharded(pdb, workers, gs, lim)
	if err != nil {
		return nil, stats, err
	}
	if si, ok := idb[pred]; ok {
		return si.tuples(), stats, nil
	}
	if rel := pdb.Relation(pred); rel != nil {
		return rel.Tuples(), stats, nil
	}
	return nil, stats, nil
}

// MaintainDeltaSharded propagates a batch of inserts through the program's
// delta variants over a partitioned database, updating its derived
// relations in place — the sharded form of MaintainDeltaParallel. The
// rounds run per-shard: the batch is split by each relation's partition
// column, every task reads one shard's slice of the delta, and new
// derivations are routed to their owner shards at the round barrier. Like
// the unpartitioned path, db must already contain the delta tuples and the
// accumulated derived relations; it returns the newly derived tuples per
// predicate.
func (cp *CompiledProgram) MaintainDeltaSharded(pdb *storage.PartitionedDatabase, delta map[string][]storage.Tuple, workers int) (map[string][]storage.Tuple, FixpointStats, error) {
	return cp.maintainDeltaSharded(pdb, delta, workers, nil, Limits{})
}

// maintainDeltaSharded is the shared implementation behind
// MaintainDeltaSharded and MaintainDeltaShardedCtx. On a guard or budget
// failure the database holds a partially propagated state — callers wanting
// atomicity (ivm.Maintainer) snapshot and roll back around it.
func (cp *CompiledProgram) maintainDeltaSharded(pdb *storage.PartitionedDatabase, delta map[string][]storage.Tuple, workers int, gs *guardState, lim Limits) (map[string][]storage.Tuple, FixpointStats, error) {
	var stats FixpointStats
	if !cp.ivm {
		return nil, stats, ErrNotMaintenance
	}
	P := pdb.NumShards()
	derived := make(map[string][]storage.Tuple)
	cur := make(map[string][][]storage.Tuple, len(delta))
	for pred, tuples := range delta {
		cur[pred] = splitByShard(pdb, pred, tuples, P)
	}
	for {
		var tasks []shardFixTask
		for i := range cp.rules {
			r := &cp.rules[i]
			for _, variants := range [2][]ruleVariant{r.edbDeltas, r.deltas} {
				for j := range variants {
					v := &variants[j]
					if v.empty {
						continue
					}
					for _, part := range cur[v.deltaPred] {
						if len(part) > 0 {
							tasks = append(tasks, shardFixTask{rule: r, v: v, delta: part, rootShard: -1})
						}
					}
				}
			}
		}
		if len(tasks) == 0 {
			if err := gs.failure(); err != nil {
				return nil, stats, err
			}
			return derived, stats, nil
		}
		if err := gs.barrier(); err != nil {
			return nil, stats, err
		}
		if err := checkFixpointBudget(stats, lim); err != nil {
			return nil, stats, err
		}
		stats.Iterations++
		bufs, err := runTaskSet(len(tasks), workers, func(i int) ([]derivedTuple, error) {
			return cp.maintVariantSharded(pdb, tasks[i], gs.child())
		})
		if err != nil {
			return nil, stats, err
		}
		next := make(map[string][][]storage.Tuple)
		for i, buf := range bufs {
			pred := tasks[i].rule.headPred
			rel, err := pdb.Ensure(pred, tasks[i].rule.arity, cp.idbPartCol(pred))
			if err != nil {
				return nil, stats, err
			}
			for _, d := range buf {
				if rel.Insert(d.t) {
					if next[pred] == nil {
						next[pred] = make([][]storage.Tuple, P)
					}
					o := 0
					if rel.Arity() > 0 {
						o = storage.ShardOf(d.t[rel.PartitionColumn()], P)
					}
					next[pred][o] = append(next[pred][o], d.t)
					derived[pred] = append(derived[pred], d.t)
					stats.Derived++
				}
			}
		}
		cur = next
	}
}

// splitByShard buckets a delta batch by the relation's partition column; a
// missing relation buckets by column 0 (where Ensure will create it).
func splitByShard(pdb *storage.PartitionedDatabase, pred string, tuples []storage.Tuple, P int) [][]storage.Tuple {
	pc := 0
	if rel := pdb.Relation(pred); rel != nil {
		pc = rel.PartitionColumn()
	}
	parts := make([][]storage.Tuple, P)
	for _, t := range tuples {
		s := 0
		if len(t) > 0 {
			s = storage.ShardOf(t[pc], P)
		}
		parts[s] = append(parts[s], t)
	}
	return parts
}

// maintVariantSharded is maintVariant over a partitioned database: every
// source — including the accumulated derived relations — resolves from
// pdb, with shard-local probes on partition columns.
func (cp *CompiledProgram) maintVariantSharded(pdb *storage.PartitionedDatabase, t shardFixTask, g *evalGuard) ([]derivedTuple, error) {
	v := t.v
	srcs := make([]shardSrc, len(v.steps))
	for j := range v.steps {
		s := &v.steps[j]
		if j == 0 {
			srcs[j] = singleSrc(t.delta, s.probeCol >= 0)
			continue
		}
		rel := pdb.Relation(s.pred)
		if rel == nil {
			srcs[j].partCol = -1
			continue // missing predicate: empty relation
		}
		srcs[j] = shardSrcForRel(rel, s.probeCol)
	}
	headRel := pdb.Relation(t.rule.headPred)
	comp := compiledComponent{steps: v.steps}
	frame := make([]string, v.numSlots)
	var buf []derivedTuple
	var bufSeen map[string]bool
	var evalErr error
	joinStepsShard(&comp, srcs, 0, len(v.steps), frame, g, func(frame []string) bool {
		if v.unsafeVar != "" {
			evalErr = fmt.Errorf("datalog: unbound head variable %s", v.unsafeVar)
			return false
		}
		tuple := buildHeadTuple(v.head, frame)
		k := tuple.Key()
		if (headRel != nil && headRel.ContainsKeyed(tuple, k)) || bufSeen[k] {
			return true
		}
		if bufSeen == nil {
			bufSeen = make(map[string]bool)
		}
		bufSeen[k] = true
		buf = append(buf, derivedTuple{t: tuple, key: k})
		if g.emitRow() {
			return false
		}
		return true
	})
	return buf, evalErr
}

// ApplyInsertsSharded is ApplyInserts over a partitioned database: it
// validates the updates, inserts the facts (routing each to its owner
// shard, creating missing relations partitioned by column 0), and
// propagates the new ones through MaintainDeltaSharded.
func (cp *CompiledProgram) ApplyInsertsSharded(pdb *storage.PartitionedDatabase, updates map[string][]storage.Tuple, workers int) (fresh, derived map[string][]storage.Tuple, stats FixpointStats, err error) {
	return cp.applyInsertsSharded(pdb, updates, workers, nil, Limits{})
}

// applyInsertsSharded is the shared implementation behind
// ApplyInsertsSharded and ApplyInsertsShardedCtx. Validation errors leave
// pdb unchanged; a guard or budget failure leaves it partially updated
// (callers wanting atomicity snapshot and roll back).
func (cp *CompiledProgram) applyInsertsSharded(pdb *storage.PartitionedDatabase, updates map[string][]storage.Tuple, workers int, gs *guardState, lim Limits) (fresh, derived map[string][]storage.Tuple, stats FixpointStats, err error) {
	if !cp.ivm {
		return nil, nil, stats, ErrNotMaintenance
	}
	for pred, tuples := range updates {
		if _, idb := cp.idbArity[pred]; idb {
			return nil, nil, stats, fmt.Errorf("datalog: cannot insert into derived relation %s", pred)
		}
		want := -1
		if rel := pdb.Relation(pred); rel != nil {
			want = rel.Arity()
		}
		for _, t := range tuples {
			if want < 0 {
				want = len(t)
			}
			if len(t) != want {
				return nil, nil, stats, &storage.ArityError{Pred: pred, Want: want, Got: len(t)}
			}
		}
	}
	fresh = make(map[string][]storage.Tuple)
	for pred, tuples := range updates {
		if len(tuples) == 0 {
			continue
		}
		rel, err := pdb.Ensure(pred, len(tuples[0]), 0)
		if err != nil {
			return nil, nil, stats, err
		}
		for _, t := range tuples {
			if rel.Insert(t) {
				fresh[pred] = append(fresh[pred], t)
			}
		}
	}
	derived, stats, err = cp.maintainDeltaSharded(pdb, fresh, workers, gs, lim)
	if err != nil {
		return nil, nil, stats, err
	}
	return fresh, derived, stats, nil
}
