package datalog

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/storage"
)

// chainEdgeDB builds a linear chain n0 -> n1 -> ... -> n{n}.
func chainEdgeDB(n int) *storage.Database {
	db := storage.NewDatabase()
	for i := 0; i < n; i++ {
		db.Insert("e", storage.Tuple{fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)})
	}
	return db
}

// crossDB builds two relations whose join enumerates n*n candidate rows —
// enough work for a mid-evaluation cancel to land inside the loop.
func crossDB(n int) *storage.Database {
	db := storage.NewDatabase()
	for i := 0; i < n; i++ {
		v := fmt.Sprintf("x%d", i)
		db.Insert("r", storage.Tuple{v})
		db.Insert("s", storage.Tuple{v})
	}
	return db
}

func tcClosureProgram(t *testing.T, db *storage.Database) *CompiledProgram {
	t.Helper()
	p := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	return mustCompileProgram(t, p, db)
}

func TestEvalCtxParity(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	db.BuildIndexes()
	plan := Compile(mustQ("q(X,Z) :- e(X,Y), e(Y,Z)"), cost.NewCatalog(db))
	want := plan.Eval(db)
	got, err := plan.EvalCtx(context.Background(), db, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("EvalCtx = %v want %v", got, want)
	}
	pdb := storage.Partition(db, 4, nil)
	pdb.BuildIndexes()
	got, err = plan.EvalShardedCtx(context.Background(), pdb, nil, 2, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("EvalShardedCtx = %v want %v", got, want)
	}
}

func TestEvalCtxPreCanceled(t *testing.T) {
	db := edgeDB([2]string{"a", "b"})
	db.BuildIndexes()
	plan := Compile(mustQ("q(X,Y) :- e(X,Y)"), cost.NewCatalog(db))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.EvalCtx(ctx, db, Limits{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestEvalCtxCancelMidEval(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 150
	}
	db := crossDB(n)
	db.BuildIndexes()
	// Cross product: n^2 candidate rows, no index help.
	plan := Compile(mustQ("q(X,Y) :- r(X), s(Y)"), cost.NewCatalog(db))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var rows []storage.Tuple
	var err error
	go func() {
		defer close(done)
		rows, err = plan.EvalParallelCtx(ctx, db, nil, 2, Limits{})
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("evaluation did not observe cancellation")
	}
	// Either it finished before the cancel landed (fast machine) or it must
	// report ErrCanceled; a nil error with nil rows would be a lost result.
	if err != nil && !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if err == nil && len(rows) != n*n {
		t.Fatalf("completed eval returned %d rows, want %d", len(rows), n*n)
	}
}

func TestEvalCtxRowBudget(t *testing.T) {
	db := crossDB(100)
	db.BuildIndexes()
	plan := Compile(mustQ("q(X,Y) :- r(X), s(Y)"), cost.NewCatalog(db))
	if _, err := plan.EvalParallelCtx(context.Background(), db, nil, 2, Limits{MaxRows: 500}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// Under the budget: full answer, no error.
	rows, err := plan.EvalParallelCtx(context.Background(), db, nil, 2, Limits{MaxRows: 100 * 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100*100 {
		t.Fatalf("rows = %d", len(rows))
	}
	pdb := storage.Partition(db, 4, nil)
	pdb.BuildIndexes()
	if _, err := plan.EvalShardedCtx(context.Background(), pdb, nil, 2, Limits{MaxRows: 500}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("sharded err = %v, want ErrBudgetExceeded", err)
	}
}

func TestFixpointCtxRoundAndDerivationBudgets(t *testing.T) {
	db := chainEdgeDB(60)
	db.BuildIndexes()
	cp := tcClosureProgram(t, db)

	_, stats, err := cp.EvalRelationCtx(context.Background(), db, "tc", 1, Limits{MaxRounds: 5})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("MaxRounds err = %v, want ErrBudgetExceeded", err)
	}
	if stats.Iterations != 5 {
		t.Fatalf("partial stats Iterations = %d, want 5", stats.Iterations)
	}
	if stats.Derived == 0 {
		t.Fatal("partial stats should report derived tuples")
	}

	_, stats, err = cp.EvalRelationCtx(context.Background(), db, "tc", 1, Limits{MaxDerived: 100})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("MaxDerived err = %v, want ErrBudgetExceeded", err)
	}
	if stats.Derived <= 100 {
		t.Fatalf("budget should trip only past the cap; Derived = %d", stats.Derived)
	}

	// Generous limits: identical to the unbounded run.
	want, _, err := cp.EvalRelation(db, "tc", 1)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := cp.EvalRelationCtx(context.Background(), db, "tc", 1, Limits{MaxRounds: 1000, MaxDerived: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(got, want) {
		t.Fatal("budgeted run diverged from unbounded run")
	}
}

func TestFixpointCtxCancelMidRun(t *testing.T) {
	n := 900
	if testing.Short() {
		n = 300
	}
	db := chainEdgeDB(n)
	db.BuildIndexes()
	cp := tcClosureProgram(t, db)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, stats, err := cp.EvalRelationCtx(ctx, db, "tc", 2, Limits{})
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("machine finished the fixpoint before the deadline")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if stats.Iterations == 0 && stats.Derived == 0 {
		t.Fatal("canceled run should carry partial stats")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestFixpointShardedCtxCancel(t *testing.T) {
	db := chainEdgeDB(400)
	pdb := storage.Partition(db, 4, nil)
	pdb.BuildIndexes()
	cp := tcClosureProgram(t, db)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := cp.EvalRelationShardedCtx(ctx, pdb, "tc", 2, Limits{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// Budget path on the sharded fixpoint.
	_, stats, err := cp.EvalRelationShardedCtx(context.Background(), pdb, "tc", 2, Limits{MaxRounds: 3})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if stats.Iterations != 3 {
		t.Fatalf("Iterations = %d, want 3", stats.Iterations)
	}
}

func TestMaintainCtxBudgetsAndCancel(t *testing.T) {
	db := chainEdgeDB(80)
	p := NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
	cp, err := CompileProgramIVM(p, cost.NewRowCatalog(db))
	if err != nil {
		t.Fatal(err)
	}
	mat, err := cp.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	mat.BuildIndexes()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := cp.ApplyInsertsCtx(ctx, mat, map[string][]storage.Tuple{"e": {{"n80", "n81"}}}, 1, Limits{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}

	// A new edge closing the chain into place derives ~n tuples per round;
	// a tiny round budget trips mid-propagation.
	_, _, stats, err := cp.ApplyInsertsCtx(context.Background(), mat,
		map[string][]storage.Tuple{"e": {{"n81", "n0"}}}, 1, Limits{MaxRounds: 2})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if stats.Iterations != 2 {
		t.Fatalf("Iterations = %d, want 2", stats.Iterations)
	}
}

// TestEvalCtxExistingBehaviorUnchanged pins the legacy entry points to the
// guard-free path: a plan evaluated through Eval/EvalParallelWith must not
// allocate guard state (observable as identical results and no errors —
// the nil-guard fast path is exercised by every other test in the package).
func TestEvalCtxZeroLimitsIsUnguarded(t *testing.T) {
	if gs := newGuardState(context.Background(), 0); gs != nil {
		t.Fatal("background context + zero limits should produce a nil guard")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if gs := newGuardState(ctx, 0); gs == nil {
		t.Fatal("cancelable context should produce a live guard")
	}
	if gs := newGuardState(context.Background(), 10); gs == nil {
		t.Fatal("row budget should produce a live guard")
	}
}
