package datalog

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/storage"
)

func TestProjectBodyDropsDontCares(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", storage.Tuple{"a", "x1"})
	db.Insert("r", storage.Tuple{"a", "x2"})
	db.Insert("r", storage.Tuple{"b", "x3"})
	q := mustQ("q(X) :- r(X,F)")
	atoms, src := projectBody(db, q.Body, neededVars(q))
	if atoms[0].Pred == "r" {
		t.Fatal("atom not projected")
	}
	rel := src.Relation(atoms[0].Pred)
	if rel == nil || rel.Arity() != 1 || rel.Len() != 2 {
		t.Fatalf("projected relation wrong: %+v", rel)
	}
}

func TestProjectBodyKeepsJoinVars(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", storage.Tuple{"a", "j"})
	db.Insert("s", storage.Tuple{"j", "z"})
	q := mustQ("q(X) :- r(X,J), s(J,F)")
	atoms, _ := projectBody(db, q.Body, neededVars(q))
	// r keeps both columns (X head, J join); s drops F only.
	if len(atoms[0].Args) != 2 {
		t.Fatalf("r projected wrongly: %v", atoms[0])
	}
	if len(atoms[1].Args) != 1 {
		t.Fatalf("s should keep only J: %v", atoms[1])
	}
}

func TestProjectBodyKeepsComparisonVars(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", storage.Tuple{"a", "5"})
	q := mustQ("q(X) :- r(X,Y), Y > 3")
	atoms, _ := projectBody(db, q.Body, neededVars(q))
	if len(atoms[0].Args) != 2 {
		t.Fatalf("comparison variable dropped: %v", atoms[0])
	}
}

func TestProjectBodyRepeatedVarInAtom(t *testing.T) {
	db := storage.NewDatabase()
	db.Insert("r", storage.Tuple{"a", "a"})
	db.Insert("r", storage.Tuple{"a", "b"})
	// F occurs twice within one atom: both positions must survive so the
	// equality is enforced.
	got := EvalQuery(db, mustQ("q(c) :- r(F,F)"))
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestProjectBodyMissingRelation(t *testing.T) {
	db := storage.NewDatabase()
	got := EvalQuery(db, mustQ("q(X) :- r(X,F)"))
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestProjectionCorrectnessAgainstUnprojected(t *testing.T) {
	// The projected evaluation must return exactly the same answers as a
	// query whose don't-care positions are head-exposed (forcing the
	// unprojected path), modulo the extra column.
	db := storage.NewDatabase()
	for i := 0; i < 50; i++ {
		db.Insert("r", storage.Tuple{fmt.Sprint(i % 7), fmt.Sprint(i)})
	}
	projected := EvalQuery(db, mustQ("q(X) :- r(X,F)"))
	full := EvalQuery(db, mustQ("q(X,F) :- r(X,F)"))
	seen := map[string]bool{}
	for _, t2 := range full {
		seen[t2[0]] = true
	}
	if len(projected) != len(seen) {
		t.Fatalf("projected %d answers, expected %d", len(projected), len(seen))
	}
}

// The motivating regression: connected chains with don't-care existential
// columns must evaluate in near-linear time.
func TestProjectionPerformanceChain(t *testing.T) {
	db := storage.NewDatabase()
	for i := 0; i < 300; i++ {
		a, b, c, d := fmt.Sprint(i%6), fmt.Sprint(i%7), fmt.Sprint(i%5), fmt.Sprint(i)
		db.Insert("v", storage.Tuple{a, b, c, d})
	}
	// Join on X1, X2; F* are don't-care.
	q := mustQ("q(X0,X3) :- v(X0,X1,F0,F1), v(F2,X1,X2,F3), v(F4,F5,X2,X3)")
	start := time.Now()
	got := EvalQuery(db, q)
	elapsed := time.Since(start)
	if len(got) == 0 {
		t.Fatal("no answers")
	}
	if elapsed > time.Second {
		t.Fatalf("projection not effective: %v", elapsed)
	}
}
