package datalog

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/storage"
)

// Compiled slot-based physical plans. Compile lowers a conjunctive query to
// a CompiledPlan once; executing the plan is then tuple-at-a-time join
// evaluation with none of the interpretive overhead:
//
//   - variables become integer slots in a flat []string register frame — no
//     Bindings map, no allocation, no delete-trail on backtrack;
//   - the join order is fixed at compile time from catalog statistics
//     (internal/cost) instead of being re-derived greedily per call;
//   - every atom carries its access path: an index probe column fed from a
//     slot or a constant, or a full scan;
//   - each comparison is attached to the earliest join depth at which both
//     sides are bound, pruning partial bindings instead of filtering leaves;
//   - don't-care columns (singleton variables reaching neither head nor
//     comparisons) are skipped entirely, with per-step dedup of the bound
//     columns standing in for the interpreter's materialised projections;
//   - a step that binds no new slots is existential: its first matching
//     tuple decides the whole candidate loop.
//
// The executor never mutates the relations it reads: candidate sets come
// from Relation.LookupPositions (a shared []int, no []Tuple materialised)
// with a scan fallback when indexes are stale. EvalParallel may therefore
// shard the outermost candidate loop across goroutines over a frozen
// database, merging per-worker results at the end.

// colAction says how one column of a step's candidate tuple is used.
type colAction uint8

const (
	colBind       colAction = iota // copy tuple[col] into frame[slot]
	colCheckSlot                   // tuple[col] must equal frame[slot]
	colCheckConst                  // tuple[col] must equal constVal
)

// colOp is one column action of a step. Don't-care columns have no op.
type colOp struct {
	action   colAction
	col      int
	slot     int
	constVal string
}

// compiledComp is a comparison whose operands resolve to slots or constants.
type compiledComp struct {
	op                    cq.CompOp
	leftSlot, rightSlot   int // -1 → constant operand
	leftConst, rightConst cq.Term
}

// compiledStep is one join step: an access path plus per-column actions.
type compiledStep struct {
	pred string
	// Access path: probe the index on probeCol with the value in
	// frame[probeSlot] (or probeConst when probeSlot < 0); probeCol < 0
	// means full scan. The probed column keeps its check op so the scan
	// fallback stays correct.
	probeCol   int
	probeSlot  int
	probeConst string
	ops        []colOp
	// opsIndexed is ops without the probed column's check: candidates
	// from the index already satisfy it. The scan fallback uses ops.
	opsIndexed []colOp
	// comps are the comparisons whose operands are all bound once this
	// step's columns are, checked before descending.
	comps []compiledComp
	// existential: the step binds no new slots, so its first matching
	// tuple decides the whole candidate loop.
	existential bool
	// dedup: the step has don't-care columns and binds slots, so distinct
	// candidate tuples can carry identical bindings; repeats are skipped
	// (the compiled form of projection pushdown).
	dedup bool
}

// compiledComponent is one connected component of the body: its join steps
// and the slots of the head variables it provides.
type compiledComponent struct {
	steps     []compiledStep
	headSlots []int
}

// headOp builds one head-tuple column from the frame or a constant.
type headOp struct {
	slot     int // -1 → constant
	constVal string
}

// CompiledPlan is an immutable slot-based physical plan for one conjunctive
// query. A plan is compiled once (per engine cache entry) and may be
// executed concurrently by any number of goroutines: execution state lives
// entirely in per-call frames.
type CompiledPlan struct {
	numSlots   int
	head       []headOp
	components []compiledComponent
	// paramSlots are the frame slots of the plan's parameter variables, in
	// declaration order; executions bind them before the first join step.
	paramSlots []int
	// empty marks plans proven unsatisfiable at compile time (a ground
	// comparison failed, or a comparison variable occurs in no subgoal).
	empty bool
}

// Compile lowers q to a physical plan using catalog statistics for join
// ordering and probe selection. A nil catalog is allowed: ordering then
// falls back to bound-columns-first with stable tie-breaks. The plan is
// independent of any database; relations are resolved by name at
// execution time, and predicates missing from the database evaluate as
// empty relations (matching EvalQuery).
func Compile(q *cq.Query, cat *cost.Catalog) *CompiledPlan {
	return CompileParams(q, nil, cat)
}

// CompileParams is Compile for a parameterized plan: the named variables
// become parameter slots, treated as bound before the first join step —
// join ordering, index-probe selection and comparison placement all see
// them as available values, exactly like constants whose value arrives at
// execution time. Execute with EvalWith/EvalParallelWith, passing one
// argument per parameter in the order given here. Parameters may occur
// anywhere a variable can (body atoms, comparisons, the head); a prepared
// point lookup compiles to the same index-probe plan as its constant-bound
// original.
func CompileParams(q *cq.Query, params []string, cat *cost.Catalog) *CompiledPlan {
	if cat == nil {
		cat = &cost.Catalog{}
	}
	p := &CompiledPlan{}

	// Slot assignment: head and comparison variables always get slots, as
	// does any variable with two or more occurrences (join variables, and
	// repeated variables within an atom, which compile to bind-then-check).
	// Remaining singletons are don't-care positions and never enter the
	// frame. Parameters always get slots — the execution binding must have
	// somewhere to land — and are assigned first, in declaration order.
	needed := neededVars(q)
	occ := make(map[string]int)
	for _, a := range q.Body {
		for _, t := range a.Args {
			if t.IsVar() {
				occ[t.Lex]++
			}
		}
	}
	slots := make(map[string]int)
	slotOf := func(name string) int {
		s, ok := slots[name]
		if !ok {
			s = p.numSlots
			slots[name] = s
			p.numSlots++
		}
		return s
	}
	isParam := make(map[string]bool, len(params))
	for _, v := range params {
		isParam[v] = true
		p.paramSlots = append(p.paramSlots, slotOf(v))
	}
	keep := func(t cq.Term) bool { return needed[t.Lex] || occ[t.Lex] > 1 || isParam[t.Lex] }

	// Ground comparisons are decided now; the rest attach to join depths.
	for _, c := range q.Comparisons {
		if c.Left.IsConst() && c.Right.IsConst() && !c.Op.EvalConst(c.Left, c.Right) {
			p.empty = true
		}
	}

	bound := make(map[string]bool, len(params))
	for _, v := range params {
		bound[v] = true
	}
	for _, comp := range splitComponents(q) {
		cc := compiledComponent{}
		for _, v := range comp.headVars {
			cc.headSlots = append(cc.headSlots, slotOf(v))
		}
		var pending []cq.Comparison
		for _, c := range comp.comps {
			if c.Left.IsConst() && c.Right.IsConst() {
				continue // handled above
			}
			pending = append(pending, c)
		}

		remaining := make([]int, len(comp.atoms))
		for i := range remaining {
			remaining[i] = i
		}
		for len(remaining) > 0 {
			next := chooseNext(comp.atoms, remaining, bound, cat)
			a := comp.atoms[next]
			step := lowerAtom(a, bound, slotOf, keep, cat)
			pending = attachComparisons(&step, pending, bound, slots)
			cc.steps = append(cc.steps, step)
			remaining = removeIdx(remaining, next)
		}
		if len(pending) > 0 {
			// A comparison variable occurs in no relational subgoal of its
			// component (an unsafe query): no binding can satisfy it.
			p.empty = true
		}
		p.components = append(p.components, cc)
	}

	for _, t := range q.Head.Args {
		if t.IsVar() {
			p.head = append(p.head, headOp{slot: slotOf(t.Lex)})
		} else {
			p.head = append(p.head, headOp{slot: -1, constVal: t.Lex})
		}
	}
	return p
}

// chooseNext picks the next atom to join: most bound argument positions
// first (each bound column is an index restriction), then the smallest
// estimated candidate count under the catalog, then body order. With a
// rows-only catalog the estimate is the relation cardinality, reproducing
// the interpreter's smaller-relation tie-break; with full statistics bound
// columns are discounted by their distinct counts.
func chooseNext(atoms []cq.Atom, remaining []int, bound map[string]bool, cat *cost.Catalog) int {
	best, bestScore, bestEst := -1, -1, 0.0
	for _, idx := range remaining {
		a := atoms[idx]
		score := 0
		est := cat.Rows(a.Pred)
		for col, t := range a.Args {
			if t.IsConst() || t.IsVar() && bound[t.Lex] {
				score++
				est /= cat.Distinct(a.Pred, col)
			}
		}
		if best == -1 || score > bestScore || score == bestScore && est < bestEst {
			best, bestScore, bestEst = idx, score, est
		}
	}
	return best
}

// lowerAtom compiles one atom into a step, updating bound as it assigns
// slots. Among the bound columns the probe targets the one with the most
// distinct values (the most selective index).
func lowerAtom(a cq.Atom, bound map[string]bool, slotOf func(string) int, keep func(cq.Term) bool, cat *cost.Catalog) compiledStep {
	step := compiledStep{pred: a.Pred, probeCol: -1, probeSlot: -1}
	bestDistinct := 0.0
	for col, t := range a.Args {
		if t.IsConst() || t.IsVar() && bound[t.Lex] {
			if d := cat.Distinct(a.Pred, col); step.probeCol < 0 || d > bestDistinct {
				step.probeCol, bestDistinct = col, d
				if t.IsConst() {
					step.probeSlot, step.probeConst = -1, t.Lex
				} else {
					step.probeSlot, step.probeConst = slotOf(t.Lex), ""
				}
			}
		}
	}
	binds, ignored := 0, false
	for col, t := range a.Args {
		switch {
		case t.IsConst():
			step.ops = append(step.ops, colOp{action: colCheckConst, col: col, constVal: t.Lex})
		case bound[t.Lex]:
			step.ops = append(step.ops, colOp{action: colCheckSlot, col: col, slot: slotOf(t.Lex)})
		case keep(t):
			step.ops = append(step.ops, colOp{action: colBind, col: col, slot: slotOf(t.Lex)})
			bound[t.Lex] = true
			binds++
		default:
			ignored = true
		}
	}
	step.existential = binds == 0
	step.dedup = ignored && binds > 0
	step.opsIndexed = step.ops
	if step.probeCol >= 0 {
		// The probed column is always a check (it was const or bound);
		// drop it from the indexed op list.
		step.opsIndexed = make([]colOp, 0, len(step.ops)-1)
		for _, op := range step.ops {
			if op.col != step.probeCol {
				step.opsIndexed = append(step.opsIndexed, op)
			}
		}
	}
	return step
}

// attachComparisons moves every comparison whose operands are now bound
// onto the step, returning the ones still waiting for bindings.
func attachComparisons(step *compiledStep, pending []cq.Comparison, bound map[string]bool, slots map[string]int) []cq.Comparison {
	var still []cq.Comparison
	for _, c := range pending {
		ready := true
		for _, t := range []cq.Term{c.Left, c.Right} {
			if t.IsVar() && !bound[t.Lex] {
				ready = false
			}
		}
		if !ready {
			still = append(still, c)
			continue
		}
		cc := compiledComp{op: c.Op, leftSlot: -1, rightSlot: -1}
		if c.Left.IsVar() {
			cc.leftSlot = slots[c.Left.Lex]
		} else {
			cc.leftConst = c.Left
		}
		if c.Right.IsVar() {
			cc.rightSlot = slots[c.Right.Lex]
		} else {
			cc.rightConst = c.Right
		}
		step.comps = append(step.comps, cc)
	}
	return still
}

func removeIdx(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// applyStep matches one candidate tuple against the step under the given
// op list (ops for scans, opsIndexed for index candidates), binding and
// checking columns in order and then checking the step's comparisons. It
// reports whether the tuple matches; on mismatch any slots already written
// are garbage, which is safe because they are only read on paths where the
// whole step matched.
func applyStep(step *compiledStep, ops []colOp, t storage.Tuple, frame []string) bool {
	for _, op := range ops {
		v := t[op.col]
		switch op.action {
		case colBind:
			frame[op.slot] = v
		case colCheckSlot:
			if frame[op.slot] != v {
				return false
			}
		default: // colCheckConst
			if op.constVal != v {
				return false
			}
		}
	}
	for _, cc := range step.comps {
		l, r := cc.leftConst, cc.rightConst
		if cc.leftSlot >= 0 {
			l = cq.Const(frame[cc.leftSlot])
		}
		if cc.rightSlot >= 0 {
			r = cq.Const(frame[cc.rightSlot])
		}
		if !cc.op.EvalConst(l, r) {
			return false
		}
	}
	return true
}

// appendBindKey appends the dedup key of a candidate tuple at a step — its
// bound-column values — to buf. Checked columns are equal across all
// candidates that reach this point, so binds alone determine the subtree.
func appendBindKey(buf []byte, step *compiledStep, t storage.Tuple) []byte {
	for _, op := range step.ops {
		if op.action == colBind {
			buf = append(buf, t[op.col]...)
			buf = append(buf, 0x1f)
		}
	}
	return buf
}

// stepSrc is one step's per-call execution source: the relation's tuple
// slice and, when the probe index is built at the current version, the
// probe column's hash index resolved once — one map hop per probe instead
// of two, and no staleness re-check in the loop. A missing predicate
// leaves tuples empty. The executor never mutates the relation: stale
// indexes simply leave idx nil and the step scans.
type stepSrc struct {
	tuples []storage.Tuple
	idx    map[string][]int
}

// joinSteps enumerates the component's matches from the given depth,
// invoking yield with the shared frame for each complete one. It reports
// false iff yield asked to stop. g may be nil (no cancellation checks).
func joinSteps(c *compiledComponent, srcs []stepSrc, depth int, frame []string, g *evalGuard, yield func([]string) bool) bool {
	if depth == len(c.steps) {
		return yield(frame)
	}
	step := &c.steps[depth]
	src := &srcs[depth]
	if src.idx != nil {
		val := step.probeConst
		if step.probeSlot >= 0 {
			val = frame[step.probeSlot]
		}
		return stepLoop(c, srcs, depth, frame, g, yield, src.tuples, src.idx[val], true, 0, 1)
	}
	return stepLoop(c, srcs, depth, frame, g, yield, src.tuples, nil, false, 0, 1)
}

// stepLoop runs one step's candidate loop over either an index position
// list or a full scan, visiting candidates offset, offset+stride, ... —
// inner depths always run the full loop (0, 1); parallel shards stride
// the root. It reports false iff yield asked to stop or the guard tripped.
func stepLoop(c *compiledComponent, srcs []stepSrc, depth int, frame []string, g *evalGuard, yield func([]string) bool, tuples []storage.Tuple, positions []int, usePositions bool, offset, stride int) bool {
	step := &c.steps[depth]
	var seen map[string]bool
	var keyBuf []byte
	ops := step.ops
	n := len(tuples)
	if usePositions {
		n = len(positions)
		ops = step.opsIndexed
	}
	for i := offset; i < n; i += stride {
		if g != nil && g.tick() {
			return false
		}
		t := tuples[i]
		if usePositions {
			t = tuples[positions[i]]
		}
		if !applyStep(step, ops, t, frame) {
			continue
		}
		if step.dedup {
			keyBuf = appendBindKey(keyBuf[:0], step, t)
			if seen == nil {
				seen = make(map[string]bool)
			}
			if seen[string(keyBuf)] {
				continue
			}
			seen[string(keyBuf)] = true
		}
		if !joinSteps(c, srcs, depth+1, frame, g, yield) {
			return false
		}
		if step.existential {
			return true // binds nothing: the first match decides
		}
	}
	return true
}

// Eval executes the plan over db sequentially and returns the distinct
// answer tuples in sorted order. It never mutates db; callers wanting
// indexed access paths should freeze the relations first (BuildIndexes),
// as EvalQuery and the serving engine do. Parameterized plans
// (CompileParams) must use EvalWith instead.
func (p *CompiledPlan) Eval(db *storage.Database) []storage.Tuple {
	return p.EvalParallel(db, 1)
}

// EvalWith executes a parameterized plan sequentially under the given
// argument binding: args[i] is the value of the i-th parameter passed to
// CompileParams. It panics unless len(args) matches the parameter count —
// an arity mismatch is a programming error, like calling a function with
// the wrong number of arguments.
func (p *CompiledPlan) EvalWith(db *storage.Database, args []string) []storage.Tuple {
	return p.EvalParallelWith(db, args, 1)
}

// EvalParallel executes the plan with each component's outermost candidate
// loop sharded round-robin across up to workers goroutines, each with its
// own frame and dedup set, merged (and sorted) at the end. workers <= 1
// runs sequentially. The database must not be mutated during the call;
// it does not need to be frozen — stale indexes degrade to scans.
func (p *CompiledPlan) EvalParallel(db *storage.Database, workers int) []storage.Tuple {
	return p.EvalParallelWith(db, nil, workers)
}

// EvalParallelWith is EvalParallel under an argument binding (EvalWith).
func (p *CompiledPlan) EvalParallelWith(db *storage.Database, args []string, workers int) []storage.Tuple {
	return storage.SortTuples(p.EvalParallelUnsortedWith(db, args, workers))
}

// EvalParallelUnsorted is EvalParallel without the final sort: the
// distinct answers in discovery order. Callers that merge several plans'
// results (the engine's union evaluation) dedup first and sort once.
func (p *CompiledPlan) EvalParallelUnsorted(db *storage.Database, workers int) []storage.Tuple {
	return p.EvalParallelUnsortedWith(db, nil, workers)
}

// EvalParallelUnsortedWith is EvalParallelUnsorted under an argument
// binding (EvalWith).
func (p *CompiledPlan) EvalParallelUnsortedWith(db *storage.Database, args []string, workers int) []storage.Tuple {
	return p.evalUnsorted(db, args, workers, nil)
}

// evalUnsorted is the shared executor behind the legacy (gs == nil) and
// context-aware entry points. On a tripped guard the partial rows are
// meaningless; callers must consult gs.failure() first.
func (p *CompiledPlan) evalUnsorted(db *storage.Database, args []string, workers int, gs *guardState) []storage.Tuple {
	base := p.baseFrame(args)
	// Single-component fast path (the common case): emit head tuples
	// straight from the frame, one allocation per distinct answer.
	if !p.empty && len(p.components) == 1 && len(p.components[0].headSlots) > 0 {
		c := &p.components[0]
		rows := p.enumerateComponent(c, p.resolve(db, c), workers, base,
			func(frame []string) []string { return p.headTuple(frame) }, gs)
		out := make([]storage.Tuple, len(rows))
		for i, r := range rows {
			out[i] = r
		}
		return out
	}
	parts, ok := p.componentRows(db, workers, base, gs)
	if !ok || gs.failure() != nil {
		return nil
	}
	// Cross-component results multiply; bound the product before the
	// combine materialises it.
	if gs != nil && gs.maxRows > 0 {
		prod := 1
		for i := range p.components {
			if len(p.components[i].headSlots) > 0 {
				prod *= len(parts[i])
				if prod > gs.maxRows {
					gs.trip(fmt.Errorf("datalog: row budget of %d exceeded: %w", gs.maxRows, ErrBudgetExceeded))
					return nil
				}
			}
		}
	}
	return p.combineComponents(parts, base, gs)
}

// combineComponents combines the per-component distinct projections into
// head tuples. Components bind disjoint head variables, so distinct row
// combinations yield distinct head tuples — no cross-component dedup is
// needed. The product can dwarf the component scans (it multiplies where
// they add), so the combine loop carries its own guard: cancellation lands
// within one guardInterval of output tuples, not after the full product.
func (p *CompiledPlan) combineComponents(parts [][][]string, base []string, gs *guardState) []storage.Tuple {
	var out []storage.Tuple
	g := gs.child()
	frame := make([]string, p.numSlots)
	copy(frame, base) // head positions may read parameter slots
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(p.components) {
			if g != nil && g.tick() {
				return false
			}
			out = append(out, p.headTuple(frame))
			return true
		}
		c := &p.components[i]
		if len(c.headSlots) == 0 {
			return rec(i + 1)
		}
		for _, row := range parts[i] {
			for j, s := range c.headSlots {
				frame[s] = row[j]
			}
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return out
}

// baseFrame builds the initial register frame of one execution: zero values
// everywhere except the parameter slots, which hold args. A nil frame means
// no slots at all.
func (p *CompiledPlan) baseFrame(args []string) []string {
	if len(args) != len(p.paramSlots) {
		panic(fmt.Sprintf("datalog: plan takes %d parameter(s), got %d", len(p.paramSlots), len(args)))
	}
	if p.numSlots == 0 {
		return nil
	}
	base := make([]string, p.numSlots)
	for i, s := range p.paramSlots {
		base[s] = args[i]
	}
	return base
}

// Count returns the number of distinct answers without materialising them:
// the product of the components' distinct projection counts (head tuples
// are injective in the head-variable assignment). Parameterized plans must
// use CountWith.
func (p *CompiledPlan) Count(db *storage.Database) int {
	return p.CountWith(db, nil)
}

// CountWith is Count under an argument binding (EvalWith).
func (p *CompiledPlan) CountWith(db *storage.Database, args []string) int {
	parts, ok := p.componentRows(db, 1, p.baseFrame(args), nil)
	if !ok {
		return 0
	}
	n := 1
	for i := range p.components {
		if len(p.components[i].headSlots) > 0 {
			n *= len(parts[i])
		}
	}
	return n
}

// resolve binds the component's steps to db: tuple slices plus, for steps
// whose probe index is built, the resolved column index.
func (p *CompiledPlan) resolve(db *storage.Database, c *compiledComponent) []stepSrc {
	srcs := make([]stepSrc, len(c.steps))
	for j := range c.steps {
		s := &c.steps[j]
		rel := db.Relation(s.pred)
		if rel == nil {
			continue // missing predicate: empty relation
		}
		srcs[j].tuples = rel.Tuples()
		if s.probeCol >= 0 {
			if idx, ok := rel.ColumnIndex(s.probeCol); ok {
				srcs[j].idx = idx
			}
		}
	}
	return srcs
}

// projectRows returns the projection of a frame onto the component's head
// slots, for combining per-component results.
func (c *compiledComponent) projectRow(frame []string) []string {
	row := make([]string, len(c.headSlots))
	for j, s := range c.headSlots {
		row[j] = frame[s]
	}
	return row
}

// componentRows evaluates every component, returning its distinct
// projections onto its head slots (nil rows for existence-only
// components). ok=false means some component has no match — the query has
// no answers at all.
func (p *CompiledPlan) componentRows(db *storage.Database, workers int, base []string, gs *guardState) ([][][]string, bool) {
	if p.empty {
		return nil, false
	}
	parts := make([][][]string, len(p.components))
	for i := range p.components {
		c := &p.components[i]
		srcs := p.resolve(db, c)
		if len(c.headSlots) == 0 {
			// Pure existence check: one witness suffices.
			found := false
			frame := make([]string, p.numSlots)
			copy(frame, base)
			joinSteps(c, srcs, 0, frame, gs.child(), func([]string) bool {
				found = true
				return false
			})
			if !found {
				return nil, false
			}
			continue
		}
		rows := p.enumerateComponent(c, srcs, workers, base, c.projectRow, gs)
		if len(rows) == 0 {
			return nil, false
		}
		parts[i] = rows
	}
	return parts, true
}

// enumerateComponent collects the component's distinct projections under
// the given projection function, sharding the root candidate loop across
// workers when profitable. base is the initial frame (parameter slots
// filled; see baseFrame).
func (p *CompiledPlan) enumerateComponent(c *compiledComponent, srcs []stepSrc, workers int, base []string, project func([]string) []string, gs *guardState) [][]string {
	root := &c.steps[0]
	tuples := srcs[0].tuples
	// Resolve the root candidate set once. At depth 0 the only bound slots
	// are parameters, so a root probe is fed by a constant or a parameter.
	var positions []int
	usePositions := false
	if srcs[0].idx != nil {
		val := root.probeConst
		if root.probeSlot >= 0 {
			val = base[root.probeSlot]
		}
		positions, usePositions = srcs[0].idx[val], true
	}
	n := len(tuples)
	if usePositions {
		n = len(positions)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || root.existential {
		return p.runShard(c, srcs, tuples, positions, usePositions, 0, 1, base, project, gs.child())
	}

	// Shard the root loop round-robin; each worker dedups its own shard,
	// the merge below dedups across shards.
	shards := make([][][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shards[w] = p.runShard(c, srcs, tuples, positions, usePositions, w, workers, base, project, gs.child())
		}(w)
	}
	wg.Wait()
	var rows [][]string
	seen := make(map[string]bool)
	for _, shard := range shards {
		for _, row := range shard {
			k := storage.Tuple(row).Key()
			if !seen[k] {
				seen[k] = true
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// runShard enumerates root candidates offset, offset+stride, ... through
// the shared stepLoop and returns the distinct projections found below
// them.
func (p *CompiledPlan) runShard(c *compiledComponent, srcs []stepSrc, tuples []storage.Tuple, positions []int, usePositions bool, offset, stride int, base []string, project func([]string) []string, g *evalGuard) [][]string {
	frame := make([]string, p.numSlots)
	copy(frame, base)
	var rows [][]string
	seen := make(map[string]bool)
	var keyBuf []byte
	emit := func(frame []string) bool {
		// Head tuples are injective in the head-slot values, so the frame
		// key decides newness before the projection is materialised. The
		// key is assembled in a reused buffer: the map lookup on
		// string(keyBuf) does not allocate, only inserting a new key does.
		keyBuf = keyBuf[:0]
		for _, s := range c.headSlots {
			keyBuf = append(keyBuf, frame[s]...)
			keyBuf = append(keyBuf, 0x1f)
		}
		if !seen[string(keyBuf)] {
			seen[string(keyBuf)] = true
			rows = append(rows, project(frame))
			if g.emitRow() {
				return false
			}
		}
		return true
	}
	stepLoop(c, srcs, 0, frame, g, emit, tuples, positions, usePositions, offset, stride)
	return rows
}

// headTuple builds the answer tuple for a complete frame.
func (p *CompiledPlan) headTuple(frame []string) storage.Tuple {
	t := make(storage.Tuple, len(p.head))
	for i, h := range p.head {
		if h.slot >= 0 {
			t[i] = frame[h.slot]
		} else {
			t[i] = h.constVal
		}
	}
	return t
}

// NumSlots returns the register-frame width (distinct retained variables).
func (p *CompiledPlan) NumSlots() int { return p.numSlots }

// NumParams returns the number of parameter slots (CompileParams).
func (p *CompiledPlan) NumParams() int { return len(p.paramSlots) }

// Describe renders the physical plan for humans: one line per join step
// with its access path, binding actions and attached comparisons.
func (p *CompiledPlan) Describe() string {
	var sb strings.Builder
	if p.empty {
		return "empty plan (unsatisfiable at compile time)\n"
	}
	if len(p.paramSlots) > 0 {
		fmt.Fprintf(&sb, "params -> slots %v\n", p.paramSlots)
	}
	for i := range p.components {
		c := &p.components[i]
		fmt.Fprintf(&sb, "component %d", i)
		if len(c.headSlots) == 0 {
			sb.WriteString(" (existence check)")
		} else {
			fmt.Fprintf(&sb, " -> slots %v", c.headSlots)
		}
		sb.WriteByte('\n')
		for j := range c.steps {
			describeStep(&sb, "  ", j, &c.steps[j], false)
		}
	}
	return sb.String()
}

// describeStep renders one join step (access path, flags, comparisons) for
// the plan and program Describe methods. deltaRoot marks the first step of
// a delta variant, whose candidates come from the round's delta instead of
// the step's access path.
func describeStep(sb *strings.Builder, indent string, idx int, s *compiledStep, deltaRoot bool) {
	access := "scan"
	switch {
	case deltaRoot:
		access = "delta"
	case s.probeCol >= 0 && s.probeSlot >= 0:
		access = fmt.Sprintf("index(col=%d <- slot %d)", s.probeCol, s.probeSlot)
	case s.probeCol >= 0:
		access = fmt.Sprintf("index(col=%d = %q)", s.probeCol, s.probeConst)
	}
	fmt.Fprintf(sb, "%s%d. %s  %s", indent, idx+1, s.pred, access)
	if s.existential {
		sb.WriteString("  existential")
	}
	if s.dedup {
		sb.WriteString("  dedup")
	}
	if len(s.comps) > 0 {
		fmt.Fprintf(sb, "  comparisons=%d", len(s.comps))
	}
	sb.WriteByte('\n')
}
