package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Differential property tests for the sharded execution paths: partitioned
// evaluation — joins with exchanges, per-shard fixpoints, sharded IVM
// batches, prepared exec — must be tuple-set-identical to the unpartitioned
// path on randomized workloads, for every shard count and partition-column
// policy (correctness may never depend on the physical layout).

// randomPartition re-buckets db under a random physical design: a random
// shard count and either the catalog policy or adversarially random
// partition columns, frozen or not.
func randomPartition(rng *rand.Rand, db *storage.Database, cat *cost.Catalog) *storage.PartitionedDatabase {
	shards := 1 + rng.Intn(6)
	var partCols map[string]int
	if rng.Intn(2) == 0 && cat != nil {
		partCols = cat.PartitionColumns(nil)
	} else {
		partCols = make(map[string]int)
		for _, pred := range db.Predicates() {
			partCols[pred] = rng.Intn(db.Relation(pred).Arity())
		}
	}
	pdb := storage.Partition(db, shards, partCols)
	if rng.Intn(3) > 0 {
		pdb.BuildIndexes() // sometimes left unfrozen: probes fall back to scans
	}
	return pdb
}

func TestShardedPlanDifferential(t *testing.T) {
	trials := 160
	if testing.Short() {
		trials = 40
	}
	rng := rand.New(rand.NewSource(523))
	preds := []string{"p1", "p2", "p3"}
	for trial := 0; trial < trials; trial++ {
		reuse := []float64{0, 0.3, 0.6}[trial%3]
		q := workload.RandomQuery(rng, 2+rng.Intn(4), len(preds), reuse)
		db := workload.RandomDatabase(rng, preds, 2, 10+rng.Intn(25), 6+rng.Intn(6))
		if rng.Intn(2) == 0 {
			a := rng.Intn(len(q.Body))
			q.Body[a].Args[rng.Intn(2)] = cq.Const(fmt.Sprintf("c%d", rng.Intn(8)))
		}
		var bodyVars []cq.Term
		seenVar := map[string]bool{}
		for _, a := range q.Body {
			for _, arg := range a.Args {
				if arg.IsVar() && !seenVar[arg.Lex] {
					seenVar[arg.Lex] = true
					bodyVars = append(bodyVars, arg)
				}
			}
		}
		for i := rng.Intn(2); i > 0 && len(bodyVars) > 0; i-- {
			l := bodyVars[rng.Intn(len(bodyVars))]
			r := cq.Term(cq.Const(fmt.Sprintf("c%d", rng.Intn(8))))
			if rng.Intn(2) == 0 {
				r = bodyVars[rng.Intn(len(bodyVars))]
			}
			q.AddComparison(cq.NewComparison(l, cq.CompOp(rng.Intn(6)), r))
		}
		db.BuildIndexes()
		cat := cost.NewCatalog(db)
		plan := Compile(q, cat)
		want := plan.EvalParallel(db, 1+rng.Intn(3))
		pdb := randomPartition(rng, db, cat)
		got := plan.EvalSharded(pdb, 1+rng.Intn(4))
		if !storage.TuplesEqual(got, want) {
			t.Fatalf("trial %d %s shards=%d: sharded %v want %v\nplan:\n%s",
				trial, q, pdb.NumShards(), got, want, plan.Describe())
		}
	}
}

func TestShardedFixpointDifferential(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 30
	}
	rng := rand.New(rand.NewSource(0x5A4D))
	for trial := 0; trial < trials; trial++ {
		db := randomProgDB(rng)
		prog := randomProgram(rng, trial)
		cp, err := CompileProgram(prog, cost.NewRowCatalog(db))
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, prog)
		}
		want, err := cp.Eval(db)
		if err != nil {
			t.Fatalf("trial %d: eval: %v\n%s", trial, err, prog)
		}
		pdb := randomPartition(rng, db, nil)
		got, err := cp.EvalSharded(pdb, 1+rng.Intn(4))
		if err != nil {
			t.Fatalf("trial %d: sharded eval: %v\n%s", trial, err, prog)
		}
		diffDatabases(t, fmt.Sprintf("trial %d (sharded, %d shards)\n%s", trial, pdb.NumShards(), prog), got, want)

		// The single-relation serving path must agree too.
		for _, pred := range want.Predicates() {
			if trial%5 != 0 {
				break
			}
			rel, _, err := cp.EvalRelationSharded(pdb, pred, 2)
			if err != nil {
				t.Fatalf("trial %d: EvalRelationSharded(%s): %v", trial, pred, err)
			}
			if !storage.TuplesEqual(rel, want.Relation(pred).Tuples()) {
				t.Fatalf("trial %d: EvalRelationSharded(%s) diverges", trial, pred)
			}
		}
	}
}

func TestShardedMaintainDeltaDifferential(t *testing.T) {
	streams := 120
	if testing.Short() {
		streams = 30
	}
	rng := rand.New(rand.NewSource(0xB0B5))
	for stream := 0; stream < streams; stream++ {
		edb := randomProgDB(rng)
		prog := randomProgram(rng, stream)
		cp, err := CompileProgramIVM(prog, cost.NewRowCatalog(edb))
		if err != nil {
			t.Fatalf("stream %d: compile: %v\n%s", stream, err, prog)
		}
		// Materialize once, partition the maintained state, then feed the
		// same batches to the partitioned and unpartitioned maintainers.
		flat, err := cp.Eval(edb)
		if err != nil {
			t.Fatalf("stream %d: materialize: %v\n%s", stream, err, prog)
		}
		pdb := randomPartition(rng, flat, nil)
		batches := 1 + rng.Intn(4)
		for batch := 0; batch < batches; batch++ {
			upd := randomUpdate(rng)
			workers := 1 + rng.Intn(4)
			freshFlat, _, _, err := cp.ApplyInserts(flat, upd, workers)
			if err != nil {
				t.Fatalf("stream %d batch %d: flat maintain: %v\n%s", stream, batch, err, prog)
			}
			fresh, derived, stats, err := cp.ApplyInsertsSharded(pdb, upd, workers)
			if err != nil {
				t.Fatalf("stream %d batch %d: sharded maintain: %v\n%s", stream, batch, err, prog)
			}
			total := 0
			for _, d := range derived {
				total += len(d)
			}
			if total != stats.Derived {
				t.Fatalf("stream %d batch %d: derived map has %d tuples, stats report %d", stream, batch, total, stats.Derived)
			}
			for pred := range freshFlat {
				if len(fresh[pred]) != len(freshFlat[pred]) {
					t.Fatalf("stream %d batch %d: fresh %s: sharded %d flat %d", stream, batch, pred, len(fresh[pred]), len(freshFlat[pred]))
				}
			}
			diffDatabases(t, fmt.Sprintf("stream %d batch %d (sharded vs flat, %d shards)\n%s", stream, batch, pdb.NumShards(), prog), pdb.Flatten(), flat)
		}
	}
}

func TestShardedPreparedDifferential(t *testing.T) {
	trials := 100
	if testing.Short() {
		trials = 25
	}
	rng := rand.New(rand.NewSource(907))
	preds := []string{"p1", "p2", "p3"}
	for trial := 0; trial < trials; trial++ {
		db := workload.RandomDatabase(rng, preds, 2, 60+rng.Intn(120), 12)
		db.BuildIndexes()
		cat := cost.NewCatalog(db)

		n := 2 + rng.Intn(2)
		var body []cq.Atom
		for i := 0; i < n; i++ {
			body = append(body, cq.NewAtom(preds[rng.Intn(len(preds))],
				cq.Var(fmt.Sprintf("X%d", i)), cq.Var(fmt.Sprintf("X%d", i+1))))
		}
		q := cq.NewQuery(cq.NewAtom("q", cq.Var(fmt.Sprintf("X%d", n))), body...)
		params := []string{"X0"}
		plan := CompileParams(q, params, cat)
		pdb := randomPartition(rng, db, cat)
		for rep := 0; rep < 6; rep++ {
			args := []string{fmt.Sprintf("c%d", rng.Intn(14))}
			want := plan.EvalParallelWith(db, args, 2)
			got := plan.EvalShardedWith(pdb, args, 1+rng.Intn(4))
			if !storage.TuplesEqual(got, want) {
				t.Fatalf("trial %d %s args %v shards=%d: got %v want %v",
					trial, q, args, pdb.NumShards(), got, want)
			}
		}
	}
}
