package datalog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/storage"
	"repro/internal/workload"
)

// instantiate substitutes args for the named parameter variables of q.
func instantiate(q *cq.Query, params []string, args []string) *cq.Query {
	bind := make(cq.Subst, len(params))
	for i, p := range params {
		bind[p] = cq.Const(args[i])
	}
	return bind.ApplyQuery(q)
}

func TestCompileParamsPointLookup(t *testing.T) {
	db := storage.NewDatabase()
	for i := 0; i < 50; i++ {
		db.Insert("r", storage.Tuple{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%7)})
		db.Insert("s", storage.Tuple{fmt.Sprintf("b%d", i%7), fmt.Sprintf("c%d", i%3)})
	}
	db.BuildIndexes()
	cat := cost.NewCatalog(db)

	// q(Y) :- r(P,Z), s(Z,Y) with P a parameter: one plan, many bindings.
	q := cq.MustParseQuery("q(Y) :- r(P,Z), s(Z,Y)")
	plan := CompileParams(q, []string{"P"}, cat)
	if plan.NumParams() != 1 {
		t.Fatalf("NumParams = %d", plan.NumParams())
	}
	for i := 0; i < 50; i++ {
		arg := fmt.Sprintf("a%d", i)
		got := plan.EvalWith(db, []string{arg})
		want := EvalQuery(db, instantiate(q, []string{"P"}, []string{arg}))
		if !storage.TuplesEqual(got, want) {
			t.Fatalf("arg %s: got %v want %v", arg, got, want)
		}
	}
	// The parameter feeds the root index probe, like the constant would.
	if !strings.Contains(plan.Describe(), "params -> slots") {
		t.Fatalf("Describe misses params:\n%s", plan.Describe())
	}
}

func TestCompileParamsArityMismatchPanics(t *testing.T) {
	q := cq.MustParseQuery("q(Y) :- r(P,Y)")
	plan := CompileParams(q, []string{"P"}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	plan.Eval(storage.NewDatabase())
}

func TestCompileParamsInHeadAndComparison(t *testing.T) {
	db := storage.NewDatabase()
	for i := 0; i < 30; i++ {
		db.Insert("r", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i % 5)})
	}
	db.BuildIndexes()
	// The parameter appears in the head and in a comparison: the emitted
	// tuple carries the bound value, and the comparison filters on it.
	q := cq.MustParseQuery("q(X,P) :- r(X,P), X < P")
	plan := CompileParams(q, []string{"P"}, cost.NewCatalog(db))
	for _, arg := range []string{"0", "1", "2", "3", "4"} {
		got := plan.EvalWith(db, []string{arg})
		want := EvalQuery(db, instantiate(q, []string{"P"}, []string{arg}))
		if !storage.TuplesEqual(got, want) {
			t.Fatalf("arg %s: got %v want %v", arg, got, want)
		}
	}
}

func TestCompileParamsDisconnectedComponents(t *testing.T) {
	db := storage.NewDatabase()
	for i := 0; i < 20; i++ {
		db.Insert("r", storage.Tuple{fmt.Sprint(i)})
		db.Insert("s", storage.Tuple{fmt.Sprint(i % 4), fmt.Sprint(i)})
	}
	db.BuildIndexes()
	// The s component is a pure existence check gated on the parameter.
	q := cq.MustParseQuery("q(X) :- r(X), s(P,Y)")
	plan := CompileParams(q, []string{"P"}, cost.NewCatalog(db))
	if got := plan.EvalWith(db, []string{"3"}); len(got) != 20 {
		t.Fatalf("existing witness: %d answers, want 20", len(got))
	}
	if got := plan.EvalWith(db, []string{"99"}); len(got) != 0 {
		t.Fatalf("missing witness: %v, want none", got)
	}
}

// TestCompileParamsDifferential compiles randomized parameterized queries
// once and checks every binding against compiling the constant-instantiated
// query directly — sequential and parallel.
func TestCompileParamsDifferential(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 25
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < trials; trial++ {
		preds := []string{"p1", "p2", "p3"}
		db := workload.RandomDatabase(rng, preds, 2, 120+rng.Intn(200), 12)
		db.BuildIndexes()
		cat := cost.NewCatalog(db)

		// Random chain query with 1-2 parameter positions.
		n := 2 + rng.Intn(2)
		var body []cq.Atom
		for i := 0; i < n; i++ {
			body = append(body, cq.NewAtom(preds[rng.Intn(len(preds))],
				cq.Var(fmt.Sprintf("X%d", i)), cq.Var(fmt.Sprintf("X%d", i+1))))
		}
		q := cq.NewQuery(cq.NewAtom("q", cq.Var("X0"), cq.Var(fmt.Sprintf("X%d", n))), body...)
		params := []string{"X0"}
		if rng.Intn(2) == 0 {
			params = append(params, fmt.Sprintf("X%d", rng.Intn(n)+1))
		}
		// Parameter positions leave the head: they are bound, not projected.
		var head []cq.Term
		for _, a := range q.Head.Args {
			keep := true
			for _, p := range params {
				if a.IsVar() && a.Lex == p {
					keep = false
				}
			}
			if keep {
				head = append(head, a)
			}
		}
		q.Head.Args = head

		plan := CompileParams(q, params, cat)
		for rep := 0; rep < 8; rep++ {
			args := make([]string, len(params))
			for i := range args {
				args[i] = fmt.Sprintf("c%d", rng.Intn(14)) // sometimes absent
			}
			want := EvalQuery(db, instantiate(q, params, args))
			if got := plan.EvalWith(db, args); !storage.TuplesEqual(got, want) {
				t.Fatalf("trial %d %s args %v: got %v want %v", trial, q, args, got, want)
			}
			if got := plan.EvalParallelWith(db, args, 4); !storage.TuplesEqual(got, want) {
				t.Fatalf("trial %d %s args %v (parallel): got %v want %v", trial, q, args, got, want)
			}
		}
	}
}

func TestProgramEstimateCost(t *testing.T) {
	db := storage.NewDatabase()
	for i := 0; i < 100; i++ {
		db.Insert("e", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i + 1)})
	}
	cat := cost.NewCatalog(db)
	small := NewProgram(RuleFromQuery(cq.MustParseQuery("tc(X,Y) :- e(X,Y)")))
	big := NewProgram(
		RuleFromQuery(cq.MustParseQuery("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(cq.MustParseQuery("tc(X,Z) :- e(X,Y), e(Y,Z)")),
	)
	es, eb := small.EstimateCost(cat), big.EstimateCost(cat)
	if es.Cost <= 0 || eb.Cost <= es.Cost {
		t.Fatalf("estimates: small=%+v big=%+v", es, eb)
	}
}
