package datalog

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// Resource governance for the compiled executors. Every hot loop in this
// package — the plan candidate loops (compile.go, partition.go), the
// semi-naive fixpoint rounds (compileprog.go, partitionprog.go) and the IVM
// maintenance rounds (ivm.go) — can run under an evalGuard: a per-goroutine
// view of a shared guardState that amortizes cancellation checks to one
// atomic load every guardInterval candidate rows, so a context-aware
// execution costs the same as a plain one to within noise. Budgets
// (Limits) bound result rows, derived tuples and fixpoint rounds; fixpoint
// budgets are checked at round barriers, where partial-progress stats are
// already consistent.
//
// The legacy entry points pass a nil guard everywhere, which compiles to a
// single pointer test per candidate row — the pre-governance fast path is
// preserved bit-for-bit.

// ErrCanceled reports that an evaluation observed context cancellation (or
// deadline expiry) and stopped early. Match with errors.Is.
var ErrCanceled = errors.New("datalog: evaluation canceled")

// ErrBudgetExceeded reports that an evaluation exhausted an explicit
// resource budget (Limits). Match with errors.Is; the returned error wraps
// this sentinel with the specific budget that tripped.
var ErrBudgetExceeded = errors.New("datalog: evaluation budget exceeded")

// Limits bounds one evaluation. The zero value means unlimited.
type Limits struct {
	// MaxRows bounds the number of answer rows a plan evaluation may
	// produce. Enumeration aborts as soon as any single worker has emitted
	// more than MaxRows distinct rows, and the final result is checked
	// exactly.
	MaxRows int
	// MaxDerived bounds the total derived-tuple count of a fixpoint or
	// maintenance run, checked at every round barrier (the run may
	// overshoot by at most one round of derivations before stopping).
	MaxDerived int
	// MaxRounds bounds the number of semi-naive rounds of a fixpoint or
	// maintenance run.
	MaxRounds int
}

func (l Limits) zero() bool { return l.MaxRows <= 0 && l.MaxDerived <= 0 && l.MaxRounds <= 0 }

// guardInterval is how many candidate rows each worker visits between
// cancellation polls. 1<<10 keeps the poll cost well under 1% of loop time
// while bounding detection latency to microseconds.
const guardInterval = 1 << 10

// guardState is the per-evaluation cancellation state shared by all
// workers. A nil *guardState disables all checks.
type guardState struct {
	done    <-chan struct{} // context's done channel; nil when ctx can't fire
	maxRows int             // per-worker emitted-row budget; 0 = unlimited
	stopped atomic.Bool     // set once any worker trips; others stop within guardInterval rows
	mu      sync.Mutex
	err     error // first failure; guarded by mu
}

// newGuardState builds the shared state for one evaluation, or nil when
// neither the context nor the limits can ever fire — the legacy fast path.
func newGuardState(ctx context.Context, maxRows int) *guardState {
	done := ctx.Done()
	if done == nil && maxRows <= 0 {
		return nil
	}
	return &guardState{done: done, maxRows: maxRows}
}

// trip records the first failure and tells every worker to stop.
func (gs *guardState) trip(err error) {
	gs.mu.Lock()
	if gs.err == nil {
		gs.err = err
	}
	gs.mu.Unlock()
	gs.stopped.Store(true)
}

// failure returns the first recorded failure, if any. Callers read it only
// after the workers of the current stage have joined.
func (gs *guardState) failure() error {
	if gs == nil {
		return nil
	}
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.err
}

// barrier is the round-boundary check of the fixpoint loops: it surfaces a
// tripped failure and polls the context once per round.
func (gs *guardState) barrier() error {
	if gs == nil {
		return nil
	}
	if err := gs.failure(); err != nil {
		return err
	}
	if gs.done != nil {
		select {
		case <-gs.done:
			gs.trip(ErrCanceled)
			return ErrCanceled
		default:
		}
	}
	return nil
}

// child creates one worker's guard over the shared state. Guards are not
// goroutine-safe; every worker gets its own.
func (gs *guardState) child() *evalGuard {
	if gs == nil {
		return nil
	}
	return &evalGuard{s: gs, n: guardInterval, maxRows: gs.maxRows}
}

// evalGuard is one worker's amortized cancellation checker.
type evalGuard struct {
	s       *guardState
	n       int // rows until the next poll
	rows    int // rows emitted by this worker (MaxRows budget)
	maxRows int // copy of s.maxRows, keeping emitRow's fast path inlinable
}

// tick is called once per candidate row; it reports true when the worker
// must stop. All but one call in guardInterval is a decrement and compare —
// kept small enough to inline into the candidate loops, so a live guard
// costs about one branch per row.
func (g *evalGuard) tick() bool {
	g.n--
	if g.n > 0 {
		return false
	}
	return g.poll()
}

// poll is the once-per-guardInterval slow path of tick: one atomic load,
// and a non-blocking context check.
func (g *evalGuard) poll() bool {
	g.n = guardInterval
	if g.s.stopped.Load() {
		return true
	}
	if g.s.done != nil {
		select {
		case <-g.s.done:
			g.s.trip(ErrCanceled)
			return true
		default:
		}
	}
	return false
}

// emitRow records one distinct row produced by this worker and reports true
// when the row budget is exhausted. A single worker's distinct count is a
// lower bound on the evaluation's distinct total, so tripping here is never
// a false positive; the entry points re-check the combined result exactly.
func (g *evalGuard) emitRow() bool {
	if g == nil || g.maxRows <= 0 {
		return false
	}
	g.rows++
	if g.rows <= g.maxRows {
		return false
	}
	return g.tripRows()
}

// tripRows is emitRow's slow path: record the budget failure once.
func (g *evalGuard) tripRows() bool {
	g.s.trip(fmt.Errorf("datalog: row budget of %d exceeded: %w", g.s.maxRows, ErrBudgetExceeded))
	return true
}

// ---- Context-aware plan evaluation ----

// EvalCtx is Eval under a context and limits: evaluation stops within
// ~guardInterval candidate rows of ctx firing, returning ErrCanceled, and
// returns an error wrapping ErrBudgetExceeded when the answer set exceeds
// lim.MaxRows. With a never-firing context and zero limits it is exactly
// Eval. Parameterized plans must use EvalParallelCtx with args.
func (p *CompiledPlan) EvalCtx(ctx context.Context, db *storage.Database, lim Limits) ([]storage.Tuple, error) {
	return p.EvalParallelCtx(ctx, db, nil, 1, lim)
}

// EvalParallelCtx is EvalParallelWith under a context and limits. The
// returned rows are sorted; on error the partial rows are discarded.
func (p *CompiledPlan) EvalParallelCtx(ctx context.Context, db *storage.Database, args []string, workers int, lim Limits) ([]storage.Tuple, error) {
	rows, err := p.EvalParallelUnsortedCtx(ctx, db, args, workers, lim)
	if err != nil {
		return nil, err
	}
	return storage.SortTuples(rows), nil
}

// EvalParallelUnsortedCtx is EvalParallelUnsortedWith under a context and
// limits (unsorted distinct answers in discovery order).
func (p *CompiledPlan) EvalParallelUnsortedCtx(ctx context.Context, db *storage.Database, args []string, workers int, lim Limits) ([]storage.Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, ErrCanceled
	}
	gs := newGuardState(ctx, lim.MaxRows)
	rows := p.evalUnsorted(db, args, workers, gs)
	return finishRows(rows, gs, lim)
}

// EvalShardedCtx is EvalShardedWith under a context and limits.
func (p *CompiledPlan) EvalShardedCtx(ctx context.Context, pdb *storage.PartitionedDatabase, args []string, workers int, lim Limits) ([]storage.Tuple, error) {
	rows, err := p.EvalShardedUnsortedCtx(ctx, pdb, args, workers, lim)
	if err != nil {
		return nil, err
	}
	return storage.SortTuples(rows), nil
}

// EvalShardedUnsortedCtx is EvalShardedUnsortedWith under a context and
// limits.
func (p *CompiledPlan) EvalShardedUnsortedCtx(ctx context.Context, pdb *storage.PartitionedDatabase, args []string, workers int, lim Limits) ([]storage.Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, ErrCanceled
	}
	gs := newGuardState(ctx, lim.MaxRows)
	rows := p.evalShardedUnsorted(pdb, args, workers, gs)
	return finishRows(rows, gs, lim)
}

// finishRows applies the shared post-checks of the ctx entry points: a
// tripped guard wins, then the exact MaxRows check over the combined
// result.
func finishRows(rows []storage.Tuple, gs *guardState, lim Limits) ([]storage.Tuple, error) {
	if err := gs.failure(); err != nil {
		return nil, err
	}
	if lim.MaxRows > 0 && len(rows) > lim.MaxRows {
		return nil, fmt.Errorf("datalog: result has %d row(s), budget is %d: %w", len(rows), lim.MaxRows, ErrBudgetExceeded)
	}
	return rows, nil
}

// ---- Context-aware fixpoint and maintenance ----

// fixpointGuard builds the guard for a fixpoint-shaped run: cancellation
// from ctx, with the per-worker emit backstop wired to the derivation
// budget (the authoritative MaxDerived/MaxRounds checks run at the round
// barriers).
func fixpointGuard(ctx context.Context, lim Limits) *guardState {
	return newGuardState(ctx, lim.MaxDerived)
}

// EvalCtx is EvalParallel under a context and limits. On cancellation or a
// tripped budget the partial database is discarded; use EvalRelationCtx
// when partial-progress stats matter.
func (cp *CompiledProgram) EvalCtx(ctx context.Context, edb *storage.Database, workers int, lim Limits) (*storage.Database, error) {
	if err := ctx.Err(); err != nil {
		return nil, ErrCanceled
	}
	idb, _, err := cp.run(edb, workers, fixpointGuard(ctx, lim), lim)
	if err != nil {
		return nil, err
	}
	return materializeIDB(edb.Clone(), idb)
}

// EvalRelationCtx is EvalRelation under a context and limits. On error the
// returned FixpointStats carry the partial progress (rounds executed,
// tuples derived) at the moment the run stopped.
func (cp *CompiledProgram) EvalRelationCtx(ctx context.Context, edb *storage.Database, pred string, workers int, lim Limits) ([]storage.Tuple, FixpointStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, FixpointStats{}, ErrCanceled
	}
	return cp.evalRelation(edb, pred, workers, fixpointGuard(ctx, lim), lim)
}

// EvalRelationShardedCtx is EvalRelationSharded under a context and limits.
func (cp *CompiledProgram) EvalRelationShardedCtx(ctx context.Context, pdb *storage.PartitionedDatabase, pred string, workers int, lim Limits) ([]storage.Tuple, FixpointStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, FixpointStats{}, ErrCanceled
	}
	return cp.evalRelationSharded(pdb, pred, workers, fixpointGuard(ctx, lim), lim)
}

// MaintainDeltaCtx is MaintainDeltaParallel under a context and limits.
// On error db holds a partially propagated state: the caller must either
// discard it or roll back (ivm.Maintainer does the latter).
func (cp *CompiledProgram) MaintainDeltaCtx(ctx context.Context, db *storage.Database, delta map[string][]storage.Tuple, workers int, lim Limits) (map[string][]storage.Tuple, FixpointStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, FixpointStats{}, ErrCanceled
	}
	return cp.maintainDelta(db, delta, workers, fixpointGuard(ctx, lim), lim)
}

// MaintainDeltaShardedCtx is MaintainDeltaSharded under a context and
// limits, with the same partial-state caveat as MaintainDeltaCtx.
func (cp *CompiledProgram) MaintainDeltaShardedCtx(ctx context.Context, pdb *storage.PartitionedDatabase, delta map[string][]storage.Tuple, workers int, lim Limits) (map[string][]storage.Tuple, FixpointStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, FixpointStats{}, ErrCanceled
	}
	return cp.maintainDeltaSharded(pdb, delta, workers, fixpointGuard(ctx, lim), lim)
}

// ApplyInsertsCtx is ApplyInserts under a context and limits. Validation
// errors still leave db unchanged; cancellation or budget errors leave it
// partially updated, with the same roll-back caveat as MaintainDeltaCtx.
func (cp *CompiledProgram) ApplyInsertsCtx(ctx context.Context, db *storage.Database, updates map[string][]storage.Tuple, workers int, lim Limits) (fresh, derived map[string][]storage.Tuple, stats FixpointStats, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, FixpointStats{}, ErrCanceled
	}
	return cp.applyInserts(db, updates, workers, fixpointGuard(ctx, lim), lim)
}

// ApplyInsertsShardedCtx is ApplyInsertsSharded under a context and limits.
func (cp *CompiledProgram) ApplyInsertsShardedCtx(ctx context.Context, pdb *storage.PartitionedDatabase, updates map[string][]storage.Tuple, workers int, lim Limits) (fresh, derived map[string][]storage.Tuple, stats FixpointStats, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, FixpointStats{}, ErrCanceled
	}
	return cp.applyInsertsSharded(pdb, updates, workers, fixpointGuard(ctx, lim), lim)
}
