package datalog

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// Sharded plan execution over a storage.PartitionedDatabase. The compiled
// plan is unchanged — the same slot frames, access paths and join order —
// but every step resolves to per-shard tuple slices and per-shard indexes,
// and the executor exploits the physical partitioning two ways:
//
//   - shard-local probes: a step probing its relation's partition column
//     routes straight to the owner shard (storage.ShardOf of the probe
//     value), touching an index 1/P-th the size of the monolithic one. Any
//     other access path broadcasts across the shards, which is exactly the
//     unpartitioned semantics — correctness never depends on the partition
//     column, only locality.
//
//   - exchange (repartition) steps: consecutive joins probing on the same
//     routing slot run as one shard-local segment; when the join key
//     changes, the executor materialises the intermediate frames and
//     re-buckets them by the hash of the new key slot. Each downstream task
//     then probes only its own shard, turning scattered cross-index lookups
//     into shard-major sweeps. An exchange materialises the frames crossing
//     it (memory proportional to that intermediate result), the classical
//     cost of a radix-partitioned join.
//
// Per-shard fixpoints and sharded IVM propagation build on this executor in
// partitionprog.go.

// shardSrc is one step's execution source over a partitioned database:
// per-shard tuple slices plus, when the step probes and the shard's index is
// built, the per-shard probe index. local marks probes on the relation's
// partition column — the ones the executor may route to a single owner
// shard. A missing predicate has shards == 0 and matches nothing.
type shardSrc struct {
	tuples  [][]storage.Tuple
	idx     []map[string][]int // non-nil (per shard, entries may be nil) iff the step probes
	local   bool
	partCol int // the relation's partition column; -1 when the predicate is missing
	shards  int
}

// resolveSharded binds the component's steps to pdb, the partitioned
// analogue of CompiledPlan.resolve.
func resolveSharded(pdb *storage.PartitionedDatabase, c *compiledComponent) []shardSrc {
	srcs := make([]shardSrc, len(c.steps))
	for j := range c.steps {
		s := &c.steps[j]
		rel := pdb.Relation(s.pred)
		if rel == nil {
			srcs[j].partCol = -1
			continue
		}
		srcs[j] = shardSrcForRel(rel, s.probeCol)
	}
	return srcs
}

// shardSrcForRel builds one step's source over a partitioned relation:
// per-shard tuple slices plus the per-shard probe index when built. The
// fixpoint and maintenance resolvers (partitionprog.go) share it.
func shardSrcForRel(rel *storage.PartitionedRelation, probeCol int) shardSrc {
	n := rel.NumShards()
	src := shardSrc{shards: n, partCol: rel.PartitionColumn(), tuples: make([][]storage.Tuple, n)}
	if probeCol >= 0 {
		src.idx = make([]map[string][]int, n)
		src.local = probeCol == src.partCol
	}
	for i := 0; i < n; i++ {
		shard := rel.Shard(i)
		src.tuples[i] = shard.Tuples()
		if probeCol >= 0 {
			if idx, ok := shard.ColumnIndex(probeCol); ok {
				src.idx[i] = idx
			}
		}
	}
	return src
}

// singleSrc wraps one tuple slice as a one-shard source — the delta variant
// roots of the per-shard fixpoint, and the per-root-shard tasks of the plan
// executor, both substitute it for a step's source.
func singleSrc(tuples []storage.Tuple, probes bool) shardSrc {
	src := shardSrc{tuples: [][]storage.Tuple{tuples}, partCol: -1, shards: 1}
	if probes {
		src.idx = []map[string][]int{nil} // scan fallback: ops re-check the probed column
	}
	return src
}

// only restricts a source to one shard, for per-root-shard tasks. The view
// is non-local: the task enumerates exactly that shard's candidates.
func (src shardSrc) only(s int) shardSrc {
	out := shardSrc{tuples: src.tuples[s : s+1], partCol: -1, shards: 1}
	if src.idx != nil {
		out.idx = src.idx[s : s+1]
	}
	return out
}

// joinStepsShard enumerates the component's matches from depth up to stop
// (stop == len(c.steps) for a full run; segment executions stop at the next
// exchange), invoking yield with the shared frame for each frame reaching
// stop. It reports false iff yield asked to stop.
//
// A local probe routes to the owner shard of the probe value; every other
// access path visits the shards in order, which preserves the unpartitioned
// candidate semantics (the union of the shards is the relation).
func joinStepsShard(c *compiledComponent, srcs []shardSrc, depth, stop int, frame []string, g *evalGuard, yield func([]string) bool) bool {
	if depth == stop {
		return yield(frame)
	}
	step := &c.steps[depth]
	src := &srcs[depth]
	st := shardStep{c: c, srcs: srcs, depth: depth, stop: stop, g: g}
	if step.probeCol >= 0 {
		val := step.probeConst
		if step.probeSlot >= 0 {
			val = frame[step.probeSlot]
		}
		if src.local {
			return st.shard(storage.ShardOf(val, src.shards), val, frame, yield)
		}
		for s := 0; s < src.shards; s++ {
			if !st.shard(s, val, frame, yield) {
				return false
			}
			if st.done {
				return true
			}
		}
		return true
	}
	for s := 0; s < src.shards; s++ {
		if !st.scan(s, frame, yield) {
			return false
		}
		if st.done {
			return true
		}
	}
	return true
}

// shardStep is one depth's candidate-loop state, shared across the shards
// the step visits: the dedup set must span shards (identical bindings can
// surface from different shards) and done records an existential step's
// first match so the cross-shard loop stops like a single candidate loop.
type shardStep struct {
	c           *compiledComponent
	srcs        []shardSrc
	depth, stop int
	seen        map[string]bool
	keyBuf      []byte
	done        bool
	g           *evalGuard // may be nil: no cancellation checks
}

// shard runs the step's candidate loop over one shard, probing its index
// when built and falling back to a scan (with the probed column re-checked
// by ops) when not.
func (st *shardStep) shard(s int, val string, frame []string, yield func([]string) bool) bool {
	src := &st.srcs[st.depth]
	tuples := src.tuples[s]
	if idx := src.idx[s]; idx != nil {
		return st.loop(tuples, idx[val], true, frame, yield)
	}
	return st.loop(tuples, nil, false, frame, yield)
}

// scan runs the step's candidate loop over one shard without a probe.
func (st *shardStep) scan(s int, frame []string, yield func([]string) bool) bool {
	return st.loop(st.srcs[st.depth].tuples[s], nil, false, frame, yield)
}

func (st *shardStep) loop(tuples []storage.Tuple, positions []int, usePositions bool, frame []string, yield func([]string) bool) bool {
	step := &st.c.steps[st.depth]
	ops := step.ops
	n := len(tuples)
	if usePositions {
		n = len(positions)
		ops = step.opsIndexed
	}
	for i := 0; i < n; i++ {
		if st.g != nil && st.g.tick() {
			return false
		}
		t := tuples[i]
		if usePositions {
			t = tuples[positions[i]]
		}
		if !applyStep(step, ops, t, frame) {
			continue
		}
		if step.dedup {
			st.keyBuf = appendBindKey(st.keyBuf[:0], step, t)
			if st.seen == nil {
				st.seen = make(map[string]bool)
			}
			if st.seen[string(st.keyBuf)] {
				continue
			}
			st.seen[string(st.keyBuf)] = true
		}
		if !joinStepsShard(st.c, st.srcs, st.depth+1, st.stop, frame, st.g, yield) {
			return false
		}
		if step.existential {
			st.done = true // binds nothing: the first match decides
			return true
		}
	}
	return true
}

// planSegment is a run of consecutive steps executed shard-locally between
// exchanges: frames enter it bucketed by ShardOf(frame[routeSlot]) (routeSlot
// < 0 for the root segment, whose tasks are root shards instead).
type planSegment struct {
	from, to  int
	routeSlot int
}

// shardSegments cuts the component's steps at every join-key change: a step
// probing its partition column from a slot other than the current routing
// slot opens a new segment, preceded by an exchange on that slot. It also
// returns the routing slot in force after the last step — when that slot is
// a head slot, final per-task results are provably disjoint and merge
// without cross-task dedup.
//
// With one shard there is nothing to re-bucket, so the whole plan is a
// single segment.
func shardSegments(c *compiledComponent, srcs []shardSrc, shards int) ([]planSegment, int) {
	cur := -1
	root := &c.steps[0]
	if srcs[0].local && root.probeSlot >= 0 {
		cur = root.probeSlot
	} else if !srcs[0].local && srcs[0].partCol >= 0 {
		// Data-sharded root: the slot carrying the root relation's partition
		// column (bound or checked by the root step) routes every frame of a
		// root-shard task back to that shard.
		for _, op := range root.ops {
			if op.col == srcs[0].partCol && (op.action == colBind || op.action == colCheckSlot) {
				cur = op.slot
				break
			}
		}
	}
	segs := []planSegment{{from: 0, routeSlot: -1}}
	if shards > 1 {
		for d := 1; d < len(c.steps); d++ {
			s := &c.steps[d]
			if srcs[d].local && s.probeSlot >= 0 && s.probeSlot != cur {
				segs[len(segs)-1].to = d
				segs = append(segs, planSegment{from: d, routeSlot: s.probeSlot})
				cur = s.probeSlot
			}
		}
	}
	segs[len(segs)-1].to = len(c.steps)
	return segs, cur
}

// runTasks executes fn(0..n-1) across up to workers goroutines, pulling task
// indexes from a shared atomic counter. workers <= 1 runs inline.
func runTasks(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// segResult is one task's output for one segment: frames bucketed for the
// next exchange, or (in the final segment) the task's distinct projections.
type segResult struct {
	buckets [][]string // per destination shard, flat frame arena
	rows    [][]string
}

// enumerateComponentSharded is enumerateComponent over a partitioned
// database: stage 0 fans out per root shard (or runs as one task when the
// root probe already routes to a single owner shard), each exchange
// re-buckets the intermediate frames by the next segment's routing slot,
// and each later stage runs one task per non-empty shard.
func (p *CompiledPlan) enumerateComponentSharded(c *compiledComponent, pdb *storage.PartitionedDatabase, workers int, base []string, project func([]string) []string, gs *guardState) [][]string {
	srcs := resolveSharded(pdb, c)
	P := pdb.NumShards()
	segs, finalRoute := shardSegments(c, srcs, P)
	root := &c.steps[0]
	rootSrc := &srcs[0]
	stride := p.numSlots

	// Stage-0 tasks: one per non-empty root shard for data-sharded roots; a
	// single task when the root probes its partition column (owner routing
	// already confines it to one shard) or is existential (its first match
	// decides, which striding would re-discover P times).
	var tasks []int
	if root.existential || rootSrc.local {
		tasks = []int{-1}
	} else {
		for s := 0; s < rootSrc.shards; s++ {
			if len(rootSrc.tuples[s]) > 0 {
				tasks = append(tasks, s)
			}
		}
	}
	if len(tasks) == 0 {
		return nil
	}

	runSeg := func(k int, taskSrcs []shardSrc, startFrames []string) segResult {
		seg := segs[k]
		last := k == len(segs)-1
		g := gs.child()
		var res segResult
		var emitSeen map[string]bool
		var keyBuf []byte
		nextRoute := -1
		if !last {
			res.buckets = make([][]string, P)
			nextRoute = segs[k+1].routeSlot
		}
		yield := func(frame []string) bool {
			if !last {
				s := storage.ShardOf(frame[nextRoute], P)
				res.buckets[s] = append(res.buckets[s], frame...)
				return true
			}
			// Head tuples are injective in the head-slot values, so the
			// frame key decides newness before the projection materialises.
			keyBuf = keyBuf[:0]
			for _, s := range c.headSlots {
				keyBuf = append(keyBuf, frame[s]...)
				keyBuf = append(keyBuf, 0x1f)
			}
			if emitSeen == nil {
				emitSeen = make(map[string]bool)
			}
			if !emitSeen[string(keyBuf)] {
				emitSeen[string(keyBuf)] = true
				res.rows = append(res.rows, project(frame))
				if g.emitRow() {
					return false
				}
			}
			return true
		}
		frame := make([]string, p.numSlots)
		if k == 0 {
			copy(frame, base)
			joinStepsShard(c, taskSrcs, 0, seg.to, frame, g, yield)
		} else {
			for off := 0; off < len(startFrames); off += stride {
				copy(frame, startFrames[off:off+stride])
				if !joinStepsShard(c, taskSrcs, seg.from, seg.to, frame, g, yield) {
					break
				}
			}
		}
		return res
	}

	results := make([]segResult, len(tasks))
	runTasks(len(tasks), workers, func(i int) {
		ts := srcs
		if tasks[i] >= 0 {
			ts = make([]shardSrc, len(srcs))
			copy(ts, srcs)
			ts[0] = srcs[0].only(tasks[i])
		}
		results[i] = runSeg(0, ts, nil)
	})

	for k := 1; k < len(segs); k++ {
		if gs.failure() != nil {
			return nil // canceled mid-exchange: partial rows are meaningless
		}
		// Exchange barrier: merge every task's buckets into per-shard frame
		// lists, then fan the next segment out one task per non-empty shard.
		in := make([][]string, P)
		for _, r := range results {
			for s, b := range r.buckets {
				if len(b) > 0 {
					in[s] = append(in[s], b...)
				}
			}
		}
		var shardIDs []int
		for s := 0; s < P; s++ {
			if len(in[s]) > 0 {
				shardIDs = append(shardIDs, s)
			}
		}
		results = make([]segResult, len(shardIDs))
		k := k
		runTasks(len(shardIDs), workers, func(i int) {
			results[i] = runSeg(k, srcs, in[shardIDs[i]])
		})
	}

	if len(results) == 1 {
		return results[0].rows
	}
	if finalRoute >= 0 && containsInt(c.headSlots, finalRoute) {
		// Final tasks are per-shard on a head slot's hash: their projections
		// cannot collide, so no cross-task dedup is needed — and each task's
		// rows can be sorted while still cache-resident, leaving the global
		// SortTuples pass a cheap merge of presorted runs (mergeSortedRows)
		// instead of a scattered full sort.
		runTasks(len(results), workers, func(i int) {
			sortRows(results[i].rows)
		})
		runs := make([][][]string, 0, len(results))
		for _, r := range results {
			if len(r.rows) > 0 {
				runs = append(runs, r.rows)
			}
		}
		return mergeSortedRows(runs)
	}
	var rows [][]string
	seen := make(map[string]bool)
	for _, r := range results {
		for _, row := range r.rows {
			k := storage.Tuple(row).Key()
			if !seen[k] {
				seen[k] = true
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// PartitionHints returns, per predicate, the columns this plan probes (in
// plan order) plus, for scanned predicates, the bound column feeding a later
// step's probe slot — the scan's join column. Feeding the result to
// cost.Catalog.PartitionColumns co-partitions a serving database for the
// plan: every probe routes to its owner shard instead of broadcasting, and a
// root partitioned on its join column enters the plan pre-routed, needing no
// exchange before the first join. The hints are physical-design advice only;
// any layout stays correct.
func (p *CompiledPlan) PartitionHints() map[string][]int {
	hints := make(map[string][]int)
	for i := range p.components {
		collectPartitionHints(p.components[i].steps, hints)
	}
	return hints
}

// collectPartitionHints folds one step sequence's probe and join columns
// into hints. Order encodes preference (cost.Catalog.PartitionColumn takes
// the first in-range entry): a probing step contributes its probe column,
// and a scan contributes the bound columns feeding later probes —
// nearest consumer first, because partitioning a scan on the column its
// *next* join probes is what lets the executor run that join without an
// exchange.
func collectPartitionHints(steps []compiledStep, hints map[string][]int) {
	add := func(pred string, col int) {
		for _, c := range hints[pred] {
			if c == col {
				return
			}
		}
		hints[pred] = append(hints[pred], col)
	}
	for j := range steps {
		s := &steps[j]
		if s.probeCol >= 0 {
			add(s.pred, s.probeCol)
			continue
		}
		for k := j + 1; k < len(steps); k++ {
			if steps[k].probeCol < 0 || steps[k].probeSlot < 0 {
				continue
			}
			for _, op := range s.ops {
				if op.action == colBind && op.slot == steps[k].probeSlot {
					add(s.pred, op.col)
					break
				}
			}
		}
	}
}

// sortRows orders projection rows by the tuple comparator SortTuples uses.
func sortRows(rows [][]string) {
	slices.SortFunc(rows, func(a, b []string) int {
		return storage.Tuple(a).Compare(storage.Tuple(b))
	})
}

// mergeSortedRows merges presorted runs into one sorted slice by pairwise
// passes (log k sequential streaming merges).
func mergeSortedRows(runs [][][]string) [][]string {
	if len(runs) == 0 {
		return nil
	}
	for len(runs) > 1 {
		next := runs[:0:len(runs)/2+1]
		for i := 0; i+1 < len(runs); i += 2 {
			next = append(next, mergeTwoRows(runs[i], runs[i+1]))
		}
		if len(runs)%2 == 1 {
			next = append(next, runs[len(runs)-1])
		}
		runs = next
	}
	return runs[0]
}

func mergeTwoRows(a, b [][]string) [][]string {
	out := make([][]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if storage.Tuple(a[i]).Compare(storage.Tuple(b[j])) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// EvalSharded executes the plan over a partitioned database and returns the
// distinct answers in sorted order — tuple-set-identical to Eval over the
// flattened database, with shard-local probes and exchange-batched joins.
// The database must not be mutated during the call; freeze it
// (BuildIndexes) for indexed access paths and concurrent workers.
func (p *CompiledPlan) EvalSharded(pdb *storage.PartitionedDatabase, workers int) []storage.Tuple {
	return p.EvalShardedWith(pdb, nil, workers)
}

// EvalShardedWith is EvalSharded under an argument binding (EvalWith): the
// sharded execution path of prepared plans. A parameter-fed probe on a
// partition column routes the whole execution to one owner shard.
func (p *CompiledPlan) EvalShardedWith(pdb *storage.PartitionedDatabase, args []string, workers int) []storage.Tuple {
	return storage.SortTuples(p.EvalShardedUnsortedWith(pdb, args, workers))
}

// EvalShardedUnsorted is EvalSharded without the final sort.
func (p *CompiledPlan) EvalShardedUnsorted(pdb *storage.PartitionedDatabase, workers int) []storage.Tuple {
	return p.EvalShardedUnsortedWith(pdb, nil, workers)
}

// EvalShardedUnsortedWith is EvalShardedWith without the final sort.
func (p *CompiledPlan) EvalShardedUnsortedWith(pdb *storage.PartitionedDatabase, args []string, workers int) []storage.Tuple {
	return p.evalShardedUnsorted(pdb, args, workers, nil)
}

// evalShardedUnsorted is the shared sharded executor behind the legacy
// (gs == nil) and context-aware entry points.
func (p *CompiledPlan) evalShardedUnsorted(pdb *storage.PartitionedDatabase, args []string, workers int, gs *guardState) []storage.Tuple {
	base := p.baseFrame(args)
	if !p.empty && len(p.components) == 1 && len(p.components[0].headSlots) > 0 {
		c := &p.components[0]
		rows := p.enumerateComponentSharded(c, pdb, workers, base,
			func(frame []string) []string { return p.headTuple(frame) }, gs)
		out := make([]storage.Tuple, len(rows))
		for i, r := range rows {
			out[i] = r
		}
		return out
	}
	parts, ok := p.componentRowsSharded(pdb, workers, base, gs)
	if !ok || gs.failure() != nil {
		return nil
	}
	if gs != nil && gs.maxRows > 0 {
		prod := 1
		for i := range p.components {
			if len(p.components[i].headSlots) > 0 {
				prod *= len(parts[i])
				if prod > gs.maxRows {
					gs.trip(fmt.Errorf("datalog: row budget of %d exceeded: %w", gs.maxRows, ErrBudgetExceeded))
					return nil
				}
			}
		}
	}
	return p.combineComponents(parts, base, gs)
}

// componentRowsSharded is componentRows over a partitioned database.
func (p *CompiledPlan) componentRowsSharded(pdb *storage.PartitionedDatabase, workers int, base []string, gs *guardState) ([][][]string, bool) {
	if p.empty {
		return nil, false
	}
	parts := make([][][]string, len(p.components))
	for i := range p.components {
		c := &p.components[i]
		if len(c.headSlots) == 0 {
			// Pure existence check: one witness suffices; run it as a single
			// task (striding would only re-discover the same witness).
			srcs := resolveSharded(pdb, c)
			found := false
			frame := make([]string, p.numSlots)
			copy(frame, base)
			joinStepsShard(c, srcs, 0, len(c.steps), frame, gs.child(), func([]string) bool {
				found = true
				return false
			})
			if !found {
				return nil, false
			}
			continue
		}
		rows := p.enumerateComponentSharded(c, pdb, workers, base, c.projectRow, gs)
		if len(rows) == 0 {
			return nil, false
		}
		parts[i] = rows
	}
	return parts, true
}
