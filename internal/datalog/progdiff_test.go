package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/storage"
)

// Differential property test for the compiled semi-naive fixpoint: on
// randomized recursive programs — transitive closures (linear and
// nonlinear), cycles, mutually recursive predicates, Skolem heads, head
// constants, comparisons, don't-care columns — the compiled evaluator
// (sequential and parallel) must produce exactly the same relation sets as
// the interpretive baseline, relation by relation.

// randomProgDB builds a random EDB over a small domain: a binary edge
// relation (cyclic with probability ~1/2), a unary node set, a node→number
// relation, and a ternary relation with low-cardinality columns.
func randomProgDB(rng *rand.Rand) *storage.Database {
	db := storage.NewDatabase()
	nodes := 3 + rng.Intn(5)
	node := func(i int) string { return fmt.Sprintf("n%d", i) }
	edges := 2 + rng.Intn(3*nodes)
	for i := 0; i < edges; i++ {
		db.Insert("e", storage.Tuple{node(rng.Intn(nodes)), node(rng.Intn(nodes))})
	}
	if rng.Intn(2) == 0 {
		// Guarantee a cycle through node 0.
		mid := rng.Intn(nodes)
		db.Insert("e", storage.Tuple{node(0), node(mid)})
		db.Insert("e", storage.Tuple{node(mid), node(0)})
	}
	for i := 0; i < 1+rng.Intn(nodes); i++ {
		db.Insert("u", storage.Tuple{node(rng.Intn(nodes))})
	}
	for i := 0; i < 2+rng.Intn(8); i++ {
		db.Insert("m", storage.Tuple{node(rng.Intn(nodes)), fmt.Sprint(rng.Intn(10))})
	}
	for i := 0; i < 2+rng.Intn(10); i++ {
		db.Insert("t3", storage.Tuple{node(rng.Intn(nodes)), fmt.Sprint(rng.Intn(3)), fmt.Sprint(rng.Intn(3))})
	}
	return db
}

// progTemplates are rule-group generators. Each returns the rules of one
// group, with IDB predicate names suffixed by the group instance index so
// independent groups never collide.
var progTemplates = []func(rng *rand.Rand, sfx string) []Rule{
	// Linear transitive closure, optionally with the delta-unfriendly
	// atom order (IDB atom second) and a nonlinear variant.
	func(rng *rand.Rand, sfx string) []Rule {
		tc := "tc" + sfx
		rules := []Rule{RuleFromQuery(mustQ(tc + "(X,Y) :- e(X,Y)"))}
		switch rng.Intn(3) {
		case 0:
			rules = append(rules, RuleFromQuery(mustQ(tc+"(X,Z) :- "+tc+"(X,Y), e(Y,Z)")))
		case 1:
			rules = append(rules, RuleFromQuery(mustQ(tc+"(X,Z) :- e(X,Y), "+tc+"(Y,Z)")))
		default:
			rules = append(rules, RuleFromQuery(mustQ(tc+"(X,Z) :- "+tc+"(X,Y), "+tc+"(Y,Z)")))
		}
		return rules
	},
	// Mutually recursive even/odd reachability.
	func(rng *rand.Rand, sfx string) []Rule {
		odd, even := "odd"+sfx, "even"+sfx
		return []Rule{
			RuleFromQuery(mustQ(odd + "(X,Y) :- e(X,Y)")),
			RuleFromQuery(mustQ(even + "(X,Z) :- " + odd + "(X,Y), e(Y,Z)")),
			RuleFromQuery(mustQ(odd + "(X,Z) :- " + even + "(X,Y), e(Y,Z)")),
		}
	},
	// Skolem heads from EDB bodies (the inverse-rules shape) plus a
	// consumer joining through the Skolem values, sometimes recursively.
	func(rng *rand.Rand, sfx string) []Rule {
		r, s, j := "r"+sfx, "s"+sfx, "j"+sfx
		f := &Skolem{Name: "f" + sfx, Args: []string{"X"}}
		rules := []Rule{
			{
				HeadPred: r,
				Head:     []HeadTerm{{Term: cq.Var("X")}, {Skolem: f}},
				Body:     []cq.Atom{cq.NewAtom("u", cq.Var("X"))},
			},
			{
				HeadPred: s,
				Head:     []HeadTerm{{Skolem: f}},
				Body:     []cq.Atom{cq.NewAtom("u", cq.Var("X"))},
			},
			RuleFromQuery(mustQ(j + "(X) :- " + r + "(X,W), " + s + "(W)")),
		}
		if rng.Intn(2) == 0 {
			// Close the Skolem-carrying relation transitively over edges.
			rules = append(rules, RuleFromQuery(mustQ(r+"(Y,W) :- "+r+"(X,W), e(X,Y)")))
		}
		return rules
	},
	// Head constants and a body constant.
	func(rng *rand.Rand, sfx string) []Rule {
		tag := "tag" + sfx
		rules := []Rule{RuleFromQuery(mustQ(tag + "(X,lbl" + sfx + ") :- e(X,Y)"))}
		if rng.Intn(2) == 0 {
			rules = append(rules, RuleFromQuery(mustQ(tag+"(Y,seen) :- e(n0,Y)")))
		}
		return rules
	},
	// Comparisons: var-vs-const and var-vs-var at random depths, on a
	// recursive predicate so comparisons meet the delta variants too.
	func(rng *rand.Rand, sfx string) []Rule {
		big, pair := "big"+sfx, "pair"+sfx
		q1 := mustQ(big + "(A,B) :- m(A,B)")
		q1.AddComparison(cq.NewComparison(cq.Var("B"), cq.CompOp(rng.Intn(6)), cq.IntConst(int64(rng.Intn(10)))))
		q2 := mustQ(pair + "(A,B) :- m(X,A), m(X,B)")
		q2.AddComparison(cq.NewComparison(cq.Var("A"), cq.Lt, cq.Var("B")))
		rules := []Rule{RuleFromQuery(q1), RuleFromQuery(q2)}
		if rng.Intn(2) == 0 {
			q3 := mustQ(pair + "(A,C) :- " + pair + "(A,B), " + pair + "(B,C)")
			q3.AddComparison(cq.NewComparison(cq.Var("A"), cq.Le, cq.Var("C")))
			rules = append(rules, RuleFromQuery(q3))
		}
		return rules
	},
	// Don't-care columns and repeated variables within an atom.
	func(rng *rand.Rand, sfx string) []Rule {
		proj, loop := "proj"+sfx, "loop"+sfx
		return []Rule{
			RuleFromQuery(mustQ(proj + "(X) :- t3(X,F1,F2)")),
			RuleFromQuery(mustQ(loop + "(X) :- e(X,X)")),
			RuleFromQuery(mustQ(loop + "(Y) :- " + loop + "(X), e(X,Y), e(Y,X)")),
		}
	},
}

// randomProgram assembles 1–3 template groups into one program, shuffling
// rule order (fixpoints are order-independent; the evaluators must be too).
func randomProgram(rng *rand.Rand, trial int) *Program {
	groups := 1 + rng.Intn(3)
	var rules []Rule
	for g := 0; g < groups; g++ {
		tpl := progTemplates[rng.Intn(len(progTemplates))]
		rules = append(rules, tpl(rng, fmt.Sprintf("_%d_%d", trial, g))...)
	}
	rng.Shuffle(len(rules), func(i, j int) { rules[i], rules[j] = rules[j], rules[i] })
	return NewProgram(rules...)
}

// diffDatabases fails the test if any relation differs between the two
// result databases (exact set equality, both directions).
func diffDatabases(t *testing.T, label string, got, want *storage.Database) {
	t.Helper()
	preds := make(map[string]bool)
	for _, p := range got.Predicates() {
		preds[p] = true
	}
	for _, p := range want.Predicates() {
		preds[p] = true
	}
	for p := range preds {
		var gt, wt []storage.Tuple
		if r := got.Relation(p); r != nil {
			gt = r.Tuples()
		}
		if r := want.Relation(p); r != nil {
			wt = r.Tuples()
		}
		if !storage.TuplesEqual(gt, wt) {
			t.Fatalf("%s: relation %s diverges:\n  compiled: %v\n  interp:   %v", label, p, gt, wt)
		}
	}
}

func TestCompiledProgramDifferential(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 100
	}
	rng := rand.New(rand.NewSource(0xF1C5))
	for trial := 0; trial < trials; trial++ {
		db := randomProgDB(rng)
		prog := randomProgram(rng, trial)

		want, err := prog.EvalInterp(db)
		if err != nil {
			t.Fatalf("trial %d: interp: %v\n%s", trial, err, prog)
		}
		cp, err := CompileProgram(prog, cost.NewRowCatalog(db))
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, prog)
		}
		got, err := cp.Eval(db)
		if err != nil {
			t.Fatalf("trial %d: compiled eval: %v\n%s", trial, err, prog)
		}
		diffDatabases(t, fmt.Sprintf("trial %d (seq)\n%s", trial, prog), got, want)

		gotPar, err := cp.EvalParallel(db, 1+rng.Intn(4))
		if err != nil {
			t.Fatalf("trial %d: parallel eval: %v\n%s", trial, err, prog)
		}
		diffDatabases(t, fmt.Sprintf("trial %d (parallel)\n%s", trial, prog), gotPar, want)

		// The catalog only steers join order; a full-statistics catalog
		// must give identical answers.
		if trial%7 == 0 {
			db.BuildIndexes()
			cp2, err := CompileProgram(prog, cost.NewCatalog(db))
			if err != nil {
				t.Fatalf("trial %d: compile(full catalog): %v", trial, err)
			}
			got2, err := cp2.Eval(db)
			if err != nil {
				t.Fatalf("trial %d: eval(full catalog): %v", trial, err)
			}
			diffDatabases(t, fmt.Sprintf("trial %d (full catalog)\n%s", trial, prog), got2, want)
		}
	}
}
