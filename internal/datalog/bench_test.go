package datalog

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Warm-path evaluation benchmarks: the query is fixed, the database is
// frozen, and the plan (for the compiled routes) is built once outside the
// loop — the serving engine's steady state. "interp" is the retained
// tuple-at-a-time interpreter, the baseline the compiled executor replaces.

func benchEvalRoutes(b *testing.B, db *storage.Database, q *cq.Query) {
	b.Helper()
	db.BuildIndexes()
	plan := Compile(q, cost.NewCatalog(db))
	workers := runtime.GOMAXPROCS(0)
	b.Run("interp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			EvalQueryInterp(db, q)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan.Eval(db)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan.EvalParallel(db, workers)
		}
	})
	b.Run("cold_compile", func(b *testing.B) {
		b.ReportAllocs()
		cat := cost.NewRowCatalog(db)
		for i := 0; i < b.N; i++ {
			Compile(q, cat).Eval(db)
		}
	})
}

// BenchmarkEvalChain is the canonical indexed-join workload: a length-5
// chain over distinct binary predicates with selective joins (fanout ≈ 1),
// so the inner join loop — not answer materialisation — dominates.
func BenchmarkEvalChain(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	db := workload.ChainDatabase(rng, 5, true, 2000, 2000)
	benchEvalRoutes(b, db, workload.ChainQuery(5, true))
}

// BenchmarkEvalPointLookup anchors the chain at a constant — the shape a
// parameterized point-query stream produces, all index probes.
func BenchmarkEvalPointLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(55))
	db := workload.ChainDatabase(rng, 6, true, 5000, 4000)
	q := workload.ChainQuery(6, true)
	q.Body[0].Args[0] = cq.Const("c0")
	q.Head.Args = q.Head.Args[1:]
	benchEvalRoutes(b, db, q)
}

// BenchmarkEvalComparison filters a chain early: the compiled plan checks
// X0 < X1 at depth 0 where the interpreter re-checks it per leaf binding.
func BenchmarkEvalComparison(b *testing.B) {
	rng := rand.New(rand.NewSource(56))
	db := workload.ChainDatabase(rng, 4, true, 1500, 1500)
	q := workload.ChainQuery(4, true)
	q.AddComparison(cq.NewComparison(cq.Var("X0"), cq.Lt, cq.Var("X1")))
	benchEvalRoutes(b, db, q)
}

// BenchmarkEvalNeedle is a selective chain (fanout < 1): almost all join
// paths die before the leaf and the answer set is tiny, so the measurement
// isolates the inner join loop — per-candidate allocation and binding
// cost — from answer materialisation.
func BenchmarkEvalNeedle(b *testing.B) {
	rng := rand.New(rand.NewSource(57))
	db := workload.ChainDatabase(rng, 5, true, 2000, 4000)
	benchEvalRoutes(b, db, workload.ChainQuery(5, true))
}

// BenchmarkEvalStar joins four rays around a shared centre variable.
func BenchmarkEvalStar(b *testing.B) {
	rng := rand.New(rand.NewSource(52))
	preds := []string{"p1", "p2", "p3", "p4"}
	db := workload.RandomDatabase(rng, preds, 2, 1200, 1500)
	benchEvalRoutes(b, db, workload.StarQuery(4, true))
}

// BenchmarkEvalDontCare is the projection-pushdown shape from the F7
// ablation: wide tuples whose trailing columns are don't-care.
func BenchmarkEvalDontCare(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	db := storage.NewDatabase()
	for i := 0; i < 1500; i++ {
		db.Insert("v", storage.Tuple{
			fmt.Sprint(rng.Intn(6)), fmt.Sprint(rng.Intn(7)),
			fmt.Sprint(rng.Intn(5)), fmt.Sprint(i),
		})
	}
	q := cq.MustParseQuery("q(X0,X3) :- v(X0,X1,F0,F1), v(F2,X1,X2,F3), v(F4,F5,X2,X3)")
	benchEvalRoutes(b, db, q)
}

// BenchmarkEvalDisconnected is the decomposition shape: a cross product of
// three independent components.
func BenchmarkEvalDisconnected(b *testing.B) {
	rng := rand.New(rand.NewSource(54))
	db := storage.NewDatabase()
	for i := 0; i < 600; i++ {
		db.Insert("v1", storage.Tuple{fmt.Sprint(rng.Intn(600))})
		db.Insert("v2", storage.Tuple{fmt.Sprint(rng.Intn(600))})
		db.Insert("v3", storage.Tuple{fmt.Sprint(rng.Intn(600))})
	}
	benchEvalRoutes(b, db, cq.MustParseQuery("q(X) :- v1(X), v2(A), v3(B)"))
}
