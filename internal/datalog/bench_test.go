package datalog

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Warm-path evaluation benchmarks: the query is fixed, the database is
// frozen, and the plan (for the compiled routes) is built once outside the
// loop — the serving engine's steady state. "interp" is the retained
// tuple-at-a-time interpreter, the baseline the compiled executor replaces.

func benchEvalRoutes(b *testing.B, db *storage.Database, q *cq.Query) {
	b.Helper()
	db.BuildIndexes()
	plan := Compile(q, cost.NewCatalog(db))
	workers := runtime.GOMAXPROCS(0)
	b.Run("interp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			EvalQueryInterp(db, q)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan.Eval(db)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan.EvalParallel(db, workers)
		}
	})
	b.Run("cold_compile", func(b *testing.B) {
		b.ReportAllocs()
		cat := cost.NewRowCatalog(db)
		for i := 0; i < b.N; i++ {
			Compile(q, cat).Eval(db)
		}
	})
}

// BenchmarkEvalChain is the canonical indexed-join workload: a length-5
// chain over distinct binary predicates with selective joins (fanout ≈ 1),
// so the inner join loop — not answer materialisation — dominates.
func BenchmarkEvalChain(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	db := workload.ChainDatabase(rng, 5, true, 2000, 2000)
	benchEvalRoutes(b, db, workload.ChainQuery(5, true))
}

// BenchmarkEvalPointLookup anchors the chain at a constant — the shape a
// parameterized point-query stream produces, all index probes.
func BenchmarkEvalPointLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(55))
	db := workload.ChainDatabase(rng, 6, true, 5000, 4000)
	q := workload.ChainQuery(6, true)
	q.Body[0].Args[0] = cq.Const("c0")
	q.Head.Args = q.Head.Args[1:]
	benchEvalRoutes(b, db, q)
}

// BenchmarkEvalComparison filters a chain early: the compiled plan checks
// X0 < X1 at depth 0 where the interpreter re-checks it per leaf binding.
func BenchmarkEvalComparison(b *testing.B) {
	rng := rand.New(rand.NewSource(56))
	db := workload.ChainDatabase(rng, 4, true, 1500, 1500)
	q := workload.ChainQuery(4, true)
	q.AddComparison(cq.NewComparison(cq.Var("X0"), cq.Lt, cq.Var("X1")))
	benchEvalRoutes(b, db, q)
}

// BenchmarkEvalNeedle is a selective chain (fanout < 1): almost all join
// paths die before the leaf and the answer set is tiny, so the measurement
// isolates the inner join loop — per-candidate allocation and binding
// cost — from answer materialisation.
func BenchmarkEvalNeedle(b *testing.B) {
	rng := rand.New(rand.NewSource(57))
	db := workload.ChainDatabase(rng, 5, true, 2000, 4000)
	benchEvalRoutes(b, db, workload.ChainQuery(5, true))
}

// BenchmarkEvalStar joins four rays around a shared centre variable.
func BenchmarkEvalStar(b *testing.B) {
	rng := rand.New(rand.NewSource(52))
	preds := []string{"p1", "p2", "p3", "p4"}
	db := workload.RandomDatabase(rng, preds, 2, 1200, 1500)
	benchEvalRoutes(b, db, workload.StarQuery(4, true))
}

// BenchmarkEvalDontCare is the projection-pushdown shape from the F7
// ablation: wide tuples whose trailing columns are don't-care.
func BenchmarkEvalDontCare(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	db := storage.NewDatabase()
	for i := 0; i < 1500; i++ {
		db.Insert("v", storage.Tuple{
			fmt.Sprint(rng.Intn(6)), fmt.Sprint(rng.Intn(7)),
			fmt.Sprint(rng.Intn(5)), fmt.Sprint(i),
		})
	}
	q := cq.MustParseQuery("q(X0,X3) :- v(X0,X1,F0,F1), v(F2,X1,X2,F3), v(F4,F5,X2,X3)")
	benchEvalRoutes(b, db, q)
}

// BenchmarkEvalDisconnected is the decomposition shape: a cross product of
// three independent components.
func BenchmarkEvalDisconnected(b *testing.B) {
	rng := rand.New(rand.NewSource(54))
	db := storage.NewDatabase()
	for i := 0; i < 600; i++ {
		db.Insert("v1", storage.Tuple{fmt.Sprint(rng.Intn(600))})
		db.Insert("v2", storage.Tuple{fmt.Sprint(rng.Intn(600))})
		db.Insert("v3", storage.Tuple{fmt.Sprint(rng.Intn(600))})
	}
	benchEvalRoutes(b, db, cq.MustParseQuery("q(X) :- v1(X), v2(A), v3(B)"))
}

// Fixpoint benchmarks: interpretive Program.EvalInterp vs the compiled
// semi-naive executor on recursive workloads. "warm" reuses a precompiled
// CompiledProgram (the engine's steady state); "cold" pays compilation per
// op; "warm_rel" is the serving path (EvalRelation — no result-database
// clone).

func benchProgramRoutes(b *testing.B, db *storage.Database, p *Program, answerPred string) {
	b.Helper()
	db.BuildIndexes()
	cp, err := CompileProgram(p, cost.NewCatalog(db))
	if err != nil {
		b.Fatal(err)
	}
	rowCat := cost.NewRowCatalog(db)
	b.Run("interp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.EvalInterp(db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cp.Eval(db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm_rel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := cp.EvalRelation(db, answerPred, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold_compile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cp2, err := CompileProgram(p, rowCat)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cp2.Eval(db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// tcProgram is the linear transitive closure.
func tcProgram() *Program {
	return NewProgram(
		RuleFromQuery(mustQ("tc(X,Y) :- e(X,Y)")),
		RuleFromQuery(mustQ("tc(X,Z) :- tc(X,Y), e(Y,Z)")),
	)
}

// BenchmarkProgramTCChain closes a 120-node chain with random skip edges:
// many semi-naive rounds, deltas shrinking as paths lengthen.
func BenchmarkProgramTCChain(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	db := storage.NewDatabase()
	for i := 0; i < 120; i++ {
		db.Insert("e", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i + 1)})
	}
	for i := 0; i < 40; i++ {
		from := rng.Intn(120)
		db.Insert("e", storage.Tuple{fmt.Sprint(from), fmt.Sprint(from + 1 + rng.Intn(5))})
	}
	benchProgramRoutes(b, db, tcProgram(), "tc")
}

// BenchmarkProgramTCCycle closes a cyclic random graph: every node reaches
// most others, so the fixpoint is dense and dedup-heavy.
func BenchmarkProgramTCCycle(b *testing.B) {
	rng := rand.New(rand.NewSource(62))
	db := storage.NewDatabase()
	const n = 60
	for i := 0; i < n; i++ {
		db.Insert("e", storage.Tuple{fmt.Sprint(i), fmt.Sprint((i + 1) % n)})
	}
	for i := 0; i < 2*n; i++ {
		db.Insert("e", storage.Tuple{fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n))})
	}
	benchProgramRoutes(b, db, tcProgram(), "tc")
}

// BenchmarkProgramInverseRules is the inverse-rules serving shape: a
// Skolemising program reconstructing base relations from view extents, the
// workload Program.Eval runs under the engine's InverseRules strategy.
func BenchmarkProgramInverseRules(b *testing.B) {
	rng := rand.New(rand.NewSource(63))
	db := storage.NewDatabase()
	for i := 0; i < 2000; i++ {
		a, c := fmt.Sprint(rng.Intn(800)), fmt.Sprint(rng.Intn(800))
		db.Insert("v1", storage.Tuple{a, c})
		db.Insert("v2", storage.Tuple{fmt.Sprint(rng.Intn(800)), fmt.Sprint(rng.Intn(800))})
	}
	// Inverse rules of v1(A,B) :- r(A,C), s(C,B); v2(A,B) :- r(A,B),
	// plus the query rule q(X,Y) :- r(X,Z), s(Z,Y).
	f := &Skolem{Name: "f_v1_C", Args: []string{"A", "B"}}
	v1body := []cq.Atom{cq.MustParseQuery("v(A,B) :- v1(A,B)").Body[0]}
	v2body := []cq.Atom{cq.MustParseQuery("v(A,B) :- v2(A,B)").Body[0]}
	p := NewProgram(
		Rule{HeadPred: "r", Head: []HeadTerm{{Term: cq.Var("A")}, {Skolem: f}}, Body: v1body},
		Rule{HeadPred: "s", Head: []HeadTerm{{Skolem: f}, {Term: cq.Var("B")}}, Body: v1body},
		Rule{HeadPred: "r", Head: []HeadTerm{{Term: cq.Var("A")}, {Term: cq.Var("B")}}, Body: v2body},
		RuleFromQuery(mustQ("q(X,Y) :- r(X,Z), s(Z,Y)")),
	)
	benchProgramRoutes(b, db, p, "q")
}
