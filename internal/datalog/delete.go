package datalog

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/storage"
)

// Non-monotone incremental maintenance: deletions and mixed update batches.
//
// Inserting into a materialized program is monotone — every new derivation
// is found by a delta plan and merged (ivm.go). Deleting is not: a derived
// tuple must disappear exactly when its *last* derivation does, which set
// semantics cannot see. Two classical algorithms close the gap, selected
// per compiled program:
//
//   - counting, for flat programs (no rule body mentions a derived
//     predicate — the shape of materialized view sets): every derived tuple
//     carries its exact derivation multiplicity. Rules are re-compiled into
//     counting variants that keep every body variable, so one emission is
//     one distinct derivation; delta variants make the per-batch counts
//     exact by first-changed-occurrence attribution (a derivation touching
//     k changed tuples is counted once, at its first changed body
//     occurrence). A deletion decrements, and the tuple is retracted when
//     its count reaches zero — no re-derivation queries at all.
//
//   - DRed (delete-and-rederive), for everything else (recursive programs,
//     multi-level rules such as inverse-rules output, and programs whose
//     derived predicates coincide with base relations): an over-deletion
//     fixpoint runs the same delta variants MaintainDelta uses, over the
//     still-intact pre-delete database, marking everything that *might*
//     have lost support; the marked tuples are physically removed; then a
//     bounded semi-naive pass re-derives the survivors — round 0 runs each
//     rule rooted at its own head (fed by the over-deleted set), later
//     rounds propagate re-insertions through the ordinary IDB delta
//     variants until quiescence.
//
// ApplyUpdates is the single entry point: a mixed batch (deletes applied
// before inserts) that is atomic — every mutation is recorded in an
// operation journal and rolled back on error or panic, so a canceled or
// budget-tripped batch leaves the database exactly as it was.

// UpdateResult reports one applied mixed batch: what actually changed in
// the base relations and in the derived extents. Replaying the result into
// a mirror must apply retractions before derivations (an insert in the same
// batch may legitimately re-derive a tuple the delete phase retracted).
type UpdateResult struct {
	// BaseInserted / BaseDeleted are the base tuples that were actually
	// fresh / actually present, per predicate.
	BaseInserted map[string][]storage.Tuple
	BaseDeleted  map[string][]storage.Tuple
	// Derived / Retracted are the net derived-extent changes.
	Derived   map[string][]storage.Tuple
	Retracted map[string][]storage.Tuple
	Stats     FixpointStats
}

// MaintState is the per-maintained-database deletion state of a compiled
// program: the baseline fact keys (derived predicates seeded from
// same-named base relations at materialization — their support is the
// relation itself and can never be deleted), and, for flat programs, the
// lazily built derivation counts. Build one with NewMaintState over the
// *pre-materialization* base database and pass it to every ApplyUpdates
// call against the same maintained database. A nil state is accepted
// (empty baseline, counts rebuilt per call) but wasteful for flat programs.
type MaintState struct {
	baseline map[string]map[string]bool
	// counts maps derived predicate -> tuple key -> exact derivation count
	// (baseline facts contribute one). Built on the first deletion by one
	// counting enumeration of every rule; nil until then.
	counts map[string]map[string]int
	ready  bool
}

// NewMaintState captures the deletion state of a database about to be
// materialized: the facts of every derived predicate that already exist as
// base facts. Call it on the base database before CompiledProgram.Eval.
func (cp *CompiledProgram) NewMaintState(base *storage.Database) *MaintState {
	st := &MaintState{}
	for pred, arity := range cp.idbArity {
		rel := base.Relation(pred)
		if rel == nil || rel.Arity() != arity || rel.Len() == 0 {
			continue
		}
		keys := make(map[string]bool, rel.Len())
		for _, t := range rel.Tuples() {
			keys[t.Key()] = true
		}
		if st.baseline == nil {
			st.baseline = make(map[string]map[string]bool)
		}
		st.baseline[pred] = keys
	}
	return st
}

// CountsReady reports whether the flat-program derivation counts have been
// built (they are built lazily, on the first deletion).
func (st *MaintState) CountsReady() bool { return st != nil && st.ready }

// BaselineKeys exports the deletion baseline for persistence: per derived
// predicate, the keys (Tuple.Key form) of facts that pre-existed as base
// facts when the program was materialized. The derivation counts are
// deliberately not exported — they are a cache rebuilt lazily from the
// database on the first deletion, so a state restored from these keys is
// exactly as capable as the original.
func (st *MaintState) BaselineKeys() map[string][]string {
	if st == nil || st.baseline == nil {
		return nil
	}
	out := make(map[string][]string, len(st.baseline))
	for pred, keys := range st.baseline {
		ks := make([]string, 0, len(keys))
		for k := range keys {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		out[pred] = ks
	}
	return out
}

// RestoreMaintState rebuilds the deletion state a NewMaintState call
// captured, from keys previously exported by BaselineKeys — the recovery
// path, where the pre-materialization base database no longer exists but
// its view-named facts were persisted. Keys naming predicates the program
// does not derive are dropped.
func (cp *CompiledProgram) RestoreMaintState(keys map[string][]string) *MaintState {
	st := &MaintState{}
	for pred, ks := range keys {
		if _, ok := cp.idbArity[pred]; !ok || len(ks) == 0 {
			continue
		}
		m := make(map[string]bool, len(ks))
		for _, k := range ks {
			m[k] = true
		}
		if st.baseline == nil {
			st.baseline = make(map[string]map[string]bool)
		}
		st.baseline[pred] = m
	}
	return st
}

func (st *MaintState) isBaseline(pred, key string) bool {
	if st == nil || st.baseline == nil {
		return false
	}
	return st.baseline[pred][key]
}

// initCounts builds the exact derivation counts by one counting enumeration
// of every rule over the current database — the lazy, read-only
// initialization paid on the first deletion.
func (st *MaintState) initCounts(cp *CompiledProgram, db *storage.Database, workers int, gs *guardState) error {
	res, err := cp.runCountVariants(db, nil, workers, gs)
	if err != nil {
		return err
	}
	st.counts = make(map[string]map[string]int, len(cp.idbArity))
	for pred := range cp.idbArity {
		st.counts[pred] = make(map[string]int)
	}
	for pred, m := range res {
		cm := st.counts[pred]
		for key, ct := range m {
			cm[key] += ct.n
		}
	}
	for pred, keys := range st.baseline {
		cm := st.counts[pred]
		if cm == nil {
			continue
		}
		for key := range keys {
			cm[key]++
		}
	}
	st.ready = true
	return nil
}

// commit applies a batch's count changes after every mutation succeeded.
func (st *MaintState) commit(decs, incs map[string]map[string]*countedTuple) {
	for pred, m := range decs {
		cm := st.counts[pred]
		if cm == nil {
			continue
		}
		for key, ct := range m {
			if n := cm[key] - ct.n; n > 0 {
				cm[key] = n
			} else {
				delete(cm, key)
			}
		}
	}
	for pred, m := range incs {
		cm := st.counts[pred]
		if cm == nil {
			cm = make(map[string]int)
			st.counts[pred] = cm
		}
		for key, ct := range m {
			cm[key] += ct.n
		}
	}
}

// ---- counting plan variants ----

// recipeCol rebuilds one column of a body occurrence from the frame.
type recipeCol struct {
	slot     int // -1 → constant
	constVal string
}

// occRecipe rebuilds the tuple one body occurrence matched — possible in a
// counting variant because every body variable holds a slot.
type occRecipe struct {
	pred string
	cols []recipeCol
}

// countVariant is a rule compiled for derivation counting: like ruleVariant
// but with every body variable kept, so the executor emits once per
// distinct body assignment — no don't-care elision, no existential
// early-exit pruning, no step dedup. prior holds the rebuild recipes of the
// body occurrences strictly before deltaPos (in body order): the
// first-changed-occurrence filter rejects a match whose earlier occurrence
// already used a changed tuple, making the batch delta an exact multiset.
type countVariant struct {
	deltaPos  int
	deltaPred string
	steps     []compiledStep
	head      []ruleHeadOp
	numSlots  int
	unsafeVar string
	empty     bool
	prior     []occRecipe
}

// supportVariant is a rule compiled for DRed re-derivation: the rule rooted
// at its own head atom, fed by the over-deleted tuples (rooted == true), or
// a marker to fall back to the filtered full variant when the head contains
// Skolem terms and cannot be expressed as a body atom.
type supportVariant struct {
	rooted bool
	v      ruleVariant
}

// compileDeletionSupport lowers the deletion-side plans of an IVM program:
// counting variants for flat programs, head-rooted support variants for the
// DRed re-derivation pass otherwise.
func (cp *CompiledProgram) compileDeletionSupport(p *Program, cat *cost.Catalog) {
	cp.flat = true
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if _, idb := cp.idbArity[a.Pred]; idb {
				cp.flat = false
			}
		}
	}
	if cp.flat {
		cp.countFull = make([]countVariant, len(p.Rules))
		cp.countDeltas = make([][]countVariant, len(p.Rules))
		for i, r := range p.Rules {
			cp.countFull[i] = compileCountVariant(r, -1, cat)
			cvs := make([]countVariant, len(r.Body))
			for pos := range r.Body {
				cvs[pos] = compileCountVariant(r, pos, cat)
			}
			cp.countDeltas[i] = cvs
		}
		return
	}
	cp.supports = make([]supportVariant, len(p.Rules))
	for i, r := range p.Rules {
		cp.supports[i] = compileSupportVariant(r, cat)
	}
}

// compileCountVariant lowers one rule into a counting variant: the same
// join-order and access-path machinery as compileRuleVariant, with every
// body variable kept in the frame.
func compileCountVariant(r Rule, deltaPos int, cat *cost.Catalog) countVariant {
	v := countVariant{deltaPos: deltaPos}
	if deltaPos >= 0 {
		v.deltaPred = r.Body[deltaPos].Pred
	}
	slots := make(map[string]int)
	slotOf := func(name string) int {
		s, ok := slots[name]
		if !ok {
			s = v.numSlots
			slots[name] = s
			v.numSlots++
		}
		return s
	}
	keep := func(cq.Term) bool { return true }

	var pending []cq.Comparison
	for _, c := range r.Comparisons {
		if c.Left.IsConst() && c.Right.IsConst() {
			if !c.Op.EvalConst(c.Left, c.Right) {
				v.empty = true
			}
			continue
		}
		pending = append(pending, c)
	}

	bound := make(map[string]bool)
	remaining := make([]int, 0, len(r.Body))
	for i := range r.Body {
		if i != deltaPos {
			remaining = append(remaining, i)
		}
	}
	lower := func(idx int) {
		step := lowerAtom(r.Body[idx], bound, slotOf, keep, cat)
		pending = attachComparisons(&step, pending, bound, slots)
		v.steps = append(v.steps, step)
	}
	if deltaPos >= 0 {
		lower(deltaPos)
	}
	for len(remaining) > 0 {
		next := chooseNext(r.Body, remaining, bound, cat)
		lower(next)
		remaining = removeIdx(remaining, next)
	}
	if len(pending) > 0 {
		v.empty = true
	}

	markUnsafe := func(name string) {
		if v.unsafeVar == "" {
			v.unsafeVar = name
		}
	}
	v.head = make([]ruleHeadOp, len(r.Head))
	for i, h := range r.Head {
		switch {
		case h.Skolem != nil:
			cs := &compiledSkolem{name: h.Skolem.Name, argSlots: make([]int, len(h.Skolem.Args))}
			for j, a := range h.Skolem.Args {
				if !bound[a] {
					markUnsafe(a)
					continue
				}
				cs.argSlots[j] = slots[a]
			}
			v.head[i] = ruleHeadOp{skolem: cs, slot: -1}
		case h.Term.IsConst():
			v.head[i] = ruleHeadOp{slot: -1, constVal: h.Term.Lex}
		default:
			if !bound[h.Term.Lex] {
				markUnsafe(h.Term.Lex)
				v.head[i] = ruleHeadOp{slot: -1}
				continue
			}
			v.head[i] = ruleHeadOp{slot: slots[h.Term.Lex]}
		}
	}

	for pos := 0; pos < deltaPos; pos++ {
		a := r.Body[pos]
		rc := occRecipe{pred: a.Pred, cols: make([]recipeCol, len(a.Args))}
		for i, t := range a.Args {
			if t.IsVar() {
				rc.cols[i] = recipeCol{slot: slots[t.Lex]}
			} else {
				rc.cols[i] = recipeCol{slot: -1, constVal: t.Lex}
			}
		}
		v.prior = append(v.prior, rc)
	}
	return v
}

// compileSupportVariant lowers the DRed round-0 re-derivation plan of one
// rule: the rule with its own head prepended as the root body atom, so the
// over-deleted set feeds the root and the remaining atoms check whether a
// derivation survives in the post-removal database.
func compileSupportVariant(r Rule, cat *cost.Catalog) supportVariant {
	args := make([]cq.Term, len(r.Head))
	for i, h := range r.Head {
		if h.Skolem != nil {
			return supportVariant{} // head not expressible as an atom: filtered full variant
		}
		args[i] = h.Term
	}
	sr := Rule{
		HeadPred:    r.HeadPred,
		Head:        r.Head,
		Body:        append([]cq.Atom{{Pred: r.HeadPred, Args: args}}, r.Body...),
		Comparisons: r.Comparisons,
	}
	return supportVariant{rooted: true, v: compileRuleVariant(sr, 0, cat)}
}

// ---- counting execution ----

// countedTuple is one derived tuple with the derivations a counting run
// attributed to it.
type countedTuple struct {
	t storage.Tuple
	n int
}

// runCountVariants enumerates derivation counts per derived tuple. With
// batch == nil it runs every rule's full counting variant — the exact
// counts of the current database. With a batch it runs the delta counting
// variants whose root predicate changed, over db, counting only matches
// whose earlier body occurrences avoid the batch (first-changed-occurrence
// attribution): over the post-insert database this is the exact count
// increment of the batch, over the pre-delete database the exact decrement.
func (cp *CompiledProgram) runCountVariants(db *storage.Database, batch map[string][]storage.Tuple, workers int, gs *guardState) (map[string]map[string]*countedTuple, error) {
	type countTask struct {
		pred  string
		v     *countVariant
		delta []storage.Tuple
	}
	var tasks []countTask
	if batch == nil {
		for i := range cp.rules {
			if v := &cp.countFull[i]; !v.empty {
				tasks = append(tasks, countTask{pred: cp.rules[i].headPred, v: v})
			}
		}
	} else {
		for i := range cp.rules {
			for j := range cp.countDeltas[i] {
				v := &cp.countDeltas[i][j]
				if v.empty {
					continue
				}
				if d := batch[v.deltaPred]; len(d) > 0 {
					tasks = append(tasks, countTask{pred: cp.rules[i].headPred, v: v, delta: d})
				}
			}
		}
	}
	if len(tasks) == 0 {
		return nil, nil
	}
	var batchKeys map[string]map[string]bool
	if batch != nil {
		batchKeys = make(map[string]map[string]bool, len(batch))
		for pred, ts := range batch {
			ks := make(map[string]bool, len(ts))
			for _, t := range ts {
				ks[t.Key()] = true
			}
			batchKeys[pred] = ks
		}
	}
	results := make([]map[string]*countedTuple, len(tasks))
	errs := make([]error, len(tasks))
	runTasks(len(tasks), workers, func(i int) {
		t := tasks[i]
		results[i], errs[i] = cp.countVariantRun(db, t.v, t.delta, batchKeys, gs.child())
	})
	if err := gs.failure(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := make(map[string]map[string]*countedTuple)
	for i, res := range results {
		if len(res) == 0 {
			continue
		}
		dst := merged[tasks[i].pred]
		if dst == nil {
			merged[tasks[i].pred] = res
			continue
		}
		for key, ct := range res {
			if prev := dst[key]; prev != nil {
				prev.n += ct.n
			} else {
				dst[key] = ct
			}
		}
	}
	return merged, nil
}

// countVariantRun enumerates one counting variant's matches, returning the
// per-tuple derivation counts it attributes.
func (cp *CompiledProgram) countVariantRun(db *storage.Database, v *countVariant, delta []storage.Tuple, batchKeys map[string]map[string]bool, g *evalGuard) (map[string]*countedTuple, error) {
	srcs := make([]stepSrc, len(v.steps))
	for j := range v.steps {
		s := &v.steps[j]
		if j == 0 && delta != nil {
			srcs[j].tuples = delta
			continue
		}
		rel := db.Relation(s.pred)
		if rel == nil {
			continue
		}
		srcs[j].tuples = rel.Tuples()
		if s.probeCol >= 0 {
			if idx, ok := rel.ColumnIndex(s.probeCol); ok {
				srcs[j].idx = idx
			}
		}
	}
	// Only earlier occurrences of predicates actually in the batch can
	// steal attribution; resolve those checks once.
	type priorCheck struct {
		keys map[string]bool
		cols []recipeCol
	}
	var checks []priorCheck
	for _, rc := range v.prior {
		if ks := batchKeys[rc.pred]; ks != nil {
			checks = append(checks, priorCheck{keys: ks, cols: rc.cols})
		}
	}
	comp := compiledComponent{steps: v.steps}
	frame := make([]string, v.numSlots)
	out := make(map[string]*countedTuple)
	var keyBuf []byte
	var evalErr error
	joinSteps(&comp, srcs, 0, frame, g, func(frame []string) bool {
		if v.unsafeVar != "" {
			evalErr = fmt.Errorf("datalog: unbound head variable %s", v.unsafeVar)
			return false
		}
		for _, pc := range checks {
			keyBuf = keyBuf[:0]
			for i, c := range pc.cols {
				if i > 0 {
					keyBuf = append(keyBuf, 0x1f)
				}
				if c.slot >= 0 {
					keyBuf = append(keyBuf, frame[c.slot]...)
				} else {
					keyBuf = append(keyBuf, c.constVal...)
				}
			}
			if pc.keys[string(keyBuf)] {
				return true // counted at the earlier changed occurrence
			}
		}
		tuple := buildHeadTuple(v.head, frame)
		k := tuple.Key()
		if ct := out[k]; ct != nil {
			ct.n++
		} else {
			out[k] = &countedTuple{t: tuple, n: 1}
		}
		return true
	})
	return out, evalErr
}

// ---- the update journal ----

// updateJournal is the rollback log of one mixed batch. The delete phase
// records each successful removal; the insert phase — always last, and
// insert-only — is covered by one length snapshot per relation
// (markInserts), since swap-filled removals never happen after it.
// rollback restores the database exactly: truncate the inserts, drop
// batch-created relations, re-insert the removals.
type updateJournal struct {
	db      *storage.Database
	removed []journalRemoval
	marks   map[string]int
}

type journalRemoval struct {
	pred string
	t    storage.Tuple
}

func (j *updateJournal) remove(rel *storage.Relation, pred string, t storage.Tuple) bool {
	if rel == nil || !rel.Remove(t) {
		return false
	}
	j.removed = append(j.removed, journalRemoval{pred: pred, t: t})
	return true
}

// markInserts snapshots every relation's length at the start of the
// insert-only tail of the batch.
func (j *updateJournal) markInserts() {
	j.marks = make(map[string]int)
	for _, pred := range j.db.Predicates() {
		j.marks[pred] = j.db.Relation(pred).Len()
	}
}

func (j *updateJournal) rollback() {
	if j.marks != nil {
		for _, pred := range j.db.Predicates() {
			if n, ok := j.marks[pred]; ok {
				j.db.Relation(pred).TruncateTo(n)
			} else {
				j.db.Drop(pred)
			}
		}
	}
	for i := len(j.removed) - 1; i >= 0; i-- {
		op := j.removed[i]
		if rel := j.db.Relation(op.pred); rel != nil {
			rel.Insert(op.t)
		}
	}
}

// ---- mixed batch application ----

// ApplyUpdates applies a mixed batch — deletions, then insertions — to a
// maintained database, keeping every derived extent exact: counting for
// flat programs, DRed for the rest (see the package comment above). The
// batch is atomic: on any error the database is rolled back to its
// pre-batch state (a panic rolls back, then re-panics). Predicates derived
// by the program are rejected on both sides; deletions of absent tuples
// and insertions of present ones are no-ops. st carries the deletion state
// across batches (NewMaintState); nil is accepted but rebuilds flat counts
// every call.
func (cp *CompiledProgram) ApplyUpdates(db *storage.Database, st *MaintState, inserts, deletes map[string][]storage.Tuple, workers int) (*UpdateResult, error) {
	return cp.applyUpdates(db, st, inserts, deletes, workers, nil, Limits{})
}

// ApplyUpdatesCtx is ApplyUpdates under a context and limits. Unlike the
// insert-only Ctx entry points, cancellation or a tripped budget never
// leaves a partial state: the journal rolls the batch back before the
// error returns.
func (cp *CompiledProgram) ApplyUpdatesCtx(ctx context.Context, db *storage.Database, st *MaintState, inserts, deletes map[string][]storage.Tuple, workers int, lim Limits) (*UpdateResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, ErrCanceled
	}
	return cp.applyUpdates(db, st, inserts, deletes, workers, fixpointGuard(ctx, lim), lim)
}

func (cp *CompiledProgram) applyUpdates(db *storage.Database, st *MaintState, inserts, deletes map[string][]storage.Tuple, workers int, gs *guardState, lim Limits) (res *UpdateResult, err error) {
	if !cp.ivm {
		return nil, ErrNotMaintenance
	}
	if err := cp.validateDeletes(db, deletes); err != nil {
		return nil, err
	}
	if err := cp.validateInserts(db, inserts); err != nil {
		return nil, err
	}

	// Effective deletions: present tuples only, deduplicated per predicate.
	delEff := make(map[string][]storage.Tuple)
	for pred, tuples := range deletes {
		rel := db.Relation(pred)
		if rel == nil {
			continue
		}
		dedup := make(map[string]bool, len(tuples))
		for _, t := range tuples {
			k := t.Key()
			if dedup[k] || !rel.ContainsKey(k) {
				continue
			}
			dedup[k] = true
			delEff[pred] = append(delEff[pred], t)
		}
	}

	j := &updateJournal{db: db}
	defer func() {
		if r := recover(); r != nil {
			j.rollback()
			panic(r)
		}
	}()

	// Once counts exist they must be maintained by every batch; before the
	// first deletion, insert-only batches keep the plain monotone path.
	counting := cp.flat && (st.CountsReady() || len(delEff) > 0)
	if !counting && len(delEff) == 0 {
		j.markInserts()
		fresh, derived, stats, err := cp.applyInserts(db, inserts, workers, gs, lim)
		if err != nil {
			j.rollback()
			return nil, err
		}
		return &UpdateResult{BaseInserted: fresh, Derived: derived, Stats: stats}, nil
	}

	if st == nil {
		st = &MaintState{}
	}
	if cp.flat {
		res, err = cp.applyCounting(db, st, j, inserts, delEff, workers, gs, lim)
	} else {
		res, err = cp.applyDRed(db, st, j, inserts, delEff, workers, gs, lim)
	}
	if err != nil {
		j.rollback()
		return nil, err
	}
	res.BaseDeleted = delEff
	return res, nil
}

// validateDeletes rejects deletions into derived relations and tuples of
// the wrong width — before anything is mutated.
func (cp *CompiledProgram) validateDeletes(db *storage.Database, deletes map[string][]storage.Tuple) error {
	for pred, tuples := range deletes {
		if _, idb := cp.idbArity[pred]; idb {
			return fmt.Errorf("datalog: cannot delete from derived relation %s", pred)
		}
		rel := db.Relation(pred)
		if rel == nil {
			continue // deleting from a missing relation is a no-op
		}
		for _, t := range tuples {
			if len(t) != rel.Arity() {
				return &storage.ArityError{Pred: pred, Want: rel.Arity(), Got: len(t)}
			}
		}
	}
	return nil
}

// validateInserts is the schema validation applyInserts performs, shared so
// mixed batches can validate both sides before the delete phase mutates.
func (cp *CompiledProgram) validateInserts(db *storage.Database, updates map[string][]storage.Tuple) error {
	for pred, tuples := range updates {
		if _, idb := cp.idbArity[pred]; idb {
			return fmt.Errorf("datalog: cannot insert into derived relation %s", pred)
		}
		want := -1
		if rel := db.Relation(pred); rel != nil {
			want = rel.Arity()
		}
		for _, t := range tuples {
			if want < 0 {
				want = len(t)
			}
			if len(t) != want {
				return &storage.ArityError{Pred: pred, Want: want, Got: len(t)}
			}
		}
	}
	return nil
}

// applyCounting is the flat-program batch path: exact decrements over the
// pre-delete database, retraction at count zero, then insertion and exact
// increments over the post-insert database. Counts are committed only
// after every mutation succeeded, so a rolled-back batch never skews them.
func (cp *CompiledProgram) applyCounting(db *storage.Database, st *MaintState, j *updateJournal, inserts, delEff map[string][]storage.Tuple, workers int, gs *guardState, lim Limits) (*UpdateResult, error) {
	res := &UpdateResult{
		Derived:   make(map[string][]storage.Tuple),
		Retracted: make(map[string][]storage.Tuple),
	}
	if !st.ready {
		if err := st.initCounts(cp, db, workers, gs); err != nil {
			return nil, err
		}
	}
	var decs map[string]map[string]*countedTuple
	if len(delEff) > 0 {
		var err error
		decs, err = cp.runCountVariants(db, delEff, workers, gs)
		if err != nil {
			return nil, err
		}
		res.Stats.Iterations++
		for pred, tuples := range delEff {
			rel := db.Relation(pred)
			for _, t := range tuples {
				j.remove(rel, pred, t)
			}
		}
		for pred, m := range decs {
			rel := db.Relation(pred)
			for key, ct := range m {
				if st.counts[pred][key]-ct.n <= 0 && !st.isBaseline(pred, key) {
					if j.remove(rel, pred, ct.t) {
						res.Retracted[pred] = append(res.Retracted[pred], ct.t)
					}
				}
			}
		}
	}
	j.markInserts()
	fresh := make(map[string][]storage.Tuple)
	for pred, tuples := range inserts {
		if len(tuples) == 0 {
			continue
		}
		rel, err := db.Ensure(pred, len(tuples[0]))
		if err != nil {
			return nil, err
		}
		for _, t := range tuples {
			if rel.Insert(t) {
				fresh[pred] = append(fresh[pred], t)
			}
		}
	}
	res.BaseInserted = fresh
	var incs map[string]map[string]*countedTuple
	if len(fresh) > 0 {
		var err error
		incs, err = cp.runCountVariants(db, fresh, workers, gs)
		if err != nil {
			return nil, err
		}
		res.Stats.Iterations++
		for pred, m := range incs {
			rel, err := db.Ensure(pred, cp.idbArity[pred])
			if err != nil {
				return nil, err
			}
			for key, ct := range m {
				if !rel.ContainsKey(key) {
					rel.Insert(ct.t)
					res.Derived[pred] = append(res.Derived[pred], ct.t)
					res.Stats.Derived++
				}
			}
		}
	}
	if lim.MaxDerived > 0 && res.Stats.Derived > lim.MaxDerived {
		return nil, fmt.Errorf("datalog: maintenance derived more than %d tuple(s): %w", lim.MaxDerived, ErrBudgetExceeded)
	}
	st.commit(decs, incs)
	return res, nil
}

// applyDRed is the non-flat batch path: over-delete via the delta variants
// over the intact pre-delete database, remove, re-derive survivors with a
// bounded semi-naive pass, then propagate the insertions through the
// ordinary monotone machinery.
func (cp *CompiledProgram) applyDRed(db *storage.Database, st *MaintState, j *updateJournal, inserts, delEff map[string][]storage.Tuple, workers int, gs *guardState, lim Limits) (*UpdateResult, error) {
	res := &UpdateResult{Retracted: make(map[string][]storage.Tuple)}
	od, err := cp.overDelete(db, st, delEff, workers, gs, lim, &res.Stats)
	if err != nil {
		return nil, err
	}
	for pred, tuples := range delEff {
		rel := db.Relation(pred)
		for _, t := range tuples {
			j.remove(rel, pred, t)
		}
	}
	for pred, m := range od {
		rel := db.Relation(pred)
		for _, t := range m {
			j.remove(rel, pred, t)
		}
	}
	j.markInserts()
	if err := cp.rederive(db, od, workers, gs, lim, &res.Stats); err != nil {
		return nil, err
	}
	for pred, m := range od {
		for _, t := range m {
			res.Retracted[pred] = append(res.Retracted[pred], t)
		}
	}
	fresh, derived, istats, err := cp.applyInserts(db, inserts, workers, gs, lim)
	if err != nil {
		return nil, err
	}
	res.BaseInserted = fresh
	res.Derived = derived
	res.Stats.Iterations += istats.Iterations
	res.Stats.Derived += istats.Derived
	return res, nil
}

// overDelete computes the over-deleted set: the fixpoint of "some
// derivation of this present tuple uses a deleted or over-deleted tuple",
// seeded by the effective base deletions and evaluated — like every DRed
// over-approximation — against the still-intact pre-delete database.
// Baseline facts are never over-deleted: their support is the base
// relation itself, and deletions into derived predicates are rejected.
func (cp *CompiledProgram) overDelete(db *storage.Database, st *MaintState, delEff map[string][]storage.Tuple, workers int, gs *guardState, lim Limits, stats *FixpointStats) (map[string]map[string]storage.Tuple, error) {
	od := make(map[string]map[string]storage.Tuple)
	cur := delEff
	for len(cur) > 0 {
		var tasks []maintTask
		for i := range cp.rules {
			r := &cp.rules[i]
			for _, variants := range [2][]ruleVariant{r.edbDeltas, r.deltas} {
				for j := range variants {
					v := &variants[j]
					if v.empty {
						continue
					}
					if d := cur[v.deltaPred]; len(d) > 0 {
						tasks = append(tasks, maintTask{rule: r, v: v, delta: d})
					}
				}
			}
		}
		if len(tasks) == 0 {
			break
		}
		if err := gs.barrier(); err != nil {
			return nil, err
		}
		if err := checkFixpointBudget(*stats, lim); err != nil {
			return nil, err
		}
		stats.Iterations++
		bufs, err := runTaskSet(len(tasks), workers, func(i int) ([]derivedTuple, error) {
			return cp.overDeleteVariant(db, st, od, tasks[i], gs.child())
		})
		if err != nil {
			return nil, err
		}
		next := make(map[string][]storage.Tuple)
		for i, buf := range bufs {
			pred := tasks[i].rule.headPred
			m := od[pred]
			if m == nil {
				m = make(map[string]storage.Tuple)
				od[pred] = m
			}
			for _, d := range buf {
				if _, dead := m[d.key]; dead {
					continue
				}
				m[d.key] = d.t
				next[pred] = append(next[pred], d.t)
				stats.Derived++
			}
		}
		cur = next
	}
	if err := gs.failure(); err != nil {
		return nil, err
	}
	return od, nil
}

// overDeleteVariant enumerates one delta variant for the over-deletion
// fixpoint: matches feed from the round's delta, every other atom reads
// the intact database, and an emitted head counts only if it is currently
// materialized, not yet over-deleted, and not a baseline fact.
func (cp *CompiledProgram) overDeleteVariant(db *storage.Database, st *MaintState, od map[string]map[string]storage.Tuple, t maintTask, g *evalGuard) ([]derivedTuple, error) {
	headRel := db.Relation(t.rule.headPred)
	if headRel == nil {
		return nil, nil
	}
	v := t.v
	srcs := make([]stepSrc, len(v.steps))
	for j := range v.steps {
		s := &v.steps[j]
		if j == 0 {
			srcs[j].tuples = t.delta
			continue
		}
		rel := db.Relation(s.pred)
		if rel == nil {
			continue
		}
		srcs[j].tuples = rel.Tuples()
		if s.probeCol >= 0 {
			if idx, ok := rel.ColumnIndex(s.probeCol); ok {
				srcs[j].idx = idx
			}
		}
	}
	odSet := od[t.rule.headPred]
	comp := compiledComponent{steps: v.steps}
	frame := make([]string, v.numSlots)
	var buf []derivedTuple
	var bufSeen map[string]bool
	var evalErr error
	joinSteps(&comp, srcs, 0, frame, g, func(frame []string) bool {
		if v.unsafeVar != "" {
			evalErr = fmt.Errorf("datalog: unbound head variable %s", v.unsafeVar)
			return false
		}
		tuple := buildHeadTuple(v.head, frame)
		k := tuple.Key()
		if !headRel.ContainsKey(k) || bufSeen[k] {
			return true
		}
		if odSet != nil {
			if _, dead := odSet[k]; dead {
				return true
			}
		}
		if st.isBaseline(t.rule.headPred, k) {
			return true
		}
		if bufSeen == nil {
			bufSeen = make(map[string]bool)
		}
		bufSeen[k] = true
		buf = append(buf, derivedTuple{t: tuple, key: k})
		if g.emitRow() {
			return false
		}
		return true
	})
	return buf, evalErr
}

// rederive restores the over-deleted tuples that still have a derivation in
// the post-removal database, removing each survivor from od as it is
// re-inserted. Round 0 runs the head-rooted support variants (or filtered
// full variants for Skolem heads); later rounds propagate re-insertions
// through the ordinary IDB delta variants, accepting only heads still
// missing — re-inserted tuples cannot derive anything genuinely new,
// because the pre-batch database was already a fixpoint over a superset.
func (cp *CompiledProgram) rederive(db *storage.Database, od map[string]map[string]storage.Tuple, workers int, gs *guardState, lim Limits, stats *FixpointStats) error {
	type redTask struct {
		rule  *compiledRule
		v     *ruleVariant
		delta []storage.Tuple
	}
	runRound := func(tasks []redTask, cur map[string][]storage.Tuple) error {
		if err := gs.barrier(); err != nil {
			return err
		}
		if err := checkFixpointBudget(*stats, lim); err != nil {
			return err
		}
		stats.Iterations++
		bufs, err := runTaskSet(len(tasks), workers, func(i int) ([]derivedTuple, error) {
			return cp.rederiveVariant(db, od[tasks[i].rule.headPred], tasks[i].v, tasks[i].delta, gs.child())
		})
		if err != nil {
			return err
		}
		for i, buf := range bufs {
			pred := tasks[i].rule.headPred
			rel, err := db.Ensure(pred, tasks[i].rule.arity)
			if err != nil {
				return err
			}
			for _, d := range buf {
				if rel.Insert(d.t) {
					delete(od[pred], d.key)
					cur[pred] = append(cur[pred], d.t)
				}
			}
		}
		return nil
	}

	var tasks []redTask
	for i := range cp.rules {
		r := &cp.rules[i]
		if len(od[r.headPred]) == 0 {
			continue
		}
		sv := &cp.supports[i]
		if sv.rooted {
			if sv.v.empty {
				continue
			}
			feed := make([]storage.Tuple, 0, len(od[r.headPred]))
			for _, t := range od[r.headPred] {
				feed = append(feed, t)
			}
			tasks = append(tasks, redTask{rule: r, v: &sv.v, delta: feed})
		} else if !r.full.empty {
			tasks = append(tasks, redTask{rule: r, v: &r.full})
		}
	}
	cur := make(map[string][]storage.Tuple)
	if len(tasks) > 0 {
		if err := runRound(tasks, cur); err != nil {
			return err
		}
	}
	for len(cur) > 0 {
		prev := cur
		cur = make(map[string][]storage.Tuple)
		tasks = tasks[:0]
		for i := range cp.rules {
			r := &cp.rules[i]
			if len(od[r.headPred]) == 0 {
				continue
			}
			for j := range r.deltas {
				v := &r.deltas[j]
				if v.empty {
					continue
				}
				if d := prev[v.deltaPred]; len(d) > 0 {
					tasks = append(tasks, redTask{rule: r, v: v, delta: d})
				}
			}
		}
		if len(tasks) == 0 {
			break
		}
		if err := runRound(tasks, cur); err != nil {
			return err
		}
	}
	return gs.failure()
}

// rederiveVariant enumerates one re-derivation plan — a support variant fed
// by the over-deleted set, an IDB delta variant fed by re-insertions, or a
// filtered full variant (delta == nil) — accepting only heads still in the
// missing set.
func (cp *CompiledProgram) rederiveVariant(db *storage.Database, missing map[string]storage.Tuple, v *ruleVariant, delta []storage.Tuple, g *evalGuard) ([]derivedTuple, error) {
	srcs := make([]stepSrc, len(v.steps))
	for j := range v.steps {
		s := &v.steps[j]
		if j == 0 && delta != nil {
			srcs[j].tuples = delta
			continue
		}
		rel := db.Relation(s.pred)
		if rel == nil {
			continue
		}
		srcs[j].tuples = rel.Tuples()
		if s.probeCol >= 0 {
			if idx, ok := rel.ColumnIndex(s.probeCol); ok {
				srcs[j].idx = idx
			}
		}
	}
	comp := compiledComponent{steps: v.steps}
	frame := make([]string, v.numSlots)
	var buf []derivedTuple
	var bufSeen map[string]bool
	var evalErr error
	joinSteps(&comp, srcs, 0, frame, g, func(frame []string) bool {
		if v.unsafeVar != "" {
			evalErr = fmt.Errorf("datalog: unbound head variable %s", v.unsafeVar)
			return false
		}
		tuple := buildHeadTuple(v.head, frame)
		k := tuple.Key()
		if _, want := missing[k]; !want || bufSeen[k] {
			return true
		}
		if bufSeen == nil {
			bufSeen = make(map[string]bool)
		}
		bufSeen[k] = true
		buf = append(buf, derivedTuple{t: tuple, key: k})
		if g.emitRow() {
			return false
		}
		return true
	})
	return buf, evalErr
}
