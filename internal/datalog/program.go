package datalog

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/storage"
)

// Skolem is a function term f(X1,...,Xk) appearing in a rule head. During
// evaluation it constructs the tagged value "f(v1,...,vk)" from the bound
// argument variables; two Skolem values join iff they were built by the
// same function on the same arguments.
type Skolem struct {
	Name string
	Args []string // variable names
}

// String renders the Skolem term.
func (s Skolem) String() string {
	return s.Name + "(" + strings.Join(s.Args, ",") + ")"
}

// Value constructs the Skolem value for the given bindings.
func (s Skolem) Value(b Bindings) (string, bool) {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		v, ok := b[a]
		if !ok {
			return "", false
		}
		parts[i] = v
	}
	return skolemValue(s.Name, parts), true
}

// skolemValue builds the tagged data value of a Skolem application. The
// interpreter (Skolem.Value) and the compiled head emitter share it so the
// two evaluators always construct identical values.
func skolemValue(name string, parts []string) string {
	return "⟨" + name + ":" + strings.Join(parts, "\x1f") + "⟩"
}

// IsSkolemValue reports whether a data value was constructed by a Skolem
// function (and therefore denotes an unknown constant).
func IsSkolemValue(v string) bool {
	return strings.HasPrefix(v, "⟨") && strings.HasSuffix(v, "⟩")
}

// HasSkolem reports whether any value of the tuple is a Skolem value.
func HasSkolem(t storage.Tuple) bool {
	for _, v := range t {
		if IsSkolemValue(v) {
			return true
		}
	}
	return false
}

// CertainAnswers filters out tuples containing Skolem values (unknown
// constants an inverse-rules fixpoint invented) and returns the rest in
// sorted order — the certain-answer set of an answer relation. The input
// slice is not modified.
func CertainAnswers(tuples []storage.Tuple) []storage.Tuple {
	answers := make([]storage.Tuple, 0, len(tuples))
	for _, t := range tuples {
		if !HasSkolem(t) {
			answers = append(answers, t)
		}
	}
	return storage.SortTuples(answers)
}

// HeadTerm is one argument position of a rule head: a plain term or a
// Skolem function term.
type HeadTerm struct {
	Term   cq.Term // used when Skolem is nil
	Skolem *Skolem
}

// PlainHead converts an atom into head terms without Skolems.
func PlainHead(a cq.Atom) []HeadTerm {
	out := make([]HeadTerm, len(a.Args))
	for i, t := range a.Args {
		out[i] = HeadTerm{Term: t}
	}
	return out
}

// Rule is a datalog rule whose head may contain Skolem terms.
type Rule struct {
	HeadPred    string
	Head        []HeadTerm
	Body        []cq.Atom
	Comparisons []cq.Comparison
}

// RuleFromQuery converts a conjunctive query into a plain rule.
func RuleFromQuery(q *cq.Query) Rule {
	return Rule{
		HeadPred:    q.Name(),
		Head:        PlainHead(q.Head),
		Body:        q.Body,
		Comparisons: q.Comparisons,
	}
}

// String renders the rule in datalog syntax.
func (r Rule) String() string {
	args := make([]string, len(r.Head))
	for i, h := range r.Head {
		if h.Skolem != nil {
			args[i] = h.Skolem.String()
		} else {
			args[i] = h.Term.String()
		}
	}
	var sb strings.Builder
	sb.WriteString(r.HeadPred)
	sb.WriteByte('(')
	sb.WriteString(strings.Join(args, ","))
	sb.WriteString(") :- ")
	for i, a := range r.Body {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	for _, c := range r.Comparisons {
		sb.WriteString(", ")
		sb.WriteString(c.String())
	}
	sb.WriteByte('.')
	return sb.String()
}

// headTupleOf builds the derived tuple for the rule under bindings.
func (r Rule) headTupleOf(b Bindings) (storage.Tuple, error) {
	t := make(storage.Tuple, len(r.Head))
	for i, h := range r.Head {
		switch {
		case h.Skolem != nil:
			v, ok := h.Skolem.Value(b)
			if !ok {
				return nil, fmt.Errorf("datalog: unbound Skolem argument in %s", h.Skolem)
			}
			t[i] = v
		case h.Term.IsConst():
			t[i] = h.Term.Lex
		default:
			v, ok := b[h.Term.Lex]
			if !ok {
				return nil, fmt.Errorf("datalog: unbound head variable %s", h.Term.Lex)
			}
			t[i] = v
		}
	}
	return t, nil
}

// Program is a set of datalog rules evaluated to fixpoint.
type Program struct {
	Rules []Rule
}

// NewProgram builds a program from rules.
func NewProgram(rules ...Rule) *Program { return &Program{Rules: rules} }

// String renders the program one rule per line.
func (p *Program) String() string {
	lines := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		lines[i] = r.String()
	}
	return strings.Join(lines, "\n")
}

// EstimateCost estimates the evaluation cost of the program under the
// catalog: the sum of every rule body's join estimate (cost.EstimateQuery),
// one round's worth of work. It ignores fixpoint iteration counts and
// defaults derived predicates absent from the catalog to cardinality 1, so
// it ranks a program against rewriting candidates rather than predicting
// wall-clock time; callers with better guesses for the derived relations
// can register them on a cloned catalog first.
func (p *Program) EstimateCost(c *cost.Catalog) cost.Estimate {
	var total cost.Estimate
	for _, r := range p.Rules {
		q := &cq.Query{Head: cq.NewAtom(r.HeadPred), Body: r.Body, Comparisons: r.Comparisons}
		e := cost.EstimateQuery(c, q)
		total.Cost += e.Cost
		total.Cardinality += e.Cardinality
	}
	return total
}

// EvalInterp computes the fixpoint of the program over the EDB semi-naively
// with the tuple-at-a-time interpreter (map-based bindings, per-call greedy
// join ordering) and returns a database containing the EDB relations plus
// all derived (IDB) relations. The input database is not modified.
//
// It computes the same relations as the compiled Eval and serves as the
// baseline the compiled fixpoint executor is benchmarked and differentially
// tested against.
func (p *Program) EvalInterp(edb *storage.Database) (*storage.Database, error) {
	db := edb.Clone()
	// delta holds tuples derived in the previous round, per predicate.
	delta := make(map[string][]storage.Tuple)

	// Round 0: fire every rule on the full database.
	for _, r := range p.Rules {
		if err := fireRule(db, r, delta); err != nil {
			return nil, err
		}
	}
	// Subsequent rounds: for each rule and each body position over an IDB
	// predicate with a non-empty delta, join that delta against the full
	// database.
	for len(delta) > 0 {
		prev := delta
		delta = make(map[string][]storage.Tuple)
		for _, r := range p.Rules {
			for pos, a := range r.Body {
				d, ok := prev[a.Pred]
				if !ok || len(d) == 0 {
					continue
				}
				if err := fireRuleWithDelta(db, r, pos, d, delta); err != nil {
					return nil, err
				}
			}
		}
	}
	return db, nil
}

// fireRule evaluates the rule body over db and inserts derived tuples,
// recording new ones in delta.
func fireRule(db *storage.Database, r Rule, delta map[string][]storage.Tuple) error {
	rel, err := db.Ensure(r.HeadPred, len(r.Head))
	if err != nil {
		return err
	}
	var evalErr error
	joinBody(db, r.Body, r.Comparisons, make(Bindings), func(b Bindings) bool {
		t, err := r.headTupleOf(b)
		if err != nil {
			evalErr = err
			return false
		}
		if rel.Insert(t) {
			delta[r.HeadPred] = append(delta[r.HeadPred], t)
		}
		return true
	})
	return evalErr
}

// fireRuleWithDelta evaluates the rule with body position pos restricted to
// the delta tuples.
func fireRuleWithDelta(db *storage.Database, r Rule, pos int, deltaTuples []storage.Tuple, delta map[string][]storage.Tuple) error {
	rel, err := db.Ensure(r.HeadPred, len(r.Head))
	if err != nil {
		return err
	}
	atom := r.Body[pos]
	rest := make([]cq.Atom, 0, len(r.Body)-1)
	rest = append(rest, r.Body[:pos]...)
	rest = append(rest, r.Body[pos+1:]...)
	var evalErr error
	for _, dt := range deltaTuples {
		b := make(Bindings)
		if bindTuple(atom, dt, b) == nil {
			continue
		}
		joinBody(db, rest, r.Comparisons, b, func(b Bindings) bool {
			t, err := r.headTupleOf(b)
			if err != nil {
				evalErr = err
				return false
			}
			if rel.Insert(t) {
				delta[r.HeadPred] = append(delta[r.HeadPred], t)
			}
			return true
		})
		if evalErr != nil {
			return evalErr
		}
	}
	return nil
}
