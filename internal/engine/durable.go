package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/durable"
	"repro/internal/ivm"
	"repro/internal/storage"
)

// Durable storage wiring: Options.DataDir turns construction into
// recovery (newest valid snapshot + WAL replay through the maintainer),
// the mutation funnel into a log-then-publish commit protocol, and Close
// into a checkpoint. The engine always snapshots the maintainer's *full*
// state — base relations plus every extent — regardless of serving
// strategy, so the same snapshot can boot any strategy and a stale
// snapshot still yields its base facts for re-materialization.

// defaultSnapshotWALBytes is the WAL size that triggers a background
// checkpoint when Options.SnapshotWALBytes is zero.
const defaultSnapshotWALBytes = 64 << 20

// durableState ties an engine to its on-disk store.
type durableState struct {
	store     *durable.Store
	fp        string // fingerprint of the engine's view definitions
	threshold int64  // WAL bytes that trigger a background checkpoint; <0 disables
	logf      func(format string, args ...any)

	snapshotting atomic.Bool // one background checkpoint at a time
	closed       atomic.Bool

	// Recovery outcome, fixed at construction.
	recoveredTuples  int
	recoveredBatches int
	replayTime       time.Duration
	staleRebuild     bool
	coldStart        time.Duration
}

// DurableStats reports the durable-storage position, lifetime write work,
// and the recovery outcome of this process's construction.
type DurableStats struct {
	// Enabled is false when the engine was built without Options.DataDir
	// (every other field is then zero).
	Enabled bool
	// Failed reports the fail-stop state: a WAL write failed, mutations
	// are refused, reads keep serving.
	Failed bool
	// LSN is the last durable log position; SnapshotLSN the position of
	// the current snapshot (the WAL covers the difference).
	LSN         uint64
	SnapshotLSN uint64
	// WALBytes is the current log size; WALAppends and WALAppendTime the
	// records logged by this process and their cumulative wall time
	// (including fsync).
	WALBytes      int64
	WALAppends    uint64
	WALAppendTime time.Duration
	// Snapshots, SnapshotTime and SnapshotBytes report checkpoints written
	// by this process and the byte size of the most recent one.
	Snapshots     uint64
	SnapshotTime  time.Duration
	SnapshotBytes int64
	// RecoveredTuples is the tuple count loaded from the snapshot at boot;
	// RecoveredBatches the WAL records replayed on top of it, taking
	// ReplayTime. StaleRebuild reports that the snapshot's view
	// fingerprint mismatched and the extents were re-materialized from
	// the recovered base facts. ColdStart is the total wall time from
	// opening the store to a ready maintainer.
	RecoveredTuples  int
	RecoveredBatches int
	ReplayTime       time.Duration
	StaleRebuild     bool
	ColdStart        time.Duration
}

func (ds *durableState) stats() DurableStats {
	ss := ds.store.Stats()
	return DurableStats{
		Enabled:          true,
		Failed:           ss.Failed,
		LSN:              ss.LSN,
		SnapshotLSN:      ss.SnapshotLSN,
		WALBytes:         ss.WALBytes,
		WALAppends:       ss.WALAppends,
		WALAppendTime:    ss.WALAppendTime,
		Snapshots:        ss.Snapshots,
		SnapshotTime:     ss.SnapshotTime,
		SnapshotBytes:    ss.SnapshotBytes,
		RecoveredTuples:  ds.recoveredTuples,
		RecoveredBatches: ds.recoveredBatches,
		ReplayTime:       ds.replayTime,
		StaleRebuild:     ds.staleRebuild,
		ColdStart:        ds.coldStart,
	}
}

// viewsFingerprint identifies a view-definition set independent of
// definition order and variable naming: the sorted canonical fingerprints
// of every view, keyed by its name, hashed together.
func viewsFingerprint(views []*cq.Query) string {
	fps := make([]string, len(views))
	for i, v := range views {
		fps[i] = v.Name() + "|" + cq.Fingerprint(v)
	}
	sort.Strings(fps)
	h := sha256.New()
	io.WriteString(h, "aqv-views-v1\n")
	for _, f := range fps {
		io.WriteString(h, f)
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// newDurable is NewFromBase under Options.DataDir: open the store, recover
// (snapshot + replay) or materialize, build the serving engine, and make
// sure a snapshot covering the current state exists before any batch can
// be logged.
func newDurable(vs *core.ViewSet, base *storage.Database, views []*cq.Query, opt Options) (*Engine, error) {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	store, err := durable.Open(opt.DataDir, durable.Options{NoSync: opt.WALNoSync})
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			store.Close()
		}
	}()
	ds := &durableState{store: store, fp: viewsFingerprint(views), threshold: opt.SnapshotWALBytes, logf: logf}
	if ds.threshold == 0 {
		ds.threshold = defaultSnapshotWALBytes
	}
	start := time.Now()
	ivmOpt := ivm.Options{Workers: evalWorkers(opt), Shards: opt.Shards}
	var m *ivm.Maintainer
	if man := store.Manifest(); man != nil {
		if man.ViewsFingerprint == ds.fp {
			db, err := store.LoadSnapshot()
			if err != nil {
				return nil, err
			}
			for _, rm := range man.Relations {
				ds.recoveredTuples += rm.Rows
			}
			m, err = ivm.NewFromMaterialized(db, views, man.Baseline, ivmOpt)
			if err != nil {
				return nil, err
			}
			// Planning statistics come from the manifest instead of a scan
			// over the loaded database. Replay drifts them slightly, which
			// is fine: statistics steer plan shape, never correctness.
			cat := cost.NewCatalog(storage.NewDatabase())
			for _, rm := range man.Relations {
				rows := 0.0
				if rel := db.Relation(rm.Name); rel != nil {
					rows = float64(rel.Len())
				}
				if len(rm.Distinct) == rm.Arity {
					cat.SetRelation(rm.Name, rows, rm.Distinct)
				}
			}
			opt.snapCatalog = cat
			replayStart := time.Now()
			n, err := store.Replay(func(rec durable.Record) error {
				_, err := m.ApplyUpdate(rec.Inserts, rec.Deletes)
				return err
			})
			if err != nil {
				return nil, err
			}
			ds.recoveredBatches = n
			ds.replayTime = time.Since(replayStart)
		} else {
			logf("engine: snapshot in %s was materialized under different view definitions; re-materializing from its base facts", opt.DataDir)
			ds.staleRebuild = true
			recovered, err := store.RecoverBaseFacts()
			if err != nil {
				return nil, err
			}
			base = recovered
		}
	}
	fresh := m == nil
	if fresh {
		if m, err = ivm.New(base, views, ivmOpt); err != nil {
			return nil, err
		}
	}
	ds.coldStart = time.Since(start)

	var e *Engine
	if opt.LiveUpdates {
		e, err = newLiveFromMaintainer(vs, m, views, opt)
	} else {
		var db *storage.Database
		if opt.Strategy == InverseRules {
			db, err = extentsOnly(m, views)
		} else {
			db = m.Database()
		}
		if err == nil {
			e, err = New(vs, db, opt)
		}
	}
	if err != nil {
		return nil, err
	}
	e.dur = ds
	if fresh {
		// The WAL may only ever hold batches a snapshot precedes;
		// establish that before the first Append can happen.
		if err := ds.checkpoint(m); err != nil {
			return nil, err
		}
	} else if ds.recoveredBatches > 0 && ds.threshold > 0 && store.WALBytes() >= ds.threshold {
		if err := ds.checkpoint(m); err != nil {
			logf("engine: boot checkpoint failed (the WAL still covers every batch): %v", err)
		}
	}
	ok = true
	return e, nil
}

// checkpoint writes a snapshot of the maintainer's full state. The caller
// must hold whatever excludes concurrent batches (the update mutex, or
// construction-time exclusivity).
func (ds *durableState) checkpoint(m *ivm.Maintainer) error {
	db := m.Database()
	cat := cost.NewCatalog(db)
	extents := make(map[string]bool)
	distinct := make(map[string][]float64)
	for _, pred := range db.Predicates() {
		if m.IsView(pred) {
			extents[pred] = true
		}
		rel := db.Relation(pred)
		d := make([]float64, rel.Arity())
		for c := range d {
			d[c] = cat.Distinct(pred, c)
		}
		distinct[pred] = d
	}
	return ds.store.WriteSnapshot(db, durable.SnapshotMeta{
		ViewsFingerprint: ds.fp,
		Extents:          extents,
		Baseline:         m.BaselineKeys(),
		Distinct:         distinct,
	})
}

// maybeCheckpoint spawns one background checkpoint when the WAL has
// crossed the size threshold. Called from the mutation path right after a
// publish; the goroutine re-acquires the update mutex, so writers stall
// behind the checkpoint while readers keep serving the sides.
func (ds *durableState) maybeCheckpoint(e *Engine) {
	if ds.threshold <= 0 || ds.store.WALBytes() < ds.threshold {
		return
	}
	if !ds.snapshotting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer ds.snapshotting.Store(false)
		if err := e.Checkpoint(); err != nil {
			ds.logf("engine: background checkpoint failed (the WAL still covers every batch): %v", err)
		}
	}()
}

// Checkpoint writes a snapshot of the engine's current durable state and
// truncates the WAL. No-op (nil) on engines without Options.DataDir and on
// frozen durable engines, whose state was checkpointed at construction and
// cannot change. Safe to call concurrently with updates: it serializes
// behind the update mutex.
func (e *Engine) Checkpoint() error {
	if e.dur == nil || e.live == nil {
		return nil
	}
	l := e.live
	l.updateMu.Lock()
	defer l.updateMu.Unlock()
	return e.dur.checkpoint(l.maint)
}

// Close checkpoints the engine's durable state (when it has batches the
// current snapshot does not cover) and releases the store. Idempotent.
// Engines without Options.DataDir have nothing to release: Close is a
// no-op returning nil.
func (e *Engine) Close() error {
	if e.dur == nil {
		return nil
	}
	if e.dur.closed.Swap(true) {
		return nil
	}
	var err error
	if e.live != nil && e.dur.store.Err() == nil && e.dur.store.Dirty() {
		err = e.Checkpoint()
	}
	if cerr := e.dur.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// logBatch appends one applied batch to the WAL — the effective batch (the
// tuples that actually changed), which replays to the identical state.
// Called under the update mutex, after the maintainer committed and before
// the publish. An empty effective batch logs nothing.
func (ds *durableState) logBatch(res *ivm.BatchResult) error {
	if len(res.BaseDeleted) == 0 && len(res.BaseInserted) == 0 {
		return nil
	}
	if _, err := ds.store.Append(res.BaseDeleted, res.BaseInserted); err != nil {
		ds.logf("engine: WAL append failed; refusing further mutations (reads keep serving): %v", err)
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return nil
}
