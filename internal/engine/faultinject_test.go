package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/storage"
)

// TestFaultInjectionDifferential is the randomized cancel-point acceptance
// test: hundreds of trials inject cancellations and budget trips at random
// points across the evaluation, fixpoint and IVM paths of a live engine,
// and after every injected fault each query answer must match a full
// re-materialization from the base plus only the batches that committed.
// A single leaked tuple from a rolled-back batch, or a torn serving pair,
// diverges the fingerprint immediately.
func TestFaultInjectionDifferential(t *testing.T) {
	trials := 220
	if testing.Short() {
		trials = 50
	}
	rng := rand.New(rand.NewSource(0xC0FFEE))
	strategies := Strategies()
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")

	for trial := 0; trial < trials; trial++ {
		base, views := testBase(t)
		// Pad the base with random extra facts so propagation has work.
		for i := 0; i < rng.Intn(20); i++ {
			base.Insert("r", storage.Tuple{fmt.Sprintf("a%d", rng.Intn(8)), fmt.Sprintf("m%d", rng.Intn(8))})
			base.Insert("s", storage.Tuple{fmt.Sprintf("m%d", rng.Intn(8)), fmt.Sprintf("x%d", rng.Intn(8))})
		}
		shards := 0
		if trial%3 == 1 {
			shards = 2 + rng.Intn(3)
		}
		strat := strategies[trial%len(strategies)]
		live, err := NewFromBase(base, views, Options{
			Strategy:    strat,
			LiveUpdates: true,
			Shards:      shards,
			EvalWorkers: 1 + rng.Intn(3),
		})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, strat, err)
		}
		shadow := base.Clone()

		for batch := 0; batch < 1+rng.Intn(3); batch++ {
			upd := make(map[string][]storage.Tuple)
			for i := 0; i < 1+rng.Intn(4); i++ {
				if rng.Intn(2) == 0 {
					upd["r"] = append(upd["r"], storage.Tuple{fmt.Sprintf("a%d", rng.Intn(10)), fmt.Sprintf("m%d", rng.Intn(10))})
				} else {
					upd["s"] = append(upd["s"], storage.Tuple{fmt.Sprintf("m%d", rng.Intn(10)), fmt.Sprintf("x%d", rng.Intn(10))})
				}
			}

			// Pick a fault to inject into the IVM path: a pre-fired or
			// racing deadline, a tiny derivation/round budget, or none.
			ctx := context.Background()
			var cancel context.CancelFunc
			var b Budget
			switch rng.Intn(4) {
			case 0: // pre-canceled context
				ctx, cancel = context.WithCancel(ctx)
				cancel()
			case 1: // racing deadline, sometimes already expired
				b.Deadline = time.Duration(rng.Intn(300)) * time.Microsecond
			case 2: // derivation or round budget likely to trip
				if rng.Intn(2) == 0 {
					b.MaxDerivedTuples = 1 + rng.Intn(2)
				} else {
					b.MaxFixpointRounds = 1
				}
			case 3: // no fault — the batch commits
			}
			err := live.ApplyBatchBudget(ctx, upd, b)
			if cancel != nil {
				cancel()
			}
			switch {
			case err == nil:
				// Committed: fold into the shadow base.
				for pred, tuples := range upd {
					for _, tup := range tuples {
						shadow.Insert(pred, tup)
					}
				}
			case errors.Is(err, ErrCanceled), errors.Is(err, ErrBudgetExceeded):
				// Rolled back: the shadow stays as-is.
			default:
				t.Fatalf("trial %d (%s) batch %d: unexpected error type: %v", trial, strat, batch, err)
			}

			// Differential check, itself sometimes under an injected fault
			// on the query path.
			want, err := NewFromBase(shadow, views, Options{Strategy: strat})
			if err != nil {
				t.Fatalf("trial %d (%s): rebuild: %v", trial, strat, err)
			}
			wantRows, err := want.Answer(q)
			if err != nil {
				t.Fatalf("trial %d (%s): rebuilt answer: %v", trial, strat, err)
			}
			var qb Budget
			if rng.Intn(3) == 0 {
				qb.Deadline = time.Duration(rng.Intn(200)) * time.Microsecond
			}
			gotRows, err := live.AnswerBudget(context.Background(), q, qb)
			if err != nil {
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("trial %d (%s): query fault: %v", trial, strat, err)
				}
				// Canceled query: retry unbudgeted — the engine must still
				// serve the exact committed state.
				gotRows, err = live.Answer(q)
				if err != nil {
					t.Fatalf("trial %d (%s): post-cancel retry: %v", trial, strat, err)
				}
			}
			if !storage.TuplesEqual(gotRows, wantRows) {
				t.Fatalf("trial %d (%s) batch %d (shards=%d): live diverges from re-materialization\n  live:  %v\n  fresh: %v",
					trial, strat, batch, shards, gotRows, wantRows)
			}
		}
	}
}
