package engine

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/storage"
)

// testBase builds a small base database for the standard two-view schema:
//
//	r(a,m). r(b,n). s(m,x). s(n,y). t(m).
func testBase(t testing.TB) (*storage.Database, []*cq.Query) {
	t.Helper()
	base := storage.NewDatabase()
	facts := []struct {
		pred string
		tup  storage.Tuple
	}{
		{"r", storage.Tuple{"a", "m"}},
		{"r", storage.Tuple{"b", "n"}},
		{"s", storage.Tuple{"m", "x"}},
		{"s", storage.Tuple{"n", "y"}},
		{"t", storage.Tuple{"m"}},
	}
	for _, f := range facts {
		if err := base.Insert(f.pred, f.tup); err != nil {
			t.Fatal(err)
		}
	}
	views, err := cq.ParseViews(`
		v(A,B)  :- r(A,C), s(C,B).
		vr(A,B) :- r(A,B).
		vs(A,B) :- s(A,B).
		vt(A)   :- t(A).
	`)
	if err != nil {
		t.Fatal(err)
	}
	return base, views
}

func TestAnswerMatchesDirectEvaluation(t *testing.T) {
	base, views := testBase(t)
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	want := datalog.EvalQuery(base, q)
	if len(want) == 0 {
		t.Fatal("test query has no answers over base data")
	}
	for _, strat := range Strategies() {
		e, err := NewFromBase(base, views, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		got, err := e.Answer(q)
		if err != nil {
			t.Fatalf("%s: Answer: %v", strat, err)
		}
		if !storage.TuplesEqual(got, want) {
			t.Fatalf("%s: answers %v, want %v", strat, got, want)
		}
	}
}

func TestPlanCacheSharedAcrossAlphaVariants(t *testing.T) {
	base, views := testBase(t)
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q1 := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	q2 := cq.MustParseQuery("q(A,B) :- s(C,B), r(A,C)") // α-variant, reordered
	a1, err := e.Answer(q1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.Answer(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(a1, a2) {
		t.Fatalf("answers differ across α-variants: %v vs %v", a1, a2)
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = hits %d / misses %d, want 1/1 (α-variant must hit)", st.Hits, st.Misses)
	}
	if st.CacheLen != 1 {
		t.Fatalf("cache holds %d plans, want 1", st.CacheLen)
	}
	agg, ok := st.PerStrategy[EquivalentFirst]
	if !ok || agg.Plans != 1 {
		t.Fatalf("per-strategy stats = %+v, want one equivalent-first plan", st.PerStrategy)
	}
}

func TestSingleFlightCoalescing(t *testing.T) {
	base, views := testBase(t)
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	const goroutines = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := e.Answer(q); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	st := e.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (single-flight)", st.Misses)
	}
	if st.Hits+st.Coalesced != goroutines-1 {
		t.Fatalf("hits %d + coalesced %d != %d", st.Hits, st.Coalesced, goroutines-1)
	}
}

// TestConcurrentMixedQueries hammers one engine from many goroutines with a
// mix of identical and distinct queries; run with -race this checks the
// engine's locking, the shared containment memo, and the frozen database
// indexes.
func TestConcurrentMixedQueries(t *testing.T) {
	base, views := testBase(t)
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []*cq.Query{
		cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)"),
		cq.MustParseQuery("q(A,B) :- s(C,B), r(A,C)"), // α-variant of the above
		cq.MustParseQuery("q2(X) :- r(X,Z), t(Z)"),
		cq.MustParseQuery("q3(X,Y) :- r(X,Y)"),
		cq.MustParseQuery("q4(X) :- s(X,Y)"),
	}
	want := make([][]storage.Tuple, len(queries))
	for i, q := range queries {
		w, err := e.Answer(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want[i] = w
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := (g + i) % len(queries)
				got, err := e.Answer(queries[k])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !storage.TuplesEqual(got, want[k]) {
					t.Errorf("goroutine %d query %d: answers changed", g, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := e.Stats(); st.Misses != uint64(len(queries)-1) {
		// q[0] and q[1] share a fingerprint: 4 distinct plans.
		t.Fatalf("misses = %d, want %d", st.Misses, len(queries)-1)
	}
}

func TestCacheEviction(t *testing.T) {
	base, views := testBase(t)
	e, err := NewFromBase(base, views, Options{CacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	qs := []*cq.Query{
		cq.MustParseQuery("q1(X,Y) :- r(X,Y)"),
		cq.MustParseQuery("q2(X,Y) :- s(X,Y)"),
		cq.MustParseQuery("q3(X) :- t(X)"),
	}
	for _, q := range qs {
		if _, err := e.Answer(q); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Evictions != 1 || st.CacheLen != 2 {
		t.Fatalf("evictions=%d cacheLen=%d, want 1 and 2", st.Evictions, st.CacheLen)
	}
	// q1 was the least recently used: answering it again must re-plan.
	if _, err := e.Answer(qs[0]); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (q1 evicted and re-planned)", st.Misses)
	}
	// q3 is still cached.
	if _, err := e.Answer(qs[2]); err != nil {
		t.Fatal(err)
	}
	if st = e.Stats(); st.Hits != 1 {
		t.Fatalf("hits = %d, want 1 (q3 still cached)", st.Hits)
	}
}

func TestAnswerBatch(t *testing.T) {
	base, views := testBase(t)
	e, err := NewFromBase(base, views, Options{BatchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	qs := []*cq.Query{
		cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)"),
		cq.MustParseQuery("q(A,B) :- s(C,B), r(A,C)"),
		cq.MustParseQuery("q2(X,Y) :- r(X,Y)"),
		cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)"),
	}
	results, err := e.AnswerBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d results", len(results))
	}
	if !storage.TuplesEqual(results[0], results[1]) || !storage.TuplesEqual(results[0], results[3]) {
		t.Fatal("α-equivalent batch members disagree")
	}
	want := datalog.EvalQuery(base, qs[0])
	if !storage.TuplesEqual(results[0], want) {
		t.Fatalf("batch answers %v, want %v", results[0], want)
	}
	if st := e.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 distinct plans", st.Misses)
	}
}

func TestAnswerBatchPartialFailure(t *testing.T) {
	base, views := testBase(t)
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := &cq.Query{Head: cq.NewAtom("q", cq.Var("X"))} // empty body: invalid
	qs := []*cq.Query{
		cq.MustParseQuery("q2(X,Y) :- r(X,Y)"),
		bad,
	}
	results, err := e.AnswerBatch(qs)
	if err == nil || !strings.Contains(err.Error(), "query 1") {
		t.Fatalf("err = %v, want failure naming query 1", err)
	}
	if results[0] == nil || results[1] != nil {
		t.Fatalf("results = %v, want good answer and nil", results)
	}
}

func TestEquivalentFirstFallsBackToMiniCon(t *testing.T) {
	// Only r is covered by a view, so no equivalent rewriting of the
	// r-s join exists; the engine must fall back to the MCR (empty here,
	// since s is not covered at all).
	base := storage.NewDatabase()
	if err := base.Insert("r", storage.Tuple{"a", "m"}); err != nil {
		t.Fatal(err)
	}
	views, err := cq.ParseViews("vr(A,B) :- r(A,B).")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Plan(cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanMaxContained {
		t.Fatalf("plan kind = %v, want max-contained fallback", p.Kind)
	}
	ans, err := e.Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Fatalf("answers = %v, want none", ans)
	}
	// The (empty) plan is cached: asking again is a hit, not a re-search.
	if _, err := e.Answer(cq.MustParseQuery("q(U,V) :- r(U,W), s(W,V)")); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Hits != 1 {
		t.Fatalf("hits = %d, want 1 (negative plan cached)", st.Hits)
	}
}

func TestInverseRulesServesExtentsOnly(t *testing.T) {
	base, views := testBase(t)
	e, err := NewFromBase(base, views, Options{Strategy: InverseRules})
	if err != nil {
		t.Fatal(err)
	}
	if rel := e.Database().Relation("r"); rel != nil {
		t.Fatal("inverse-rules engine must not hold base relations")
	}
	got, err := e.Answer(cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	want := datalog.EvalQuery(base, cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)"))
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("certain answers %v, want %v", got, want)
	}
}

func TestEngineErrors(t *testing.T) {
	base, views := testBase(t)
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Fatal("nil view set accepted")
	}
	vs := core.MustNewViewSet(views...)
	if _, err := New(vs, nil, Options{Strategy: "nope"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := &cq.Query{Head: cq.NewAtom("q", cq.Var("X"))}
	if _, err := e.Answer(bad); err == nil {
		t.Fatal("invalid query accepted")
	}
	if _, err := ParseStrategy("equivalent"); err != nil {
		t.Fatal("CLI alias 'equivalent' rejected")
	}
	if _, err := ParseStrategy("inverse"); err != nil {
		t.Fatal("CLI alias 'inverse' rejected")
	}
}

// TestCompiledPlansInCache asserts the LRU holds physical plans alongside
// the rewriting, that EvalWorkers answers agree with sequential answers
// across strategies, and that compile/exec timings surface in Stats.
func TestCompiledPlansInCache(t *testing.T) {
	base, views := testBase(t)
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	want := datalog.EvalQuery(base, q)
	for _, strat := range []Strategy{EquivalentFirst, Bucket, MiniCon} {
		for _, workers := range []int{1, 4} {
			e, err := NewFromBase(base, views, Options{Strategy: strat, EvalWorkers: workers})
			if err != nil {
				t.Fatalf("%s: %v", strat, err)
			}
			p, err := e.Plan(q)
			if err != nil {
				t.Fatalf("%s: %v", strat, err)
			}
			switch p.Kind {
			case PlanEquivalent:
				if p.Compiled == nil {
					t.Fatalf("%s: cached plan has no compiled form", strat)
				}
			case PlanMaxContained:
				if len(p.CompiledUnion) != p.Union.Len() {
					t.Fatalf("%s: %d compiled members for %d-member union", strat, len(p.CompiledUnion), p.Union.Len())
				}
			}
			got, err := e.Answer(q)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", strat, workers, err)
			}
			if !storage.TuplesEqual(got, want) {
				t.Fatalf("%s workers=%d: got %v want %v", strat, workers, got, want)
			}
			st := e.Stats()
			if st.ExecCount == 0 {
				t.Fatalf("%s: ExecCount not recorded", strat)
			}
		}
	}
}

// TestCompiledProgramInCache asserts the inverse-rules strategy caches the
// compiled semi-naive program beside the rule set, answers identically to
// the interpretive baseline, and surfaces fixpoint counters in Stats.
func TestCompiledProgramInCache(t *testing.T) {
	base, views := testBase(t)
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	e, err := NewFromBase(base, views, Options{Strategy: InverseRules})
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanInverseProgram || p.CompiledProgram == nil {
		t.Fatalf("plan kind=%v compiled program=%v", p.Kind, p.CompiledProgram)
	}
	got, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: interpretive fixpoint over the same view extents.
	viewDB, err := datalog.MaterializeViews(base, views)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Program.EvalInterp(viewDB)
	if err != nil {
		t.Fatal(err)
	}
	var want []storage.Tuple
	for _, tup := range out.Relation(q.Name()).Tuples() {
		if !datalog.HasSkolem(tup) {
			want = append(want, tup)
		}
	}
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("compiled fixpoint answers %v, interp %v", got, want)
	}
	st := e.Stats()
	if st.FixpointRuns == 0 || st.FixpointIterations == 0 || st.FixpointDerived == 0 {
		t.Fatalf("fixpoint counters not recorded: %+v", st)
	}
}

// TestConcurrentInverseRulesRace hammers one inverse-rules engine from many
// goroutines with EvalWorkers > 1: the compiled fixpoint executor must never
// mutate the shared frozen database (run under -race in CI).
func TestConcurrentInverseRulesRace(t *testing.T) {
	base, views := testBase(t)
	e, err := NewFromBase(base, views, Options{Strategy: InverseRules, EvalWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := []*cq.Query{
		cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)"),
		cq.MustParseQuery("q2(X) :- r(X,Z), t(Z)"),
		cq.MustParseQuery("q3(A,B) :- r(A,B)"),
		cq.MustParseQuery("q(U,V) :- r(U,W), s(W,V)"), // α-variant of the first
	}
	wants := make([][]storage.Tuple, len(queries))
	for i, q := range queries {
		if wants[i], err = e.Answer(q); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := (g + i) % len(queries)
				got, err := e.Answer(queries[k])
				if err != nil {
					t.Error(err)
					return
				}
				if !storage.TuplesEqual(got, wants[k]) {
					t.Errorf("query %d: got %v want %v", k, got, wants[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
