package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/storage"
)

// TestEngineDeleteBasics: retractions flow out of the extents, answers
// shrink, mixed batches replay deletions before insertions, and the delete
// counters surface in Stats.
func TestEngineDeleteBasics(t *testing.T) {
	base, views := testBase(t)
	e, err := NewFromBase(base, views, Options{LiveUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	before, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 2 {
		t.Fatalf("initial answers = %v", before)
	}

	// Deleting r(a,m) starves v(a,x) and vr(a,m).
	if err := e.Delete("r", storage.Tuple{"a", "m"}); err != nil {
		t.Fatal(err)
	}
	after, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 {
		t.Fatalf("post-delete answers = %v, want 1", after)
	}
	if e.Database().Relation("v").Contains(storage.Tuple{"a", "x"}) {
		t.Fatal("extent v not retracted")
	}
	if e.Database().Relation("r").Contains(storage.Tuple{"a", "m"}) {
		t.Fatal("base fact survives on the serving side")
	}

	// Mixed batch: re-insert r(a,m), delete s(n,y) — the r answer returns,
	// the s one goes.
	err = e.ApplyUpdate(
		map[string][]storage.Tuple{"r": {{"a", "m"}}},
		map[string][]storage.Tuple{"s": {{"n", "y"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	final, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 1 || final[0].Key() != (storage.Tuple{"a", "x"}).Key() {
		t.Fatalf("post-mixed answers = %v, want [a x]", final)
	}

	// Deleting an absent tuple is a no-op, not an error.
	if err := e.DeleteBatch("r", []storage.Tuple{{"zz", "zz"}}); err != nil {
		t.Fatal(err)
	}
	// Deleting from a view extent is rejected.
	if err := e.Delete("v", storage.Tuple{"a", "x"}); err == nil {
		t.Fatal("delete from view extent accepted")
	}

	st := e.Stats()
	if st.UpdateDeleted != 2 { // r(a,m), s(n,y); the no-op does not count
		t.Fatalf("UpdateDeleted = %d, want 2", st.UpdateDeleted)
	}
	if st.DeltaRetracted < 4 { // v+vr for the delete, vs+v for the mixed batch
		t.Fatalf("DeltaRetracted = %d, want >= 4", st.DeltaRetracted)
	}

	// A static engine rejects deletes like it rejects inserts.
	static, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := static.Delete("r", storage.Tuple{"a", "m"}); err != ErrNotLive {
		t.Fatalf("static delete err = %v, want ErrNotLive", err)
	}
}

// TestEngineUpdateDifferential drives randomized mixed insert/delete
// streams — including delete-heavy batches — through live engines across
// every strategy, shard count and worker count, and cross-checks every
// answer and every extent against an engine rebuilt from the surviving
// base.
func TestEngineUpdateDifferential(t *testing.T) {
	trials := 48
	if testing.Short() {
		trials = 12
	}
	rng := rand.New(rand.NewSource(0xDE1E7E5))
	strategies := Strategies()
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")

	for trial := 0; trial < trials; trial++ {
		base, views := testBase(t)
		for i := 0; i < 5+rng.Intn(25); i++ {
			base.Insert("r", storage.Tuple{fmt.Sprintf("a%d", rng.Intn(8)), fmt.Sprintf("m%d", rng.Intn(8))})
			base.Insert("s", storage.Tuple{fmt.Sprintf("m%d", rng.Intn(8)), fmt.Sprintf("x%d", rng.Intn(8))})
		}
		shards := 0
		if trial%2 == 1 {
			shards = 2 + rng.Intn(3)
		}
		strat := strategies[trial%len(strategies)]
		live, err := NewFromBase(base, views, Options{
			Strategy:    strat,
			LiveUpdates: true,
			Shards:      shards,
			EvalWorkers: 1 + rng.Intn(3),
		})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, strat, err)
		}
		shadow := base.Clone()

		for batch := 0; batch < 2+rng.Intn(3); batch++ {
			ins := make(map[string][]storage.Tuple)
			del := make(map[string][]storage.Tuple)
			// Delete-heavy, insert-only, or mixed.
			kind := rng.Intn(3)
			if kind != 1 {
				for _, pred := range []string{"r", "s"} {
					rel := shadow.Relation(pred)
					if rel == nil || rel.Len() == 0 {
						continue
					}
					tuples := rel.Tuples()
					for i := 0; i < 1+rng.Intn(3); i++ {
						del[pred] = append(del[pred], tuples[rng.Intn(len(tuples))])
					}
				}
			}
			if kind != 0 {
				for i := 0; i < 1+rng.Intn(4); i++ {
					if rng.Intn(2) == 0 {
						ins["r"] = append(ins["r"], storage.Tuple{fmt.Sprintf("a%d", rng.Intn(10)), fmt.Sprintf("m%d", rng.Intn(10))})
					} else {
						ins["s"] = append(ins["s"], storage.Tuple{fmt.Sprintf("m%d", rng.Intn(10)), fmt.Sprintf("x%d", rng.Intn(10))})
					}
				}
			}
			if err := live.ApplyUpdate(ins, del); err != nil {
				t.Fatalf("trial %d (%s) batch %d: %v", trial, strat, batch, err)
			}
			for pred, tuples := range del {
				for _, tup := range tuples {
					shadow.Remove(pred, tup)
				}
			}
			for pred, tuples := range ins {
				for _, tup := range tuples {
					shadow.Insert(pred, tup)
				}
			}
			fresh, err := NewFromBase(shadow, views, Options{Strategy: strat})
			if err != nil {
				t.Fatalf("trial %d (%s) batch %d: rebuild: %v", trial, strat, batch, err)
			}
			got, err := live.Answer(q)
			if err != nil {
				t.Fatalf("trial %d (%s) batch %d: live: %v", trial, strat, batch, err)
			}
			want, err := fresh.Answer(q)
			if err != nil {
				t.Fatalf("trial %d (%s) batch %d: fresh: %v", trial, strat, batch, err)
			}
			if !storage.TuplesEqual(got, want) {
				t.Fatalf("trial %d (%s) batch %d (shards=%d): live diverges from re-materialization\n  live:  %v\n  fresh: %v",
					trial, strat, batch, shards, got, want)
			}
			for _, v := range views {
				lr, fr := live.Database().Relation(v.Name()), fresh.Database().Relation(v.Name())
				var lt, ft []storage.Tuple
				if lr != nil {
					lt = lr.Tuples()
				}
				if fr != nil {
					ft = fr.Tuples()
				}
				if !storage.TuplesEqual(lt, ft) {
					t.Fatalf("trial %d (%s) batch %d: extent %s diverges\n  live:  %v\n  fresh: %v",
						trial, strat, batch, v.Name(), lt, ft)
				}
			}
		}
	}
}

// TestEngineDeleteSnapshotRace runs concurrent Answer calls against a
// stream of mixed grow/shrink batches. The answer is the cross product of
// two separately updated relations, so a torn read — one relation with a
// batch's retraction applied, the other without — matches no legal grid
// state. Run under -race in CI this also checks that retractions on a
// serving side stay inside the side's write lock.
func TestEngineDeleteSnapshotRace(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"x0", "k"})
	base.Insert("s", storage.Tuple{"k", "y0"})
	views, err := cq.ParseViews(`
		vr(A,B) :- r(A,B).
		vs(A,B) :- s(A,B).
	`)
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X,U), s(W,Y)")

	const nBatches = 5
	// Legal answer sets: state k is {x0..xk} × {y0..yk}.
	states := make([]map[string]bool, nBatches+1)
	for k := 0; k <= nBatches; k++ {
		states[k] = make(map[string]bool)
		for i := 0; i <= k; i++ {
			for j := 0; j <= k; j++ {
				states[k][storage.Tuple{fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", j)}.Key()] = true
			}
		}
	}
	matchesState := func(answers []storage.Tuple) int {
		for k, st := range states {
			if len(answers) != len(st) {
				continue
			}
			ok := true
			for _, a := range answers {
				if !st[a.Key()] {
					ok = false
					break
				}
			}
			if ok {
				return k
			}
		}
		return -1
	}

	for _, shards := range []int{0, 3} {
		e, err := NewFromBase(base, views, Options{LiveUpdates: true, Shards: shards, EvalWorkers: 4})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if ans, err := e.Answer(q); err != nil || matchesState(ans) != 0 {
			t.Fatalf("shards=%d: initial answer %v (err %v)", shards, ans, err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					got, err := e.Answer(q)
					if err != nil {
						t.Errorf("shards=%d reader %d: %v", shards, g, err)
						return
					}
					if matchesState(got) < 0 {
						t.Errorf("shards=%d reader %d: torn answer set (%d tuples): %v", shards, g, len(got), got)
						return
					}
				}
			}(g)
		}
		// Grow to the full grid, then shrink back down with atomic
		// delete-pair batches: every intermediate state is a legal grid.
		for k := 1; k <= nBatches; k++ {
			err := e.ApplyBatch(map[string][]storage.Tuple{
				"r": {{fmt.Sprintf("x%d", k), "k"}},
				"s": {{"k", fmt.Sprintf("y%d", k)}},
			})
			if err != nil {
				t.Errorf("shards=%d grow %d: %v", shards, k, err)
				break
			}
		}
		for k := nBatches; k >= 1; k-- {
			err := e.ApplyUpdate(nil, map[string][]storage.Tuple{
				"r": {{fmt.Sprintf("x%d", k), "k"}},
				"s": {{"k", fmt.Sprintf("y%d", k)}},
			})
			if err != nil {
				t.Errorf("shards=%d shrink %d: %v", shards, k, err)
				break
			}
		}
		close(stop)
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		final, err := e.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if matchesState(final) != 0 {
			t.Fatalf("shards=%d: final state %v, want state 0", shards, final)
		}
	}
}

// TestEngineDeleteFaultInjection injects cancellations and budget trips
// into mixed insert/delete batches — including mid-retraction — and after
// every fault the live engine must answer exactly like a re-materialization
// from the base plus only the batches that committed: a failed batch rolls
// back both the retractions and the insertions or neither.
func TestEngineDeleteFaultInjection(t *testing.T) {
	trials := 160
	if testing.Short() {
		trials = 40
	}
	rng := rand.New(rand.NewSource(0xDEADDE1))
	strategies := Strategies()
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")

	for trial := 0; trial < trials; trial++ {
		base, views := testBase(t)
		for i := 0; i < rng.Intn(20); i++ {
			base.Insert("r", storage.Tuple{fmt.Sprintf("a%d", rng.Intn(8)), fmt.Sprintf("m%d", rng.Intn(8))})
			base.Insert("s", storage.Tuple{fmt.Sprintf("m%d", rng.Intn(8)), fmt.Sprintf("x%d", rng.Intn(8))})
		}
		shards := 0
		if trial%3 == 1 {
			shards = 2 + rng.Intn(3)
		}
		strat := strategies[trial%len(strategies)]
		live, err := NewFromBase(base, views, Options{
			Strategy:    strat,
			LiveUpdates: true,
			Shards:      shards,
			EvalWorkers: 1 + rng.Intn(3),
		})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, strat, err)
		}
		shadow := base.Clone()

		for batch := 0; batch < 1+rng.Intn(3); batch++ {
			ins := make(map[string][]storage.Tuple)
			del := make(map[string][]storage.Tuple)
			for _, pred := range []string{"r", "s"} {
				rel := shadow.Relation(pred)
				if rel == nil || rel.Len() == 0 || rng.Intn(3) == 0 {
					continue
				}
				tuples := rel.Tuples()
				for i := 0; i < 1+rng.Intn(3); i++ {
					del[pred] = append(del[pred], tuples[rng.Intn(len(tuples))])
				}
			}
			for i := 0; i < rng.Intn(4); i++ {
				if rng.Intn(2) == 0 {
					ins["r"] = append(ins["r"], storage.Tuple{fmt.Sprintf("a%d", rng.Intn(10)), fmt.Sprintf("m%d", rng.Intn(10))})
				} else {
					ins["s"] = append(ins["s"], storage.Tuple{fmt.Sprintf("m%d", rng.Intn(10)), fmt.Sprintf("x%d", rng.Intn(10))})
				}
			}

			// Pick a fault to inject into the retraction path: a pre-fired
			// or racing deadline, a tiny derivation budget, or none.
			ctx := context.Background()
			var cancel context.CancelFunc
			var b Budget
			switch rng.Intn(4) {
			case 0: // pre-canceled context: fails before the first removal
				ctx, cancel = context.WithCancel(ctx)
				cancel()
			case 1: // racing deadline, sometimes firing mid-retraction
				b.Deadline = time.Duration(rng.Intn(300)) * time.Microsecond
			case 2: // derivation budget counts retraction work too
				b.MaxDerivedTuples = 1 + rng.Intn(2)
			case 3: // no fault — the batch commits
			}
			err := live.ApplyUpdateBudget(ctx, ins, del, b)
			if cancel != nil {
				cancel()
			}
			switch {
			case err == nil:
				for pred, tuples := range del {
					for _, tup := range tuples {
						shadow.Remove(pred, tup)
					}
				}
				for pred, tuples := range ins {
					for _, tup := range tuples {
						shadow.Insert(pred, tup)
					}
				}
			case errors.Is(err, ErrCanceled), errors.Is(err, ErrBudgetExceeded):
				// Rolled back: the shadow stays as-is.
			default:
				t.Fatalf("trial %d (%s) batch %d: unexpected error type: %v", trial, strat, batch, err)
			}

			fresh, err := NewFromBase(shadow, views, Options{Strategy: strat})
			if err != nil {
				t.Fatalf("trial %d (%s): rebuild: %v", trial, strat, err)
			}
			wantRows, err := fresh.Answer(q)
			if err != nil {
				t.Fatalf("trial %d (%s): rebuilt answer: %v", trial, strat, err)
			}
			gotRows, err := live.Answer(q)
			if err != nil {
				t.Fatalf("trial %d (%s): live answer: %v", trial, strat, err)
			}
			if !storage.TuplesEqual(gotRows, wantRows) {
				t.Fatalf("trial %d (%s) batch %d (shards=%d): live diverges after fault\n  live:  %v\n  fresh: %v",
					trial, strat, batch, shards, gotRows, wantRows)
			}
			for _, v := range views {
				lr, fr := live.Database().Relation(v.Name()), fresh.Database().Relation(v.Name())
				var lt, ft []storage.Tuple
				if lr != nil {
					lt = lr.Tuples()
				}
				if fr != nil {
					ft = fr.Tuples()
				}
				if !storage.TuplesEqual(lt, ft) {
					t.Fatalf("trial %d (%s) batch %d: extent %s diverges after fault", trial, strat, batch, v.Name())
				}
			}
		}
	}
}
