package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdmitterAcquireRaceStress hammers admitter.acquire's three-way race —
// capacity grant vs context-fire vs queue-timeout — with hundreds of
// concurrent acquires and randomized cancels, under -race. Invariants:
//
//   - inUse never exceeds capacity and never goes negative, at any sampled
//     moment and at the end (drains to exactly 0);
//   - every attempt lands in exactly one outcome bucket (admitted, shed,
//     timed out, canceled), so the counters sum to the attempt count;
//   - the abandon-lost-race release path keeps the FIFO queue draining: a
//     fresh acquire after the storm is granted immediately.
func TestAdmitterAcquireRaceStress(t *testing.T) {
	const (
		capacity = 8
		workers  = 24
		perG     = 25 // 600 acquires total
	)
	a := &admitter{
		capacity:     capacity,
		maxQueue:     12,
		queueTimeout: 500 * time.Microsecond,
		retryHint:    func(queueLen int) time.Duration { return time.Millisecond },
	}

	// Invariant poller: samples inUse while the storm runs.
	stop := make(chan struct{})
	var pollerWG sync.WaitGroup
	pollerWG.Add(1)
	go func() {
		defer pollerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			a.mu.Lock()
			inUse, queued := a.inUse, len(a.queue)
			a.mu.Unlock()
			if inUse < 0 || inUse > capacity {
				panic("admitter inUse out of range") // t.Fatal is not goroutine-safe
			}
			if queued > a.maxQueue {
				panic("admitter queue over bound")
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()

	var admitted, refused atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				switch rng.Intn(4) {
				case 0: // pre-canceled: the context already fired
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				case 1: // fires mid-wait, racing the grant and the timeout
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(700))*time.Microsecond)
				case 2: // fires late
					ctx, cancel = context.WithTimeout(ctx, 5*time.Millisecond)
				default: // never fires
				}
				weight := 1 + rng.Intn(2)
				err := a.acquire(ctx, weight)
				if err == nil {
					admitted.Add(1)
					a.mu.Lock()
					inUse := a.inUse
					a.mu.Unlock()
					if inUse < 1 || inUse > capacity {
						panic("admitter inUse out of range after grant")
					}
					if rng.Intn(2) == 0 {
						time.Sleep(time.Duration(rng.Intn(150)) * time.Microsecond)
					}
					a.release(weight)
				} else {
					if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrCanceled) {
						panic("unexpected acquire error: " + err.Error())
					}
					refused.Add(1)
				}
				if cancel != nil {
					cancel()
				}
			}
		}(int64(g) * 7919)
	}
	wg.Wait()
	close(stop)
	pollerWG.Wait()

	a.mu.Lock()
	inUse, queued, st := a.inUse, len(a.queue), a.stats
	a.mu.Unlock()
	if inUse != 0 {
		t.Fatalf("inUse = %d after drain, want 0", inUse)
	}
	if queued != 0 {
		t.Fatalf("queue holds %d waiters after drain, want 0", queued)
	}
	attempts := uint64(workers * perG)
	if got := st.Admitted + st.Shed + st.TimedOut + st.Canceled; got != attempts {
		t.Fatalf("outcome counters sum to %d (%+v), want %d — an attempt was double- or un-counted", got, st, attempts)
	}
	if st.Admitted != admitted.Load() {
		t.Fatalf("stats.Admitted = %d, callers saw %d grants", st.Admitted, admitted.Load())
	}
	if st.Shed+st.TimedOut+st.Canceled != refused.Load() {
		t.Fatalf("stats refusals = %d, callers saw %d", st.Shed+st.TimedOut+st.Canceled, refused.Load())
	}

	// The queue must still drain: a fresh request is granted immediately.
	granted := make(chan error, 1)
	go func() { granted <- a.acquire(context.Background(), 1) }()
	select {
	case err := <-granted:
		if err != nil {
			t.Fatalf("post-storm acquire failed: %v", err)
		}
		a.release(1)
	case <-time.After(time.Second):
		t.Fatal("post-storm acquire blocked: the queue stopped draining")
	}
}

// TestAdmitterLostRaceRelease targets the abandon-lost-race path directly:
// a waiter whose context fires at the same moment the grant arrives must
// return the capacity so later waiters are not starved.
func TestAdmitterLostRaceRelease(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		a := &admitter{
			capacity:  1,
			maxQueue:  4,
			retryHint: func(int) time.Duration { return time.Millisecond },
		}
		if err := a.acquire(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() { errc <- a.acquire(ctx, 1) }()
		// Wait for the waiter to queue, then race the grant and the cancel.
		for {
			a.mu.Lock()
			n := len(a.queue)
			a.mu.Unlock()
			if n == 1 {
				break
			}
			time.Sleep(10 * time.Microsecond)
		}
		go a.release(1)
		go cancel()
		if err := <-errc; err == nil {
			a.release(1)
		}
		// Whatever the race outcome, all capacity must be back.
		deadline := time.Now().Add(time.Second)
		for {
			a.mu.Lock()
			inUse, queued := a.inUse, len(a.queue)
			a.mu.Unlock()
			if inUse == 0 && queued == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("trial %d: capacity leaked: inUse=%d queued=%d", trial, inUse, queued)
			}
			time.Sleep(10 * time.Microsecond)
		}
	}
}
