package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/storage"
)

// durOpts returns live-engine options rooted at a test data dir. WALNoSync
// keeps the suite fast; the bytes still reach the OS, which is all the
// crash-simulation tests below rely on (they drop the engine, they do not
// kill the process).
func durOpts(dir string) Options {
	return Options{
		LiveUpdates:      true,
		DataDir:          dir,
		WALNoSync:        true,
		SnapshotWALBytes: -1, // no background checkpoints unless a test wants them
	}
}

func mustAnswer(t *testing.T, e *Engine, q *cq.Query) []storage.Tuple {
	t.Helper()
	rows, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestDurableRecoveryAfterClose(t *testing.T) {
	dir := t.TempDir()
	base, views := testBase(t)
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")

	e, err := NewFromBase(base, views, durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyUpdate(map[string][]storage.Tuple{"r": {{"c", "m"}}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyUpdate(map[string][]storage.Tuple{"s": {{"n", "z"}}}, map[string][]storage.Tuple{"r": {{"a", "m"}}}); err != nil {
		t.Fatal(err)
	}
	want := mustAnswer(t, e, q)
	st := e.Stats().Durable
	if !st.Enabled || st.LSN != 2 || st.Snapshots != 1 {
		t.Fatalf("pre-close durable stats = %+v, want enabled, lsn 2, one boot snapshot", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// A graceful close checkpoints, so the reopen must come entirely from
	// the snapshot: no WAL batches to replay.
	re, err := NewFromBase(nil, views, durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := mustAnswer(t, re, q); !storage.TuplesEqual(got, want) {
		t.Fatalf("recovered answers %v, want %v", got, want)
	}
	st = re.Stats().Durable
	if st.RecoveredBatches != 0 || st.RecoveredTuples == 0 || st.StaleRebuild || st.ColdStart <= 0 {
		t.Fatalf("recovery stats = %+v, want cold start from snapshot with zero replayed batches", st)
	}
	// Mutations keep working after recovery, and the LSN keeps rising from
	// the snapshot's position.
	if err := re.ApplyUpdate(map[string][]storage.Tuple{"r": {{"d", "n"}}}, nil); err != nil {
		t.Fatal(err)
	}
	if got := re.Stats().Durable.LSN; got != 3 {
		t.Fatalf("post-recovery LSN = %d, want 3", got)
	}
}

func TestDurableCrashRecoveryReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	base, views := testBase(t)
	shadow := base.Clone()
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")

	e, err := NewFromBase(base, views, durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	batches := []struct {
		ins, del map[string][]storage.Tuple
	}{
		{ins: map[string][]storage.Tuple{"r": {{"c", "m"}, {"c", "n"}}}},
		{del: map[string][]storage.Tuple{"s": {{"n", "y"}}}},
		{ins: map[string][]storage.Tuple{"s": {{"n", "w"}}}, del: map[string][]storage.Tuple{"r": {{"b", "n"}}}},
	}
	for _, b := range batches {
		if err := e.ApplyUpdate(b.ins, b.del); err != nil {
			t.Fatal(err)
		}
		for pred, tuples := range b.del {
			for _, tup := range tuples {
				shadow.Remove(pred, tup)
			}
		}
		for pred, tuples := range b.ins {
			for _, tup := range tuples {
				shadow.Insert(pred, tup)
			}
		}
	}
	// Crash: the engine is dropped without Close — no shutdown checkpoint,
	// the batches exist only in the WAL behind the boot snapshot.

	re, err := NewFromBase(nil, views, durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	fresh, err := NewFromBase(shadow, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustAnswer(t, re, q), mustAnswer(t, fresh, q); !storage.TuplesEqual(got, want) {
		t.Fatalf("crash-recovered answers %v, want %v", got, want)
	}
	st := re.Stats().Durable
	if st.RecoveredBatches != len(batches) || st.LSN != uint64(len(batches)) {
		t.Fatalf("recovery stats = %+v, want %d replayed batches", st, len(batches))
	}
}

// TestDurableCrashDifferential is the randomized acceptance test: random
// mixed batches, a simulated crash at a random point (engine dropped, no
// checkpoint), recovery, and a differential check against an engine built
// fresh from the shadow base that folded exactly the acknowledged batches.
func TestDurableCrashDifferential(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	rng := rand.New(rand.NewSource(0xD15C))
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	for trial := 0; trial < trials; trial++ {
		dir := t.TempDir()
		base, views := testBase(t)
		shadow := base.Clone()
		e, err := NewFromBase(base, views, durOpts(dir))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		nBatches := 1 + rng.Intn(6)
		for b := 0; b < nBatches; b++ {
			ins := make(map[string][]storage.Tuple)
			del := make(map[string][]storage.Tuple)
			for i := 0; i < 1+rng.Intn(4); i++ {
				pred, arity := "r", 2
				if rng.Intn(3) == 0 {
					pred = "s"
				}
				tup := storage.Tuple{fmt.Sprintf("a%d", rng.Intn(6)), fmt.Sprintf("m%d", rng.Intn(6))}
				_ = arity
				if rng.Intn(4) == 0 {
					del[pred] = append(del[pred], tup)
				} else {
					ins[pred] = append(ins[pred], tup)
				}
			}
			if err := e.ApplyUpdate(ins, del); err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, b, err)
			}
			// Acknowledged: the recovered engine must reflect it.
			for pred, tuples := range del {
				for _, tup := range tuples {
					shadow.Remove(pred, tup)
				}
			}
			for pred, tuples := range ins {
				for _, tup := range tuples {
					shadow.Insert(pred, tup)
				}
			}
		}
		// Crash (drop without Close), recover, compare.
		re, err := NewFromBase(nil, views, durOpts(dir))
		if err != nil {
			t.Fatalf("trial %d: recover: %v", trial, err)
		}
		fresh, err := NewFromBase(shadow, views, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, want := mustAnswer(t, re, q), mustAnswer(t, fresh, q)
		if !storage.TuplesEqual(got, want) {
			t.Fatalf("trial %d (%d batches): recovered engine diverges\n  got:  %v\n  want: %v", trial, nBatches, got, want)
		}
		if !re.Database().Equal(fresh.Database()) {
			t.Fatalf("trial %d: recovered database diverges:\n%s\nvs\n%s", trial, re.Database().Summary(), fresh.Database().Summary())
		}
		re.Close()
	}
}

func TestDurableStaleFingerprintRebuilds(t *testing.T) {
	dir := t.TempDir()
	base, views := testBase(t)
	e, err := NewFromBase(base, views, durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyUpdate(map[string][]storage.Tuple{"r": {{"c", "m"}}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen under a different view set: the snapshot's extents are stale,
	// the base facts (including the WAL-covered insert) are not.
	newViews, err := cq.ParseViews(`
		vr(A,B) :- r(A,B).
		vs(A,B) :- s(A,B).
	`)
	if err != nil {
		t.Fatal(err)
	}
	var logbuf strings.Builder
	opt := durOpts(dir)
	opt.Logf = func(format string, args ...any) { fmt.Fprintf(&logbuf, format+"\n", args...) }
	re, err := NewFromBase(nil, newViews, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats().Durable
	if !st.StaleRebuild {
		t.Fatalf("durable stats = %+v, want StaleRebuild", st)
	}
	if !strings.Contains(logbuf.String(), "different view definitions") {
		t.Fatalf("no stale-snapshot warning logged; log:\n%s", logbuf.String())
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X,Y)")
	got := mustAnswer(t, re, q)
	found := false
	for _, row := range got {
		if row[0] == "c" && row[1] == "m" {
			found = true
		}
	}
	if !found {
		t.Fatalf("WAL-covered base fact lost across stale rebuild: %v", got)
	}
}

func TestDurableFailStop(t *testing.T) {
	dir := t.TempDir()
	base, views := testBase(t)
	e, err := NewFromBase(base, views, durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	want := mustAnswer(t, e, cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)"))

	// Sabotage the log: closing the store underneath the engine makes every
	// later append fail, which must surface as ErrDurability and leave the
	// read path serving the last published state.
	if err := e.dur.store.Close(); err != nil {
		t.Fatal(err)
	}
	uerr := e.ApplyUpdate(map[string][]storage.Tuple{"r": {{"zz", "zz"}}}, nil)
	if !errors.Is(uerr, ErrDurability) {
		t.Fatalf("update after WAL failure returned %v, want ErrDurability", uerr)
	}
	if code := ErrorCode(uerr); code != CodeDurability {
		t.Fatalf("ErrorCode = %q, want %q", code, CodeDurability)
	}
	got := mustAnswer(t, e, cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)"))
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("reads changed after failed update: %v vs %v", got, want)
	}
}

func TestDurableCheckpointThreshold(t *testing.T) {
	dir := t.TempDir()
	base, views := testBase(t)
	opt := durOpts(dir)
	opt.SnapshotWALBytes = 1 // every batch crosses the threshold
	e, err := NewFromBase(base, views, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.ApplyUpdate(map[string][]storage.Tuple{"r": {{"c", "m"}}}, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := e.Stats().Durable
		if st.Snapshots >= 2 && st.SnapshotLSN == st.LSN {
			break // boot snapshot + threshold-triggered one
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpoint never caught up: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDurableExplicitCheckpoint(t *testing.T) {
	dir := t.TempDir()
	base, views := testBase(t)
	e, err := NewFromBase(base, views, durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.ApplyUpdate(map[string][]storage.Tuple{"r": {{"c", "m"}}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats().Durable
	if st.Snapshots != 2 || st.SnapshotLSN != st.LSN {
		t.Fatalf("after Checkpoint: %+v, want snapshot at LSN %d", st, st.LSN)
	}
}

// TestDurableFrozenStrategies covers DataDir without LiveUpdates for every
// strategy: the engine snapshots its materialized state at first boot and
// serves identical answers on the second.
func TestDurableFrozenStrategies(t *testing.T) {
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	for _, strat := range Strategies() {
		dir := t.TempDir()
		base, views := testBase(t)
		opt := Options{Strategy: strat, DataDir: dir, WALNoSync: true}
		e, err := NewFromBase(base, views, opt)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		want := mustAnswer(t, e, q)
		if err := e.Close(); err != nil {
			t.Fatalf("%s: close: %v", strat, err)
		}
		re, err := NewFromBase(nil, views, opt)
		if err != nil {
			t.Fatalf("%s: reopen: %v", strat, err)
		}
		if got := mustAnswer(t, re, q); !storage.TuplesEqual(got, want) {
			t.Fatalf("%s: recovered answers %v, want %v", strat, got, want)
		}
		st := re.Stats().Durable
		if st.RecoveredTuples == 0 {
			t.Fatalf("%s: second boot did not load the snapshot: %+v", strat, st)
		}
		re.Close()
	}
}

func TestDurableCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	base, views := testBase(t)
	e, err := NewFromBase(base, views, durOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// A memory-only engine's Close is a no-op.
	mem, err := NewFromBase(testBaseDB(t), views, Options{LiveUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Fatalf("memory-only Close: %v", err)
	}
}

func testBaseDB(t *testing.T) *storage.Database {
	t.Helper()
	db, _ := testBase(t)
	return db
}
