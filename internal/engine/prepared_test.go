package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/storage"
)

// pointBase builds a base of n r/s chain tuples for point-lookup streams:
// r(k<i>, m<i%40>), s(m<j>, x<j%7>), with views covering the join and the
// single relations.
func pointBase(t testing.TB, n int) (*storage.Database, []*cq.Query) {
	t.Helper()
	base := storage.NewDatabase()
	for i := 0; i < n; i++ {
		base.Insert("r", storage.Tuple{fmt.Sprintf("k%d", i), fmt.Sprintf("m%d", i%40)})
	}
	for j := 0; j < 40; j++ {
		base.Insert("s", storage.Tuple{fmt.Sprintf("m%d", j), fmt.Sprintf("x%d", j%7)})
	}
	views, err := cq.ParseViews(`
		v(A,B)  :- r(A,C), s(C,B).
		vr(A,B) :- r(A,B).
		vs(A,B) :- s(A,B).
	`)
	if err != nil {
		t.Fatal(err)
	}
	return base, views
}

// TestTemplateCacheSharesPointLookupStream is the acceptance criterion: a
// 1000-query stream of point lookups differing only in their constant
// compiles exactly one plan — one cache miss, 999 template hits.
func TestTemplateCacheSharesPointLookupStream(t *testing.T) {
	base, views := pointBase(t, 1000)
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		q := cq.MustParseQuery(fmt.Sprintf("q(Y) :- r(k%d,Z), s(Z,Y)", i))
		got, err := e.Answer(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want := datalog.EvalQuery(base, q)
		if !storage.TuplesEqual(got, want) {
			t.Fatalf("query %d: got %v want %v", i, got, want)
		}
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 999 {
		t.Fatalf("stats = %d misses / %d hits, want 1/999 (one plan per template)", st.Misses, st.Hits)
	}
	if st.CacheLen != 1 {
		t.Fatalf("cache holds %d plans, want 1", st.CacheLen)
	}
	agg := st.PerStrategy[EquivalentFirst]
	if agg.Plans != 1 || agg.Hits != 999 {
		t.Fatalf("per-strategy = %+v, want 1 plan and 999 attributed hits", agg)
	}
}

func TestPrepareExec(t *testing.T) {
	base, views := pointBase(t, 50)
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := e.Prepare(cq.MustParseQuery("q(Y) :- r(k3,Z), s(Z,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if pq.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", pq.NumParams())
	}
	if args := pq.Args(); len(args) != 1 || args[0] != "k3" {
		t.Fatalf("Args = %v, want [k3]", args)
	}
	// Default binding reproduces Answer of the original query.
	got, err := pq.Exec(pq.Args()...)
	if err != nil {
		t.Fatal(err)
	}
	want := datalog.EvalQuery(base, cq.MustParseQuery("q(Y) :- r(k3,Z), s(Z,Y)"))
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("Exec(k3) = %v, want %v", got, want)
	}
	// A fresh binding answers the other query without touching the cache.
	got, err = pq.Exec("k7")
	if err != nil {
		t.Fatal(err)
	}
	want = datalog.EvalQuery(base, cq.MustParseQuery("q(Y) :- r(k7,Z), s(Z,Y)"))
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("Exec(k7) = %v, want %v", got, want)
	}
	if st := e.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	// Arity mismatches are errors, not panics.
	if _, err := pq.Exec(); err == nil {
		t.Fatal("Exec with missing argument accepted")
	}
	if _, err := pq.Exec("a", "b"); err == nil {
		t.Fatal("Exec with surplus arguments accepted")
	}
}

func TestEvalRejectsParameterizedPlan(t *testing.T) {
	base, views := pointBase(t, 10)
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Plan(cq.MustParseQuery("q(Y) :- r(k1,Z), s(Z,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Params) != 1 {
		t.Fatalf("plan params = %v, want one placeholder", p.Params)
	}
	if _, err := e.Eval(p); err == nil {
		t.Fatal("Eval accepted a parameterized plan")
	}
}

// TestPreparedExecMatchesAnswer is the randomized differential: for every
// strategy, prepared Exec under random bindings must agree with Answer of
// the concrete query and with direct evaluation over base.
func TestPreparedExecMatchesAnswer(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	base, views := pointBase(t, 120)
	rng := rand.New(rand.NewSource(17))
	shapes := []string{
		"q(Y) :- r(%s,Z), s(Z,Y)",
		"q(X) :- r(X,Z), s(Z,%s)",
		"q(X,Y) :- r(X,%s), s(%s,Y)", // two params, possibly equal
	}
	for _, strat := range Strategies() {
		e, err := NewFromBase(base, views, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		for trial := 0; trial < trials; trial++ {
			shape := shapes[rng.Intn(len(shapes))]
			var consts []any
			switch shape {
			case shapes[0]:
				consts = []any{fmt.Sprintf("k%d", rng.Intn(140))}
			case shapes[1]:
				consts = []any{fmt.Sprintf("x%d", rng.Intn(9))}
			default:
				a := fmt.Sprintf("m%d", rng.Intn(45))
				b := a
				if rng.Intn(2) == 0 {
					b = fmt.Sprintf("m%d", rng.Intn(45))
				}
				consts = []any{a, b}
			}
			q := cq.MustParseQuery(fmt.Sprintf(shape, consts...))
			pq, err := e.Prepare(q)
			if err != nil {
				t.Fatalf("%s %s: %v", strat, q, err)
			}
			exec, err := pq.Exec(pq.Args()...)
			if err != nil {
				t.Fatalf("%s %s: Exec: %v", strat, q, err)
			}
			ans, err := e.Answer(q)
			if err != nil {
				t.Fatalf("%s %s: Answer: %v", strat, q, err)
			}
			if !storage.TuplesEqual(exec, ans) {
				t.Fatalf("%s %s: Exec %v != Answer %v", strat, q, exec, ans)
			}
			// The views cover every predicate identically, so all
			// strategies are exact here: compare against base truth.
			want := datalog.EvalQuery(base, q)
			if !storage.TuplesEqual(exec, want) {
				t.Fatalf("%s %s: Exec %v, base truth %v", strat, q, exec, want)
			}
		}
	}
}

// TestAutoAccounting checks the Auto strategy records the chosen algorithm
// and estimate per plan and attributes cache hits to it.
func TestAutoAccounting(t *testing.T) {
	base, views := pointBase(t, 60)
	e, err := NewFromBase(base, views, Options{Strategy: Auto})
	if err != nil {
		t.Fatal(err)
	}
	// Equivalent rewriting exists: Auto must choose the equivalent-first
	// algorithm and stamp the plan with it.
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	p, err := e.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != Auto || p.Chosen != EquivalentFirst || p.Kind != PlanEquivalent {
		t.Fatalf("plan strategy=%s chosen=%s kind=%s", p.Strategy, p.Chosen, p.Kind)
	}
	if p.Estimate.Cost <= 0 {
		t.Fatalf("estimate not recorded: %+v", p.Estimate)
	}
	if _, err := e.Answer(q); err != nil { // hit
		t.Fatal(err)
	}
	st := e.Stats()
	if agg := st.PerStrategy[EquivalentFirst]; agg.Plans != 1 || agg.Hits != 1 {
		t.Fatalf("equivalent-first accounting = %+v, want 1 plan / 1 hit", agg)
	}
	if agg := st.PerStrategy[Auto]; agg.Plans != 0 {
		t.Fatalf("work booked under the 'auto' label: %+v", agg)
	}
}

// TestAutoPicksMiniConOverInverse: no equivalent rewriting exists but the
// MCR is non-empty and cheaper than the inverse-rules fixpoint, so Auto
// must choose MiniCon — and attribute the plan to it.
func TestAutoPicksMiniConOverInverse(t *testing.T) {
	base := storage.NewDatabase()
	for i := 0; i < 30; i++ {
		base.Insert("r", storage.Tuple{fmt.Sprint(i), fmt.Sprint(i + 1)})
		if i%2 == 0 {
			base.Insert("s", storage.Tuple{fmt.Sprint(i + 1)})
		}
	}
	// v is strictly more selective than r: recovering r exactly is
	// impossible, but v still answers part of the query.
	views, err := cq.ParseViews("v(A,B) :- r(A,B), s(B).")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromBase(base, views, Options{Strategy: Auto})
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Plan(cq.MustParseQuery("q(X) :- r(X,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Chosen != MiniCon || p.Kind != PlanMaxContained || p.Union.Len() == 0 {
		t.Fatalf("chosen=%s kind=%s union=%d, want non-empty minicon", p.Chosen, p.Kind, p.Union.Len())
	}
	if st := e.Stats(); st.PerStrategy[MiniCon].Plans != 1 {
		t.Fatalf("per-strategy = %+v, want the plan booked under minicon", st.PerStrategy)
	}
}

// TestAutoFallsBackToInverseOnEmptyMCR: when the MCR is empty the inverse
// program is the only route that could still derive certain answers.
func TestAutoFallsBackToInverseOnEmptyMCR(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "b"})
	views, err := cq.ParseViews("vr(A,B) :- r(A,B).")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromBase(base, views, Options{Strategy: Auto})
	if err != nil {
		t.Fatal(err)
	}
	// s is covered by no view: the MCR is empty.
	p, err := e.Plan(cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Chosen != InverseRules || p.Kind != PlanInverseProgram {
		t.Fatalf("chosen=%s kind=%s, want inverse program", p.Chosen, p.Kind)
	}
	if st := e.Stats(); st.PerStrategy[InverseRules].Plans != 1 {
		t.Fatalf("per-strategy = %+v", st.PerStrategy)
	}
}

// TestEquivalentFirstFallbackAttribution: the MiniCon fallback of the
// default strategy books its work under minicon, not equivalent-first.
func TestEquivalentFirstFallbackAttribution(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	views, err := cq.ParseViews("vr(A,B) :- r(A,B).")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	p, err := e.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Chosen != MiniCon {
		t.Fatalf("chosen = %s, want minicon fallback", p.Chosen)
	}
	if _, err := e.Answer(q); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if agg := st.PerStrategy[MiniCon]; agg.Plans != 1 || agg.Hits != 1 {
		t.Fatalf("minicon accounting = %+v, want 1 plan / 1 hit", agg)
	}
}

// TestMaxResultsKeepsCheapest: with MaxResults > 1 the engine enumerates
// equivalent rewritings and keeps the one the cost model ranks cheapest —
// its recorded estimate must match an independent Choose over the same
// candidate set.
func TestMaxResultsKeepsCheapest(t *testing.T) {
	base, views := pointBase(t, 200)
	e, err := NewFromBase(base, views, Options{MaxResults: core.AllRewritings})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(Y) :- r(p0,Z), s(Z,Y)")
	p, err := e.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanEquivalent {
		t.Fatalf("kind = %s", p.Kind)
	}
	// Re-enumerate the same candidates independently and cost them with
	// the parameters bound, exactly like the engine.
	tmpl := cq.CanonicalizeTemplate(q)
	r := core.NewRewriter(e.Views())
	r.Opt.MaxResults = core.AllRewritings
	results, _ := r.Rewrite(tmpl.PlanQuery())
	if len(results) < 2 {
		t.Fatalf("want multiple equivalent rewritings, got %d", len(results))
	}
	candidates := make([]*cq.Query, len(results))
	for i, rw := range results {
		candidates[i] = rw.Query
	}
	best, ests := cost.ChooseWith(cost.NewCatalog(e.Database()), candidates, tmpl.Params)
	if p.Estimate.Cost != ests[best].Cost {
		t.Fatalf("plan estimate %v, independent cheapest %v", p.Estimate.Cost, ests[best].Cost)
	}
	for _, est := range ests {
		if est.Cost < p.Estimate.Cost {
			t.Fatalf("engine kept cost %v, cheaper candidate %v exists", p.Estimate.Cost, est.Cost)
		}
	}
}

// TestConstantViewsDisableAbstraction: with a constant in a view
// definition, per-text plans are kept (a generic plan could miss
// rewritings that hinge on the constant), and answers stay exact.
func TestConstantViewsDisableAbstraction(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "tag"})
	base.Insert("r", storage.Tuple{"b", "tag"})
	base.Insert("r", storage.Tuple{"c", "other"})
	views, err := cq.ParseViews("v(A) :- r(A,tag).")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	qTag := cq.MustParseQuery("q(X) :- r(X,tag)")
	got, err := e.Answer(qTag)
	if err != nil {
		t.Fatal(err)
	}
	// The constant-specific rewriting via v must be found.
	if !storage.TuplesEqual(got, []storage.Tuple{{"a"}, {"b"}}) {
		t.Fatalf("answers = %v, want a and b", got)
	}
	p, err := e.Plan(qTag)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Params) != 0 {
		t.Fatalf("abstraction active despite constant views: params=%v", p.Params)
	}
	// A different constant is a different plan (old per-text behaviour).
	if _, err := e.Plan(cq.MustParseQuery("q(X) :- r(X,other)")); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 per-text plans", st.Misses)
	}
}

// TestGroundComparisonSurvivesTemplating: abstracting a body constant must
// not rewrite its comparison occurrences — `5 > 3` stays ground-true in
// the template, so the equivalent rewriting is still found under the
// default KeepComparisons=false (regression: abstraction once turned it
// into the undecidable `V0 > 3` and the answer was silently lost).
func TestGroundComparisonSurvivesTemplating(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"5", "y"})
	views, err := cq.ParseViews("v(A,B) :- r(A,B).")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Answer(cq.MustParseQuery("q(Y) :- r(5,Y), 5 > 3"))
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(got, []storage.Tuple{{"y"}}) {
		t.Fatalf("ground-true comparison lost the answer: %v", got)
	}
	got, err = e.Answer(cq.MustParseQuery("q(Y) :- r(5,Y), 5 > 9"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("ground-false comparison answered: %v", got)
	}
	// The two templates differ only in the concrete threshold: both are
	// parameterized on the atom constant, neither shares the other's plan.
	if st := e.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (thresholds are template identity)", st.Misses)
	}
}

// TestInverseRulesKeepsConstantsInProgram: the fixed InverseRules strategy
// compiles query constants into the program (no abstraction) — the query
// rule's join stays restricted — so distinct constants are distinct plans.
func TestInverseRulesKeepsConstantsInProgram(t *testing.T) {
	base, views := pointBase(t, 20)
	e, err := NewFromBase(base, views, Options{Strategy: InverseRules})
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Plan(cq.MustParseQuery("q(Y) :- r(k1,Z), s(Z,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Params) != 0 {
		t.Fatalf("inverse plan abstracted constants: params=%v", p.Params)
	}
	if _, err := e.Plan(cq.MustParseQuery("q(Y) :- r(k2,Z), s(Z,Y)")); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 per-text inverse plans", st.Misses)
	}
}

// TestAutoParameterizedInverseLastResort: under Auto a parameterized
// template takes the inverse route only when the MCR is empty; the plan
// carries the placeholders and Exec filters the derived relation.
func TestAutoParameterizedInverseLastResort(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "m"})
	views, err := cq.ParseViews("vr(A,B) :- r(A,B).")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromBase(base, views, Options{Strategy: Auto})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := e.Prepare(cq.MustParseQuery("q(Y) :- r(a,Z), s(Z,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	p := pq.Plan()
	if p.Chosen != InverseRules || len(p.Params) != 1 {
		t.Fatalf("chosen=%s params=%v, want parameterized inverse fallback", p.Chosen, p.Params)
	}
	// s is underivable from the views: certain answers are empty for any
	// binding, and the parameter filter must not error.
	for _, arg := range []string{"a", "zz"} {
		got, err := pq.Exec(arg)
		if err != nil {
			t.Fatalf("Exec(%s): %v", arg, err)
		}
		if len(got) != 0 {
			t.Fatalf("Exec(%s) = %v, want no certain answers", arg, got)
		}
	}
}

func TestSelectParams(t *testing.T) {
	rows := []storage.Tuple{
		{"x1", "k1"}, {"x2", "k1"}, {"x3", "k2"}, {"x1"}, // short row ignored
	}
	got := selectParams(rows, 1, []string{"k1"})
	want := []storage.Tuple{{"x1"}, {"x2"}}
	if !storage.TuplesEqual(storage.SortTuples(got), want) {
		t.Fatalf("selectParams = %v, want %v", got, want)
	}
	if out := selectParams(rows, 1, nil); len(out) != len(rows) {
		t.Fatalf("no-arg selectParams filtered: %v", out)
	}
	if out := selectParams(rows, 1, []string{"k9"}); len(out) != 0 {
		t.Fatalf("unmatched binding returned %v", out)
	}
}

// TestPreparedLiveUpdates: a prepared handle keeps answering correctly as
// live batches maintain the extents.
func TestPreparedLiveUpdates(t *testing.T) {
	base, views := pointBase(t, 30)
	e, err := NewFromBase(base, views, Options{LiveUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := e.Prepare(cq.MustParseQuery("q(Y) :- r(k1,Z), s(Z,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	before, err := pq.Exec("k999")
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 0 {
		t.Fatalf("unexpected answers before insert: %v", before)
	}
	if err := e.ApplyBatch(map[string][]storage.Tuple{"r": {{"k999", "m3"}}}); err != nil {
		t.Fatal(err)
	}
	after, err := pq.Exec("k999")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 {
		t.Fatalf("answers after insert = %v, want the maintained join", after)
	}
	if st := e.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want the prepared plan to survive the update", st.Misses)
	}
}
