package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/storage"
	"repro/internal/workload"
)

// TestLiveEngineBasics: inserts flow into the extents, answers update,
// cached plans survive (the second Answer is a cache hit, not a re-plan),
// and the update counters surface in Stats.
func TestLiveEngineBasics(t *testing.T) {
	base, views := testBase(t)
	e, err := NewFromBase(base, views, Options{LiveUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	before, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 2 {
		t.Fatalf("initial answers = %v", before)
	}

	// r(c,n) joins the existing s(n,y).
	if err := e.Insert("r", storage.Tuple{"c", "n"}); err != nil {
		t.Fatal(err)
	}
	after, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 3 {
		t.Fatalf("post-insert answers = %v, want 3", after)
	}
	// The new answer came through the maintained v extent.
	if !e.Database().Relation("v").Contains(storage.Tuple{"c", "y"}) {
		t.Fatal("extent v not maintained")
	}

	// A multi-predicate batch whose join halves arrive together.
	err = e.ApplyBatch(map[string][]storage.Tuple{
		"r": {{"d", "o"}},
		"s": {{"o", "z"}, {"n", "y"}}, // second tuple is a duplicate
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 4 {
		t.Fatalf("final answers = %v, want 4", final)
	}

	st := e.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/1 — plans must survive updates", st.Hits, st.Misses)
	}
	if st.UpdateBatches != 2 {
		t.Fatalf("UpdateBatches = %d, want 2", st.UpdateBatches)
	}
	if st.UpdateTuples != 3 { // r(c,n), r(d,o), s(o,z); the duplicate does not count
		t.Fatalf("UpdateTuples = %d, want 3", st.UpdateTuples)
	}
	if st.DeltaDerived == 0 {
		t.Fatalf("DeltaDerived = 0, want maintained extent tuples")
	}
	if st.MaintainTime <= 0 {
		t.Fatalf("MaintainTime = %v", st.MaintainTime)
	}

	// Inserting into a view extent is rejected.
	if err := e.Insert("v", storage.Tuple{"x", "y"}); err == nil {
		t.Fatal("insert into view extent accepted")
	}
}

// TestLiveEngineAllStrategies: after a stream of batches, every strategy's
// live engine answers exactly like an engine rebuilt from the accumulated
// base.
func TestLiveEngineAllStrategies(t *testing.T) {
	base, views := testBase(t)
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	batches := []map[string][]storage.Tuple{
		{"r": {{"c", "n"}, {"c", "m"}}},
		{"s": {{"m", "w"}}, "t": {{"n"}}},
		{"r": {{"e", "p"}}, "s": {{"p", "u"}}},
	}
	for _, strat := range Strategies() {
		live, err := NewFromBase(base, views, Options{Strategy: strat, LiveUpdates: true})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		shadow := base.Clone()
		for bi, batch := range batches {
			if err := live.ApplyBatch(batch); err != nil {
				t.Fatalf("%s batch %d: %v", strat, bi, err)
			}
			for pred, tuples := range batch {
				for _, tup := range tuples {
					if err := shadow.Insert(pred, tup); err != nil {
						t.Fatal(err)
					}
				}
			}
			fresh, err := NewFromBase(shadow, views, Options{Strategy: strat})
			if err != nil {
				t.Fatalf("%s batch %d: rebuild: %v", strat, bi, err)
			}
			got, err := live.Answer(q)
			if err != nil {
				t.Fatalf("%s batch %d: live answer: %v", strat, bi, err)
			}
			want, err := fresh.Answer(q)
			if err != nil {
				t.Fatalf("%s batch %d: fresh answer: %v", strat, bi, err)
			}
			if !storage.TuplesEqual(got, want) {
				t.Fatalf("%s batch %d: live %v, rebuilt %v", strat, bi, got, want)
			}
		}
		if strat == InverseRules {
			if live.Database().Relation("r") != nil {
				t.Fatal("live inverse-rules engine must not serve base relations")
			}
		}
	}
}

func TestLiveEngineErrors(t *testing.T) {
	base, views := testBase(t)
	static, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := static.Insert("r", storage.Tuple{"z", "z"}); err != ErrNotLive {
		t.Fatalf("static insert err = %v, want ErrNotLive", err)
	}
	vs := static.Views()
	if _, err := New(vs, nil, Options{LiveUpdates: true}); err == nil {
		t.Fatal("New with LiveUpdates accepted (needs NewFromBase)")
	}
	live, err := NewFromBase(base, views, Options{LiveUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	// Arity mismatch leaves everything unchanged.
	if err := live.InsertBatch("r", []storage.Tuple{{"only-one"}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if got, _ := live.Answer(cq.MustParseQuery("q3(X,Y) :- r(X,Y)")); len(got) != 2 {
		t.Fatalf("failed batch changed answers: %v", got)
	}
}

// TestLiveEngineDifferential drives randomized update streams interleaved
// with queries through live engines and cross-checks every answer against
// an engine rebuilt from scratch on the accumulated base.
func TestLiveEngineDifferential(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	rng := rand.New(rand.NewSource(0x11FE))
	const chainLen = 3
	q := workload.ChainQuery(chainLen, true)
	strategies := Strategies()
	for trial := 0; trial < trials; trial++ {
		base := workload.ChainDatabase(rng, chainLen, true, 30+rng.Intn(60), 25)
		views := workload.ChainViews(rng, chainLen, true, workload.DefaultViewSpec(3+rng.Intn(3)))
		strat := strategies[trial%len(strategies)]
		live, err := NewFromBase(base, views, Options{
			Strategy:    strat,
			LiveUpdates: true,
			EvalWorkers: 1 + rng.Intn(3),
		})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, strat, err)
		}
		shadow := base.Clone()
		for batch := 0; batch < 1+rng.Intn(4); batch++ {
			upd := make(map[string][]storage.Tuple)
			for i := 0; i < 1+rng.Intn(6); i++ {
				pred := fmt.Sprintf("p%d", 1+rng.Intn(chainLen))
				tup := storage.Tuple{fmt.Sprintf("c%d", rng.Intn(25)), fmt.Sprintf("c%d", rng.Intn(25))}
				upd[pred] = append(upd[pred], tup)
				shadow.Insert(pred, tup)
			}
			if err := live.ApplyBatch(upd); err != nil {
				t.Fatalf("trial %d (%s) batch %d: %v", trial, strat, batch, err)
			}
			fresh, err := NewFromBase(shadow, views, Options{Strategy: strat})
			if err != nil {
				t.Fatalf("trial %d (%s) batch %d: rebuild: %v", trial, strat, batch, err)
			}
			got, err := live.Answer(q)
			if err != nil {
				t.Fatalf("trial %d (%s) batch %d: live: %v", trial, strat, batch, err)
			}
			want, err := fresh.Answer(q)
			if err != nil {
				t.Fatalf("trial %d (%s) batch %d: fresh: %v", trial, strat, batch, err)
			}
			if !storage.TuplesEqual(got, want) {
				t.Fatalf("trial %d (%s) batch %d: live answers diverge from rebuilt engine\n  live:  %v\n  fresh: %v",
					trial, strat, batch, got, want)
			}
			// Extents themselves must match a full re-materialization.
			for _, v := range views {
				lr, fr := live.Database().Relation(v.Name()), fresh.Database().Relation(v.Name())
				if !storage.TuplesEqual(lr.Tuples(), fr.Tuples()) {
					t.Fatalf("trial %d (%s) batch %d: extent %s diverges", trial, strat, batch, v.Name())
				}
			}
		}
	}
}

// TestLiveEngineSnapshotRace runs concurrent Answer calls (EvalWorkers=4)
// against a stream of InsertBatch updates. The query is disconnected —
// its answer is the cross product of two separately updated relations —
// so a torn read (one relation pre-batch, the other post-batch) would
// produce an answer set matching no consistent state. Run under -race in
// CI, this also checks the snapshot locking itself.
func TestLiveEngineSnapshotRace(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"x0", "k"})
	base.Insert("s", storage.Tuple{"k", "y0"})
	views, err := cq.ParseViews(`
		vr(A,B) :- r(A,B).
		vs(A,B) :- s(A,B).
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Answer = π_X(r) × π_Y(s): each batch grows both factors together.
	q := cq.MustParseQuery("q(X,Y) :- r(X,U), s(W,Y)")

	const nBatches = 6
	// Legal answer sets: state k is {x0..xk} × {y0..yk}.
	states := make([]map[string]bool, nBatches+1)
	for k := 0; k <= nBatches; k++ {
		states[k] = make(map[string]bool)
		for i := 0; i <= k; i++ {
			for j := 0; j <= k; j++ {
				states[k][storage.Tuple{fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", j)}.Key()] = true
			}
		}
	}
	matchesState := func(answers []storage.Tuple) int {
		for k, st := range states {
			if len(answers) != len(st) {
				continue
			}
			ok := true
			for _, a := range answers {
				if !st[a.Key()] {
					ok = false
					break
				}
			}
			if ok {
				return k
			}
		}
		return -1
	}

	for _, strat := range []Strategy{EquivalentFirst, InverseRules} {
		e, err := NewFromBase(base, views, Options{Strategy: strat, LiveUpdates: true, EvalWorkers: 4})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		// Warm the plan cache before the writers start.
		if ans, err := e.Answer(q); err != nil || matchesState(ans) != 0 {
			t.Fatalf("%s: initial answer %v (err %v)", strat, ans, err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for n := 0; ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					got, err := e.Answer(q)
					if err != nil {
						t.Errorf("%s reader %d: %v", strat, g, err)
						return
					}
					if matchesState(got) < 0 {
						t.Errorf("%s reader %d: torn answer set (%d tuples): %v", strat, g, len(got), got)
						return
					}
				}
			}(g)
		}
		for k := 1; k <= nBatches; k++ {
			err := e.ApplyBatch(map[string][]storage.Tuple{
				"r": {{fmt.Sprintf("x%d", k), "k"}},
				"s": {{"k", fmt.Sprintf("y%d", k)}},
			})
			if err != nil {
				t.Errorf("%s batch %d: %v", strat, k, err)
				break
			}
		}
		close(stop)
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		// After the stream drains, readers must see exactly the final state.
		final, err := e.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if matchesState(final) != nBatches {
			t.Fatalf("%s: final state %v, want state %d", strat, final, nBatches)
		}
	}
}
