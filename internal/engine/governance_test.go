package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/storage"
)

// crossBase builds two unary relations whose product has n*n answers —
// enough work for a short deadline to land mid-evaluation — plus identity
// views so every strategy can rewrite over it.
func crossBase(t testing.TB, n int) (*storage.Database, []*cq.Query) {
	t.Helper()
	base := storage.NewDatabase()
	for i := 0; i < n; i++ {
		v := fmt.Sprintf("x%d", i)
		base.Insert("r", storage.Tuple{v})
		base.Insert("s", storage.Tuple{v})
	}
	views, err := cq.ParseViews(`
		vr(A) :- r(A).
		vs(A) :- s(A).
	`)
	if err != nil {
		t.Fatal(err)
	}
	return base, views
}

// TestAnswerBudgetDeadline is the acceptance scenario: a short deadline on
// an expensive inverse-rules query comes back ErrCanceled in bounded time
// with partial fixpoint stats, and the engine stays fully serviceable.
func TestAnswerBudgetDeadline(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 200
	}
	base, views := crossBase(t, n)
	e, err := NewFromBase(base, views, Options{Strategy: InverseRules})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X), s(Y)")
	start := time.Now()
	_, err = e.AnswerBudget(context.Background(), q, Budget{Deadline: 3 * time.Millisecond})
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("machine answered the n*n query inside the deadline")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline observed only after %v", elapsed)
	}
	// The fixpoint error carries partial-progress stats.
	var qe *QueryError
	if errors.As(err, &qe) {
		t.Logf("partial stats: %d iterations, %d derived", qe.Stats.Iterations, qe.Stats.Derived)
	}
	// Serviceable after: the same query without a deadline completes.
	got, err := e.Answer(q)
	if err != nil {
		t.Fatalf("engine not serviceable after canceled query: %v", err)
	}
	if len(got) != n*n {
		t.Fatalf("post-cancel answer has %d rows, want %d", len(got), n*n)
	}
}

func TestAnswerBudgetMaxResultRows(t *testing.T) {
	base, views := testBase(t)
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	for _, strat := range []Strategy{EquivalentFirst, MiniCon, InverseRules} {
		e, err := NewFromBase(base, views, Options{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		// The query has 2 answers; a 1-row budget trips, a 2-row one passes.
		_, err = e.AnswerBudget(context.Background(), q, Budget{MaxResultRows: 1})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("%s: err = %v, want ErrBudgetExceeded", strat, err)
		}
		got, err := e.AnswerBudget(context.Background(), q, Budget{MaxResultRows: 2})
		if err != nil {
			t.Fatalf("%s: exact-budget query failed: %v", strat, err)
		}
		if len(got) != 2 {
			t.Fatalf("%s: rows = %d, want 2", strat, len(got))
		}
	}
}

func TestAnswerBudgetMaxFixpointRounds(t *testing.T) {
	base, views := pointBase(t, 50)
	e, err := NewFromBase(base, views, Options{Strategy: InverseRules})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	_, err = e.AnswerBudget(context.Background(), q, Budget{MaxFixpointRounds: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("fixpoint budget error is %T, want *QueryError", err)
	}
	if qe.Stats.Iterations != 1 {
		t.Fatalf("partial stats Iterations = %d, want 1", qe.Stats.Iterations)
	}
	// The engine-wide default budget applies to plain Answer too.
	e2, err := NewFromBase(base, views, Options{
		Strategy: InverseRules,
		Budget:   Budget{MaxFixpointRounds: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Answer(q); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Options.Budget not applied: err = %v", err)
	}
	// A per-call override relaxes it.
	if _, err := e2.AnswerBudget(context.Background(), q, Budget{}); err != nil {
		t.Fatalf("per-call override failed: %v", err)
	}
}

func TestExecTypedArityError(t *testing.T) {
	base, views := pointBase(t, 50)
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := e.Prepare(cq.MustParseQuery("q(Y) :- r(k3,Z), s(Z,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Exec(); !errors.Is(err, ErrArityMismatch) {
		t.Fatalf("missing-arg err = %v, want ErrArityMismatch", err)
	}
	if _, err := pq.Exec("a", "b"); !errors.Is(err, ErrArityMismatch) {
		t.Fatalf("surplus-arg err = %v, want ErrArityMismatch", err)
	}
	// Eval on a parameterized plan is the same typed error.
	if _, err := e.Eval(pq.Plan()); !errors.Is(err, ErrArityMismatch) {
		t.Fatalf("Eval err = %v, want ErrArityMismatch", err)
	}
}

// TestPanicIsolation hand-crafts an inconsistent plan — a compiled form
// expecting one parameter but a Params list claiming none — so evaluation
// panics below the API boundary. The boundary must convert it to
// ErrInternal, count it, and leave the engine serviceable.
func TestPanicIsolation(t *testing.T) {
	base, views := pointBase(t, 50)
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := e.Prepare(cq.MustParseQuery("q(Y) :- r(k3,Z), s(Z,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	bad := *pq.Plan()
	bad.Params = nil // lie about the arity: EvalCtx admits it, evaluation panics
	_, err = e.EvalCtx(context.Background(), &bad)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err is %T, want *InternalError", err)
	}
	if ie.Value == nil || len(ie.Stack) == 0 {
		t.Fatalf("InternalError missing payload: %+v", ie)
	}
	if got := e.Stats().Panics; got != 1 {
		t.Fatalf("Stats().Panics = %d, want 1", got)
	}
	// The engine keeps serving healthy plans.
	if _, err := pq.Exec("k3"); err != nil {
		t.Fatalf("engine not serviceable after recovered panic: %v", err)
	}
}

func testAdmitter(capacity, maxQueue int, timeout time.Duration) *admitter {
	return &admitter{
		capacity:     capacity,
		maxQueue:     maxQueue,
		queueTimeout: timeout,
		retryHint:    func(queueLen int) time.Duration { return time.Duration(queueLen+1) * time.Millisecond },
	}
}

func TestAdmitterImmediateAndShed(t *testing.T) {
	a := testAdmitter(1, 0, 0)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Capacity is gone and the queue holds zero: shed immediately.
	err := a.acquire(context.Background(), 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("shed error carries no retry hint: %v", err)
	}
	a.release(1)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatalf("post-release acquire: %v", err)
	}
	st := a.snapshot()
	if st.Admitted != 2 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want 2 admitted / 1 shed", st)
	}
}

func TestAdmitterQueueDrainsFIFO(t *testing.T) {
	a := testAdmitter(1, 4, 0)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	ready := make(chan struct{}, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Park in the queue in index order.
			for {
				a.mu.Lock()
				pos := len(a.queue)
				a.mu.Unlock()
				if pos == i {
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
			ready <- struct{}{}
			if err := a.acquire(context.Background(), 1); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.release(1)
		}(i)
	}
	// Wait until all three have committed to enqueueing, then let the
	// queue drain by releasing the held unit.
	for i := 0; i < 3; i++ {
		<-ready
	}
	for {
		a.mu.Lock()
		q := len(a.queue)
		a.mu.Unlock()
		if q == 3 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	a.release(1)
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order = %v, want [0 1 2]", order)
	}
	st := a.snapshot()
	if st.Queued != 3 || st.Admitted != 4 {
		t.Fatalf("stats = %+v, want 3 queued / 4 admitted", st)
	}
}

func TestAdmitterQueueTimeout(t *testing.T) {
	a := testAdmitter(1, 4, 5*time.Millisecond)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	err := a.acquire(context.Background(), 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded after queue timeout", err)
	}
	if st := a.snapshot(); st.TimedOut != 1 {
		t.Fatalf("stats = %+v, want 1 timed out", st)
	}
	// The timed-out waiter left the queue; capacity still drains cleanly.
	a.release(1)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestAdmitterCancelWhileQueued(t *testing.T) {
	a := testAdmitter(1, 4, 0)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx, 1) }()
	for {
		a.mu.Lock()
		q := len(a.queue)
		a.mu.Unlock()
		if q == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if st := a.snapshot(); st.Canceled != 1 {
		t.Fatalf("stats = %+v, want 1 canceled", st)
	}
	a.release(1)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestAdmitterWeightClamped(t *testing.T) {
	a := testAdmitter(1, 0, 0)
	// An update batch weighs 2 but must still run on a capacity-1 engine.
	if err := a.acquire(context.Background(), 2); err != nil {
		t.Fatalf("oversized acquire: %v", err)
	}
	a.release(1) // clamped weight
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatalf("capacity corrupted by clamped weight: %v", err)
	}
}

// TestEngineShedsWhenSaturated drives the engine-level path: with
// MaxConcurrent 1 and no queue, a query issued while capacity is held is
// shed with a typed retry-after error and counted in Stats.
func TestEngineShedsWhenSaturated(t *testing.T) {
	base, views := testBase(t)
	e, err := NewFromBase(base, views, Options{MaxConcurrent: 1, MaxQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	if err := e.admit.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	_, err = e.Answer(q)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("no retry hint: %v", err)
	}
	e.admit.release(1)
	if _, err := e.Answer(q); err != nil {
		t.Fatalf("post-release query failed: %v", err)
	}
	st := e.Stats()
	if st.Admission.Shed != 1 || st.Admission.Admitted != 2 {
		t.Fatalf("Admission = %+v, want 1 shed / 2 admitted", st.Admission)
	}
}

// TestApplyBatchCtxAtomicOnLiveEngine: a canceled batch leaves both serving
// sides exactly as they were — answers unchanged — and the batch retries
// cleanly.
func TestApplyBatchCtxAtomicOnLiveEngine(t *testing.T) {
	for _, shards := range []int{0, 4} {
		base, views := testBase(t)
		e, err := NewFromBase(base, views, Options{LiveUpdates: true, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
		before, err := e.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		batch := map[string][]storage.Tuple{
			"r": {{"c", "n"}},
			"s": {{"n", "zz"}},
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := e.ApplyBatchCtx(ctx, batch); !errors.Is(err, ErrCanceled) {
			t.Fatalf("shards=%d: err = %v, want ErrCanceled", shards, err)
		}
		mid, err := e.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if !storage.TuplesEqual(mid, before) {
			t.Fatalf("shards=%d: canceled batch changed answers: %v -> %v", shards, before, mid)
		}
		// Retry applies; the new join rows appear.
		if err := e.ApplyBatch(batch); err != nil {
			t.Fatalf("shards=%d: retry: %v", shards, err)
		}
		after, err := e.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		// r(c,n)⋈{s(n,y), s(n,zz)} plus the existing r(b,n)⋈s(n,zz).
		if len(after) != len(before)+3 {
			t.Fatalf("shards=%d: post-retry answers = %v", shards, after)
		}
	}
}

// TestCancelUnderConcurrentReaders runs 4-worker sharded evaluations and
// repeatedly canceled update batches at the same time (run with -race):
// readers must never see a torn snapshot — every answer equals the
// pre-batch or post-batch result — and no goroutines may leak.
func TestCancelUnderConcurrentReaders(t *testing.T) {
	base, views := testBase(t)
	e, err := NewFromBase(base, views, Options{LiveUpdates: true, Shards: 4, EvalWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")
	shadow := base.Clone()
	baseline := runtime.NumGoroutine()

	rounds := 30
	if testing.Short() {
		rounds = 10
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := e.AnswerCtx(context.Background(), q)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				// The base answers never disappear; batches only add.
				if len(rows) < 2 {
					t.Errorf("torn snapshot: %d rows", len(rows))
					return
				}
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		batch := map[string][]storage.Tuple{
			"r": {{fmt.Sprintf("w%d", i), "m"}},
		}
		// Odd rounds: pre-canceled, must be a no-op. Even rounds: apply.
		if i%2 == 1 {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := e.ApplyBatchCtx(ctx, batch); !errors.Is(err, ErrCanceled) {
				t.Fatalf("round %d: err = %v", i, err)
			}
			continue
		}
		if err := e.ApplyBatch(batch); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		for pred, tuples := range batch {
			for _, tup := range tuples {
				shadow.Insert(pred, tup)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Mid-sharded-eval cancellation with the same engine: a deadline on a
	// 4-worker evaluation must not strand worker goroutines.
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
		_, _ = e.AnswerCtx(ctx, q)
		cancel()
	}

	// Goroutine-leak check: give workers a moment to unwind, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Final state must match a full re-materialization from the base plus
	// only the batches that were allowed to apply.
	fresh, err := NewFromBase(shadow, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.TuplesEqual(got, want) {
		t.Fatalf("live answers diverge from rebuilt engine: %v vs %v", got, want)
	}
}
