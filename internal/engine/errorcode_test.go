package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/storage"
)

// TestErrorCodeMapping pins the stable wire code of every exported engine
// error, including wrapped forms — the contract network clients rely on
// instead of string matching.
func TestErrorCodeMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"nil", nil, ""},
		{"overloaded sentinel", ErrOverloaded, CodeOverloaded},
		{"overloaded concrete", &OverloadedError{RetryAfter: time.Second}, CodeOverloaded},
		{"budget sentinel", ErrBudgetExceeded, CodeBudgetExceeded},
		{"budget wrapped", fmt.Errorf("row cap: %w", ErrBudgetExceeded), CodeBudgetExceeded},
		{"budget query error", &QueryError{Err: ErrBudgetExceeded, Stats: datalog.FixpointStats{Iterations: 2, Derived: 7}}, CodeBudgetExceeded},
		{"canceled sentinel", ErrCanceled, CodeCanceled},
		{"canceled wrapped", fmt.Errorf("queued: %w", ErrCanceled), CodeCanceled},
		{"canceled query error", &QueryError{Err: ErrCanceled}, CodeCanceled},
		{"context canceled", context.Canceled, CodeCanceled},
		{"context deadline", context.DeadlineExceeded, CodeCanceled},
		{"internal sentinel", ErrInternal, CodeInternal},
		{"internal concrete", &InternalError{Value: "boom", Stack: []byte("stack")}, CodeInternal},
		{"arity sentinel", ErrArityMismatch, CodeArityMismatch},
		{"arity wrapped", fmt.Errorf("takes 2: %w", ErrArityMismatch), CodeArityMismatch},
		{"storage arity", &storage.ArityError{Pred: "r", Want: 2, Got: 3}, CodeArityMismatch},
		{"not live", ErrNotLive, CodeNotLive},
		{"unknown", errors.New("something else"), ""},
	}
	for _, c := range cases {
		if got := ErrorCode(c.err); got != c.want {
			t.Errorf("%s: ErrorCode = %q, want %q", c.name, got, c.want)
		}
	}
}

// TestErrorCodeLiveEngine exercises the mapping on errors produced by a
// real engine, not hand-built values: overload, deadline, budget trip,
// panic and arity paths all yield their stable codes.
func TestErrorCodeLiveEngine(t *testing.T) {
	base := storage.NewDatabase()
	for i := 0; i < 200; i++ {
		base.Insert("r", storage.Tuple{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%20)})
		base.Insert("s", storage.Tuple{fmt.Sprintf("b%d", i%20), fmt.Sprintf("c%d", i%7)})
	}
	views, err := cq.ParseViews(`
		v(A,B)  :- r(A,C), s(C,B).
		vr(A,B) :- r(A,B).
		vs(A,B) :- s(A,B).
	`)
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)")

	t.Run("budget", func(t *testing.T) {
		e, err := NewFromBase(base, views, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, err = e.AnswerBudget(context.Background(), q, Budget{MaxResultRows: 1})
		if code := ErrorCode(err); code != CodeBudgetExceeded {
			t.Fatalf("budget trip: code %q (err %v), want %q", code, err, CodeBudgetExceeded)
		}
	})
	t.Run("deadline", func(t *testing.T) {
		e, err := NewFromBase(base, views, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err = e.AnswerCtx(ctx, q)
		if code := ErrorCode(err); code != CodeCanceled {
			t.Fatalf("pre-canceled context: code %q (err %v), want %q", code, err, CodeCanceled)
		}
	})
	t.Run("arity", func(t *testing.T) {
		e, err := NewFromBase(base, views, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pq, err := e.Prepare(cq.MustParseQuery("q(Y) :- r(a1,Z), s(Z,Y)"))
		if err != nil {
			t.Fatal(err)
		}
		_, err = pq.Exec("x", "y", "z")
		if code := ErrorCode(err); code != CodeArityMismatch {
			t.Fatalf("bad arity: code %q (err %v), want %q", code, err, CodeArityMismatch)
		}
	})
	t.Run("not live", func(t *testing.T) {
		e, err := NewFromBase(base, views, Options{})
		if err != nil {
			t.Fatal(err)
		}
		err = e.Insert("r", storage.Tuple{"x", "y"})
		if code := ErrorCode(err); code != CodeNotLive {
			t.Fatalf("frozen insert: code %q (err %v), want %q", code, err, CodeNotLive)
		}
	})
}

// TestRetryHintFloor: a cold engine (no executions) and a hot-but-fast one
// must both hint at least MinRetryAfter, never a microsecond-range value
// that truncates to zero seconds on the wire.
func TestRetryHintFloor(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "b"})
	views, err := cq.ParseViews("v(A,B) :- r(A,B).")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hint := e.retryHint(0); hint < MinRetryAfter {
		t.Fatalf("cold retryHint(0) = %v, want >= %v", hint, MinRetryAfter)
	}
	// Warm the engine with fast executions: the observed average is far
	// below MinRetryAfter, so the floor must hold it up.
	for i := 0; i < 20; i++ {
		if _, err := e.Answer(cq.MustParseQuery("q(X,Y) :- r(X,Y)")); err != nil {
			t.Fatal(err)
		}
	}
	if hint := e.retryHint(0); hint < MinRetryAfter {
		t.Fatalf("warm retryHint(0) = %v, want >= %v", hint, MinRetryAfter)
	}
	if hint := e.retryHint(3); hint < MinRetryAfter {
		t.Fatalf("warm retryHint(3) = %v, want >= %v", hint, MinRetryAfter)
	}
}

// TestShedRetryAfterFloor: an engine that sheds must attach a RetryAfter of
// at least MinRetryAfter to the OverloadedError itself.
func TestShedRetryAfterFloor(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"a", "b"})
	views, err := cq.ParseViews("v(A,B) :- r(A,B).")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromBase(base, views, Options{MaxConcurrent: 1, MaxQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the single slot directly, then watch a request shed.
	if err := e.admit.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	defer e.admit.release(1)
	_, err = e.Answer(cq.MustParseQuery("q(X,Y) :- r(X,Y)"))
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("saturated engine returned %v, want OverloadedError", err)
	}
	if oe.RetryAfter < MinRetryAfter {
		t.Fatalf("shed RetryAfter = %v, want >= %v", oe.RetryAfter, MinRetryAfter)
	}
}
