package engine

import "container/list"

// lruCache is a bounded least-recently-used map from fingerprint to plan.
// It is not self-locking; the Engine serialises access under its mutex.
type lruCache struct {
	max   int
	order *list.List // front = most recent
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	plan *Plan
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, order: list.New(), items: make(map[string]*list.Element, max)}
}

func (c *lruCache) get(key string) (*Plan, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).plan, true
}

// add inserts or refreshes a plan and reports whether an older entry was
// evicted to make room.
func (c *lruCache) add(key string, p *Plan) bool {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).plan = p
		c.order.MoveToFront(el)
		return false
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, plan: p})
	if c.order.Len() <= c.max {
		return false
	}
	oldest := c.order.Back()
	c.order.Remove(oldest)
	delete(c.items, oldest.Value.(*lruEntry).key)
	return true
}

func (c *lruCache) len() int { return c.order.Len() }
