// Package engine is the serving front-end of the library: a concurrent,
// plan-caching query answerer that unifies the rewriting algorithms —
// equivalent rewriting search (LMSS95), Bucket, MiniCon and inverse rules —
// behind one interface.
//
// An Engine is built once from a view set and a database of materialised
// view extents (plus any base relations partial rewritings may read). Each
// incoming query is canonicalised to a fingerprint (cq.Fingerprint), so
// α-equivalent query texts share one cache entry; rewriting plans are kept
// in a bounded LRU, and concurrent requests for the same fingerprint are
// coalesced into a single rewriting search (single-flight). Containment
// checks performed while planning are memoised across queries through a
// shared containment.Memo.
//
// The expensive work — the exponential rewriting search — therefore runs at
// most once per distinct query shape; the steady-state cost of Answer is
// one plan-cache hit plus the evaluation of the cached rewriting.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bucket"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/inverserules"
	"repro/internal/ivm"
	"repro/internal/minicon"
	"repro/internal/storage"
)

// ErrNotLive reports a mutation on an engine built without
// Options.LiveUpdates.
var ErrNotLive = errors.New("engine: built without Options.LiveUpdates; base facts are frozen")

// Strategy selects the rewriting algorithm an Engine plans with.
type Strategy string

const (
	// EquivalentFirst searches for an equivalent rewriting (the paper's
	// core algorithm) and falls back to the MiniCon maximally-contained
	// rewriting when none exists. This is the default.
	EquivalentFirst Strategy = "equivalent-first"
	// Bucket plans with the Bucket algorithm (maximally contained).
	Bucket Strategy = "bucket"
	// MiniCon plans with the MiniCon algorithm (maximally contained).
	MiniCon Strategy = "minicon"
	// InverseRules compiles the query and views into an inverse-rules
	// datalog program; all search cost shifts to evaluation time.
	InverseRules Strategy = "inverse-rules"
)

// Strategies lists the supported strategies.
func Strategies() []Strategy {
	return []Strategy{EquivalentFirst, Bucket, MiniCon, InverseRules}
}

// ParseStrategy resolves a strategy name, accepting the CLI spellings
// ("equivalent", "inverse") as aliases.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case string(EquivalentFirst), "equivalent":
		return EquivalentFirst, nil
	case string(Bucket):
		return Bucket, nil
	case string(MiniCon):
		return MiniCon, nil
	case string(InverseRules), "inverse":
		return InverseRules, nil
	}
	return "", fmt.Errorf("engine: unknown strategy %q (want one of %v)", name, Strategies())
}

// Options configures an Engine.
type Options struct {
	// Strategy selects the planning algorithm; default EquivalentFirst.
	Strategy Strategy
	// CacheSize bounds the plan LRU; default 128. Minimum 1.
	CacheSize int
	// AllowPartial admits equivalent rewritings that keep base subgoals
	// (EquivalentFirst only); the database must then hold those base
	// relations alongside the view extents.
	AllowPartial bool
	// KeepComparisons re-asserts the query's comparison predicates on
	// rewritings when their terms are exposed.
	KeepComparisons bool
	// BatchWorkers bounds AnswerBatch concurrency; default GOMAXPROCS.
	BatchWorkers int
	// EvalWorkers is the number of goroutines a single evaluation fans
	// its outermost join loop across (CompiledPlan.EvalParallel).
	// 0 or 1 evaluates sequentially — the default, since request-level
	// concurrency (AnswerBatch, many callers) usually saturates the
	// cores already; set it explicitly (e.g. to GOMAXPROCS) when single
	// large queries should use idle cores.
	EvalWorkers int
	// LiveUpdates enables the mutation path: Insert/InsertBatch/ApplyBatch
	// apply base facts and delta-maintain every view extent instead of the
	// database being frozen forever at construction. Requires NewFromBase
	// (the engine must see the base relations to maintain extents).
	// Cached plans survive updates — rewritings depend only on the view
	// definitions, never on extent contents.
	LiveUpdates bool
}

// PlanKind discriminates what a cached plan holds.
type PlanKind uint8

const (
	// PlanEquivalent is a verified equivalent rewriting.
	PlanEquivalent PlanKind = iota
	// PlanMaxContained is a maximally-contained rewriting (a UCQ over the
	// view predicates; possibly empty).
	PlanMaxContained
	// PlanInverseProgram is a compiled inverse-rules datalog program.
	PlanInverseProgram
)

// String names the plan kind for diagnostics.
func (k PlanKind) String() string {
	switch k {
	case PlanEquivalent:
		return "equivalent"
	case PlanMaxContained:
		return "max-contained"
	case PlanInverseProgram:
		return "inverse-program"
	default:
		return "unknown"
	}
}

// Plan is a cached, immutable rewriting plan for one query fingerprint.
// Evaluating a plan never depends on the variable names of the query that
// produced it — answers are sets of constant tuples — so one plan serves
// every α-equivalent query text.
type Plan struct {
	// Fingerprint is the canonical cache key (cq.Fingerprint).
	Fingerprint string
	// Strategy that built the plan.
	Strategy Strategy
	// Kind says which of the payload fields below is set.
	Kind PlanKind
	// Rewriting is set for PlanEquivalent.
	Rewriting *core.Rewriting
	// Union is set for PlanMaxContained.
	Union *cq.Union
	// Program is set for PlanInverseProgram.
	Program *datalog.Program
	// Compiled is the slot-based physical plan of Rewriting (PlanEquivalent).
	Compiled *datalog.CompiledPlan
	// CompiledUnion holds one physical plan per Union member
	// (PlanMaxContained).
	CompiledUnion []*datalog.CompiledPlan
	// CompiledProgram is the compiled semi-naive form of Program
	// (PlanInverseProgram): every rule lowered to slot plans with delta
	// variants, cached beside the rewriting so the fixpoint is never
	// re-planned on the warm path.
	CompiledProgram *datalog.CompiledProgram
	// AnswerPred is the head predicate answers are derived under.
	AnswerPred string
	// BuildTime is the wall time the rewriting search took.
	BuildTime time.Duration
	// CompileTime is the wall time physical-plan compilation took.
	CompileTime time.Duration
}

// StrategyStats aggregates planning work per strategy.
type StrategyStats struct {
	// Plans is the number of plans built (cache misses that ran the
	// rewriting search).
	Plans uint64
	// PlanTime is the cumulative wall time spent building those plans.
	PlanTime time.Duration
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	// Hits counts Answer/Plan calls served from the plan cache.
	Hits uint64
	// Misses counts calls that ran the rewriting search.
	Misses uint64
	// Coalesced counts calls that joined an in-flight search for the same
	// fingerprint instead of starting their own.
	Coalesced uint64
	// Evictions counts plans dropped by the LRU bound.
	Evictions uint64
	// CacheLen is the current number of cached plans.
	CacheLen int
	// MemoHits/MemoMisses report the shared containment memo.
	MemoHits   uint64
	MemoMisses uint64
	// CompileTime is the cumulative wall time spent compiling physical
	// plans (paid once per cache miss, amortised across hits).
	CompileTime time.Duration
	// ExecCount/ExecTime report plan executions: the steady-state cost of
	// Answer once the plan cache is warm.
	ExecCount uint64
	ExecTime  time.Duration
	// FixpointRuns counts compiled semi-naive fixpoint evaluations
	// (inverse-rules plans); FixpointIterations and FixpointDerived
	// accumulate their rounds and derived-tuple counts.
	FixpointRuns       uint64
	FixpointIterations uint64
	FixpointDerived    uint64
	// UpdateBatches counts applied live-update batches (LiveUpdates
	// engines); UpdateTuples the base tuples that were new across them,
	// and DeltaDerived the extent tuples delta-maintenance derived.
	UpdateBatches uint64
	UpdateTuples  uint64
	DeltaDerived  uint64
	// MaintainTime is the cumulative wall time of update batches:
	// delta propagation plus the serving-snapshot appends.
	MaintainTime time.Duration
	// PerStrategy breaks down planning work by strategy.
	PerStrategy map[Strategy]StrategyStats
}

// Engine answers conjunctive queries over materialised views. It is safe
// for concurrent use. Without Options.LiveUpdates the database it serves
// from is frozen (indexed) at construction and must not be mutated
// afterwards; with LiveUpdates, Insert/InsertBatch/ApplyBatch apply base
// facts and delta-maintain every extent while answers keep flowing.
type Engine struct {
	views    *core.ViewSet
	viewDefs []*cq.Query
	db       *storage.Database
	opt      Options
	memo     *containment.Memo
	// catalog holds the construction-time database statistics, used to
	// order joins and pick probe columns when compiling physical plans.
	// Live updates let it drift: statistics only steer plan shape, never
	// correctness.
	catalog *cost.Catalog
	// live is the update path (nil without Options.LiveUpdates).
	live *liveState

	// Execution counters are atomics: the warm serving path must not
	// serialize on the cache mutex just to record timings.
	execCount     atomic.Uint64
	execTime      atomic.Int64 // nanoseconds
	fixpointRuns  atomic.Uint64
	fixpointIters atomic.Uint64
	fixpointDrvd  atomic.Uint64
	updBatches    atomic.Uint64
	updTuples     atomic.Uint64
	updDerived    atomic.Uint64
	maintainTime  atomic.Int64 // nanoseconds

	mu          sync.Mutex
	cache       *lruCache
	inflight    map[string]*flight
	hits        uint64
	misses      uint64
	coalesced   uint64
	evictions   uint64
	compileTime time.Duration
	perStrategy map[Strategy]*StrategyStats
}

// liveState is the engine's mutation machinery: the incremental maintainer
// that turns base inserts into extent deltas, and a left-right pair of
// serving databases giving readers torn-free snapshots without blocking
// them behind maintenance.
//
// Readers snapshot the active side under its RLock. A writer (one at a
// time, under updateMu) first computes the batch's extent deltas on the
// maintainer's private database, then appends the deltas to the inactive
// side under its write lock, publishes that side as active, and finally
// appends to the formerly active side once its readers drain. Every
// mutation of a serving side happens under that side's write lock, so a
// reader sees either the pre-batch or the post-batch database — never a
// torn mix — while reads on the active side proceed during maintenance.
type liveState struct {
	maint *ivm.Maintainer
	// servesBase: the serving sides hold the base relations alongside the
	// extents (every strategy but inverse-rules, which serves extents
	// only).
	servesBase bool

	updateMu sync.Mutex
	sides    [2]*storage.Database
	locks    [2]sync.RWMutex
	active   atomic.Int32
}

// flight is one in-progress plan construction other callers can wait on.
type flight struct {
	done chan struct{}
	plan *Plan
	err  error
}

// New builds an Engine over a view set and a database holding the view
// extents (plus any base relations needed by partial rewritings or by the
// fallback evaluation). The database is indexed and frozen for concurrent
// reads; do not insert into it afterwards.
func New(vs *core.ViewSet, db *storage.Database, opt Options) (*Engine, error) {
	if vs == nil || vs.Len() == 0 {
		return nil, errors.New("engine: empty view set")
	}
	if opt.Strategy == "" {
		opt.Strategy = EquivalentFirst
	}
	if _, err := ParseStrategy(string(opt.Strategy)); err != nil {
		return nil, err
	}
	if opt.CacheSize <= 0 {
		opt.CacheSize = 128
	}
	if opt.LiveUpdates {
		return nil, errors.New("engine: live updates require NewFromBase (extents are maintained from the base relations)")
	}
	if db == nil {
		db = storage.NewDatabase()
	}
	db.BuildIndexes()
	return &Engine{
		views:       vs,
		viewDefs:    vs.Views(),
		db:          db,
		opt:         opt,
		memo:        containment.NewMemo(),
		catalog:     cost.NewCatalog(db),
		cache:       newLRU(opt.CacheSize),
		inflight:    make(map[string]*flight),
		perStrategy: make(map[Strategy]*StrategyStats),
	}, nil
}

// NewFromBase builds an Engine straight from base data: it materialises the
// views over base, keeps the base relations alongside the extents (so
// partial rewritings keep working), and serves from the merged database.
//
// Under the InverseRules strategy the engine serves from the view extents
// alone — inverse rules reconstruct the base relations from the extents,
// and keeping the originals would let the compiled program read base facts
// directly, answering more than the views logically expose.
func NewFromBase(base *storage.Database, views []*cq.Query, opt Options) (*Engine, error) {
	vs, err := core.NewViewSet(views...)
	if err != nil {
		return nil, err
	}
	if opt.LiveUpdates {
		return newLive(vs, base, views, opt)
	}
	var db *storage.Database
	if opt.Strategy == InverseRules {
		db, err = datalog.MaterializeViews(base, views)
		if err != nil {
			return nil, err
		}
	} else {
		db = base.Clone()
		for _, v := range views {
			if err := datalog.MaterializeView(base, v, db); err != nil {
				return nil, err
			}
		}
	}
	return New(vs, db, opt)
}

// newLive builds the live-update engine: one incremental maintainer plus
// two serving copies of its database (left-right), all materialised from
// base exactly once.
func newLive(vs *core.ViewSet, base *storage.Database, views []*cq.Query, opt Options) (*Engine, error) {
	workers := opt.EvalWorkers
	if workers <= 0 {
		workers = 1
	}
	m, err := ivm.New(base, views, ivm.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	var side0 *storage.Database
	if opt.Strategy == InverseRules {
		// Inverse rules reconstruct the base from the extents; serving the
		// base relations too would answer more than the views expose.
		side0 = storage.NewDatabase()
		for _, v := range views {
			src := m.Database().Relation(v.Name())
			rel, err := side0.Ensure(v.Name(), src.Arity())
			if err != nil {
				return nil, err
			}
			for _, t := range src.Tuples() {
				rel.Insert(t)
			}
		}
	} else {
		side0 = m.Database().Clone()
	}
	inner := opt
	inner.LiveUpdates = false
	e, err := New(vs, side0, inner) // indexes side0
	if err != nil {
		return nil, err
	}
	e.opt.LiveUpdates = true
	side1 := side0.Clone()
	side1.BuildIndexes()
	e.live = &liveState{maint: m, servesBase: opt.Strategy != InverseRules}
	e.live.sides[0] = side0
	e.live.sides[1] = side1
	return e, nil
}

// Views returns the engine's view set.
func (e *Engine) Views() *core.ViewSet { return e.views }

// Database returns the database the engine evaluates over. For a live
// engine this is the currently active serving snapshot: do not mutate it,
// and do not read it concurrently with ApplyBatch — use Answer, which
// locks a snapshot, for concurrent reads.
func (e *Engine) Database() *storage.Database {
	if e.live != nil {
		return e.live.sides[e.live.active.Load()]
	}
	return e.db
}

// snapshot returns the database an evaluation should read and a release
// function, nil when no release is needed. Live engines pin the active
// side under its read lock: the update path only mutates a side under the
// corresponding write lock, so the pinned side is torn-free for the whole
// evaluation.
func (e *Engine) snapshot() (*storage.Database, func()) {
	if e.live == nil {
		return e.db, nil
	}
	i := e.live.active.Load()
	e.live.locks[i].RLock()
	return e.live.sides[i], e.live.locks[i].RUnlock
}

// Insert applies one base fact, delta-maintaining every extent.
func (e *Engine) Insert(pred string, t storage.Tuple) error {
	return e.ApplyBatch(map[string][]storage.Tuple{pred: {t}})
}

// InsertBatch applies a batch of base facts under one predicate,
// delta-maintaining every extent in a single propagation.
func (e *Engine) InsertBatch(pred string, tuples []storage.Tuple) error {
	return e.ApplyBatch(map[string][]storage.Tuple{pred: tuples})
}

// ApplyBatch applies base-fact inserts across any number of predicates and
// delta-maintains every view extent — one semi-naive propagation per batch
// instead of a full re-materialization. Batches from concurrent callers
// are serialized; answers keep flowing from the active serving snapshot
// throughout, and every cached plan stays valid (rewritings depend only on
// the view definitions). Inserting into a view predicate is an error, as
// is calling this on an engine built without Options.LiveUpdates.
func (e *Engine) ApplyBatch(updates map[string][]storage.Tuple) error {
	if e.live == nil {
		return ErrNotLive
	}
	l := e.live
	l.updateMu.Lock()
	defer l.updateMu.Unlock()
	start := time.Now()
	res, err := l.maint.ApplyBatch(updates)
	if err != nil {
		return err
	}
	// Publish: append the deltas to the inactive side, make it active,
	// then bring the formerly active side up to date once its readers
	// drain. Each side only ever mutates under its write lock.
	i := 1 - l.active.Load()
	if err := l.applySide(i, res); err != nil {
		return err
	}
	l.active.Store(i)
	if err := l.applySide(1-i, res); err != nil {
		return err
	}
	baseNew := 0
	for _, tuples := range res.BaseInserted {
		baseNew += len(tuples)
	}
	e.updBatches.Add(1)
	e.updTuples.Add(uint64(baseNew))
	e.updDerived.Add(uint64(res.Stats.Derived))
	e.maintainTime.Add(int64(time.Since(start)))
	return nil
}

// applySide appends one batch's base and extent deltas to serving side i.
func (l *liveState) applySide(i int32, res *ivm.BatchResult) error {
	l.locks[i].Lock()
	defer l.locks[i].Unlock()
	db := l.sides[i]
	if l.servesBase {
		if err := appendDelta(db, res.BaseInserted); err != nil {
			return err
		}
	}
	return appendDelta(db, res.ExtentDelta)
}

// appendDelta inserts delta tuples, creating (and freezing) relations for
// predicates the side has not seen; inserts into frozen relations maintain
// the column indexes incrementally.
func appendDelta(db *storage.Database, delta map[string][]storage.Tuple) error {
	for pred, tuples := range delta {
		if len(tuples) == 0 {
			continue
		}
		rel, err := db.Ensure(pred, len(tuples[0]))
		if err != nil {
			return err // unreachable: the maintainer validated arities
		}
		for _, t := range tuples {
			rel.Insert(t)
		}
		if !rel.Frozen() {
			rel.BuildIndexes()
		}
	}
	return nil
}

// Plan returns the cached rewriting plan for q, building it on first use.
// Concurrent calls with the same fingerprint trigger exactly one search.
func (e *Engine) Plan(q *cq.Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	fp := cq.Fingerprint(q)

	e.mu.Lock()
	if p, ok := e.cache.get(fp); ok {
		e.hits++
		e.mu.Unlock()
		return p, nil
	}
	if fl, ok := e.inflight[fp]; ok {
		e.coalesced++
		e.mu.Unlock()
		<-fl.done
		return fl.plan, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	e.inflight[fp] = fl
	e.misses++
	e.mu.Unlock()

	plan, err := e.buildPlan(q, fp)

	e.mu.Lock()
	if err == nil {
		if e.cache.add(fp, plan) {
			e.evictions++
		}
	}
	delete(e.inflight, fp)
	e.mu.Unlock()

	fl.plan, fl.err = plan, err
	close(fl.done)
	return plan, err
}

// Answer plans q (through the cache) and evaluates the plan over the
// engine's database, returning the answer tuples in sorted order.
func (e *Engine) Answer(q *cq.Query) ([]storage.Tuple, error) {
	p, err := e.Plan(q)
	if err != nil {
		return nil, err
	}
	return e.Eval(p)
}

// AnswerBatch answers a batch of queries concurrently, preserving input
// order in the result slice. Identical (α-equivalent) queries in one batch
// coalesce into a single rewriting search. The returned error joins all
// per-query failures; results of failed queries are nil.
func (e *Engine) AnswerBatch(qs []*cq.Query) ([][]storage.Tuple, error) {
	results := make([][]storage.Tuple, len(qs))
	if len(qs) == 0 {
		return results, nil
	}
	errs := make([]error, len(qs))
	workers := e.opt.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i], errs[i] = e.Answer(qs[i])
				if errs[i] != nil {
					errs[i] = fmt.Errorf("query %d (%s): %w", i, qs[i].Head.Pred, errs[i])
				}
			}
		}()
	}
	for i := range qs {
		work <- i
	}
	close(work)
	wg.Wait()
	return results, errors.Join(errs...)
}

// Eval evaluates a plan over the engine's database. Rewriting plans run
// through their compiled physical form, and inverse-rules plans through the
// compiled semi-naive fixpoint, with the configured EvalWorkers fan-out.
// Any number of evaluations may run concurrently: the database is frozen
// at construction, and on a live engine each evaluation pins one serving
// snapshot, so it sees either the pre- or post-state of any concurrent
// update batch, never a torn mix. Answers are sorted for deterministic
// output.
func (e *Engine) Eval(p *Plan) ([]storage.Tuple, error) {
	start := time.Now()
	db, release := e.snapshot()
	answers, err := e.evalPlan(db, p)
	if release != nil {
		release()
	}
	if err != nil {
		return nil, err
	}
	e.execCount.Add(1)
	e.execTime.Add(int64(time.Since(start)))
	return answers, nil
}

func (e *Engine) evalPlan(db *storage.Database, p *Plan) ([]storage.Tuple, error) {
	workers := e.opt.EvalWorkers
	if workers <= 0 {
		workers = 1
	}
	switch p.Kind {
	case PlanEquivalent:
		if p.Compiled == nil { // plan built outside the engine
			return datalog.EvalQuery(db, p.Rewriting.Query), nil
		}
		return p.Compiled.EvalParallel(db, workers), nil
	case PlanMaxContained:
		if p.CompiledUnion == nil {
			return datalog.EvalUnion(db, p.Union), nil
		}
		var out []storage.Tuple
		seen := make(map[string]bool)
		for _, cp := range p.CompiledUnion {
			for _, t := range cp.EvalParallelUnsorted(db, workers) {
				if k := t.Key(); !seen[k] {
					seen[k] = true
					out = append(out, t)
				}
			}
		}
		return storage.SortTuples(out), nil
	case PlanInverseProgram:
		var derived []storage.Tuple
		if p.CompiledProgram != nil {
			tuples, fst, err := p.CompiledProgram.EvalRelation(db, p.AnswerPred, workers)
			if err != nil {
				return nil, err
			}
			e.fixpointRuns.Add(1)
			e.fixpointIters.Add(uint64(fst.Iterations))
			e.fixpointDrvd.Add(uint64(fst.Derived))
			derived = tuples
		} else { // plan built outside the engine
			out, err := p.Program.Eval(db)
			if err != nil {
				return nil, err
			}
			if rel := out.Relation(p.AnswerPred); rel != nil {
				derived = rel.Tuples()
			}
		}
		return datalog.CertainAnswers(derived), nil
	default:
		return nil, fmt.Errorf("engine: unknown plan kind %d", p.Kind)
	}
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	memoHits, memoMisses := e.memo.Stats()
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{
		Hits:               e.hits,
		Misses:             e.misses,
		Coalesced:          e.coalesced,
		Evictions:          e.evictions,
		CacheLen:           e.cache.len(),
		MemoHits:           memoHits,
		MemoMisses:         memoMisses,
		CompileTime:        e.compileTime,
		ExecCount:          e.execCount.Load(),
		ExecTime:           time.Duration(e.execTime.Load()),
		FixpointRuns:       e.fixpointRuns.Load(),
		FixpointIterations: e.fixpointIters.Load(),
		FixpointDerived:    e.fixpointDrvd.Load(),
		UpdateBatches:      e.updBatches.Load(),
		UpdateTuples:       e.updTuples.Load(),
		DeltaDerived:       e.updDerived.Load(),
		MaintainTime:       time.Duration(e.maintainTime.Load()),
		PerStrategy:        make(map[Strategy]StrategyStats, len(e.perStrategy)),
	}
	for s, agg := range e.perStrategy {
		st.PerStrategy[s] = *agg
	}
	return st
}

// buildPlan runs the configured rewriting algorithm over the canonical form
// of q, so the resulting plan depends only on the fingerprint — never on
// which α-variant of the query happened to arrive first. It executes
// outside the engine mutex; only the counter update at the end takes it.
func (e *Engine) buildPlan(q *cq.Query, fp string) (*Plan, error) {
	start := time.Now()
	qc := cq.Canonicalize(q)
	p := &Plan{Fingerprint: fp, Strategy: e.opt.Strategy, AnswerPred: qc.Name()}
	switch e.opt.Strategy {
	case EquivalentFirst:
		r := core.NewRewriter(e.views)
		r.Opt.AllowPartial = e.opt.AllowPartial
		r.Opt.KeepComparisons = e.opt.KeepComparisons
		r.Memo = e.memo
		if rw := r.RewriteOne(qc); rw != nil {
			p.Kind = PlanEquivalent
			p.Rewriting = rw
			break
		}
		u, _, err := minicon.Rewrite(qc, e.views, minicon.Options{VerifyCandidates: true, KeepComparisons: e.opt.KeepComparisons})
		if err != nil {
			return nil, err
		}
		p.Kind = PlanMaxContained
		p.Union = u
	case Bucket:
		u, _, err := bucket.Rewrite(qc, e.views, bucket.Options{KeepComparisons: e.opt.KeepComparisons})
		if err != nil {
			return nil, err
		}
		p.Kind = PlanMaxContained
		p.Union = u
	case MiniCon:
		u, _, err := minicon.Rewrite(qc, e.views, minicon.Options{VerifyCandidates: true, KeepComparisons: e.opt.KeepComparisons})
		if err != nil {
			return nil, err
		}
		p.Kind = PlanMaxContained
		p.Union = u
	case InverseRules:
		prog, err := inverserules.Program(qc, e.viewDefs)
		if err != nil {
			return nil, err
		}
		p.Kind = PlanInverseProgram
		p.Program = prog
	default:
		return nil, fmt.Errorf("engine: unknown strategy %q", e.opt.Strategy)
	}
	p.BuildTime = time.Since(start)

	// Lower the rewriting to its physical form once, under the frozen
	// database's statistics; every execution of the cached plan reuses it.
	compileStart := time.Now()
	switch p.Kind {
	case PlanEquivalent:
		p.Compiled = datalog.Compile(p.Rewriting.Query, e.catalog)
	case PlanMaxContained:
		p.CompiledUnion = make([]*datalog.CompiledPlan, p.Union.Len())
		for i, m := range p.Union.Queries {
			p.CompiledUnion[i] = datalog.Compile(m, e.catalog)
		}
	case PlanInverseProgram:
		cp, err := datalog.CompileProgram(p.Program, e.catalog)
		if err != nil {
			return nil, err
		}
		p.CompiledProgram = cp
	}
	p.CompileTime = time.Since(compileStart)

	e.mu.Lock()
	agg := e.perStrategy[e.opt.Strategy]
	if agg == nil {
		agg = &StrategyStats{}
		e.perStrategy[e.opt.Strategy] = agg
	}
	agg.Plans++
	agg.PlanTime += p.BuildTime
	e.compileTime += p.CompileTime
	e.mu.Unlock()
	return p, nil
}
