// Package engine is the serving front-end of the library: a concurrent,
// plan-caching query answerer that unifies the rewriting algorithms —
// equivalent rewriting search (LMSS95), Bucket, MiniCon and inverse rules —
// behind one prepared-query interface.
//
// An Engine is built once from a view set and a database of materialised
// view extents (plus any base relations partial rewritings may read). Each
// incoming query is canonicalised to a *template* (cq.CanonicalizeTemplate):
// the canonical α-renamed form with its constants abstracted to ordered
// placeholders. Rewriting plans are cached per template in a bounded LRU —
// so not only α-equivalent query texts but whole point-lookup streams
// differing only in their constants share a single plan, compiled once with
// parameter slots (datalog.CompileParams) and executed per request under
// the binding extracted from (or passed with) each query. Concurrent
// requests for the same template coalesce into one rewriting search
// (single-flight), and containment checks performed while planning are
// memoised across queries through a shared containment.Memo.
//
// Prepare returns the template's PreparedQuery handle; Exec(args...) runs
// the cached plan under a fresh binding. Answer is a thin prepare-once-exec
// wrapper, so plain callers get template caching for free.
//
// The expensive work — the exponential rewriting search — therefore runs at
// most once per distinct query *shape*; the steady-state cost of Answer is
// one template-cache hit plus the evaluation of the cached plan.
//
// Strategy selection can be cost-driven: under the Auto strategy the engine
// plans each template with equivalent-first search, MiniCon or inverse
// rules, choosing by internal/cost estimates over the catalog, and when the
// equivalent search yields several rewritings (Options.MaxResults > 1) it
// keeps the cheapest estimate rather than the first found. The chosen
// strategy and estimate are recorded on the Plan and attributed in Stats.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bucket"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/inverserules"
	"repro/internal/ivm"
	"repro/internal/minicon"
	"repro/internal/storage"
)

// ErrNotLive reports a mutation on an engine built without
// Options.LiveUpdates.
var ErrNotLive = errors.New("engine: built without Options.LiveUpdates; base facts are frozen")

// errParamsNotCompiled guards the uncompiled-payload fallbacks: a
// parameterized plan's logical payload is in planning form (placeholder
// columns in the head) and cannot be evaluated directly.
var errParamsNotCompiled = errors.New("engine: parameterized plan has no compiled form; its logical payload is in planning form and cannot be evaluated directly")

// Strategy selects the rewriting algorithm an Engine plans with.
type Strategy string

const (
	// EquivalentFirst searches for an equivalent rewriting (the paper's
	// core algorithm) and falls back to the MiniCon maximally-contained
	// rewriting when none exists. This is the default.
	EquivalentFirst Strategy = "equivalent-first"
	// Bucket plans with the Bucket algorithm (maximally contained).
	Bucket Strategy = "bucket"
	// MiniCon plans with the MiniCon algorithm (maximally contained).
	MiniCon Strategy = "minicon"
	// InverseRules compiles the query and views into an inverse-rules
	// datalog program; all search cost shifts to evaluation time.
	InverseRules Strategy = "inverse-rules"
	// Auto picks a strategy per query template with the cost model: the
	// cheapest equivalent rewriting when one exists, otherwise MiniCon or
	// inverse rules, whichever internal/cost estimates cheaper under the
	// catalog. The choice is recorded in Plan.Chosen and attributed per
	// strategy in Stats.
	Auto Strategy = "auto"
)

// autoMaxResults is the equivalent-rewriting candidate budget the Auto
// strategy enumerates when Options.MaxResults does not say otherwise: cost
// selection needs alternatives to choose between, but exhaustive
// enumeration is exponential.
const autoMaxResults = 4

// Strategies lists the supported strategies.
func Strategies() []Strategy {
	return []Strategy{EquivalentFirst, Bucket, MiniCon, InverseRules, Auto}
}

// ParseStrategy resolves a strategy name, accepting the CLI spellings
// ("equivalent", "inverse") as aliases.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case string(EquivalentFirst), "equivalent":
		return EquivalentFirst, nil
	case string(Bucket):
		return Bucket, nil
	case string(MiniCon):
		return MiniCon, nil
	case string(InverseRules), "inverse":
		return InverseRules, nil
	case string(Auto):
		return Auto, nil
	}
	return "", fmt.Errorf("engine: unknown strategy %q (want one of %v)", name, Strategies())
}

// Options configures an Engine.
type Options struct {
	// Strategy selects the planning algorithm; default EquivalentFirst.
	// Auto picks per query template by cost estimate.
	Strategy Strategy
	// MaxResults bounds the number of equivalent rewritings the search
	// enumerates per plan (core.Options.MaxResults). With MaxResults > 1
	// the engine costs every candidate under the catalog and keeps the
	// cheapest estimate instead of the first found. 0 means 1 for the
	// fixed strategies and a small default budget for Auto.
	MaxResults int
	// CacheSize bounds the plan LRU; default 128. Minimum 1.
	CacheSize int
	// AllowPartial admits equivalent rewritings that keep base subgoals
	// (EquivalentFirst only); the database must then hold those base
	// relations alongside the view extents.
	AllowPartial bool
	// KeepComparisons re-asserts the query's comparison predicates on
	// rewritings when their terms are exposed.
	KeepComparisons bool
	// BatchWorkers bounds AnswerBatch concurrency; default GOMAXPROCS.
	BatchWorkers int
	// EvalWorkers is the number of goroutines a single evaluation fans
	// its outermost join loop across (CompiledPlan.EvalParallel).
	// 0 or 1 evaluates sequentially — the default, since request-level
	// concurrency (AnswerBatch, many callers) usually saturates the
	// cores already; set it explicitly (e.g. to GOMAXPROCS) when single
	// large queries should use idle cores.
	EvalWorkers int
	// Shards hash-partitions every serving snapshot into this many shards
	// (storage.Partition, partition columns picked by the catalog's
	// probe-column statistics) and routes compiled plan executions through
	// the sharded evaluator: consecutive joins probing a partition column
	// stay inside one shard, join-key changes exchange intermediate frames
	// between shards, and inverse-rules fixpoints run per-shard with deltas
	// merged at round barriers. 0 or 1 serves from the flat database. On a
	// live engine both serving sides keep partitioned twins, updated under
	// the same side locks, and the maintainer propagates per-shard too.
	Shards int
	// LiveUpdates enables the mutation path: Insert/InsertBatch/ApplyBatch
	// apply base facts and delta-maintain every view extent instead of the
	// database being frozen forever at construction. Requires NewFromBase
	// (the engine must see the base relations to maintain extents).
	// Cached plans survive updates — rewritings depend only on the view
	// definitions, never on extent contents.
	LiveUpdates bool
	// Budget is the default per-request resource budget (deadline, result
	// rows, derived tuples, fixpoint rounds) applied to every Answer, Exec
	// and ApplyBatch. The zero value means unlimited; the *Budget entry
	// points override it per call.
	Budget Budget
	// MaxConcurrent caps concurrently executing requests (admission
	// control): queries weigh 1, update batches 2. Excess requests wait in
	// a bounded FIFO queue and are shed with ErrOverloaded when it fills.
	// 0 disables admission entirely — every request runs immediately, with
	// no added synchronization.
	MaxConcurrent int
	// MaxQueue bounds the admission wait queue; requests beyond it are
	// shed immediately with an OverloadedError carrying a retry-after
	// hint. 0 means 4×MaxConcurrent; negative means no queue (shed as
	// soon as MaxConcurrent is reached).
	MaxQueue int
	// QueueTimeout bounds how long a request may wait for admission before
	// being shed with ErrOverloaded. 0 means wait until the request's own
	// context fires.
	QueueTimeout time.Duration
	// DataDir enables durable storage (NewFromBase only): the directory
	// holds a checksummed snapshot of the materialized state plus an
	// append-only WAL of update batches. Construction opens it — a valid
	// snapshot whose view fingerprint matches is loaded and the WAL
	// replayed instead of re-materializing; a fingerprint mismatch falls
	// back to re-materializing from the recovered base facts (and warns
	// via Logf). Once a snapshot exists, the durable state is the source
	// of truth: the base argument is only used when the directory is
	// empty. Every applied batch is logged and fsynced before it is
	// published to readers; call Close on shutdown to checkpoint and
	// release the store.
	DataDir string
	// SnapshotWALBytes is the WAL size that triggers a background
	// checkpoint truncating the log. 0 means 64 MiB; negative disables
	// background checkpoints (the log then grows until Close or an
	// explicit Checkpoint).
	SnapshotWALBytes int64
	// WALNoSync skips the per-batch fsync: batches survive a process
	// crash but not a host crash. For tests and bulk loads.
	WALNoSync bool
	// Logf receives durability warnings (stale-snapshot rebuilds,
	// background checkpoint failures, fail-stop transitions). nil
	// discards them.
	Logf func(format string, args ...any)

	// snapCatalog carries planning statistics recovered from a snapshot
	// manifest; set only by the durable boot path so construction can skip
	// the catalog scan over the loaded database.
	snapCatalog *cost.Catalog
}

// PlanKind discriminates what a cached plan holds.
type PlanKind uint8

const (
	// PlanEquivalent is a verified equivalent rewriting.
	PlanEquivalent PlanKind = iota
	// PlanMaxContained is a maximally-contained rewriting (a UCQ over the
	// view predicates; possibly empty).
	PlanMaxContained
	// PlanInverseProgram is a compiled inverse-rules datalog program.
	PlanInverseProgram
)

// String names the plan kind for diagnostics.
func (k PlanKind) String() string {
	switch k {
	case PlanEquivalent:
		return "equivalent"
	case PlanMaxContained:
		return "max-contained"
	case PlanInverseProgram:
		return "inverse-program"
	default:
		return "unknown"
	}
}

// Plan is a cached, immutable rewriting plan for one query template.
// Evaluating a plan never depends on the variable names or the constant
// values of the query that produced it — the constants arrive as execution
// arguments — so one plan serves every α-equivalent query text and every
// constant instantiation of the template.
type Plan struct {
	// Fingerprint is the template cache key (cq.TemplateFingerprint).
	Fingerprint string
	// Strategy the engine was configured with when the plan was built.
	Strategy Strategy
	// Chosen is the algorithm that actually produced the plan: equal to
	// Strategy for the fixed algorithms, the cost model's pick under Auto,
	// and MiniCon when EquivalentFirst fell back to the MCR.
	Chosen Strategy
	// Estimate is the cost model's estimate of the chosen plan under the
	// construction-time catalog, with the parameter slots treated as
	// bound. It ranks candidates; it does not predict wall-clock time.
	Estimate cost.Estimate
	// Params lists the template's placeholder variables in binding order;
	// executions supply one argument per entry. Empty for plans of
	// constant-free queries.
	Params []string
	// Arity is the answer arity (the template head's, before the
	// placeholders were appended for planning).
	Arity int
	// Kind says which of the payload fields below is set.
	Kind PlanKind
	// The logical payloads below are in *planning form*: for a
	// parameterized plan their heads carry the Params placeholders as
	// trailing distinguished columns (arity Arity+len(Params)), which is
	// what forces rewritings to expose the parameter positions. The
	// compiled forms are truncated back to Arity with the placeholders as
	// parameter slots; evaluate through those, never the logical payloads
	// directly.
	//
	// Rewriting is set for PlanEquivalent.
	Rewriting *core.Rewriting
	// Union is set for PlanMaxContained.
	Union *cq.Union
	// Program is set for PlanInverseProgram.
	Program *datalog.Program
	// Compiled is the slot-based physical plan of Rewriting (PlanEquivalent).
	Compiled *datalog.CompiledPlan
	// CompiledUnion holds one physical plan per Union member
	// (PlanMaxContained).
	CompiledUnion []*datalog.CompiledPlan
	// CompiledProgram is the compiled semi-naive form of Program
	// (PlanInverseProgram): every rule lowered to slot plans with delta
	// variants, cached beside the rewriting so the fixpoint is never
	// re-planned on the warm path.
	CompiledProgram *datalog.CompiledProgram
	// AnswerPred is the head predicate answers are derived under.
	AnswerPred string
	// BuildTime is the wall time the rewriting search took.
	BuildTime time.Duration
	// CompileTime is the wall time physical-plan compilation took.
	CompileTime time.Duration
}

// StrategyStats aggregates planning work per strategy. Entries are keyed
// by the strategy that actually produced each plan (Plan.Chosen), so under
// Auto — and under EquivalentFirst's MiniCon fallback — the work lands on
// the algorithm that ran, not the configured label.
type StrategyStats struct {
	// Plans is the number of plans built (cache misses that ran the
	// rewriting search).
	Plans uint64
	// PlanTime is the cumulative wall time spent building those plans.
	PlanTime time.Duration
	// Hits counts cache hits served by plans this strategy built.
	Hits uint64
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	// Hits counts Answer/Plan calls served from the plan cache.
	Hits uint64
	// Misses counts calls that ran the rewriting search.
	Misses uint64
	// Coalesced counts calls that joined an in-flight search for the same
	// fingerprint instead of starting their own.
	Coalesced uint64
	// Evictions counts plans dropped by the LRU bound.
	Evictions uint64
	// CacheLen is the current number of cached plans.
	CacheLen int
	// MemoHits/MemoMisses report the shared containment memo.
	MemoHits   uint64
	MemoMisses uint64
	// CompileTime is the cumulative wall time spent compiling physical
	// plans (paid once per cache miss, amortised across hits).
	CompileTime time.Duration
	// ExecCount/ExecTime report plan executions: the steady-state cost of
	// Answer once the plan cache is warm.
	ExecCount uint64
	ExecTime  time.Duration
	// FixpointRuns counts compiled semi-naive fixpoint evaluations
	// (inverse-rules plans); FixpointIterations and FixpointDerived
	// accumulate their rounds and derived-tuple counts.
	FixpointRuns       uint64
	FixpointIterations uint64
	FixpointDerived    uint64
	// UpdateBatches counts applied live-update batches (LiveUpdates
	// engines); UpdateTuples the base tuples that were new across them,
	// UpdateDeleted the base tuples retracted, DeltaDerived the extent
	// tuples delta-maintenance derived, and DeltaRetracted the extent
	// tuples retracted because a deletion removed their last derivation.
	UpdateBatches  uint64
	UpdateTuples   uint64
	UpdateDeleted  uint64
	DeltaDerived   uint64
	DeltaRetracted uint64
	// MaintainTime is the cumulative wall time of update batches:
	// delta propagation plus the serving-snapshot appends.
	MaintainTime time.Duration
	// Admission reports admission-control outcomes (all zero when
	// Options.MaxConcurrent leaves admission disabled).
	Admission AdmissionStats
	// Panics counts evaluation panics the engine boundary converted into
	// ErrInternal.
	Panics uint64
	// Durable reports the durable-storage position, write work and
	// recovery outcome (zero with Enabled=false when Options.DataDir is
	// unset).
	Durable DurableStats
	// PerStrategy breaks down planning work by strategy.
	PerStrategy map[Strategy]StrategyStats
}

// Engine answers conjunctive queries over materialised views. It is safe
// for concurrent use. Without Options.LiveUpdates the database it serves
// from is frozen (indexed) at construction and must not be mutated
// afterwards; with LiveUpdates, Insert/InsertBatch/ApplyBatch apply base
// facts, Delete/DeleteBatch retract them, and ApplyUpdate applies a mixed
// batch — every extent is incrementally maintained (counting or DRed on
// the delete side) while answers keep flowing.
type Engine struct {
	views    *core.ViewSet
	viewDefs []*cq.Query
	db       *storage.Database
	// pdb is the hash-partitioned twin of db when Options.Shards > 1 on a
	// frozen (non-live) engine; live engines keep per-side twins instead
	// (liveState.psides).
	pdb *storage.PartitionedDatabase
	opt Options
	memo     *containment.Memo
	// catalog holds the construction-time database statistics, used to
	// order joins and pick probe columns when compiling physical plans.
	// Live updates let it drift: statistics only steer plan shape, never
	// correctness.
	catalog *cost.Catalog
	// constViews records whether any view definition mentions a constant.
	// Constant abstraction is disabled then: a rewriting can hinge on a
	// query constant matching a view's, so a constant-generic template
	// plan could silently answer less than per-query planning would.
	constViews bool
	// live is the update path (nil without Options.LiveUpdates).
	live *liveState
	// dur is the durable-storage state (nil without Options.DataDir).
	dur *durableState
	// admit gates request execution (nil without Options.MaxConcurrent).
	admit *admitter

	// Execution counters are atomics: the warm serving path must not
	// serialize on the cache mutex just to record timings.
	execCount     atomic.Uint64
	execTime      atomic.Int64 // nanoseconds
	fixpointRuns  atomic.Uint64
	fixpointIters atomic.Uint64
	fixpointDrvd  atomic.Uint64
	updBatches    atomic.Uint64
	updTuples     atomic.Uint64
	updDeleted    atomic.Uint64
	updDerived    atomic.Uint64
	updRetracted  atomic.Uint64
	maintainTime  atomic.Int64 // nanoseconds
	panics        atomic.Uint64

	mu          sync.Mutex
	cache       *lruCache
	inflight    map[string]*flight
	hits        uint64
	misses      uint64
	coalesced   uint64
	evictions   uint64
	compileTime time.Duration
	perStrategy map[Strategy]*StrategyStats
}

// liveState is the engine's mutation machinery: the incremental maintainer
// that turns base inserts into extent deltas, and a left-right pair of
// serving databases giving readers torn-free snapshots without blocking
// them behind maintenance.
//
// Readers snapshot the active side under its RLock. A writer (one at a
// time, under updateMu) first computes the batch's extent deltas on the
// maintainer's private database, then appends the deltas to the inactive
// side under its write lock, publishes that side as active, and finally
// appends to the formerly active side once its readers drain. Every
// mutation of a serving side happens under that side's write lock, so a
// reader sees either the pre-batch or the post-batch database — never a
// torn mix — while reads on the active side proceed during maintenance.
type liveState struct {
	maint *ivm.Maintainer
	// servesBase: the serving sides hold the base relations alongside the
	// extents (every strategy but inverse-rules, which serves extents
	// only).
	servesBase bool

	updateMu sync.Mutex
	sides    [2]*storage.Database
	locks    [2]sync.RWMutex
	active   atomic.Int32

	// psides are the hash-partitioned twins of sides when Options.Shards > 1
	// (nil otherwise). Each is mutated only under the matching side lock, so
	// a pinned snapshot's flat and partitioned views agree. partCols is the
	// construction-time partition-column policy, reused when a batch
	// introduces a predicate the sides have not seen.
	psides   [2]*storage.PartitionedDatabase
	partCols map[string]int
}

// flight is one in-progress plan construction other callers can wait on.
type flight struct {
	done chan struct{}
	plan *Plan
	err  error
}

// New builds an Engine over a view set and a database holding the view
// extents (plus any base relations needed by partial rewritings or by the
// fallback evaluation). The database is indexed and frozen for concurrent
// reads; do not insert into it afterwards.
func New(vs *core.ViewSet, db *storage.Database, opt Options) (*Engine, error) {
	if vs == nil || vs.Len() == 0 {
		return nil, errors.New("engine: empty view set")
	}
	if opt.Strategy == "" {
		opt.Strategy = EquivalentFirst
	}
	if _, err := ParseStrategy(string(opt.Strategy)); err != nil {
		return nil, err
	}
	if opt.CacheSize <= 0 {
		opt.CacheSize = 128
	}
	if opt.LiveUpdates {
		return nil, errors.New("engine: live updates require NewFromBase (extents are maintained from the base relations)")
	}
	if db == nil {
		db = storage.NewDatabase()
	}
	db.BuildIndexes()
	catalog := opt.snapCatalog
	if catalog == nil {
		catalog = cost.NewCatalog(db)
	}
	e := &Engine{
		views:       vs,
		viewDefs:    vs.Views(),
		db:          db,
		opt:         opt,
		memo:        containment.NewMemo(),
		catalog:     catalog,
		constViews:  viewsHaveConstants(vs.Views()),
		cache:       newLRU(opt.CacheSize),
		inflight:    make(map[string]*flight),
		perStrategy: make(map[Strategy]*StrategyStats),
	}
	e.admit = newAdmitter(opt, e.retryHint)
	if opt.Shards > 1 {
		e.pdb = storage.Partition(db, opt.Shards, e.catalog.PartitionColumns(nil))
		e.pdb.BuildIndexes()
	}
	return e, nil
}

// viewsHaveConstants reports whether any view definition mentions a
// constant anywhere (head, body or comparisons).
func viewsHaveConstants(views []*cq.Query) bool {
	for _, v := range views {
		if len(v.Constants()) > 0 {
			return true
		}
	}
	return false
}

// NewFromBase builds an Engine straight from base data: it materialises the
// views over base, keeps the base relations alongside the extents (so
// partial rewritings keep working), and serves from the merged database.
//
// Under the InverseRules strategy the engine serves from the view extents
// alone — inverse rules reconstruct the base relations from the extents,
// and keeping the originals would let the compiled program read base facts
// directly, answering more than the views logically expose.
func NewFromBase(base *storage.Database, views []*cq.Query, opt Options) (*Engine, error) {
	vs, err := core.NewViewSet(views...)
	if err != nil {
		return nil, err
	}
	if opt.DataDir != "" {
		return newDurable(vs, base, views, opt)
	}
	if opt.LiveUpdates {
		return newLive(vs, base, views, opt)
	}
	var db *storage.Database
	if opt.Strategy == InverseRules {
		db, err = datalog.MaterializeViews(base, views)
		if err != nil {
			return nil, err
		}
	} else {
		db = base.Clone()
		for _, v := range views {
			if err := datalog.MaterializeView(base, v, db); err != nil {
				return nil, err
			}
		}
	}
	return New(vs, db, opt)
}

// newLive builds the live-update engine: one incremental maintainer plus
// two serving copies of its database (left-right), all materialised from
// base exactly once.
func newLive(vs *core.ViewSet, base *storage.Database, views []*cq.Query, opt Options) (*Engine, error) {
	m, err := ivm.New(base, views, ivm.Options{Workers: evalWorkers(opt), Shards: opt.Shards})
	if err != nil {
		return nil, err
	}
	return newLiveFromMaintainer(vs, m, views, opt)
}

// evalWorkers normalizes Options.EvalWorkers for the maintainer.
func evalWorkers(opt Options) int {
	if opt.EvalWorkers <= 0 {
		return 1
	}
	return opt.EvalWorkers
}

// extentsOnly copies just the view extents out of a maintainer's database
// — the serving layout under InverseRules, which reconstructs the base
// from the extents and must not read base facts directly.
func extentsOnly(m *ivm.Maintainer, views []*cq.Query) (*storage.Database, error) {
	db := storage.NewDatabase()
	for _, v := range views {
		src := m.Database().Relation(v.Name())
		rel, err := db.Ensure(v.Name(), src.Arity())
		if err != nil {
			return nil, err
		}
		for _, t := range src.Tuples() {
			rel.Insert(t)
		}
	}
	return db, nil
}

// newLiveFromMaintainer finishes live-engine construction around an
// existing maintainer (freshly materialized, or recovered from a durable
// snapshot): the left-right serving pair is cloned from its database and
// the partitioned twins are built.
func newLiveFromMaintainer(vs *core.ViewSet, m *ivm.Maintainer, views []*cq.Query, opt Options) (*Engine, error) {
	var side0 *storage.Database
	var err error
	if opt.Strategy == InverseRules {
		// Inverse rules reconstruct the base from the extents; serving the
		// base relations too would answer more than the views expose.
		side0, err = extentsOnly(m, views)
		if err != nil {
			return nil, err
		}
	} else {
		side0 = m.Database().Clone()
	}
	inner := opt
	inner.LiveUpdates = false
	inner.Shards = 0 // live engines partition per serving side, not e.pdb
	e, err := New(vs, side0, inner) // indexes side0
	if err != nil {
		return nil, err
	}
	e.opt.LiveUpdates = true
	e.opt.Shards = opt.Shards
	side1 := side0.Clone()
	side1.BuildIndexes()
	e.live = &liveState{maint: m, servesBase: opt.Strategy != InverseRules}
	e.live.sides[0] = side0
	e.live.sides[1] = side1
	if opt.Shards > 1 {
		e.live.partCols = e.catalog.PartitionColumns(nil)
		for i, side := range e.live.sides {
			e.live.psides[i] = storage.Partition(side, opt.Shards, e.live.partCols)
			e.live.psides[i].BuildIndexes()
		}
	}
	return e, nil
}

// Views returns the engine's view set.
func (e *Engine) Views() *core.ViewSet { return e.views }

// Database returns the database the engine evaluates over. For a live
// engine this is the currently active serving snapshot: do not mutate it,
// and do not read it concurrently with ApplyBatch — use Answer, which
// locks a snapshot, for concurrent reads.
func (e *Engine) Database() *storage.Database {
	if e.live != nil {
		return e.live.sides[e.live.active.Load()]
	}
	return e.db
}

// snapshot returns the database an evaluation should read, its partitioned
// twin (nil unless Options.Shards > 1), and a release function, nil when no
// release is needed. Live engines pin the active side under its read lock:
// the update path only mutates a side — flat and partitioned twin alike —
// under the corresponding write lock, so the pinned pair is torn-free and
// mutually consistent for the whole evaluation.
func (e *Engine) snapshot() (*storage.Database, *storage.PartitionedDatabase, func()) {
	if e.live == nil {
		return e.db, e.pdb, nil
	}
	i := e.live.active.Load()
	e.live.locks[i].RLock()
	return e.live.sides[i], e.live.psides[i], e.live.locks[i].RUnlock
}

// Partitioned returns the hash-partitioned twin of the serving database, or
// nil when Options.Shards <= 1. On a live engine this is the currently
// active side's twin; like Database, use Answer for concurrent reads.
func (e *Engine) Partitioned() *storage.PartitionedDatabase {
	if e.live != nil {
		return e.live.psides[e.live.active.Load()]
	}
	return e.pdb
}

// Insert applies one base fact, delta-maintaining every extent.
func (e *Engine) Insert(pred string, t storage.Tuple) error {
	return e.ApplyBatch(map[string][]storage.Tuple{pred: {t}})
}

// InsertBatch applies a batch of base facts under one predicate,
// delta-maintaining every extent in a single propagation.
func (e *Engine) InsertBatch(pred string, tuples []storage.Tuple) error {
	return e.ApplyBatch(map[string][]storage.Tuple{pred: tuples})
}

// ApplyBatch applies base-fact inserts across any number of predicates and
// delta-maintains every view extent — one semi-naive propagation per batch
// instead of a full re-materialization. Batches from concurrent callers
// are serialized; answers keep flowing from the active serving snapshot
// throughout, and every cached plan stays valid (rewritings depend only on
// the view definitions). Inserting into a view predicate is an error, as
// is calling this on an engine built without Options.LiveUpdates.
func (e *Engine) ApplyBatch(updates map[string][]storage.Tuple) error {
	return e.ApplyBatchCtx(context.Background(), updates)
}

// Delete retracts one base fact, retracting every extent tuple that loses
// its last derivation (counting for flat view sets, DRed for recursive
// programs — see internal/datalog's ApplyUpdates).
func (e *Engine) Delete(pred string, t storage.Tuple) error {
	return e.ApplyUpdate(nil, map[string][]storage.Tuple{pred: {t}})
}

// DeleteBatch retracts a batch of base facts under one predicate in a
// single propagation.
func (e *Engine) DeleteBatch(pred string, tuples []storage.Tuple) error {
	return e.ApplyUpdate(nil, map[string][]storage.Tuple{pred: tuples})
}

// ApplyUpdate applies a mixed batch — deletions then insertions, any
// number of predicates each — as one atomic, undo-logged unit: either
// every retraction and every insertion lands, left-right published to
// both serving sides, or none do. Deleting from (or inserting into) a
// view predicate is an error, as is calling this on an engine built
// without Options.LiveUpdates. Deleting a tuple that is not present is a
// no-op, not an error.
func (e *Engine) ApplyUpdate(inserts, deletes map[string][]storage.Tuple) error {
	return e.ApplyUpdateCtx(context.Background(), inserts, deletes)
}

// applySide applies one batch's removals and deltas to serving side i —
// the flat database and, when the engine is sharded, its partitioned twin,
// both under the side's write lock so snapshots stay mutually consistent.
// Removals replay before insertions: a tuple deleted and re-derived in the
// same batch appears in both BatchResult maps, and the opposite order
// would retract it from the serving side after re-inserting it. Every
// successful removal is journaled into the publish undo log so a failed
// publish can re-insert it.
func (l *liveState) applySide(i int32, res *ivm.BatchResult, u *sideUndo) error {
	l.locks[i].Lock()
	defer l.locks[i].Unlock()
	db := l.sides[i]
	pdb := l.psides[i]
	if l.servesBase {
		removeDelta(db, pdb, res.BaseDeleted, u, i)
	}
	removeDelta(db, pdb, res.ExtentRetracted, u, i)
	if l.servesBase {
		if err := appendDelta(db, res.BaseInserted); err != nil {
			return err
		}
	}
	if err := appendDelta(db, res.ExtentDelta); err != nil {
		return err
	}
	if pdb != nil {
		if l.servesBase {
			if err := appendDeltaSharded(pdb, l.partCols, res.BaseInserted); err != nil {
				return err
			}
		}
		return appendDeltaSharded(pdb, l.partCols, res.ExtentDelta)
	}
	return nil
}

// removeDelta removes retracted tuples from a serving side and its
// partitioned twin, journaling each removal (once — the twins hold
// identical contents) so restoreSides can re-insert it. Missing relations
// and absent tuples are skipped: the maintainer only reports removals that
// were present in its database, which the sides mirror, so a miss here
// would mean a divergence this function must not widen.
func removeDelta(db *storage.Database, pdb *storage.PartitionedDatabase, delta map[string][]storage.Tuple, u *sideUndo, side int32) {
	for pred, tuples := range delta {
		rel := db.Relation(pred)
		if rel == nil {
			continue
		}
		for _, t := range tuples {
			if rel.Remove(t) {
				u.removed[side] = append(u.removed[side], sideRemoval{pred: pred, t: t})
			}
			if pdb != nil {
				if pr := pdb.Relation(pred); pr != nil {
					pr.Remove(t)
				}
			}
		}
	}
}

// appendDelta inserts delta tuples, creating (and freezing) relations for
// predicates the side has not seen; inserts into frozen relations maintain
// the column indexes incrementally.
func appendDelta(db *storage.Database, delta map[string][]storage.Tuple) error {
	for pred, tuples := range delta {
		if len(tuples) == 0 {
			continue
		}
		rel, err := db.Ensure(pred, len(tuples[0]))
		if err != nil {
			return err // unreachable: the maintainer validated arities
		}
		for _, t := range tuples {
			rel.Insert(t)
		}
		if !rel.Frozen() {
			rel.BuildIndexes()
		}
	}
	return nil
}

// appendDeltaSharded routes delta tuples into a partitioned serving twin,
// creating relations under the engine's partition-column policy for
// predicates the twin has not seen. Shard-local indexes are maintained
// incrementally on frozen shards, exactly like appendDelta.
func appendDeltaSharded(pdb *storage.PartitionedDatabase, partCols map[string]int, delta map[string][]storage.Tuple) error {
	for pred, tuples := range delta {
		if len(tuples) == 0 {
			continue
		}
		pr, err := pdb.Ensure(pred, len(tuples[0]), partCols[pred])
		if err != nil {
			return err // unreachable: the maintainer validated arities
		}
		for _, t := range tuples {
			pr.Insert(t)
		}
		if !pr.Frozen() {
			pr.BuildIndexes()
		}
	}
	return nil
}

// PreparedQuery is the reusable handle Prepare returns: a cached plan for
// the query's template plus the binding extracted from the query text.
// Exec runs the plan under any binding, so a point-lookup stream varying
// only in constants prepares once and executes per request. A
// PreparedQuery is immutable and safe for concurrent use; it stays valid
// for the engine's lifetime (the underlying plan may be evicted from the
// cache and re-built for other callers, but this handle keeps its own).
type PreparedQuery struct {
	eng  *Engine
	plan *Plan
	args []string
}

// Plan returns the cached template plan behind the handle.
func (pq *PreparedQuery) Plan() *Plan { return pq.plan }

// NumParams returns the number of execution arguments Exec expects.
func (pq *PreparedQuery) NumParams() int { return len(pq.plan.Params) }

// Args returns the binding extracted from the prepared query's own
// constants, in parameter order — the arguments under which Exec
// reproduces Answer of the original query.
func (pq *PreparedQuery) Args() []string {
	return append([]string(nil), pq.args...)
}

// Exec evaluates the prepared plan under the given argument binding and
// returns the answer tuples in sorted order. It must receive exactly
// NumParams arguments; a mismatch returns an error matching
// ErrArityMismatch.
func (pq *PreparedQuery) Exec(args ...string) ([]storage.Tuple, error) {
	return pq.ExecBudget(context.Background(), pq.eng.opt.Budget, args...)
}

// Prepare canonicalises q to its template — constants abstracted to
// ordered placeholders — and returns a PreparedQuery whose plan is cached
// per template, building it on first use. Concurrent calls with the same
// template trigger exactly one rewriting search.
//
// Template plans are constant-generic: the placeholders are planned as
// distinguished variables, so every rewriting exposes them and the cached
// physical plan binds them as parameters per execution. Abstraction is
// turned off (each query text is its own template) in two cases: when a
// view definition itself mentions constants — a rewriting may then hinge
// on a query constant matching the view's, which a generic plan cannot
// exploit — and under the fixed InverseRules strategy, whose programs
// want the constants compiled into the query rule's join rather than
// filtered after the fixpoint.
func (e *Engine) Prepare(q *cq.Query) (*PreparedQuery, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	tmpl := e.template(q)
	fp := tmpl.Fingerprint()

	e.mu.Lock()
	if p, ok := e.cache.get(fp); ok {
		e.hits++
		e.strategyAggLocked(p.Chosen).Hits++
		e.mu.Unlock()
		return &PreparedQuery{eng: e, plan: p, args: tmpl.Args}, nil
	}
	if fl, ok := e.inflight[fp]; ok {
		e.coalesced++
		e.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		return &PreparedQuery{eng: e, plan: fl.plan, args: tmpl.Args}, nil
	}
	fl := &flight{done: make(chan struct{})}
	e.inflight[fp] = fl
	e.misses++
	e.mu.Unlock()

	plan, err := e.buildPlan(tmpl, fp)

	e.mu.Lock()
	if err == nil {
		if e.cache.add(fp, plan) {
			e.evictions++
		}
	}
	delete(e.inflight, fp)
	e.mu.Unlock()

	fl.plan, fl.err = plan, err
	close(fl.done)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{eng: e, plan: plan, args: tmpl.Args}, nil
}

// template canonicalises q for the plan cache: the constant-abstracted
// template normally, or the degenerate no-placeholder template when the
// view set mentions constants (see Prepare) or the engine plans with the
// fixed InverseRules strategy. In the latter case the constants belong
// *inside* the compiled program — they restrict the query rule's join —
// whereas a template program must derive the answer relation for every
// binding and filter afterwards, an asymptotic regression for point
// lookups; per-text plans keep the old behaviour.
func (e *Engine) template(q *cq.Query) *cq.Template {
	if e.constViews || e.opt.Strategy == InverseRules {
		return &cq.Template{Query: cq.Canonicalize(q)}
	}
	return cq.CanonicalizeTemplate(q)
}

// Plan returns the cached template plan for q, building it on first use.
// Queries with constants yield parameterized plans; evaluate those through
// Prepare/Exec (Eval rejects them, since the binding is not part of the
// plan).
func (e *Engine) Plan(q *cq.Query) (*Plan, error) {
	pq, err := e.Prepare(q)
	if err != nil {
		return nil, err
	}
	return pq.plan, nil
}

// Answer plans q (through the template cache) and evaluates the plan over
// the engine's database under q's own constants, returning the answer
// tuples in sorted order. It is exactly Prepare followed by Exec with the
// extracted binding.
func (e *Engine) Answer(q *cq.Query) ([]storage.Tuple, error) {
	pq, err := e.Prepare(q)
	if err != nil {
		return nil, err
	}
	return e.exec(pq.plan, pq.args)
}

// AnswerBatch answers a batch of queries concurrently, preserving input
// order in the result slice. Identical (α-equivalent) queries in one batch
// coalesce into a single rewriting search. The returned error joins all
// per-query failures; results of failed queries are nil.
func (e *Engine) AnswerBatch(qs []*cq.Query) ([][]storage.Tuple, error) {
	results := make([][]storage.Tuple, len(qs))
	if len(qs) == 0 {
		return results, nil
	}
	errs := make([]error, len(qs))
	workers := e.opt.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i], errs[i] = e.Answer(qs[i])
				if errs[i] != nil {
					errs[i] = fmt.Errorf("query %d (%s): %w", i, qs[i].Head.Pred, errs[i])
				}
			}
		}()
	}
	for i := range qs {
		work <- i
	}
	close(work)
	wg.Wait()
	return results, errors.Join(errs...)
}

// Eval evaluates a parameterless plan over the engine's database; it
// rejects parameterized plans, whose binding is not part of the plan — use
// Prepare/Exec for those. Rewriting plans run through their compiled
// physical form, and inverse-rules plans through the compiled semi-naive
// fixpoint, with the configured EvalWorkers fan-out. Any number of
// evaluations may run concurrently: the database is frozen at
// construction, and on a live engine each evaluation pins one serving
// snapshot, so it sees either the pre- or post-state of any concurrent
// update batch, never a torn mix. Answers are sorted for deterministic
// output.
func (e *Engine) Eval(p *Plan) ([]storage.Tuple, error) {
	return e.EvalCtx(context.Background(), p)
}

// exec evaluates a plan under an argument binding over a pinned serving
// snapshot with the engine-wide budget, recording execution counters.
func (e *Engine) exec(p *Plan, args []string) ([]storage.Tuple, error) {
	return e.execBudget(context.Background(), p, args, e.opt.Budget)
}

// selectParams filters answer-relation tuples of arity+len(args) columns
// down to those whose trailing columns equal args, projected to the first
// arity columns. With no args it returns tuples unchanged.
func selectParams(tuples []storage.Tuple, arity int, args []string) []storage.Tuple {
	if len(args) == 0 {
		return tuples
	}
	var out []storage.Tuple
	for _, t := range tuples {
		if len(t) != arity+len(args) {
			continue // foreign-arity tuple: not this plan's (defensive)
		}
		match := true
		for i, a := range args {
			if t[arity+i] != a {
				match = false
				break
			}
		}
		if match {
			out = append(out, t[:arity:arity])
		}
	}
	return out
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	memoHits, memoMisses := e.memo.Stats()
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{
		Hits:               e.hits,
		Misses:             e.misses,
		Coalesced:          e.coalesced,
		Evictions:          e.evictions,
		CacheLen:           e.cache.len(),
		MemoHits:           memoHits,
		MemoMisses:         memoMisses,
		CompileTime:        e.compileTime,
		ExecCount:          e.execCount.Load(),
		ExecTime:           time.Duration(e.execTime.Load()),
		FixpointRuns:       e.fixpointRuns.Load(),
		FixpointIterations: e.fixpointIters.Load(),
		FixpointDerived:    e.fixpointDrvd.Load(),
		UpdateBatches:      e.updBatches.Load(),
		UpdateTuples:       e.updTuples.Load(),
		UpdateDeleted:      e.updDeleted.Load(),
		DeltaDerived:       e.updDerived.Load(),
		DeltaRetracted:     e.updRetracted.Load(),
		MaintainTime:       time.Duration(e.maintainTime.Load()),
		Admission:          e.admit.snapshot(),
		Panics:             e.panics.Load(),
		PerStrategy:        make(map[Strategy]StrategyStats, len(e.perStrategy)),
	}
	if e.dur != nil {
		st.Durable = e.dur.stats()
	}
	for s, agg := range e.perStrategy {
		st.PerStrategy[s] = *agg
	}
	return st
}

// buildPlan runs the configured rewriting algorithm over the template's
// plan query — the canonical form with the placeholders appended to the
// head as distinguished variables — so the resulting plan depends only on
// the template fingerprint, never on which α-variant or constant
// instantiation happened to arrive first. It executes outside the engine
// mutex; only the counter update at the end takes it.
func (e *Engine) buildPlan(tmpl *cq.Template, fp string) (*Plan, error) {
	start := time.Now()
	qc := tmpl.PlanQuery()
	p := &Plan{
		Fingerprint: fp,
		Strategy:    e.opt.Strategy,
		Chosen:      e.opt.Strategy,
		Params:      tmpl.Params,
		Arity:       len(tmpl.Query.Head.Args),
		AnswerPred:  qc.Name(),
	}
	switch e.opt.Strategy {
	case EquivalentFirst:
		if !e.planEquivalent(p, qc) {
			if err := e.planMiniCon(p, qc); err != nil {
				return nil, err
			}
			p.Chosen = MiniCon
		}
	case Bucket:
		u, _, err := bucket.Rewrite(qc, e.views, bucket.Options{KeepComparisons: e.opt.KeepComparisons})
		if err != nil {
			return nil, err
		}
		p.Kind = PlanMaxContained
		p.Union = u
		p.Estimate = cost.EstimateUnionWith(e.catalog, u, tmpl.Params)
	case MiniCon:
		if err := e.planMiniCon(p, qc); err != nil {
			return nil, err
		}
	case InverseRules:
		if err := e.planInverse(p, qc); err != nil {
			return nil, err
		}
	case Auto:
		if err := e.planAuto(p, qc); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("engine: unknown strategy %q", e.opt.Strategy)
	}
	p.BuildTime = time.Since(start)

	// Lower the rewriting to its physical form once, under the frozen
	// database's statistics, with the template placeholders as parameter
	// slots; every execution of the cached plan binds and reuses it.
	compileStart := time.Now()
	switch p.Kind {
	case PlanEquivalent:
		p.Compiled = datalog.CompileParams(e.execQuery(p, p.Rewriting.Query), p.Params, e.catalog)
	case PlanMaxContained:
		p.CompiledUnion = make([]*datalog.CompiledPlan, p.Union.Len())
		for i, m := range p.Union.Queries {
			p.CompiledUnion[i] = datalog.CompileParams(e.execQuery(p, m), p.Params, e.catalog)
		}
	case PlanInverseProgram:
		cp, err := datalog.CompileProgram(p.Program, e.catalog)
		if err != nil {
			return nil, err
		}
		p.CompiledProgram = cp
	}
	p.CompileTime = time.Since(compileStart)

	e.mu.Lock()
	agg := e.strategyAggLocked(p.Chosen)
	agg.Plans++
	agg.PlanTime += p.BuildTime
	e.compileTime += p.CompileTime
	e.mu.Unlock()
	return p, nil
}

// execQuery shapes a rewriting for compilation: the planning head carried
// the template placeholders as extra distinguished columns (so rewritings
// expose them); execution binds them as parameters instead, so the
// compiled head is truncated back to the answer arity.
func (e *Engine) execQuery(p *Plan, q *cq.Query) *cq.Query {
	if len(p.Params) == 0 {
		return q
	}
	return &cq.Query{
		Head:        cq.Atom{Pred: q.Head.Pred, Args: q.Head.Args[:p.Arity:p.Arity]},
		Body:        q.Body,
		Comparisons: q.Comparisons,
	}
}

// planEquivalent searches for equivalent rewritings of qc, keeping the
// cheapest estimate when the search yields several (Options.MaxResults).
// It reports whether any rewriting was found.
func (e *Engine) planEquivalent(p *Plan, qc *cq.Query) bool {
	r := core.NewRewriter(e.views)
	r.Opt.AllowPartial = e.opt.AllowPartial
	r.Opt.KeepComparisons = e.opt.KeepComparisons
	r.Opt.MaxResults = e.opt.MaxResults
	if r.Opt.MaxResults <= 0 && e.opt.Strategy == Auto {
		r.Opt.MaxResults = autoMaxResults
	}
	r.Memo = e.memo
	results, _ := r.Rewrite(qc)
	if len(results) == 0 {
		return false
	}
	candidates := make([]*cq.Query, len(results))
	for i, rw := range results {
		candidates[i] = rw.Query
	}
	best, ests := cost.ChooseWith(e.catalog, candidates, p.Params)
	p.Kind = PlanEquivalent
	p.Rewriting = results[best]
	p.Estimate = ests[best]
	p.Chosen = EquivalentFirst
	return true
}

// planMiniCon builds the MiniCon maximally-contained rewriting of qc.
func (e *Engine) planMiniCon(p *Plan, qc *cq.Query) error {
	u, _, err := minicon.Rewrite(qc, e.views, minicon.Options{VerifyCandidates: true, KeepComparisons: e.opt.KeepComparisons})
	if err != nil {
		return err
	}
	p.Kind = PlanMaxContained
	p.Union = u
	p.Estimate = cost.EstimateUnionWith(e.catalog, u, p.Params)
	return nil
}

// planInverse builds the inverse-rules program of qc.
func (e *Engine) planInverse(p *Plan, qc *cq.Query) error {
	prog, err := inverserules.Program(qc, e.viewDefs)
	if err != nil {
		return err
	}
	p.Kind = PlanInverseProgram
	p.Program = prog
	p.Estimate = prog.EstimateCost(e.programCatalog())
	return nil
}

// planAuto is the cost-driven strategy: the cheapest equivalent rewriting
// when one exists (equivalent rewritings are exact, so they always beat
// the maximally-contained routes on answer quality); otherwise MiniCon or
// inverse rules, whichever the cost model estimates cheaper under the
// catalog. The winning algorithm lands in p.Chosen.
//
// For parameterized templates the inverse route is a last resort, taken
// only when the MCR is empty: a parameterized program derives the answer
// relation for every binding and filters per execution, so whenever
// MiniCon can answer at all it wins regardless of the one-round estimate.
func (e *Engine) planAuto(p *Plan, qc *cq.Query) error {
	if e.planEquivalent(p, qc) {
		return nil
	}
	var mc Plan
	mc.Params, mc.Arity = p.Params, p.Arity
	if err := e.planMiniCon(&mc, qc); err != nil {
		return err
	}
	if mc.Union.Len() > 0 && len(p.Params) > 0 {
		// MiniCon wins outright: don't build a program just to discard it.
		p.Kind, p.Union, p.Estimate = mc.Kind, mc.Union, mc.Estimate
		p.Chosen = MiniCon
		return nil
	}
	var inv Plan
	inv.Params, inv.Arity = p.Params, p.Arity
	if err := e.planInverse(&inv, qc); err != nil {
		return err
	}
	if mc.Union.Len() > 0 && mc.Estimate.Cost <= inv.Estimate.Cost {
		p.Kind, p.Union, p.Estimate = mc.Kind, mc.Union, mc.Estimate
		p.Chosen = MiniCon
		return nil
	}
	p.Kind, p.Program, p.Estimate = inv.Kind, inv.Program, inv.Estimate
	p.Chosen = InverseRules
	return nil
}

// programCatalog clones the engine catalog and seeds cardinality guesses
// for the relations an inverse-rules program reconstructs: each base
// predicate's rows default to the total rows of the view extents that
// mention it (every view tuple yields at most one inverse tuple per
// occurrence), so program estimates compare against rewriting estimates on
// roughly honest terms instead of the unknown-relation default of 1.
func (e *Engine) programCatalog() *cost.Catalog {
	c := e.catalog.Clone()
	guess := make(map[string]float64)
	for _, v := range e.viewDefs {
		rows := c.Rows(v.Name())
		for _, a := range v.Body {
			guess[a.Pred] += rows
		}
	}
	for pred, rows := range guess {
		if c.Rows(pred) <= 1 {
			c.SetRelation(pred, rows, nil)
		}
	}
	return c
}

// strategyAggLocked returns the per-strategy aggregate for s, creating it
// on first use. Callers must hold e.mu.
func (e *Engine) strategyAggLocked(s Strategy) *StrategyStats {
	agg := e.perStrategy[s]
	if agg == nil {
		agg = &StrategyStats{}
		e.perStrategy[s] = agg
	}
	return agg
}
