// Package engine is the serving front-end of the library: a concurrent,
// plan-caching query answerer that unifies the rewriting algorithms —
// equivalent rewriting search (LMSS95), Bucket, MiniCon and inverse rules —
// behind one interface.
//
// An Engine is built once from a view set and a database of materialised
// view extents (plus any base relations partial rewritings may read). Each
// incoming query is canonicalised to a fingerprint (cq.Fingerprint), so
// α-equivalent query texts share one cache entry; rewriting plans are kept
// in a bounded LRU, and concurrent requests for the same fingerprint are
// coalesced into a single rewriting search (single-flight). Containment
// checks performed while planning are memoised across queries through a
// shared containment.Memo.
//
// The expensive work — the exponential rewriting search — therefore runs at
// most once per distinct query shape; the steady-state cost of Answer is
// one plan-cache hit plus the evaluation of the cached rewriting.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bucket"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/inverserules"
	"repro/internal/minicon"
	"repro/internal/storage"
)

// Strategy selects the rewriting algorithm an Engine plans with.
type Strategy string

const (
	// EquivalentFirst searches for an equivalent rewriting (the paper's
	// core algorithm) and falls back to the MiniCon maximally-contained
	// rewriting when none exists. This is the default.
	EquivalentFirst Strategy = "equivalent-first"
	// Bucket plans with the Bucket algorithm (maximally contained).
	Bucket Strategy = "bucket"
	// MiniCon plans with the MiniCon algorithm (maximally contained).
	MiniCon Strategy = "minicon"
	// InverseRules compiles the query and views into an inverse-rules
	// datalog program; all search cost shifts to evaluation time.
	InverseRules Strategy = "inverse-rules"
)

// Strategies lists the supported strategies.
func Strategies() []Strategy {
	return []Strategy{EquivalentFirst, Bucket, MiniCon, InverseRules}
}

// ParseStrategy resolves a strategy name, accepting the CLI spellings
// ("equivalent", "inverse") as aliases.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case string(EquivalentFirst), "equivalent":
		return EquivalentFirst, nil
	case string(Bucket):
		return Bucket, nil
	case string(MiniCon):
		return MiniCon, nil
	case string(InverseRules), "inverse":
		return InverseRules, nil
	}
	return "", fmt.Errorf("engine: unknown strategy %q (want one of %v)", name, Strategies())
}

// Options configures an Engine.
type Options struct {
	// Strategy selects the planning algorithm; default EquivalentFirst.
	Strategy Strategy
	// CacheSize bounds the plan LRU; default 128. Minimum 1.
	CacheSize int
	// AllowPartial admits equivalent rewritings that keep base subgoals
	// (EquivalentFirst only); the database must then hold those base
	// relations alongside the view extents.
	AllowPartial bool
	// KeepComparisons re-asserts the query's comparison predicates on
	// rewritings when their terms are exposed.
	KeepComparisons bool
	// BatchWorkers bounds AnswerBatch concurrency; default GOMAXPROCS.
	BatchWorkers int
	// EvalWorkers is the number of goroutines a single evaluation fans
	// its outermost join loop across (CompiledPlan.EvalParallel).
	// 0 or 1 evaluates sequentially — the default, since request-level
	// concurrency (AnswerBatch, many callers) usually saturates the
	// cores already; set it explicitly (e.g. to GOMAXPROCS) when single
	// large queries should use idle cores.
	EvalWorkers int
}

// PlanKind discriminates what a cached plan holds.
type PlanKind uint8

const (
	// PlanEquivalent is a verified equivalent rewriting.
	PlanEquivalent PlanKind = iota
	// PlanMaxContained is a maximally-contained rewriting (a UCQ over the
	// view predicates; possibly empty).
	PlanMaxContained
	// PlanInverseProgram is a compiled inverse-rules datalog program.
	PlanInverseProgram
)

// String names the plan kind for diagnostics.
func (k PlanKind) String() string {
	switch k {
	case PlanEquivalent:
		return "equivalent"
	case PlanMaxContained:
		return "max-contained"
	case PlanInverseProgram:
		return "inverse-program"
	default:
		return "unknown"
	}
}

// Plan is a cached, immutable rewriting plan for one query fingerprint.
// Evaluating a plan never depends on the variable names of the query that
// produced it — answers are sets of constant tuples — so one plan serves
// every α-equivalent query text.
type Plan struct {
	// Fingerprint is the canonical cache key (cq.Fingerprint).
	Fingerprint string
	// Strategy that built the plan.
	Strategy Strategy
	// Kind says which of the payload fields below is set.
	Kind PlanKind
	// Rewriting is set for PlanEquivalent.
	Rewriting *core.Rewriting
	// Union is set for PlanMaxContained.
	Union *cq.Union
	// Program is set for PlanInverseProgram.
	Program *datalog.Program
	// Compiled is the slot-based physical plan of Rewriting (PlanEquivalent).
	Compiled *datalog.CompiledPlan
	// CompiledUnion holds one physical plan per Union member
	// (PlanMaxContained).
	CompiledUnion []*datalog.CompiledPlan
	// CompiledProgram is the compiled semi-naive form of Program
	// (PlanInverseProgram): every rule lowered to slot plans with delta
	// variants, cached beside the rewriting so the fixpoint is never
	// re-planned on the warm path.
	CompiledProgram *datalog.CompiledProgram
	// AnswerPred is the head predicate answers are derived under.
	AnswerPred string
	// BuildTime is the wall time the rewriting search took.
	BuildTime time.Duration
	// CompileTime is the wall time physical-plan compilation took.
	CompileTime time.Duration
}

// StrategyStats aggregates planning work per strategy.
type StrategyStats struct {
	// Plans is the number of plans built (cache misses that ran the
	// rewriting search).
	Plans uint64
	// PlanTime is the cumulative wall time spent building those plans.
	PlanTime time.Duration
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	// Hits counts Answer/Plan calls served from the plan cache.
	Hits uint64
	// Misses counts calls that ran the rewriting search.
	Misses uint64
	// Coalesced counts calls that joined an in-flight search for the same
	// fingerprint instead of starting their own.
	Coalesced uint64
	// Evictions counts plans dropped by the LRU bound.
	Evictions uint64
	// CacheLen is the current number of cached plans.
	CacheLen int
	// MemoHits/MemoMisses report the shared containment memo.
	MemoHits   uint64
	MemoMisses uint64
	// CompileTime is the cumulative wall time spent compiling physical
	// plans (paid once per cache miss, amortised across hits).
	CompileTime time.Duration
	// ExecCount/ExecTime report plan executions: the steady-state cost of
	// Answer once the plan cache is warm.
	ExecCount uint64
	ExecTime  time.Duration
	// FixpointRuns counts compiled semi-naive fixpoint evaluations
	// (inverse-rules plans); FixpointIterations and FixpointDerived
	// accumulate their rounds and derived-tuple counts.
	FixpointRuns       uint64
	FixpointIterations uint64
	FixpointDerived    uint64
	// PerStrategy breaks down planning work by strategy.
	PerStrategy map[Strategy]StrategyStats
}

// Engine answers conjunctive queries over materialised views. It is safe
// for concurrent use; the database it serves from is frozen (indexed) at
// construction and must not be mutated afterwards.
type Engine struct {
	views    *core.ViewSet
	viewDefs []*cq.Query
	db       *storage.Database
	opt      Options
	memo     *containment.Memo
	// catalog holds the frozen database's statistics, used to order joins
	// and pick probe columns when compiling physical plans.
	catalog *cost.Catalog

	// Execution counters are atomics: the warm serving path must not
	// serialize on the cache mutex just to record timings.
	execCount     atomic.Uint64
	execTime      atomic.Int64 // nanoseconds
	fixpointRuns  atomic.Uint64
	fixpointIters atomic.Uint64
	fixpointDrvd  atomic.Uint64

	mu          sync.Mutex
	cache       *lruCache
	inflight    map[string]*flight
	hits        uint64
	misses      uint64
	coalesced   uint64
	evictions   uint64
	compileTime time.Duration
	perStrategy map[Strategy]*StrategyStats
}

// flight is one in-progress plan construction other callers can wait on.
type flight struct {
	done chan struct{}
	plan *Plan
	err  error
}

// New builds an Engine over a view set and a database holding the view
// extents (plus any base relations needed by partial rewritings or by the
// fallback evaluation). The database is indexed and frozen for concurrent
// reads; do not insert into it afterwards.
func New(vs *core.ViewSet, db *storage.Database, opt Options) (*Engine, error) {
	if vs == nil || vs.Len() == 0 {
		return nil, errors.New("engine: empty view set")
	}
	if opt.Strategy == "" {
		opt.Strategy = EquivalentFirst
	}
	if _, err := ParseStrategy(string(opt.Strategy)); err != nil {
		return nil, err
	}
	if opt.CacheSize <= 0 {
		opt.CacheSize = 128
	}
	if db == nil {
		db = storage.NewDatabase()
	}
	db.BuildIndexes()
	return &Engine{
		views:       vs,
		viewDefs:    vs.Views(),
		db:          db,
		opt:         opt,
		memo:        containment.NewMemo(),
		catalog:     cost.NewCatalog(db),
		cache:       newLRU(opt.CacheSize),
		inflight:    make(map[string]*flight),
		perStrategy: make(map[Strategy]*StrategyStats),
	}, nil
}

// NewFromBase builds an Engine straight from base data: it materialises the
// views over base, keeps the base relations alongside the extents (so
// partial rewritings keep working), and serves from the merged database.
//
// Under the InverseRules strategy the engine serves from the view extents
// alone — inverse rules reconstruct the base relations from the extents,
// and keeping the originals would let the compiled program read base facts
// directly, answering more than the views logically expose.
func NewFromBase(base *storage.Database, views []*cq.Query, opt Options) (*Engine, error) {
	vs, err := core.NewViewSet(views...)
	if err != nil {
		return nil, err
	}
	var db *storage.Database
	if opt.Strategy == InverseRules {
		db, err = datalog.MaterializeViews(base, views)
		if err != nil {
			return nil, err
		}
	} else {
		db = base.Clone()
		for _, v := range views {
			if err := datalog.MaterializeView(base, v, db); err != nil {
				return nil, err
			}
		}
	}
	return New(vs, db, opt)
}

// Views returns the engine's view set.
func (e *Engine) Views() *core.ViewSet { return e.views }

// Database returns the frozen database the engine evaluates over.
func (e *Engine) Database() *storage.Database { return e.db }

// Plan returns the cached rewriting plan for q, building it on first use.
// Concurrent calls with the same fingerprint trigger exactly one search.
func (e *Engine) Plan(q *cq.Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	fp := cq.Fingerprint(q)

	e.mu.Lock()
	if p, ok := e.cache.get(fp); ok {
		e.hits++
		e.mu.Unlock()
		return p, nil
	}
	if fl, ok := e.inflight[fp]; ok {
		e.coalesced++
		e.mu.Unlock()
		<-fl.done
		return fl.plan, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	e.inflight[fp] = fl
	e.misses++
	e.mu.Unlock()

	plan, err := e.buildPlan(q, fp)

	e.mu.Lock()
	if err == nil {
		if e.cache.add(fp, plan) {
			e.evictions++
		}
	}
	delete(e.inflight, fp)
	e.mu.Unlock()

	fl.plan, fl.err = plan, err
	close(fl.done)
	return plan, err
}

// Answer plans q (through the cache) and evaluates the plan over the
// engine's database, returning the answer tuples in sorted order.
func (e *Engine) Answer(q *cq.Query) ([]storage.Tuple, error) {
	p, err := e.Plan(q)
	if err != nil {
		return nil, err
	}
	return e.Eval(p)
}

// AnswerBatch answers a batch of queries concurrently, preserving input
// order in the result slice. Identical (α-equivalent) queries in one batch
// coalesce into a single rewriting search. The returned error joins all
// per-query failures; results of failed queries are nil.
func (e *Engine) AnswerBatch(qs []*cq.Query) ([][]storage.Tuple, error) {
	results := make([][]storage.Tuple, len(qs))
	if len(qs) == 0 {
		return results, nil
	}
	errs := make([]error, len(qs))
	workers := e.opt.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i], errs[i] = e.Answer(qs[i])
				if errs[i] != nil {
					errs[i] = fmt.Errorf("query %d (%s): %w", i, qs[i].Head.Pred, errs[i])
				}
			}
		}()
	}
	for i := range qs {
		work <- i
	}
	close(work)
	wg.Wait()
	return results, errors.Join(errs...)
}

// Eval evaluates a plan over the engine's database. Rewriting plans run
// through their compiled physical form, and inverse-rules plans through the
// compiled semi-naive fixpoint, with the configured EvalWorkers fan-out;
// the database was frozen at construction, so any number of evaluations may
// run concurrently. Answers are sorted for deterministic output.
func (e *Engine) Eval(p *Plan) ([]storage.Tuple, error) {
	start := time.Now()
	answers, err := e.evalPlan(p)
	if err != nil {
		return nil, err
	}
	e.execCount.Add(1)
	e.execTime.Add(int64(time.Since(start)))
	return answers, nil
}

func (e *Engine) evalPlan(p *Plan) ([]storage.Tuple, error) {
	workers := e.opt.EvalWorkers
	if workers <= 0 {
		workers = 1
	}
	switch p.Kind {
	case PlanEquivalent:
		if p.Compiled == nil { // plan built outside the engine
			return datalog.EvalQuery(e.db, p.Rewriting.Query), nil
		}
		return p.Compiled.EvalParallel(e.db, workers), nil
	case PlanMaxContained:
		if p.CompiledUnion == nil {
			return datalog.EvalUnion(e.db, p.Union), nil
		}
		var out []storage.Tuple
		seen := make(map[string]bool)
		for _, cp := range p.CompiledUnion {
			for _, t := range cp.EvalParallelUnsorted(e.db, workers) {
				if k := t.Key(); !seen[k] {
					seen[k] = true
					out = append(out, t)
				}
			}
		}
		return storage.SortTuples(out), nil
	case PlanInverseProgram:
		var derived []storage.Tuple
		if p.CompiledProgram != nil {
			tuples, fst, err := p.CompiledProgram.EvalRelation(e.db, p.AnswerPred, workers)
			if err != nil {
				return nil, err
			}
			e.fixpointRuns.Add(1)
			e.fixpointIters.Add(uint64(fst.Iterations))
			e.fixpointDrvd.Add(uint64(fst.Derived))
			derived = tuples
		} else { // plan built outside the engine
			out, err := p.Program.Eval(e.db)
			if err != nil {
				return nil, err
			}
			if rel := out.Relation(p.AnswerPred); rel != nil {
				derived = rel.Tuples()
			}
		}
		return datalog.CertainAnswers(derived), nil
	default:
		return nil, fmt.Errorf("engine: unknown plan kind %d", p.Kind)
	}
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	memoHits, memoMisses := e.memo.Stats()
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{
		Hits:               e.hits,
		Misses:             e.misses,
		Coalesced:          e.coalesced,
		Evictions:          e.evictions,
		CacheLen:           e.cache.len(),
		MemoHits:           memoHits,
		MemoMisses:         memoMisses,
		CompileTime:        e.compileTime,
		ExecCount:          e.execCount.Load(),
		ExecTime:           time.Duration(e.execTime.Load()),
		FixpointRuns:       e.fixpointRuns.Load(),
		FixpointIterations: e.fixpointIters.Load(),
		FixpointDerived:    e.fixpointDrvd.Load(),
		PerStrategy:        make(map[Strategy]StrategyStats, len(e.perStrategy)),
	}
	for s, agg := range e.perStrategy {
		st.PerStrategy[s] = *agg
	}
	return st
}

// buildPlan runs the configured rewriting algorithm over the canonical form
// of q, so the resulting plan depends only on the fingerprint — never on
// which α-variant of the query happened to arrive first. It executes
// outside the engine mutex; only the counter update at the end takes it.
func (e *Engine) buildPlan(q *cq.Query, fp string) (*Plan, error) {
	start := time.Now()
	qc := cq.Canonicalize(q)
	p := &Plan{Fingerprint: fp, Strategy: e.opt.Strategy, AnswerPred: qc.Name()}
	switch e.opt.Strategy {
	case EquivalentFirst:
		r := core.NewRewriter(e.views)
		r.Opt.AllowPartial = e.opt.AllowPartial
		r.Opt.KeepComparisons = e.opt.KeepComparisons
		r.Memo = e.memo
		if rw := r.RewriteOne(qc); rw != nil {
			p.Kind = PlanEquivalent
			p.Rewriting = rw
			break
		}
		u, _, err := minicon.Rewrite(qc, e.views, minicon.Options{VerifyCandidates: true, KeepComparisons: e.opt.KeepComparisons})
		if err != nil {
			return nil, err
		}
		p.Kind = PlanMaxContained
		p.Union = u
	case Bucket:
		u, _, err := bucket.Rewrite(qc, e.views, bucket.Options{KeepComparisons: e.opt.KeepComparisons})
		if err != nil {
			return nil, err
		}
		p.Kind = PlanMaxContained
		p.Union = u
	case MiniCon:
		u, _, err := minicon.Rewrite(qc, e.views, minicon.Options{VerifyCandidates: true, KeepComparisons: e.opt.KeepComparisons})
		if err != nil {
			return nil, err
		}
		p.Kind = PlanMaxContained
		p.Union = u
	case InverseRules:
		prog, err := inverserules.Program(qc, e.viewDefs)
		if err != nil {
			return nil, err
		}
		p.Kind = PlanInverseProgram
		p.Program = prog
	default:
		return nil, fmt.Errorf("engine: unknown strategy %q", e.opt.Strategy)
	}
	p.BuildTime = time.Since(start)

	// Lower the rewriting to its physical form once, under the frozen
	// database's statistics; every execution of the cached plan reuses it.
	compileStart := time.Now()
	switch p.Kind {
	case PlanEquivalent:
		p.Compiled = datalog.Compile(p.Rewriting.Query, e.catalog)
	case PlanMaxContained:
		p.CompiledUnion = make([]*datalog.CompiledPlan, p.Union.Len())
		for i, m := range p.Union.Queries {
			p.CompiledUnion[i] = datalog.Compile(m, e.catalog)
		}
	case PlanInverseProgram:
		cp, err := datalog.CompileProgram(p.Program, e.catalog)
		if err != nil {
			return nil, err
		}
		p.CompiledProgram = cp
	}
	p.CompileTime = time.Since(compileStart)

	e.mu.Lock()
	agg := e.perStrategy[e.opt.Strategy]
	if agg == nil {
		agg = &StrategyStats{}
		e.perStrategy[e.opt.Strategy] = agg
	}
	agg.Plans++
	agg.PlanTime += p.BuildTime
	e.compileTime += p.CompileTime
	e.mu.Unlock()
	return p, nil
}
