package engine

import (
	"fmt"
	"testing"

	"repro/internal/cq"
	"repro/internal/storage"
)

// benchSetup builds a chain schema r0 ⋈ r1 ⋈ ... with pairwise join views
// and a little data, so that planning (the rewriting search) dominates a
// single evaluation — the regime where the plan cache pays off.
func benchSetup(b *testing.B, n int) (*storage.Database, []*cq.Query, *cq.Query) {
	b.Helper()
	base := storage.NewDatabase()
	for i := 0; i < n; i++ {
		pred := fmt.Sprintf("r%d", i)
		for k := 0; k < 8; k++ {
			t := storage.Tuple{fmt.Sprintf("c%d_%d", i, k), fmt.Sprintf("c%d_%d", i+1, k)}
			if err := base.Insert(pred, t); err != nil {
				b.Fatal(err)
			}
		}
	}
	var viewSrc, bodySrc string
	for i := 0; i+1 < n; i += 2 {
		viewSrc += fmt.Sprintf("v%d(A,B) :- r%d(A,C), r%d(C,B).\n", i/2, i, i+1)
	}
	// Overlapping offset views enlarge the cover search space the cold
	// path must explore without changing the best (cached) plan.
	for i := 1; i+1 < n; i += 2 {
		viewSrc += fmt.Sprintf("w%d(A,B) :- r%d(A,C), r%d(C,B).\n", i/2, i, i+1)
	}
	for i := 0; i < n; i++ {
		viewSrc += fmt.Sprintf("u%d(A,B) :- r%d(A,B).\n", i, i)
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			bodySrc += ", "
		}
		bodySrc += fmt.Sprintf("r%d(X%d,X%d)", i, i, i+1)
	}
	views, err := cq.ParseViews(viewSrc)
	if err != nil {
		b.Fatal(err)
	}
	q := cq.MustParseQuery(fmt.Sprintf("q(X0,X%d) :- %s", n, bodySrc))
	return base, views, q
}

// BenchmarkAnswerCold re-plans the query every iteration (fresh engine):
// the cost an application pays without the serving layer.
func BenchmarkAnswerCold(b *testing.B) {
	base, views, q := benchSetup(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewFromBase(base, views, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Answer(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnswerWarm serves the same query from one engine: plan-cache hit
// plus evaluation. The ratio to BenchmarkAnswerCold is the cache win.
func BenchmarkAnswerWarm(b *testing.B) {
	base, views, q := benchSetup(b, 8)
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Answer(q); err != nil { // prime the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Answer(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnswerWarmParallel measures the warm path under concurrent load,
// exercising the engine mutex and the frozen indexes.
func BenchmarkAnswerWarmParallel(b *testing.B) {
	base, views, q := benchSetup(b, 8)
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Answer(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Answer(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFingerprint isolates the per-request canonicalisation cost — the
// price of a cache probe.
func BenchmarkFingerprint(b *testing.B) {
	_, _, q := benchSetup(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cq.Fingerprint(q)
	}
}

// preparedSetup builds a point-lookup serving scenario: 2000 r tuples, a
// join view, and a constant-selecting query whose template abstracts the
// key.
func preparedSetup(b *testing.B) (*Engine, []*cq.Query) {
	b.Helper()
	base, views := pointBase(b, 2000)
	e, err := NewFromBase(base, views, Options{})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]*cq.Query, 256)
	for i := range queries {
		queries[i] = cq.MustParseQuery(fmt.Sprintf("q(Y) :- r(k%d,Z), s(Z,Y)", i))
	}
	return e, queries
}

// BenchmarkAnswerVaryingConstants streams constant-varying point lookups
// through Answer: template canonicalisation + cache hit + bound execution
// per query (one plan compiled for the whole stream).
func BenchmarkAnswerVaryingConstants(b *testing.B) {
	e, queries := preparedSetup(b)
	if _, err := e.Answer(queries[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Answer(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedExec streams the same lookups through a PreparedQuery:
// no per-request canonicalisation at all, just the bound plan execution —
// the engine's floor for point lookups.
func BenchmarkPreparedExec(b *testing.B) {
	e, queries := preparedSetup(b)
	pq, err := e.Prepare(queries[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pq.Exec(fmt.Sprintf("k%d", i%256)); err != nil {
			b.Fatal(err)
		}
	}
}
