package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Sharded-engine tests: an engine built with Options.Shards must answer
// exactly like its flat twin under every strategy, on frozen and live
// engines alike, and the partitioned serving twins must stay tuple-identical
// to the flat sides across update batches — the physical layout may never
// leak into answers.

// flatEqualsPartitioned asserts a partitioned database holds exactly the
// flat database's relations the partitioning mirrors (the flat side may
// have extra predicates only if the twin was built before they appeared —
// here we require full agreement).
func flatEqualsPartitioned(t *testing.T, label string, db *storage.Database, pdb *storage.PartitionedDatabase) {
	t.Helper()
	flat := pdb.Flatten()
	for _, pred := range db.Predicates() {
		fr, pr := db.Relation(pred), flat.Relation(pred)
		if pr == nil {
			t.Fatalf("%s: predicate %s missing from partitioned twin", label, pred)
		}
		if !storage.TuplesEqual(fr.Tuples(), pr.Tuples()) {
			t.Fatalf("%s: predicate %s diverges between flat and partitioned twin", label, pred)
		}
	}
	for _, pred := range flat.Predicates() {
		if db.Relation(pred) == nil {
			t.Fatalf("%s: partitioned twin has extra predicate %s", label, pred)
		}
	}
}

// TestShardedEngineDifferential: frozen engines, every strategy, randomized
// chain workloads — the sharded engine's answers must match the flat one's.
func TestShardedEngineDifferential(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 8
	}
	rng := rand.New(rand.NewSource(0x5AAD))
	strategies := Strategies()
	for trial := 0; trial < trials; trial++ {
		const chainLen = 3
		base := workload.ChainDatabase(rng, chainLen, true, 30+rng.Intn(60), 25)
		views := workload.ChainViews(rng, chainLen, true, workload.DefaultViewSpec(3+rng.Intn(3)))
		q := workload.ChainQuery(chainLen, true)
		strat := strategies[trial%len(strategies)]
		flat, err := NewFromBase(base, views, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("trial %d (%s): flat: %v", trial, strat, err)
		}
		shards := 2 + rng.Intn(5)
		sharded, err := NewFromBase(base, views, Options{
			Strategy:    strat,
			Shards:      shards,
			EvalWorkers: 1 + rng.Intn(3),
		})
		if err != nil {
			t.Fatalf("trial %d (%s): sharded: %v", trial, strat, err)
		}
		if sharded.Partitioned() == nil || sharded.Partitioned().NumShards() != shards {
			t.Fatalf("trial %d (%s): Partitioned() missing or wrong shard count", trial, strat)
		}
		flatEqualsPartitioned(t, fmt.Sprintf("trial %d (%s)", trial, strat), sharded.Database(), sharded.Partitioned())
		want, err := flat.Answer(q)
		if err != nil {
			t.Fatalf("trial %d (%s): flat answer: %v", trial, strat, err)
		}
		got, err := sharded.Answer(q)
		if err != nil {
			t.Fatalf("trial %d (%s): sharded answer: %v", trial, strat, err)
		}
		if !storage.TuplesEqual(got, want) {
			t.Fatalf("trial %d (%s, %d shards): sharded answers diverge\n  sharded: %v\n  flat:    %v",
				trial, strat, shards, got, want)
		}
	}
}

// TestShardedEnginePrepared: point-lookup streams through Prepare/Exec must
// agree between the flat and sharded engines for every binding.
func TestShardedEnginePrepared(t *testing.T) {
	base, views := testBase(t)
	q := cq.MustParseQuery("q(Y) :- r(a,Z), s(Z,Y)")
	flat, err := NewFromBase(base, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewFromBase(base, views, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	fpq, err := flat.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	spq, err := sharded.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, arg := range []string{"a", "b", "c", "nope"} {
		want, err := fpq.Exec(arg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := spq.Exec(arg)
		if err != nil {
			t.Fatal(err)
		}
		if !storage.TuplesEqual(got, want) {
			t.Fatalf("arg %q: sharded %v, flat %v", arg, got, want)
		}
	}
}

// TestShardedLiveEngineDifferential drives the same randomized update
// streams through a flat and a sharded live engine: every answer and every
// serving side (flat and partitioned twin alike) must agree after each
// batch.
func TestShardedLiveEngineDifferential(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 6
	}
	rng := rand.New(rand.NewSource(0x51FE))
	const chainLen = 3
	q := workload.ChainQuery(chainLen, true)
	strategies := Strategies()
	for trial := 0; trial < trials; trial++ {
		base := workload.ChainDatabase(rng, chainLen, true, 30+rng.Intn(60), 25)
		views := workload.ChainViews(rng, chainLen, true, workload.DefaultViewSpec(3+rng.Intn(3)))
		strat := strategies[trial%len(strategies)]
		flat, err := NewFromBase(base, views, Options{Strategy: strat, LiveUpdates: true})
		if err != nil {
			t.Fatalf("trial %d (%s): flat: %v", trial, strat, err)
		}
		shards := 2 + rng.Intn(5)
		sharded, err := NewFromBase(base, views, Options{
			Strategy:    strat,
			LiveUpdates: true,
			Shards:      shards,
			EvalWorkers: 1 + rng.Intn(3),
		})
		if err != nil {
			t.Fatalf("trial %d (%s): sharded: %v", trial, strat, err)
		}
		for batch := 0; batch < 1+rng.Intn(4); batch++ {
			upd := make(map[string][]storage.Tuple)
			for i := 0; i < 1+rng.Intn(6); i++ {
				pred := fmt.Sprintf("p%d", 1+rng.Intn(chainLen))
				tup := storage.Tuple{fmt.Sprintf("c%d", rng.Intn(25)), fmt.Sprintf("c%d", rng.Intn(25))}
				upd[pred] = append(upd[pred], tup)
			}
			if err := flat.ApplyBatch(upd); err != nil {
				t.Fatalf("trial %d (%s) batch %d: flat: %v", trial, strat, batch, err)
			}
			if err := sharded.ApplyBatch(upd); err != nil {
				t.Fatalf("trial %d (%s) batch %d: sharded: %v", trial, strat, batch, err)
			}
			want, err := flat.Answer(q)
			if err != nil {
				t.Fatalf("trial %d (%s) batch %d: flat answer: %v", trial, strat, batch, err)
			}
			got, err := sharded.Answer(q)
			if err != nil {
				t.Fatalf("trial %d (%s) batch %d: sharded answer: %v", trial, strat, batch, err)
			}
			if !storage.TuplesEqual(got, want) {
				t.Fatalf("trial %d (%s, %d shards) batch %d: answers diverge\n  sharded: %v\n  flat:    %v",
					trial, strat, shards, batch, got, want)
			}
			// Both serving sides' partitioned twins must mirror their flat
			// sides exactly (the inactive side too: applySide updates both).
			l := sharded.live
			for i := 0; i < 2; i++ {
				flatEqualsPartitioned(t, fmt.Sprintf("trial %d (%s) batch %d side %d", trial, strat, batch, i),
					l.sides[i], l.psides[i])
			}
		}
	}
}

// TestShardedLiveEngineRace runs concurrent readers over the partitioned
// serving twins — each Answer routes probes to shard-local indexes — while
// a serialized writer streams InsertBatch updates that repartition into the
// same shards. The disconnected query makes torn reads visible (any answer
// set matching no consistent state), and -race checks that shard routing
// never lets a reader share mutable state with the writer.
func TestShardedLiveEngineRace(t *testing.T) {
	base := storage.NewDatabase()
	base.Insert("r", storage.Tuple{"x0", "k"})
	base.Insert("s", storage.Tuple{"k", "y0"})
	views, err := cq.ParseViews(`
		vr(A,B) :- r(A,B).
		vs(A,B) :- s(A,B).
	`)
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(X,Y) :- r(X,U), s(W,Y)")

	const nBatches = 6
	states := make([]map[string]bool, nBatches+1)
	for k := 0; k <= nBatches; k++ {
		states[k] = make(map[string]bool)
		for i := 0; i <= k; i++ {
			for j := 0; j <= k; j++ {
				states[k][storage.Tuple{fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", j)}.Key()] = true
			}
		}
	}
	matchesState := func(answers []storage.Tuple) int {
		for k, st := range states {
			if len(answers) != len(st) {
				continue
			}
			ok := true
			for _, a := range answers {
				if !st[a.Key()] {
					ok = false
					break
				}
			}
			if ok {
				return k
			}
		}
		return -1
	}

	for _, strat := range []Strategy{EquivalentFirst, InverseRules} {
		e, err := NewFromBase(base, views, Options{Strategy: strat, LiveUpdates: true, Shards: 4, EvalWorkers: 2})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if ans, err := e.Answer(q); err != nil || matchesState(ans) != 0 {
			t.Fatalf("%s: initial answer %v (err %v)", strat, ans, err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					got, err := e.Answer(q)
					if err != nil {
						t.Errorf("%s reader %d: %v", strat, g, err)
						return
					}
					if matchesState(got) < 0 {
						t.Errorf("%s reader %d: torn answer set (%d tuples): %v", strat, g, len(got), got)
						return
					}
				}
			}(g)
		}
		for k := 1; k <= nBatches; k++ {
			err := e.ApplyBatch(map[string][]storage.Tuple{
				"r": {{fmt.Sprintf("x%d", k), "k"}},
				"s": {{"k", fmt.Sprintf("y%d", k)}},
			})
			if err != nil {
				t.Errorf("%s batch %d: %v", strat, k, err)
				break
			}
		}
		close(stop)
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		final, err := e.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if matchesState(final) != nBatches {
			t.Fatalf("%s: final state %v, want state %d", strat, final, nBatches)
		}
	}
}
